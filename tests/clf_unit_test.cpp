// Unit tests for CLF's internals: the fault injector's deterministic
// behaviour, the shared-memory ring and registry, window-limited
// sending, and retransmission statistics.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/clf/endpoint.hpp"
#include "dstampede/clf/fault_injector.hpp"
#include "dstampede/clf/shm_ring.hpp"

namespace dstampede::clf {
namespace {

// --- fault injector -----------------------------------------------------

TEST(FaultInjectorTest, InactiveByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.active());
  Buffer pkt = {1, 2, 3};
  auto out = injector.Filter(pkt);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], pkt);
}

TEST(FaultInjectorTest, DeterministicAcrossSeeds) {
  FaultInjector::Config config;
  config.drop_probability = 0.3;
  config.duplicate_probability = 0.2;
  config.seed = 42;
  auto run = [&] {
    FaultInjector injector(config);
    std::vector<std::size_t> counts;
    for (int i = 0; i < 100; ++i) {
      counts.push_back(injector.Filter(Buffer{static_cast<std::uint8_t>(i)})
                           .size());
    }
    return counts;
  };
  EXPECT_EQ(run(), run()) << "same seed, same fate sequence";
}

TEST(FaultInjectorTest, DropRateRoughlyHonored) {
  FaultInjector::Config config;
  config.drop_probability = 0.25;
  config.seed = 7;
  FaultInjector injector(config);
  for (int i = 0; i < 1000; ++i) {
    (void)injector.Filter(Buffer{1});
  }
  EXPECT_GT(injector.dropped(), 180u);
  EXPECT_LT(injector.dropped(), 330u);
}

TEST(FaultInjectorTest, DuplicationEmitsTwoCopies) {
  FaultInjector::Config config;
  config.duplicate_probability = 1.0;
  FaultInjector injector(config);
  Buffer pkt = {9};
  auto out = injector.Filter(pkt);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], pkt);
  EXPECT_EQ(out[1], pkt);
  EXPECT_EQ(injector.duplicated(), 1u);
}

TEST(FaultInjectorTest, ReorderHoldsThenReleases) {
  FaultInjector::Config config;
  config.reorder_probability = 1.0;
  FaultInjector injector(config);
  // First packet is held back...
  auto first = injector.Filter(Buffer{1});
  EXPECT_TRUE(first.empty());
  // ...the next call ships the newer packet first, then the held one:
  // the reorder (only one packet can be held at a time).
  auto second = injector.Filter(Buffer{2});
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0], (Buffer{2}));
  EXPECT_EQ(second[1], (Buffer{1}));
  // Flush drains any held packet.
  auto third = injector.Filter(Buffer{3});
  EXPECT_TRUE(third.empty());
  auto flushed = injector.Flush();
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->datagram, (Buffer{3}));
  // Destination-less Filter overload: the hold has no recorded peer.
  EXPECT_FALSE(flushed->to.has_value());
  EXPECT_FALSE(injector.Flush().has_value());
}

// --- shm ring & registry ---------------------------------------------------

TEST(ShmRingTest, TransfersMessagesThroughChunks) {
  std::vector<std::pair<transport::SockAddr, Buffer>> delivered;
  ShmRing ring([&](const transport::SockAddr& from, Buffer message) {
    delivered.emplace_back(from, std::move(message));
  });
  Buffer big(3 * ShmRing::kChunk + 500);
  FillPattern(big, 4);
  const auto from = transport::SockAddr::Loopback(1234);
  ring.Transfer(from, big);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, from);
  EXPECT_EQ(delivered[0].second.size(), big.size());
  EXPECT_TRUE(CheckPattern(delivered[0].second, 4));
}

TEST(ShmRingTest, EmptyMessage) {
  std::size_t calls = 0;
  ShmRing ring([&](const transport::SockAddr&, Buffer message) {
    ++calls;
    EXPECT_TRUE(message.empty());
  });
  ring.Transfer(transport::SockAddr::Loopback(1), {});
  EXPECT_EQ(calls, 1u);
}

TEST(ShmRegistryTest, RegisterLookupUnregister) {
  auto& registry = ShmRegistry::Instance();
  const auto addr = transport::SockAddr::Loopback(54321);
  EXPECT_EQ(registry.Lookup(addr), nullptr);
  auto ring = std::make_shared<ShmRing>(
      [](const transport::SockAddr&, Buffer) {});
  registry.Register(addr, ring);
  EXPECT_EQ(registry.Lookup(addr), ring);
  registry.Unregister(addr);
  EXPECT_EQ(registry.Lookup(addr), nullptr);
}

// --- window behaviour --------------------------------------------------------

TEST(ClfWindowTest, TinyWindowStillDeliversLargeMessage) {
  // window_packets=2 forces the sender to block repeatedly waiting for
  // acks mid-message; the message must still arrive intact.
  Endpoint::Options opts;
  opts.window_packets = 2;
  opts.initial_rto = Millis(5);
  auto a = Endpoint::Create(opts);
  auto b = Endpoint::Create({});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Buffer msg(500 * 1024);  // ~9 fragments through a 2-packet window
  FillPattern(msg, 77);
  ASSERT_TRUE((*a)->Send((*b)->addr(), msg).ok());
  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE((*b)->Recv(got, from, Deadline::AfterMillis(30000)).ok());
  ASSERT_EQ(got.size(), msg.size());
  EXPECT_TRUE(CheckPattern(got, 77));
}

TEST(ClfWindowTest, TinyWindowUnderLoss) {
  Endpoint::Options opts;
  opts.window_packets = 2;
  opts.initial_rto = Millis(5);
  opts.faults.drop_probability = 0.2;
  opts.faults.seed = 3;
  auto a = Endpoint::Create(opts);
  auto b = Endpoint::Create({});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Buffer msg(200 * 1024);
  FillPattern(msg, 99);
  ASSERT_TRUE((*a)->Send((*b)->addr(), msg).ok());
  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE((*b)->Recv(got, from, Deadline::AfterMillis(30000)).ok());
  EXPECT_TRUE(CheckPattern(got, 99));
  EXPECT_GT((*a)->stats().retransmissions.load(), 0u);
}

TEST(ClfStatsTest, CountersReflectTraffic) {
  auto a = Endpoint::Create({});
  auto b = Endpoint::Create({});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Buffer msg(150 * 1024);  // 3 fragments
  FillPattern(msg, 1);
  ASSERT_TRUE((*a)->Send((*b)->addr(), msg).ok());
  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE((*b)->Recv(got, from, Deadline::AfterMillis(10000)).ok());
  EXPECT_GE((*a)->stats().data_packets_sent.load(), 3u);
  EXPECT_GE((*b)->stats().data_packets_received.load(), 3u);
  EXPECT_GE((*b)->stats().acks_sent.load(), 1u);
  EXPECT_EQ((*b)->stats().messages_delivered.load(), 1u);
}

}  // namespace
}  // namespace dstampede::clf
