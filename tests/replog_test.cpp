// RepLog: leader-lease replication for the control plane. These tests
// wire N in-process RepLog instances to each other through lambda
// SendFns that call the target's wire handlers directly — the same
// frames AddressSpace would carry over CLF, minus the transport.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "dstampede/common/sync.hpp"
#include "dstampede/core/replog.hpp"

namespace dstampede::core {
namespace {

Buffer Payload(std::uint8_t tag) { return Buffer{tag}; }

class TestCluster {
 public:
  explicit TestCluster(std::size_t n, Duration lease = Millis(150),
                       Duration heartbeat = Millis(25)) {
    std::vector<AsId> replicas;
    for (std::size_t i = 0; i < n; ++i) {
      replicas.push_back(static_cast<AsId>(static_cast<std::uint32_t>(i)));
    }
    applied_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      RepLog::Options opts;
      opts.self = replicas[i];
      opts.replicas = replicas;
      opts.lease = lease;
      opts.heartbeat = heartbeat;
      opts.rpc_deadline = Millis(100);
      nodes_.push_back(std::make_unique<RepLog>(
          opts,
          [this, i](const Buffer& entry) {
            ds::MutexLock lock(mu_);
            applied_[i].push_back(entry);
          },
          [this, i](AsId target, Op op,
                    const std::function<void(marshal::XdrEncoder&)>& body,
                    Deadline) { return Dispatch(i, target, op, body); },
          [this](AsId peer) {
            ds::MutexLock lock(mu_);
            return dead_.count(peer) != 0;
          }));
    }
  }

  ~TestCluster() {
    for (auto& node : nodes_) node->Stop();
  }

  RepLog& node(std::size_t i) { return *nodes_[i]; }

  void StartAll() {
    for (auto& node : nodes_) node->Start();
  }

  // Declares a replica dead for the whole cluster: its sends and the
  // sends to it fail, peer_dead_ reports it, and (like CLF would) every
  // survivor gets the OnPeerDown signal.
  void Kill(std::size_t i) {
    {
      ds::MutexLock lock(mu_);
      dead_.insert(static_cast<AsId>(static_cast<std::uint32_t>(i)));
    }
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (j != i) {
        nodes_[j]->OnPeerDown(static_cast<AsId>(static_cast<std::uint32_t>(i)));
      }
    }
  }

  std::vector<Buffer> AppliedOn(std::size_t i) {
    ds::MutexLock lock(mu_);
    return applied_[i];
  }

 private:
  Result<Buffer> Dispatch(
      std::size_t from, AsId target, Op op,
      const std::function<void(marshal::XdrEncoder&)>& body) {
    {
      ds::MutexLock lock(mu_);
      if (dead_.count(target) != 0 ||
          dead_.count(static_cast<AsId>(static_cast<std::uint32_t>(from))) !=
              0) {
        return UnavailableError("peer down");
      }
    }
    marshal::XdrEncoder req_enc;
    body(req_enc);
    const Buffer req_bytes = req_enc.Take();
    marshal::XdrDecoder dec(req_bytes);
    RepLog& callee = *nodes_[AsIndex(target)];
    marshal::XdrEncoder resp;
    if (op == Op::kRepAppend) {
      auto req = RepAppendReq::Decode(dec);
      if (!req.ok()) return req.status();
      RepAppendAck ack;
      const Status s = callee.HandleAppend(*req, ack);
      EncodeResponseHeader(resp, 1, s);
      ack.Encode(resp);
    } else if (op == Op::kRepFetch) {
      auto req = RepFetchReq::Decode(dec);
      if (!req.ok()) return req.status();
      const RepFetchResp fetched = callee.HandleFetch(*req);
      EncodeResponseHeader(resp, 1, OkStatus());
      fetched.Encode(resp);
    } else {
      return InvalidArgumentError("unexpected op");
    }
    return resp.Take();
  }

  std::vector<std::unique_ptr<RepLog>> nodes_;
  ds::Mutex mu_{"replog_test.mu"};
  std::vector<std::vector<Buffer>> applied_ DS_GUARDED_BY(mu_);
  std::set<AsId> dead_ DS_GUARDED_BY(mu_);
};

bool WaitFor(const std::function<bool()>& cond,
             Duration budget = Millis(5000)) {
  const Deadline give_up = Deadline::After(budget);
  while (!cond()) {
    if (give_up.expired()) return false;
    dstampede::SleepFor(Millis(5));
  }
  return true;
}

TEST(RepLogTest, BootstrapLeaderReplicatesAppends) {
  TestCluster cluster(3);
  // No ticker needed: the bootstrap leader asserts its first lease in
  // the constructor and each Append runs its own replication round.
  EXPECT_TRUE(cluster.node(0).IsLeader());
  EXPECT_FALSE(cluster.node(1).IsLeader());

  ASSERT_TRUE(cluster.node(0).Append(Payload(1)).ok());
  ASSERT_TRUE(cluster.node(0).Append(Payload(2)).ok());
  EXPECT_EQ(cluster.node(0).log_appends(), 2u);
  EXPECT_EQ(cluster.node(0).last_index(), 2u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto applied = cluster.AppliedOn(i);
    ASSERT_EQ(applied.size(), 2u) << "replica " << i;
    EXPECT_EQ(applied[0], Payload(1));
    EXPECT_EQ(applied[1], Payload(2));
  }
  EXPECT_EQ(cluster.node(0).replica_lag(), 0u);
}

TEST(RepLogTest, FollowerAppendRedirectsWithLeaderHint) {
  TestCluster cluster(3);
  const Status s = cluster.node(1).Append(Payload(9));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(RepLog::LeaderHintFromMessage(s.message()),
            static_cast<AsId>(0));
  EXPECT_EQ(RepLog::LeaderHintFromMessage("no hint here"), kInvalidAsId);
}

TEST(RepLogTest, FollowerLeaseTracksHeartbeats) {
  TestCluster cluster(3, /*lease=*/Millis(120), /*heartbeat=*/Millis(20));
  cluster.StartAll();
  // Heartbeats make every follower's local-read lease fresh.
  ASSERT_TRUE(WaitFor([&] { return cluster.node(1).LeaseFresh(); }));
  ASSERT_TRUE(WaitFor([&] { return cluster.node(2).LeaseFresh(); }));
  EXPECT_TRUE(cluster.node(0).IsLeader());
}

TEST(RepLogTest, DeterministicFailoverWithCatchUp) {
  TestCluster cluster(3, /*lease=*/Millis(120), /*heartbeat=*/Millis(20));
  ASSERT_TRUE(cluster.node(0).Append(Payload(1)).ok());
  ASSERT_TRUE(cluster.node(0).Append(Payload(2)).ok());
  cluster.StartAll();
  ASSERT_TRUE(WaitFor([&] { return cluster.node(1).LeaseFresh(); }));

  const std::uint64_t term_before = cluster.node(1).term();
  cluster.Kill(0);
  // Deterministic election: AS 1 is the first live replica, so it (and
  // only it) takes over; AS 2 keeps following.
  ASSERT_TRUE(WaitFor([&] { return cluster.node(1).IsLeader(); }));
  EXPECT_FALSE(cluster.node(2).IsLeader());
  EXPECT_GT(cluster.node(1).term(), term_before);
  EXPECT_GE(cluster.node(1).leader_changes(), 1u);

  // The new leader serves writes; the old leader's entries survived.
  ASSERT_TRUE(WaitFor([&] {
    return cluster.node(1).Append(Payload(3)).ok();
  }));
  EXPECT_EQ(cluster.node(1).last_index(), 3u);
  ASSERT_TRUE(WaitFor([&] { return cluster.AppliedOn(2).size() == 3u; }));
  EXPECT_EQ(cluster.AppliedOn(2)[2], Payload(3));
}

TEST(RepLogTest, NewLeaderFetchesEntriesItMissed) {
  TestCluster cluster(3, /*lease=*/Millis(120), /*heartbeat=*/Millis(20));
  ASSERT_TRUE(cluster.node(0).Append(Payload(1)).ok());
  // An entry that reached only AS 2 (AS 1's ack was lost / it lagged):
  // inject it through the wire handler, exactly as a backlog push
  // would arrive.
  RepAppendReq req;
  req.term = cluster.node(0).term();
  req.leader_as = 0;
  req.leader_last_index = 2;
  req.first_index = 2;
  req.entries.push_back(Payload(2));
  RepAppendAck ack;
  ASSERT_TRUE(cluster.node(2).HandleAppend(req, ack).ok());
  ASSERT_EQ(cluster.node(2).last_index(), 2u);
  ASSERT_EQ(cluster.node(1).last_index(), 1u);

  cluster.StartAll();
  cluster.Kill(0);
  // Before serving, the new leader must catch up from the survivors —
  // entry 2 exists only on AS 2.
  ASSERT_TRUE(WaitFor([&] { return cluster.node(1).IsLeader(); }));
  EXPECT_EQ(cluster.node(1).last_index(), 2u);
  const auto applied = cluster.AppliedOn(1);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[1], Payload(2));
}

TEST(RepLogTest, StaleLeaderIsFencedByTerm) {
  TestCluster cluster(3, /*lease=*/Millis(120), /*heartbeat=*/Millis(20));
  cluster.StartAll();
  ASSERT_TRUE(WaitFor([&] { return cluster.node(2).LeaseFresh(); }));
  cluster.Kill(0);
  ASSERT_TRUE(WaitFor([&] { return cluster.node(1).IsLeader(); }));

  // A heartbeat from the deposed term-1 leader must be rejected and
  // told the new term.
  RepAppendReq stale;
  stale.term = 1;
  stale.leader_as = 0;
  stale.leader_last_index = 0;
  stale.first_index = 1;
  RepAppendAck ack;
  const Status s = cluster.node(2).HandleAppend(stale, ack);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_GE(ack.term, 2u);
}

TEST(RepLogTest, MinorityPartitionNeverElects) {
  TestCluster cluster(3, /*lease=*/Millis(100), /*heartbeat=*/Millis(20));
  cluster.StartAll();
  ASSERT_TRUE(WaitFor([&] { return cluster.node(2).LeaseFresh(); }));
  // Both peers die: AS 2 is the rightful candidate but has no quorum,
  // so it must keep refusing to lead (and its reads go stale).
  cluster.Kill(0);
  cluster.Kill(1);
  dstampede::SleepFor(Millis(400));
  EXPECT_FALSE(cluster.node(2).IsLeader());
  EXPECT_FALSE(cluster.node(2).LeaseFresh());
}

}  // namespace
}  // namespace dstampede::core
