// Application-level integration: the video conference end to end with
// full content validation (both mixer variants and the socket
// baseline), and the Fig 3 split/track/join pipeline.
#include <gtest/gtest.h>

#include "dstampede/app/image.hpp"
#include "dstampede/app/socket_videoconf.hpp"
#include "dstampede/app/tracker.hpp"
#include "dstampede/app/videoconf.hpp"
#include "dstampede/client/listener.hpp"

namespace dstampede::app {
namespace {

// --- image/frame primitives --------------------------------------------------

TEST(ImageTest, CameraFramesValidate) {
  VirtualCamera camera(3, 4096);
  Buffer frame = camera.Grab(17);
  EXPECT_EQ(frame.size(), 4096u);
  auto info = InspectFrame(frame);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->client_id, 3u);
  EXPECT_EQ(info->frame_no, 17);
}

TEST(ImageTest, CorruptionDetected) {
  VirtualCamera camera(1, 1024);
  Buffer frame = camera.Grab(0);
  frame[600] ^= 0x1;
  EXPECT_FALSE(InspectFrame(frame).ok());
}

TEST(ImageTest, TinyFrameClampsToHeader) {
  VirtualCamera camera(1, 4);
  EXPECT_EQ(camera.Grab(0).size(), kFrameHeaderBytes);
}

TEST(ImageTest, CompositorTilesAndValidates) {
  constexpr std::size_t kClients = 3;
  constexpr std::size_t kBytes = 2048;
  Compositor comp(kClients, kBytes);
  Buffer composite = comp.MakeComposite();
  EXPECT_EQ(composite.size(), kClients * kBytes);
  for (std::size_t j = 0; j < kClients; ++j) {
    VirtualCamera camera(static_cast<std::uint32_t>(j), kBytes);
    ASSERT_TRUE(comp.Blend(composite, j, camera.Grab(9)).ok());
  }
  for (std::size_t j = 0; j < kClients; ++j) {
    EXPECT_TRUE(
        comp.ValidateTile(composite, j, static_cast<std::uint32_t>(j), 9).ok());
  }
  // Wrong frame number must be caught.
  EXPECT_FALSE(comp.ValidateTile(composite, 0, 0, 10).ok());
}

TEST(ImageTest, CompositorRejectsBadInput) {
  Compositor comp(2, 1024);
  Buffer composite = comp.MakeComposite();
  EXPECT_FALSE(comp.Blend(composite, 5, Buffer(1024)).ok());
  EXPECT_FALSE(comp.Blend(composite, 0, Buffer(99)).ok());
  Buffer wrong_size(10);
  EXPECT_FALSE(comp.Blend(wrong_size, 0, Buffer(1024)).ok());
}

// --- video conference on D-Stampede ----------------------------------------

class VideoConfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Runtime::Options opts;
    opts.num_address_spaces = 3;
    opts.gc_interval = Millis(10);
    opts.dispatcher_threads = 12;
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok()) << rt.status();
    rt_ = std::move(rt).value();
    auto listener = client::Listener::Start(*rt_);
    ASSERT_TRUE(listener.ok()) << listener.status();
    listener_ = std::move(listener).value();
  }
  void TearDown() override {
    listener_->Shutdown();
    rt_->Shutdown();
  }

  std::unique_ptr<core::Runtime> rt_;
  std::unique_ptr<client::Listener> listener_;
};

TEST_F(VideoConfTest, SingleThreadedMixerDeliversValidatedFrames) {
  VideoConfConfig config;
  config.num_clients = 2;
  config.image_bytes = 8 * 1024;
  config.num_frames = 40;
  config.warmup_frames = 5;
  config.multithreaded_mixer = false;
  config.validate_frames = true;
  auto report = VideoConfApp::Run(*rt_, *listener_, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->frames_completed, 40);
  EXPECT_EQ(report->display_fps.size(), 2u);
  EXPECT_GT(report->min_display_fps, 0.0);
}

TEST_F(VideoConfTest, MultiThreadedMixerDeliversValidatedFrames) {
  VideoConfConfig config;
  config.num_clients = 3;
  config.image_bytes = 8 * 1024;
  config.num_frames = 40;
  config.warmup_frames = 5;
  config.multithreaded_mixer = true;
  config.validate_frames = true;
  config.mixer_as = 2;
  auto report = VideoConfApp::Run(*rt_, *listener_, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->min_display_fps, 0.0);
}

TEST_F(VideoConfTest, PacedProducersRespectTargetRate) {
  VideoConfConfig config;
  config.num_clients = 2;
  config.image_bytes = 4 * 1024;
  config.num_frames = 30;
  config.warmup_frames = 5;
  config.producer_fps = 60.0;  // pace via real-time synchrony
  config.validate_frames = true;
  auto report = VideoConfApp::Run(*rt_, *listener_, config);
  ASSERT_TRUE(report.ok()) << report.status();
  // Display rate cannot exceed the paced camera rate (some slack for
  // timer coarseness).
  EXPECT_LE(report->min_display_fps, 75.0);
}

TEST_F(VideoConfTest, BackToBackRunsOnOneCluster) {
  // Dynamic start/stop: a second conference on the same cluster works
  // (fresh names, fresh channels) after the first finished.
  VideoConfConfig config;
  config.num_clients = 2;
  config.image_bytes = 4 * 1024;
  config.num_frames = 20;
  config.warmup_frames = 3;
  config.validate_frames = true;
  ASSERT_TRUE(VideoConfApp::Run(*rt_, *listener_, config).ok());
  ASSERT_TRUE(VideoConfApp::Run(*rt_, *listener_, config).ok());
}

TEST_F(VideoConfTest, RejectsBadConfig) {
  VideoConfConfig config;
  config.num_clients = 0;
  EXPECT_EQ(VideoConfApp::Run(*rt_, *listener_, config).status().code(),
            StatusCode::kInvalidArgument);
}

// --- the socket baseline ------------------------------------------------------

TEST(SocketVideoConfTest, DeliversValidatedFrames) {
  SocketVideoConfConfig config;
  config.num_clients = 2;
  config.image_bytes = 8 * 1024;
  config.num_frames = 40;
  config.warmup_frames = 5;
  config.validate_frames = true;
  auto report = SocketVideoConfApp::Run(config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->min_display_fps, 0.0);
  EXPECT_EQ(report->display_fps.size(), 2u);
}

TEST(SocketVideoConfTest, ScalesToMoreClients) {
  SocketVideoConfConfig config;
  config.num_clients = 4;
  config.image_bytes = 4 * 1024;
  config.num_frames = 30;
  config.warmup_frames = 5;
  config.validate_frames = true;
  auto report = SocketVideoConfApp::Run(config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->min_display_fps, 0.0);
}

TEST(SocketVideoConfTest, RejectsBadConfig) {
  SocketVideoConfConfig config;
  config.num_frames = 5;
  config.warmup_frames = 10;
  EXPECT_EQ(SocketVideoConfApp::Run(config).status().code(),
            StatusCode::kInvalidArgument);
}

// --- split/track/join (Fig 3) ---------------------------------------------------

class TrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok()) << rt.status();
    rt_ = std::move(rt).value();
  }
  void TearDown() override { rt_->Shutdown(); }
  std::unique_ptr<core::Runtime> rt_;
};

TEST_F(TrackerTest, AllFramesJoinWithVerifiedChecksums) {
  TrackerConfig config;
  config.fragments_per_frame = 4;
  config.num_workers = 3;
  config.num_frames = 12;
  config.frame_bytes = 32 * 1024;
  auto report = SplitJoinPipeline::Run(*rt_, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->frames_joined, 12);
  EXPECT_EQ(report->fragments_processed, 48u);
}

TEST_F(TrackerTest, WorkIsSharedAcrossTrackers) {
  TrackerConfig config;
  config.fragments_per_frame = 8;
  config.num_workers = 4;
  config.num_frames = 16;
  config.frame_bytes = 16 * 1024;
  auto report = SplitJoinPipeline::Run(*rt_, config);
  ASSERT_TRUE(report.ok()) << report.status();
  std::uint64_t total = 0;
  for (auto count : report->per_worker_fragments) total += count;
  EXPECT_EQ(total, 128u);
  // With 128 fragments and a shared FIFO, it is overwhelmingly likely
  // more than one tracker did work (exactly-once sharing, not
  // broadcast).
  std::size_t active = 0;
  for (auto count : report->per_worker_fragments) {
    if (count > 0) ++active;
  }
  EXPECT_GE(active, 2u);
}

TEST_F(TrackerTest, QueuesOnDifferentAddressSpaces) {
  TrackerConfig config;
  config.fragments_per_frame = 4;
  config.num_workers = 2;
  config.num_frames = 8;
  config.frame_bytes = 8 * 1024;
  config.work_queue_as = 0;
  config.result_queue_as = 1;
  auto report = SplitJoinPipeline::Run(*rt_, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->frames_joined, 8);
}

TEST_F(TrackerTest, SingleWorkerStillCompletes) {
  TrackerConfig config;
  config.fragments_per_frame = 4;
  config.num_workers = 1;
  config.num_frames = 6;
  config.frame_bytes = 8 * 1024;
  auto report = SplitJoinPipeline::Run(*rt_, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->frames_joined, 6);
  EXPECT_EQ(report->per_worker_fragments[0], 24u);
}

TEST_F(TrackerTest, RejectsBadConfig) {
  TrackerConfig config;
  config.num_workers = 0;
  EXPECT_EQ(SplitJoinPipeline::Run(*rt_, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AnalyzeFragmentTest, ChecksumIsDeterministicAndSensitive) {
  Buffer data(1024);
  FillPattern(data, 5);
  const std::uint64_t a = AnalyzeFragment(data);
  EXPECT_EQ(AnalyzeFragment(data), a);
  data[100] ^= 1;
  EXPECT_NE(AnalyzeFragment(data), a);
}

}  // namespace
}  // namespace dstampede::app
