// Serialization handler functions (§3.1): typed puts/gets through a
// user-supplied codec, uniform across the cluster API and both client
// personalities.
#include <gtest/gtest.h>

#include "dstampede/client/java_client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"
#include "dstampede/core/typed.hpp"

namespace dstampede::core {
namespace {

// A "complex user-defined data structure" (§3.1): a sensor reading.
struct SensorReading {
  std::uint32_t sensor_id = 0;
  double celsius = 0.0;
  std::string location;

  friend bool operator==(const SensorReading&, const SensorReading&) = default;
};

struct SensorCodec {
  static Buffer Serialize(const SensorReading& reading) {
    Buffer out;
    ByteWriter writer(out);
    writer.U32(reading.sensor_id);
    writer.F64(reading.celsius);
    writer.Str(reading.location);
    return out;
  }
  static Result<SensorReading> Deserialize(
      std::span<const std::uint8_t> bytes) {
    ByteReader reader(bytes);
    SensorReading reading;
    DS_ASSIGN_OR_RETURN(reading.sensor_id, reader.U32());
    DS_ASSIGN_OR_RETURN(reading.celsius, reader.F64());
    DS_ASSIGN_OR_RETURN(reading.location, reader.Str());
    if (!reader.AtEnd()) return InternalError("trailing bytes");
    return reading;
  }
};
static_assert(ItemCodec<SensorCodec>);

TEST(TypedTest, RoundTripWithinCluster) {
  Runtime::Options opts;
  opts.num_address_spaces = 2;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*rt)->as(0).Connect(*ch, ConnMode::kOutput);
  auto in = (*rt)->as(1).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  const SensorReading reading{42, 21.5, "machine room"};
  ASSERT_TRUE(PutTyped<SensorCodec>((*rt)->as(0), *out, 7, reading).ok());
  auto item = GetTyped<SensorCodec>((*rt)->as(1), *in, GetSpec::Exact(7),
                                    Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->timestamp, 7);
  EXPECT_EQ(item->value, reading);
}

TEST(TypedTest, CorruptPayloadSurfacesDeserializeError) {
  Runtime::Options opts;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto ch = (*rt)->as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*rt)->as(0).Connect(*ch, ConnMode::kOutput);
  auto in = (*rt)->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE((*rt)->as(0).Put(*out, 1, Buffer{1, 2}).ok());  // garbage
  auto item = GetTyped<SensorCodec>((*rt)->as(0), *in, GetSpec::Exact(1),
                                    Deadline::Poll());
  EXPECT_EQ(item.status().code(), StatusCode::kInternal);
}

TEST(TypedTest, WorksThroughBothClientPersonalities) {
  Runtime::Options opts;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto listener = client::Listener::Start(**rt);
  ASSERT_TRUE(listener.ok());

  client::CClient::Options c_opts;
  c_opts.server = (*listener)->addr();
  c_opts.name = "c-sensor";
  auto c_device = client::CClient::Join(c_opts);
  ASSERT_TRUE(c_device.ok());

  client::JavaStyleClient::Options j_opts;
  j_opts.server = (*listener)->addr();
  j_opts.name = "java-dashboard";
  auto j_device = client::JavaStyleClient::Join(j_opts);
  ASSERT_TRUE(j_device.ok());

  auto ch = (*c_device)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*c_device)->Connect(*ch, ConnMode::kOutput);
  auto in = (*j_device)->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  const SensorReading reading{7, -3.25, "freezer"};
  // C device serializes; the Java-style device deserializes: the
  // handler pair is the shared contract (§3.2.3 heterogeneity).
  ASSERT_TRUE(PutTyped<SensorCodec>(**c_device, *out, 1, reading).ok());
  auto item = GetTyped<SensorCodec>(**j_device, *in, GetSpec::Exact(1),
                                    Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->value, reading);

  (*listener)->Shutdown();
  (*rt)->Shutdown();
}

}  // namespace
}  // namespace dstampede::core
