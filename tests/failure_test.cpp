// Cluster failure detection & recovery: deterministic partitions in
// the fault injector, CLF peer-death declaration (retransmit budget,
// keepalive silence), epoch-based resurrection, and the AddressSpace
// recovery sequence (pending calls fail kUnavailable, dead-space
// connections detach so GC reclaims, name-server entries purge).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dstampede/clf/endpoint.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::clf {
namespace {

// Polls until pred() holds or `timeout` passes.
template <typename Pred>
bool WaitFor(Pred pred, Duration timeout) {
  const TimePoint give_up = Now() + timeout;
  while (!pred()) {
    if (Now() >= give_up) return false;
    std::this_thread::sleep_for(Millis(5));
  }
  return true;
}

Endpoint::Options Detecting() {
  Endpoint::Options opts;
  opts.initial_rto = Millis(5);
  opts.max_rto = Millis(20);
  opts.max_retransmits = 5;
  opts.keepalive_interval = Millis(25);
  opts.peer_timeout = Millis(150);
  return opts;
}

std::unique_ptr<Endpoint> MakeEndpoint(Endpoint::Options opts = {}) {
  auto ep = Endpoint::Create(opts);
  EXPECT_TRUE(ep.ok()) << ep.status();
  return std::move(ep).value();
}

TEST(FaultInjectorPartitionTest, BlackholesUntilHealed) {
  FaultInjector inj;
  const auto peer = transport::SockAddr::Loopback(4242);
  const auto other = transport::SockAddr::Loopback(4243);
  EXPECT_FALSE(inj.active());

  inj.Partition(peer);
  EXPECT_TRUE(inj.active());
  EXPECT_TRUE(inj.IsPartitioned(peer));
  EXPECT_FALSE(inj.IsPartitioned(other));
  EXPECT_TRUE(inj.Filter(peer, Buffer{1, 2, 3}).empty());
  EXPECT_EQ(inj.Filter(other, Buffer{1, 2, 3}).size(), 1u);
  EXPECT_EQ(inj.blackholed(), 1u);

  inj.Heal(peer);
  EXPECT_FALSE(inj.active());
  EXPECT_EQ(inj.Filter(peer, Buffer{1, 2, 3}).size(), 1u);
}

TEST(FaultInjectorPartitionTest, TimeWindowedPartitionExpires) {
  FaultInjector inj;
  const auto peer = transport::SockAddr::Loopback(4242);
  inj.PartitionFor(peer, Millis(50));
  EXPECT_TRUE(inj.IsPartitioned(peer));
  EXPECT_TRUE(WaitFor([&] { return !inj.IsPartitioned(peer); }, Millis(2000)));
  EXPECT_EQ(inj.Filter(peer, Buffer{7}).size(), 1u);
  EXPECT_FALSE(inj.active());
}

TEST(FaultInjectorPartitionTest, HealAllClearsEveryPartition) {
  FaultInjector inj;
  inj.Partition(transport::SockAddr::Loopback(1));
  inj.Partition(transport::SockAddr::Loopback(2));
  EXPECT_TRUE(inj.active());
  inj.HealAll();
  EXPECT_FALSE(inj.active());
  EXPECT_FALSE(inj.IsPartitioned(transport::SockAddr::Loopback(1)));
}

TEST(ClfFailureTest, PartitionedPeerDeclaredDeadWithinBound) {
  auto a = MakeEndpoint(Detecting());
  auto b = MakeEndpoint(Detecting());

  // Healthy exchange first, so death is a state change, not a default.
  ASSERT_TRUE(a->Send(b->addr(), Buffer{1}).ok());
  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(5000)).ok());

  std::atomic<bool> down_fired{false};
  a->set_peer_down_callback(
      [&](const transport::SockAddr&) { down_fired = true; });

  // Symmetric partition: data and acks both blackhole.
  a->fault_injector().Partition(b->addr());
  b->fault_injector().Partition(a->addr());

  const TimePoint start = Now();
  ASSERT_TRUE(a->Send(b->addr(), Buffer{2}).ok());  // handed to the wire
  ASSERT_TRUE(WaitFor([&] { return a->IsPeerDead(b->addr()); }, Millis(5000)))
      << "peer never declared dead";
  // Bound: 5 retransmits under a 20ms rto cap plus the 150ms silence
  // timeout, with generous scheduling slack.
  EXPECT_LT(Now() - start, Millis(5000));
  // The dead flag flips under the lock before the callback runs
  // outside it, so IsPeerDead() can be observed a beat ahead of the
  // notification: wait rather than sample.
  EXPECT_TRUE(WaitFor([&] { return down_fired.load(); }, Millis(2000)));
  EXPECT_GE(a->stats().peers_declared_dead.load(), 1u);

  // Further sends fail fast instead of hanging.
  Status send = a->Send(b->addr(), Buffer{3});
  EXPECT_EQ(send.code(), StatusCode::kUnavailable) << send;
}

TEST(ClfFailureTest, SilentWatchedPeerDeclaredDeadByKeepalive) {
  auto a = MakeEndpoint(Detecting());
  transport::SockAddr dead_addr;
  {
    auto b = MakeEndpoint();
    dead_addr = b->addr();
    b->Shutdown();
  }
  a->WatchPeer(dead_addr);  // no traffic ever flows
  ASSERT_TRUE(WaitFor([&] { return a->IsPeerDead(dead_addr); }, Millis(5000)));
  EXPECT_GE(a->stats().keepalive_probes_sent.load(), 1u);

  // Manual override re-admits the address.
  a->ForgetPeer(dead_addr);
  EXPECT_FALSE(a->IsPeerDead(dead_addr));
}

TEST(ClfFailureTest, RestartedPeerResurrectsWithNewEpoch) {
  auto a = MakeEndpoint(Detecting());
  std::uint16_t port = 0;
  std::uint32_t first_epoch = 0;
  {
    auto b1 = MakeEndpoint(Detecting());
    port = b1->addr().port;
    first_epoch = b1->epoch();
    ASSERT_TRUE(b1->Send(a->addr(), Buffer{1}).ok());
    Buffer got;
    transport::SockAddr from;
    ASSERT_TRUE(a->Recv(got, from, Deadline::AfterMillis(5000)).ok());
    b1->Shutdown();
  }
  const auto b_addr = transport::SockAddr::Loopback(port);
  ASSERT_TRUE(WaitFor([&] { return a->IsPeerDead(b_addr); }, Millis(5000)))
      << "silence after shutdown should kill the peer";

  std::atomic<bool> up_fired{false};
  a->set_peer_up_callback([&](const transport::SockAddr&) { up_fired = true; });

  // Same port, fresh incarnation.
  Endpoint::Options opts = Detecting();
  opts.port = port;
  auto b2 = MakeEndpoint(opts);
  ASSERT_NE(b2->epoch(), first_epoch);
  ASSERT_TRUE(b2->Send(a->addr(), Buffer{4, 2}).ok());

  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE(a->Recv(got, from, Deadline::AfterMillis(5000)).ok());
  EXPECT_EQ(got, (Buffer{4, 2}));
  EXPECT_TRUE(WaitFor([&] { return !a->IsPeerDead(b_addr); }, Millis(1000)));
  EXPECT_TRUE(up_fired.load());
  EXPECT_GE(a->stats().peers_resurrected.load(), 1u);

  // And the reverse direction works against the new incarnation.
  ASSERT_TRUE(a->Send(b_addr, Buffer{9}).ok());
  ASSERT_TRUE(b2->Recv(got, from, Deadline::AfterMillis(5000)).ok());
  EXPECT_EQ(got, (Buffer{9}));
}

}  // namespace
}  // namespace dstampede::clf

namespace dstampede::core {
namespace {

using clf::WaitFor;

Runtime::Options DetectingRuntime(std::size_t n) {
  Runtime::Options opts;
  opts.num_address_spaces = n;
  opts.gc_interval = Millis(10);
  opts.clf_max_retransmits = 5;
  opts.peer_keepalive_interval = Millis(25);
  opts.peer_timeout = Millis(150);
  return opts;
}

// Cuts the link between two address spaces in both directions, so
// neither data nor acks nor probes cross: a true network partition.
void PartitionPair(AddressSpace& x, AddressSpace& y) {
  x.fault_injector().Partition(y.clf_addr());
  y.fault_injector().Partition(x.clf_addr());
}

TEST(RuntimeFailureTest, PendingCallFailsUnavailableWithinBound) {
  auto rt = Runtime::Create(DetectingRuntime(2));
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = (*rt)->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok()) << in.status();

  // A Get blocked at the remote owner, far from its wire deadline.
  Status blocked_result = OkStatus();
  std::thread blocked([&] {
    auto item =
        (*rt)->as(0).Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(60000));
    blocked_result = item.status();
  });
  std::this_thread::sleep_for(Millis(100));  // let the request land

  const TimePoint cut = Now();
  PartitionPair((*rt)->as(0), (*rt)->as(1));
  blocked.join();
  EXPECT_EQ(blocked_result.code(), StatusCode::kUnavailable) << blocked_result;
  EXPECT_LT(Now() - cut, Millis(10000)) << "death must beat the 60s deadline";
  EXPECT_TRUE((*rt)->as(0).IsPeerDown((*rt)->as(1).id()));

  // New calls fail fast, they don't wait out a timeout.
  const TimePoint t0 = Now();
  auto late = (*rt)->as(0).Get(*in, GetSpec::Exact(2), Deadline::AfterMillis(60000));
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(Now() - t0, Millis(1000));
}

TEST(RuntimeFailureTest, GcReclaimsItemsHeldOnlyByDeadSpace) {
  auto rt = Runtime::Create(DetectingRuntime(2));
  ASSERT_TRUE(rt.ok()) << rt.status();
  AddressSpace& owner = (*rt)->as(0);
  AddressSpace& doomed = (*rt)->as(1);

  auto ch = owner.CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = owner.Connect(*ch, ConnMode::kOutput);
  auto local_in = owner.Connect(*ch, ConnMode::kInput);
  auto remote_in = doomed.Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(local_in.ok());
  ASSERT_TRUE(remote_in.ok()) << remote_in.status();

  ASSERT_TRUE(owner.Put(*out, 1, Buffer{1, 2, 3}).ok());
  ASSERT_TRUE(owner.Consume(*local_in, 1).ok());
  auto channel = owner.FindChannel(ch->bits());
  ASSERT_NE(channel, nullptr);
  ASSERT_EQ(channel->live_items(), 1u)
      << "the remote connection still claims the item";

  PartitionPair(owner, doomed);
  ASSERT_TRUE(WaitFor([&] { return owner.IsPeerDown(doomed.id()); },
                      Millis(10000)));
  // Recovery detached the dead space's slot; the item has no remaining
  // unconsumed input connection and must be reclaimed.
  EXPECT_TRUE(WaitFor(
      [&] {
        owner.gc().SweepOnce();
        return channel->live_items() == 0;
      },
      Millis(5000)))
      << "item still live after peer death";
}

TEST(RuntimeFailureTest, NameServerEntriesPurgedOnOwnerDeath) {
  auto rt = Runtime::Create(DetectingRuntime(2));
  ASSERT_TRUE(rt.ok()) << rt.status();
  AddressSpace& ns_host = (*rt)->as(0);
  AddressSpace& doomed = (*rt)->as(1);

  ASSERT_TRUE(
      doomed.NsRegister(NsEntry{"doomed/svc", NsEntry::Kind::kOther, 0, ""})
          .ok());
  ASSERT_TRUE(
      ns_host.NsRegister(NsEntry{"stable/svc", NsEntry::Kind::kOther, 0, ""})
          .ok());
  auto before = ns_host.NsLookup("doomed/svc");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->owner_as, doomed.id()) << "registration must be stamped";

  PartitionPair(ns_host, doomed);
  ASSERT_TRUE(WaitFor([&] { return ns_host.IsPeerDown(doomed.id()); },
                      Millis(10000)));
  EXPECT_TRUE(WaitFor(
      [&] { return !ns_host.NsLookup("doomed/svc").ok(); }, Millis(5000)))
      << "dead space's name still resolvable";
  EXPECT_TRUE(ns_host.NsLookup("stable/svc").ok())
      << "survivor's name must remain";
}

TEST(RuntimeFailureTest, InternalRpcDeadlineIsConfigurable) {
  // Without failure detection, a partitioned control-plane RPC runs
  // into the configured internal deadline instead of the 10s default.
  Runtime::Options opts;
  opts.num_address_spaces = 2;
  opts.internal_rpc_deadline = Millis(100);
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = (*rt)->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());

  PartitionPair((*rt)->as(0), (*rt)->as(1));
  const TimePoint t0 = Now();
  Status s = (*rt)->as(0).Consume(*in, 1);
  EXPECT_EQ(s.code(), StatusCode::kTimeout) << s;
  // 100ms wire deadline + the fixed transport slack; far below the
  // 10s + slack the old hard-coded deadline produced.
  EXPECT_LT(Now() - t0, Millis(9000));
}

}  // namespace
}  // namespace dstampede::core
