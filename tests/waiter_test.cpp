// Continuation-waiter model: the TimerWheel deadline service, the
// two-phase (try-else-register) container API, and every lifecycle
// path that must complete a parked waiter — deadline expiry via the
// wheel, peer death, container close, and clean shutdown — plus the
// liveness property the refactor exists for: a width-2 dispatcher
// serving far more concurrently blocked remote getters than it has
// workers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dstampede/common/waiter.hpp"
#include "dstampede/core/channel.hpp"
#include "dstampede/core/queue.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::core {
namespace {

SharedBuffer Payload(std::string_view s) { return SharedBuffer::FromString(s); }

// Polls until pred() holds or `timeout` passes.
template <typename Pred>
bool WaitFor(Pred pred, Duration timeout) {
  const TimePoint give_up = Now() + timeout;
  while (!pred()) {
    if (Now() >= give_up) return false;
    std::this_thread::sleep_for(Millis(2));
  }
  return true;
}

// --- TimerWheel -------------------------------------------------------

TEST(TimerWheelTest, FiresScheduledCallbackAtDeadline) {
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  const TimePoint start = Now();
  ASSERT_NE(wheel.Schedule(Deadline::AfterMillis(30), [&] { fired = true; }),
            0u);
  EXPECT_TRUE(WaitFor([&] { return fired.load(); }, Millis(5000)));
  EXPECT_GE(Now() - start, Millis(25));
}

TEST(TimerWheelTest, CancelledEntryNeverFires) {
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  TimerWheel::TimerId id =
      wheel.Schedule(Deadline::AfterMillis(40), [&] { fired = true; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));  // already gone
  std::this_thread::sleep_for(Millis(80));
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, InfiniteDeadlineIsNeverScheduled) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.Schedule(Deadline::Infinite(), [] {}), 0u);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.Cancel(0));
}

TEST(TimerWheelTest, FiresInDeadlineOrderNotInsertionOrder) {
  TimerWheel wheel;
  ds::Mutex mu("test.order_mu");
  std::vector<int> order;
  std::atomic<int> fired{0};
  auto record = [&](int tag) {
    ds::MutexLock lock(mu);
    order.push_back(tag);
    fired.fetch_add(1);
  };
  // Inserted late-first; must fire early-first.
  wheel.Schedule(Deadline::AfterMillis(60), [&] { record(2); });
  wheel.Schedule(Deadline::AfterMillis(20), [&] { record(1); });
  ASSERT_TRUE(WaitFor([&] { return fired.load() == 2; }, Millis(5000)));
  ds::MutexLock lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheelTest, ShutdownDropsPendingEntriesWithoutFiring) {
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  wheel.Schedule(Deadline::AfterMillis(10000), [&] { fired = true; });
  wheel.Shutdown();
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(wheel.pending(), 0u);
  // New entries after shutdown are refused, not leaked.
  EXPECT_EQ(wheel.Schedule(Deadline::AfterMillis(1), [&] { fired = true; }),
            0u);
}

// --- two-phase container API -----------------------------------------

TEST(ChannelAsyncTest, CompletesInlineWhenItemIsPresent) {
  LocalChannel ch{ChannelAttr{}};
  std::uint32_t conn = ch.Attach(ConnMode::kInputOutput, "t");
  ASSERT_TRUE(ch.Put(3, Payload("x"), Deadline::Poll()).ok());
  bool ran = false;
  std::uint64_t id = ch.GetAsync(
      conn, GetSpec::Exact(3), Deadline::Infinite(),
      [&](Result<ItemView> item) {
        ran = true;
        ASSERT_TRUE(item.ok());
        EXPECT_EQ(item->timestamp, 3);
      });
  EXPECT_EQ(id, 0u);  // inline completion: no waiter registered
  EXPECT_TRUE(ran);
  EXPECT_EQ(ch.parked_get_waiters(), 0u);
}

TEST(ChannelAsyncTest, ParkedGetCompletesOnPutFromThePuttingThread) {
  LocalChannel ch{ChannelAttr{}};
  std::uint32_t conn = ch.Attach(ConnMode::kInput, "t");
  std::atomic<bool> done{false};
  std::uint64_t id = ch.GetAsync(conn, GetSpec::Exact(7), Deadline::Infinite(),
                                 [&](Result<ItemView> item) {
                                   EXPECT_TRUE(item.ok());
                                   done = true;
                                 });
  EXPECT_GT(id, 0u);
  EXPECT_EQ(ch.parked_get_waiters(), 1u);
  EXPECT_FALSE(done.load());
  ASSERT_TRUE(ch.Put(7, Payload("y"), Deadline::Poll()).ok());
  // The put itself ran the continuation; no other thread exists here.
  EXPECT_TRUE(done.load());
  EXPECT_EQ(ch.parked_get_waiters(), 0u);
}

TEST(ChannelAsyncTest, BackpressuredPutAdmittedWhenConsumeReclaims) {
  ChannelAttr attr;
  attr.capacity_items = 1;
  LocalChannel ch{attr};
  std::uint32_t conn = ch.Attach(ConnMode::kInputOutput, "t");
  ASSERT_TRUE(ch.Put(0, Payload("a"), Deadline::Poll()).ok());
  std::atomic<bool> admitted{false};
  std::uint64_t id = ch.PutAsync(1, Payload("b"), Deadline::Infinite(),
                                 [&](Status st) {
                                   EXPECT_TRUE(st.ok()) << st.ToString();
                                   admitted = true;
                                 });
  EXPECT_GT(id, 0u);
  EXPECT_EQ(ch.parked_put_waiters(), 1u);
  // Consuming item 0 reclaims it, which admits the parked put inline.
  ASSERT_TRUE(ch.Get(conn, GetSpec::Exact(0), Deadline::Poll()).ok());
  ASSERT_TRUE(ch.Consume(conn, 0).ok());
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ch.parked_put_waiters(), 0u);
  EXPECT_TRUE(ch.Get(conn, GetSpec::Exact(1), Deadline::Poll()).ok());
}

TEST(ChannelAsyncTest, CancelWaiterLosesAgainstGenuineCompletion) {
  LocalChannel ch{ChannelAttr{}};
  std::uint32_t conn = ch.Attach(ConnMode::kInput, "t");
  std::atomic<int> completions{0};
  std::uint64_t id = ch.GetAsync(conn, GetSpec::Exact(1), Deadline::Infinite(),
                                 [&](Result<ItemView>) { completions++; });
  ASSERT_TRUE(ch.Put(1, Payload("x"), Deadline::Poll()).ok());
  // The put already completed the waiter; a late cancel must not run
  // the continuation a second time.
  EXPECT_FALSE(ch.CancelWaiter(id, TimeoutError("late")));
  EXPECT_EQ(completions.load(), 1);
}

TEST(QueueAsyncTest, BlockedGettersServedFifo) {
  LocalQueue q{QueueAttr{}};
  std::uint32_t a = q.Attach(ConnMode::kInput, "a");
  std::uint32_t b = q.Attach(ConnMode::kInput, "b");
  std::vector<int> served;
  q.GetAsync(a, Deadline::Infinite(),
             [&](Result<ItemView> item) {
               ASSERT_TRUE(item.ok());
               served.push_back(1);
             });
  q.GetAsync(b, Deadline::Infinite(),
             [&](Result<ItemView> item) {
               ASSERT_TRUE(item.ok());
               served.push_back(2);
             });
  EXPECT_EQ(q.parked_get_waiters(), 2u);
  ASSERT_TRUE(q.Put(0, Payload("first"), Deadline::Poll()).ok());
  ASSERT_TRUE(q.Put(0, Payload("second"), Deadline::Poll()).ok());
  // Registration order, not attach order or luck.
  EXPECT_EQ(served, (std::vector<int>{1, 2}));
}

// --- waiter cancellation: deadline expiry -----------------------------

TEST(WaiterCancellationTest, DeadlineExpiryWhileParkedCompletesWithTimeout) {
  TimerWheel wheel;
  LocalChannel ch{ChannelAttr{}, &wheel};
  std::uint32_t conn = ch.Attach(ConnMode::kInput, "t");
  std::atomic<bool> done{false};
  StatusCode observed = StatusCode::kOk;
  std::uint64_t id = ch.GetAsync(conn, GetSpec::Exact(9),
                                 Deadline::AfterMillis(40),
                                 [&](Result<ItemView> item) {
                                   observed = item.status().code();
                                   done = true;
                                 });
  EXPECT_GT(id, 0u);
  // Nothing is ever put: only the wheel can resolve this waiter.
  ASSERT_TRUE(WaitFor([&] { return done.load(); }, Millis(5000)));
  EXPECT_EQ(observed, StatusCode::kTimeout);
  EXPECT_EQ(ch.parked_get_waiters(), 0u);
}

TEST(WaiterCancellationTest, BackpressureDeadlineExpiryTimesOutThePut) {
  TimerWheel wheel;
  ChannelAttr attr;
  attr.capacity_items = 1;
  LocalChannel ch{attr, &wheel};
  (void)ch.Attach(ConnMode::kOutput, "t");
  ASSERT_TRUE(ch.Put(0, Payload("a"), Deadline::Poll()).ok());
  std::atomic<bool> done{false};
  StatusCode observed = StatusCode::kOk;
  ch.PutAsync(1, Payload("b"), Deadline::AfterMillis(40), [&](Status st) {
    observed = st.code();
    done = true;
  });
  ASSERT_TRUE(WaitFor([&] { return done.load(); }, Millis(5000)));
  EXPECT_EQ(observed, StatusCode::kTimeout);
  EXPECT_EQ(ch.parked_put_waiters(), 0u);
}

TEST(WaiterCancellationTest, RemoteGetDeadlineExpiresWhileParkedAtOwner) {
  Runtime::Options opts;
  opts.num_address_spaces = 2;
  opts.dispatcher_threads = 2;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = (*rt)->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());
  const TimePoint start = Now();
  auto item = (*rt)->as(0).Get(*in, GetSpec::Exact(0),
                               Deadline::AfterMillis(150));
  EXPECT_EQ(item.status().code(), StatusCode::kTimeout) << item.status();
  EXPECT_GE(Now() - start, Millis(100));
  // The owner-side waiter record is gone, not leaked.
  auto owned = (*rt)->as(1).FindChannel(ch->bits());
  ASSERT_NE(owned, nullptr);
  EXPECT_TRUE(WaitFor([&] { return owned->parked_get_waiters() == 0; },
                      Millis(5000)));
  (*rt)->Shutdown();
}

// --- waiter cancellation: peer death ----------------------------------

TEST(WaiterCancellationTest, PeerDownCompletesRemoteWaiterUnavailable) {
  Runtime::Options opts;
  opts.num_address_spaces = 2;
  opts.dispatcher_threads = 2;
  opts.clf_max_retransmits = 8;
  opts.peer_keepalive_interval = Millis(25);
  opts.peer_timeout = Millis(150);
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = (*rt)->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());

  StatusCode observed = StatusCode::kOk;
  std::thread blocked([&] {
    auto item = (*rt)->as(0).Get(*in, GetSpec::Exact(0),
                                 Deadline::AfterMillis(60000));
    observed = item.status().code();
  });
  // Wait until the get is parked as a waiter at the owner.
  auto owned = (*rt)->as(1).FindChannel(ch->bits());
  ASSERT_NE(owned, nullptr);
  ASSERT_TRUE(WaitFor([&] { return owned->parked_get_waiters() == 1; },
                      Millis(10000)));

  // Cut the link both ways: the owner declares the caller dead and
  // must cancel its parked waiter; the caller fails its pending call.
  (*rt)->as(0).fault_injector().Partition((*rt)->as(1).clf_addr());
  (*rt)->as(1).fault_injector().Partition((*rt)->as(0).clf_addr());

  EXPECT_TRUE(WaitFor([&] { return owned->parked_get_waiters() == 0; },
                      Millis(10000)))
      << "owner kept the dead peer's waiter parked";
  blocked.join();
  EXPECT_EQ(observed, StatusCode::kUnavailable);
  (*rt)->Shutdown();
}

// --- waiter cancellation: container close -----------------------------

TEST(WaiterCancellationTest, CloseWakesEveryParkedWaiter) {
  ChannelAttr attr;
  attr.capacity_items = 1;
  LocalChannel ch{attr};
  std::uint32_t conn = ch.Attach(ConnMode::kInputOutput, "t");
  ASSERT_TRUE(ch.Put(0, Payload("full"), Deadline::Poll()).ok());
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 4; ++i) {
    ch.GetAsync(conn, GetSpec::Exact(100 + i), Deadline::Infinite(),
                [&](Result<ItemView> item) {
                  EXPECT_EQ(item.status().code(), StatusCode::kCancelled);
                  cancelled++;
                });
    ch.PutAsync(200 + i, Payload("parked"), Deadline::Infinite(),
                [&](Status st) {
                  EXPECT_EQ(st.code(), StatusCode::kCancelled);
                  cancelled++;
                });
  }
  EXPECT_EQ(ch.parked_get_waiters(), 4u);
  EXPECT_EQ(ch.parked_put_waiters(), 4u);
  ch.Close();
  EXPECT_EQ(cancelled.load(), 8);
  EXPECT_EQ(ch.parked_get_waiters(), 0u);
  EXPECT_EQ(ch.parked_put_waiters(), 0u);
}

TEST(WaiterCancellationTest, QueueCloseWakesEveryParkedWaiter) {
  // A queue can't have parked getters and parked putters at once
  // (getters park on empty, putters on full), so exercise each kind
  // on its own instance.
  LocalQueue empty{QueueAttr{}};
  std::uint32_t in = empty.Attach(ConnMode::kInput, "in");
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 3; ++i) {
    empty.GetAsync(in, Deadline::Infinite(), [&](Result<ItemView> item) {
      EXPECT_EQ(item.status().code(), StatusCode::kCancelled);
      cancelled++;
    });
  }
  EXPECT_EQ(empty.parked_get_waiters(), 3u);
  empty.Close();
  EXPECT_EQ(cancelled.load(), 3);
  EXPECT_EQ(empty.parked_get_waiters(), 0u);

  QueueAttr bounded;
  bounded.capacity_items = 1;
  LocalQueue full{bounded};
  (void)full.Attach(ConnMode::kOutput, "out");
  ASSERT_TRUE(full.Put(0, Payload("fills it"), Deadline::Poll()).ok());
  full.PutAsync(1, Payload("parked"), Deadline::Infinite(), [&](Status st) {
    EXPECT_EQ(st.code(), StatusCode::kCancelled);
    cancelled++;
  });
  EXPECT_EQ(full.parked_put_waiters(), 1u);
  full.Close();
  EXPECT_EQ(cancelled.load(), 4);
  EXPECT_EQ(full.parked_put_waiters(), 0u);
}

// --- waiter cancellation: clean shutdown ------------------------------

TEST(WaiterCancellationTest, ShutdownWithManyParkedWaitersOnWidth2Pool) {
  Runtime::Options opts;
  opts.num_address_spaces = 2;
  opts.dispatcher_threads = 2;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());

  constexpr int kWaiters = 24;
  std::atomic<int> finished{0};
  std::atomic<int> satisfied{0};
  std::vector<std::thread> getters;
  getters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    getters.emplace_back([&, i] {
      auto in = (*rt)->as(0).Connect(*ch, ConnMode::kInput);
      if (in.ok()) {
        auto item = (*rt)->as(0).Get(*in, GetSpec::Exact(i),
                                     Deadline::AfterMillis(60000));
        if (item.ok()) satisfied++;
      }
      finished++;
    });
  }
  auto owned = (*rt)->as(1).FindChannel(ch->bits());
  ASSERT_NE(owned, nullptr);
  ASSERT_TRUE(WaitFor([&] { return owned->parked_get_waiters() == kWaiters; },
                      Millis(10000)));
  // 24 parked waiters, 2 workers: shutdown must still complete every
  // one of them (no item arrives, so all fail) within the test budget
  // instead of hanging on parked threads.
  const TimePoint start = Now();
  (*rt)->Shutdown();
  for (auto& t : getters) t.join();
  EXPECT_EQ(finished.load(), kWaiters);
  EXPECT_EQ(satisfied.load(), 0);
  EXPECT_LT(Now() - start, Millis(30000));
}

// --- liveness smoke ---------------------------------------------------

// The refactor's reason to exist: pool width no longer bounds the
// number of simultaneously blocked remote getters. A width-2
// dispatcher parks 4x its width, then a single putter satisfies them
// all, while the pool stays responsive to control-plane traffic.
TEST(LivenessSmokeTest, Width2DispatcherServes8ConcurrentlyBlockedGetters) {
  Runtime::Options opts;
  opts.num_address_spaces = 2;
  opts.dispatcher_threads = 2;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok()) << rt.status();
  auto ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());

  constexpr int kGetters = 8;
  std::atomic<int> satisfied{0};
  std::vector<std::thread> getters;
  getters.reserve(kGetters);
  for (int i = 0; i < kGetters; ++i) {
    getters.emplace_back([&, i] {
      auto in = (*rt)->as(0).Connect(*ch, ConnMode::kInput);
      ASSERT_TRUE(in.ok()) << in.status();
      auto item = (*rt)->as(0).Get(*in, GetSpec::Exact(i),
                                   Deadline::AfterMillis(60000));
      ASSERT_TRUE(item.ok()) << item.status();
      EXPECT_EQ(item->timestamp, i);
      ASSERT_TRUE((*rt)->as(0).Consume(*in, i).ok());
      satisfied++;
    });
  }
  // All 8 gets must park at the owner concurrently — impossible if
  // each occupied one of the two workers.
  auto owned = (*rt)->as(1).FindChannel(ch->bits());
  ASSERT_NE(owned, nullptr);
  ASSERT_TRUE(WaitFor([&] { return owned->parked_get_waiters() == kGetters; },
                      Millis(10000)))
      << "parked " << owned->parked_get_waiters() << " of " << kGetters;

  // The pool must not be starved while the waiters are parked.
  auto probe = (*rt)->as(0).Connect(*ch, ConnMode::kOutput);
  ASSERT_TRUE(probe.ok()) << probe.status();
  for (int i = 0; i < kGetters; ++i) {
    ASSERT_TRUE((*rt)->as(0)
                    .Put(*probe, i, Buffer(64), Deadline::AfterMillis(10000))
                    .ok());
  }
  for (auto& t : getters) t.join();
  EXPECT_EQ(satisfied.load(), kGetters);
  (*rt)->Shutdown();
}

}  // namespace
}  // namespace dstampede::core
