// Parameterized application sweep: the full video-conference pipeline,
// content-validated end to end, across a grid of participant counts,
// image sizes and both mixer variants — the paper's Fig 14/15 space at
// test scale. Also sweeps the split/track/join pipeline across
// fragment/worker shapes.
#include <gtest/gtest.h>

#include "dstampede/app/tracker.hpp"
#include "dstampede/app/videoconf.hpp"
#include "dstampede/client/listener.hpp"

namespace dstampede::app {
namespace {

struct ConferenceCase {
  std::size_t clients;
  std::size_t image_kb;
  bool multithreaded;
};

void PrintTo(const ConferenceCase& c, std::ostream* os) {
  *os << c.clients << "clients_" << c.image_kb << "kb_"
      << (c.multithreaded ? "mt" : "st");
}

class ConferenceSweep : public ::testing::TestWithParam<ConferenceCase> {
 protected:
  static void SetUpTestSuite() {
    core::Runtime::Options opts;
    opts.num_address_spaces = 3;
    opts.dispatcher_threads = 16;
    opts.gc_interval = Millis(10);
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok());
    rt_ = std::move(rt).value().release();
    auto listener = client::Listener::Start(*rt_);
    ASSERT_TRUE(listener.ok());
    listener_ = std::move(listener).value().release();
  }
  static void TearDownTestSuite() {
    listener_->Shutdown();
    rt_->Shutdown();
    delete listener_;
    delete rt_;
    listener_ = nullptr;
    rt_ = nullptr;
  }

  static core::Runtime* rt_;
  static client::Listener* listener_;
};

core::Runtime* ConferenceSweep::rt_ = nullptr;
client::Listener* ConferenceSweep::listener_ = nullptr;

TEST_P(ConferenceSweep, EveryFrameValidatedEndToEnd) {
  const ConferenceCase& c = GetParam();
  VideoConfConfig config;
  config.num_clients = c.clients;
  config.image_bytes = c.image_kb * 1024;
  config.num_frames = 24;
  config.warmup_frames = 4;
  config.multithreaded_mixer = c.multithreaded;
  config.mixer_as = 2;
  config.validate_frames = true;
  auto report = VideoConfApp::Run(*rt_, *listener_, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->frames_completed, 24);
  EXPECT_EQ(report->display_fps.size(), c.clients);
  EXPECT_GT(report->min_display_fps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConferenceSweep,
    ::testing::Values(ConferenceCase{2, 2, false}, ConferenceCase{2, 2, true},
                      ConferenceCase{3, 4, false}, ConferenceCase{3, 4, true},
                      ConferenceCase{4, 2, false}, ConferenceCase{4, 2, true},
                      ConferenceCase{5, 1, true}, ConferenceCase{2, 16, true},
                      ConferenceCase{2, 16, false}),
    [](const ::testing::TestParamInfo<ConferenceCase>& info) {
      return std::to_string(info.param.clients) + "clients" +
             std::to_string(info.param.image_kb) + "kb" +
             (info.param.multithreaded ? "mt" : "st");
    });

struct TrackerCase {
  std::size_t fragments;
  std::size_t workers;
};

class TrackerSweep : public ::testing::TestWithParam<TrackerCase> {};

TEST_P(TrackerSweep, AllJoinsVerified) {
  core::Runtime::Options opts;
  opts.num_address_spaces = 2;
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  TrackerConfig config;
  config.fragments_per_frame = GetParam().fragments;
  config.num_workers = GetParam().workers;
  config.num_frames = 8;
  config.frame_bytes = 8 * 1024;
  config.work_queue_as = 0;
  config.result_queue_as = 1;
  auto report = SplitJoinPipeline::Run(**rt, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->frames_joined, 8);
  EXPECT_EQ(report->fragments_processed, 8u * GetParam().fragments);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TrackerSweep,
    ::testing::Values(TrackerCase{1, 1}, TrackerCase{2, 5}, TrackerCase{8, 2},
                      TrackerCase{5, 5}, TrackerCase{16, 3}),
    [](const ::testing::TestParamInfo<TrackerCase>& info) {
      return std::to_string(info.param.fragments) + "frags" +
             std::to_string(info.param.workers) + "workers";
    });

}  // namespace
}  // namespace dstampede::app
