// Transport tests: TCP framing, raw stream I/O, deadlines, connection
// teardown; UDP datagrams and size limits.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/common/bytes.hpp"
#include "dstampede/transport/tcp.hpp"
#include "dstampede/transport/udp.hpp"

namespace dstampede::transport {
namespace {

TEST(SockAddrTest, FormatsDottedQuad) {
  EXPECT_EQ(SockAddr::Loopback(8080).ToString(), "127.0.0.1:8080");
}

TEST(SockAddrTest, FromStringRoundTrips) {
  const SockAddr addr{0xc0a80a02u, 9123};  // 192.168.10.2
  auto parsed = SockAddr::FromString(addr.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, addr);
}

TEST(SockAddrTest, FromStringRejectsMalformed) {
  EXPECT_FALSE(SockAddr::FromString("").ok());
  EXPECT_FALSE(SockAddr::FromString("localhost:80").ok());
  EXPECT_FALSE(SockAddr::FromString("127.0.0.1").ok());
  EXPECT_FALSE(SockAddr::FromString("256.0.0.1:80").ok());
  EXPECT_FALSE(SockAddr::FromString("1.2.3.4:70000").ok());
  EXPECT_FALSE(SockAddr::FromString("1.2.3.4:80x").ok());
}

TEST(TcpTest, ListenerPicksFreePort) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_NE(listener->bound_addr().port, 0);
}

TEST(TcpTest, ConnectRefusedOnClosedPort) {
  // Bind then close to get a port that is very likely unused.
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  SockAddr addr = listener->bound_addr();
  listener->Close();
  auto conn = TcpConnection::Connect(addr);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

TEST(TcpTest, FrameEchoRoundTrip) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    Buffer frame;
    ASSERT_TRUE(conn->RecvFrame(frame).ok());
    ASSERT_TRUE(conn->SendFrame(frame).ok());
  });

  auto conn = TcpConnection::Connect(listener->bound_addr());
  ASSERT_TRUE(conn.ok());
  Buffer out(5000);
  FillPattern(out, 99);
  ASSERT_TRUE(conn->SendFrame(out).ok());
  Buffer in;
  ASSERT_TRUE(conn->RecvFrame(in).ok());
  EXPECT_EQ(in, out);
  server.join();
}

TEST(TcpTest, EmptyFrameIsLegal) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    Buffer frame = {1};
    ASSERT_TRUE(conn->RecvFrame(frame).ok());
    EXPECT_TRUE(frame.empty());
    ASSERT_TRUE(conn->SendFrame(frame).ok());
  });
  auto conn = TcpConnection::Connect(listener->bound_addr());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendFrame({}).ok());
  Buffer in = {9, 9};
  ASSERT_TRUE(conn->RecvFrame(in).ok());
  EXPECT_TRUE(in.empty());
  server.join();
}

TEST(TcpTest, LargeFrameRoundTrip) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    Buffer frame;
    ASSERT_TRUE(conn->RecvFrame(frame).ok());
    ASSERT_TRUE(conn->SendFrame(frame).ok());
  });
  auto conn = TcpConnection::Connect(listener->bound_addr());
  ASSERT_TRUE(conn.ok());
  Buffer big(2 * 1024 * 1024);  // composite-image scale
  FillPattern(big, 1);
  ASSERT_TRUE(conn->SendFrame(big).ok());
  Buffer in;
  ASSERT_TRUE(conn->RecvFrame(in).ok());
  EXPECT_TRUE(CheckPattern(in, 1));
  server.join();
}

TEST(TcpTest, RecvFrameTimesOut) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto conn = TcpConnection::Connect(listener->bound_addr());
  ASSERT_TRUE(conn.ok());
  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.ok());
  Buffer frame;
  Status s = conn->RecvFrame(frame, Deadline::AfterMillis(50));
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

TEST(TcpTest, PeerCloseSurfacesAsConnectionClosed) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto conn = TcpConnection::Connect(listener->bound_addr());
  ASSERT_TRUE(conn.ok());
  {
    auto server_side = listener->Accept();
    ASSERT_TRUE(server_side.ok());
    // server_side destroyed here -> fd closed
  }
  Buffer frame;
  Status s = conn->RecvFrame(frame, Deadline::AfterMillis(1000));
  EXPECT_EQ(s.code(), StatusCode::kConnectionClosed);
}

TEST(TcpTest, RawExchange) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    Buffer data(1000);
    ASSERT_TRUE(
        conn->RecvExact(std::span<std::uint8_t>(data.data(), data.size()))
            .ok());
    ASSERT_TRUE(conn->SendAll(data).ok());
  });
  auto conn = TcpConnection::Connect(listener->bound_addr());
  ASSERT_TRUE(conn.ok());
  Buffer out(1000);
  FillPattern(out, 5);
  ASSERT_TRUE(conn->SendAll(out).ok());
  Buffer in(1000);
  ASSERT_TRUE(
      conn->RecvExact(std::span<std::uint8_t>(in.data(), in.size())).ok());
  EXPECT_EQ(in, out);
  server.join();
}

TEST(TcpTest, AcceptTimesOut) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto conn = listener->Accept(Deadline::AfterMillis(50));
  EXPECT_EQ(conn.status().code(), StatusCode::kTimeout);
}

// --- UDP --------------------------------------------------------------------

TEST(UdpTest, DatagramRoundTrip) {
  auto a = UdpSocket::Bind(0);
  auto b = UdpSocket::Bind(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Buffer out(1500);
  FillPattern(out, 77);
  ASSERT_TRUE(a->SendTo(b->bound_addr(), out).ok());
  Buffer in;
  SockAddr from;
  ASSERT_TRUE(b->RecvFrom(in, from, Deadline::AfterMillis(2000)).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(from, a->bound_addr());
}

TEST(UdpTest, MaxSizeDatagram) {
  auto a = UdpSocket::Bind(0);
  auto b = UdpSocket::Bind(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Buffer out(kMaxUdpDatagram);
  FillPattern(out, 3);
  ASSERT_TRUE(a->SendTo(b->bound_addr(), out).ok());
  Buffer in;
  SockAddr from;
  ASSERT_TRUE(b->RecvFrom(in, from, Deadline::AfterMillis(2000)).ok());
  EXPECT_EQ(in.size(), kMaxUdpDatagram);
  EXPECT_TRUE(CheckPattern(in, 3));
}

TEST(UdpTest, OversizedDatagramRejected) {
  auto a = UdpSocket::Bind(0);
  ASSERT_TRUE(a.ok());
  Buffer out(kMaxUdpDatagram + 1);
  Status s = a->SendTo(a->bound_addr(), out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(UdpTest, RecvTimesOut) {
  auto a = UdpSocket::Bind(0);
  ASSERT_TRUE(a.ok());
  Buffer in;
  SockAddr from;
  Status s = a->RecvFrom(in, from, Deadline::AfterMillis(50));
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

TEST(UdpTest, MultipleDatagramsPreserveBoundaries) {
  auto a = UdpSocket::Bind(0);
  auto b = UdpSocket::Bind(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 1; i <= 5; ++i) {
    Buffer out(static_cast<std::size_t>(i * 100));
    FillPattern(out, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(a->SendTo(b->bound_addr(), out).ok());
  }
  for (int i = 1; i <= 5; ++i) {
    Buffer in;
    SockAddr from;
    ASSERT_TRUE(b->RecvFrom(in, from, Deadline::AfterMillis(2000)).ok());
    EXPECT_EQ(in.size(), static_cast<std::size_t>(i * 100));
    EXPECT_TRUE(CheckPattern(in, static_cast<std::uint64_t>(i)));
  }
}

}  // namespace
}  // namespace dstampede::transport
