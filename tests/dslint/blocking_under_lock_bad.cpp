// dslint fixture: dstampede-blocking-under-lock positives — an RPC
// and a CLF send while an ordinary (not kBlockingAllowed) lock is
// live. Expected findings: 2.

namespace fixture {

struct Peer {
  ds::Mutex mu_{"fixture.state_mu"};
  Endpoint* ep_;
  AddressSpace* as_;
  int epoch_ = 0;
};

void PokePeer(Peer& peer, Frame frame) {
  ds::MutexLock lock(peer.mu_);
  peer.epoch_ += 1;
  peer.ep_->Send(frame);
  peer.as_->Call(frame);
}

}  // namespace fixture
