// dslint fixture: suppression paths. A justified NOLINT suppresses
// its line's finding; an unjustified one is converted into a
// dstampede-nolint-justification finding; NOLINTNEXTLINE covers the
// following line. Expected findings: 1 (the justification nag).
#include <chrono>

namespace fixture {

long Entropy() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // NOLINT(dstampede-raw-clock): entropy, not timing
}

long Unjustified() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // NOLINT(dstampede-raw-clock)
}

long NextLine() {
  // NOLINTNEXTLINE(dstampede-raw-clock): wall-clock stamp for humans
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
