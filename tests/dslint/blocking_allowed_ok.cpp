// dslint fixture: dstampede-blocking-under-lock negatives — the
// documented kBlockingAllowed exemption, and releasing the lock
// before the blocking call. Expected findings: 0.

namespace fixture {

struct Session {
  // Held across the socket round trip by design, declared so at
  // construction (docs/CONCURRENCY.md, blocking-allowed list).
  ds::Mutex mu_{"fixture.session_mu", ds::Mutex::kBlockingAllowed};
  ds::Mutex idle_mu_{"fixture.idle_mu"};
  Endpoint* ep_;
  int generation_ = 0;
};

void RoundTrip(Session& session, Frame frame) {
  ds::MutexLock lock(session.mu_);
  session.ep_->Send(frame);
  session.ep_->Recv(&frame);
}

void ReleaseThenSend(Session& session, Frame frame) {
  ds::MutexLock lock(session.idle_mu_);
  session.generation_ += 1;
  lock.Unlock();
  session.ep_->Send(frame);
}

}  // namespace fixture
