// dslint fixture: dstampede-callback-under-lock negatives — the
// doctrine pattern (collect under the lock, Finish() after release)
// and a continuation *written* under the lock, which runs later and
// so is not "under" it. Expected findings: 0.

namespace fixture {

struct Chan {
  ds::Mutex mu_{"fixture.chan_mu"};
  Wakeups wakeups_;
  std::vector<Payload> slots_;
};

void PutThenFinish(Chan& chan, Payload payload) {
  Wakeups wakeups;
  {
    ds::MutexLock lock(chan.mu_);
    chan.slots_.push_back(payload);
    chan.CollectLocked(&wakeups);
    // Written under the lock, runs when the waiter completes: the
    // enclosing lock does not apply inside the lambda body.
    wakeups.Add([&chan] { chan.wakeups_.Finish(); });
  }
  wakeups.Finish();
}

}  // namespace fixture
