// dslint fixture: dstampede-lock-order negatives (run with
// --hierarchy docs/lock_hierarchy.txt) — the documented direction,
// including a transitive (two-hop) path. Expected findings: 0.

namespace fixture {

struct Clf {
  ds::Mutex message_mu_{"clf.message_mu", ds::Mutex::kBlockingAllowed};
  ds::Mutex send_mu_{"clf.send_mu"};
  ds::Mutex fault_mu_{"fault_injector.mu"};
};

void Forward(Clf& clf) {
  ds::MutexLock message(clf.message_mu_);
  ds::MutexLock send(clf.send_mu_);
}

void Transitive(Clf& clf) {
  // message_mu -> fault_injector.mu has no direct edge, but the
  // documented path message_mu -> send_mu -> fault_injector.mu makes
  // the nesting legal.
  ds::MutexLock message(clf.message_mu_);
  ds::MutexLock fault(clf.fault_mu_);
}

}  // namespace fixture
