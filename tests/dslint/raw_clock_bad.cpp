// dslint fixture: dstampede-raw-clock positives. Never compiled —
// the checker lexes it (see tests/dslint_test.cpp). Expected
// findings: 4.
#include <chrono>
#include <thread>

namespace fixture {

long StampWall() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto wall = std::chrono::system_clock::now();
  return t0.time_since_epoch().count() + wall.time_since_epoch().count();
}

void NapRaw(State& state) {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  state.cv.wait_for(state.lk, std::chrono::milliseconds(5));
}

}  // namespace fixture
