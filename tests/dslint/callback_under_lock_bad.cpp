// dslint fixture: dstampede-callback-under-lock positive —
// completions fired while the container lock is still live.
// Expected findings: 2.

namespace fixture {

struct Chan {
  ds::Mutex mu_{"fixture.chan_mu"};
  Wakeups wakeups_;
  DeferredReply* reply_;
};

void DrainWrong(Chan& chan) {
  ds::MutexLock lock(chan.mu_);
  chan.wakeups_.Finish();
  chan.reply_->Complete();
}

}  // namespace fixture
