// dslint fixture: dstampede-lock-order positives (run with
// --hierarchy docs/lock_hierarchy.txt) — an inversion of a documented
// edge, an undocumented edge, and same-class nesting. Expected
// findings: 3.

namespace fixture {

struct Clf {
  ds::Mutex send_mu_{"clf.send_mu"};
  ds::Mutex message_mu_{"clf.message_mu", ds::Mutex::kBlockingAllowed};
};

void Inverted(Clf& clf) {
  ds::MutexLock send(clf.send_mu_);
  ds::MutexLock message(clf.message_mu_);
}

struct Pair {
  ds::Mutex a_mu_{"fixture.a_mu"};
  ds::Mutex b_mu_{"fixture.b_mu"};
};

void Undocumented(Pair& pair) {
  ds::MutexLock a(pair.a_mu_);
  ds::MutexLock b(pair.b_mu_);
}

struct Shards {
  ds::Mutex left_mu_{"fixture.shard_mu"};
  ds::Mutex right_mu_{"fixture.shard_mu"};
};

void SameClass(Shards& shards) {
  ds::MutexLock left(shards.left_mu_);
  ds::MutexLock right(shards.right_mu_);
}

}  // namespace fixture
