// dslint fixture: dstampede-raw-clock negatives — all time goes
// through the clock seam (common/clock.hpp). Expected findings: 0.
#include "dstampede/common/clock.hpp"

namespace fixture {

void NapSeam() {
  const dstampede::TimePoint start = dstampede::Now();
  dstampede::SleepFor(std::chrono::milliseconds(5));
  dstampede::SleepUntil(start + std::chrono::milliseconds(10));
}

}  // namespace fixture
