// dslint fixture: dstampede-raw-sync-primitive positives — standard
// primitives where the ds:: wrappers are required. Expected
// findings: 4.
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

struct Worker {
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread runner_;
  bool stop_ = false;
};

void Tick(Worker& worker) {
  std::unique_lock hold(worker.mu_);
  worker.stop_ = true;
}

}  // namespace fixture
