// Telemetry layer: metrics registry exactness under contention, trace
// propagation across the TCP client -> surrogate -> owner dispatch
// path (including the parked-waiter suspension), sys/metrics snapshot
// integrity, and old-wire (no trace field) interop.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/common/json.hpp"
#include "dstampede/common/metrics.hpp"
#include "dstampede/common/trace.hpp"
#include "dstampede/core/runtime.hpp"
#include "dstampede/core/wire.hpp"
#include "dstampede/marshal/xdr.hpp"

namespace dstampede {
namespace {

using client::CClient;
using client::Listener;
using core::ConnMode;
using core::GetSpec;

std::string HexId(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return buf;
}

// Instrument names contain dots ("stm.puts"), so FindPath's
// dot-splitting cannot reach them; walk the two levels explicitly.
const json::Value* RegistryEntry(const json::Value& snapshot,
                                 const char* section, const char* name) {
  const json::Value* registry = snapshot.Find("registry");
  if (registry == nullptr) return nullptr;
  const json::Value* table = registry->Find(section);
  return table == nullptr ? nullptr : table->Find(name);
}

// Spans of one trace, keyed by name, pulled from a parsed snapshot.
struct SpanInfo {
  std::string span_id;
  std::string parent_span_id;
  std::int64_t duration_us = 0;
};

std::map<std::string, SpanInfo> SpansOfTrace(const json::Value& snapshot,
                                             const std::string& trace_hex) {
  std::map<std::string, SpanInfo> out;
  const json::Value* spans = snapshot.Find("spans");
  if (spans == nullptr || !spans->is_array()) return out;
  for (const json::Value& s : spans->AsArray()) {
    const json::Value* tid = s.Find("trace_id");
    if (tid == nullptr || tid->AsString() != trace_hex) continue;
    SpanInfo info;
    info.span_id = s.Find("span_id")->AsString();
    info.parent_span_id = s.Find("parent_span_id")->AsString();
    info.duration_us = s.Find("duration_us")->AsInt();
    out[s.Find("name")->AsString()] = info;
  }
  return out;
}

// --- registry primitives ---------------------------------------------------

TEST(TelemetryCounters, ExactUnderContention) {
  metrics::Counter counter;
  metrics::Gauge gauge;
  metrics::Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        gauge.Add(2);
        gauge.Sub(1);
        hist.Observe(i & 1023);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge.Value(), static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.Min(), 0);
  // 1023 falls in a log bucket; the reported max carries the documented
  // ~3% bucket error bound.
  EXPECT_GE(hist.Max(), 1023);
  EXPECT_LE(hist.Max(), 1100);
}

TEST(TelemetryHistogram, EmptySafe) {
  metrics::Histogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Sum(), 0);
  EXPECT_EQ(hist.Mean(), 0);
  EXPECT_EQ(hist.Min(), 0);
  EXPECT_EQ(hist.Max(), 0);
  EXPECT_EQ(hist.Percentile(50), 0);
  EXPECT_EQ(hist.Percentile(99), 0);
  EXPECT_FALSE(hist.Summary().empty());
}

TEST(TelemetryHistogram, SmallValuesExactLargeApproximate) {
  metrics::Histogram hist;
  for (int v : {0, 1, 5, 15}) hist.Observe(v);
  EXPECT_EQ(hist.Min(), 0);
  EXPECT_EQ(hist.Max(), 15);
  hist.Observe(-7);  // clamps to 0
  EXPECT_EQ(hist.Min(), 0);
  EXPECT_EQ(hist.Count(), 5u);
}

TEST(TelemetryRegistry, StableInstrumentAddressesAndJson) {
  metrics::Registry registry;
  metrics::Counter& a = registry.GetCounter("x.count");
  metrics::Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  registry.GetGauge("x.depth").Set(7);
  registry.GetHistogram("x.lat_us").Observe(42);
  const std::uint64_t token =
      registry.AddProvider("x.pull", [] { return std::int64_t{11}; });

  std::string out;
  registry.WriteJson(out);
  auto parsed = json::Parse(out);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << out;
  EXPECT_EQ(parsed->Find("counters")->Find("x.count")->AsInt(), 3);
  EXPECT_EQ(parsed->Find("gauges")->Find("x.depth")->AsInt(), 7);
  EXPECT_EQ(parsed->Find("providers")->Find("x.pull")->AsInt(), 11);
  EXPECT_EQ(parsed->Find("histograms")->Find("x.lat_us")->Find("count")
                ->AsInt(),
            1);

  registry.RemoveProvider(token);
  out.clear();
  registry.WriteJson(out);
  parsed = json::Parse(out);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("providers")->Find("x.pull"), nullptr);
}

// --- cluster fixtures ------------------------------------------------------

class TelemetryClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok()) << rt.status();
    rt_ = std::move(rt).value();
    auto listener = Listener::Start(*rt_);
    ASSERT_TRUE(listener.ok()) << listener.status();
    listener_ = std::move(listener).value();
  }

  void TearDown() override {
    if (listener_) listener_->Shutdown();
    if (rt_) rt_->Shutdown();
  }

  std::unique_ptr<CClient> JoinC(std::int32_t preferred_as, bool traced,
                                 const std::string& name = "dev") {
    CClient::Options opts;
    opts.server = listener_->addr();
    opts.name = name;
    opts.preferred_as = preferred_as;
    opts.trace_calls = traced;
    auto client = CClient::Join(opts);
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  json::Value Snapshot(CClient& via, std::uint32_t target) {
    auto text = via.MetricsSnapshot(static_cast<AsId>(target));
    EXPECT_TRUE(text.ok()) << text.status();
    if (!text.ok()) return json::Value::MakeNull();
    auto parsed = json::Parse(*text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    return parsed.ok() ? std::move(*parsed) : json::Value::MakeNull();
  }

  std::unique_ptr<core::Runtime> rt_;
  std::unique_ptr<Listener> listener_;
};

// A blocking Get through the TCP client whose item arrives ~300 ms
// later must produce one trace whose spans cover the client call, the
// surrogate dispatch and the owner-side serve, with correct parenting
// and a serve duration that reflects the block time.
TEST_F(TelemetryClusterTest, TracedBlockingGetProducesSpanTree) {
  auto getter = JoinC(/*preferred_as=*/0, /*traced=*/true, "getter");
  auto putter = JoinC(/*preferred_as=*/0, /*traced=*/false, "putter");

  auto ch = getter->CreateChannel();
  ASSERT_TRUE(ch.ok()) << ch.status();
  ASSERT_EQ(AsIndex(ch->owner()), 0u);  // host AS owns it: local serve path
  auto in = getter->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok()) << in.status();
  auto out = putter->Connect(*ch, ConnMode::kOutput);
  ASSERT_TRUE(out.ok()) << out.status();

  Result<core::ItemView> got = InternalError("unset");
  std::thread blocked([&] {
    got = getter->Get(*in, GetSpec::Exact(0), Deadline::AfterMillis(10000));
  });
  std::this_thread::sleep_for(Millis(300));
  ASSERT_TRUE(putter->Put(*out, 0, Buffer(64)).ok());
  blocked.join();
  ASSERT_TRUE(got.ok()) << got.status();

  const std::uint64_t trace_id = getter->last_trace_id();
  ASSERT_NE(trace_id, 0u);

  json::Value snapshot = Snapshot(*putter, 0);
  auto spans = SpansOfTrace(snapshot, HexId(trace_id));
  ASSERT_GE(spans.size(), 3u) << "spans of trace " << HexId(trace_id);
  ASSERT_TRUE(spans.count("client.call"));
  ASSERT_TRUE(spans.count("surrogate.dispatch"));
  ASSERT_TRUE(spans.count("owner.serve"));
  // Parenting: client.call -> surrogate.dispatch -> owner.serve.
  EXPECT_EQ(spans["surrogate.dispatch"].parent_span_id,
            spans["client.call"].span_id);
  EXPECT_EQ(spans["owner.serve"].parent_span_id,
            spans["surrogate.dispatch"].span_id);
  // The serve span covers the ~300 ms the getter was blocked.
  EXPECT_GE(spans["owner.serve"].duration_us, 150000);
  EXPECT_GE(spans["client.call"].duration_us,
            spans["owner.serve"].duration_us);
}

// When the container lives on a different space than the surrogate's
// host, the context crosses CLF and the suspension shows up as an
// owner.parked span on the owning space, parented into the same trace.
TEST_F(TelemetryClusterTest, RemoteParkedGetSpansOnOwningSpace) {
  auto getter = JoinC(/*preferred_as=*/0, /*traced=*/true, "getter");

  auto ch = rt_->as(1).CreateChannel();  // owned by AS1, host is AS0
  ASSERT_TRUE(ch.ok()) << ch.status();
  auto in = getter->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok()) << in.status();
  auto out = rt_->as(1).Connect(*ch, ConnMode::kOutput);
  ASSERT_TRUE(out.ok()) << out.status();

  Result<core::ItemView> got = InternalError("unset");
  std::thread blocked([&] {
    got = getter->Get(*in, GetSpec::Exact(0), Deadline::AfterMillis(10000));
  });
  std::this_thread::sleep_for(Millis(300));
  ASSERT_TRUE(rt_->as(1).Put(*out, 0, Buffer(64)).ok());
  blocked.join();
  ASSERT_TRUE(got.ok()) << got.status();

  const std::uint64_t trace_id = getter->last_trace_id();
  ASSERT_NE(trace_id, 0u);

  // The host space recorded the edge spans...
  json::Value host = Snapshot(*getter, 0);
  auto host_spans = SpansOfTrace(host, HexId(trace_id));
  ASSERT_TRUE(host_spans.count("client.call"));
  ASSERT_TRUE(host_spans.count("surrogate.dispatch"));
  // ...and the owning space recorded the parked suspension, fetched
  // through the forwarded sys/metrics RPC.
  json::Value owner = Snapshot(*getter, 1);
  auto owner_spans = SpansOfTrace(owner, HexId(trace_id));
  ASSERT_TRUE(owner_spans.count("owner.parked"))
      << "owner spans: " << owner_spans.size();
  // Parked roughly as long as the producer stayed silent, and hung off
  // the surrogate's dispatch span across the CLF hop.
  EXPECT_GE(owner_spans["owner.parked"].duration_us, 150000);
  EXPECT_EQ(owner_spans["owner.parked"].parent_span_id,
            host_spans["surrogate.dispatch"].span_id);

  const json::Value* deferred =
      RegistryEntry(owner, "counters", "dispatch.deferred");
  ASSERT_NE(deferred, nullptr);
  EXPECT_GE(deferred->AsInt(), 1);
}

// The snapshot's space-time section must reflect a known put/get
// sequence exactly: occupancy, frontier, total puts and GC reclaims.
TEST_F(TelemetryClusterTest, SnapshotReflectsPutGetSequence) {
  core::ChannelAttr attr;
  attr.debug_name = "seq";
  auto ch = rt_->as(0).CreateChannel(attr);
  ASSERT_TRUE(ch.ok()) << ch.status();
  auto out = rt_->as(0).Connect(*ch, ConnMode::kOutput);
  auto in = rt_->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok() && in.ok());
  for (Timestamp ts = 0; ts < 5; ++ts) {
    ASSERT_TRUE(rt_->as(0).Put(*out, ts, Buffer(32)).ok());
  }
  for (Timestamp ts = 0; ts < 3; ++ts) {
    auto item = rt_->as(0).Get(*in, GetSpec::Exact(ts));
    ASSERT_TRUE(item.ok()) << item.status();
    ASSERT_TRUE(rt_->as(0).Consume(*in, ts).ok());
  }
  // Let the GC sweep reclaim the consumed prefix.
  const Deadline gc_wait = Deadline::AfterMillis(5000);
  while (!gc_wait.expired()) {
    auto owned = rt_->as(0).FindChannel(ch->bits());
    ASSERT_NE(owned, nullptr);
    if (owned->total_reclaimed() >= 3) break;
    std::this_thread::sleep_for(Millis(10));
  }

  auto text = rt_->as(0).MetricsSnapshot(rt_->as(0).id());
  ASSERT_TRUE(text.ok()) << text.status();
  auto parsed = json::Parse(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << *text;

  const json::Value* channels = parsed->Find("channels");
  ASSERT_NE(channels, nullptr);
  const json::Value* seq = nullptr;
  for (const json::Value& c : channels->AsArray()) {
    if (c.Find("name")->AsString() == "seq") seq = &c;
  }
  ASSERT_NE(seq, nullptr);
  EXPECT_EQ(seq->Find("total_puts")->AsInt(), 5);
  EXPECT_EQ(seq->Find("reclaimed")->AsInt(), 3);
  EXPECT_EQ(seq->Find("live_items")->AsInt(), 2);
  EXPECT_EQ(seq->Find("frontier")->AsInt(), 4);

  // The registry mirrors the same sequence (counters are AS-wide, and
  // this runtime ran nothing else on AS0's containers).
  EXPECT_GE(RegistryEntry(*parsed, "counters", "stm.puts")->AsInt(), 5);
  EXPECT_GE(RegistryEntry(*parsed, "counters", "stm.gets")->AsInt(), 3);
  EXPECT_GE(RegistryEntry(*parsed, "counters", "stm.reclaimed_items")->AsInt(),
            3);
  const json::Value* lag =
      RegistryEntry(*parsed, "histograms", "stm.reclaim_lag_us");
  ASSERT_NE(lag, nullptr);
  EXPECT_GE(lag->Find("count")->AsInt(), 3);
}

// An old-wire peer encodes requests without the trace field; a new
// server must execute them unchanged, and a traced frame must decode
// to the same reply (responses never carry trace bytes).
TEST_F(TelemetryClusterTest, OldWireFramesInteroperate) {
  // Untraced frame, exactly the pre-telemetry byte layout.
  marshal::XdrEncoder plain;
  plain.PutU32(static_cast<std::uint32_t>(core::Op::kCreateChannel));
  plain.PutU64(/*request_id=*/77);
  core::CreateReq req;
  req.debug_name = "legacy";
  req.Encode(plain);
  Buffer reply = rt_->as(0).ExecuteWireRequest(plain.Take());
  marshal::XdrDecoder dec(reply);
  auto hdr = core::DecodeResponseHeader(dec);
  ASSERT_TRUE(hdr.ok()) << hdr.status();
  EXPECT_TRUE(hdr->status.ok()) << hdr->status;
  EXPECT_EQ(hdr->request_id, 77u);
  auto bits = dec.GetU64();
  ASSERT_TRUE(bits.ok());
  EXPECT_NE(rt_->as(0).FindChannel(*bits), nullptr);

  // Traced frame: op word flagged, context between id and op fields.
  marshal::XdrEncoder traced;
  traced.PutU32(static_cast<std::uint32_t>(core::Op::kCreateChannel) |
                core::kTraceFlag);
  traced.PutU64(/*request_id=*/78);
  traced.PutU64(/*trace_id=*/0xABCDu);
  traced.PutU64(/*span_id=*/0x1234u);
  traced.PutU32(trace::TraceContext::kSampled);
  core::CreateReq req2;
  req2.debug_name = "traced";
  req2.Encode(traced);
  Buffer reply2 = rt_->as(0).ExecuteWireRequest(traced.Take());
  marshal::XdrDecoder dec2(reply2);
  auto hdr2 = core::DecodeResponseHeader(dec2);
  ASSERT_TRUE(hdr2.ok()) << hdr2.status();
  EXPECT_TRUE(hdr2->status.ok()) << hdr2->status;
  EXPECT_EQ(hdr2->request_id, 78u);
}

// A remote blocking Get that expires at its deadline must bump the
// owner's dropped_or_expired counter (the timer-wheel expiry path).
TEST_F(TelemetryClusterTest, DeferredTimeoutCountsDroppedOrExpired) {
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok()) << ch.status();
  auto in = rt_->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok()) << in.status();

  metrics::Counter& dropped =
      rt_->as(1).metrics_registry().GetCounter("dispatch.dropped_or_expired");
  const std::uint64_t before = dropped.Value();

  auto item = rt_->as(0).Get(*in, GetSpec::Exact(0),
                             Deadline::AfterMillis(150));
  EXPECT_EQ(item.status().code(), StatusCode::kTimeout) << item.status();
  // The caller's timeout races the owning space's expiry sweep: the
  // Get returns the moment its deadline passes, the counter bumps when
  // AS 1 notices. Poll instead of sampling.
  const TimePoint give_up = Now() + Millis(2000);
  while (dropped.Value() < before + 1 && Now() < give_up) {
    std::this_thread::sleep_for(Millis(5));
  }
  EXPECT_GE(dropped.Value(), before + 1);
}

}  // namespace
}  // namespace dstampede
