// Self-tests for the dslint standalone checker (tools/dslint): each
// fixture under tests/dslint/ encodes one check's positive or
// negative space, and this test shells the real binary out over them
// exactly as the CI gate does over src/. The fixtures are lexed, not
// compiled, so they reference project types freely.
//
// Exit-code contract: 0 clean, 1 findings, 2 usage/IO error.

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct CheckerRun {
  int exit_code = -1;
  std::string output;
};

CheckerRun Dslint(const std::string& args) {
  const std::string cmd = std::string(DSLINT_BIN) + " " + args + " 2>&1";
  CheckerRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

int Count(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

std::string Fixture(const char* name) {
  return std::string(DSLINT_FIXTURE_DIR) + "/" + name;
}

// Runs one fixture as if it lived at `rel` inside the repo (the
// path-based exemptions key off the repo-relative path).
CheckerRun Check(const char* fixture, const char* rel,
          bool with_hierarchy = false) {
  std::string args = "--as-path ";
  args += rel;
  if (with_hierarchy) {
    args += " --hierarchy ";
    args += DSLINT_REPO_ROOT "/docs/lock_hierarchy.txt";
  }
  args += " ";
  args += Fixture(fixture);
  return Dslint(args);
}

TEST(DslintRawClock, FlagsRawClocksSleepsAndTimedWaits) {
  const CheckerRun run = Check("raw_clock_bad.cpp", "src/dstampede/core/fix.cpp");
  EXPECT_EQ(1, run.exit_code) << run.output;
  EXPECT_EQ(4, Count(run.output, "[dstampede-raw-clock]")) << run.output;
}

TEST(DslintRawClock, CleanThroughTheSeam) {
  const CheckerRun run = Check("raw_clock_ok.cpp", "src/dstampede/core/fix.cpp");
  EXPECT_EQ(0, run.exit_code) << run.output;
}

TEST(DslintRawClock, ClockSeamItselfIsExempt) {
  // The same violations are legal inside common/clock* — that is
  // where the raw clocks are supposed to live.
  const CheckerRun run =
      Check("raw_clock_bad.cpp", "src/dstampede/common/clock.cpp");
  EXPECT_EQ(0, run.exit_code) << run.output;
}

TEST(DslintBlocking, FlagsBlockingCallsUnderOrdinaryLock) {
  const CheckerRun run =
      Check("blocking_under_lock_bad.cpp", "src/dstampede/core/fix.cpp");
  EXPECT_EQ(1, run.exit_code) << run.output;
  EXPECT_EQ(2, Count(run.output, "[dstampede-blocking-under-lock]"))
      << run.output;
}

TEST(DslintBlocking, BlockingAllowedMutexAndEarlyUnlockAreClean) {
  const CheckerRun run =
      Check("blocking_allowed_ok.cpp", "src/dstampede/core/fix.cpp");
  EXPECT_EQ(0, run.exit_code) << run.output;
}

TEST(DslintCallback, FlagsFinishAndCompleteUnderLock) {
  const CheckerRun run =
      Check("callback_under_lock_bad.cpp", "src/dstampede/core/fix.cpp");
  EXPECT_EQ(1, run.exit_code) << run.output;
  EXPECT_EQ(2, Count(run.output, "[dstampede-callback-under-lock]"))
      << run.output;
}

TEST(DslintCallback, CollectThenFinishAndLambdaBodiesAreClean) {
  const CheckerRun run =
      Check("callback_lambda_ok.cpp", "src/dstampede/core/fix.cpp");
  EXPECT_EQ(0, run.exit_code) << run.output;
}

TEST(DslintRawSync, FlagsRawPrimitivesOutsideCommon) {
  const CheckerRun run = Check("raw_sync_bad.cpp", "src/dstampede/core/fix.cpp");
  EXPECT_EQ(1, run.exit_code) << run.output;
  EXPECT_EQ(4, Count(run.output, "[dstampede-raw-sync-primitive]"))
      << run.output;
}

TEST(DslintRawSync, CommonItselfIsExempt) {
  // The wrappers in common/ are built out of the raw primitives.
  const CheckerRun run =
      Check("raw_sync_bad.cpp", "src/dstampede/common/worker.hpp");
  EXPECT_EQ(0, run.exit_code) << run.output;
}

TEST(DslintLockOrder, FlagsInversionUndocumentedAndSameClass) {
  const CheckerRun run = Check("lock_order_bad.cpp", "src/dstampede/core/fix.cpp",
                        /*with_hierarchy=*/true);
  EXPECT_EQ(1, run.exit_code) << run.output;
  EXPECT_EQ(3, Count(run.output, "[dstampede-lock-order]")) << run.output;
  EXPECT_NE(std::string::npos, run.output.find("inverts")) << run.output;
  EXPECT_NE(std::string::npos, run.output.find("undocumented")) << run.output;
  EXPECT_NE(std::string::npos, run.output.find("nested acquisition"))
      << run.output;
}

TEST(DslintLockOrder, DocumentedEdgesIncludingTransitiveAreClean) {
  const CheckerRun run = Check("lock_order_ok.cpp", "src/dstampede/core/fix.cpp",
                        /*with_hierarchy=*/true);
  EXPECT_EQ(0, run.exit_code) << run.output;
}

TEST(DslintNolint, JustifiedSuppressesUnjustifiedNags) {
  const CheckerRun run = Check("nolint.cpp", "src/dstampede/core/fix.cpp");
  EXPECT_EQ(1, run.exit_code) << run.output;
  EXPECT_EQ(0, Count(run.output, "[dstampede-raw-clock]")) << run.output;
  EXPECT_EQ(1, Count(run.output, "[dstampede-nolint-justification]"))
      << run.output;
}

TEST(DslintHierarchy, FileMatchesConcurrencyDocTable) {
  const CheckerRun run = Dslint("--verify-hierarchy " DSLINT_REPO_ROOT
                         "/docs/lock_hierarchy.txt " DSLINT_REPO_ROOT
                         "/docs/CONCURRENCY.md");
  EXPECT_EQ(0, run.exit_code) << run.output;
}

}  // namespace
