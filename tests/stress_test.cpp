// Concurrency stress: many threads hammering one channel, concurrent
// senders over one CLF endpoint, a wide runtime with crossing flows,
// and listener churn (devices joining/leaving rapidly).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dstampede/clf/endpoint.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede {
namespace {

TEST(StressTest, ManyProducersManyConsumersOneChannel) {
  core::LocalChannel ch{core::ChannelAttr{}};
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr Timestamp kPerProducer = 100;

  // Attach every consumer connection up front: items reclaim as soon as
  // all *attached* inputs consume them, so a late joiner would
  // (correctly) find early timestamps below the reclaim horizon.
  std::vector<std::uint32_t> conns;
  for (int c = 0; c < kConsumers; ++c) {
    conns.push_back(ch.Attach(core::ConnMode::kInput, "c"));
  }

  std::vector<std::thread> threads;
  // Producers own disjoint timestamp ranges.
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (Timestamp i = 0; i < kPerProducer; ++i) {
        const Timestamp ts = p * kPerProducer + i;
        Buffer b(32);
        FillPattern(b, static_cast<std::uint64_t>(ts));
        ASSERT_TRUE(
            ch.Put(ts, SharedBuffer(std::move(b)), Deadline::Infinite()).ok());
      }
    });
  }
  // Consumers each read and consume every timestamp.
  std::atomic<int> validated{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, conn = conns[c]] {
      for (Timestamp ts = 0; ts < kProducers * kPerProducer; ++ts) {
        auto item =
            ch.Get(conn, core::GetSpec::Exact(ts), Deadline::AfterMillis(30000));
        ASSERT_TRUE(item.ok()) << item.status();
        ASSERT_TRUE(CheckPattern(item->payload.span(),
                                 static_cast<std::uint64_t>(ts)));
        ASSERT_TRUE(ch.Consume(conn, ts).ok());
        validated.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(validated.load(), kProducers * kConsumers * kPerProducer);
  EXPECT_EQ(ch.live_items(), 0u);
}

TEST(StressTest, ConcurrentSendersOverOneClfEndpoint) {
  auto receiver = clf::Endpoint::Create({});
  ASSERT_TRUE(receiver.ok());
  constexpr int kSenders = 3;
  constexpr int kPerSender = 60;

  std::vector<std::unique_ptr<clf::Endpoint>> senders;
  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    auto ep = clf::Endpoint::Create({});
    ASSERT_TRUE(ep.ok());
    senders.push_back(std::move(ep).value());
  }
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        Buffer msg(2048);
        FillPattern(msg, static_cast<std::uint64_t>(s) * 10000 + i);
        ASSERT_TRUE(senders[s]->Send((*receiver)->addr(), msg).ok());
      }
    });
  }
  // Per-sender streams must each arrive in order.
  std::map<transport::SockAddr, int> next_index;
  for (int got = 0; got < kSenders * kPerSender; ++got) {
    Buffer msg;
    transport::SockAddr from;
    ASSERT_TRUE(
        (*receiver)->Recv(msg, from, Deadline::AfterMillis(30000)).ok());
    int sender = -1;
    for (int s = 0; s < kSenders; ++s) {
      if (senders[s]->addr() == from) sender = s;
    }
    ASSERT_GE(sender, 0);
    const int index = next_index[from]++;
    EXPECT_TRUE(CheckPattern(
        msg, static_cast<std::uint64_t>(sender) * 10000 + index))
        << "sender " << sender << " message " << index << " out of order";
  }
  for (auto& t : threads) t.join();
}

TEST(StressTest, CrossingFlowsAcrossFourAddressSpaces) {
  core::Runtime::Options opts;
  opts.num_address_spaces = 4;
  opts.gc_interval = Millis(10);
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());

  // Each AS hosts a channel; each AS produces into the next AS's
  // channel and consumes its own — a ring of crossing remote flows.
  constexpr Timestamp kFrames = 40;
  std::vector<ChannelId> channels;
  for (std::size_t i = 0; i < 4; ++i) {
    auto ch = (*rt)->as(i).CreateChannel();
    ASSERT_TRUE(ch.ok());
    channels.push_back(*ch);
  }
  std::atomic<int> done{0};
  for (std::size_t i = 0; i < 4; ++i) {
    (*rt)->as(i).Spawn("producer", [&, i] {
      auto out = (*rt)->as(i).Connect(channels[(i + 1) % 4],
                                      core::ConnMode::kOutput);
      if (!out.ok()) return;
      for (Timestamp ts = 0; ts < kFrames; ++ts) {
        Buffer b(1024);
        FillPattern(b, static_cast<std::uint64_t>(i) * 1000 + ts);
        if (!(*rt)->as(i).Put(*out, ts, std::move(b)).ok()) return;
      }
    });
    (*rt)->as(i).Spawn("consumer", [&, i] {
      auto in = (*rt)->as(i).Connect(channels[i], core::ConnMode::kInput);
      if (!in.ok()) return;
      const std::size_t producer = (i + 3) % 4;
      for (Timestamp ts = 0; ts < kFrames; ++ts) {
        auto item = (*rt)->as(i).Get(*in, core::GetSpec::Exact(ts),
                                     Deadline::AfterMillis(30000));
        if (!item.ok()) return;
        if (!CheckPattern(item->payload.span(),
                          static_cast<std::uint64_t>(producer) * 1000 + ts)) {
          return;
        }
        if (!(*rt)->as(i).Consume(*in, ts).ok()) return;
      }
      done.fetch_add(1);
    });
  }
  for (std::size_t i = 0; i < 4; ++i) (*rt)->as(i).JoinThreads();
  EXPECT_EQ(done.load(), 4);
}

TEST(StressTest, DeviceChurnAgainstOneListener) {
  core::Runtime::Options opts;
  opts.num_address_spaces = 2;
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto listener = client::Listener::Start(**rt);
  ASSERT_TRUE(listener.ok());

  constexpr int kWaves = 3;
  constexpr int kDevicesPerWave = 5;
  std::atomic<int> ok_count{0};
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> devices;
    for (int d = 0; d < kDevicesPerWave; ++d) {
      devices.emplace_back([&, wave, d] {
        client::CClient::Options copts;
        copts.server = (*listener)->addr();
        copts.name = "churn-" + std::to_string(wave) + "-" + std::to_string(d);
        auto device = client::CClient::Join(copts);
        if (!device.ok()) return;
        auto ch = (*device)->CreateChannel();
        if (!ch.ok()) return;
        auto out = (*device)->Connect(*ch, core::ConnMode::kOutput);
        auto in = (*device)->Connect(*ch, core::ConnMode::kInput);
        if (!out.ok() || !in.ok()) return;
        for (Timestamp ts = 0; ts < 5; ++ts) {
          if (!(*device)->Put(*out, ts, Buffer(256)).ok()) return;
          auto item = (*device)->Get(*in, core::GetSpec::Exact(ts),
                                     Deadline::AfterMillis(10000));
          if (!item.ok()) return;
          if (!(*device)->Consume(*in, ts).ok()) return;
        }
        if ((*device)->Leave().ok()) ok_count.fetch_add(1);
      });
    }
    for (auto& t : devices) t.join();
  }
  EXPECT_EQ(ok_count.load(), kWaves * kDevicesPerWave);
  // Every wave left cleanly; give surrogate threads a beat to retire.
  for (int i = 0; i < 100 && (*listener)->surrogates_in(
                                 client::Surrogate::State::kLeft) <
                                 static_cast<std::size_t>(kWaves * kDevicesPerWave);
       ++i) {
    std::this_thread::sleep_for(Millis(10));
  }
  EXPECT_EQ((*listener)->surrogates_in(client::Surrogate::State::kLeft),
            static_cast<std::size_t>(kWaves * kDevicesPerWave));
  (*listener)->Shutdown();
}

TEST(StressTest, ReconnectChurnLosesAndDuplicatesNothing) {
  // Randomized connection kills on the device<->surrogate TCP edge
  // while a client streams into a queue: with probability 0.05 the
  // surrogate drops the link before executing a request, forcing a
  // transparent reconnect + replay. Every acked put must land exactly
  // once and in order; the client must finish without a surfaced error.
  auto rt = core::Runtime::Create(core::Runtime::Options{
      .num_address_spaces = 2, .gc_interval = Millis(10)});
  ASSERT_TRUE(rt.ok()) << rt.status();

  clf::FaultInjector::Config cfg;
  cfg.connection_kill_probability = 0.05;
  cfg.seed = 0xC0FFEE;
  clf::FaultInjector edge_faults(cfg);

  client::Listener::Options lopts;
  lopts.edge_faults = &edge_faults;
  auto listener = client::Listener::Start(**rt, lopts);
  ASSERT_TRUE(listener.ok()) << listener.status();

  client::CClient::Options copts;
  copts.server = (*listener)->addr();
  auto joined = client::CClient::Join(copts);
  ASSERT_TRUE(joined.ok()) << joined.status();
  auto& client = *joined;

  auto q = client->CreateQueue();
  ASSERT_TRUE(q.ok()) << q.status();
  auto out = client->Connect(*q, core::ConnMode::kOutput);
  auto in = client->Connect(*q, core::ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  constexpr int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    Status s = client->Put(*out, i, Buffer{static_cast<std::uint8_t>(i),
                                           static_cast<std::uint8_t>(i >> 8)});
    ASSERT_TRUE(s.ok()) << "put " << i << ": " << s;
  }
  for (int i = 0; i < kOps; ++i) {
    auto item = client->Get(*in, Deadline::AfterMillis(10000));
    ASSERT_TRUE(item.ok()) << "get " << i << ": " << item.status();
    const auto bytes = item->payload.ToVector();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(i)) << "at " << i;
    EXPECT_EQ(bytes[1], static_cast<std::uint8_t>(i >> 8)) << "at " << i;
  }
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(100)).status().code(),
            StatusCode::kTimeout)
      << "a duplicated put would leave an extra item behind";

  // With ~600+ consults at p=0.05, the odds of zero kills are nil — the
  // run above really did exercise the reconnect path.
  EXPECT_GT(edge_faults.connections_killed(), 0u);
  EXPECT_EQ(client->reconnects(), edge_faults.connections_killed());
  EXPECT_EQ((*listener)->sessions_resumed(), edge_faults.connections_killed());

  ASSERT_TRUE(client->Leave().ok());
  (*listener)->Shutdown();
}

}  // namespace
}  // namespace dstampede
