// LocalChannel semantics: timestamp-indexed storage, the four get
// selectors, blocking behaviour, per-connection consume state, the
// reclamation rule (GC safety and liveness), capacity back-pressure,
// the reclaim horizon, and close/cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dstampede/core/channel.hpp"

namespace dstampede::core {
namespace {

SharedBuffer Payload(std::string_view s) { return SharedBuffer::FromString(s); }

class ChannelTest : public ::testing::Test {
 protected:
  LocalChannel ch_{ChannelAttr{}};
};

TEST_F(ChannelTest, PutThenExactGet) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInputOutput, "t");
  ASSERT_TRUE(ch_.Put(5, Payload("five"), Deadline::Infinite()).ok());
  auto item = ch_.Get(conn, GetSpec::Exact(5), Deadline::Poll());
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->timestamp, 5);
  EXPECT_EQ(item->payload.ToString(), "five");
}

TEST_F(ChannelTest, DuplicateTimestampRejected) {
  ASSERT_TRUE(ch_.Put(1, Payload("a"), Deadline::Infinite()).ok());
  EXPECT_EQ(ch_.Put(1, Payload("b"), Deadline::Infinite()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ChannelTest, InvalidTimestampRejected) {
  EXPECT_EQ(ch_.Put(kInvalidTimestamp, Payload("x"), Deadline::Poll()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ChannelTest, RandomAccessByTimestamp) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  for (Timestamp ts : {10, 30, 20}) {
    ASSERT_TRUE(
        ch_.Put(ts, Payload(std::to_string(ts)), Deadline::Infinite()).ok());
  }
  // Access out of arrival order.
  EXPECT_EQ(ch_.Get(conn, GetSpec::Exact(20), Deadline::Poll())
                ->payload.ToString(),
            "20");
  EXPECT_EQ(ch_.Get(conn, GetSpec::Exact(10), Deadline::Poll())
                ->payload.ToString(),
            "10");
}

TEST_F(ChannelTest, OldestAndNewestSelectors) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  for (Timestamp ts : {7, 3, 9}) {
    ASSERT_TRUE(ch_.Put(ts, Payload("x"), Deadline::Infinite()).ok());
  }
  EXPECT_EQ(ch_.Get(conn, GetSpec::Oldest(), Deadline::Poll())->timestamp, 3);
  EXPECT_EQ(ch_.Get(conn, GetSpec::Newest(), Deadline::Poll())->timestamp, 9);
}

TEST_F(ChannelTest, SelectorsSkipConsumedItems) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  for (Timestamp ts : {1, 2, 3}) {
    ASSERT_TRUE(ch_.Put(ts, Payload("x"), Deadline::Infinite()).ok());
  }
  ASSERT_TRUE(ch_.Consume(conn, 1).ok());
  EXPECT_EQ(ch_.Get(conn, GetSpec::Oldest(), Deadline::Poll())->timestamp, 2);
  ASSERT_TRUE(ch_.Consume(conn, 3).ok());
  EXPECT_EQ(ch_.Get(conn, GetSpec::Newest(), Deadline::Poll())->timestamp, 2);
}

TEST_F(ChannelTest, NextAfterSelector) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  for (Timestamp ts : {10, 20, 30}) {
    ASSERT_TRUE(ch_.Put(ts, Payload("x"), Deadline::Infinite()).ok());
  }
  EXPECT_EQ(ch_.Get(conn, GetSpec::NextAfter(10), Deadline::Poll())->timestamp,
            20);
  EXPECT_EQ(ch_.Get(conn, GetSpec::NextAfter(25), Deadline::Poll())->timestamp,
            30);
  EXPECT_EQ(
      ch_.Get(conn, GetSpec::NextAfter(30), Deadline::Poll()).status().code(),
      StatusCode::kTimeout);
}

TEST_F(ChannelTest, ExactGetBlocksUntilPut) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  std::thread producer([&] {
    std::this_thread::sleep_for(Millis(30));
    ASSERT_TRUE(ch_.Put(42, Payload("late"), Deadline::Infinite()).ok());
  });
  auto item = ch_.Get(conn, GetSpec::Exact(42), Deadline::AfterMillis(5000));
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->payload.ToString(), "late");
  producer.join();
}

TEST_F(ChannelTest, GetTimesOutWhenNothingArrives) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  auto item = ch_.Get(conn, GetSpec::Exact(1), Deadline::AfterMillis(50));
  EXPECT_EQ(item.status().code(), StatusCode::kTimeout);
}

TEST_F(ChannelTest, OutputOnlyConnectionCannotGetOrConsume) {
  std::uint32_t conn = ch_.Attach(ConnMode::kOutput, "producer");
  ASSERT_TRUE(ch_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  EXPECT_EQ(ch_.Get(conn, GetSpec::Exact(1), Deadline::Poll()).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(ch_.Consume(conn, 1).code(), StatusCode::kPermissionDenied);
}

TEST_F(ChannelTest, UnknownConnectionRejected) {
  EXPECT_EQ(ch_.Get(999, GetSpec::Exact(1), Deadline::Poll()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ch_.Consume(999, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(ch_.Detach(999).code(), StatusCode::kNotFound);
}

// --- garbage collection --------------------------------------------------

TEST_F(ChannelTest, ItemReclaimedOnceAllInputsConsume) {
  std::uint32_t c1 = ch_.Attach(ConnMode::kInput, "a");
  std::uint32_t c2 = ch_.Attach(ConnMode::kInput, "b");
  ASSERT_TRUE(ch_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch_.Consume(c1, 1).ok());
  EXPECT_EQ(ch_.live_items(), 1u) << "GC safety: b has not consumed";
  ASSERT_TRUE(ch_.Consume(c2, 1).ok());
  EXPECT_EQ(ch_.live_items(), 0u) << "GC liveness: both consumed";
  EXPECT_EQ(ch_.total_reclaimed(), 1u);
}

TEST_F(ChannelTest, OutputConnectionsDoNotHoldItems) {
  std::uint32_t in = ch_.Attach(ConnMode::kInput, "in");
  ch_.Attach(ConnMode::kOutput, "out");
  ASSERT_TRUE(ch_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch_.Consume(in, 1).ok());
  EXPECT_EQ(ch_.live_items(), 0u);
}

TEST_F(ChannelTest, NoInputConnectionsMeansNoReclamation) {
  ASSERT_TRUE(ch_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  ch_.Sweep(0);
  EXPECT_EQ(ch_.live_items(), 1u)
      << "items retained for consumers that may join later";
}

TEST_F(ChannelTest, ConsumeUntilReclaimsPrefix) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  for (Timestamp ts = 0; ts < 10; ++ts) {
    ASSERT_TRUE(ch_.Put(ts, Payload("x"), Deadline::Infinite()).ok());
  }
  ASSERT_TRUE(ch_.ConsumeUntil(conn, 6).ok());
  EXPECT_EQ(ch_.live_items(), 3u);  // 7, 8, 9 remain
}

TEST_F(ChannelTest, ConsumeUntilIsMonotonic) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(ch_.ConsumeUntil(conn, 10).ok());
  ASSERT_TRUE(ch_.ConsumeUntil(conn, 5).ok());  // no-op, not a rollback
  ASSERT_TRUE(ch_.Put(7, Payload("x"), Deadline::Infinite()).ok());
  // 7 <= watermark(10): this connection has declared it garbage.
  EXPECT_EQ(ch_.Get(conn, GetSpec::Exact(7), Deadline::Poll()).status().code(),
            StatusCode::kGarbageCollected);
}

TEST_F(ChannelTest, DetachReleasesHeldItems) {
  std::uint32_t c1 = ch_.Attach(ConnMode::kInput, "a");
  std::uint32_t c2 = ch_.Attach(ConnMode::kInput, "b");
  ASSERT_TRUE(ch_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch_.Consume(c1, 1).ok());
  EXPECT_EQ(ch_.live_items(), 1u);
  ASSERT_TRUE(ch_.Detach(c2).ok());  // b leaves without consuming
  EXPECT_EQ(ch_.live_items(), 0u);
}

TEST_F(ChannelTest, GcHandlerReceivesReclaimedItems) {
  std::vector<Timestamp> reclaimed;
  ch_.set_gc_handler([&](Timestamp ts, const SharedBuffer&) {
    reclaimed.push_back(ts);
  });
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  for (Timestamp ts = 0; ts < 3; ++ts) {
    ASSERT_TRUE(ch_.Put(ts, Payload("x"), Deadline::Infinite()).ok());
    ASSERT_TRUE(ch_.Consume(conn, ts).ok());
  }
  EXPECT_EQ(reclaimed, (std::vector<Timestamp>{0, 1, 2}));
}

TEST_F(ChannelTest, PutBelowReclaimHorizonRejected) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(ch_.Put(5, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch_.Consume(conn, 5).ok());
  EXPECT_EQ(ch_.live_items(), 0u);
  EXPECT_EQ(ch_.Put(5, Payload("again"), Deadline::Infinite()).code(),
            StatusCode::kGarbageCollected);
  EXPECT_EQ(ch_.Put(3, Payload("older"), Deadline::Infinite()).code(),
            StatusCode::kGarbageCollected);
  EXPECT_TRUE(ch_.Put(6, Payload("newer"), Deadline::Infinite()).ok());
}

TEST_F(ChannelTest, GetOfReclaimedTimestampReportsGarbage) {
  std::uint32_t c1 = ch_.Attach(ConnMode::kInput, "a");
  std::uint32_t c2 = ch_.Attach(ConnMode::kInput, "b");
  ASSERT_TRUE(ch_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch_.Consume(c1, 1).ok());
  ASSERT_TRUE(ch_.Consume(c2, 1).ok());
  EXPECT_EQ(
      ch_.Get(c1, GetSpec::Exact(1), Deadline::Poll()).status().code(),
      StatusCode::kGarbageCollected);
}

TEST_F(ChannelTest, SweepReportsNoticesWithContainerBits) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(ch_.Put(1, Payload("abc"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch_.Consume(conn, 1).ok());
  auto notices = ch_.Sweep(0x1234);
  ASSERT_EQ(notices.size(), 1u);
  EXPECT_EQ(notices[0].container_bits, 0x1234u);
  EXPECT_EQ(notices[0].timestamp, 1);
  EXPECT_EQ(notices[0].payload_size, 3u);
  EXPECT_FALSE(notices[0].is_queue);
  // Already drained: a second sweep reports nothing.
  EXPECT_TRUE(ch_.Sweep(0x1234).empty());
}

// --- capacity back-pressure ------------------------------------------------

TEST(ChannelCapacityTest, PutBlocksAtCapacityUntilReclaim) {
  ChannelAttr attr;
  attr.capacity_items = 2;
  LocalChannel ch(attr);
  std::uint32_t conn = ch.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(ch.Put(0, Payload("a"), Deadline::Poll()).ok());
  ASSERT_TRUE(ch.Put(1, Payload("b"), Deadline::Poll()).ok());
  // Full now.
  EXPECT_EQ(ch.Put(2, Payload("c"), Deadline::AfterMillis(50)).code(),
            StatusCode::kTimeout);
  std::thread consumer([&] {
    std::this_thread::sleep_for(Millis(30));
    ASSERT_TRUE(ch.Consume(conn, 0).ok());  // frees a slot
  });
  EXPECT_TRUE(ch.Put(2, Payload("c"), Deadline::AfterMillis(5000)).ok());
  consumer.join();
}

TEST(ChannelCapacityTest, UnboundedByDefault) {
  LocalChannel ch{ChannelAttr{}};
  for (Timestamp ts = 0; ts < 1000; ++ts) {
    ASSERT_TRUE(ch.Put(ts, Payload("x"), Deadline::Poll()).ok());
  }
  EXPECT_EQ(ch.live_items(), 1000u);
}

// --- close ---------------------------------------------------------------------

TEST(ChannelCloseTest, CloseWakesBlockedGetters) {
  LocalChannel ch{ChannelAttr{}};
  std::uint32_t conn = ch.Attach(ConnMode::kInput, "t");
  std::thread closer([&] {
    std::this_thread::sleep_for(Millis(30));
    ch.Close();
  });
  auto item = ch.Get(conn, GetSpec::Exact(1), Deadline::Infinite());
  EXPECT_EQ(item.status().code(), StatusCode::kCancelled);
  closer.join();
}

TEST(ChannelCloseTest, CloseFailsSubsequentPuts) {
  LocalChannel ch{ChannelAttr{}};
  ch.Close();
  EXPECT_EQ(ch.Put(1, Payload("x"), Deadline::Poll()).code(),
            StatusCode::kCancelled);
}

// --- introspection --------------------------------------------------------------

TEST_F(ChannelTest, IntrospectionCounters) {
  EXPECT_EQ(ch_.newest_timestamp(), kInvalidTimestamp);
  std::uint32_t in = ch_.Attach(ConnMode::kInput, "in");
  ch_.Attach(ConnMode::kOutput, "out");
  (void)in;
  EXPECT_EQ(ch_.input_connections(), 1u);
  ASSERT_TRUE(ch_.Put(3, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch_.Put(8, Payload("y"), Deadline::Infinite()).ok());
  EXPECT_EQ(ch_.newest_timestamp(), 8);
  EXPECT_EQ(ch_.total_puts(), 2u);
}

}  // namespace
}  // namespace dstampede::core
