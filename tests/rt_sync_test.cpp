// Real-time synchrony: pacing, tolerance, slippage handling.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/common/stats.hpp"
#include "dstampede/core/rt_sync.hpp"

namespace dstampede::core {
namespace {

TEST(RtSyncTest, EarlyThreadWaitsForTick) {
  RtSync pace(Millis(30), Millis(5));
  const TimePoint start = Now();
  ASSERT_TRUE(pace.Synchronize().ok());  // no work done: we are early
  const auto elapsed = ToMicros(Now() - start);
  EXPECT_GE(elapsed, 25000) << "should have slept until the tick";
  EXPECT_EQ(pace.slips(), 0u);
}

TEST(RtSyncTest, PacesLoopAtTargetRate) {
  // The paper's example: a camera pacing itself (scaled down: 20ms
  // ticks, 10 frames -> ~200ms total).
  RtSync pace(Millis(20), Millis(5));
  pace.Start();
  const TimePoint start = Now();
  for (int frame = 0; frame < 10; ++frame) {
    (void)pace.Synchronize();
  }
  const auto elapsed = ToMicros(Now() - start);
  EXPECT_GE(elapsed, 180000);
  EXPECT_LE(elapsed, 400000);
  EXPECT_EQ(pace.ticks(), 10u);
}

TEST(RtSyncTest, WithinToleranceNoSlip) {
  RtSync pace(Millis(20), Millis(15));
  pace.Start();
  std::this_thread::sleep_for(Millis(23));  // ~3ms late, within 15ms
  EXPECT_TRUE(pace.Synchronize().ok());
  EXPECT_EQ(pace.slips(), 0u);
}

TEST(RtSyncTest, LateBeyondToleranceInvokesHandler) {
  std::int64_t reported_slip = -1;
  RtSync pace(Millis(10), Millis(2),
              [&](std::int64_t slip) { reported_slip = slip; });
  pace.Start();
  std::this_thread::sleep_for(Millis(40));  // blow through tick+tolerance
  Status s = pace.Synchronize();
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(pace.slips(), 1u);
  EXPECT_GT(reported_slip, 0);
}

TEST(RtSyncTest, ReAnchorsAfterSlip) {
  // One hiccup must not cascade into a slip on every later tick.
  int slips = 0;
  RtSync pace(Millis(20), Millis(5), [&](std::int64_t) { ++slips; });
  pace.Start();
  std::this_thread::sleep_for(Millis(80));  // big one-time stall
  (void)pace.Synchronize();                 // slip #1, re-anchor
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(pace.Synchronize().ok()) << "tick " << i << " after re-anchor";
  }
  EXPECT_EQ(slips, 1);
}

TEST(RtSyncTest, SlipWithoutHandlerIsSafe) {
  RtSync pace(Millis(5), Millis(1));
  pace.Start();
  std::this_thread::sleep_for(Millis(20));
  EXPECT_EQ(pace.Synchronize().code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace dstampede::core
