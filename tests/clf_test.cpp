// CLF tests: reliable ordered delivery, fragmentation of large
// messages, the shared-memory fast path, and the property suite that
// drives the ARQ through seeded drop/duplicate/reorder schedules.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/clf/endpoint.hpp"

namespace dstampede::clf {
namespace {

std::unique_ptr<Endpoint> MakeEndpoint(Endpoint::Options opts = {}) {
  auto ep = Endpoint::Create(opts);
  EXPECT_TRUE(ep.ok()) << ep.status();
  return std::move(ep).value();
}

TEST(ClfTest, SmallMessageRoundTrip) {
  auto a = MakeEndpoint();
  auto b = MakeEndpoint();
  Buffer msg = {1, 2, 3};
  ASSERT_TRUE(a->Send(b->addr(), msg).ok());
  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(5000)).ok());
  EXPECT_EQ(got, msg);
  EXPECT_EQ(from, a->addr());
}

TEST(ClfTest, EmptyMessage) {
  auto a = MakeEndpoint();
  auto b = MakeEndpoint();
  ASSERT_TRUE(a->Send(b->addr(), {}).ok());
  Buffer got = {9};
  transport::SockAddr from;
  ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(5000)).ok());
  EXPECT_TRUE(got.empty());
}

TEST(ClfTest, LargeMessageFragmentsAndReassembles) {
  auto a = MakeEndpoint();
  auto b = MakeEndpoint();
  Buffer msg(1400 * 1024);  // ~24 fragments
  FillPattern(msg, 42);
  ASSERT_TRUE(a->Send(b->addr(), msg).ok());
  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(10000)).ok());
  ASSERT_EQ(got.size(), msg.size());
  EXPECT_TRUE(CheckPattern(got, 42));
  EXPECT_GT(a->stats().data_packets_sent.load(), 20u);
}

TEST(ClfTest, ManyMessagesStayOrdered) {
  auto a = MakeEndpoint();
  auto b = MakeEndpoint();
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    Buffer msg(64);
    FillPattern(msg, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(a->Send(b->addr(), msg).ok());
  }
  for (int i = 0; i < kCount; ++i) {
    Buffer got;
    transport::SockAddr from;
    ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(5000)).ok());
    EXPECT_TRUE(CheckPattern(got, static_cast<std::uint64_t>(i)))
        << "message " << i << " out of order or corrupt";
  }
}

TEST(ClfTest, BidirectionalTraffic) {
  auto a = MakeEndpoint();
  auto b = MakeEndpoint();
  std::thread peer([&] {
    for (int i = 0; i < 50; ++i) {
      Buffer got;
      transport::SockAddr from;
      ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(5000)).ok());
      ASSERT_TRUE(b->Send(from, got).ok());  // echo
    }
  });
  for (int i = 0; i < 50; ++i) {
    Buffer msg(512);
    FillPattern(msg, static_cast<std::uint64_t>(i) + 1000);
    ASSERT_TRUE(a->Send(b->addr(), msg).ok());
    Buffer got;
    transport::SockAddr from;
    ASSERT_TRUE(a->Recv(got, from, Deadline::AfterMillis(5000)).ok());
    EXPECT_EQ(got, msg);
  }
  peer.join();
}

TEST(ClfTest, MultiplePeersInterleaved) {
  auto hub = MakeEndpoint();
  auto a = MakeEndpoint();
  auto b = MakeEndpoint();
  for (int i = 0; i < 20; ++i) {
    Buffer from_a(32, 0xA);
    Buffer from_b(32, 0xB);
    ASSERT_TRUE(a->Send(hub->addr(), from_a).ok());
    ASSERT_TRUE(b->Send(hub->addr(), from_b).ok());
  }
  int got_a = 0, got_b = 0;
  for (int i = 0; i < 40; ++i) {
    Buffer got;
    transport::SockAddr from;
    ASSERT_TRUE(hub->Recv(got, from, Deadline::AfterMillis(5000)).ok());
    if (from == a->addr()) {
      EXPECT_EQ(got, Buffer(32, 0xA));
      ++got_a;
    } else {
      EXPECT_EQ(got, Buffer(32, 0xB));
      ++got_b;
    }
  }
  EXPECT_EQ(got_a, 20);
  EXPECT_EQ(got_b, 20);
}

TEST(ClfTest, RecvTimesOut) {
  auto a = MakeEndpoint();
  Buffer got;
  transport::SockAddr from;
  Status s = a->Recv(got, from, Deadline::AfterMillis(50));
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

TEST(ClfTest, SendAfterShutdownFails) {
  auto a = MakeEndpoint();
  auto b = MakeEndpoint();
  a->Shutdown();
  Buffer one = {1};
  EXPECT_EQ(a->Send(b->addr(), one).code(), StatusCode::kCancelled);
}

TEST(ClfTest, ShmFastPathDelivers) {
  Endpoint::Options opts;
  opts.enable_shm_fastpath = true;
  auto a = MakeEndpoint(opts);
  auto b = MakeEndpoint(opts);
  Buffer msg(300 * 1024);  // multiple shm chunks
  FillPattern(msg, 9);
  ASSERT_TRUE(a->Send(b->addr(), msg).ok());
  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(5000)).ok());
  EXPECT_TRUE(CheckPattern(got, 9));
  EXPECT_EQ(from, a->addr());
  // The fast path must have bypassed the wire entirely.
  EXPECT_EQ(a->stats().data_packets_sent.load(), 0u);
  EXPECT_EQ(b->stats().shm_messages.load(), 1u);
}

TEST(ClfTest, ShmDisabledUsesWire) {
  Endpoint::Options opts;  // fastpath off by default
  auto a = MakeEndpoint(opts);
  auto b = MakeEndpoint(opts);
  ASSERT_TRUE(a->Send(b->addr(), Buffer(100)).ok());
  Buffer got;
  transport::SockAddr from;
  ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(5000)).ok());
  EXPECT_GE(a->stats().data_packets_sent.load(), 1u);
  EXPECT_EQ(b->stats().shm_messages.load(), 0u);
}

TEST(ClfTest, ConcurrentLargeSendsToOnePeerDoNotInterleave) {
  // Regression: two threads sending multi-fragment messages from the
  // same endpoint to the same peer must not interleave fragments in
  // the sequence space (reassembly would see a foreign first-fragment
  // mid message and corrupt both).
  auto a = MakeEndpoint();
  auto b = MakeEndpoint();
  constexpr int kPerThread = 15;
  constexpr std::size_t kSize = 150 * 1024;  // 3 fragments each
  std::thread t1([&] {
    for (int i = 0; i < kPerThread; ++i) {
      Buffer msg(kSize);
      FillPattern(msg, 1000 + static_cast<std::uint64_t>(i));
      ASSERT_TRUE(a->Send(b->addr(), msg).ok());
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < kPerThread; ++i) {
      Buffer msg(kSize);
      FillPattern(msg, 2000 + static_cast<std::uint64_t>(i));
      ASSERT_TRUE(a->Send(b->addr(), msg).ok());
    }
  });
  int seen_t1 = 0, seen_t2 = 0;
  for (int i = 0; i < 2 * kPerThread; ++i) {
    Buffer got;
    transport::SockAddr from;
    ASSERT_TRUE(b->Recv(got, from, Deadline::AfterMillis(30000)).ok());
    ASSERT_EQ(got.size(), kSize);
    // Each message must be internally intact and attributable.
    if (CheckPattern(got, 1000 + static_cast<std::uint64_t>(seen_t1))) {
      ++seen_t1;
    } else if (CheckPattern(got, 2000 + static_cast<std::uint64_t>(seen_t2))) {
      ++seen_t2;
    } else {
      FAIL() << "message " << i << " corrupted or out of per-thread order";
    }
  }
  EXPECT_EQ(seen_t1, kPerThread);
  EXPECT_EQ(seen_t2, kPerThread);
  t1.join();
  t2.join();
}

// --- fault-injection property suite -------------------------------------
//
// Exactly-once, in-order delivery must survive drops, duplicates and
// reordering. Each parameter is (drop, dup, reorder, seed).
struct FaultCase {
  double drop;
  double dup;
  double reorder;
  std::uint64_t seed;
};

class ClfFaultTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(ClfFaultTest, ExactlyOnceInOrderUnderFaults) {
  const FaultCase& fc = GetParam();
  Endpoint::Options lossy;
  lossy.faults.drop_probability = fc.drop;
  lossy.faults.duplicate_probability = fc.dup;
  lossy.faults.reorder_probability = fc.reorder;
  lossy.faults.seed = fc.seed;
  lossy.initial_rto = Millis(5);
  auto sender = MakeEndpoint(lossy);
  auto receiver = MakeEndpoint();  // clean return path for acks

  constexpr int kCount = 120;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      Buffer msg(100 + (i % 7) * 501);  // varied sizes
      FillPattern(msg, static_cast<std::uint64_t>(i) * 13 + 1);
      ASSERT_TRUE(sender->Send(receiver->addr(), msg).ok());
    }
  });
  for (int i = 0; i < kCount; ++i) {
    Buffer got;
    transport::SockAddr from;
    ASSERT_TRUE(receiver->Recv(got, from, Deadline::AfterMillis(30000)).ok())
        << "lost message " << i << " under faults";
    EXPECT_EQ(got.size(), 100u + (i % 7) * 501u) << "order violated at " << i;
    EXPECT_TRUE(CheckPattern(got, static_cast<std::uint64_t>(i) * 13 + 1));
  }
  producer.join();
  // Nothing extra may be delivered (exactly-once).
  Buffer extra;
  transport::SockAddr from;
  EXPECT_EQ(receiver->Recv(extra, from, Deadline::AfterMillis(200)).code(),
            StatusCode::kTimeout);
  if (fc.drop > 0) {
    EXPECT_GT(sender->stats().retransmissions.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Faults, ClfFaultTest,
    ::testing::Values(FaultCase{0.05, 0.0, 0.0, 1},   // light loss
                      FaultCase{0.20, 0.0, 0.0, 2},   // heavy loss
                      FaultCase{0.0, 0.20, 0.0, 3},   // duplication
                      FaultCase{0.0, 0.0, 0.30, 4},   // reordering
                      FaultCase{0.10, 0.10, 0.10, 5}, // everything
                      FaultCase{0.10, 0.10, 0.10, 6},
                      FaultCase{0.15, 0.05, 0.20, 7}));

// Fragmented messages under loss: every fragment must arrive for the
// message to reassemble, so loss exercises retransmission harder.
TEST(ClfFaultTest, FragmentedMessagesSurviveLoss) {
  Endpoint::Options lossy;
  lossy.faults.drop_probability = 0.15;
  lossy.faults.seed = 11;
  lossy.initial_rto = Millis(5);
  auto sender = MakeEndpoint(lossy);
  auto receiver = MakeEndpoint();
  for (int i = 0; i < 5; ++i) {
    Buffer msg(200 * 1024);
    FillPattern(msg, static_cast<std::uint64_t>(i) + 500);
    ASSERT_TRUE(sender->Send(receiver->addr(), msg).ok());
    Buffer got;
    transport::SockAddr from;
    ASSERT_TRUE(receiver->Recv(got, from, Deadline::AfterMillis(30000)).ok());
    ASSERT_EQ(got.size(), msg.size());
    EXPECT_TRUE(CheckPattern(got, static_cast<std::uint64_t>(i) + 500));
  }
}

}  // namespace
}  // namespace dstampede::clf
