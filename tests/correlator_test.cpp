// Temporal correlation (§2 requirement 2): the align-to-max protocol
// over multiple streams, gap skipping, GC of uncorrelatable items.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/app/correlator.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::app {
namespace {

using core::ConnMode;
using core::Connection;

class CorrelatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok());
    rt_ = std::move(rt).value();
  }
  void TearDown() override { rt_->Shutdown(); }

  // Creates a channel on as(0) and puts the given timestamps.
  ChannelId Stream(const std::vector<Timestamp>& timestamps,
                   std::uint64_t seed) {
    auto ch = rt_->as(0).CreateChannel();
    EXPECT_TRUE(ch.ok());
    auto out = rt_->as(0).Connect(*ch, ConnMode::kOutput);
    EXPECT_TRUE(out.ok());
    for (Timestamp ts : timestamps) {
      Buffer b(64);
      FillPattern(b, seed ^ static_cast<std::uint64_t>(ts));
      EXPECT_TRUE(rt_->as(0).Put(*out, ts, std::move(b)).ok());
    }
    return *ch;
  }

  std::vector<Connection> Inputs(std::initializer_list<ChannelId> channels) {
    std::vector<Connection> inputs;
    for (ChannelId ch : channels) {
      auto conn = rt_->as(1).Connect(ch, ConnMode::kInput, "correlator");
      EXPECT_TRUE(conn.ok());
      inputs.push_back(*conn);
    }
    return inputs;
  }

  std::unique_ptr<core::Runtime> rt_;
};

TEST_F(CorrelatorTest, AlignedStreamsCorrelateEveryTimestamp) {
  ChannelId a = Stream({0, 1, 2, 3}, 100);
  ChannelId b = Stream({0, 1, 2, 3}, 200);
  TemporalCorrelator correlator(rt_->as(1), Inputs({a, b}));
  for (Timestamp ts = 0; ts < 4; ++ts) {
    auto tuple = correlator.NextTuple(Deadline::AfterMillis(10000));
    ASSERT_TRUE(tuple.ok()) << tuple.status();
    EXPECT_EQ(tuple->timestamp, ts);
    ASSERT_EQ(tuple->items.size(), 2u);
    EXPECT_TRUE(CheckPattern(tuple->items[0].payload.span(),
                             100 ^ static_cast<std::uint64_t>(ts)));
    EXPECT_TRUE(CheckPattern(tuple->items[1].payload.span(),
                             200 ^ static_cast<std::uint64_t>(ts)));
  }
  EXPECT_EQ(correlator.skipped_timestamps(), 0u);
}

TEST_F(CorrelatorTest, SkipsGapsToNextCommonTimestamp) {
  ChannelId a = Stream({0, 1, 2, 3, 4, 5}, 1);
  ChannelId b = Stream({0, 3, 5}, 2);  // dropped 1, 2, 4
  TemporalCorrelator correlator(rt_->as(1), Inputs({a, b}));
  std::vector<Timestamp> correlated;
  for (int i = 0; i < 3; ++i) {
    auto tuple = correlator.NextTuple(Deadline::AfterMillis(10000));
    ASSERT_TRUE(tuple.ok()) << tuple.status();
    correlated.push_back(tuple->timestamp);
  }
  EXPECT_EQ(correlated, (std::vector<Timestamp>{0, 3, 5}));
  EXPECT_EQ(correlator.skipped_timestamps(), 3u);
}

TEST_F(CorrelatorTest, ConsumesCorrelatedAndOlderItems) {
  ChannelId a = Stream({0, 1, 2}, 1);
  ChannelId b = Stream({2}, 2);
  TemporalCorrelator correlator(rt_->as(1), Inputs({a, b}));
  auto tuple = correlator.NextTuple(Deadline::AfterMillis(10000));
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->timestamp, 2);
  // ConsumeUntil(2) on the only input connections: everything reclaims.
  auto channel_a = rt_->as(0).FindChannel(a.bits());
  auto channel_b = rt_->as(0).FindChannel(b.bits());
  EXPECT_EQ(channel_a->live_items(), 0u);
  EXPECT_EQ(channel_b->live_items(), 0u);
}

TEST_F(CorrelatorTest, BlocksUntilLaggingStreamCatchesUp) {
  ChannelId a = Stream({0}, 1);
  auto b = rt_->as(0).CreateChannel();
  ASSERT_TRUE(b.ok());
  auto inputs = Inputs({a, *b});
  TemporalCorrelator correlator(rt_->as(1), std::move(inputs));
  std::thread late([&] {
    std::this_thread::sleep_for(Millis(50));
    auto out = rt_->as(0).Connect(*b, ConnMode::kOutput);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(rt_->as(0).Put(*out, 0, Buffer(8)).ok());
  });
  auto tuple = correlator.NextTuple(Deadline::AfterMillis(10000));
  ASSERT_TRUE(tuple.ok()) << tuple.status();
  EXPECT_EQ(tuple->timestamp, 0);
  late.join();
}

TEST_F(CorrelatorTest, DisjointStreamsTimeOut) {
  ChannelId a = Stream({0, 2, 4}, 1);
  ChannelId b = Stream({1, 3, 5}, 2);  // never shares a timestamp
  TemporalCorrelator correlator(rt_->as(1), Inputs({a, b}));
  auto tuple = correlator.NextTuple(Deadline::AfterMillis(300));
  EXPECT_EQ(tuple.status().code(), StatusCode::kTimeout);
}

TEST_F(CorrelatorTest, ThreeWayCorrelation) {
  ChannelId a = Stream({0, 1, 2, 3, 4}, 1);
  ChannelId b = Stream({1, 2, 4}, 2);
  ChannelId c = Stream({0, 2, 3, 4}, 3);
  TemporalCorrelator correlator(rt_->as(1), Inputs({a, b, c}));
  std::vector<Timestamp> correlated;
  for (int i = 0; i < 2; ++i) {
    auto tuple = correlator.NextTuple(Deadline::AfterMillis(10000));
    ASSERT_TRUE(tuple.ok());
    ASSERT_EQ(tuple->items.size(), 3u);
    correlated.push_back(tuple->timestamp);
  }
  EXPECT_EQ(correlated, (std::vector<Timestamp>{2, 4}));
}

TEST_F(CorrelatorTest, NoInputsRejected) {
  TemporalCorrelator correlator(rt_->as(1), {});
  EXPECT_EQ(correlator.NextTuple(Deadline::Poll()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dstampede::app
