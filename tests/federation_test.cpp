// Federation (§6 future work, implemented): multiple heterogeneous
// clusters in one application — unique AsId ranges, cross-cluster STM
// routing, the federation-wide name server, distributed GC across
// cluster boundaries, end devices on different clusters' listeners,
// and dynamic growth.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/clf/endpoint.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/federation.hpp"

namespace dstampede::core {
namespace {

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Federation::Options opts;
    opts.clusters = {
        Federation::ClusterSpec{.num_address_spaces = 2},
        Federation::ClusterSpec{.num_address_spaces = 1,
                                .dispatcher_threads = 4,
                                .gc_interval = Millis(5)},
    };
    auto fed = Federation::Create(opts);
    ASSERT_TRUE(fed.ok()) << fed.status();
    fed_ = std::move(fed).value();
  }

  Buffer Bytes(std::string_view s) { return Buffer(s.begin(), s.end()); }

  std::unique_ptr<Federation> fed_;
};

TEST_F(FederationTest, AsIdRangesAreDisjoint) {
  EXPECT_EQ(AsIndex(fed_->cluster(0).as(0).id()), 0u);
  EXPECT_EQ(AsIndex(fed_->cluster(0).as(1).id()), 1u);
  EXPECT_EQ(AsIndex(fed_->cluster(1).as(0).id()), 4096u);
}

TEST_F(FederationTest, CrossClusterPutGet) {
  // Channel in cluster 1; producer and consumer in cluster 0.
  auto ch = fed_->cluster(1).as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = fed_->cluster(0).as(0).Connect(*ch, ConnMode::kOutput);
  auto in = fed_->cluster(0).as(1).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(in.ok());
  Buffer payload(20000);
  FillPattern(payload, 5);
  ASSERT_TRUE(fed_->cluster(0).as(0).Put(*out, 1, payload).ok());
  auto item = fed_->cluster(0).as(1).Get(*in, GetSpec::Exact(1),
                                         Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_TRUE(CheckPattern(item->payload.span(), 5));
}

TEST_F(FederationTest, FederationWideNameServer) {
  auto ch = fed_->cluster(1).as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(fed_->cluster(1)
                  .as(0)
                  .NsRegister(NsEntry{"fed/ch", NsEntry::Kind::kChannel,
                                      ch->bits(), "on cluster 1"})
                  .ok());
  // Visible from cluster 0 (which hosts the NS) and its other AS.
  auto entry =
      fed_->cluster(0).as(1).NsLookup("fed/ch", Deadline::AfterMillis(5000));
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry->id_bits, ch->bits());
}

TEST_F(FederationTest, CrossClusterGc) {
  auto ch = fed_->cluster(0).as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = fed_->cluster(0).as(1).Connect(*ch, ConnMode::kOutput);
  auto in = fed_->cluster(1).as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(fed_->cluster(0).as(1).Put(*out, 7, Bytes("x")).ok());
  auto channel = fed_->cluster(0).as(1).FindChannel(ch->bits());
  EXPECT_EQ(channel->live_items(), 1u);
  // The remote (other-cluster) consumer's consume drives reclamation.
  ASSERT_TRUE(fed_->cluster(1).as(0).Consume(*in, 7).ok());
  EXPECT_EQ(channel->live_items(), 0u);
}

TEST_F(FederationTest, EndDevicesOnDifferentClusters) {
  auto listener_a = client::Listener::Start(fed_->cluster(0));
  auto listener_b = client::Listener::Start(fed_->cluster(1));
  ASSERT_TRUE(listener_a.ok());
  ASSERT_TRUE(listener_b.ok());

  client::CClient::Options oa;
  oa.server = (*listener_a)->addr();
  oa.name = "producer@A";
  auto producer = client::CClient::Join(oa);
  ASSERT_TRUE(producer.ok());

  client::CClient::Options ob;
  ob.server = (*listener_b)->addr();
  ob.name = "consumer@B";
  auto consumer = client::CClient::Join(ob);
  ASSERT_TRUE(consumer.ok());

  auto ch = (*producer)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE((*producer)
                  ->NsRegister(NsEntry{"fed/stream", NsEntry::Kind::kChannel,
                                       ch->bits(), ""})
                  .ok());
  auto entry =
      (*consumer)->NsLookup("fed/stream", Deadline::AfterMillis(5000));
  ASSERT_TRUE(entry.ok()) << entry.status();

  auto out = (*producer)->Connect(*ch, ConnMode::kOutput);
  auto in = (*consumer)->Connect(ChannelId::FromBits(entry->id_bits),
                                 ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok()) << in.status();

  ASSERT_TRUE((*producer)->Put(*out, 1, Bytes("inter-cluster")).ok());
  auto item =
      (*consumer)->Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->payload.ToString(), "inter-cluster");

  (*listener_a)->Shutdown();
  (*listener_b)->Shutdown();
}

TEST_F(FederationTest, DynamicGrowthWiresAcrossClusters) {
  auto added = fed_->AddAddressSpace(1);
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_EQ(AsIndex((*added)->id()), 4097u);
  // The newcomer reaches a channel in cluster 0 and the global NS.
  auto ch = fed_->cluster(0).as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*added)->Connect(*ch, ConnMode::kOutput);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE((*added)->Put(*out, 1, Bytes("hi")).ok());
  EXPECT_TRUE((*added)
                  ->NsRegister(NsEntry{"dyn/fed", NsEntry::Kind::kOther, 0, ""})
                  .ok());
}

TEST(FederationValidationTest, RejectsBadOptions) {
  Federation::Options empty;
  EXPECT_EQ(Federation::Create(empty).status().code(),
            StatusCode::kInvalidArgument);
  Federation::Options oversized;
  oversized.as_id_stride = 2;
  oversized.clusters = {Federation::ClusterSpec{.num_address_spaces = 3}};
  EXPECT_EQ(Federation::Create(oversized).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FederationValidationTest, ThreeClusters) {
  Federation::Options opts;
  opts.clusters = {Federation::ClusterSpec{}, Federation::ClusterSpec{},
                   Federation::ClusterSpec{}};
  auto fed = Federation::Create(opts);
  ASSERT_TRUE(fed.ok());
  // A triangle route: channel on cluster 2, producer on 0, consumer on 1.
  auto ch = (*fed)->cluster(2).as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*fed)->cluster(0).as(0).Connect(*ch, ConnMode::kOutput);
  auto in = (*fed)->cluster(1).as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  Buffer b = {1, 2, 3};
  ASSERT_TRUE((*fed)->cluster(0).as(0).Put(*out, 1, b).ok());
  auto item = (*fed)->cluster(1).as(0).Get(*in, GetSpec::Exact(1),
                                           Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->payload.ToVector(), b);
}

TEST(FederationFailureTest, DeadClusterFailsFastAndPurgesItsNames) {
  // Edge fast-fail: with CLF failure detection enabled federation-wide,
  // an entire cluster going dark is (1) declared via IsClusterDown,
  // (2) purged from the name server, and (3) unreachable calls against
  // it fail kUnavailable immediately instead of waiting out deadlines.
  Federation::Options opts;
  opts.clusters = {Federation::ClusterSpec{.num_address_spaces = 2},
                   Federation::ClusterSpec{.num_address_spaces = 1}};
  opts.clf_max_retransmits = 5;
  opts.peer_keepalive_interval = Millis(25);
  opts.peer_timeout = Millis(150);
  auto created = Federation::Create(opts);
  ASSERT_TRUE(created.ok()) << created.status();
  auto& fed = *created;

  auto ch = fed->cluster(1).as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(fed->cluster(1)
                  .as(0)
                  .NsRegister(NsEntry{"fed/doomed", NsEntry::Kind::kChannel,
                                      ch->bits(), "on cluster 1"})
                  .ok());
  auto out = fed->cluster(0).as(0).Connect(*ch, ConnMode::kOutput);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_FALSE(fed->IsClusterDown(1));
  EXPECT_FALSE(fed->IsClusterDown(0));

  fed->cluster(1).Shutdown();

  const TimePoint give_up = Now() + Millis(10000);
  while (!fed->IsClusterDown(1) && Now() < give_up) {
    std::this_thread::sleep_for(Millis(5));
  }
  ASSERT_TRUE(fed->IsClusterDown(1)) << "CLF never declared the cluster dead";
  EXPECT_EQ(fed->DeadSpacesIn(1), 1u);
  EXPECT_FALSE(fed->IsClusterDown(0));

  // Data calls toward the dead cluster fail fast, not after the wire
  // deadline.
  const TimePoint t0 = Now();
  Status put = fed->cluster(0).as(0).Put(*out, 1, Buffer{1, 2, 3},
                                         Deadline::AfterMillis(60000));
  EXPECT_EQ(put.code(), StatusCode::kUnavailable) << put;
  EXPECT_LT(Now() - t0, Millis(2000));

  // Its registrations are purged from the federation-wide name server.
  const TimePoint purge_give_up = Now() + Millis(5000);
  while (fed->cluster(0).as(0).NsLookup("fed/doomed").ok() &&
         Now() < purge_give_up) {
    std::this_thread::sleep_for(Millis(5));
  }
  EXPECT_EQ(fed->cluster(0).as(0).NsLookup("fed/doomed").status().code(),
            StatusCode::kNotFound);
}

TEST(FederationFailureTest, RevivedClusterIsNoLongerDown) {
  // The cluster-down verdict must not be sticky: once the dead space
  // comes back with a fresh CLF incarnation at its old address, the
  // peer-up observers un-count it and IsClusterDown flips back.
  Federation::Options opts;
  opts.clusters = {Federation::ClusterSpec{.num_address_spaces = 1},
                   Federation::ClusterSpec{.num_address_spaces = 1}};
  opts.clf_max_retransmits = 5;
  opts.peer_keepalive_interval = Millis(25);
  opts.peer_timeout = Millis(150);
  auto created = Federation::Create(opts);
  ASSERT_TRUE(created.ok()) << created.status();
  auto& fed = *created;

  const transport::SockAddr doomed_addr = fed->cluster(1).as(0).clf_addr();
  fed->cluster(1).Shutdown();
  const TimePoint give_up = Now() + Millis(10000);
  while (!fed->IsClusterDown(1) && Now() < give_up) {
    std::this_thread::sleep_for(Millis(5));
  }
  ASSERT_TRUE(fed->IsClusterDown(1)) << "CLF never declared the cluster dead";

  // A restarted node: a fresh CLF incarnation bound to the dead space's
  // address, probing a survivor. The epoch reset resurrects the peer.
  clf::Endpoint::Options ep_opts;
  ep_opts.port = doomed_addr.port;
  ep_opts.max_retransmits = 5;
  ep_opts.keepalive_interval = Millis(25);
  ep_opts.peer_timeout = Millis(150);
  auto revived = clf::Endpoint::Create(ep_opts);
  ASSERT_TRUE(revived.ok()) << revived.status();
  (*revived)->WatchPeer(fed->cluster(0).as(0).clf_addr());

  const TimePoint revive_give_up = Now() + Millis(10000);
  while (fed->IsClusterDown(1) && Now() < revive_give_up) {
    std::this_thread::sleep_for(Millis(5));
  }
  EXPECT_FALSE(fed->IsClusterDown(1)) << "revived cluster still shunned";
  EXPECT_EQ(fed->DeadSpacesIn(1), 0u);
  (*revived)->Shutdown();
}

}  // namespace
}  // namespace dstampede::core
