// Deterministic-simulation unit coverage: VirtualClock semantics, the
// clock seam in Deadline/CondVar/TimerWheel, the modeled network's
// delayed-delivery queue, fault-schedule generation + shrinking, the
// extracted reconnect-backoff schedule, and the fault-injector flush
// regression (a reorder-held packet must not be stranded).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "dstampede/clf/endpoint.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/waiter.hpp"
#include "dstampede/sim/scenario.hpp"
#include "dstampede/sim/sim.hpp"

namespace dstampede {
namespace {

// --- VirtualClock ----------------------------------------------------------

TEST(VirtualClockTest, NowIsFrozenUntilAdvanced) {
  VirtualClock clock;
  clock.Install();
  const TimePoint t0 = Now();
  std::this_thread::sleep_for(Millis(5));  // real time passes...
  EXPECT_EQ(Now(), t0);                    // ...virtual time does not
  clock.AdvanceBy(Millis(30));
  EXPECT_EQ(Now(), t0 + Millis(30));
  clock.Uninstall();
  EXPECT_EQ(InstalledVirtualClock(), nullptr);
}

TEST(VirtualClockTest, AdvanceIsMonotone) {
  VirtualClock clock;
  const TimePoint t0 = clock.Now();
  clock.AdvanceTo(t0 + Millis(10));
  clock.AdvanceTo(t0 + Millis(5));  // into the past: no-op
  EXPECT_EQ(clock.Now(), t0 + Millis(10));
}

TEST(VirtualClockTest, SleepForWakesOnAdvance) {
  VirtualClock clock;
  clock.Install();
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    dstampede::SleepFor(Millis(50));  // virtual: a frozen clock blocks
    woke = true;
  });
  // Give the sleeper real time to park; virtual time hasn't moved, so
  // it must still be asleep.
  std::this_thread::sleep_for(Millis(20));
  EXPECT_FALSE(woke.load());
  // Keep advancing on real time: a sleeper scheduled late parks its
  // target after the first advance and needs another.
  const TimePoint real_give_up =
      SteadyClock::now() + std::chrono::seconds(5);
  while (!woke.load() && SteadyClock::now() < real_give_up) {
    clock.AdvanceBy(Millis(50));
    std::this_thread::sleep_for(Millis(1));
  }
  sleeper.join();
  EXPECT_TRUE(woke.load());
  clock.Uninstall();
}

TEST(VirtualClockTest, UninstallWakesVirtualSleepers) {
  VirtualClock clock;
  clock.Install();
  std::thread sleeper([&] { dstampede::SleepFor(Millis(60'000)); });
  std::this_thread::sleep_for(Millis(10));
  clock.Uninstall();  // teardown must not strand the sleeper
  sleeper.join();
  SUCCEED();
}

TEST(VirtualClockTest, AdvanceUntilQuiescentRunsSleepChains) {
  VirtualClock clock;
  clock.Install();
  std::atomic<int> naps{0};
  std::thread sleeper([&] {
    for (int i = 0; i < 3; ++i) {
      dstampede::SleepFor(Millis(10));
      ++naps;
    }
  });
  // A simulated minute of horizon covers the 30ms chain; quiescence
  // (or `done`) stops the advance long before the horizon.
  clock.AdvanceUntilQuiescent(Millis(60'000), [&] { return naps == 3; });
  sleeper.join();
  EXPECT_EQ(naps.load(), 3);
  clock.Uninstall();
}

TEST(VirtualClockTest, NextEventTimeSeesPendingSleep) {
  VirtualClock clock;
  clock.Install();
  EXPECT_FALSE(clock.NextEventTime().has_value());
  const TimePoint target = clock.Now() + Millis(25);
  std::thread sleeper([&] { clock.SleepUntil(target); });
  // Wait (real time) until the sleeper registered.
  while (clock.pending_waits() == 0) std::this_thread::sleep_for(Millis(1));
  auto next = clock.NextEventTime();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, target);
  clock.AdvanceTo(target);
  sleeper.join();
  clock.Uninstall();
}

// --- Deadline under virtual time ------------------------------------------

TEST(DeadlineVirtualTest, PollAndInfiniteEdgeCases) {
  VirtualClock clock;
  clock.Install();
  EXPECT_TRUE(Deadline::Poll().expired());
  EXPECT_FALSE(Deadline::Poll().infinite());
  EXPECT_FALSE(Deadline::Infinite().expired());
  EXPECT_TRUE(Deadline::Infinite().infinite());
  EXPECT_EQ(Deadline::Infinite().remaining(), Duration::max());
  clock.AdvanceBy(Millis(100'000));
  EXPECT_TRUE(Deadline::Poll().expired());
  EXPECT_FALSE(Deadline::Infinite().expired());
  clock.Uninstall();
}

TEST(DeadlineVirtualTest, AfterMaturesOnAdvanceOnly) {
  VirtualClock clock;
  clock.Install();
  const Deadline d = Deadline::AfterMillis(50);
  std::this_thread::sleep_for(Millis(5));  // real time is irrelevant
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Millis(50));
  clock.AdvanceBy(Millis(49));
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Millis(1));
  clock.AdvanceBy(Millis(1));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), Duration::zero());
  clock.Uninstall();
}

// --- CondVar timed waits under virtual time -------------------------------

TEST(CondVarVirtualTest, WaitUntilTimesOutWhenClockAdvances) {
  VirtualClock clock;
  clock.Install();
  ds::Mutex mu;
  ds::CondVar cv;
  std::atomic<bool> timed_out{false};
  std::thread waiter([&] {
    ds::MutexLock lock(mu);
    timed_out = !cv.WaitUntil(mu, Deadline::AfterMillis(40));
  });
  std::this_thread::sleep_for(Millis(20));
  EXPECT_FALSE(timed_out.load()) << "deadline matured without an advance";
  // Keep advancing on real time: if the waiter thread was scheduled
  // late, its deadline anchors after the first advance and needs more.
  const TimePoint real_give_up =
      SteadyClock::now() + std::chrono::seconds(5);
  while (!timed_out.load() && SteadyClock::now() < real_give_up) {
    clock.AdvanceBy(Millis(50));
    std::this_thread::sleep_for(Millis(1));
  }
  waiter.join();
  EXPECT_TRUE(timed_out.load());
  clock.Uninstall();
}

TEST(CondVarVirtualTest, NotifyBeatsVirtualDeadline) {
  VirtualClock clock;
  clock.Install();
  ds::Mutex mu;
  ds::CondVar cv;
  std::atomic<bool> ready{false};
  std::atomic<bool> notified{false};
  std::thread waiter([&] {
    ds::MutexLock lock(mu);
    while (!ready.load()) {
      if (!cv.WaitUntil(mu, Deadline::AfterMillis(60'000))) break;
    }
    notified = ready.load();
  });
  std::this_thread::sleep_for(Millis(10));
  {
    ds::MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  }
  waiter.join();
  EXPECT_TRUE(notified.load()) << "notification lost under virtual time";
  clock.Uninstall();
}

// --- TimerWheel under virtual time (satellite: two-on-a-tick,
// cancel racing an advance, Poll/Infinite edges) ---------------------------

TEST(TimerWheelVirtualTest, TwoDeadlinesOnTheSameTickBothFire) {
  VirtualClock clock;
  clock.Install();
  TimerWheel wheel;
  const TimePoint tick = Now() + Millis(20);
  std::atomic<int> fired{0};
  wheel.Schedule(Deadline::At(tick), [&] { fired += 1; });
  wheel.Schedule(Deadline::At(tick), [&] { fired += 10; });
  EXPECT_EQ(wheel.pending(), 2u);
  // The controller can burn the whole virtual horizon in well under a
  // real millisecond; under load the wheel's service thread may not
  // have been scheduled yet. Keep driving on real time: once the tick
  // has passed, the callbacks fire on the thread's next slice.
  const TimePoint real_give_up =
      SteadyClock::now() + std::chrono::seconds(5);
  while (fired.load() != 11 && SteadyClock::now() < real_give_up) {
    clock.AdvanceUntilQuiescent(Millis(100), [&] { return fired == 11; });
    std::this_thread::sleep_for(Millis(1));
  }
  EXPECT_EQ(fired.load(), 11) << "both same-tick timers must fire";
  EXPECT_EQ(wheel.pending(), 0u);
  wheel.Shutdown();
  clock.Uninstall();
}

TEST(TimerWheelVirtualTest, CancellationRacingAdvanceFiresExactlyOnceOrNot) {
  VirtualClock clock;
  clock.Install();
  TimerWheel wheel;
  for (int i = 0; i < 25; ++i) {
    std::atomic<int> fired{0};
    const TimerWheel::TimerId id =
        wheel.Schedule(Deadline::AfterMillis(5), [&] { ++fired; });
    std::thread advancer([&] { clock.AdvanceBy(Millis(10)); });
    const bool cancelled = wheel.Cancel(id);
    advancer.join();
    // Let a won-the-race callback finish before asserting: real time,
    // because the service thread may be scheduled arbitrarily late
    // under load.
    clock.AdvanceUntilQuiescent(Millis(20));
    const TimePoint cb_give_up =
        SteadyClock::now() + std::chrono::seconds(2);
    while (!cancelled && fired.load() == 0 &&
           SteadyClock::now() < cb_give_up) {
      std::this_thread::sleep_for(Millis(1));
    }
    std::this_thread::sleep_for(Millis(2));
    if (cancelled) {
      EXPECT_EQ(fired.load(), 0) << "iteration " << i
                                 << ": cancelled timer fired";
    } else {
      EXPECT_EQ(fired.load(), 1) << "iteration " << i
                                 << ": uncancelled timer must fire once";
    }
  }
  wheel.Shutdown();
  clock.Uninstall();
}

TEST(TimerWheelVirtualTest, PollDeadlineFiresWithoutAnyAdvance) {
  VirtualClock clock;
  clock.Install();
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  const TimerWheel::TimerId id =
      wheel.Schedule(Deadline::Poll(), [&] { fired = true; });
  EXPECT_NE(id, 0u);
  // Already due: the wheel thread fires it on wake-up, no advance
  // needed (real-time wait below, not a virtual one).
  const TimePoint give_up = SteadyClock::now() + Millis(2000);
  while (!fired.load() && SteadyClock::now() < give_up) {
    std::this_thread::sleep_for(Millis(1));
  }
  EXPECT_TRUE(fired.load());
  wheel.Shutdown();
  clock.Uninstall();
}

TEST(TimerWheelVirtualTest, InfiniteDeadlineIsNeverScheduled) {
  VirtualClock clock;
  clock.Install();
  TimerWheel wheel;
  EXPECT_EQ(wheel.Schedule(Deadline::Infinite(), [] {}), 0u);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.Cancel(0));
  wheel.Shutdown();
  clock.Uninstall();
}

}  // namespace
}  // namespace dstampede

namespace dstampede::clf {
namespace {

// --- flush regression: a reorder-held packet is not stranded --------------

TEST(FaultInjectorFlushTest, HeldPacketRemembersDestination) {
  FaultInjector::Config config;
  config.reorder_probability = 1.0;
  FaultInjector injector(config);
  const auto peer = transport::SockAddr::Loopback(7777);
  EXPECT_TRUE(injector.Filter(peer, Buffer{1}).empty());
  auto held = injector.Flush();
  ASSERT_TRUE(held.has_value());
  ASSERT_TRUE(held->to.has_value());
  EXPECT_EQ(*held->to, peer);
  EXPECT_EQ(held->datagram, (Buffer{1}));
}

TEST(FaultInjectorFlushTest, ReleasedHoldKeepsItsOwnDestination) {
  FaultInjector::Config config;
  config.reorder_probability = 1.0;
  FaultInjector injector(config);
  const auto peer_a = transport::SockAddr::Loopback(7001);
  const auto peer_b = transport::SockAddr::Loopback(7002);
  // First packet (to A) is held; the second (to B) ships and releases
  // the hold — which must still be addressed to A, not B.
  EXPECT_TRUE(injector.Filter(peer_a, Buffer{1}).empty());
  auto out = injector.Filter(peer_b, Buffer{2});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].to, peer_b);
  EXPECT_EQ(out[0].datagram, (Buffer{2}));
  EXPECT_EQ(out[1].to, peer_a);
  EXPECT_EQ(out[1].datagram, (Buffer{1}));
}

TEST(FaultInjectorFlushTest, EndpointIdleScanDeliversHeldPacket) {
  // reorder=1.0 holds the only data packet ever sent; a huge RTO keeps
  // retransmission from covering for it. Only the endpoint's idle-scan
  // flush can deliver it — the regression this test pins down.
  Endpoint::Options sender_opts;
  sender_opts.faults.reorder_probability = 1.0;
  sender_opts.initial_rto = Millis(60'000);
  sender_opts.max_rto = Millis(60'000);
  auto sender = Endpoint::Create(sender_opts);
  ASSERT_TRUE(sender.ok()) << sender.status();
  auto receiver = Endpoint::Create({});
  ASSERT_TRUE(receiver.ok()) << receiver.status();

  ASSERT_TRUE((*sender)->Send((*receiver)->addr(), Buffer{42}).ok());
  Buffer got;
  transport::SockAddr from;
  Status s = (*receiver)->Recv(got, from, Deadline::AfterMillis(5000));
  ASSERT_TRUE(s.ok()) << s << " — held packet was stranded";
  EXPECT_EQ(got, (Buffer{42}));
  EXPECT_EQ((*sender)->stats().retransmissions.load(), 0u)
      << "delivery must come from the flush path, not retransmission";
}

// --- modeled network -------------------------------------------------------

TEST(ModeledNetworkTest, LatencyParksPacketUntilDue) {
  FaultInjector injector;
  const auto peer = transport::SockAddr::Loopback(8001);
  FaultInjector::LinkProfile profile;
  profile.latency = Millis(50);
  injector.SetLinkProfile(peer, profile);
  EXPECT_TRUE(injector.active());

  const TimePoint t0 = Now();
  EXPECT_TRUE(injector.Filter(peer, Buffer{1, 2}).empty());
  EXPECT_EQ(injector.delayed_pending(), 1u);
  auto due = injector.NextDeliveryTime();
  ASSERT_TRUE(due.has_value());
  EXPECT_GE(*due, t0 + Millis(50));

  EXPECT_TRUE(injector.TakeDue(t0).empty());
  auto released = injector.TakeDue(*due);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].to, peer);
  EXPECT_EQ(released[0].datagram, (Buffer{1, 2}));
  EXPECT_EQ(injector.delayed_pending(), 0u);

  const auto totals = injector.TotalCounters();
  EXPECT_EQ(totals.delayed, 1u);
  EXPECT_EQ(totals.delivered, 1u);
}

TEST(ModeledNetworkTest, LossDropsDeterministically) {
  FaultInjector injector;
  const auto peer = transport::SockAddr::Loopback(8002);
  FaultInjector::LinkProfile profile;
  profile.loss = 1.0;
  injector.SetLinkProfile(peer, profile);
  EXPECT_TRUE(injector.Filter(peer, Buffer{9}).empty());
  EXPECT_EQ(injector.delayed_pending(), 0u);
  EXPECT_EQ(injector.TotalCounters().link_dropped, 1u);
  const auto per_link = injector.PerLinkCounters();
  ASSERT_EQ(per_link.count(peer), 1u);
  EXPECT_EQ(per_link.at(peer).dropped, 1u);
}

TEST(ModeledNetworkTest, BandwidthSerializesBackToBack) {
  FaultInjector injector;
  const auto peer = transport::SockAddr::Loopback(8003);
  FaultInjector::LinkProfile profile;
  profile.bandwidth_bps = 8'000;  // 1 byte per millisecond
  injector.SetLinkProfile(peer, profile);

  const TimePoint t0 = Now();
  EXPECT_TRUE(injector.Filter(peer, Buffer(100, 0xAA)).empty());  // ~100ms
  EXPECT_TRUE(injector.Filter(peer, Buffer(100, 0xBB)).empty());  // queues
  EXPECT_EQ(injector.delayed_pending(), 2u);
  // At t0+150ms only the first packet has finished serializing.
  auto first = injector.TakeDue(t0 + Millis(150));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].datagram[0], 0xAA);
  auto second = injector.TakeDue(t0 + Millis(250));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].datagram[0], 0xBB);
}

TEST(ModeledNetworkTest, DefaultProfileAppliesToUnknownLinks) {
  FaultInjector injector;
  FaultInjector::LinkProfile slow;
  slow.latency = Millis(30);
  injector.SetDefaultLinkProfile(slow);
  EXPECT_TRUE(
      injector.Filter(transport::SockAddr::Loopback(8004), Buffer{1}).empty());
  EXPECT_EQ(injector.delayed_pending(), 1u);
  injector.ClearLinkProfiles();
  // Parked packets still deliver after profiles are cleared.
  EXPECT_EQ(injector.TakeDue(TimePoint::max()).size(), 1u);
  EXPECT_FALSE(injector.active());
  // New packets pass through untouched now.
  EXPECT_EQ(
      injector.Filter(transport::SockAddr::Loopback(8004), Buffer{2}).size(),
      1u);
}

TEST(ModeledNetworkTest, SummaryMentionsCounters) {
  FaultInjector injector;
  FaultInjector::LinkProfile profile;
  profile.latency = Millis(10);
  injector.SetLinkProfile(transport::SockAddr::Loopback(8005), profile);
  (void)injector.Filter(transport::SockAddr::Loopback(8005), Buffer{1});
  const std::string summary = injector.Summary();
  EXPECT_NE(summary.find("delayed=1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("links=1"), std::string::npos) << summary;
}

}  // namespace
}  // namespace dstampede::clf

namespace dstampede::sim {
namespace {

// --- SimController ---------------------------------------------------------

TEST(SimControllerTest, SeedFromEnvOverridesFallback) {
  ::unsetenv("DSTAMPEDE_SIM_SEED");
  EXPECT_EQ(SimController::SeedFromEnv(7), 7u);
  ::setenv("DSTAMPEDE_SIM_SEED", "12345", 1);
  EXPECT_EQ(SimController::SeedFromEnv(7), 12345u);
  ::setenv("DSTAMPEDE_SIM_SEED", "not-a-number", 1);
  EXPECT_EQ(SimController::SeedFromEnv(7), 7u);
  ::unsetenv("DSTAMPEDE_SIM_SEED");
}

TEST(SimControllerTest, SameSeedSameTraceHashDistinctSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    SimController sim(seed);
    ScheduleParams params;
    params.num_spaces = 8;
    params.num_events = 12;
    FaultSchedule schedule = GenerateSchedule(sim.rng(), params);
    for (const FaultEvent& ev : schedule) sim.Record(ev.ToString());
    sim.RunFor(Millis(200));
    sim.Record("devices=" + std::to_string(sim.UniformInt(1, 1000)));
    return sim.TraceHash();
  };
  const std::uint64_t a1 = run(42);
  const std::uint64_t a2 = run(42);
  const std::uint64_t b = run(43);
  EXPECT_EQ(a1, a2) << "same seed must replay the same trace";
  EXPECT_NE(a1, b) << "distinct seeds must produce distinct traces";
}

TEST(SimControllerTest, RunForAdvancesVirtualTimeFast) {
  SimController sim(1);
  const TimePoint t0 = sim.Now();
  const TimePoint wall0 = SteadyClock::now();
  sim.RunFor(Millis(60'000));  // one simulated minute
  EXPECT_EQ(sim.Now(), t0 + Millis(60'000));
  EXPECT_LT(SteadyClock::now() - wall0, Millis(5'000))
      << "a simulated minute must run in (milli)seconds of wall time";
}

// --- schedule generation & shrinking --------------------------------------

TEST(ScheduleTest, GenerationIsDeterministicAndSorted) {
  ScheduleParams params;
  params.num_spaces = 10;
  params.num_events = 20;
  std::mt19937_64 rng1(99), rng2(99);
  const FaultSchedule s1 = GenerateSchedule(rng1, params);
  const FaultSchedule s2 = GenerateSchedule(rng2, params);
  EXPECT_EQ(ScheduleToString(s1), ScheduleToString(s2));
  ASSERT_FALSE(s1.empty());
  for (std::size_t i = 1; i < s1.size(); ++i) {
    EXPECT_LE(s1[i - 1].at, s1[i].at) << "schedule must be time-sorted";
  }
  std::size_t partitions = 0, heals = 0;
  for (const FaultEvent& ev : s1) {
    if (ev.kind == FaultEvent::Kind::kPartition) ++partitions;
    if (ev.kind == FaultEvent::Kind::kHeal) ++heals;
  }
  EXPECT_EQ(partitions, heals) << "every partition must pair with a heal";
}

TEST(ScheduleTest, ShrinkFindsTheSingleCulpritEvent) {
  std::mt19937_64 rng(7);
  ScheduleParams params;
  params.num_spaces = 6;
  params.num_events = 16;
  FaultSchedule schedule = GenerateSchedule(rng, params);
  ASSERT_GE(schedule.size(), 16u);
  // Plant a unique culprit: the only kKillConnection on space 5.
  FaultEvent culprit;
  culprit.kind = FaultEvent::Kind::kKillConnection;
  culprit.space_a = 5;
  culprit.at = Millis(500);
  schedule.push_back(culprit);

  int runs = 0;
  auto fails = [&](const FaultSchedule& candidate) {
    ++runs;
    for (const FaultEvent& ev : candidate) {
      if (ev.kind == FaultEvent::Kind::kKillConnection && ev.space_a == 5) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(fails(schedule));
  const FaultSchedule shrunk = ShrinkSchedule(schedule, fails);
  ASSERT_EQ(shrunk.size(), 1u) << ScheduleToString(shrunk);
  EXPECT_EQ(shrunk[0].kind, FaultEvent::Kind::kKillConnection);
  EXPECT_EQ(shrunk[0].space_a, 5u);
  EXPECT_TRUE(fails(shrunk)) << "shrunk schedule must still fail";
  EXPECT_GT(runs, 1);
}

TEST(ScheduleTest, ShrinkReturnsInputWhenNothingSmallerFails) {
  std::mt19937_64 rng(3);
  ScheduleParams params;
  params.num_events = 4;
  const FaultSchedule schedule = GenerateSchedule(rng, params);
  // Failure needs the *whole* schedule: nothing can be removed.
  const std::size_t full = schedule.size();
  const FaultSchedule shrunk = ShrinkSchedule(
      schedule,
      [&](const FaultSchedule& c) { return c.size() == full; });
  EXPECT_EQ(shrunk.size(), full);
}

}  // namespace
}  // namespace dstampede::sim

namespace dstampede::client {
namespace {

// --- the production backoff schedule, reused by the reconnect storm -------

TEST(ReconnectBackoffTest, DoublesToCapWithoutJitter) {
  ReconnectPolicy policy;
  policy.initial_backoff = Millis(10);
  policy.max_backoff = Millis(250);
  policy.jitter = 0.0;
  ReconnectBackoff backoff(policy, /*seed=*/1);
  std::vector<std::int64_t> naps;
  for (int i = 0; i < 8; ++i) {
    naps.push_back(ToMicros(backoff.NextNap()) / 1000);
  }
  EXPECT_EQ(naps, (std::vector<std::int64_t>{10, 20, 40, 80, 160, 250, 250,
                                             250}));
}

TEST(ReconnectBackoffTest, JitterBoundedAndSeedDeterministic) {
  ReconnectPolicy policy;  // jitter = 0.5
  ReconnectBackoff a(policy, 77), b(policy, 77), c(policy, 78);
  bool any_differs = false;
  Duration expected = policy.initial_backoff;
  for (int i = 0; i < 10; ++i) {
    const Duration na = a.NextNap();
    const Duration nb = b.NextNap();
    const Duration nc = c.NextNap();
    EXPECT_EQ(na, nb) << "same seed must reproduce the nap sequence";
    if (na != nc) any_differs = true;
    EXPECT_GE(na, expected);
    EXPECT_LT(na, expected + expected / 2 + Millis(1));
    expected = std::min(expected * 2, policy.max_backoff);
  }
  EXPECT_TRUE(any_differs) << "distinct seeds should jitter differently";
}

}  // namespace
}  // namespace dstampede::client
