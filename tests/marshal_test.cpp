// Marshalling tests: XDR layout and round trips, Java-style wire
// compatibility (both codecs must emit identical octets), error paths,
// and parameterized round-trip sweeps across payload sizes.
#include <gtest/gtest.h>

#include <random>

#include "dstampede/marshal/java_style.hpp"
#include "dstampede/marshal/xdr.hpp"

namespace dstampede::marshal {
namespace {

TEST(XdrTest, U32BigEndian) {
  XdrEncoder enc;
  enc.PutU32(0x11223344);
  const Buffer& buf = enc.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x11);
  EXPECT_EQ(buf[1], 0x22);
  EXPECT_EQ(buf[2], 0x33);
  EXPECT_EQ(buf[3], 0x44);
}

TEST(XdrTest, OpaquePadsToFourBytes) {
  XdrEncoder enc;
  Buffer five = {1, 2, 3, 4, 5};
  enc.PutOpaque(five);
  // 4 (length) + 5 (data) + 3 (pad) = 12
  EXPECT_EQ(enc.size(), 12u);
  XdrDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetOpaque(), five);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, AlignedOpaqueHasNoPad) {
  XdrEncoder enc;
  Buffer eight(8, 0x7);
  enc.PutOpaque(eight);
  EXPECT_EQ(enc.size(), 12u);  // 4 + 8
}

TEST(XdrTest, ScalarRoundTrip) {
  XdrEncoder enc;
  enc.PutU32(123);
  enc.PutI32(-456);
  enc.PutU64(0xFFFFFFFFFFFFFFFFULL);
  enc.PutI64(INT64_MIN);
  enc.PutBool(true);
  enc.PutBool(false);
  enc.PutF64(-2.5e300);
  enc.PutString("space-time memory");

  XdrDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU32(), 123u);
  EXPECT_EQ(*dec.GetI32(), -456);
  EXPECT_EQ(*dec.GetU64(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(*dec.GetI64(), INT64_MIN);
  EXPECT_TRUE(*dec.GetBool());
  EXPECT_FALSE(*dec.GetBool());
  EXPECT_EQ(*dec.GetF64(), -2.5e300);
  EXPECT_EQ(*dec.GetString(), "space-time memory");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, EmptyStringAndOpaque) {
  XdrEncoder enc;
  enc.PutString("");
  enc.PutOpaque({});
  XdrDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetString(), "");
  EXPECT_TRUE(dec.GetOpaque()->empty());
}

TEST(XdrTest, UnderrunReportsError) {
  Buffer two = {0, 1};
  XdrDecoder dec(two);
  EXPECT_FALSE(dec.GetU32().ok());
}

TEST(XdrTest, OpaqueLengthBeyondBufferIsError) {
  XdrEncoder enc;
  enc.PutU32(1000);  // length prefix with no payload behind it
  XdrDecoder dec(enc.buffer());
  EXPECT_FALSE(dec.GetOpaque().ok());
}

TEST(XdrTest, OpaqueViewIsZeroCopy) {
  XdrEncoder enc;
  Buffer payload(64, 0xAA);
  enc.PutOpaque(payload);
  const Buffer& wire = enc.buffer();
  XdrDecoder dec(wire);
  auto view = dec.GetOpaqueView();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->data(), wire.data() + 4);
}

// --- Java-style codec ------------------------------------------------------

TEST(JavaStyleTest, WireCompatibleWithXdr) {
  XdrEncoder xdr;
  JavaStyleEncoder java;
  Buffer payload(37);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }

  auto encode_both = [&](auto&& fn) {
    fn(xdr);
    fn(java);
  };
  encode_both([](auto& enc) { enc.PutU32(0xCAFE); });
  encode_both([](auto& enc) { enc.PutI64(-99); });
  encode_both([](auto& enc) { enc.PutBool(true); });
  encode_both([](auto& enc) { enc.PutF64(6.25); });
  encode_both([&](auto& enc) { enc.PutOpaque(payload); });
  encode_both([](auto& enc) { enc.PutString("interop"); });

  EXPECT_EQ(xdr.Take(), java.Take());
}

TEST(JavaStyleTest, DecoderParsesXdrOutput) {
  XdrEncoder enc;
  enc.PutU32(7);
  enc.PutString("from C");
  Buffer payload(9, 0x3C);
  enc.PutOpaque(payload);
  Buffer wire = enc.Take();

  JavaStyleDecoder dec(wire);
  EXPECT_EQ(*dec.GetU32(), 7u);
  EXPECT_EQ(*dec.GetString(), "from C");
  EXPECT_EQ(*dec.GetOpaque(), payload);
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(JavaStyleTest, EncoderSizeAccountsPadding) {
  JavaStyleEncoder enc;
  Buffer five(5, 1);
  enc.PutOpaque(five);
  EXPECT_EQ(enc.size(), 12u);
  EXPECT_EQ(enc.Take().size(), 12u);
}

TEST(JavaStyleTest, UnderrunReportsError) {
  Buffer two = {1, 2};
  JavaStyleDecoder dec(two);
  EXPECT_FALSE(dec.GetU32().ok());
}

// --- parameterized round-trip sweep over payload sizes ----------------------

class OpaqueRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OpaqueRoundTrip, XdrPreservesPayload) {
  const std::size_t n = GetParam();
  Buffer payload(n);
  std::mt19937_64 rng(n);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());

  XdrEncoder enc;
  enc.PutI64(static_cast<std::int64_t>(n));
  enc.PutOpaque(payload);
  XdrDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetI64(), static_cast<std::int64_t>(n));
  EXPECT_EQ(*dec.GetOpaque(), payload);
}

TEST_P(OpaqueRoundTrip, JavaStylePreservesPayloadAndMatchesXdr) {
  const std::size_t n = GetParam();
  Buffer payload(n);
  std::mt19937_64 rng(n * 31);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());

  XdrEncoder xdr;
  xdr.PutOpaque(payload);
  JavaStyleEncoder java;
  java.PutOpaque(payload);
  Buffer java_wire = java.Take();
  EXPECT_EQ(xdr.buffer(), java_wire);

  JavaStyleDecoder dec(java_wire);
  EXPECT_EQ(*dec.GetOpaque(), payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OpaqueRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 63, 64, 65, 1000,
                                           4096, 60000, 190 * 1024));

// Mixed-field fuzz round trip: random sequences of fields survive both
// codecs and decode identically.
class MixedFieldFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MixedFieldFuzz, RandomSequencesRoundTrip) {
  std::mt19937_64 rng(GetParam());
  XdrEncoder xdr;
  JavaStyleEncoder java;
  // Field kinds chosen at random; remember the script to replay on decode.
  std::vector<int> script;
  std::vector<std::uint64_t> values;
  std::vector<Buffer> blobs;
  for (int i = 0; i < 64; ++i) {
    const int kind = static_cast<int>(rng() % 4);
    script.push_back(kind);
    switch (kind) {
      case 0: {
        const auto v = static_cast<std::uint32_t>(rng());
        values.push_back(v);
        xdr.PutU32(v);
        java.PutU32(v);
        break;
      }
      case 1: {
        const std::uint64_t v = rng();
        values.push_back(v);
        xdr.PutU64(v);
        java.PutU64(v);
        break;
      }
      case 2: {
        Buffer blob(rng() % 97);
        for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
        blobs.push_back(blob);
        xdr.PutOpaque(blob);
        java.PutOpaque(blob);
        break;
      }
      case 3: {
        const bool v = (rng() & 1) != 0;
        values.push_back(v);
        xdr.PutBool(v);
        java.PutBool(v);
        break;
      }
    }
  }
  Buffer xdr_wire = xdr.Take();
  ASSERT_EQ(xdr_wire, java.Take());

  XdrDecoder dec(xdr_wire);
  std::size_t vi = 0, bi = 0;
  for (int kind : script) {
    switch (kind) {
      case 0:
        EXPECT_EQ(*dec.GetU32(), static_cast<std::uint32_t>(values[vi++]));
        break;
      case 1:
        EXPECT_EQ(*dec.GetU64(), values[vi++]);
        break;
      case 2:
        EXPECT_EQ(*dec.GetOpaque(), blobs[bi++]);
        break;
      case 3:
        EXPECT_EQ(*dec.GetBool(), values[vi++] != 0);
        break;
    }
  }
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedFieldFuzz,
                         ::testing::Range(0u, 10u));

}  // namespace
}  // namespace dstampede::marshal
