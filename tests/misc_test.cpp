// Remaining edge cases across modules: logger levels, consumed-but-
// still-live exact gets, GC-interest unsubscription on clients,
// shutdown idempotence, and connection-handle misuse.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/common/logging.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede {
namespace {

TEST(LoggingTest, LevelGatesOutput) {
  Logger& logger = Logger::Instance();
  const LogLevel before = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.Enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError));
  logger.set_level(LogLevel::kDebug);
  EXPECT_TRUE(logger.Enabled(LogLevel::kDebug));
  // The macro compiles and runs at any level.
  DS_LOG(kDebug) << "level test " << 42;
  logger.set_level(before);
}

TEST(ChannelEdgeTest, ExactGetOfOwnConsumedButLiveItem) {
  core::LocalChannel ch{core::ChannelAttr{}};
  std::uint32_t a = ch.Attach(core::ConnMode::kInput, "a");
  std::uint32_t b = ch.Attach(core::ConnMode::kInput, "b");
  (void)b;  // keeps the item alive
  ASSERT_TRUE(ch.Put(1, SharedBuffer::FromString("x"), Deadline::Poll()).ok());
  ASSERT_TRUE(ch.Consume(a, 1).ok());
  EXPECT_EQ(ch.live_items(), 1u) << "b still holds it";
  // a declared it garbage; a's own view must honor that even though
  // the item physically remains for b.
  EXPECT_EQ(
      ch.Get(a, core::GetSpec::Exact(1), Deadline::Poll()).status().code(),
      StatusCode::kGarbageCollected);
  // b still sees it.
  EXPECT_TRUE(ch.Get(b, core::GetSpec::Exact(1), Deadline::Poll()).ok());
}

TEST(ChannelEdgeTest, ConsumeUntilBelowWatermarkIsNoOp) {
  core::LocalChannel ch{core::ChannelAttr{}};
  std::uint32_t conn = ch.Attach(core::ConnMode::kInput, "t");
  ASSERT_TRUE(ch.ConsumeUntil(conn, 10).ok());
  ASSERT_TRUE(ch.ConsumeUntil(conn, -5).ok());  // must not roll back
  ASSERT_TRUE(ch.Put(8, SharedBuffer::FromString("x"), Deadline::Poll()).ok());
  EXPECT_EQ(ch.live_items(), 0u) << "8 <= watermark 10: instant garbage";
}

TEST(ChannelEdgeTest, NewestTimestampTracksPutsAndReclaims) {
  core::LocalChannel ch{core::ChannelAttr{}};
  std::uint32_t conn = ch.Attach(core::ConnMode::kInput, "t");
  ASSERT_TRUE(ch.Put(5, SharedBuffer::FromString("x"), Deadline::Poll()).ok());
  ASSERT_TRUE(ch.Put(9, SharedBuffer::FromString("y"), Deadline::Poll()).ok());
  EXPECT_EQ(ch.newest_timestamp(), 9);
  ASSERT_TRUE(ch.Consume(conn, 9).ok());
  EXPECT_EQ(ch.newest_timestamp(), 5);
}

TEST(RuntimeEdgeTest, ShutdownIsIdempotentAndCallsFailAfter) {
  core::Runtime::Options opts;
  opts.num_address_spaces = 2;
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto ch = (*rt)->as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  (*rt)->Shutdown();
  (*rt)->Shutdown();
  EXPECT_EQ((*rt)->as(0).CreateChannel().status().code(),
            StatusCode::kCancelled);
  auto conn = (*rt)->as(1).Connect(*ch, core::ConnMode::kInput);
  EXPECT_FALSE(conn.ok());
}

TEST(ConnectionEdgeTest, DefaultConnectionRejectedEverywhere) {
  core::Runtime::Options opts;
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  core::Connection invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ((*rt)->as(0).Put(invalid, 1, Buffer{1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*rt)->as(0)
                .Get(invalid, core::GetSpec::Exact(1), Deadline::Poll())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*rt)->as(0).Consume(invalid, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*rt)->as(0).Disconnect(invalid).code(),
            StatusCode::kInvalidArgument);
}

TEST(ClientEdgeTest, GcHandlerUnsubscribeStopsNotices) {
  core::Runtime::Options opts;
  opts.gc_interval = Millis(5);
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto listener = client::Listener::Start(**rt);
  ASSERT_TRUE(listener.ok());

  client::CClient::Options copts;
  copts.server = (*listener)->addr();
  auto device = client::CClient::Join(copts);
  ASSERT_TRUE(device.ok());
  auto ch = (*device)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  int notices = 0;
  ASSERT_TRUE((*device)
                  ->SetGcHandler(ch->bits(), false,
                                 [&](const core::GcNotice&) { ++notices; })
                  .ok());
  auto out = (*device)->Connect(*ch, core::ConnMode::kOutput);
  auto in = (*device)->Connect(*ch, core::ConnMode::kInput);
  ASSERT_TRUE((*device)->Put(*out, 1, Buffer{1}).ok());
  ASSERT_TRUE((*device)->Consume(*in, 1).ok());
  for (int i = 0; i < 100 && notices == 0; ++i) {
    std::this_thread::sleep_for(Millis(5));
    (void)(*device)->NsList("");
  }
  EXPECT_EQ(notices, 1);

  // Unsubscribe: further reclamations stay server-side.
  ASSERT_TRUE((*device)->SetGcHandler(ch->bits(), false, nullptr).ok());
  ASSERT_TRUE((*device)->Put(*out, 2, Buffer{2}).ok());
  ASSERT_TRUE((*device)->Consume(*in, 2).ok());
  std::this_thread::sleep_for(Millis(60));
  (void)(*device)->NsList("");
  EXPECT_EQ(notices, 1);
  (*listener)->Shutdown();
  (*rt)->Shutdown();
}

TEST(ClientEdgeTest, DoubleLeaveIsSafe) {
  core::Runtime::Options opts;
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto listener = client::Listener::Start(**rt);
  ASSERT_TRUE(listener.ok());
  client::CClient::Options copts;
  copts.server = (*listener)->addr();
  auto device = client::CClient::Join(copts);
  ASSERT_TRUE(device.ok());
  EXPECT_TRUE((*device)->Leave().ok());
  EXPECT_TRUE((*device)->Leave().ok());  // idempotent
  (*listener)->Shutdown();
  (*rt)->Shutdown();
}

TEST(ListenerEdgeTest, ShutdownWhileDevicesActive) {
  core::Runtime::Options opts;
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto listener = client::Listener::Start(**rt);
  ASSERT_TRUE(listener.ok());
  client::CClient::Options copts;
  copts.server = (*listener)->addr();
  auto device = client::CClient::Join(copts);
  ASSERT_TRUE(device.ok());
  (*listener)->Shutdown();  // surrogate stops; client's next call fails
  auto ch = (*device)->CreateChannel();
  EXPECT_FALSE(ch.ok());
  (*rt)->Shutdown();
}

}  // namespace
}  // namespace dstampede
