// GcService: periodic sweeping across registered containers, notice
// fan-out to sinks, registration lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dstampede/core/gc.hpp"

namespace dstampede::core {
namespace {

SharedBuffer Payload(std::string_view s) { return SharedBuffer::FromString(s); }

TEST(GcServiceTest, SweepOnceCollectsFromChannelsAndQueues) {
  GcService gc(Millis(1000));  // not started; manual sweeps
  auto ch = std::make_shared<LocalChannel>(ChannelAttr{});
  auto q = std::make_shared<LocalQueue>(QueueAttr{});
  gc.RegisterChannel(1, ch);
  gc.RegisterQueue(2, q);

  std::uint32_t cc = ch->Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(ch->Put(10, Payload("c"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch->Consume(cc, 10).ok());

  std::uint32_t qc = q->Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(q->Put(20, Payload("q"), Deadline::Infinite()).ok());
  ASSERT_TRUE(q->Get(qc, Deadline::Poll()).ok());
  ASSERT_TRUE(q->Consume(qc, 20).ok());

  auto notices = gc.SweepOnce();
  ASSERT_EQ(notices.size(), 2u);
  bool saw_channel = false, saw_queue = false;
  for (const auto& notice : notices) {
    if (notice.container_bits == 1 && !notice.is_queue &&
        notice.timestamp == 10) {
      saw_channel = true;
    }
    if (notice.container_bits == 2 && notice.is_queue &&
        notice.timestamp == 20) {
      saw_queue = true;
    }
  }
  EXPECT_TRUE(saw_channel);
  EXPECT_TRUE(saw_queue);
}

TEST(GcServiceTest, SinksReceiveNoticeBatches) {
  GcService gc(Millis(1000));
  auto ch = std::make_shared<LocalChannel>(ChannelAttr{});
  gc.RegisterChannel(7, ch);
  std::vector<GcNotice> received;
  const std::uint64_t token = gc.AddSink(
      [&](const std::vector<GcNotice>& batch) {
        received.insert(received.end(), batch.begin(), batch.end());
      });

  std::uint32_t conn = ch->Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(ch->Put(1, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch->Consume(conn, 1).ok());
  gc.SweepOnce();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].container_bits, 7u);

  gc.RemoveSink(token);
  ASSERT_TRUE(ch->Put(2, Payload("y"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch->Consume(conn, 2).ok());
  gc.SweepOnce();
  EXPECT_EQ(received.size(), 1u) << "removed sink must not receive";
}

TEST(GcServiceTest, UnregisteredContainerNotSwept) {
  GcService gc(Millis(1000));
  auto ch = std::make_shared<LocalChannel>(ChannelAttr{});
  gc.RegisterChannel(3, ch);
  gc.UnregisterChannel(3);
  std::uint32_t conn = ch->Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(ch->Put(1, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(ch->Consume(conn, 1).ok());
  // Inline reclaim already freed the item, but the service reports
  // nothing because the channel is no longer registered.
  EXPECT_TRUE(gc.SweepOnce().empty());
}

TEST(GcServiceTest, BackgroundLoopSweepsConcurrently) {
  GcService gc(Millis(5));
  auto ch = std::make_shared<LocalChannel>(ChannelAttr{});
  gc.RegisterChannel(1, ch);
  std::atomic<std::size_t> noticed{0};
  gc.AddSink([&](const std::vector<GcNotice>& batch) {
    noticed.fetch_add(batch.size());
  });
  gc.Start();

  std::uint32_t conn = ch->Attach(ConnMode::kInput, "t");
  for (Timestamp ts = 0; ts < 20; ++ts) {
    ASSERT_TRUE(ch->Put(ts, Payload("x"), Deadline::Infinite()).ok());
    ASSERT_TRUE(ch->Consume(conn, ts).ok());
  }
  // GC is concurrent with the application (paper §3.2.2): give the
  // loop a few intervals, then stop (Stop() does a final drain).
  std::this_thread::sleep_for(Millis(50));
  gc.Stop();
  EXPECT_EQ(noticed.load(), 20u);
  EXPECT_GT(gc.sweeps(), 1u);
  EXPECT_EQ(gc.notices_total(), 20u);
}

TEST(GcServiceTest, StartStopIdempotent) {
  GcService gc(Millis(5));
  gc.Start();
  gc.Start();
  gc.Stop();
  gc.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace dstampede::core
