// The scenario swarm: whole-system simulations driven by SimController
// under virtual time. Each scenario is seed-parameterized via
// DSTAMPEDE_SIM_SEED (failures print the seed and, where a fault
// schedule is involved, the ddmin-shrunk schedule that still fails).
//
//   1. 50-space cluster bring-up with cross-cluster STM traffic;
//   2. partition cascade during surrogate failover (schedule-driven);
//   3. 1k-device reconnect storm over the production backoff schedule;
//   4. slow-link tail latency through the modeled network;
//   5. control-plane failover: the name-server leader and the session's
//      host die while a destructive queue read's reply is in flight.
//
// Scale contract (ISSUE acceptance): scenarios 1 and 3 each finish in
// under 10s of wall clock while covering minutes of simulated time.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dstampede/clf/endpoint.hpp"
#include "dstampede/clf/fault_injector.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/metrics.hpp"
#include "dstampede/common/waiter.hpp"
#include "dstampede/core/replog.hpp"
#include "dstampede/core/runtime.hpp"
#include "dstampede/sim/scenario.hpp"
#include "dstampede/sim/sim.hpp"

namespace dstampede::sim {
namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0' && parsed > 0)
             ? static_cast<std::size_t>(parsed)
             : fallback;
}

std::string ReproHint(std::uint64_t seed) {
  return "reproduce with: DSTAMPEDE_SIM_SEED=" + std::to_string(seed) +
         " ctest -R ScenarioSwarm";
}

// Runs `fn` on a worker thread while the scenario thread advances
// virtual time. Anything that leans on virtual deadlines — CLF
// retransmit timers recovering a dropped datagram, internal RPC
// timeouts against an already-stopped space during Shutdown — only
// makes progress while time moves, so blocking work must never run on
// the thread that owns the clock. Returns false if `fn` outlived the
// real drive budget.
bool DriveToCompletion(SimController& sim, std::function<void()> fn) {
  // The worker owns copies of everything it touches: if it wedges past
  // the horizon it gets detached, and a detached thread must never
  // reach back into this (dead) stack frame. Callers pass lambdas that
  // capture shared_ptr state by value for the same reason.
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread worker([fn = std::move(fn), done] {
    fn();
    done->store(true);
  });
  // Virtual budget is effectively unlimited (slices keep coming), but
  // the *real* budget is capped: a wedged worker turns into a fast
  // test failure instead of grinding out a huge virtual horizon while
  // ctest's per-test timeout looms.
  const TimePoint real0 = SteadyClock::now();
  bool finished = false;
  while (!finished && SteadyClock::now() - real0 < Millis(20'000)) {
    finished = sim.RunUntil([&] { return done->load(); }, Millis(300'000));
  }
  if (finished) {
    worker.join();
  } else {
    worker.detach();  // leak rather than hang the whole suite
  }
  return finished;
}

// --- scenario 1: 50-space bring-up ----------------------------------------

TEST(ScenarioSwarmTest, FiftySpaceBringUpUnderTenSeconds) {
  const std::uint64_t seed = SimController::SeedFromEnv(1);
  SCOPED_TRACE(ReproHint(seed));
  const std::size_t spaces = EnvSize("DSTAMPEDE_SIM_SPACES", 50);
  const TimePoint wall0 = SteadyClock::now();

  // Worker-touched state lives on the heap, shared with the worker
  // lambdas: a worker that wedges past the horizon gets detached, and
  // its shared_ptr copy keeps the state alive. Declared before the
  // SimController so on teardown the clock uninstalls first and any
  // remaining destruction finishes under real time.
  struct BringUpState {
    std::string diag;
    std::unique_ptr<core::Runtime> rt;
  };
  auto st = std::make_shared<BringUpState>();
  SimController sim(seed);
  core::Runtime::Options opts;
  opts.num_address_spaces = spaces;
  opts.dispatcher_threads = 2;  // 50 spaces: bound the thread count

  // Bring-up and traffic run in a worker while the scenario thread
  // advances virtual time: the bring-up burst can drop real datagrams,
  // and CLF retransmit timers only mature as virtual time moves.
  const bool finished = DriveToCompletion(sim, [st, opts, spaces] {
    auto created = core::Runtime::Create(opts);
    if (!created.ok()) {
      st->diag = "create: " + created.status().ToString();
      return;
    }
    st->rt = std::move(*created);
    core::Runtime& rt = *st->rt;
    // Cross-cluster STM traffic: a channel on the last space, written
    // from the first, read back from a third.
    auto ch = rt.as(spaces - 1).CreateChannel();
    if (!ch.ok()) {
      st->diag = "channel: " + ch.status().ToString();
      return;
    }
    auto out = rt.as(0).Connect(*ch, core::ConnMode::kOutput);
    auto in = rt.as(spaces / 2).Connect(*ch, core::ConnMode::kInput);
    if (!out.ok() || !in.ok()) {
      st->diag = "connect failed";
      return;
    }
    for (Timestamp ts = 0; ts < 8; ++ts) {
      Status s = rt.as(0).Put(*out, ts, Buffer{static_cast<std::uint8_t>(ts)},
                              Deadline::AfterMillis(600'000));
      if (!s.ok()) {
        st->diag = "put: " + s.ToString();
        return;
      }
      auto item = rt.as(spaces / 2)
                      .Get(*in, core::GetSpec::Exact(ts),
                           Deadline::AfterMillis(600'000));
      if (!item.ok()) {
        st->diag = "get: " + item.status().ToString();
        return;
      }
    }
  });
  ASSERT_TRUE(finished) << "bring-up never completed inside the drive budget";
  ASSERT_TRUE(st->diag.empty()) << st->diag;
  ASSERT_EQ(st->rt->size(), spaces);
  sim.Record("bringup.spaces=" + std::to_string(spaces));
  sim.Record("bringup.traffic=ok");

  // A simulated minute of idle cluster: GC and janitor loops tick in
  // virtual time without costing a minute of wall clock.
  sim.RunFor(Millis(60'000));
  if (!DriveToCompletion(sim, [st] { st->rt->Shutdown(); })) {
    // The detached worker's shared_ptr copy keeps the runtime alive.
    FAIL() << "shutdown wedged past the drive budget";
  }

  const Duration wall = SteadyClock::now() - wall0;
  EXPECT_LT(wall, Millis(10'000))
      << "bring-up burned " << ToMicros(wall) / 1000 << "ms of wall clock";
}

// --- scenario 2: partition cascade during surrogate failover --------------

struct CascadeOutcome {
  bool ok = false;
  std::string diag;
};

// One full run: a 4-space cluster, a client pinned to AS 1, a fault
// schedule applied at virtual offsets while AS 1 is shut down mid-run
// (forcing session migration), every partition healed by its paired
// heal event, and the client expected to finish all its Puts.
CascadeOutcome RunCascadeOnce(std::uint64_t seed,
                              const FaultSchedule& schedule) {
  CascadeOutcome outcome;
  // Worker-touched state lives on the heap, shared with the driven
  // worker lambdas: a worker that wedges past the horizon gets
  // detached, and its shared_ptr copy keeps the state alive instead of
  // reaching back into this (dead) stack frame. Declared before the
  // SimController so the clock uninstalls first on teardown and the
  // destructors finish under real time.
  struct CascadeState {
    std::unique_ptr<core::Runtime> rt;
    std::unique_ptr<client::Listener> listener;
    std::unique_ptr<client::CClient> client;
    Result<ChannelId> ch = InvalidArgumentError("unset");
    Result<core::Connection> conn = InvalidArgumentError("unset");
    std::string diag;
  };
  auto st = std::make_shared<CascadeState>();
  SimController sim(seed);

  // Setup performs real CLF/TCP round trips whose loss recovery needs
  // virtual time to move, so it runs driven like everything else.
  const bool setup_done = DriveToCompletion(sim, [st] {
    core::Runtime::Options ropts;
    ropts.num_address_spaces = 4;
    ropts.dispatcher_threads = 2;
    auto created = core::Runtime::Create(ropts);
    if (!created.ok()) {
      st->diag = "runtime: " + created.status().ToString();
      return;
    }
    st->rt = std::move(*created);
    auto l = client::Listener::Start(*st->rt, client::Listener::Options{});
    if (!l.ok()) {
      st->diag = "listener: " + l.status().ToString();
      return;
    }
    st->listener = std::move(*l);
    client::CClient::Options copts;
    copts.server = st->listener->addr();
    copts.name = "cascade-device";
    copts.preferred_as = 1;
    // Virtual time can outrun real reconnect progress by orders of
    // magnitude, so the virtual budget must be generous: ten simulated
    // minutes still costs well under a second of wall clock.
    copts.reconnect.give_up_after = Millis(600'000);
    auto joined = client::CClient::Join(copts);
    if (!joined.ok()) {
      st->diag = "join: " + joined.status().ToString();
      return;
    }
    st->client = std::move(*joined);
  });
  if (!setup_done) {
    outcome.diag = "setup never completed inside the drive budget";
    return outcome;
  }
  if (!st->diag.empty()) {
    outcome.diag = st->diag;
    return outcome;
  }

  if (!DriveToCompletion(sim, [st] {
        // The channel homes on AS 0 so it survives the scripted death
        // of the session's host (AS 1): failover migrates the session
        // and replays the connection, but no failover can resurrect a
        // container whose home space died with it.
        st->ch = st->rt->as(0).CreateChannel();
        if (st->ch.ok()) {
          st->conn = st->client->Connect(*st->ch, core::ConnMode::kOutput);
        }
      })) {
    outcome.diag = "channel/connect never completed inside the drive budget";
    return outcome;
  }
  if (!st->conn.ok()) {
    outcome.diag = "channel/connect: " + st->conn.status().ToString();
    return outcome;
  }

  // The device keeps publishing through the whole cascade. Its backoff
  // naps are virtual, so forward progress during reconnects depends on
  // the scenario thread advancing time below.
  constexpr Timestamp kFrames = 24;
  std::atomic<bool> done{false};
  Status worker_status = OkStatus();
  std::thread device([&] {
    for (Timestamp ts = 0; ts < kFrames; ++ts) {
      // Virtual pacing stretches the publishing across the schedule's
      // horizon, so the scripted faults land mid-stream no matter how
      // fast the real machine is. Without it a quick run finishes all
      // its frames before the first fault ever matures.
      SleepFor(Millis(25));
      Status s = st->client->Put(*st->conn, ts, Buffer{1, 2, 3},
                                 Deadline::AfterMillis(600'000));
      if (!s.ok()) {
        worker_status = s;
        break;
      }
    }
    done = true;
  });

  const TimePoint t0 = sim.Now();
  std::size_t applied = 0;
  bool killed_host = false;
  auto apply_due = [&] {
    while (applied < schedule.size() &&
           t0 + schedule[applied].at <= sim.Now()) {
      const FaultEvent& ev = schedule[applied++];
      sim.Record("apply " + ev.ToString());
      core::AddressSpace& a = st->rt->as(ev.space_a % 4);
      core::AddressSpace& b = st->rt->as(ev.space_b % 4);
      switch (ev.kind) {
        case FaultEvent::Kind::kPartition:
          if (&a != &b) {
            a.fault_injector().Partition(b.clf_addr());
            b.fault_injector().Partition(a.clf_addr());
          }
          break;
        case FaultEvent::Kind::kHeal:
          a.fault_injector().Heal(b.clf_addr());
          b.fault_injector().Heal(a.clf_addr());
          break;
        case FaultEvent::Kind::kDegradeLink: {
          clf::FaultInjector::LinkProfile profile;
          profile.latency = ev.latency;
          profile.loss = ev.loss;
          if (&a != &b) a.fault_injector().SetLinkProfile(b.clf_addr(), profile);
          break;
        }
        case FaultEvent::Kind::kRestoreLink:
          if (&a != &b) a.fault_injector().ClearLinkProfiles();
          break;
        case FaultEvent::Kind::kKillConnection:
          // Mid-schedule, once: take down the client's host space so
          // the session must migrate to a surviving one. Asynchronous:
          // the shutdown itself waits on virtual deadlines, and this
          // thread is the one that advances them.
          if (!killed_host) {
            killed_host = true;
            sim.Record("kill host as=1");
            std::thread([st] { st->rt->as(1).Shutdown(); }).detach();
          }
          break;
      }
    }
  };

  // Drive: advance virtual time in small quanta while the schedule has
  // events to land, then run the remainder out in one long stretch.
  bool finished = false;
  for (int round = 0; round < 200 && !finished; ++round) {
    apply_due();
    finished = sim.RunUntil([&] { return done.load(); }, Millis(50));
    if (applied == schedule.size()) break;
  }
  if (!finished) {
    apply_due();
    finished = sim.RunUntil([&] { return done.load(); }, Millis(1'200'000));
  }
  if (!finished) {
    // Unjam the worker so join() below can't hang: heal everything and
    // let more virtual time limp it home (or time it out).
    for (std::size_t i = 0; i < 4; ++i) {
      st->rt->as(i).fault_injector().HealAll();
      st->rt->as(i).fault_injector().ClearLinkProfiles();
    }
    (void)sim.RunUntil([&] { return done.load(); }, Millis(120'000));
  }
  device.join();

  if (!done.load()) {
    outcome.diag = "device never finished; " + sim.TraceDump();
  } else if (!worker_status.ok()) {
    outcome.diag = "device failed: " + worker_status.ToString() + "; " +
                   sim.TraceDump();
  } else if (killed_host && st->client->reconnects() == 0) {
    outcome.diag = "host was killed but the session never resumed";
  } else {
    outcome.ok = true;
  }
  // Driven teardown: on a wedge the detached worker's shared_ptr copy
  // keeps the holders alive, so nothing races their destructors.
  if (!DriveToCompletion(sim, [st] {
        (void)st->client->Leave();
        st->listener->Shutdown();
        st->rt->Shutdown();
      })) {
    outcome.diag = "teardown wedged past the drive budget";
    outcome.ok = false;
  }
  return outcome;
}

TEST(ScenarioSwarmTest, PartitionCascadeDuringFailover) {
  const std::uint64_t seed = SimController::SeedFromEnv(2);
  SCOPED_TRACE(ReproHint(seed));

  std::mt19937_64 rng(seed);
  ScheduleParams params;
  params.num_spaces = 4;
  params.num_events = 6;
  params.horizon = Millis(1'500);
  params.kill_weight = 2;  // make the failover kill likely
  FaultSchedule schedule = GenerateSchedule(rng, params);
  // Guarantee the scenario exercises failover even when the draw has
  // no kill event.
  bool has_kill = false;
  for (const FaultEvent& ev : schedule) {
    has_kill |= ev.kind == FaultEvent::Kind::kKillConnection;
  }
  if (!has_kill) {
    FaultEvent kill;
    kill.kind = FaultEvent::Kind::kKillConnection;
    kill.at = Millis(400);
    kill.space_a = 1;
    schedule.insert(schedule.begin(), kill);
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const FaultEvent& x, const FaultEvent& y) {
                       return x.at < y.at;
                     });
  }

  CascadeOutcome outcome = RunCascadeOnce(seed, schedule);
  if (!outcome.ok) {
    // Automatic failing-seed shrinking: ddmin the schedule down to the
    // events that still break the run, and print the minimal cascade.
    const FaultSchedule shrunk = ShrinkSchedule(
        schedule,
        [&](const FaultSchedule& c) { return !RunCascadeOnce(seed, c).ok; });
    FAIL() << "cascade failed under seed " << seed << ": " << outcome.diag
           << "\nminimal failing schedule (" << shrunk.size() << " of "
           << schedule.size() << " events):\n"
           << ScheduleToString(shrunk);
  }
}

// --- scenario 3: 1k-device reconnect storm --------------------------------

TEST(ScenarioSwarmTest, ThousandDeviceReconnectStormDisperses) {
  const std::uint64_t seed = SimController::SeedFromEnv(3);
  SCOPED_TRACE(ReproHint(seed));
  const std::size_t devices = EnvSize("DSTAMPEDE_SIM_DEVICES", 1000);
  const TimePoint wall0 = SteadyClock::now();

  SimController sim(seed);
  TimerWheel wheel;
  const TimePoint t0 = sim.Now();
  // The "server" comes back this far into the outage; attempts before
  // it fail, attempts after it succeed. Every device runs the real
  // client backoff schedule (client::ReconnectBackoff) under virtual
  // time, so the storm's shape is the production shape.
  const TimePoint recovery = t0 + Millis(777);

  client::ReconnectPolicy policy;  // production defaults
  struct Device {
    client::ReconnectBackoff backoff;
    int attempts = 0;
  };
  std::vector<Device> fleet;
  fleet.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    fleet.push_back(Device{client::ReconnectBackoff(policy, sim.NextU64()), 0});
  }

  ds::Mutex mu{"storm.mu"};
  std::size_t recovered = 0;
  std::map<std::int64_t, std::size_t> attempts_per_ms;  // virtual ms → count
  // Attempts are bucketed by their *scheduled* virtual time, not by
  // Now() at callback execution: the controller legitimately advances
  // past a tick while the wheel is still draining its 1000 callbacks,
  // and the scheduled times are a pure function of the seed.
  std::function<void(std::size_t, TimePoint)> attempt =
      [&](std::size_t i, TimePoint when) {
        bool success;
        {
          ds::MutexLock lock(mu);
          fleet[i].attempts += 1;
          attempts_per_ms[ToMicros(when - t0) / 1000] += 1;
          success = when >= recovery;
          if (success) ++recovered;
        }
        if (!success) {
          const TimePoint next = when + fleet[i].backoff.NextNap();
          wheel.Schedule(Deadline::At(next),
                         [&attempt, i, next] { attempt(i, next); });
        }
      };
  // The outage drops every device at once: the worst-case herd.
  for (std::size_t i = 0; i < devices; ++i) {
    const TimePoint when = t0 + Millis(1);
    wheel.Schedule(Deadline::At(when), [&attempt, i, when] { attempt(i, when); });
  }

  const bool all_back = sim.RunUntil(
      [&] {
        ds::MutexLock lock(mu);
        return recovered == devices;
      },
      Millis(30'000));
  wheel.Shutdown();
  ASSERT_TRUE(all_back) << "only " << recovered << "/" << devices
                        << " devices reconnected";

  // Thundering-herd dispersion: the first round lands in one burst,
  // but by the time the server recovers the jittered backoff must have
  // spread attempts out — no later millisecond bucket may contain a
  // burst anywhere near the whole fleet.
  std::size_t first_burst = 0, worst_late_burst = 0;
  std::uint64_t total_attempts = 0;
  {
    ds::MutexLock lock(mu);
    for (const auto& [ms, count] : attempts_per_ms) {
      total_attempts += count;
      if (ms <= 1) {
        first_burst += count;
      } else if (ms >= 100) {
        worst_late_burst = std::max(worst_late_burst, count);
      }
    }
  }
  EXPECT_EQ(first_burst, devices) << "round one is the synchronized herd";
  EXPECT_LT(worst_late_burst, devices / 2)
      << "jittered backoff failed to disperse the herd";
  EXPECT_GT(total_attempts, static_cast<std::uint64_t>(devices))
      << "an outage of 777ms must force retries past round one";
  sim.Record("storm.devices=" + std::to_string(devices));
  sim.Record("storm.attempts=" + std::to_string(total_attempts));

  const Duration wall = SteadyClock::now() - wall0;
  EXPECT_LT(wall, Millis(10'000))
      << "storm burned " << ToMicros(wall) / 1000 << "ms of wall clock";
}

// --- scenario 4: slow-link tail latency -----------------------------------

TEST(ScenarioSwarmTest, SlowLinkTailLatencyIsQueueingDelay) {
  const std::uint64_t seed = SimController::SeedFromEnv(4);
  SCOPED_TRACE(ReproHint(seed));
  SimController sim(seed);

  clf::Endpoint::Options sender_opts;
  // An RTO far past the modeled queueing delays keeps retransmissions
  // from polluting the FIFO assertions in the common case, while still
  // maturing inside the horizon so a real UDP drop can be recovered.
  sender_opts.initial_rto = Millis(300'000);
  sender_opts.max_rto = Millis(300'000);
  auto sender = clf::Endpoint::Create(sender_opts);
  ASSERT_TRUE(sender.ok()) << sender.status();
  auto receiver = clf::Endpoint::Create({});
  ASSERT_TRUE(receiver.ok()) << receiver.status();

  // 8kbit/s with 100-byte messages: ~100ms of serialization each, so
  // back-to-back sends must queue behind one another on the wire.
  clf::FaultInjector::LinkProfile narrow;
  narrow.latency = Millis(20);
  narrow.jitter = Millis(5);
  narrow.bandwidth_bps = 8'000;
  (*sender)->fault_injector().SetLinkProfile((*receiver)->addr(), narrow);

  constexpr int kMessages = 6;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(
        (*sender)
            ->Send((*receiver)->addr(), Buffer(100, static_cast<std::uint8_t>(i)))
            .ok());
  }
  // Nothing crosses while virtual time is frozen.
  EXPECT_GE((*sender)->fault_injector().delayed_pending(), 1u);

  std::atomic<int> received{0};
  std::vector<Duration> delivery_offsets(kMessages);
  std::vector<std::uint8_t> order;
  const TimePoint t0 = sim.Now();
  std::thread drain([&] {
    // One absolute deadline for the whole drain, inside the RunUntil
    // horizon below: every Recv matures before the horizon does.
    const Deadline give_up = Deadline::At(t0 + Millis(650'000));
    for (int i = 0; i < kMessages; ++i) {
      Buffer got;
      transport::SockAddr from;
      if (!(*receiver)->Recv(got, from, give_up).ok()) return;
      delivery_offsets[i] = Now() - t0;
      order.push_back(got.empty() ? 0xFF : got[0]);
      received.fetch_add(1);
    }
  });
  // The horizon outlives both the drain's absolute Recv deadline and
  // the 300s RTO: whatever happens — normal delivery, a real UDP drop
  // recovered by retransmission, or the Recv timing out — the drain
  // thread is guaranteed to exit before RunUntil returns, so join()
  // cannot wedge on a frozen clock.
  const bool all = sim.RunUntil(
      [&] { return received.load() == kMessages; }, Millis(700'000));
  drain.join();
  ASSERT_TRUE(all) << "slow link stranded " << kMessages - received.load()
                   << " messages; " << (*sender)->fault_injector().Summary();

  // FIFO: CLF sequencing holds even across the modeled link.
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(order[i], static_cast<std::uint8_t>(i)) << "reordered at " << i;
  }
  // The tail reflects queueing: the last message serializes behind five
  // predecessors (~500ms) plus its own ~100ms and the 20ms latency.
  EXPECT_GE(delivery_offsets[kMessages - 1], Millis(500))
      << "tail latency shows no queueing delay";
  sim.Record("slowlink.tail_ms=" +
             std::to_string(ToMicros(delivery_offsets[kMessages - 1]) / 1000));
}

// --- scenario 5: control-plane failover + exactly-once destructive read ---

TEST(ScenarioSwarmTest, NsFailoverExactlyOnceDestructiveRead) {
  const std::uint64_t seed = SimController::SeedFromEnv(6);
  SCOPED_TRACE(ReproHint(seed));

  // Worker-touched state lives on the heap, shared with the driven
  // worker lambdas (same discipline as the cascade scenario). The
  // edge-fault injector is borrowed, not owned, by the listener, so it
  // sits first in the struct and outlives everything that uses it.
  struct NsFailoverState {
    std::unique_ptr<clf::FaultInjector> edge =
        std::make_unique<clf::FaultInjector>();
    std::unique_ptr<core::Runtime> rt;
    std::unique_ptr<client::Listener> listener;
    std::unique_ptr<client::CClient> client;
    Result<QueueId> q = InvalidArgumentError("unset");
    Result<core::Connection> out = InvalidArgumentError("unset");
    Result<core::Connection> in = InvalidArgumentError("unset");
    Result<core::ItemView> first = InvalidArgumentError("unset");
    Result<core::ItemView> second = InvalidArgumentError("unset");
    Result<core::NsEntry> resolved = InvalidArgumentError("unset");
    std::string diag;
  };
  auto st = std::make_shared<NsFailoverState>();
  SimController sim(seed);

  const bool setup_done = DriveToCompletion(sim, [st] {
    core::Runtime::Options ropts;
    ropts.num_address_spaces = 5;
    ropts.dispatcher_threads = 2;
    // Three-replica control plane with a lease short enough that the
    // failover matures inside the scenario, plus the failure-detection
    // knobs every resilience test runs with.
    ropts.ns_replicas = 3;
    ropts.ns_lease = Millis(300);
    ropts.ns_heartbeat = Millis(75);
    ropts.clf_max_retransmits = 5;
    ropts.peer_keepalive_interval = Millis(25);
    ropts.peer_timeout = Millis(150);
    auto created = core::Runtime::Create(ropts);
    if (!created.ok()) {
      st->diag = "runtime: " + created.status().ToString();
      return;
    }
    st->rt = std::move(*created);
    client::Listener::Options lopts;
    lopts.edge_faults = st->edge.get();
    auto l = client::Listener::Start(*st->rt, lopts);
    if (!l.ok()) {
      st->diag = "listener: " + l.status().ToString();
      return;
    }
    st->listener = std::move(*l);
    client::CClient::Options copts;
    copts.server = st->listener->addr();
    copts.name = "ns-failover-device";
    // Host the session on AS 3: not a name-server replica, so its death
    // exercises session migration without touching the replog quorum.
    copts.preferred_as = 3;
    copts.reconnect.give_up_after = Millis(600'000);
    auto joined = client::CClient::Join(copts);
    if (!joined.ok()) {
      st->diag = "join: " + joined.status().ToString();
      return;
    }
    st->client = std::move(*joined);
    // The queue homes on AS 4, which survives both scripted deaths.
    st->q = st->rt->as(4).CreateQueue();
    if (!st->q.ok()) {
      st->diag = "queue: " + st->q.status().ToString();
      return;
    }
    st->out = st->client->Connect(*st->q, core::ConnMode::kOutput);
    st->in = st->client->Connect(*st->q, core::ConnMode::kInput);
    if (!st->out.ok() || !st->in.ok()) {
      st->diag = "connect failed";
      return;
    }
    // Register from the queue's owner (AS 4) so the entry's owner_as
    // survives both deaths below — a client-side register would stamp
    // the device's host (AS 3) as owner and the entry would be purged
    // with it, by design.
    core::NsEntry entry{"swarm/sensor-q", core::NsEntry::Kind::kQueue,
                        st->q->bits(), "scenario 5"};
    if (Status s = st->rt->as(4).NsRegister(entry); !s.ok()) {
      st->diag = "register: " + s.ToString();
      return;
    }
    for (std::uint8_t i = 1; i <= 2; ++i) {
      Status s = st->client->Put(*st->out, i - 1, Buffer{i},
                                 Deadline::AfterMillis(600'000));
      if (!s.ok()) {
        st->diag = "put: " + s.ToString();
        return;
      }
    }
  });
  ASSERT_TRUE(setup_done) << "setup never completed inside the drive budget";
  ASSERT_TRUE(st->diag.empty()) << st->diag;

  // The destructive read executes (item 1 leaves the queue, the redo
  // record is journaled with the session) — then the link dies before
  // the reply crosses. The client must recover the reply, not rerun
  // the dequeue.
  st->edge->ArmConnectionKill(1, clf::FaultInjector::KillPoint::kAfterExecute);
  auto got_first = std::make_shared<std::atomic<bool>>(false);
  std::thread getter([st, got_first] {
    st->first = st->client->Get(*st->in, Deadline::AfterMillis(600'000));
    got_first->store(true);
  });
  ASSERT_TRUE(sim.RunUntil(
      [&] {
        return got_first->load() ||
               st->listener->surrogates_in(client::Surrogate::State::kParked) >=
                   1;
      },
      Millis(600'000)))
      << "surrogate never parked after the connection kill";

  // While the resume is in flight, kill the session's host AND the
  // bootstrap name-server leader. The resume now depends on the
  // control plane it is recovering through: AS 1 must take the lease
  // and serve the session lookup, and the journaled reply must answer
  // the replayed Get exactly once.
  auto hosts_down = std::make_shared<std::atomic<bool>>(false);
  std::thread killer([st, hosts_down] {
    st->rt->as(3).Shutdown();
    st->rt->as(0).Shutdown();
    hosts_down->store(true);
  });
  ASSERT_TRUE(sim.RunUntil(
      [&] { return got_first->load() && hosts_down->load(); },
      Millis(1'200'000)))
      << "first get never completed across the double death";
  getter.join();
  killer.join();
  // Everything below is EXPECT + guard, never ASSERT: an early return
  // here would skip the *driven* teardown at the bottom, and tearing
  // the runtime down with nobody advancing virtual time wedges.
  EXPECT_TRUE(st->first.ok()) << st->first.status();
  if (st->first.ok()) {
    EXPECT_EQ(st->first->payload.ToString(), std::string(1, '\x01'));
  }

  // Deterministic election: AS 1 is the first live replica.
  core::RepLog* replog = st->rt->as(1).replication();
  EXPECT_NE(replog, nullptr) << "AS 1 is not a replica";
  if (replog != nullptr) {
    EXPECT_TRUE(
        sim.RunUntil([&] { return replog->IsLeader(); }, Millis(600'000)))
        << "AS 1 never took over the lease";
    EXPECT_GE(replog->leader_changes(), 1u);
  }

  // The second read and a post-failover lookup run against the new
  // leader; the session has migrated off the dead host by now.
  if (!DriveToCompletion(sim, [st] {
        st->second = st->client->Get(*st->in, Deadline::AfterMillis(600'000));
        st->resolved = st->client->NsLookup("swarm/sensor-q");
      })) {
    ADD_FAILURE() << "post-failover traffic wedged past the drive budget";
  }
  EXPECT_TRUE(st->second.ok()) << st->second.status();
  if (st->second.ok()) {
    EXPECT_EQ(st->second->payload.ToString(), std::string(1, '\x02'))
        << "destructive read re-ran instead of replaying its journaled reply";
  }
  EXPECT_TRUE(st->resolved.ok()) << st->resolved.status();
  if (st->resolved.ok()) {
    EXPECT_EQ(st->resolved->id_bits, st->q->bits());
  }
  if (replog != nullptr) {
    EXPECT_GT(replog->log_appends(), 0u)
        << "the migration never journaled through the new leader";
  }

  // The redo journal must have been written once and consulted once,
  // whichever resume path (park-adopt or migrate) the race picked.
  std::uint64_t journaled = 0;
  std::uint64_t replayed = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    metrics::Registry& reg = st->rt->as(i).metrics_registry();
    journaled += reg.GetCounter("surrogate.redo_journaled").Value();
    replayed += reg.GetCounter("surrogate.redo_replayed").Value();
  }
  EXPECT_GE(journaled, 1u) << "no surrogate journaled the destructive reply";
  EXPECT_GE(replayed, 1u) << "the journaled reply was never replayed";
  sim.Record("nsfailover.journaled=" + std::to_string(journaled));
  sim.Record("nsfailover.replayed=" + std::to_string(replayed));

  if (!DriveToCompletion(sim, [st] {
        (void)st->client->Leave();
        st->listener->Shutdown();
        st->rt->Shutdown();
      })) {
    FAIL() << "teardown wedged past the drive budget";
  }
}

// --- determinism proof across a full scenario -----------------------------

TEST(ScenarioSwarmTest, StormTraceIsSeedReproducible) {
  auto run = [](std::uint64_t seed) {
    SimController sim(seed);
    client::ReconnectPolicy policy;
    // A miniature storm, fully virtual: hash the attempt timeline.
    for (int device = 0; device < 50; ++device) {
      client::ReconnectBackoff backoff(policy, sim.NextU64());
      TimePoint at = sim.Now();
      for (int round = 0; round < 5; ++round) {
        at += backoff.NextNap();
        sim.Record("d" + std::to_string(device) + " attempt@" +
                   std::to_string(ToMicros(at - sim.Now())));
      }
    }
    sim.RunFor(Millis(100));
    return sim.TraceHash();
  };
  const std::uint64_t seed = SimController::SeedFromEnv(5);
  SCOPED_TRACE(ReproHint(seed));
  EXPECT_EQ(run(seed), run(seed))
      << "same seed must replay byte-for-byte";
  EXPECT_NE(run(seed), run(seed + 1))
      << "distinct seeds must diverge";
}

}  // namespace
}  // namespace dstampede::sim
