// The flat C API (dstampede.h): lifecycle, channel and queue I/O,
// error mapping, buffer sizing, name server, real-time synchrony.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "dstampede/capi/dstampede.h"

namespace {

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(spd_runtime_create(2, &rt_), SPD_OK);
  }
  void TearDown() override { spd_runtime_destroy(rt_); }

  spd_runtime* rt_ = nullptr;
};

TEST_F(CapiTest, RuntimeSize) { EXPECT_EQ(spd_runtime_size(rt_), 2); }

TEST_F(CapiTest, ChannelPutGetConsume) {
  uint64_t chan = 0;
  ASSERT_EQ(spd_chan_create(rt_, 0, 0, &chan), SPD_OK);
  spd_conn out, in;
  ASSERT_EQ(spd_chan_connect(rt_, 1, chan, SPD_OUTPUT, &out), SPD_OK);
  ASSERT_EQ(spd_chan_connect(rt_, 0, chan, SPD_INPUT, &in), SPD_OK);

  const char payload[] = "space-time";
  ASSERT_EQ(spd_put_item(rt_, 1, &out, 5, payload, sizeof payload,
                         SPD_WAIT_FOREVER),
            SPD_OK);
  char buf[32];
  size_t len = 0;
  ASSERT_EQ(spd_get_item(rt_, 0, &in, 5, buf, sizeof buf, &len, 5000),
            SPD_OK);
  EXPECT_EQ(len, sizeof payload);
  EXPECT_STREQ(buf, payload);
  EXPECT_EQ(spd_consume_item(rt_, 0, &in, 5), SPD_OK);
  // Consumed: the re-get maps to the GC error.
  EXPECT_EQ(spd_get_item(rt_, 0, &in, 5, buf, sizeof buf, &len, 0),
            SPD_ERR_GARBAGE_COLLECTED);
}

TEST_F(CapiTest, BufferTooSmallReportsFullSize) {
  uint64_t chan = 0;
  ASSERT_EQ(spd_chan_create(rt_, 0, 0, &chan), SPD_OK);
  spd_conn out, in;
  ASSERT_EQ(spd_chan_connect(rt_, 0, chan, SPD_OUTPUT, &out), SPD_OK);
  ASSERT_EQ(spd_chan_connect(rt_, 0, chan, SPD_INPUT, &in), SPD_OK);
  char big[100];
  std::memset(big, 7, sizeof big);
  ASSERT_EQ(spd_put_item(rt_, 0, &out, 1, big, sizeof big, 0), SPD_OK);
  char tiny[10];
  size_t len = 0;
  EXPECT_EQ(spd_get_item(rt_, 0, &in, 1, tiny, sizeof tiny, &len, 0),
            SPD_ERR_BUFFER_TOO_SMALL);
  EXPECT_EQ(len, sizeof big);
}

TEST_F(CapiTest, QueueFifoThroughCApi) {
  uint64_t queue = 0;
  ASSERT_EQ(spd_queue_create(rt_, 0, 0, &queue), SPD_OK);
  spd_conn out, in;
  ASSERT_EQ(spd_queue_connect(rt_, 0, queue, SPD_OUTPUT, &out), SPD_OK);
  ASSERT_EQ(spd_queue_connect(rt_, 0, queue, SPD_INPUT, &in), SPD_OK);
  for (int i = 0; i < 3; ++i) {
    char item = static_cast<char>('a' + i);
    ASSERT_EQ(spd_put_item(rt_, 0, &out, i, &item, 1, 0), SPD_OK);
  }
  for (int i = 0; i < 3; ++i) {
    spd_timestamp ts = -1;
    char got = 0;
    size_t len = 0;
    ASSERT_EQ(spd_get_next(rt_, 0, &in, &ts, &got, 1, &len, 5000), SPD_OK);
    EXPECT_EQ(ts, i);
    EXPECT_EQ(got, 'a' + i);
    ASSERT_EQ(spd_consume_item(rt_, 0, &in, ts), SPD_OK);
  }
}

TEST_F(CapiTest, ModeEnforcement) {
  uint64_t chan = 0;
  ASSERT_EQ(spd_chan_create(rt_, 0, 0, &chan), SPD_OK);
  spd_conn in;
  ASSERT_EQ(spd_chan_connect(rt_, 0, chan, SPD_INPUT, &in), SPD_OK);
  char byte = 1;
  EXPECT_EQ(spd_put_item(rt_, 0, &in, 1, &byte, 1, 0),
            SPD_ERR_PERMISSION_DENIED);
}

TEST_F(CapiTest, TimeoutMapping) {
  uint64_t chan = 0;
  ASSERT_EQ(spd_chan_create(rt_, 0, 0, &chan), SPD_OK);
  spd_conn in;
  ASSERT_EQ(spd_chan_connect(rt_, 0, chan, SPD_INPUT, &in), SPD_OK);
  char buf[4];
  size_t len = 0;
  EXPECT_EQ(spd_get_item(rt_, 0, &in, 1, buf, sizeof buf, &len, 50),
            SPD_ERR_TIMEOUT);
}

TEST_F(CapiTest, NameServerAcrossAddressSpaces) {
  uint64_t chan = 0;
  ASSERT_EQ(spd_chan_create(rt_, 1, 0, &chan), SPD_OK);
  ASSERT_EQ(spd_ns_register(rt_, 1, "capi/stream", chan, 0, "meta"), SPD_OK);
  uint64_t found = 0;
  int is_queue = -1;
  ASSERT_EQ(spd_ns_lookup(rt_, 0, "capi/stream", 5000, &found, &is_queue),
            SPD_OK);
  EXPECT_EQ(found, chan);
  EXPECT_EQ(is_queue, 0);
  EXPECT_EQ(spd_ns_register(rt_, 0, "capi/stream", chan, 0, ""),
            SPD_ERR_ALREADY_EXISTS);
  ASSERT_EQ(spd_ns_unregister(rt_, 0, "capi/stream"), SPD_OK);
  EXPECT_EQ(spd_ns_lookup(rt_, 0, "capi/stream", 0, &found, &is_queue),
            SPD_ERR_NOT_FOUND);
}

TEST_F(CapiTest, InvalidArgumentsRejected) {
  EXPECT_EQ(spd_chan_create(nullptr, 0, 0, nullptr),
            SPD_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(spd_chan_create(rt_, 99, 0, nullptr), SPD_ERR_INVALID_ARGUMENT);
  uint64_t chan = 0;
  EXPECT_EQ(spd_chan_create(rt_, -1, 0, &chan), SPD_ERR_INVALID_ARGUMENT);
  spd_conn bogus{};
  EXPECT_EQ(spd_put_item(rt_, 0, &bogus, 1, "x", 1, 0),
            SPD_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(spd_disconnect(rt_, 0, nullptr), SPD_ERR_INVALID_ARGUMENT);
}

TEST(CapiRtSyncTest, PacesAndCountsSlips) {
  spd_rt_sync* pace = spd_rt_sync_create(20000, 5000);
  ASSERT_NE(pace, nullptr);
  EXPECT_EQ(spd_rt_sync_wait(pace), SPD_OK);  // early: waits to the tick
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(spd_rt_sync_wait(pace), SPD_ERR_TIMEOUT);  // slipped
  EXPECT_EQ(spd_rt_sync_slips(pace), 1u);
  spd_rt_sync_destroy(pace);
  EXPECT_EQ(spd_rt_sync_create(0, 0), nullptr);
}

TEST(CapiStatusTest, NamesCoverAllCodes) {
  EXPECT_STREQ(spd_status_name(SPD_OK), "SPD_OK");
  EXPECT_STREQ(spd_status_name(SPD_ERR_GARBAGE_COLLECTED),
               "SPD_ERR_GARBAGE_COLLECTED");
  EXPECT_STREQ(spd_status_name(SPD_ERR_BUFFER_TOO_SMALL),
               "SPD_ERR_BUFFER_TOO_SMALL");
  EXPECT_STREQ(spd_status_name(static_cast<spd_status>(-99)),
               "SPD_ERR_UNKNOWN");
}

}  // namespace
