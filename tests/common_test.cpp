// Unit tests for the common substrate: Status/Result, byte buffers,
// deadlines, stats, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/stats.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/thread_pool.hpp"

namespace dstampede {
namespace {

// --- Status / Result -----------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = NotFoundError("channel 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "channel 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: channel 7");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kInternal); ++code) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = TimeoutError("slow");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status ReturnIfErrorHelper(bool fail) {
  DS_RETURN_IF_ERROR(fail ? InternalError("boom") : OkStatus());
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(ReturnIfErrorHelper(false).ok());
  EXPECT_EQ(ReturnIfErrorHelper(true).code(), StatusCode::kInternal);
}

Result<int> AssignOrReturnHelper(Result<int> in) {
  DS_ASSIGN_OR_RETURN(int v, std::move(in));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*AssignOrReturnHelper(1), 2);
  EXPECT_EQ(AssignOrReturnHelper(NotFoundError()).status().code(),
            StatusCode::kNotFound);
}

// --- bytes ---------------------------------------------------------------

TEST(BytesTest, WriterReaderRoundTrip) {
  Buffer buf;
  ByteWriter writer(buf);
  writer.U8(0xAB);
  writer.U16(0x1234);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFULL);
  writer.I64(-42);
  writer.F64(3.25);
  writer.Str("hello");

  ByteReader reader(buf);
  EXPECT_EQ(*reader.U8(), 0xAB);
  EXPECT_EQ(*reader.U16(), 0x1234);
  EXPECT_EQ(*reader.U32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.U64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*reader.I64(), -42);
  EXPECT_EQ(*reader.F64(), 3.25);
  EXPECT_EQ(*reader.Str(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, BigEndianLayout) {
  Buffer buf;
  ByteWriter writer(buf);
  writer.U32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(BytesTest, ReaderUnderrunIsError) {
  Buffer buf = {0x01, 0x02};
  ByteReader reader(buf);
  EXPECT_FALSE(reader.U32().ok());
}

TEST(BytesTest, BlobRoundTrip) {
  Buffer buf;
  ByteWriter writer(buf);
  Buffer payload = {1, 2, 3, 4, 5};
  writer.Blob(payload);
  ByteReader reader(buf);
  EXPECT_EQ(*reader.Blob(), payload);
}

TEST(BytesTest, TruncatedBlobIsError) {
  Buffer buf;
  ByteWriter writer(buf);
  writer.U32(100);  // claims 100 bytes, provides none
  ByteReader reader(buf);
  EXPECT_FALSE(reader.Blob().ok());
}

TEST(BytesTest, SharedBufferAliasesWithoutCopy) {
  SharedBuffer a = SharedBuffer::FromString("payload");
  SharedBuffer b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(b.ToString(), "payload");
}

TEST(BytesTest, EmptySharedBuffer) {
  SharedBuffer empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.data(), nullptr);
}

TEST(BytesTest, PatternRoundTrip) {
  Buffer buf(1000);
  FillPattern(buf, 1234);
  EXPECT_TRUE(CheckPattern(buf, 1234));
  EXPECT_FALSE(CheckPattern(buf, 1235));
  buf[500] ^= 0xFF;
  EXPECT_FALSE(CheckPattern(buf, 1234));
}

TEST(BytesTest, PatternDiffersAcrossSeeds) {
  Buffer a(64), b(64);
  FillPattern(a, 1);
  FillPattern(b, 2);
  EXPECT_NE(a, b);
}

// --- ids -------------------------------------------------------------------

TEST(IdsTest, HandleEmbedsOwnerAndSlot) {
  ChannelId id(static_cast<AsId>(3), 17);
  EXPECT_EQ(AsIndex(id.owner()), 3u);
  EXPECT_EQ(id.slot(), 17u);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(ChannelId::FromBits(id.bits()), id);
}

TEST(IdsTest, DefaultHandleInvalid) {
  ChannelId id;
  EXPECT_FALSE(id.valid());
}

TEST(IdsTest, HandlesHashAndCompare) {
  ChannelId a(static_cast<AsId>(1), 2);
  ChannelId b(static_cast<AsId>(1), 3);
  EXPECT_TRUE(a < b);
  EXPECT_NE(std::hash<ChannelId>{}(a), std::hash<ChannelId>{}(b));
}

// --- clock / deadline ---------------------------------------------------------

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, PollExpiresImmediately) {
  Deadline d = Deadline::Poll();
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), Duration::zero());
}

TEST(DeadlineTest, FutureDeadlineCountsDown) {
  Deadline d = Deadline::AfterMillis(50);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), Duration::zero());
  std::this_thread::sleep_for(Millis(70));
  EXPECT_TRUE(d.expired());
}

// --- stats -----------------------------------------------------------------

TEST(StatsTest, LatencyRecorderSummary) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Add(i);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.Min(), 1);
  EXPECT_EQ(rec.Max(), 100);
  EXPECT_DOUBLE_EQ(rec.Mean(), 50.5);
  EXPECT_NEAR(rec.Median(), 50, 1);
  EXPECT_NEAR(rec.Percentile(99), 99, 1);
}

TEST(StatsTest, EmptyRecorderIsSafe) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Mean(), 0.0);
  EXPECT_EQ(rec.Percentile(50), 0);
}

TEST(StatsTest, RateMeterMeasuresRate) {
  RateMeter meter;
  meter.Start();
  meter.TickN(100);
  std::this_thread::sleep_for(Millis(50));
  const double rate = meter.Rate();
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 100.0 / 0.040);  // at least 40ms elapsed
}

TEST(StatsTest, ScopedTimerRecords) {
  LatencyRecorder rec;
  {
    ScopedTimer timer(rec);
    std::this_thread::sleep_for(Millis(10));
  }
  ASSERT_EQ(rec.count(), 1u);
  EXPECT_GE(rec.Min(), 8000);  // at least ~8ms in micros
}

// --- thread pool ----------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesSubmittedWork) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&] { count.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, DrainsQueueOnShutdown) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(Millis(1));
      count.fetch_add(1);
    });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, WaitGroupWaitsForAll) {
  WaitGroup wg;
  std::atomic<int> done{0};
  wg.Add(3);
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      std::this_thread::sleep_for(Millis(10));
      done.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(done.load(), 3);
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace dstampede
