// AddressSpace / Runtime integration: location-transparent STM ops
// between address spaces over CLF, the cross-AS name server, remote
// blocking semantics, remote GC, dynamic join.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/core/runtime.hpp"

namespace dstampede::core {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Runtime::Options opts;
    opts.num_address_spaces = 3;
    opts.gc_interval = Millis(10);
    auto rt = Runtime::Create(opts);
    ASSERT_TRUE(rt.ok()) << rt.status();
    rt_ = std::move(rt).value();
  }

  Buffer Bytes(std::string_view s) { return Buffer(s.begin(), s.end()); }

  std::unique_ptr<Runtime> rt_;
};

TEST_F(RuntimeTest, LocalPutGetWithinOneAs) {
  AddressSpace& as = rt_->as(0);
  auto ch = as.CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = as.Connect(*ch, ConnMode::kOutput);
  auto in = as.Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(as.Put(*out, 1, Bytes("hello")).ok());
  auto item = as.Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(1000));
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->payload.ToString(), "hello");
}

TEST_F(RuntimeTest, RemotePutGetAcrossAddressSpaces) {
  // Channel owned by AS1; producer in AS0; consumer in AS2.
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = rt_->as(0).Connect(*ch, ConnMode::kOutput);
  auto in = rt_->as(2).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(in.ok()) << in.status();

  Buffer payload(50000);
  FillPattern(payload, 3);
  ASSERT_TRUE(rt_->as(0).Put(*out, 7, payload).ok());
  auto item =
      rt_->as(2).Get(*in, GetSpec::Exact(7), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->timestamp, 7);
  EXPECT_TRUE(CheckPattern(item->payload.span(), 3));
}

TEST_F(RuntimeTest, CreateChannelOnRemoteAs) {
  auto ch = rt_->as(0).CreateChannelOn(static_cast<AsId>(2));
  ASSERT_TRUE(ch.ok()) << ch.status();
  EXPECT_EQ(AsIndex(ch->owner()), 2u);
  // The owner AS can find it locally.
  EXPECT_NE(rt_->as(2).FindChannel(ch->bits()), nullptr);
}

TEST_F(RuntimeTest, RemoteBlockingGetWaitsForProducer) {
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = rt_->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());
  std::thread producer([&] {
    std::this_thread::sleep_for(Millis(50));
    auto out = rt_->as(2).Connect(*ch, ConnMode::kOutput);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(rt_->as(2).Put(*out, 1, Bytes("waited")).ok());
  });
  auto item =
      rt_->as(0).Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->payload.ToString(), "waited");
  producer.join();
}

TEST_F(RuntimeTest, RemoteGetTimesOut) {
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = rt_->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());
  auto item = rt_->as(0).Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(100));
  EXPECT_EQ(item.status().code(), StatusCode::kTimeout);
}

TEST_F(RuntimeTest, RemoteConsumeDrivesDistributedGc) {
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = rt_->as(0).Connect(*ch, ConnMode::kOutput);
  auto in_a = rt_->as(0).Connect(*ch, ConnMode::kInput);
  auto in_b = rt_->as(2).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in_a.ok());
  ASSERT_TRUE(in_b.ok());

  ASSERT_TRUE(rt_->as(0).Put(*out, 1, Bytes("x")).ok());
  auto channel = rt_->as(1).FindChannel(ch->bits());
  ASSERT_NE(channel, nullptr);

  ASSERT_TRUE(rt_->as(0).Consume(*in_a, 1).ok());
  EXPECT_EQ(channel->live_items(), 1u) << "remote consumer b still holds it";
  ASSERT_TRUE(rt_->as(2).Consume(*in_b, 1).ok());
  EXPECT_EQ(channel->live_items(), 0u)
      << "all input connections consumed: reclaimed";
}

TEST_F(RuntimeTest, RemoteConsumeUntil) {
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = rt_->as(1).Connect(*ch, ConnMode::kOutput);
  auto in = rt_->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  for (Timestamp ts = 0; ts < 8; ++ts) {
    ASSERT_TRUE(rt_->as(1).Put(*out, ts, Bytes("x")).ok());
  }
  ASSERT_TRUE(rt_->as(0).ConsumeUntil(*in, 5).ok());
  EXPECT_EQ(rt_->as(1).FindChannel(ch->bits())->live_items(), 2u);
}

TEST_F(RuntimeTest, RemoteQueueRoundTrip) {
  auto q = rt_->as(2).CreateQueue();
  ASSERT_TRUE(q.ok());
  auto out = rt_->as(0).Connect(*q, ConnMode::kOutput);
  auto in = rt_->as(1).Connect(*q, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(rt_->as(0).Put(*out, 5, Bytes("job")).ok());
  auto item = rt_->as(1).Get(*in, Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->timestamp, 5);
  EXPECT_EQ(item->payload.ToString(), "job");
  EXPECT_TRUE(rt_->as(1).Consume(*in, 5).ok());
}

TEST_F(RuntimeTest, ConnectToMissingChannelFails) {
  ChannelId bogus(static_cast<AsId>(1), 9999);
  auto conn = rt_->as(0).Connect(bogus, ConnMode::kInput);
  EXPECT_EQ(conn.status().code(), StatusCode::kNotFound);
}

TEST_F(RuntimeTest, ConnectToUnknownPeerFails) {
  ChannelId bogus(static_cast<AsId>(42), 1);
  auto conn = rt_->as(0).Connect(bogus, ConnMode::kInput);
  EXPECT_EQ(conn.status().code(), StatusCode::kNotFound);
}

TEST_F(RuntimeTest, DisconnectRemoteConnectionReleasesGcHold) {
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = rt_->as(1).Connect(*ch, ConnMode::kOutput);
  auto in = rt_->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(rt_->as(1).Put(*out, 1, Bytes("x")).ok());
  ASSERT_TRUE(rt_->as(0).Disconnect(*in).ok());
  // No input connections remain -> item retained (not garbage), but a
  // new consumer can attach and see it.
  auto in2 = rt_->as(2).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in2.ok());
  auto item = rt_->as(2).Get(*in2, GetSpec::Exact(1), Deadline::AfterMillis(5000));
  ASSERT_TRUE(item.ok());
}

TEST_F(RuntimeTest, PutOnInputOnlyConnectionRejected) {
  auto ch = rt_->as(1).CreateChannel();
  auto in = rt_->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(rt_->as(0).Put(*in, 1, Bytes("x")).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(RuntimeTest, RemoteGetOnOutputOnlyConnectionRejected) {
  auto ch = rt_->as(1).CreateChannel();
  auto out = rt_->as(0).Connect(*ch, ConnMode::kOutput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(rt_->as(0).Put(*out, 1, Bytes("x")).ok());
  auto item = rt_->as(0).Get(*out, GetSpec::Exact(1), Deadline::AfterMillis(5000));
  EXPECT_EQ(item.status().code(), StatusCode::kPermissionDenied);
}

// --- name server across address spaces -------------------------------------

TEST_F(RuntimeTest, NsRegisterInOneAsLookupInAnother) {
  auto ch = rt_->as(2).CreateChannel();
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(rt_->as(2)
                  .NsRegister(NsEntry{"camera/0", NsEntry::Kind::kChannel,
                                      ch->bits(), "left eye"})
                  .ok());
  auto entry = rt_->as(1).NsLookup("camera/0", Deadline::AfterMillis(5000));
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry->id_bits, ch->bits());
  EXPECT_EQ(entry->meta, "left eye");

  // And the id is directly connectable from a third AS.
  auto conn = rt_->as(0).Connect(ChannelId::FromBits(entry->id_bits),
                                 ConnMode::kInput);
  EXPECT_TRUE(conn.ok());
}

TEST_F(RuntimeTest, NsBlockingLookupAcrossAs) {
  std::thread registrar([&] {
    std::this_thread::sleep_for(Millis(50));
    ASSERT_TRUE(
        rt_->as(1)
            .NsRegister(NsEntry{"late/name", NsEntry::Kind::kOther, 0, ""})
            .ok());
  });
  auto entry = rt_->as(2).NsLookup("late/name", Deadline::AfterMillis(10000));
  EXPECT_TRUE(entry.ok()) << entry.status();
  registrar.join();
}

TEST_F(RuntimeTest, NsDuplicateAcrossAsRejected) {
  ASSERT_TRUE(
      rt_->as(0).NsRegister(NsEntry{"dup", NsEntry::Kind::kOther, 0, ""}).ok());
  EXPECT_EQ(
      rt_->as(1).NsRegister(NsEntry{"dup", NsEntry::Kind::kOther, 0, ""}).code(),
      StatusCode::kAlreadyExists);
}

TEST_F(RuntimeTest, NsListAcrossAs) {
  ASSERT_TRUE(
      rt_->as(1).NsRegister(NsEntry{"svc/a", NsEntry::Kind::kOther, 0, ""}).ok());
  ASSERT_TRUE(
      rt_->as(2).NsRegister(NsEntry{"svc/b", NsEntry::Kind::kOther, 0, ""}).ok());
  auto list = rt_->as(0).NsList("svc/");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
  ASSERT_TRUE(rt_->as(1).NsUnregister("svc/a").ok());
  EXPECT_EQ(rt_->as(0).NsList("svc/")->size(), 1u);
}

// --- threads, dynamism -------------------------------------------------------

TEST_F(RuntimeTest, SpawnedThreadsRunAndJoin) {
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    rt_->as(0).Spawn("worker", [&] { ran.fetch_add(1); });
  }
  rt_->as(0).JoinThreads();
  EXPECT_EQ(ran.load(), 5);
}

TEST_F(RuntimeTest, DynamicallyAddedAsJoinsTheMesh) {
  auto added = rt_->AddAddressSpace();
  ASSERT_TRUE(added.ok()) << added.status();
  AddressSpace& newcomer = **added;
  EXPECT_EQ(rt_->size(), 4u);

  // The newcomer can use the name server and reach existing channels.
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(rt_->as(1)
                  .NsRegister(NsEntry{"dyn/ch", NsEntry::Kind::kChannel,
                                      ch->bits(), ""})
                  .ok());
  auto entry = newcomer.NsLookup("dyn/ch", Deadline::AfterMillis(5000));
  ASSERT_TRUE(entry.ok());
  auto out = newcomer.Connect(ChannelId::FromBits(entry->id_bits),
                              ConnMode::kOutput);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(newcomer.Put(*out, 1, Bytes("from newcomer")).ok());
}

TEST_F(RuntimeTest, ProducerConsumerPipelineAcrossThreeAs) {
  // The paper's producer/consumer pseudocode (§3), spread over the
  // cluster: producer in AS0, channel in AS1, consumer in AS2.
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  constexpr Timestamp kFrames = 50;

  rt_->as(0).Spawn("producer", [&] {
    auto out = rt_->as(0).Connect(*ch, ConnMode::kOutput);
    ASSERT_TRUE(out.ok());
    for (Timestamp ts = 0; ts < kFrames; ++ts) {
      Buffer item(256);
      FillPattern(item, static_cast<std::uint64_t>(ts));
      ASSERT_TRUE(rt_->as(0).Put(*out, ts, std::move(item)).ok());
    }
  });
  std::atomic<int> received{0};
  rt_->as(2).Spawn("consumer", [&] {
    auto in = rt_->as(2).Connect(*ch, ConnMode::kInput);
    ASSERT_TRUE(in.ok());
    for (Timestamp ts = 0; ts < kFrames; ++ts) {
      auto item =
          rt_->as(2).Get(*in, GetSpec::Exact(ts), Deadline::AfterMillis(30000));
      ASSERT_TRUE(item.ok()) << item.status();
      EXPECT_TRUE(CheckPattern(item->payload.span(),
                               static_cast<std::uint64_t>(ts)));
      ASSERT_TRUE(rt_->as(2).Consume(*in, ts).ok());
      received.fetch_add(1);
    }
  });
  rt_->as(0).JoinThreads();
  rt_->as(2).JoinThreads();
  EXPECT_EQ(received.load(), kFrames);
  // Everything consumed by the only input connection: fully reclaimed.
  EXPECT_EQ(rt_->as(1).FindChannel(ch->bits())->live_items(), 0u);
}

TEST_F(RuntimeTest, OpCountersTrackActivity) {
  AddressSpace& as0 = rt_->as(0);
  AddressSpace& as1 = rt_->as(1);
  auto ch = as1.CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = as0.Connect(*ch, ConnMode::kOutput);
  auto in = as0.Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  const std::uint64_t served_before = as1.stats().requests_served.load();

  ASSERT_TRUE(as0.Put(*out, 1, Bytes("12345")).ok());
  auto item = as0.Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(5000));
  ASSERT_TRUE(item.ok());
  ASSERT_TRUE(as0.Consume(*in, 1).ok());

  const AsStats& stats = as0.stats();
  EXPECT_EQ(stats.attaches.load(), 2u);
  EXPECT_EQ(stats.puts.load(), 1u);
  EXPECT_EQ(stats.gets.load(), 1u);
  EXPECT_EQ(stats.consumes.load(), 1u);
  EXPECT_EQ(stats.bytes_put.load(), 5u);
  EXPECT_EQ(stats.bytes_got.load(), 5u);
  EXPECT_GE(stats.remote_calls.load(), 5u);  // attach x2, put, get, consume
  // The owner AS served the put/get/consume issued after the snapshot.
  EXPECT_GE(as1.stats().requests_served.load(), served_before + 3);
}

TEST_F(RuntimeTest, ShutdownCancelsBlockedRemoteGet) {
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = rt_->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());
  std::thread getter([&] {
    auto item =
        rt_->as(0).Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(30000));
    EXPECT_FALSE(item.ok());
  });
  std::this_thread::sleep_for(Millis(100));
  rt_->Shutdown();
  getter.join();
}

}  // namespace
}  // namespace dstampede::core
