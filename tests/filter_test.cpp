// Selective-attention filters (§6 future work): visibility through the
// get selectors, GC interaction (filtered connections hold no claim on
// hidden items), wire transport of filters, and the client-side API.
#include <gtest/gtest.h>

#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/channel.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::core {
namespace {

SharedBuffer Payload(std::size_t n = 8) { return SharedBuffer(Buffer(n)); }

TEST(ItemFilterTest, DefaultPassesEverything) {
  ItemFilter filter;
  EXPECT_TRUE(filter.IsPassAll());
  EXPECT_TRUE(filter.Matches(0, 0));
  EXPECT_TRUE(filter.Matches(-5, 1 << 20));
}

TEST(ItemFilterTest, StrideAndPhase) {
  ItemFilter filter;
  filter.stride = 3;
  filter.phase = 1;
  EXPECT_FALSE(filter.Matches(0, 0));
  EXPECT_TRUE(filter.Matches(1, 0));
  EXPECT_FALSE(filter.Matches(2, 0));
  EXPECT_TRUE(filter.Matches(4, 0));
  // Negative timestamps use the mathematical modulus.
  EXPECT_TRUE(filter.Matches(-2, 0));
}

TEST(ItemFilterTest, WindowAndSizeBounds) {
  ItemFilter filter;
  filter.ts_min = 10;
  filter.ts_max = 20;
  filter.min_bytes = 100;
  filter.max_bytes = 200;
  EXPECT_FALSE(filter.Matches(9, 150));
  EXPECT_FALSE(filter.Matches(21, 150));
  EXPECT_FALSE(filter.Matches(15, 99));
  EXPECT_FALSE(filter.Matches(15, 201));
  EXPECT_TRUE(filter.Matches(15, 150));
  EXPECT_FALSE(filter.IsPassAll());
}

class FilteredChannelTest : public ::testing::Test {
 protected:
  LocalChannel ch_{ChannelAttr{}};
};

TEST_F(FilteredChannelTest, StrideFilterShapesSelectors) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  ItemFilter every_second;
  every_second.stride = 2;
  every_second.phase = 0;
  ASSERT_TRUE(ch_.SetFilter(conn, every_second).ok());
  for (Timestamp ts = 0; ts < 6; ++ts) {
    ASSERT_TRUE(ch_.Put(ts, Payload(), Deadline::Poll()).ok());
  }
  EXPECT_EQ(ch_.Get(conn, GetSpec::Oldest(), Deadline::Poll())->timestamp, 0);
  EXPECT_EQ(ch_.Get(conn, GetSpec::Newest(), Deadline::Poll())->timestamp, 4);
  EXPECT_EQ(ch_.Get(conn, GetSpec::NextAfter(0), Deadline::Poll())->timestamp,
            2);
}

TEST_F(FilteredChannelTest, ExactGetOfExcludedTimestampRejected) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  ItemFilter odd_only;
  odd_only.stride = 2;
  odd_only.phase = 1;
  ASSERT_TRUE(ch_.SetFilter(conn, odd_only).ok());
  ASSERT_TRUE(ch_.Put(4, Payload(), Deadline::Poll()).ok());
  // Would block forever otherwise: the filter can never show ts=4.
  EXPECT_EQ(
      ch_.Get(conn, GetSpec::Exact(4), Deadline::Infinite()).status().code(),
      StatusCode::kInvalidArgument);
  ASSERT_TRUE(ch_.Put(5, Payload(), Deadline::Poll()).ok());
  EXPECT_TRUE(ch_.Get(conn, GetSpec::Exact(5), Deadline::Poll()).ok());
}

TEST_F(FilteredChannelTest, FilteredConnectionHoldsNoGcClaim) {
  std::uint32_t watcher = ch_.Attach(ConnMode::kInput, "watcher");
  std::uint32_t preview = ch_.Attach(ConnMode::kInput, "preview");
  ItemFilter every_fifth;
  every_fifth.stride = 5;
  ASSERT_TRUE(ch_.SetFilter(preview, every_fifth).ok());

  for (Timestamp ts = 0; ts < 10; ++ts) {
    ASSERT_TRUE(ch_.Put(ts, Payload(), Deadline::Poll()).ok());
  }
  // The full watcher consumes everything; the preview consumed nothing.
  ASSERT_TRUE(ch_.ConsumeUntil(watcher, 9).ok());
  // Only ts 0 and 5 are visible to preview; everything else must be
  // reclaimed despite preview never consuming it.
  EXPECT_EQ(ch_.live_items(), 2u);
  ASSERT_TRUE(ch_.Consume(preview, 0).ok());
  ASSERT_TRUE(ch_.Consume(preview, 5).ok());
  EXPECT_EQ(ch_.live_items(), 0u);
}

TEST_F(FilteredChannelTest, NarrowingFilterReleasesHeldItems) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  std::uint32_t other = ch_.Attach(ConnMode::kInput, "o");
  for (Timestamp ts = 0; ts < 4; ++ts) {
    ASSERT_TRUE(ch_.Put(ts, Payload(), Deadline::Poll()).ok());
  }
  ASSERT_TRUE(ch_.ConsumeUntil(other, 3).ok());
  EXPECT_EQ(ch_.live_items(), 4u) << "conn still holds everything";
  ItemFilter nothing_before_100;
  nothing_before_100.ts_min = 100;
  ASSERT_TRUE(ch_.SetFilter(conn, nothing_before_100).ok());
  EXPECT_EQ(ch_.live_items(), 0u)
      << "installing the filter must drop conn's claim on hidden items";
}

TEST_F(FilteredChannelTest, SizeFilterHidesLargeItems) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  ItemFilter small_only;
  small_only.max_bytes = 100;
  ASSERT_TRUE(ch_.SetFilter(conn, small_only).ok());
  ASSERT_TRUE(ch_.Put(1, Payload(1000), Deadline::Poll()).ok());
  ASSERT_TRUE(ch_.Put(2, Payload(50), Deadline::Poll()).ok());
  EXPECT_EQ(ch_.Get(conn, GetSpec::Oldest(), Deadline::Poll())->timestamp, 2);
}

TEST_F(FilteredChannelTest, InvalidFiltersRejected) {
  std::uint32_t conn = ch_.Attach(ConnMode::kInput, "t");
  ItemFilter bad;
  bad.stride = 0;
  EXPECT_EQ(ch_.SetFilter(conn, bad).code(), StatusCode::kInvalidArgument);
  bad.stride = 4;
  bad.phase = 4;
  EXPECT_EQ(ch_.SetFilter(conn, bad).code(), StatusCode::kInvalidArgument);
  std::uint32_t out = ch_.Attach(ConnMode::kOutput, "o");
  EXPECT_EQ(ch_.SetFilter(out, ItemFilter{}).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(ch_.SetFilter(999, ItemFilter{}).code(), StatusCode::kNotFound);
}

// --- across the wire ---------------------------------------------------------

TEST(FilterWireTest, RemoteConnectionFilterApplies) {
  Runtime::Options opts;
  opts.num_address_spaces = 2;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*rt)->as(1).Connect(*ch, ConnMode::kOutput);
  auto in = (*rt)->as(0).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  ItemFilter every_third;
  every_third.stride = 3;
  ASSERT_TRUE((*rt)->as(0).SetFilter(*in, every_third).ok());
  for (Timestamp ts = 0; ts < 9; ++ts) {
    ASSERT_TRUE((*rt)->as(1).Put(*out, ts, Buffer(16)).ok());
  }
  auto first = (*rt)->as(0).Get(*in, GetSpec::Oldest(),
                                Deadline::AfterMillis(5000));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->timestamp, 0);
  ASSERT_TRUE((*rt)->as(0).Consume(*in, 0).ok());
  auto second = (*rt)->as(0).Get(*in, GetSpec::Oldest(),
                                 Deadline::AfterMillis(5000));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->timestamp, 3);
}

TEST(FilterWireTest, QueueFilterRejected) {
  Runtime::Options opts;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto q = (*rt)->as(0).CreateQueue();
  ASSERT_TRUE(q.ok());
  auto in = (*rt)->as(0).Connect(*q, ConnMode::kInput);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ((*rt)->as(0).SetFilter(*in, ItemFilter{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(FilterClientTest, EndDevicePreviewStream) {
  // An end device subscribes to every 4th frame only; the full-rate
  // consumer never waits on the preview device for GC.
  Runtime::Options opts;
  opts.num_address_spaces = 1;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto listener = client::Listener::Start(**rt);
  ASSERT_TRUE(listener.ok());

  client::CClient::Options copts;
  copts.server = (*listener)->addr();
  copts.name = "preview";
  auto preview = client::CClient::Join(copts);
  ASSERT_TRUE(preview.ok());

  auto ch = (*preview)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*preview)->Connect(*ch, core::ConnMode::kOutput);
  auto in = (*preview)->Connect(*ch, core::ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  ItemFilter every_fourth;
  every_fourth.stride = 4;
  ASSERT_TRUE((*preview)->SetFilter(*in, every_fourth).ok());

  for (Timestamp ts = 0; ts < 8; ++ts) {
    ASSERT_TRUE((*preview)->Put(*out, ts, Buffer(64)).ok());
  }
  auto item = (*preview)->Get(*in, GetSpec::Oldest(),
                              Deadline::AfterMillis(5000));
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->timestamp, 0);
  ASSERT_TRUE((*preview)->Consume(*in, 0).ok());
  item = (*preview)->Get(*in, GetSpec::Oldest(), Deadline::AfterMillis(5000));
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->timestamp, 4);

  (*listener)->Shutdown();
  (*rt)->Shutdown();
}

}  // namespace
}  // namespace dstampede::core
