// Client library + listener + surrogate integration: joining, STM ops
// from an end device, cross-AS routing through the surrogate, GC-notice
// piggybacking, C/Java interop, clean leave vs parked surrogate.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/client/java_client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::client {
namespace {

using core::ConnMode;
using core::GetSpec;
using core::NsEntry;

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok()) << rt.status();
    rt_ = std::move(rt).value();
    auto listener = Listener::Start(*rt_);
    ASSERT_TRUE(listener.ok()) << listener.status();
    listener_ = std::move(listener).value();
  }

  void TearDown() override {
    if (listener_) listener_->Shutdown();
    if (rt_) rt_->Shutdown();
  }

  std::unique_ptr<CClient> JoinC(std::int32_t preferred_as = -1,
                                 const std::string& name = "dev") {
    CClient::Options opts;
    opts.server = listener_->addr();
    opts.name = name;
    opts.preferred_as = preferred_as;
    auto client = CClient::Join(opts);
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  Buffer Bytes(std::string_view s) { return Buffer(s.begin(), s.end()); }

  std::unique_ptr<core::Runtime> rt_;
  std::unique_ptr<Listener> listener_;
};

TEST_F(ClientTest, JoinAssignsSurrogateAndHostAs) {
  auto client = JoinC();
  EXPECT_NE(client->session_id(), 0u);
  EXPECT_LT(AsIndex(client->host_as()), rt_->size());
  EXPECT_EQ(listener_->surrogates_total(), 1u);
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kActive), 1u);
}

TEST_F(ClientTest, PreferredAsHonored) {
  auto client = JoinC(/*preferred_as=*/1);
  EXPECT_EQ(AsIndex(client->host_as()), 1u);
}

TEST_F(ClientTest, RoundRobinAssignment) {
  auto a = JoinC();
  auto b = JoinC();
  EXPECT_NE(AsIndex(a->host_as()), AsIndex(b->host_as()));
}

TEST_F(ClientTest, ClientCreatesChannelInHostAs) {
  auto client = JoinC(/*preferred_as=*/0);
  auto ch = client->CreateChannel();
  ASSERT_TRUE(ch.ok()) << ch.status();
  EXPECT_EQ(AsIndex(ch->owner()), 0u);
  EXPECT_NE(rt_->as(0).FindChannel(ch->bits()), nullptr);
}

TEST_F(ClientTest, PutGetThroughSurrogate) {
  auto client = JoinC();
  auto ch = client->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = client->Connect(*ch, ConnMode::kOutput);
  auto in = client->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  Buffer payload(55000);
  FillPattern(payload, 8);
  ASSERT_TRUE(client->Put(*out, 3, payload).ok());
  auto item = client->Get(*in, GetSpec::Exact(3), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->timestamp, 3);
  EXPECT_TRUE(CheckPattern(item->payload.span(), 8));
}

TEST_F(ClientTest, TwoDevicesShareOneChannelViaNameServer) {
  auto producer = JoinC(-1, "camera");
  auto consumer = JoinC(-1, "display");

  auto ch = producer->CreateChannel();
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(producer
                  ->NsRegister(NsEntry{"shared/video", NsEntry::Kind::kChannel,
                                       ch->bits(), "test stream"})
                  .ok());
  auto entry = consumer->NsLookup("shared/video", Deadline::AfterMillis(5000));
  ASSERT_TRUE(entry.ok()) << entry.status();

  auto out = producer->Connect(*ch, ConnMode::kOutput);
  auto in = consumer->Connect(ChannelId::FromBits(entry->id_bits),
                              ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  ASSERT_TRUE(producer->Put(*out, 1, Bytes("frame-1")).ok());
  auto item =
      consumer->Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->payload.ToString(), "frame-1");
  EXPECT_TRUE(consumer->Consume(*in, 1).ok());
}

TEST_F(ClientTest, CrossAsRoutingThroughSurrogate) {
  // Device hosted on AS0 operates a channel owned by AS1: the surrogate
  // must forward over CLF transparently.
  auto device = JoinC(/*preferred_as=*/0);
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = device->Connect(*ch, ConnMode::kOutput);
  auto in = device->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(device->Put(*out, 9, Bytes("routed")).ok());
  auto item = device->Get(*in, GetSpec::Exact(9), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->payload.ToString(), "routed");
}

TEST_F(ClientTest, BlockingGetAcrossDevices) {
  auto producer = JoinC();
  auto consumer = JoinC();
  auto ch = producer->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = consumer->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());

  std::thread late_producer([&] {
    std::this_thread::sleep_for(Millis(50));
    auto out = producer->Connect(*ch, ConnMode::kOutput);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(producer->Put(*out, 1, Bytes("late")).ok());
  });
  auto item =
      consumer->Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(15000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->payload.ToString(), "late");
  late_producer.join();
}

TEST_F(ClientTest, QueueThroughSurrogate) {
  auto client = JoinC();
  auto q = client->CreateQueue();
  ASSERT_TRUE(q.ok());
  auto out = client->Connect(*q, ConnMode::kOutput);
  auto in = client->Connect(*q, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(client->Put(*out, 1, Bytes("job-a")).ok());
  ASSERT_TRUE(client->Put(*out, 2, Bytes("job-b")).ok());
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(5000))->payload.ToString(),
            "job-a");
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(5000))->payload.ToString(),
            "job-b");
}

TEST_F(ClientTest, GcNoticesPiggybackToInterestedDevice) {
  auto device = JoinC();
  auto ch = device->CreateChannel();
  ASSERT_TRUE(ch.ok());

  std::vector<Timestamp> reclaimed;
  ASSERT_TRUE(device
                  ->SetGcHandler(ch->bits(), /*is_queue=*/false,
                                 [&](const core::GcNotice& notice) {
                                   reclaimed.push_back(notice.timestamp);
                                 })
                  .ok());

  auto out = device->Connect(*ch, ConnMode::kOutput);
  auto in = device->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(device->Put(*out, 1, Bytes("x")).ok());
  ASSERT_TRUE(device->Consume(*in, 1).ok());

  // The notice is generated by the owner AS's GC service and forwarded
  // "at an opportune time": on a later call. Poke with harmless calls.
  for (int i = 0; i < 50 && reclaimed.empty(); ++i) {
    std::this_thread::sleep_for(Millis(10));
    (void)device->NsList("");
  }
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0], 1);
  EXPECT_GE(device->gc_notices_received(), 1u);
}

TEST_F(ClientTest, UninterestedDeviceGetsNoNotices) {
  auto device = JoinC();
  auto ch = device->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = device->Connect(*ch, ConnMode::kOutput);
  auto in = device->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(device->Put(*out, 1, Bytes("x")).ok());
  ASSERT_TRUE(device->Consume(*in, 1).ok());
  std::this_thread::sleep_for(Millis(100));
  (void)device->NsList("");
  EXPECT_EQ(device->gc_notices_received(), 0u);
}

TEST_F(ClientTest, CleanLeaveRetiresSurrogate) {
  auto device = JoinC();
  ASSERT_TRUE(device->Leave().ok());
  for (int i = 0; i < 100 &&
                  listener_->surrogates_in(Surrogate::State::kLeft) == 0;
       ++i) {
    std::this_thread::sleep_for(Millis(10));
  }
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kLeft), 1u);
  // Calls after leave fail locally.
  EXPECT_EQ(device->CreateChannel().status().code(),
            StatusCode::kConnectionClosed);
}

TEST_F(ClientTest, ParkedByAbruptClose) {
  // The paper's §3.3 limitation, reproduced deliberately: an end device
  // that dies without a clean leave leaves its surrogate parked.
  // Open a raw TCP connection, complete the Hello, then slam it shut:
  // the surrogate must park, not crash, and stay countable.
  auto conn = transport::TcpConnection::Connect(listener_->addr());
  ASSERT_TRUE(conn.ok());
  marshal::XdrEncoder enc;
  core::EncodeRequestHeader(enc, static_cast<core::Op>(ClientOp::kHello), 1);
  HelloReq hello;
  hello.name = "abrupt";
  hello.Encode(enc);
  ASSERT_TRUE(conn->SendFrame(enc.Take()).ok());
  Buffer reply;
  ASSERT_TRUE(conn->RecvFrame(reply, Deadline::AfterMillis(5000)).ok());
  conn->Close();  // vanish without Bye

  for (int i = 0; i < 100 &&
                  listener_->surrogates_in(Surrogate::State::kParked) == 0;
       ++i) {
    std::this_thread::sleep_for(Millis(10));
  }
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kParked), 1u);
}

TEST_F(ClientTest, HelloRequiredBeforeAnythingElse) {
  auto conn = transport::TcpConnection::Connect(listener_->addr());
  ASSERT_TRUE(conn.ok());
  marshal::XdrEncoder enc;
  core::EncodeRequestHeader(enc, core::Op::kCreateChannel, 1);
  core::CreateReq{}.Encode(enc);
  ASSERT_TRUE(conn->SendFrame(enc.Take()).ok());
  Buffer reply;
  // The listener drops devices that do not say hello.
  Status s = conn->RecvFrame(reply, Deadline::AfterMillis(3000));
  EXPECT_EQ(s.code(), StatusCode::kConnectionClosed);
}

// --- Java-style client ------------------------------------------------------

TEST_F(ClientTest, JavaClientFullRoundTrip) {
  JavaStyleClient::Options opts;
  opts.server = listener_->addr();
  opts.name = "jdev";
  auto client = JavaStyleClient::Join(opts);
  ASSERT_TRUE(client.ok()) << client.status();
  auto ch = (*client)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*client)->Connect(*ch, ConnMode::kOutput);
  auto in = (*client)->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  Buffer payload(20000);
  FillPattern(payload, 13);
  ASSERT_TRUE((*client)->Put(*out, 1, payload).ok());
  auto item =
      (*client)->Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok());
  EXPECT_TRUE(CheckPattern(item->payload.span(), 13));
}

TEST_F(ClientTest, CAndJavaDevicesInterop) {
  // Language heterogeneity (§3.2.3): a Java producer feeds a C consumer
  // through the same channel abstraction.
  JavaStyleClient::Options jopts;
  jopts.server = listener_->addr();
  jopts.name = "java-camera";
  auto java = JavaStyleClient::Join(jopts);
  ASSERT_TRUE(java.ok());
  auto c = JoinC(-1, "c-display");

  auto ch = (*java)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*java)->Connect(*ch, ConnMode::kOutput);
  auto in = c->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  Buffer payload(4096);
  FillPattern(payload, 21);
  ASSERT_TRUE((*java)->Put(*out, 5, payload).ok());
  auto item = c->Get(*in, GetSpec::Exact(5), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_TRUE(CheckPattern(item->payload.span(), 21));
  EXPECT_TRUE(c->Consume(*in, 5).ok());
}

TEST_F(ClientTest, ManyDevicesConcurrently) {
  constexpr int kDevices = 6;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int d = 0; d < kDevices; ++d) {
    threads.emplace_back([&, d] {
      CClient::Options opts;
      opts.server = listener_->addr();
      opts.name = "dev-" + std::to_string(d);
      auto client = CClient::Join(opts);
      if (!client.ok()) return;
      auto ch = (*client)->CreateChannel();
      if (!ch.ok()) return;
      auto out = (*client)->Connect(*ch, ConnMode::kOutput);
      auto in = (*client)->Connect(*ch, ConnMode::kInput);
      if (!out.ok() || !in.ok()) return;
      for (Timestamp ts = 0; ts < 20; ++ts) {
        Buffer payload(1024);
        FillPattern(payload, static_cast<std::uint64_t>(d * 1000 + ts));
        if (!(*client)->Put(*out, ts, std::move(payload)).ok()) return;
        auto item = (*client)->Get(*in, GetSpec::Exact(ts),
                                   Deadline::AfterMillis(10000));
        if (!item.ok() ||
            !CheckPattern(item->payload.span(),
                          static_cast<std::uint64_t>(d * 1000 + ts))) {
          return;
        }
        if (!(*client)->Consume(*in, ts).ok()) return;
      }
      ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kDevices);
}

// --- session resilience: transparent reconnect & surrogate failover ---

class ResilienceTest : public ::testing::Test {
 protected:
  // Failure detection on (the resilience layer rides on PR 1's CLF
  // machinery); the listener shares one edge fault injector so tests
  // can kill the device<->surrogate TCP link at precise points.
  void Start() {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    opts.clf_max_retransmits = 5;
    opts.peer_keepalive_interval = Millis(50);
    opts.peer_timeout = kPeerTimeout;
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok()) << rt.status();
    rt_ = std::move(rt).value();
    Listener::Options lopts;
    lopts.edge_faults = &edge_faults_;
    auto listener = Listener::Start(*rt_, lopts);
    ASSERT_TRUE(listener.ok()) << listener.status();
    listener_ = std::move(listener).value();
  }

  void TearDown() override {
    if (listener_) listener_->Shutdown();
    if (rt_) rt_->Shutdown();
  }

  std::unique_ptr<CClient> JoinC(std::int32_t preferred_as = -1) {
    CClient::Options opts;
    opts.server = listener_->addr();
    opts.preferred_as = preferred_as;
    auto client = CClient::Join(opts);
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  Buffer Bytes(std::string_view s) { return Buffer(s.begin(), s.end()); }

  static constexpr auto kPeerTimeout = std::chrono::milliseconds(500);

  clf::FaultInjector edge_faults_;
  std::unique_ptr<core::Runtime> rt_;
  std::unique_ptr<Listener> listener_;
};

TEST_F(ResilienceTest, TransparentReconnectIsExactlyOnce) {
  Start();
  auto client = JoinC();
  auto q = client->CreateQueue();
  ASSERT_TRUE(q.ok()) << q.status();
  auto out = client->Connect(*q, ConnMode::kOutput);
  auto in = client->Connect(*q, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(client->Put(*out, 0, Bytes("a")).ok());

  // Link killed before the surrogate executes the put: the replay after
  // reconnect must run it (for the first time) — nothing is lost.
  edge_faults_.ArmConnectionKill(1,
                                 clf::FaultInjector::KillPoint::kBeforeExecute);
  ASSERT_TRUE(client->Put(*out, 1, Bytes("b")).ok());

  // Link killed after the execute but before the reply: the replay must
  // be answered from the surrogate's reply cache — nothing runs twice.
  edge_faults_.ArmConnectionKill(1,
                                 clf::FaultInjector::KillPoint::kAfterExecute);
  ASSERT_TRUE(client->Put(*out, 2, Bytes("c")).ok());

  EXPECT_EQ(client->reconnects(), 2u);
  EXPECT_GE(client->replays(), 2u);
  EXPECT_EQ(edge_faults_.connections_killed(), 2u);
  EXPECT_EQ(listener_->sessions_resumed(), 2u);
  EXPECT_EQ(listener_->sessions_migrated(), 0u);
  EXPECT_EQ(listener_->surrogates_total(), 1u);

  // Every acked put is in the queue exactly once, in order.
  for (std::string_view want : {"a", "b", "c"}) {
    auto item = client->Get(*in, Deadline::AfterMillis(5000));
    ASSERT_TRUE(item.ok()) << item.status();
    EXPECT_EQ(item->payload.ToString(), want);
  }
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(100)).status().code(),
            StatusCode::kTimeout);
}

TEST_F(ResilienceTest, FailoverToLiveAddressSpaceOnHostDeath) {
  Start();
  // Containers owned by AS 0 so they survive AS 1 (the session's host)
  // dying mid-stream.
  auto q = rt_->as(0).CreateQueue();
  ASSERT_TRUE(q.ok()) << q.status();

  auto client = JoinC(/*preferred_as=*/1);
  ASSERT_EQ(AsIndex(client->host_as()), 1u);
  auto out = client->Connect(*q, ConnMode::kOutput);
  auto in = client->Connect(*q, ConnMode::kInput);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(in.ok()) << in.status();

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        client->Put(*out, i, Bytes("item-" + std::to_string(i))).ok());
  }

  rt_->as(1).Shutdown();
  const TimePoint cut = Now();
  for (int i = 5; i < 10; ++i) {
    Status s = client->Put(*out, i, Bytes("item-" + std::to_string(i)));
    ASSERT_TRUE(s.ok()) << "put " << i << ": " << s;
  }
  // The put that spanned the death paid for detection + failover; the
  // documented bound is 2x the peer timeout.
  EXPECT_LT(Now() - cut, 2 * kPeerTimeout);

  EXPECT_EQ(AsIndex(client->host_as()), 0u) << "session must have migrated";
  EXPECT_EQ(client->reconnects(), 1u);
  EXPECT_EQ(listener_->sessions_migrated(), 1u);

  // Zero acked ops lost, zero duplicated, order preserved — across the
  // migration and the replayed in-flight call.
  for (int i = 0; i < 10; ++i) {
    auto item = client->Get(*in, Deadline::AfterMillis(5000));
    ASSERT_TRUE(item.ok()) << item.status();
    EXPECT_EQ(item->payload.ToString(), "item-" + std::to_string(i));
  }
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(100)).status().code(),
            StatusCode::kTimeout);
}

TEST_F(ResilienceTest, ResumeAfterMigrationAdoptsTheLiveSurrogate) {
  Start();
  auto q = rt_->as(0).CreateQueue();
  ASSERT_TRUE(q.ok()) << q.status();
  auto client = JoinC(/*preferred_as=*/1);
  auto out = client->Connect(*q, ConnMode::kOutput);
  auto in = client->Connect(*q, ConnMode::kInput);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(in.ok()) << in.status();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Put(*out, i, Bytes("item-" + std::to_string(i))).ok());
  }

  // Host death migrates the session; the dead-host surrogate becomes a
  // superseded tombstone that stays in the listener's table.
  rt_->as(1).Shutdown();
  for (int i = 3; i < 6; ++i) {
    ASSERT_TRUE(client->Put(*out, i, Bytes("item-" + std::to_string(i))).ok());
  }
  ASSERT_EQ(listener_->sessions_migrated(), 1u);

  // Drop the TCP link to the *migrated* surrogate. The resume must
  // match the live surrogate past the tombstone and adopt it in place;
  // re-migrating through the tombstone would supersede the live
  // surrogate, whose eventual reap (on a live host) destroys the
  // session's registry record and reply cache.
  edge_faults_.ArmConnectionKill(1,
                                 clf::FaultInjector::KillPoint::kBeforeExecute);
  for (int i = 6; i < 9; ++i) {
    ASSERT_TRUE(client->Put(*out, i, Bytes("item-" + std::to_string(i))).ok());
  }
  EXPECT_EQ(listener_->sessions_migrated(), 1u)
      << "resume re-migrated through a superseded tombstone";
  EXPECT_EQ(listener_->sessions_resumed(), 1u);

  // A second drop: the once-resumed session must stay resumable.
  edge_faults_.ArmConnectionKill(1,
                                 clf::FaultInjector::KillPoint::kAfterExecute);
  for (int i = 9; i < 12; ++i) {
    ASSERT_TRUE(client->Put(*out, i, Bytes("item-" + std::to_string(i))).ok());
  }
  EXPECT_EQ(listener_->sessions_migrated(), 1u);
  EXPECT_EQ(listener_->sessions_resumed(), 2u);

  // Exactly-once across the migration and both resumes, in order.
  for (int i = 0; i < 12; ++i) {
    auto item = client->Get(*in, Deadline::AfterMillis(5000));
    ASSERT_TRUE(item.ok()) << item.status();
    EXPECT_EQ(item->payload.ToString(), "item-" + std::to_string(i));
  }
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(100)).status().code(),
            StatusCode::kTimeout);

  // Reconnect churn spawned four surrogate activations but must not
  // accumulate their exited Run threads: the janitor joins them,
  // leaving only the live one.
  const TimePoint reap_give_up = Now() + Millis(5000);
  while (listener_->run_threads() > 1 && Now() < reap_give_up) {
    std::this_thread::sleep_for(Millis(10));
  }
  EXPECT_EQ(listener_->run_threads(), 1u);
}

TEST_F(ResilienceTest, GcNoticesSurviveFailover) {
  Start();
  auto ch = rt_->as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto client = JoinC(/*preferred_as=*/1);

  std::atomic<int> reclaimed{0};
  ASSERT_TRUE(client
                  ->SetGcHandler(ch->bits(), /*is_queue=*/false,
                                 [&](const core::GcNotice&) { ++reclaimed; })
                  .ok());
  auto out = client->Connect(*ch, ConnMode::kOutput);
  auto in = client->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  rt_->as(1).Shutdown();

  // All of these replay/route through the migrated surrogate.
  ASSERT_TRUE(client->Put(*out, 1, Bytes("x")).ok());
  ASSERT_TRUE(client->Consume(*in, 1).ok());
  for (int i = 0; i < 100 && reclaimed.load() == 0; ++i) {
    std::this_thread::sleep_for(Millis(10));
    (void)client->NsList("");
  }
  EXPECT_EQ(reclaimed.load(), 1)
      << "the GC interest (and notice path) must survive migration";
  EXPECT_EQ(listener_->sessions_migrated(), 1u);
}

TEST_F(ResilienceTest, ReconnectGivesUpWhenClusterGone) {
  Start();
  CClient::Options opts;
  opts.server = listener_->addr();
  opts.reconnect.give_up_after = Millis(300);
  auto joined = CClient::Join(opts);
  ASSERT_TRUE(joined.ok()) << joined.status();
  auto client = std::move(joined).value();

  listener_->Shutdown();

  const TimePoint t0 = Now();
  auto s = client->NsList("");
  EXPECT_EQ(s.status().code(), StatusCode::kUnavailable) << s.status();
  EXPECT_GE(Now() - t0, Millis(300)) << "should have kept trying for a while";
  EXPECT_LT(Now() - t0, Millis(5000));
}

TEST_F(ResilienceTest, ResumeOfEndedOrUnknownSessionReportsNotFound) {
  Start();
  auto client = JoinC();
  const std::uint64_t ended_session = client->session_id();
  ASSERT_TRUE(client->Leave().ok());
  for (int i = 0;
       i < 100 && listener_->surrogates_in(Surrogate::State::kLeft) == 0;
       ++i) {
    std::this_thread::sleep_for(Millis(10));
  }

  auto try_resume = [&](std::uint64_t session_id) -> StatusCode {
    auto conn = transport::TcpConnection::Connect(listener_->addr());
    EXPECT_TRUE(conn.ok());
    if (!conn.ok()) return StatusCode::kInternal;
    marshal::XdrEncoder enc;
    core::EncodeRequestHeader(enc, static_cast<core::Op>(ClientOp::kResume),
                              77);
    ResumeReq req;
    req.client_kind = kClientKindC;
    req.session_id = session_id;
    req.last_acked_ticket = 0;
    req.preferred_as = -1;
    req.Encode(enc);
    EXPECT_TRUE(conn->SendFrame(enc.Take()).ok());
    Buffer reply;
    Status s = conn->RecvFrame(reply, Deadline::AfterMillis(5000));
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok()) return StatusCode::kInternal;
    marshal::XdrDecoder dec(reply);
    auto hdr = core::DecodeResponseHeader(dec);
    EXPECT_TRUE(hdr.ok());
    return hdr.ok() ? hdr->status.code() : StatusCode::kInternal;
  };

  // A cleanly-ended session is gone (surrogate kLeft, registry dropped).
  EXPECT_EQ(try_resume(ended_session), StatusCode::kNotFound);
  // A session id that never existed has no registry record either.
  EXPECT_EQ(try_resume(0xdeadbeefULL), StatusCode::kNotFound);
}

TEST_F(ResilienceTest, GcNoticeReentrancySurvivesTheDeadlockDetector) {
  // Regression for the Resume-reply deadlock fixed in the resilience
  // PR: GC notices arriving on a Resume reply are deferred until
  // client.mu is released, so a handler that re-enters the client must
  // not deadlock. Run the whole scenario with the runtime lock-order /
  // blocking-while-locked detector armed: a regression (dispatching
  // under the lock) shows up as a re-entrant-acquisition abort instead
  // of a silent hang.
  sync::SetDeadlockDetectionForTesting(true);
  struct DetectorOff {
    ~DetectorOff() { sync::SetDeadlockDetectionForTesting(false); }
  } detector_off;

  Start();
  auto client = JoinC();
  auto ch = client->CreateChannel();
  ASSERT_TRUE(ch.ok()) << ch.status();

  std::atomic<int> notices{0};
  std::atomic<int> reentered{0};
  CClient* raw = client.get();
  ASSERT_TRUE(client
                  ->SetGcHandler(ch->bits(), /*is_queue=*/false,
                                 [&, raw](const core::GcNotice&) {
                                   ++notices;
                                   // Re-enter the client mid-dispatch.
                                   if (raw->NsList("").ok()) ++reentered;
                                 })
                  .ok());
  auto out = client->Connect(*ch, ConnMode::kOutput);
  auto in = client->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(client->Put(*out, 1, Bytes("x")).ok());
  ASSERT_TRUE(client->Consume(*in, 1).ok());

  // Let the owner's GC sweep deliver the notice to the surrogate's
  // pending set while the client makes no calls, then kill the link:
  // the notice rides back on the Resume reply (the deferred-dispatch
  // path) rather than a normal call's trailer.
  std::this_thread::sleep_for(Millis(100));
  edge_faults_.ArmConnectionKill(1,
                                 clf::FaultInjector::KillPoint::kBeforeExecute);
  for (int i = 0; i < 100 && notices.load() == 0; ++i) {
    (void)client->NsList("");
    std::this_thread::sleep_for(Millis(10));
  }
  EXPECT_GE(notices.load(), 1);
  EXPECT_EQ(reentered.load(), notices.load());
  EXPECT_GE(client->reconnects(), 1u);
}

TEST_F(ResilienceTest, ResumeThroughADifferentListenerAfterListenerDeath) {
  // Two listeners over the same cluster. The session is created through
  // the first; killing that listener must not kill the session — the
  // client's reconnect tries its alternate server and the second
  // listener rehydrates the session from the shared registry, even
  // though it never saw this device before.
  Start();
  auto second = Listener::Start(*rt_, Listener::Options{});
  ASSERT_TRUE(second.ok()) << second.status();

  CClient::Options opts;
  opts.server = listener_->addr();
  opts.alternate_servers = {(*second)->addr()};
  auto joined = CClient::Join(opts);
  ASSERT_TRUE(joined.ok()) << joined.status();
  auto client = std::move(joined).value();

  auto q = client->CreateQueue();
  ASSERT_TRUE(q.ok()) << q.status();
  auto out = client->Connect(*q, ConnMode::kOutput);
  auto in = client->Connect(*q, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Put(*out, i, Bytes("item-" + std::to_string(i))).ok());
  }

  // Kill the listener that owns the session's surrogate. The cluster
  // (every address space) stays alive — only the front door dies.
  listener_->Shutdown();

  for (int i = 5; i < 10; ++i) {
    Status s = client->Put(*out, i, Bytes("item-" + std::to_string(i)));
    ASSERT_TRUE(s.ok()) << "put " << i << " after listener death: " << s;
  }
  EXPECT_GE(client->reconnects(), 1u);
  EXPECT_EQ((*second)->sessions_migrated(), 1u)
      << "the second listener must have rehydrated the session";

  // Exactly-once, in order, across the listener failover.
  for (int i = 0; i < 10; ++i) {
    auto item = client->Get(*in, Deadline::AfterMillis(5000));
    ASSERT_TRUE(item.ok()) << item.status();
    EXPECT_EQ(item->payload.ToString(), "item-" + std::to_string(i));
  }
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(100)).status().code(),
            StatusCode::kTimeout);
  (*second)->Shutdown();
}

TEST_F(ResilienceTest, ListenerAdvertisesItselfInNameServer) {
  Start();
  auto client = JoinC();
  auto entries = client->NsList("sys/listener/");
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].id_bits, listener_->addr().port);
  // The full advertised address travels in the meta field, so failover
  // candidates need not assume loopback.
  auto advertised = transport::SockAddr::FromString((*entries)[0].meta);
  ASSERT_TRUE(advertised.ok()) << advertised.status();
  EXPECT_EQ(*advertised, listener_->addr());
}

}  // namespace
}  // namespace dstampede::client
