// Client library + listener + surrogate integration: joining, STM ops
// from an end device, cross-AS routing through the surrogate, GC-notice
// piggybacking, C/Java interop, clean leave vs parked surrogate.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/client/java_client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::client {
namespace {

using core::ConnMode;
using core::GetSpec;
using core::NsEntry;

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok()) << rt.status();
    rt_ = std::move(rt).value();
    auto listener = Listener::Start(*rt_);
    ASSERT_TRUE(listener.ok()) << listener.status();
    listener_ = std::move(listener).value();
  }

  void TearDown() override {
    if (listener_) listener_->Shutdown();
    if (rt_) rt_->Shutdown();
  }

  std::unique_ptr<CClient> JoinC(std::int32_t preferred_as = -1,
                                 const std::string& name = "dev") {
    CClient::Options opts;
    opts.server = listener_->addr();
    opts.name = name;
    opts.preferred_as = preferred_as;
    auto client = CClient::Join(opts);
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  Buffer Bytes(std::string_view s) { return Buffer(s.begin(), s.end()); }

  std::unique_ptr<core::Runtime> rt_;
  std::unique_ptr<Listener> listener_;
};

TEST_F(ClientTest, JoinAssignsSurrogateAndHostAs) {
  auto client = JoinC();
  EXPECT_NE(client->session_id(), 0u);
  EXPECT_LT(AsIndex(client->host_as()), rt_->size());
  EXPECT_EQ(listener_->surrogates_total(), 1u);
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kActive), 1u);
}

TEST_F(ClientTest, PreferredAsHonored) {
  auto client = JoinC(/*preferred_as=*/1);
  EXPECT_EQ(AsIndex(client->host_as()), 1u);
}

TEST_F(ClientTest, RoundRobinAssignment) {
  auto a = JoinC();
  auto b = JoinC();
  EXPECT_NE(AsIndex(a->host_as()), AsIndex(b->host_as()));
}

TEST_F(ClientTest, ClientCreatesChannelInHostAs) {
  auto client = JoinC(/*preferred_as=*/0);
  auto ch = client->CreateChannel();
  ASSERT_TRUE(ch.ok()) << ch.status();
  EXPECT_EQ(AsIndex(ch->owner()), 0u);
  EXPECT_NE(rt_->as(0).FindChannel(ch->bits()), nullptr);
}

TEST_F(ClientTest, PutGetThroughSurrogate) {
  auto client = JoinC();
  auto ch = client->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = client->Connect(*ch, ConnMode::kOutput);
  auto in = client->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  Buffer payload(55000);
  FillPattern(payload, 8);
  ASSERT_TRUE(client->Put(*out, 3, payload).ok());
  auto item = client->Get(*in, GetSpec::Exact(3), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->timestamp, 3);
  EXPECT_TRUE(CheckPattern(item->payload.span(), 8));
}

TEST_F(ClientTest, TwoDevicesShareOneChannelViaNameServer) {
  auto producer = JoinC(-1, "camera");
  auto consumer = JoinC(-1, "display");

  auto ch = producer->CreateChannel();
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(producer
                  ->NsRegister(NsEntry{"shared/video", NsEntry::Kind::kChannel,
                                       ch->bits(), "test stream"})
                  .ok());
  auto entry = consumer->NsLookup("shared/video", Deadline::AfterMillis(5000));
  ASSERT_TRUE(entry.ok()) << entry.status();

  auto out = producer->Connect(*ch, ConnMode::kOutput);
  auto in = consumer->Connect(ChannelId::FromBits(entry->id_bits),
                              ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  ASSERT_TRUE(producer->Put(*out, 1, Bytes("frame-1")).ok());
  auto item =
      consumer->Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->payload.ToString(), "frame-1");
  EXPECT_TRUE(consumer->Consume(*in, 1).ok());
}

TEST_F(ClientTest, CrossAsRoutingThroughSurrogate) {
  // Device hosted on AS0 operates a channel owned by AS1: the surrogate
  // must forward over CLF transparently.
  auto device = JoinC(/*preferred_as=*/0);
  auto ch = rt_->as(1).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = device->Connect(*ch, ConnMode::kOutput);
  auto in = device->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(device->Put(*out, 9, Bytes("routed")).ok());
  auto item = device->Get(*in, GetSpec::Exact(9), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->payload.ToString(), "routed");
}

TEST_F(ClientTest, BlockingGetAcrossDevices) {
  auto producer = JoinC();
  auto consumer = JoinC();
  auto ch = producer->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto in = consumer->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());

  std::thread late_producer([&] {
    std::this_thread::sleep_for(Millis(50));
    auto out = producer->Connect(*ch, ConnMode::kOutput);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(producer->Put(*out, 1, Bytes("late")).ok());
  });
  auto item =
      consumer->Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(15000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->payload.ToString(), "late");
  late_producer.join();
}

TEST_F(ClientTest, QueueThroughSurrogate) {
  auto client = JoinC();
  auto q = client->CreateQueue();
  ASSERT_TRUE(q.ok());
  auto out = client->Connect(*q, ConnMode::kOutput);
  auto in = client->Connect(*q, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(client->Put(*out, 1, Bytes("job-a")).ok());
  ASSERT_TRUE(client->Put(*out, 2, Bytes("job-b")).ok());
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(5000))->payload.ToString(),
            "job-a");
  EXPECT_EQ(client->Get(*in, Deadline::AfterMillis(5000))->payload.ToString(),
            "job-b");
}

TEST_F(ClientTest, GcNoticesPiggybackToInterestedDevice) {
  auto device = JoinC();
  auto ch = device->CreateChannel();
  ASSERT_TRUE(ch.ok());

  std::vector<Timestamp> reclaimed;
  ASSERT_TRUE(device
                  ->SetGcHandler(ch->bits(), /*is_queue=*/false,
                                 [&](const core::GcNotice& notice) {
                                   reclaimed.push_back(notice.timestamp);
                                 })
                  .ok());

  auto out = device->Connect(*ch, ConnMode::kOutput);
  auto in = device->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(device->Put(*out, 1, Bytes("x")).ok());
  ASSERT_TRUE(device->Consume(*in, 1).ok());

  // The notice is generated by the owner AS's GC service and forwarded
  // "at an opportune time": on a later call. Poke with harmless calls.
  for (int i = 0; i < 50 && reclaimed.empty(); ++i) {
    std::this_thread::sleep_for(Millis(10));
    (void)device->NsList("");
  }
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0], 1);
  EXPECT_GE(device->gc_notices_received(), 1u);
}

TEST_F(ClientTest, UninterestedDeviceGetsNoNotices) {
  auto device = JoinC();
  auto ch = device->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = device->Connect(*ch, ConnMode::kOutput);
  auto in = device->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(device->Put(*out, 1, Bytes("x")).ok());
  ASSERT_TRUE(device->Consume(*in, 1).ok());
  std::this_thread::sleep_for(Millis(100));
  (void)device->NsList("");
  EXPECT_EQ(device->gc_notices_received(), 0u);
}

TEST_F(ClientTest, CleanLeaveRetiresSurrogate) {
  auto device = JoinC();
  ASSERT_TRUE(device->Leave().ok());
  for (int i = 0; i < 100 &&
                  listener_->surrogates_in(Surrogate::State::kLeft) == 0;
       ++i) {
    std::this_thread::sleep_for(Millis(10));
  }
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kLeft), 1u);
  // Calls after leave fail locally.
  EXPECT_EQ(device->CreateChannel().status().code(),
            StatusCode::kConnectionClosed);
}

TEST_F(ClientTest, ParkedByAbruptClose) {
  // The paper's §3.3 limitation, reproduced deliberately: an end device
  // that dies without a clean leave leaves its surrogate parked.
  // Open a raw TCP connection, complete the Hello, then slam it shut:
  // the surrogate must park, not crash, and stay countable.
  auto conn = transport::TcpConnection::Connect(listener_->addr());
  ASSERT_TRUE(conn.ok());
  marshal::XdrEncoder enc;
  core::EncodeRequestHeader(enc, static_cast<core::Op>(ClientOp::kHello), 1);
  HelloReq hello;
  hello.name = "abrupt";
  hello.Encode(enc);
  ASSERT_TRUE(conn->SendFrame(enc.Take()).ok());
  Buffer reply;
  ASSERT_TRUE(conn->RecvFrame(reply, Deadline::AfterMillis(5000)).ok());
  conn->Close();  // vanish without Bye

  for (int i = 0; i < 100 &&
                  listener_->surrogates_in(Surrogate::State::kParked) == 0;
       ++i) {
    std::this_thread::sleep_for(Millis(10));
  }
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kParked), 1u);
}

TEST_F(ClientTest, HelloRequiredBeforeAnythingElse) {
  auto conn = transport::TcpConnection::Connect(listener_->addr());
  ASSERT_TRUE(conn.ok());
  marshal::XdrEncoder enc;
  core::EncodeRequestHeader(enc, core::Op::kCreateChannel, 1);
  core::CreateReq{}.Encode(enc);
  ASSERT_TRUE(conn->SendFrame(enc.Take()).ok());
  Buffer reply;
  // The listener drops devices that do not say hello.
  Status s = conn->RecvFrame(reply, Deadline::AfterMillis(3000));
  EXPECT_EQ(s.code(), StatusCode::kConnectionClosed);
}

// --- Java-style client ------------------------------------------------------

TEST_F(ClientTest, JavaClientFullRoundTrip) {
  JavaStyleClient::Options opts;
  opts.server = listener_->addr();
  opts.name = "jdev";
  auto client = JavaStyleClient::Join(opts);
  ASSERT_TRUE(client.ok()) << client.status();
  auto ch = (*client)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*client)->Connect(*ch, ConnMode::kOutput);
  auto in = (*client)->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());
  Buffer payload(20000);
  FillPattern(payload, 13);
  ASSERT_TRUE((*client)->Put(*out, 1, payload).ok());
  auto item =
      (*client)->Get(*in, GetSpec::Exact(1), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok());
  EXPECT_TRUE(CheckPattern(item->payload.span(), 13));
}

TEST_F(ClientTest, CAndJavaDevicesInterop) {
  // Language heterogeneity (§3.2.3): a Java producer feeds a C consumer
  // through the same channel abstraction.
  JavaStyleClient::Options jopts;
  jopts.server = listener_->addr();
  jopts.name = "java-camera";
  auto java = JavaStyleClient::Join(jopts);
  ASSERT_TRUE(java.ok());
  auto c = JoinC(-1, "c-display");

  auto ch = (*java)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = (*java)->Connect(*ch, ConnMode::kOutput);
  auto in = c->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(in.ok());

  Buffer payload(4096);
  FillPattern(payload, 21);
  ASSERT_TRUE((*java)->Put(*out, 5, payload).ok());
  auto item = c->Get(*in, GetSpec::Exact(5), Deadline::AfterMillis(10000));
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_TRUE(CheckPattern(item->payload.span(), 21));
  EXPECT_TRUE(c->Consume(*in, 5).ok());
}

TEST_F(ClientTest, ManyDevicesConcurrently) {
  constexpr int kDevices = 6;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int d = 0; d < kDevices; ++d) {
    threads.emplace_back([&, d] {
      CClient::Options opts;
      opts.server = listener_->addr();
      opts.name = "dev-" + std::to_string(d);
      auto client = CClient::Join(opts);
      if (!client.ok()) return;
      auto ch = (*client)->CreateChannel();
      if (!ch.ok()) return;
      auto out = (*client)->Connect(*ch, ConnMode::kOutput);
      auto in = (*client)->Connect(*ch, ConnMode::kInput);
      if (!out.ok() || !in.ok()) return;
      for (Timestamp ts = 0; ts < 20; ++ts) {
        Buffer payload(1024);
        FillPattern(payload, static_cast<std::uint64_t>(d * 1000 + ts));
        if (!(*client)->Put(*out, ts, std::move(payload)).ok()) return;
        auto item = (*client)->Get(*in, GetSpec::Exact(ts),
                                   Deadline::AfterMillis(10000));
        if (!item.ok() ||
            !CheckPattern(item->payload.span(),
                          static_cast<std::uint64_t>(d * 1000 + ts))) {
          return;
        }
        if (!(*client)->Consume(*in, ts).ok()) return;
      }
      ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kDevices);
}

}  // namespace
}  // namespace dstampede::client
