// Property-based tests over randomized schedules (seeded, reproducible):
//
//  * Channel GC safety — an item is never reclaimed while some attached
//    input connection has not consumed it — and liveness — once all
//    have, it is reclaimed.
//  * Queue exactly-once delivery under racing workers with random
//    consume/detach behaviour.
//  * Space-time memory coherence: random put/get interleavings across
//    address spaces always see the exact payload that was put.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <thread>

#include "dstampede/core/channel.hpp"
#include "dstampede/core/queue.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::core {
namespace {

SharedBuffer Payload(Timestamp ts) {
  Buffer b(32);
  FillPattern(b, static_cast<std::uint64_t>(ts));
  return SharedBuffer(std::move(b));
}

// --- channel GC properties under random schedules ----------------------------

class ChannelGcProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChannelGcProperty, SafetyAndLivenessUnderRandomSchedules) {
  std::mt19937_64 rng(GetParam());
  LocalChannel ch{ChannelAttr{}};

  constexpr int kConns = 4;
  constexpr Timestamp kItems = 40;
  std::vector<std::uint32_t> conns;
  for (int c = 0; c < kConns; ++c) {
    conns.push_back(ch.Attach(ConnMode::kInput, "c" + std::to_string(c)));
  }
  // Model of truth: which (conn, ts) pairs have been consumed.
  std::vector<std::set<Timestamp>> consumed(kConns);

  for (Timestamp ts = 0; ts < kItems; ++ts) {
    ASSERT_TRUE(ch.Put(ts, Payload(ts), Deadline::Poll()).ok());
  }

  // Random consume schedule, one op at a time, checking the safety
  // invariant after every operation.
  std::vector<std::pair<int, Timestamp>> ops;
  for (int c = 0; c < kConns; ++c) {
    for (Timestamp ts = 0; ts < kItems; ++ts) ops.emplace_back(c, ts);
  }
  std::shuffle(ops.begin(), ops.end(), rng);

  for (auto [c, ts] : ops) {
    ASSERT_TRUE(ch.Consume(conns[c], ts).ok());
    consumed[c].insert(ts);

    // Safety: every live item must have at least one non-consumer.
    // Equivalently: items where ALL connections consumed must be gone.
    std::size_t fully_consumed = 0;
    for (Timestamp t = 0; t < kItems; ++t) {
      bool all = true;
      for (int cc = 0; cc < kConns; ++cc) {
        if (consumed[cc].count(t) == 0) {
          all = false;
          break;
        }
      }
      if (all) ++fully_consumed;
    }
    // Liveness (inline reclaim): live = total - fully consumed.
    EXPECT_EQ(ch.live_items(), static_cast<std::size_t>(kItems) - fully_consumed);
  }
  EXPECT_EQ(ch.live_items(), 0u);
  EXPECT_EQ(ch.total_reclaimed(), static_cast<std::uint64_t>(kItems));
}

TEST_P(ChannelGcProperty, DetachActsAsConsumeAllUnderRandomSchedules) {
  std::mt19937_64 rng(GetParam() * 977 + 1);
  LocalChannel ch{ChannelAttr{}};
  constexpr int kConns = 3;
  constexpr Timestamp kItems = 20;
  std::vector<std::uint32_t> conns;
  for (int c = 0; c < kConns; ++c) {
    conns.push_back(ch.Attach(ConnMode::kInput, "c"));
  }
  for (Timestamp ts = 0; ts < kItems; ++ts) {
    ASSERT_TRUE(ch.Put(ts, Payload(ts), Deadline::Poll()).ok());
  }
  // The survivor consumes a random prefix; all others consume random
  // prefixes and then detach. Once they are gone, the live set must be
  // exactly the items the survivor has not consumed.
  const Timestamp survivor_upto = static_cast<Timestamp>(rng() % kItems);
  ASSERT_TRUE(ch.ConsumeUntil(conns[0], survivor_upto).ok());
  for (int c = 1; c < kConns; ++c) {
    const Timestamp upto = static_cast<Timestamp>(rng() % (kItems + 1)) - 1;
    if (upto >= 0) ASSERT_TRUE(ch.ConsumeUntil(conns[c], upto).ok());
    ASSERT_TRUE(ch.Detach(conns[c]).ok());
  }
  EXPECT_EQ(ch.live_items(),
            static_cast<std::size_t>(kItems - 1 - survivor_upto));
  // Detaching the survivor leaves no input connections; the remainder
  // is retained for consumers that may join later (no-input rule).
  ASSERT_TRUE(ch.Detach(conns[0]).ok());
  EXPECT_EQ(ch.live_items(),
            static_cast<std::size_t>(kItems - 1 - survivor_upto));
  EXPECT_EQ(ch.total_reclaimed(),
            static_cast<std::uint64_t>(survivor_upto + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelGcProperty, ::testing::Range(0u, 8u));

// --- concurrent queue exactly-once property ------------------------------------

class QueueRaceProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QueueRaceProperty, ExactlyOnceUnderRacingWorkersAndChurn) {
  std::mt19937_64 seed_rng(GetParam());
  LocalQueue q{QueueAttr{}};
  constexpr int kItems = 300;
  constexpr int kWorkers = 4;

  std::mutex mu;
  std::multiset<Timestamp> delivered;

  std::thread producer([&] {
    std::uint32_t conn = q.Attach(ConnMode::kOutput, "p");
    (void)conn;
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.Put(i, Payload(i), Deadline::Infinite()).ok());
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w, seed = seed_rng() + w] {
      std::mt19937_64 rng(seed);
      std::uint32_t conn = q.Attach(ConnMode::kInput, "w");
      int since_reattach = 0;
      for (;;) {
        auto item = q.Get(conn, Deadline::AfterMillis(300));
        if (!item.ok()) break;  // drained
        {
          std::lock_guard<std::mutex> lock(mu);
          delivered.insert(item->timestamp);
        }
        ASSERT_TRUE(q.Consume(conn, item->timestamp).ok());
        // Churn: occasionally detach and re-attach (worker restart).
        if (++since_reattach > 20 && rng() % 8 == 0) {
          ASSERT_TRUE(q.Detach(conn).ok());
          conn = q.Attach(ConnMode::kInput, "w-re");
          since_reattach = 0;
        }
      }
      (void)w;
    });
  }
  producer.join();
  for (auto& t : workers) t.join();

  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(delivered.count(i), 1u) << "item " << i << " not exactly-once";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueRaceProperty, ::testing::Range(0u, 6u));

// --- distributed coherence property ----------------------------------------------

class StmCoherenceProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StmCoherenceProperty, RandomDistributedPutGetAlwaysCoherent) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  Runtime::Options opts;
  opts.num_address_spaces = 3;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());

  // A channel on a random AS; producers and consumers on random ASes.
  const std::size_t owner = rng() % 3;
  auto ch = (*rt)->as(owner).CreateChannel();
  ASSERT_TRUE(ch.ok());

  constexpr Timestamp kItems = 30;
  std::vector<Timestamp> order(kItems);
  for (Timestamp i = 0; i < kItems; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);

  // Put from random ASes in shuffled timestamp order.
  for (Timestamp ts : order) {
    AddressSpace& as = (*rt)->as(rng() % 3);
    auto out = as.Connect(*ch, ConnMode::kOutput);
    ASSERT_TRUE(out.ok());
    Buffer payload(128 + static_cast<std::size_t>(ts));
    FillPattern(payload, static_cast<std::uint64_t>(ts) * 91);
    ASSERT_TRUE(as.Put(*out, ts, std::move(payload)).ok());
    ASSERT_TRUE(as.Disconnect(*out).ok());
  }

  // Get from random ASes in a different shuffled order; payloads must
  // match exactly (space-time memory: random access by timestamp).
  std::shuffle(order.begin(), order.end(), rng);
  AddressSpace& reader = (*rt)->as(rng() % 3);
  auto in = reader.Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(in.ok());
  for (Timestamp ts : order) {
    auto item = reader.Get(*in, GetSpec::Exact(ts), Deadline::AfterMillis(10000));
    ASSERT_TRUE(item.ok()) << item.status();
    EXPECT_EQ(item->payload.size(), 128u + static_cast<std::size_t>(ts));
    EXPECT_TRUE(
        CheckPattern(item->payload.span(), static_cast<std::uint64_t>(ts) * 91));
    ASSERT_TRUE(reader.Consume(*in, ts).ok());
  }
  EXPECT_EQ((*rt)->as(owner).FindChannel(ch->bits())->live_items(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StmCoherenceProperty, ::testing::Range(0u, 5u));

}  // namespace
}  // namespace dstampede::core
