// Wire protocol: encode/decode round trips for every request type,
// response envelopes, deadline mapping, and robustness fuzzing —
// truncated or corrupted frames must come back as status errors, never
// crashes or hangs (a hostile or buggy peer cannot take down an
// address space).
#include <gtest/gtest.h>

#include <random>

#include "dstampede/core/runtime.hpp"
#include "dstampede/core/wire.hpp"

namespace dstampede::core {
namespace {

TEST(WireTest, RequestHeaderRoundTrip) {
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kPut, 0xDEADBEEFCAFEULL);
  marshal::XdrDecoder dec(enc.buffer());
  auto hdr = DecodeRequestHeader(dec);
  ASSERT_TRUE(hdr.ok());
  EXPECT_EQ(hdr->op, Op::kPut);
  EXPECT_EQ(hdr->request_id, 0xDEADBEEFCAFEULL);
}

TEST(WireTest, ResponseHeaderCarriesStatus) {
  marshal::XdrEncoder enc;
  EncodeResponseHeader(enc, 77, TimeoutError("too slow"));
  marshal::XdrDecoder dec(enc.buffer());
  auto hdr = DecodeResponseHeader(dec);
  ASSERT_TRUE(hdr.ok());
  EXPECT_EQ(hdr->request_id, 77u);
  EXPECT_EQ(hdr->status.code(), StatusCode::kTimeout);
  EXPECT_EQ(hdr->status.message(), "too slow");
}

TEST(WireTest, NonReplyFrameRejectedAsResponse) {
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kGet, 1);
  marshal::XdrDecoder dec(enc.buffer());
  EXPECT_FALSE(DecodeResponseHeader(dec).ok());
}

TEST(WireTest, PutReqRoundTrip) {
  PutReq req;
  req.container_bits = 0x12345678ABCDEF00ULL;
  req.is_queue = true;
  req.mode = ConnMode::kInputOutput;
  req.slot = 99;
  req.ts = -5;
  req.deadline_ms = 1234;
  req.payload = {9, 8, 7};
  marshal::XdrEncoder enc;
  req.Encode(enc);
  marshal::XdrDecoder dec(enc.buffer());
  auto decoded = PutReq::Decode(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->container_bits, req.container_bits);
  EXPECT_TRUE(decoded->is_queue);
  EXPECT_EQ(decoded->mode, ConnMode::kInputOutput);
  EXPECT_EQ(decoded->slot, 99u);
  EXPECT_EQ(decoded->ts, -5);
  EXPECT_EQ(decoded->deadline_ms, 1234);
  EXPECT_EQ(decoded->payload, req.payload);
}

TEST(WireTest, GetReqRoundTrip) {
  GetReq req;
  req.container_bits = 42;
  req.mode = ConnMode::kInput;
  req.slot = 3;
  req.spec = GetSpec::NextAfter(17);
  req.deadline_ms = kDeadlineInfinite;
  marshal::XdrEncoder enc;
  req.Encode(enc);
  marshal::XdrDecoder dec(enc.buffer());
  auto decoded = GetReq::Decode(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->spec.kind, GetSpec::Kind::kNextAfter);
  EXPECT_EQ(decoded->spec.ts, 17);
  EXPECT_EQ(decoded->deadline_ms, kDeadlineInfinite);
}

TEST(WireTest, AttachReqRejectsBadMode) {
  marshal::XdrEncoder enc;
  enc.PutU64(1);
  enc.PutBool(false);
  enc.PutU32(99);  // invalid ConnMode
  enc.PutString("x");
  marshal::XdrDecoder dec(enc.buffer());
  EXPECT_FALSE(AttachReq::Decode(dec).ok());
}

TEST(WireTest, SetFilterReqRoundTrip) {
  SetFilterReq req;
  req.container_bits = 5;
  req.slot = 2;
  req.filter.stride = 4;
  req.filter.phase = 1;
  req.filter.ts_min = -10;
  req.filter.ts_max = 10;
  req.filter.min_bytes = 16;
  req.filter.max_bytes = 1024;
  marshal::XdrEncoder enc;
  req.Encode(enc);
  marshal::XdrDecoder dec(enc.buffer());
  auto decoded = SetFilterReq::Decode(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->filter.stride, 4);
  EXPECT_EQ(decoded->filter.phase, 1);
  EXPECT_EQ(decoded->filter.ts_min, -10);
  EXPECT_EQ(decoded->filter.max_bytes, 1024u);
}

TEST(WireTest, DeadlineMapping) {
  EXPECT_EQ(EncodeDeadline(Deadline::Infinite()), kDeadlineInfinite);
  EXPECT_EQ(EncodeDeadline(Deadline::Poll()), 0);
  const std::int64_t ms = EncodeDeadline(Deadline::AfterMillis(5000));
  EXPECT_GT(ms, 4000);
  EXPECT_LE(ms, 5000);
  EXPECT_TRUE(DecodeDeadline(kDeadlineInfinite).infinite());
  EXPECT_TRUE(DecodeDeadline(0).expired());
  EXPECT_FALSE(DecodeDeadline(10000).expired());
}

TEST(WireTest, GcNoticeRoundTrip) {
  GcNotice notice{0xABCDEF, true, -42, 190 * 1024};
  marshal::XdrEncoder enc;
  EncodeGcNotice(enc, notice);
  marshal::XdrDecoder dec(enc.buffer());
  auto decoded = DecodeGcNotice(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->container_bits, notice.container_bits);
  EXPECT_TRUE(decoded->is_queue);
  EXPECT_EQ(decoded->timestamp, -42);
  EXPECT_EQ(decoded->payload_size, notice.payload_size);
}

// --- fuzzing the request executor ------------------------------------------
//
// ExecuteWireRequest is the surface a surrogate exposes to whatever an
// end device sends. Feed it truncations, bit flips and random bytes:
// the contract is "status reply or empty buffer", never a crash.

class WireFuzzTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WireFuzzTest, TruncatedAndCorruptedRequestsAreHandled) {
  std::mt19937_64 rng(GetParam());
  Runtime::Options opts;
  opts.num_address_spaces = 1;
  auto rt = Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  AddressSpace& as = (*rt)->as(0);
  auto ch = as.CreateChannel();
  ASSERT_TRUE(ch.ok());

  // A valid put request to mutate.
  PutReq req;
  req.container_bits = ch->bits();
  req.mode = ConnMode::kOutput;
  req.ts = 1;
  req.deadline_ms = 0;
  req.payload = Buffer(64, 0x5A);
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kPut, 1);
  req.Encode(enc);
  const Buffer valid = enc.Take();

  // A mutated frame can legitimately decode into a *blocking* op (a
  // get or a blocking name lookup) with an arbitrary deadline; those
  // semantics are tested elsewhere, so the fuzz skips executing them —
  // it targets decode robustness, which must never crash or mis-frame.
  auto execute_checked = [&](const Buffer& frame) {
    marshal::XdrDecoder peek(frame);
    auto hdr = DecodeRequestHeader(peek);
    if (hdr.ok() &&
        (hdr->op == Op::kGet || hdr->op == Op::kNsLookup)) {
      return;
    }
    Buffer reply = as.ExecuteWireRequest(frame);
    if (!reply.empty()) {
      marshal::XdrDecoder dec(reply);
      EXPECT_TRUE(DecodeResponseHeader(dec).ok());
    }
  };

  // Every truncation length.
  for (std::size_t len = 0; len <= valid.size(); ++len) {
    execute_checked(Buffer(valid.begin(), valid.begin() + static_cast<long>(len)));
  }
  // Random bit flips.
  for (int round = 0; round < 200; ++round) {
    Buffer mutated = valid;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    execute_checked(mutated);
  }
  // Pure noise.
  for (int round = 0; round < 100; ++round) {
    Buffer noise(rng() % 256);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    execute_checked(noise);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Range(0u, 5u));

}  // namespace
}  // namespace dstampede::core
