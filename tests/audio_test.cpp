// Audio subsystem: deterministic tone sources, chunk encoding,
// saturating mixer math, end-to-end mixed-stream verification over the
// runtime, and audio/video correlation.
#include <gtest/gtest.h>

#include "dstampede/app/audio.hpp"
#include "dstampede/app/correlator.hpp"
#include "dstampede/app/image.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::app {
namespace {

const AudioFormat kFormat{};

TEST(ToneSourceTest, ChunksAreDeterministic) {
  ToneSource mic(3, kFormat);
  EXPECT_EQ(mic.Chunk(7), mic.Chunk(7));
  EXPECT_NE(mic.Chunk(7), mic.Chunk(8));
  EXPECT_NE(mic.Chunk(7), ToneSource(4, kFormat).Chunk(7));
}

TEST(ToneSourceTest, ChunkEncodesHeaderAndSamples) {
  ToneSource mic(5, kFormat);
  Buffer chunk = mic.Chunk(12);
  EXPECT_EQ(chunk.size(), kAudioHeaderBytes + kFormat.samples_per_chunk * 2);
  auto info = InspectChunk(chunk);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->participant, 5u);
  EXPECT_EQ(info->chunk_no, 12);
  EXPECT_EQ(info->samples, kFormat.samples_per_chunk);
}

TEST(ToneSourceTest, SamplesMatchChunkContents) {
  ToneSource mic(2, kFormat);
  Buffer chunk = mic.Chunk(4);
  const std::uint64_t base =
      static_cast<std::uint64_t>(4) * kFormat.samples_per_chunk;
  for (std::size_t i = 0; i < kFormat.samples_per_chunk; i += 37) {
    auto sample = ChunkSample(chunk, i);
    ASSERT_TRUE(sample.ok());
    EXPECT_EQ(*sample, mic.SampleAt(base + i)) << "sample " << i;
  }
}

TEST(ToneSourceTest, ChunksAreContinuousAcrossBoundaries) {
  // The waveform is a function of the absolute sample index, so the
  // last sample of chunk n and first of chunk n+1 are neighbours of
  // the same stream, not a restart.
  ToneSource mic(1, kFormat);
  EXPECT_EQ(mic.SampleAt(kFormat.samples_per_chunk - 1),
            mic.SampleAt(kFormat.samples_per_chunk - 1));
  Buffer a = mic.Chunk(0);
  Buffer b = mic.Chunk(1);
  EXPECT_EQ(*ChunkSample(b, 0), mic.SampleAt(kFormat.samples_per_chunk));
}

TEST(InspectChunkTest, RejectsGarbage) {
  Buffer junk(64, 0xAB);
  EXPECT_FALSE(InspectChunk(junk).ok());
  Buffer tiny = {1, 2};
  EXPECT_FALSE(InspectChunk(tiny).ok());
}

TEST(AudioMixerTest, SaturationMath) {
  EXPECT_EQ(AudioMixer::Saturate(0), 0);
  EXPECT_EQ(AudioMixer::Saturate(32767), 32767);
  EXPECT_EQ(AudioMixer::Saturate(32768), 32767);
  EXPECT_EQ(AudioMixer::Saturate(-32768), -32768);
  EXPECT_EQ(AudioMixer::Saturate(-99999), -32768);
}

TEST(AudioMixerTest, MixIsSampleWiseSaturatedSum) {
  AudioMixer mixer(kFormat);
  ToneSource a(0, kFormat), b(1, kFormat), c(2, kFormat);
  std::vector<Buffer> chunks = {a.Chunk(9), b.Chunk(9), c.Chunk(9)};
  auto mixed = mixer.Mix(chunks);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  auto info = InspectChunk(*mixed);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->participant, kMixedParticipant);
  EXPECT_EQ(info->chunk_no, 9);
  const std::uint64_t base =
      static_cast<std::uint64_t>(9) * kFormat.samples_per_chunk;
  for (std::size_t i = 0; i < kFormat.samples_per_chunk; i += 11) {
    const std::int32_t sum = a.SampleAt(base + i) + b.SampleAt(base + i) +
                             c.SampleAt(base + i);
    EXPECT_EQ(*ChunkSample(*mixed, i), AudioMixer::Saturate(sum));
  }
}

TEST(AudioMixerTest, RejectsMismatchedChunks) {
  AudioMixer mixer(kFormat);
  ToneSource a(0, kFormat), b(1, kFormat);
  std::vector<Buffer> different_ts = {a.Chunk(1), b.Chunk(2)};
  EXPECT_EQ(mixer.Mix(different_ts).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<Buffer> empty;
  EXPECT_EQ(mixer.Mix(empty).status().code(), StatusCode::kInvalidArgument);
  AudioFormat other{16000, 160};
  ToneSource short_mic(0, other);
  std::vector<Buffer> wrong_len = {short_mic.Chunk(1)};
  EXPECT_EQ(mixer.Mix(wrong_len).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AudioEndToEndTest, MixedStreamOverRuntimeVerifiesBitExact) {
  core::Runtime::Options opts;
  opts.num_address_spaces = 2;
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  constexpr std::size_t kVoices = 3;
  constexpr Timestamp kChunks = 10;

  // Voices produce into per-voice channels on AS0; the bridge mixes on
  // AS1 into an output channel; a listener validates the mix.
  std::vector<ChannelId> voice_channels;
  for (std::size_t v = 0; v < kVoices; ++v) {
    auto ch = (*rt)->as(0).CreateChannel();
    ASSERT_TRUE(ch.ok());
    voice_channels.push_back(*ch);
    (*rt)->as(0).Spawn("voice", [&, v, ch = *ch] {
      auto out = (*rt)->as(0).Connect(ch, core::ConnMode::kOutput);
      ASSERT_TRUE(out.ok());
      ToneSource mic(static_cast<std::uint32_t>(v), kFormat);
      for (Timestamp ts = 0; ts < kChunks; ++ts) {
        ASSERT_TRUE((*rt)->as(0).Put(*out, ts, mic.Chunk(ts)).ok());
      }
    });
  }
  auto mix_ch = (*rt)->as(1).CreateChannel();
  ASSERT_TRUE(mix_ch.ok());
  (*rt)->as(1).Spawn("bridge", [&] {
    std::vector<core::Connection> inputs;
    for (ChannelId ch : voice_channels) {
      auto conn = (*rt)->as(1).Connect(ch, core::ConnMode::kInput, "bridge");
      ASSERT_TRUE(conn.ok());
      inputs.push_back(*conn);
    }
    auto out = (*rt)->as(1).Connect(*mix_ch, core::ConnMode::kOutput);
    ASSERT_TRUE(out.ok());
    AudioMixer mixer(kFormat);
    for (Timestamp ts = 0; ts < kChunks; ++ts) {
      std::vector<Buffer> voice;
      for (auto& input : inputs) {
        auto item = (*rt)->as(1).Get(input, core::GetSpec::Exact(ts),
                                     Deadline::AfterMillis(30000));
        ASSERT_TRUE(item.ok()) << item.status();
        voice.push_back(item->payload.ToVector());
        ASSERT_TRUE((*rt)->as(1).Consume(input, ts).ok());
      }
      auto mixed = mixer.Mix(voice);
      ASSERT_TRUE(mixed.ok());
      ASSERT_TRUE((*rt)->as(1).Put(*out, ts, std::move(mixed).value()).ok());
    }
  });

  auto in = (*rt)->as(0).Connect(*mix_ch, core::ConnMode::kInput);
  ASSERT_TRUE(in.ok());
  std::vector<ToneSource> mics;
  for (std::size_t v = 0; v < kVoices; ++v) {
    mics.emplace_back(static_cast<std::uint32_t>(v), kFormat);
  }
  for (Timestamp ts = 0; ts < kChunks; ++ts) {
    auto item = (*rt)->as(0).Get(*in, core::GetSpec::Exact(ts),
                                 Deadline::AfterMillis(30000));
    ASSERT_TRUE(item.ok()) << item.status();
    const std::uint64_t base =
        static_cast<std::uint64_t>(ts) * kFormat.samples_per_chunk;
    for (std::size_t i = 0; i < kFormat.samples_per_chunk; i += 53) {
      std::int32_t sum = 0;
      for (auto& mic : mics) sum += mic.SampleAt(base + i);
      EXPECT_EQ(*ChunkSample(item->payload.span(), i),
                AudioMixer::Saturate(sum))
          << "chunk " << ts << " sample " << i;
    }
    ASSERT_TRUE((*rt)->as(0).Consume(*in, ts).ok());
  }
  (*rt)->as(0).JoinThreads();
  (*rt)->as(1).JoinThreads();
}

TEST(AudioVideoCorrelationTest, AudioAlignsWithLossyVideo) {
  // Audio at full rate, video dropping every 4th frame: the correlator
  // must deliver exactly the surviving timestamps with matched media.
  core::Runtime::Options opts;
  auto rt = core::Runtime::Create(opts);
  ASSERT_TRUE(rt.ok());
  auto audio_ch = (*rt)->as(0).CreateChannel();
  auto video_ch = (*rt)->as(0).CreateChannel();
  ASSERT_TRUE(audio_ch.ok());
  ASSERT_TRUE(video_ch.ok());
  auto audio_out = (*rt)->as(0).Connect(*audio_ch, core::ConnMode::kOutput);
  auto video_out = (*rt)->as(0).Connect(*video_ch, core::ConnMode::kOutput);
  ToneSource mic(0, kFormat);
  VirtualCamera camera(0, 4096);
  constexpr Timestamp kTs = 12;
  for (Timestamp ts = 0; ts < kTs; ++ts) {
    ASSERT_TRUE((*rt)->as(0).Put(*audio_out, ts, mic.Chunk(ts)).ok());
    if (ts % 4 != 3) {
      ASSERT_TRUE((*rt)->as(0).Put(*video_out, ts, camera.Grab(ts)).ok());
    }
  }
  auto audio_in = (*rt)->as(0).Connect(*audio_ch, core::ConnMode::kInput);
  auto video_in = (*rt)->as(0).Connect(*video_ch, core::ConnMode::kInput);
  TemporalCorrelator av((*rt)->as(0), {*audio_in, *video_in});
  std::size_t pairs = 0;
  for (Timestamp ts = 0; ts < kTs; ++ts) {
    if (ts % 4 == 3) continue;
    auto tuple = av.NextTuple(Deadline::AfterMillis(10000));
    ASSERT_TRUE(tuple.ok()) << tuple.status();
    EXPECT_EQ(tuple->timestamp, ts);
    auto audio_info = InspectChunk(tuple->items[0].payload.span());
    auto video_info = InspectFrame(tuple->items[1].payload.span());
    ASSERT_TRUE(audio_info.ok());
    ASSERT_TRUE(video_info.ok());
    EXPECT_EQ(audio_info->chunk_no, video_info->frame_no);
    ++pairs;
  }
  EXPECT_EQ(pairs, 9u);
  EXPECT_EQ(av.skipped_timestamps(), 2u);  // ts 3 and 7 (11 pending)
}

}  // namespace
}  // namespace dstampede::app
