// LocalQueue semantics: FIFO order, exactly-once delivery across
// concurrent workers, in-flight accounting, consume-triggered GC,
// detach returning in-flight items, capacity back-pressure.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "dstampede/core/queue.hpp"

namespace dstampede::core {
namespace {

SharedBuffer Payload(std::string_view s) { return SharedBuffer::FromString(s); }

class QueueTest : public ::testing::Test {
 protected:
  LocalQueue q_{QueueAttr{}};
};

TEST_F(QueueTest, FifoOrder) {
  std::uint32_t conn = q_.Attach(ConnMode::kInputOutput, "t");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        q_.Put(i, Payload(std::to_string(i)), Deadline::Infinite()).ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto item = q_.Get(conn, Deadline::Poll());
    ASSERT_TRUE(item.ok());
    EXPECT_EQ(item->timestamp, i);
    EXPECT_EQ(item->payload.ToString(), std::to_string(i));
  }
}

TEST_F(QueueTest, DuplicateTimestampsAreLegal) {
  // All fragments of one frame share the frame's timestamp (Fig 3).
  std::uint32_t conn = q_.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(q_.Put(7, Payload("frag0"), Deadline::Infinite()).ok());
  ASSERT_TRUE(q_.Put(7, Payload("frag1"), Deadline::Infinite()).ok());
  EXPECT_EQ(q_.Get(conn, Deadline::Poll())->payload.ToString(), "frag0");
  EXPECT_EQ(q_.Get(conn, Deadline::Poll())->payload.ToString(), "frag1");
}

TEST_F(QueueTest, GetBlocksUntilPut) {
  std::uint32_t conn = q_.Attach(ConnMode::kInput, "t");
  std::thread producer([&] {
    std::this_thread::sleep_for(Millis(30));
    ASSERT_TRUE(q_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  });
  auto item = q_.Get(conn, Deadline::AfterMillis(5000));
  ASSERT_TRUE(item.ok());
  producer.join();
}

TEST_F(QueueTest, GetTimesOutOnEmptyQueue) {
  std::uint32_t conn = q_.Attach(ConnMode::kInput, "t");
  EXPECT_EQ(q_.Get(conn, Deadline::AfterMillis(50)).status().code(),
            StatusCode::kTimeout);
}

TEST_F(QueueTest, OutputOnlyConnectionCannotGet) {
  std::uint32_t conn = q_.Attach(ConnMode::kOutput, "producer");
  ASSERT_TRUE(q_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  EXPECT_EQ(q_.Get(conn, Deadline::Poll()).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(QueueTest, ExactlyOnceAcrossWorkers) {
  constexpr int kItems = 500;
  constexpr int kWorkers = 4;
  std::uint32_t producer = q_.Attach(ConnMode::kOutput, "p");
  (void)producer;
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(q_.Put(i, Payload("x"), Deadline::Infinite()).ok());
  }
  std::mutex mu;
  std::set<Timestamp> seen;
  std::atomic<int> total{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      std::uint32_t conn = q_.Attach(ConnMode::kInput, "w");
      for (;;) {
        auto item = q_.Get(conn, Deadline::AfterMillis(200));
        if (!item.ok()) break;  // drained
        {
          std::lock_guard<std::mutex> lock(mu);
          EXPECT_TRUE(seen.insert(item->timestamp).second)
              << "item " << item->timestamp << " delivered twice";
        }
        ASSERT_TRUE(q_.Consume(conn, item->timestamp).ok());
        total.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(total.load(), kItems);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kItems));
}

TEST_F(QueueTest, ConsumeFiresGcHandler) {
  std::vector<Timestamp> freed;
  q_.set_gc_handler(
      [&](Timestamp ts, const SharedBuffer&) { freed.push_back(ts); });
  std::uint32_t conn = q_.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(q_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  auto item = q_.Get(conn, Deadline::Poll());
  ASSERT_TRUE(item.ok());
  EXPECT_TRUE(freed.empty()) << "handler must not fire before consume";
  ASSERT_TRUE(q_.Consume(conn, 1).ok());
  EXPECT_EQ(freed, (std::vector<Timestamp>{1}));
}

TEST_F(QueueTest, ConsumeWithoutGetRejected) {
  std::uint32_t conn = q_.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(q_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  EXPECT_EQ(q_.Consume(conn, 1).code(), StatusCode::kNotFound);
}

TEST_F(QueueTest, InFlightAccounting) {
  std::uint32_t conn = q_.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(q_.Put(1, Payload("x"), Deadline::Infinite()).ok());
  ASSERT_TRUE(q_.Put(2, Payload("y"), Deadline::Infinite()).ok());
  EXPECT_EQ(q_.queued_items(), 2u);
  EXPECT_EQ(q_.in_flight_items(), 0u);
  ASSERT_TRUE(q_.Get(conn, Deadline::Poll()).ok());
  EXPECT_EQ(q_.queued_items(), 1u);
  EXPECT_EQ(q_.in_flight_items(), 1u);
  ASSERT_TRUE(q_.Consume(conn, 1).ok());
  EXPECT_EQ(q_.in_flight_items(), 0u);
  EXPECT_EQ(q_.total_consumed(), 1u);
}

TEST_F(QueueTest, DetachReturnsInFlightItemsInOrder) {
  std::uint32_t w1 = q_.Attach(ConnMode::kInput, "w1");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q_.Put(i, Payload(std::to_string(i)), Deadline::Infinite())
                    .ok());
  }
  // w1 takes items 0 and 1 but never consumes them.
  ASSERT_TRUE(q_.Get(w1, Deadline::Poll()).ok());
  ASSERT_TRUE(q_.Get(w1, Deadline::Poll()).ok());
  ASSERT_TRUE(q_.Detach(w1).ok());
  // A new worker sees everything, original order restored.
  std::uint32_t w2 = q_.Attach(ConnMode::kInput, "w2");
  EXPECT_EQ(q_.Get(w2, Deadline::Poll())->timestamp, 0);
  EXPECT_EQ(q_.Get(w2, Deadline::Poll())->timestamp, 1);
  EXPECT_EQ(q_.Get(w2, Deadline::Poll())->timestamp, 2);
}

TEST_F(QueueTest, SweepDrainsNoticesWithBits) {
  std::uint32_t conn = q_.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(q_.Put(1, Payload("abc"), Deadline::Infinite()).ok());
  ASSERT_TRUE(q_.Get(conn, Deadline::Poll()).ok());
  ASSERT_TRUE(q_.Consume(conn, 1).ok());
  auto notices = q_.Sweep(0x99);
  ASSERT_EQ(notices.size(), 1u);
  EXPECT_EQ(notices[0].container_bits, 0x99u);
  EXPECT_TRUE(notices[0].is_queue);
  EXPECT_EQ(notices[0].payload_size, 3u);
  EXPECT_TRUE(q_.Sweep(0x99).empty());
}

TEST(QueueCapacityTest, PutBlocksAtCapacityUntilGet) {
  QueueAttr attr;
  attr.capacity_items = 1;
  LocalQueue q(attr);
  std::uint32_t conn = q.Attach(ConnMode::kInput, "t");
  ASSERT_TRUE(q.Put(0, Payload("a"), Deadline::Poll()).ok());
  EXPECT_EQ(q.Put(1, Payload("b"), Deadline::AfterMillis(50)).code(),
            StatusCode::kTimeout);
  std::thread getter([&] {
    std::this_thread::sleep_for(Millis(30));
    ASSERT_TRUE(q.Get(conn, Deadline::AfterMillis(1000)).ok());
  });
  EXPECT_TRUE(q.Put(1, Payload("b"), Deadline::AfterMillis(5000)).ok());
  getter.join();
}

TEST(QueueCloseTest, CloseWakesBlockedGetters) {
  LocalQueue q{QueueAttr{}};
  std::uint32_t conn = q.Attach(ConnMode::kInput, "t");
  std::thread closer([&] {
    std::this_thread::sleep_for(Millis(30));
    q.Close();
  });
  EXPECT_EQ(q.Get(conn, Deadline::Infinite()).status().code(),
            StatusCode::kCancelled);
  closer.join();
}

TEST_F(QueueTest, UnknownConnectionRejected) {
  EXPECT_EQ(q_.Get(42, Deadline::Poll()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(q_.Consume(42, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(q_.Detach(42).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dstampede::core
