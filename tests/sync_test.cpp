// Tests for the concurrency-correctness layer (common/sync.hpp): the
// annotated mutex/condvar wrappers and the opt-in runtime lock-order /
// blocking-while-locked detector.
//
// The death tests run the offending sequence in a forked child (gtest
// death-test machinery), so enabling the detector inside EXPECT_DEATH
// never contaminates the parent process.
#include "dstampede/common/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dstampede::sync {
namespace {

TEST(SyncTest, MutexLockProtectsSharedCounter) {
  ds::Mutex mu("test.counter_mu");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        ds::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 4000);
}

TEST(SyncTest, EarlyUnlockReleasesTheMutex) {
  ds::Mutex mu("test.early_unlock_mu");
  ds::MutexLock lock(mu);
  lock.Unlock();
  // If Unlock did not release, this try_lock would fail (and a second
  // unlock at scope exit would be UB).
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncTest, CondVarWaitUntilTimesOut) {
  ds::Mutex mu("test.cv_mu");
  ds::CondVar cv;
  ds::MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitUntil(mu, Deadline::AfterMillis(5)));
}

TEST(SyncTest, CondVarWakesWaiter) {
  ds::Mutex mu("test.cv_wake_mu");
  ds::CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    ds::MutexLock lock(mu);
    ready = true;
    lock.Unlock();
    cv.NotifyOne();
  });
  {
    ds::MutexLock lock(mu);
    while (!ready) {
      ASSERT_TRUE(cv.WaitUntil(mu, Deadline::AfterMillis(5000)));
    }
  }
  waker.join();
}

TEST(SyncTest, DetectorOffRecordsNoEdges) {
  // Explicitly off (the suite may run under DSTAMPEDE_DEADLOCK_DETECT=1).
  SetDeadlockDetectionForTesting(false);
  const std::size_t before = LockOrderEdgeCountForTesting();
  ds::Mutex a("test.noedge_a");
  ds::Mutex b("test.noedge_b");
  {
    ds::MutexLock la(a);
    ds::MutexLock lb(b);
  }
  EXPECT_EQ(LockOrderEdgeCountForTesting(), before);
}

TEST(SyncTest, DetectorRecordsNestingEdges) {
  SetDeadlockDetectionForTesting(true);
  const std::size_t before = LockOrderEdgeCountForTesting();
  ds::Mutex a("test.edge_a");
  ds::Mutex b("test.edge_b");
  {
    ds::MutexLock la(a);
    ds::MutexLock lb(b);
  }
  // Same order again: the edge is already known, the count is stable.
  {
    ds::MutexLock la(a);
    ds::MutexLock lb(b);
  }
  SetDeadlockDetectionForTesting(false);
  EXPECT_EQ(LockOrderEdgeCountForTesting(), before + 1);
}

TEST(SyncTest, ConsistentOrderAcrossThreadsIsAccepted) {
  SetDeadlockDetectionForTesting(true);
  ds::Mutex outer("test.order_outer");
  ds::Mutex inner("test.order_inner");
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ds::MutexLock lo(outer);
        ds::MutexLock li(inner);
        sum.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SetDeadlockDetectionForTesting(false);
  EXPECT_EQ(sum.load(), 800);
}

TEST(SyncTest, TryLockDoesNotRecordAnOrderEdge) {
  SetDeadlockDetectionForTesting(true);
  const std::size_t before = LockOrderEdgeCountForTesting();
  ds::Mutex a("test.trylock_a");
  ds::Mutex b("test.trylock_b");
  {
    ds::MutexLock la(a);
    ASSERT_TRUE(b.try_lock());
    b.unlock();
  }
  SetDeadlockDetectionForTesting(false);
  EXPECT_EQ(LockOrderEdgeCountForTesting(), before);
}

TEST(SyncLockOrderDeathTest, AbbaInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectionForTesting(true);
        ds::Mutex a("test.abba_a");
        ds::Mutex b("test.abba_b");
        {
          ds::MutexLock la(a);
          ds::MutexLock lb(b);
        }
        {
          ds::MutexLock lb(b);
          ds::MutexLock la(a);  // inverts the recorded a -> b order
        }
      },
      "lock-order cycle");
}

TEST(SyncLockOrderDeathTest, CrossInstanceSameClassNestingIsNotAnEdge) {
  // Two instances of the same lock class nested under a common parent
  // must not self-cycle (the class node would point at itself), but an
  // inversion through a *different* class must still abort.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectionForTesting(true);
        ds::Mutex parent("test.cross_parent");
        ds::Mutex child1("test.cross_child");
        ds::Mutex child2("test.cross_child");
        {
          ds::MutexLock lp(parent);
          ds::MutexLock lc(child1);
          ds::MutexLock lc2(child2);  // same-class nesting: no self-edge
        }
        {
          ds::MutexLock lc(child2);
          ds::MutexLock lp(parent);  // child -> parent inverts the order
        }
      },
      "lock-order cycle");
}

TEST(SyncLockOrderDeathTest, ThreeLockCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectionForTesting(true);
        ds::Mutex a("test.ring_a");
        ds::Mutex b("test.ring_b");
        ds::Mutex c("test.ring_c");
        {
          ds::MutexLock la(a);
          ds::MutexLock lb(b);
        }
        {
          ds::MutexLock lb(b);
          ds::MutexLock lc(c);
        }
        {
          ds::MutexLock lc(c);
          ds::MutexLock la(a);  // closes the a -> b -> c ring
        }
      },
      "lock-order cycle");
}

TEST(SyncLockOrderDeathTest, ReentrantAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectionForTesting(true);
        ds::Mutex mu("test.reentrant");
        ds::MutexLock outer(mu);
        mu.lock();  // same instance, same thread: guaranteed deadlock
      },
      "re-entrant acquisition");
}

TEST(SyncBlockingDeathTest, BlockingWhileHoldingOrdinaryMutexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectionForTesting(true);
        ds::Mutex mu("test.nonblocking_mu");
        ds::MutexLock lock(mu);
        AssertBlockingAllowed("sync_test fake I/O");
      },
      "blocking operation");
}

TEST(SyncBlockingTest, BlockingAllowedMutexPassesTheAssert) {
  SetDeadlockDetectionForTesting(true);
  ds::Mutex mu("test.blocking_ok_mu", ds::Mutex::kBlockingAllowed);
  {
    ds::MutexLock lock(mu);
    AssertBlockingAllowed("sync_test fake I/O");  // must not abort
  }
  SetDeadlockDetectionForTesting(false);
}

TEST(SyncBlockingTest, AssertIsANoOpWithNoLocksHeld) {
  SetDeadlockDetectionForTesting(true);
  AssertBlockingAllowed("sync_test fake I/O");
  SetDeadlockDetectionForTesting(false);
}

TEST(SyncBlockingTest, CondVarWaitReleasesTheHeldSet) {
  // A CondVar wait is a sanctioned block: the detector must consider
  // the mutex released for the duration of the wait, so a notifier
  // thread taking the same mutex is not flagged.
  SetDeadlockDetectionForTesting(true);
  ds::Mutex mu("test.cv_heldset_mu");
  ds::CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    ds::MutexLock lock(mu);
    ready = true;
    lock.Unlock();
    cv.NotifyOne();
  });
  {
    ds::MutexLock lock(mu);
    while (!ready) {
      ASSERT_TRUE(cv.WaitUntil(mu, Deadline::AfterMillis(5000)));
    }
    // Back from the wait: the mutex is held again and the detector
    // must know it (an AssertBlockingAllowed here would abort — see
    // the death test above — so only check we can still nest).
  }
  notifier.join();
  SetDeadlockDetectionForTesting(false);
}

}  // namespace
}  // namespace dstampede::sync
