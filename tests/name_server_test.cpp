// NameServer: registration lifecycle, blocking lookups (dynamic
// start/stop rendezvous), prefix listing.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dstampede/core/name_server.hpp"
#include "dstampede/core/wire.hpp"

namespace dstampede::core {
namespace {

NsEntry Entry(const std::string& name, std::uint64_t bits = 1,
              NsEntry::Kind kind = NsEntry::Kind::kChannel) {
  return NsEntry{name, kind, bits, "test"};
}

TEST(NameServerTest, RegisterAndLookup) {
  NameServer ns;
  ASSERT_TRUE(ns.Register(Entry("video/in/0", 42)).ok());
  auto found = ns.Lookup("video/in/0");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id_bits, 42u);
  EXPECT_EQ(found->kind, NsEntry::Kind::kChannel);
  EXPECT_EQ(found->meta, "test");
}

TEST(NameServerTest, DuplicateNameRejected) {
  NameServer ns;
  ASSERT_TRUE(ns.Register(Entry("x")).ok());
  EXPECT_EQ(ns.Register(Entry("x")).code(), StatusCode::kAlreadyExists);
}

TEST(NameServerTest, EmptyNameRejected) {
  NameServer ns;
  EXPECT_EQ(ns.Register(Entry("")).code(), StatusCode::kInvalidArgument);
}

TEST(NameServerTest, MissingNameNotFound) {
  NameServer ns;
  EXPECT_EQ(ns.Lookup("ghost").status().code(), StatusCode::kNotFound);
}

TEST(NameServerTest, UnregisterRemoves) {
  NameServer ns;
  ASSERT_TRUE(ns.Register(Entry("x")).ok());
  ASSERT_TRUE(ns.Unregister("x").ok());
  EXPECT_EQ(ns.Lookup("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ns.Unregister("x").code(), StatusCode::kNotFound);
}

TEST(NameServerTest, ReRegisterAfterUnregister) {
  NameServer ns;
  ASSERT_TRUE(ns.Register(Entry("x", 1)).ok());
  ASSERT_TRUE(ns.Unregister("x").ok());
  ASSERT_TRUE(ns.Register(Entry("x", 2)).ok());
  EXPECT_EQ(ns.Lookup("x")->id_bits, 2u);
}

TEST(NameServerTest, BlockingLookupWaitsForRegistration) {
  // The dynamic start/stop rendezvous: a consumer waits for a producer
  // that has not registered yet.
  NameServer ns;
  std::thread registrar([&] {
    std::this_thread::sleep_for(Millis(30));
    ASSERT_TRUE(ns.Register(Entry("late", 77)).ok());
  });
  auto found = ns.Lookup("late", Deadline::AfterMillis(5000));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id_bits, 77u);
  registrar.join();
}

TEST(NameServerTest, BlockingLookupTimesOut) {
  NameServer ns;
  auto found = ns.Lookup("never", Deadline::AfterMillis(50));
  EXPECT_EQ(found.status().code(), StatusCode::kNotFound);
}

TEST(NameServerTest, ListByPrefix) {
  NameServer ns;
  ASSERT_TRUE(ns.Register(Entry("video/in/0")).ok());
  ASSERT_TRUE(ns.Register(Entry("video/in/1")).ok());
  ASSERT_TRUE(ns.Register(Entry("video/out")).ok());
  ASSERT_TRUE(ns.Register(Entry("audio/in/0")).ok());
  EXPECT_EQ(ns.List("video/in/").size(), 2u);
  EXPECT_EQ(ns.List("video/").size(), 3u);
  EXPECT_EQ(ns.List("").size(), 4u);
  EXPECT_EQ(ns.List("nothing").size(), 0u);
  EXPECT_EQ(ns.size(), 4u);
}

TEST(NameServerTest, StoresIntendedUse) {
  NameServer ns;
  NsEntry entry{"mic/0", NsEntry::Kind::kQueue, 5,
                "raw audio samples, 16kHz mono"};
  ASSERT_TRUE(ns.Register(entry).ok());
  EXPECT_EQ(ns.Lookup("mic/0")->meta, "raw audio samples, 16kHz mono");
  EXPECT_EQ(ns.Lookup("mic/0")->kind, NsEntry::Kind::kQueue);
}

// --- session registry (end-device session resilience) -----------------

SessionRecord Session(std::uint64_t id, std::uint64_t ticket = 0) {
  SessionRecord record;
  record.session_id = id;
  record.client_name = "dev";
  record.host_as = static_cast<AsId>(1);
  record.last_executed_ticket = ticket;
  return record;
}

TEST(SessionRegistryTest, PutGetDropLifecycle) {
  NameServer ns;
  EXPECT_EQ(ns.GetSession(7).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(ns.PutSession(Session(7, 3)).ok());
  EXPECT_EQ(ns.session_count(), 1u);
  auto got = ns.GetSession(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->last_executed_ticket, 3u);
  EXPECT_EQ(got->client_name, "dev");
  ASSERT_TRUE(ns.DropSession(7).ok());
  EXPECT_EQ(ns.GetSession(7).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ns.DropSession(7).code(), StatusCode::kNotFound);
}

TEST(SessionRegistryTest, StaleMirrorNeverRewindsTicket) {
  NameServer ns;
  ASSERT_TRUE(ns.PutSession(Session(7, 10)).ok());
  // A full-record mirror that raced an older snapshot must not move the
  // exactly-once high-water mark backwards.
  ASSERT_TRUE(ns.PutSession(Session(7, 4)).ok());
  EXPECT_EQ(ns.GetSession(7)->last_executed_ticket, 10u);
  ASSERT_TRUE(ns.TickSession(7, 12).ok());
  EXPECT_EQ(ns.GetSession(7)->last_executed_ticket, 12u);
  ASSERT_TRUE(ns.TickSession(7, 11).ok());  // monotone: ignored
  EXPECT_EQ(ns.GetSession(7)->last_executed_ticket, 12u);
  EXPECT_EQ(ns.TickSession(99, 1).code(), StatusCode::kNotFound);
}

TEST(SessionRegistryTest, PurgeOwnerRacesSessionUpdate) {
  // Control-plane HA: when a peer dies, the (leader) replica appends a
  // PurgeOwner while surrogates keep mirroring session state. The two
  // interleave arbitrarily in the log; whatever the order, purges must
  // only ever touch names and session tickets must stay monotone.
  NameServer ns;
  const AsId dead = static_cast<AsId>(2);
  constexpr std::uint64_t kRounds = 500;

  std::thread purger([&] {
    for (std::uint64_t i = 0; i < kRounds; ++i) {
      NsEntry entry = Entry("owned/" + std::to_string(i));
      entry.owner_as = dead;
      ASSERT_TRUE(ns.Register(entry).ok());
      ns.PurgeOwner(dead);
    }
  });
  std::thread mirrorer([&] {
    ASSERT_TRUE(ns.PutSession(Session(7, 1)).ok());
    for (std::uint64_t t = 2; t <= kRounds; ++t) {
      // Alternate full-record mirrors and high-water-mark ticks, the
      // two write shapes a live surrogate emits.
      if (t % 2 == 0) {
        ASSERT_TRUE(ns.PutSession(Session(7, t)).ok());
      } else {
        ASSERT_TRUE(ns.TickSession(7, t).ok());
      }
    }
  });
  purger.join();
  mirrorer.join();

  // Every purged round removed its name; the session survived them all
  // with the highest ticket it ever saw.
  ns.PurgeOwner(dead);
  EXPECT_EQ(ns.List("owned/").size(), 0u);
  auto got = ns.GetSession(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->last_executed_ticket, kRounds);
}

TEST(SessionRegistryTest, TicketMonotoneAcrossLeaderChange) {
  // Two replicas driven by the same mutation log (encoded/decoded as
  // on the wire). The follower catches up *after* the leader dies —
  // and the client's first post-failover mirror may carry a snapshot
  // older than the last entry the old leader journaled. The high-water
  // mark must never rewind on either replica.
  NameServer old_leader;
  NameServer new_leader;
  std::vector<Buffer> log;
  auto append = [&](const NsMutation& m) {
    log.push_back(EncodeNsMutation(m));
    auto decoded = DecodeNsMutation(log.back());
    ASSERT_TRUE(decoded.ok());
    (void)old_leader.Apply(*decoded);
  };

  NsMutation put;
  put.kind = NsMutation::Kind::kPutSession;
  put.session = Session(7, 5);
  append(put);
  NsMutation tick;
  tick.kind = NsMutation::Kind::kTickSession;
  tick.session_id = 7;
  tick.ticket = 9;
  append(tick);
  tick.ticket = 12;
  append(tick);
  ASSERT_EQ(old_leader.GetSession(7)->last_executed_ticket, 12u);

  // Leader change: the new leader replays the full log.
  for (const Buffer& entry : log) {
    auto decoded = DecodeNsMutation(entry);
    ASSERT_TRUE(decoded.ok());
    (void)new_leader.Apply(*decoded);
  }
  EXPECT_EQ(new_leader.GetSession(7)->last_executed_ticket, 12u);

  // Stale post-failover writes: a re-delivered log entry and a client
  // mirror snapshotted before the crash. Both are ignored.
  tick.ticket = 9;
  (void)new_leader.Apply(tick);
  NsMutation stale_put;
  stale_put.kind = NsMutation::Kind::kPutSession;
  stale_put.session = Session(7, 4);
  ASSERT_TRUE(new_leader.Apply(stale_put).ok());
  EXPECT_EQ(new_leader.GetSession(7)->last_executed_ticket, 12u);
}

TEST(SessionRegistryTest, PurgeOwnerLeavesSessionsAlone) {
  // PR 1's peer-death purge removes the dead space's *name* entries;
  // session records must survive it — they are the failover state.
  NameServer ns;
  NsEntry entry = Entry("owned/x");
  entry.owner_as = static_cast<AsId>(2);
  ASSERT_TRUE(ns.Register(entry).ok());
  ASSERT_TRUE(ns.PutSession(Session(7)).ok());
  ns.PurgeOwner(static_cast<AsId>(2));
  EXPECT_EQ(ns.Lookup("owned/x").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(ns.GetSession(7).ok());
}

}  // namespace
}  // namespace dstampede::core
