// Failure-handling extension (§6 future work): surrogate session-state
// tracking, manual and automatic reaping of parked surrogates, and the
// end-to-end effect — a dead device's GC holds are released so live
// participants make progress.
#include <gtest/gtest.h>

#include <thread>

#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::client {
namespace {

using core::ConnMode;
using core::GetSpec;

class ReaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    auto rt = core::Runtime::Create(opts);
    ASSERT_TRUE(rt.ok());
    rt_ = std::move(rt).value();
  }

  void StartListener(Duration auto_reap = Duration::zero()) {
    Listener::Options opts;
    opts.reap_parked_after = auto_reap;
    auto listener = Listener::Start(*rt_, opts);
    ASSERT_TRUE(listener.ok());
    listener_ = std::move(listener).value();
  }

  void TearDown() override {
    if (listener_) listener_->Shutdown();
    rt_->Shutdown();
  }

  // Joins a device, attaches to `ch` as input, registers a name, then
  // vanishes without a clean leave (raw socket slam).
  void RunDoomedDevice(ChannelId ch) {
    auto conn = transport::TcpConnection::Connect(listener_->addr());
    ASSERT_TRUE(conn.ok());
    std::uint64_t req_id = 1;
    auto call = [&](Buffer frame) -> Buffer {
      EXPECT_TRUE(conn->SendFrame(frame).ok());
      Buffer reply;
      EXPECT_TRUE(conn->RecvFrame(reply, Deadline::AfterMillis(5000)).ok());
      return reply;
    };
    {
      marshal::XdrEncoder enc;
      core::EncodeRequestHeader(enc, static_cast<core::Op>(ClientOp::kHello),
                                req_id++);
      HelloReq hello;
      hello.name = "doomed";
      hello.Encode(enc);
      call(enc.Take());
    }
    {
      marshal::XdrEncoder enc;
      core::EncodeRequestHeader(enc, core::Op::kAttach, req_id++);
      core::AttachReq req;
      req.container_bits = ch.bits();
      req.mode = ConnMode::kInput;
      req.label = "doomed-in";
      req.Encode(enc);
      call(enc.Take());
    }
    {
      marshal::XdrEncoder enc;
      core::EncodeRequestHeader(enc, core::Op::kNsRegister, req_id++);
      core::EncodeNsEntry(enc, core::NsEntry{"doomed/name",
                                             core::NsEntry::Kind::kChannel,
                                             ch.bits(), ""});
      call(enc.Take());
    }
    conn->Close();  // crash
  }

  void WaitForState(Surrogate::State state, std::size_t count = 1) {
    for (int i = 0; i < 300 && listener_->surrogates_in(state) < count; ++i) {
      std::this_thread::sleep_for(Millis(10));
    }
    ASSERT_EQ(listener_->surrogates_in(state), count);
  }

  std::unique_ptr<core::Runtime> rt_;
  std::unique_ptr<Listener> listener_;
};

TEST_F(ReaperTest, ManualReapReleasesGcHolds) {
  StartListener();
  auto ch = rt_->as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto out = rt_->as(0).Connect(*ch, ConnMode::kOutput);
  auto live_in = rt_->as(1).Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(live_in.ok());

  RunDoomedDevice(*ch);
  WaitForState(Surrogate::State::kParked);

  // Items consumed by the live consumer stay pinned by the dead one.
  auto channel = rt_->as(0).FindChannel(ch->bits());
  for (Timestamp ts = 0; ts < 5; ++ts) {
    ASSERT_TRUE(rt_->as(0).Put(*out, ts, Buffer(32)).ok());
    ASSERT_TRUE(rt_->as(1).Consume(*live_in, ts).ok());
  }
  EXPECT_EQ(channel->live_items(), 5u)
      << "dead device's connection still holds everything";

  EXPECT_EQ(listener_->ReapParked(), 1u);
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kReaped), 1u);
  EXPECT_EQ(channel->live_items(), 0u)
      << "reaping detached the dead connection; GC proceeded";
  // Its name registration was cleaned up too.
  EXPECT_EQ(rt_->as(1).NsLookup("doomed/name").status().code(),
            StatusCode::kNotFound);
  // Re-reaping finds nothing.
  EXPECT_EQ(listener_->ReapParked(), 0u);
}

TEST_F(ReaperTest, AutoReapAfterTimeout) {
  StartListener(/*auto_reap=*/Millis(50));
  auto ch = rt_->as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  RunDoomedDevice(*ch);
  WaitForState(Surrogate::State::kParked);
  // The janitor reaps without any manual call.
  WaitForState(Surrogate::State::kReaped);
  EXPECT_EQ(rt_->as(0).NsLookup("doomed/name").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ReaperTest, DefaultKeepsPaperBehaviour) {
  StartListener();  // no auto reap
  auto ch = rt_->as(0).CreateChannel();
  ASSERT_TRUE(ch.ok());
  RunDoomedDevice(*ch);
  WaitForState(Surrogate::State::kParked);
  std::this_thread::sleep_for(Millis(200));
  // Parked forever, exactly as §3.3 documents.
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kParked), 1u);
  EXPECT_EQ(listener_->surrogates_in(Surrogate::State::kReaped), 0u);
}

TEST_F(ReaperTest, CleanDetachDropsTracking) {
  StartListener();
  client::CClient::Options opts;
  opts.server = listener_->addr();
  opts.name = "tidy";
  auto device = CClient::Join(opts);
  ASSERT_TRUE(device.ok());
  auto ch = (*device)->CreateChannel();
  ASSERT_TRUE(ch.ok());
  auto conn = (*device)->Connect(*ch, ConnMode::kInput);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE((*device)->Disconnect(*conn).ok());
  (void)(*device)->Leave();
  WaitForState(Surrogate::State::kLeft);
  // Left surrogates are not reapable (and have nothing tracked anyway).
  EXPECT_EQ(listener_->ReapParked(), 0u);
}

TEST_F(ReaperTest, ActiveSurrogateCannotBeReaped) {
  StartListener();
  client::CClient::Options opts;
  opts.server = listener_->addr();
  opts.name = "alive";
  auto device = CClient::Join(opts);
  ASSERT_TRUE(device.ok());
  EXPECT_EQ(listener_->ReapParked(), 0u);
  // The device keeps working after the no-op reap.
  EXPECT_TRUE((*device)->CreateChannel().ok());
}

}  // namespace
}  // namespace dstampede::client
