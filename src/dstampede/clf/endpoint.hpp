// CLF: reliable, ordered, point-to-point message transport.
//
// This is the reproduction of the paper's CLF packet layer (§3.2.2): it
// gives the D-Stampede address spaces "reliable, ordered point-to-point
// packet transport ... with the illusion of an infinite packet queue",
// exploiting shared memory within the process and UDP otherwise.
//
// Mechanics: messages are fragmented into datagrams (first fragment
// carries the message length), each datagram carries a per-peer
// sequence number, the receiver acks cumulatively, the sender keeps a
// sliding window of unacked packets and retransmits on timeout with
// exponential backoff. Delivery to the application is exactly-once and
// in order per peer, regardless of drops, duplicates or reordering
// underneath (see tests/clf_test.cpp property suite).
//
// Failure detection (cluster extension beyond the paper's §3.3 model):
// every packet carries the sender's incarnation epoch. When enabled via
// Options, the endpoint probes idle peers with keepalive pings, bounds
// retransmission attempts, and declares a peer dead once it exceeds the
// retransmit budget or stays silent past peer_timeout. Death fails
// pending sends fast with kUnavailable, wakes window waiters, drops the
// peer's ARQ state and fires the registered PeerDown callback. A
// restarted peer shows up with a fresh epoch: stale sequence state is
// discarded, the peer is resurrected, and PeerUp fires.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "dstampede/clf/fault_injector.hpp"
#include "dstampede/clf/shm_ring.hpp"
#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/metrics.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/thread.hpp"
#include "dstampede/transport/udp.hpp"

namespace dstampede::clf {

struct EndpointStats {
  std::atomic<std::uint64_t> data_packets_sent{0};
  std::atomic<std::uint64_t> data_packets_received{0};
  std::atomic<std::uint64_t> retransmissions{0};
  std::atomic<std::uint64_t> acks_sent{0};
  std::atomic<std::uint64_t> duplicates_discarded{0};
  std::atomic<std::uint64_t> messages_delivered{0};
  std::atomic<std::uint64_t> shm_messages{0};
  std::atomic<std::uint64_t> keepalive_probes_sent{0};
  std::atomic<std::uint64_t> peers_declared_dead{0};
  std::atomic<std::uint64_t> peers_resurrected{0};
  std::atomic<std::uint64_t> epoch_resets{0};
};

class Endpoint {
 public:
  struct Options {
    std::uint16_t port = 0;           // 0: pick a free port
    bool enable_shm_fastpath = false; // in-process peers bypass UDP
    std::size_t window_packets = 128; // max unacked packets per peer
    Duration initial_rto = Millis(10);
    Duration max_rto = Millis(320);
    FaultInjector::Config faults;     // all-zero: faithful wire
    // --- failure detection (defaults preserve the paper's model:
    // retransmit forever, never declare a peer dead) ----------------
    // Per-packet retransmission budget; exceeding it declares the
    // peer dead. 0 = unbounded.
    std::size_t max_retransmits = 0;
    // Probe a peer after this much silence. Zero disables probing.
    Duration keepalive_interval = Duration::zero();
    // Declare a watched peer dead after this much silence. Zero
    // disables silence-based death (probes alone never kill).
    Duration peer_timeout = Duration::zero();
  };

  // Fired (from the endpoint's receiver thread, outside all endpoint
  // locks) when a peer is declared dead / heard from again.
  using PeerEventCallback = std::function<void(const transport::SockAddr&)>;

  static Result<std::unique_ptr<Endpoint>> Create(const Options& options);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const transport::SockAddr& addr() const { return addr_; }
  // This endpoint's incarnation number, stamped on every packet.
  std::uint32_t epoch() const { return epoch_; }

  // Reliable ordered send. Blocks while the per-peer window is full;
  // returns once every fragment has been handed to the wire (delivery
  // is then guaranteed by retransmission as long as both ends live).
  // Fails fast with kUnavailable once the peer is declared dead.
  Status Send(const transport::SockAddr& to,
              std::span<const std::uint8_t> message);

  // Next fully reassembled message from any peer, in per-peer order.
  Status Recv(Buffer& out, transport::SockAddr& from,
              Deadline deadline = Deadline::Infinite());

  // --- failure detection ------------------------------------------------
  // Starts keepalive monitoring of `peer` before any traffic flows
  // (the runtime watches its whole mesh). No-op when probing is off.
  void WatchPeer(const transport::SockAddr& peer);
  // Clears dead state and ARQ history for `peer` so a later Send
  // starts fresh (a controller re-admitting a restarted peer).
  void ForgetPeer(const transport::SockAddr& peer);
  bool IsPeerDead(const transport::SockAddr& peer) const;
  void set_peer_down_callback(PeerEventCallback cb);
  void set_peer_up_callback(PeerEventCallback cb);

  // The outgoing-path fault injector; tests and the ablation bench use
  // it to install deterministic partitions.
  FaultInjector& fault_injector() { return injector_; }

  // Stops the background thread and closes the socket. Unacked data is
  // abandoned (the paper's CLF has no teardown handshake either).
  void Shutdown();

  const EndpointStats& stats() const { return stats_; }

  // Optional telemetry hook: when set, the endpoint records a per-peer
  // round-trip histogram ("clf.rtt_us.<addr>", microseconds) from the
  // send of a fresh data packet to its cumulative ack. Retransmitted
  // packets are excluded (Karn's rule: their RTT is ambiguous). May be
  // set at any time; null disables.
  void set_metrics_registry(metrics::Registry* registry) {
    metrics_registry_.store(registry, std::memory_order_release);
  }

 private:
  explicit Endpoint(const Options& options);

  struct SendPeer {
    std::uint32_t next_seq = 0;
    // seq -> (datagram, next retransmit time, current rto)
    struct Unacked {
      Buffer datagram;
      TimePoint resend_at;
      Duration rto;
      std::size_t retransmits = 0;
      // First wire send, for the RTT histogram (unset when telemetry
      // is off, so the hot path skips the clock read).
      TimePoint sent_at{};
    };
    std::map<std::uint32_t, Unacked> unacked;
    // Held across ALL fragments of one message: concurrent senders to
    // the same peer must not interleave fragments, or the receiver's
    // reassembly sees a foreign first-fragment mid message. Blocking-
    // allowed: the holder legitimately waits on the ARQ window (and
    // thus on the wire) with it held.
    std::shared_ptr<ds::Mutex> message_mu = std::make_shared<ds::Mutex>(
        "clf.message_mu", ds::Mutex::kBlockingAllowed);
  };

  struct RecvPeer {
    std::uint32_t expected_seq = 0;
    std::map<std::uint32_t, Buffer> out_of_order;  // seq -> payload w/ flags
    // Message reassembly.
    bool assembling = false;
    std::size_t message_length = 0;
    Buffer partial;
  };

  // Liveness view of one peer. Entries are never erased (Send may hold
  // a reference across a window wait); ForgetPeer resets in place.
  struct PeerHealth {
    bool dead = false;
    bool epoch_known = false;
    std::uint32_t epoch = 0;
    TimePoint last_heard{};
    TimePoint last_probe{};
  };

  void ReceiverLoop();
  void HandleDatagram(const transport::SockAddr& from,
                      std::span<const std::uint8_t> datagram);
  void HandleAck(const transport::SockAddr& from, std::uint32_t ack);
  void DeliverInOrderFragment(const transport::SockAddr& from, RecvPeer& peer,
                              std::span<const std::uint8_t> payload,
                              bool first_fragment);
  void PushInbox(const transport::SockAddr& from, Buffer message);
  void SendAck(const transport::SockAddr& to, std::uint32_t ack);
  void RetransmitScan();
  // Applies fault injection and writes datagrams to the socket.
  void WireSend(const transport::SockAddr& to, Buffer datagram);
  // Sends every modeled-network packet due at or before `now`
  // (TimePoint::max() drains the whole queue on shutdown).
  void DrainModeledNetwork(TimePoint now);

  // Tracks the sender's epoch; resets ARQ state on a new incarnation
  // and resurrects a dead peer. Returns false when the packet must be
  // ignored (same-incarnation traffic from a peer already declared
  // dead). Runs on the receiver thread.
  bool ObservePeer(const transport::SockAddr& from, std::uint32_t epoch);
  // Marks the peer dead, drops its state, wakes waiters, fires the
  // callback. Runs on the receiver thread.
  void DeclarePeerDead(const transport::SockAddr& peer, const char* why);
  bool detection_enabled() const {
    return options_.keepalive_interval > Duration::zero() &&
           options_.peer_timeout > Duration::zero();
  }

  Options options_;
  transport::UdpSocket socket_;
  transport::SockAddr addr_;
  EndpointStats stats_;
  std::uint32_t epoch_ = 0;

  mutable ds::Mutex send_mu_{"clf.send_mu"};
  ds::CondVar window_cv_;
  std::unordered_map<transport::SockAddr, SendPeer> send_peers_
      DS_GUARDED_BY(send_mu_);
  // Telemetry (optional). The histogram cache avoids a registry name
  // lookup per ack; Histogram::Observe itself is lock-free, so
  // recording under send_mu_ is safe.
  std::atomic<metrics::Registry*> metrics_registry_{nullptr};
  std::unordered_map<transport::SockAddr, metrics::Histogram*> rtt_hist_
      DS_GUARDED_BY(send_mu_);
  std::unordered_map<transport::SockAddr, PeerHealth> health_
      DS_GUARDED_BY(send_mu_);

  // Leaf lock: held only to copy a callback out, never while firing it.
  ds::Mutex callback_mu_{"clf.callback_mu"};
  PeerEventCallback on_peer_down_ DS_GUARDED_BY(callback_mu_);
  PeerEventCallback on_peer_up_ DS_GUARDED_BY(callback_mu_);

  // Receiver-side state is touched only by the receiver thread; it is
  // deliberately unguarded (single-owner data, see ReceiverLoop).
  std::unordered_map<transport::SockAddr, RecvPeer> recv_peers_;

  ds::Mutex inbox_mu_{"clf.inbox_mu"};
  ds::CondVar inbox_cv_;
  std::deque<std::pair<transport::SockAddr, Buffer>> inbox_
      DS_GUARDED_BY(inbox_mu_);

  FaultInjector injector_;
  std::shared_ptr<ShmRing> shm_ring_;

  std::atomic<bool> stopping_{false};
  Thread receiver_;
};

}  // namespace dstampede::clf
