#include "dstampede/clf/shm_ring.hpp"

#include <cstring>

namespace dstampede::clf {

void ShmRing::Transfer(const transport::SockAddr& from,
                       std::span<const std::uint8_t> message) {
  Buffer assembled;
  assembled.reserve(message.size());
  {
    ds::MutexLock lock(mu_);
    std::size_t off = 0;
    while (off < message.size()) {
      const std::size_t n = std::min(kChunk, message.size() - off);
      std::memcpy(staging_, message.data() + off, n);
      assembled.insert(assembled.end(), staging_, staging_ + n);
      off += n;
    }
  }
  deliver_(from, std::move(assembled));
}

ShmRegistry& ShmRegistry::Instance() {
  static auto* registry = new ShmRegistry();
  return *registry;
}

void ShmRegistry::Register(const transport::SockAddr& addr,
                           std::shared_ptr<ShmRing> ring) {
  ds::MutexLock lock(mu_);
  rings_[addr] = std::move(ring);
}

void ShmRegistry::Unregister(const transport::SockAddr& addr) {
  ds::MutexLock lock(mu_);
  rings_.erase(addr);
}

std::shared_ptr<ShmRing> ShmRegistry::Lookup(const transport::SockAddr& addr) {
  ds::MutexLock lock(mu_);
  auto it = rings_.find(addr);
  return it == rings_.end() ? nullptr : it->second;
}

}  // namespace dstampede::clf
