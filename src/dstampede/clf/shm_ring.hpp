// The shared-memory fast path of CLF.
//
// The paper's CLF "exploits shared memory within an SMP" and falls back
// to the network between nodes (§3.2.2). Here, address spaces that live
// in the same OS process register their CLF address in a process-wide
// registry; a sender that finds its peer in the registry moves the
// message through a bounded staging ring (chunked copies, mimicking a
// memory-channel style transfer) instead of the UDP path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/transport/socket.hpp"

namespace dstampede::clf {

// A message sink: the endpoint's inbox push, bound at registration.
using ShmDeliverFn =
    std::function<void(const transport::SockAddr& from, Buffer message)>;

// Bounded staging buffer through which fast-path messages are copied in
// fixed-size chunks. One ring per receiving endpoint; senders serialize
// on it (an SMP memory channel is a shared resource too).
class ShmRing {
 public:
  static constexpr std::size_t kChunk = 64 * 1024;

  explicit ShmRing(ShmDeliverFn deliver) : deliver_(std::move(deliver)) {}

  // Copies message chunk-by-chunk through the staging area, then hands
  // the reassembled message to the delivery function.
  void Transfer(const transport::SockAddr& from, std::span<const std::uint8_t> message);

 private:
  ds::Mutex mu_{"shm_ring.mu"};
  std::uint8_t staging_[kChunk] DS_GUARDED_BY(mu_){};
  const ShmDeliverFn deliver_;  // bound at construction, immutable
};

// Process-wide registry mapping CLF addresses to their in-process ring.
// Endpoints register on creation (when the fast path is enabled) and
// unregister on shutdown.
class ShmRegistry {
 public:
  static ShmRegistry& Instance();

  void Register(const transport::SockAddr& addr, std::shared_ptr<ShmRing> ring);
  void Unregister(const transport::SockAddr& addr);
  // Null if the peer is not an in-process fast-path endpoint.
  std::shared_ptr<ShmRing> Lookup(const transport::SockAddr& addr);

 private:
  ds::Mutex mu_{"shm_registry.mu"};
  std::unordered_map<transport::SockAddr, std::shared_ptr<ShmRing>> rings_
      DS_GUARDED_BY(mu_);
};

}  // namespace dstampede::clf
