#include "dstampede/clf/fault_injector.hpp"

#include <algorithm>
#include <cstdio>

namespace dstampede::clf {

FaultInjector::FaultInjector(const Config& config)
    : config_(config), rng_(config.seed) {
  kills_possible_.store(config.connection_kill_probability > 0.0,
                        std::memory_order_relaxed);
}

bool FaultInjector::Chance(double p) {
  if (p <= 0.0) return false;
  return unit_(rng_) < p;
}

std::vector<Buffer> FaultInjector::Filter(Buffer datagram) {
  ds::MutexLock lock(mu_);
  std::vector<Buffer> out;
  for (Delivery& d : FilterLocked(std::nullopt, std::move(datagram))) {
    out.push_back(std::move(d.datagram));
  }
  return out;
}

std::vector<FaultInjector::Delivery> FaultInjector::Filter(
    const transport::SockAddr& to, Buffer datagram) {
  ds::MutexLock lock(mu_);
  if (IsPartitionedLocked(to)) {
    ++counters_.blackholed;
    return {};
  }
  std::vector<Delivery> out;
  for (Delivery& d : FilterLocked(to, std::move(datagram))) {
    if (std::optional<Delivery> now = ModelLinkLocked(std::move(d))) {
      out.push_back(std::move(*now));
    }
  }
  return out;
}

std::vector<FaultInjector::Delivery> FaultInjector::FilterLocked(
    std::optional<transport::SockAddr> to, Buffer datagram) {
  // The destination a released hold falls back to when it was captured
  // without one (destination-less overload feeding the aware one never
  // happens today, but keep the fallback total).
  const transport::SockAddr fallback = to.value_or(transport::SockAddr{});
  auto release_held = [&](std::vector<Delivery>& out) {
    if (!held_) return;
    out.push_back(Delivery{held_->to.value_or(fallback),
                           std::move(held_->datagram)});
    held_.reset();
  };

  std::vector<Delivery> out;

  if (Chance(config_.drop_probability)) {
    ++counters_.dropped;
    // Still release a held packet so reordering can't mask the drop.
    release_held(out);
    return out;
  }

  if (Chance(config_.reorder_probability) && !held_) {
    // Hold this one back; it will ship after the next packet.
    ++counters_.reordered;
    held_ = HeldPacket{to, std::move(datagram)};
    return out;
  }

  const bool dup = Chance(config_.duplicate_probability);
  out.push_back(Delivery{fallback, datagram});  // copy kept if duplicating
  if (dup) {
    ++counters_.duplicated;
    out.push_back(Delivery{fallback, datagram});
  }
  release_held(out);
  return out;
}

const FaultInjector::LinkProfile* FaultInjector::ProfileForLocked(
    const transport::SockAddr& to) const {
  auto it = link_profiles_.find(to);
  if (it != link_profiles_.end()) return &it->second;
  if (default_profile_) return &*default_profile_;
  return nullptr;
}

std::optional<FaultInjector::Delivery> FaultInjector::ModelLinkLocked(
    Delivery d) {
  const LinkProfile* profile = ProfileForLocked(d.to);
  if (profile == nullptr || !profile->modeled()) {
    ++link_counters_[d.to].delivered;
    ++counters_.delivered;
    return d;
  }
  LinkCounters& lc = link_counters_[d.to];
  if (Chance(profile->loss)) {
    ++lc.dropped;
    ++counters_.link_dropped;
    return std::nullopt;
  }
  const TimePoint now = Now();
  Duration serialization = Duration::zero();
  if (profile->bandwidth_bps > 0) {
    const auto bits = static_cast<std::int64_t>(d.datagram.size()) * 8;
    serialization = std::chrono::nanoseconds(
        (bits * 1'000'000'000) / profile->bandwidth_bps);
  }
  // Back-to-back serialization: the link transmits one packet at a
  // time, so a burst queues behind the transmitter, not in parallel.
  TimePoint start = now;
  auto busy = busy_until_.find(d.to);
  if (busy != busy_until_.end() && busy->second > start) start = busy->second;
  const TimePoint tx_done = start + serialization;
  busy_until_[d.to] = tx_done;

  Duration jitter = Duration::zero();
  if (profile->jitter > Duration::zero()) {
    jitter = std::chrono::duration_cast<Duration>(unit_(rng_) *
                                                  profile->jitter);
  }
  const TimePoint due = tx_done + profile->latency + jitter;
  if (due <= now) {
    ++lc.delivered;
    ++counters_.delivered;
    return d;
  }
  delayed_.emplace(std::make_pair(due, delay_seq_++), std::move(d));
  delayed_count_.store(delayed_.size(), std::memory_order_relaxed);
  ++lc.delayed;
  ++counters_.delayed;
  return std::nullopt;
}

std::optional<FaultInjector::HeldPacket> FaultInjector::Flush() {
  ds::MutexLock lock(mu_);
  std::optional<HeldPacket> out = std::move(held_);
  held_.reset();
  return out;
}

void FaultInjector::SetLinkProfile(const transport::SockAddr& peer,
                                   const LinkProfile& profile) {
  ds::MutexLock lock(mu_);
  link_profiles_[peer] = profile;
  links_modeled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::SetDefaultLinkProfile(const LinkProfile& profile) {
  ds::MutexLock lock(mu_);
  default_profile_ = profile;
  links_modeled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ClearLinkProfiles() {
  ds::MutexLock lock(mu_);
  link_profiles_.clear();
  default_profile_.reset();
  busy_until_.clear();
  // Packets already parked still deliver; keep the flag up until the
  // queue drains so the endpoint keeps scanning it.
  links_modeled_.store(!delayed_.empty(), std::memory_order_relaxed);
}

std::vector<FaultInjector::Delivery> FaultInjector::TakeDue(TimePoint now) {
  ds::MutexLock lock(mu_);
  std::vector<Delivery> out;
  auto it = delayed_.begin();
  while (it != delayed_.end() && it->first.first <= now) {
    ++link_counters_[it->second.to].delivered;
    ++counters_.delivered;
    out.push_back(std::move(it->second));
    it = delayed_.erase(it);
  }
  delayed_count_.store(delayed_.size(), std::memory_order_relaxed);
  if (delayed_.empty() && link_profiles_.empty() && !default_profile_) {
    links_modeled_.store(false, std::memory_order_relaxed);
  }
  return out;
}

std::optional<TimePoint> FaultInjector::NextDeliveryTime() const {
  ds::MutexLock lock(mu_);
  if (delayed_.empty()) return std::nullopt;
  return delayed_.begin()->first.first;
}

void FaultInjector::ArmConnectionKill(std::size_t n, KillPoint point) {
  ds::MutexLock lock(mu_);
  if (point == KillPoint::kBeforeExecute) {
    armed_kills_before_ += n;
  } else {
    armed_kills_after_ += n;
  }
  kills_possible_.store(true, std::memory_order_relaxed);
}

bool FaultInjector::TakeConnectionKill(KillPoint point) {
  if (!kills_possible_.load(std::memory_order_relaxed)) return false;
  ds::MutexLock lock(mu_);
  std::size_t& armed = point == KillPoint::kBeforeExecute
                           ? armed_kills_before_
                           : armed_kills_after_;
  bool fire = false;
  if (armed > 0) {
    --armed;
    fire = true;
  } else if (point == KillPoint::kBeforeExecute &&
             Chance(config_.connection_kill_probability)) {
    fire = true;
  }
  if (fire) connections_killed_.fetch_add(1, std::memory_order_relaxed);
  if (armed_kills_before_ == 0 && armed_kills_after_ == 0 &&
      config_.connection_kill_probability <= 0.0) {
    kills_possible_.store(false, std::memory_order_relaxed);
  }
  return fire;
}

void FaultInjector::Partition(const transport::SockAddr& peer,
                              TimePoint until) {
  ds::MutexLock lock(mu_);
  partitions_[peer] = until;
  partition_count_.store(partitions_.size(), std::memory_order_relaxed);
}

void FaultInjector::PartitionFor(const transport::SockAddr& peer,
                                 Duration window) {
  Partition(peer, Now() + window);
}

void FaultInjector::Heal(const transport::SockAddr& peer) {
  ds::MutexLock lock(mu_);
  partitions_.erase(peer);
  partition_count_.store(partitions_.size(), std::memory_order_relaxed);
}

void FaultInjector::HealAll() {
  ds::MutexLock lock(mu_);
  partitions_.clear();
  partition_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::IsPartitioned(const transport::SockAddr& peer) {
  ds::MutexLock lock(mu_);
  return IsPartitionedLocked(peer);
}

bool FaultInjector::IsPartitionedLocked(const transport::SockAddr& peer) {
  auto it = partitions_.find(peer);
  if (it == partitions_.end()) return false;
  if (it->second != TimePoint::max() && Now() >= it->second) {
    partitions_.erase(it);  // window closed: the link heals itself
    partition_count_.store(partitions_.size(), std::memory_order_relaxed);
    return false;
  }
  return true;
}

FaultInjector::Counters FaultInjector::TotalCounters() const {
  ds::MutexLock lock(mu_);
  return counters_;
}

std::unordered_map<transport::SockAddr, FaultInjector::LinkCounters>
FaultInjector::PerLinkCounters() const {
  ds::MutexLock lock(mu_);
  return link_counters_;
}

std::string FaultInjector::Summary() const {
  ds::MutexLock lock(mu_);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "dropped=%llu dup=%llu reorder=%llu blackholed=%llu "
                "link_dropped=%llu delayed=%llu delivered=%llu pending=%zu "
                "links=%zu",
                static_cast<unsigned long long>(counters_.dropped),
                static_cast<unsigned long long>(counters_.duplicated),
                static_cast<unsigned long long>(counters_.reordered),
                static_cast<unsigned long long>(counters_.blackholed),
                static_cast<unsigned long long>(counters_.link_dropped),
                static_cast<unsigned long long>(counters_.delayed),
                static_cast<unsigned long long>(counters_.delivered),
                delayed_.size(), link_counters_.size());
  return buf;
}

}  // namespace dstampede::clf
