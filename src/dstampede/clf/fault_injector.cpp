#include "dstampede/clf/fault_injector.hpp"

namespace dstampede::clf {

FaultInjector::FaultInjector(const Config& config)
    : config_(config), rng_(config.seed) {}

bool FaultInjector::Chance(double p) {
  if (p <= 0.0) return false;
  return unit_(rng_) < p;
}

std::vector<Buffer> FaultInjector::Filter(Buffer datagram) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Buffer> out;

  if (Chance(config_.drop_probability)) {
    ++dropped_;
    // Still release a held packet so reordering can't mask the drop.
    if (held_) {
      out.push_back(std::move(*held_));
      held_.reset();
    }
    return out;
  }

  if (Chance(config_.reorder_probability) && !held_) {
    // Hold this one back; it will ship after the next packet.
    ++reordered_;
    held_ = std::move(datagram);
    return out;
  }

  const bool dup = Chance(config_.duplicate_probability);
  out.push_back(datagram);  // copy kept if duplicating
  if (dup) {
    ++duplicated_;
    out.push_back(datagram);
  }
  if (held_) {
    out.push_back(std::move(*held_));
    held_.reset();
  }
  return out;
}

std::optional<Buffer> FaultInjector::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<Buffer> out = std::move(held_);
  held_.reset();
  return out;
}

}  // namespace dstampede::clf
