#include "dstampede/clf/fault_injector.hpp"

namespace dstampede::clf {

FaultInjector::FaultInjector(const Config& config)
    : config_(config), rng_(config.seed) {
  kills_possible_.store(config.connection_kill_probability > 0.0,
                        std::memory_order_relaxed);
}

bool FaultInjector::Chance(double p) {
  if (p <= 0.0) return false;
  return unit_(rng_) < p;
}

std::vector<Buffer> FaultInjector::Filter(Buffer datagram) {
  ds::MutexLock lock(mu_);
  return FilterLocked(std::move(datagram));
}

std::vector<Buffer> FaultInjector::Filter(const transport::SockAddr& to,
                                          Buffer datagram) {
  ds::MutexLock lock(mu_);
  if (IsPartitionedLocked(to)) {
    ++blackholed_;
    return {};
  }
  return FilterLocked(std::move(datagram));
}

std::vector<Buffer> FaultInjector::FilterLocked(Buffer datagram) {
  std::vector<Buffer> out;

  if (Chance(config_.drop_probability)) {
    ++dropped_;
    // Still release a held packet so reordering can't mask the drop.
    if (held_) {
      out.push_back(std::move(*held_));
      held_.reset();
    }
    return out;
  }

  if (Chance(config_.reorder_probability) && !held_) {
    // Hold this one back; it will ship after the next packet.
    ++reordered_;
    held_ = std::move(datagram);
    return out;
  }

  const bool dup = Chance(config_.duplicate_probability);
  out.push_back(datagram);  // copy kept if duplicating
  if (dup) {
    ++duplicated_;
    out.push_back(datagram);
  }
  if (held_) {
    out.push_back(std::move(*held_));
    held_.reset();
  }
  return out;
}

std::optional<Buffer> FaultInjector::Flush() {
  ds::MutexLock lock(mu_);
  std::optional<Buffer> out = std::move(held_);
  held_.reset();
  return out;
}

void FaultInjector::ArmConnectionKill(std::size_t n, KillPoint point) {
  ds::MutexLock lock(mu_);
  if (point == KillPoint::kBeforeExecute) {
    armed_kills_before_ += n;
  } else {
    armed_kills_after_ += n;
  }
  kills_possible_.store(true, std::memory_order_relaxed);
}

bool FaultInjector::TakeConnectionKill(KillPoint point) {
  if (!kills_possible_.load(std::memory_order_relaxed)) return false;
  ds::MutexLock lock(mu_);
  std::size_t& armed = point == KillPoint::kBeforeExecute
                           ? armed_kills_before_
                           : armed_kills_after_;
  bool fire = false;
  if (armed > 0) {
    --armed;
    fire = true;
  } else if (point == KillPoint::kBeforeExecute &&
             Chance(config_.connection_kill_probability)) {
    fire = true;
  }
  if (fire) connections_killed_.fetch_add(1, std::memory_order_relaxed);
  if (armed_kills_before_ == 0 && armed_kills_after_ == 0 &&
      config_.connection_kill_probability <= 0.0) {
    kills_possible_.store(false, std::memory_order_relaxed);
  }
  return fire;
}

void FaultInjector::Partition(const transport::SockAddr& peer,
                              TimePoint until) {
  ds::MutexLock lock(mu_);
  partitions_[peer] = until;
  partition_count_.store(partitions_.size(), std::memory_order_relaxed);
}

void FaultInjector::PartitionFor(const transport::SockAddr& peer,
                                 Duration window) {
  Partition(peer, Now() + window);
}

void FaultInjector::Heal(const transport::SockAddr& peer) {
  ds::MutexLock lock(mu_);
  partitions_.erase(peer);
  partition_count_.store(partitions_.size(), std::memory_order_relaxed);
}

void FaultInjector::HealAll() {
  ds::MutexLock lock(mu_);
  partitions_.clear();
  partition_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::IsPartitioned(const transport::SockAddr& peer) {
  ds::MutexLock lock(mu_);
  return IsPartitionedLocked(peer);
}

bool FaultInjector::IsPartitionedLocked(const transport::SockAddr& peer) {
  auto it = partitions_.find(peer);
  if (it == partitions_.end()) return false;
  if (it->second != TimePoint::max() && Now() >= it->second) {
    partitions_.erase(it);  // window closed: the link heals itself
    partition_count_.store(partitions_.size(), std::memory_order_relaxed);
    return false;
  }
  return true;
}

}  // namespace dstampede::clf
