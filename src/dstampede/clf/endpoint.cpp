#include "dstampede/clf/endpoint.hpp"

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "dstampede/common/logging.hpp"

namespace dstampede::clf {
namespace {

constexpr std::uint16_t kMagic = 0xC1F0;
constexpr std::uint8_t kTypeData = 1;
constexpr std::uint8_t kTypeAck = 2;
constexpr std::uint8_t kTypePing = 3;
constexpr std::uint8_t kTypePong = 4;
constexpr std::uint8_t kFlagFirstFragment = 0x01;
// magic u16, type u8, flags u8, seq u32, ack u32, epoch u32
constexpr std::size_t kHeaderSize = 16;
// Payload budget per datagram (the paper caps UDP messages at ~64 KB).
constexpr std::size_t kMaxFragmentPayload = 60000;

// Incarnation numbers: random per process, monotone within it, so a
// restarted endpoint on the same port never repeats its predecessor's.
std::uint32_t NextEpoch() {
  static std::atomic<std::uint32_t> counter{std::random_device{}()};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void PutU16(Buffer& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}
void PutU32(Buffer& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 24));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}
std::uint16_t ReadU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t ReadU32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

Buffer BuildPacket(std::uint8_t type, std::uint8_t flags, std::uint32_t seq,
                   std::uint32_t ack, std::uint32_t epoch,
                   std::span<const std::uint8_t> payload) {
  Buffer pkt;
  pkt.reserve(kHeaderSize + payload.size());
  PutU16(pkt, kMagic);
  pkt.push_back(type);
  pkt.push_back(flags);
  PutU32(pkt, seq);
  PutU32(pkt, ack);
  PutU32(pkt, epoch);
  pkt.insert(pkt.end(), payload.begin(), payload.end());
  return pkt;
}

}  // namespace

Result<std::unique_ptr<Endpoint>> Endpoint::Create(const Options& options) {
  auto ep = std::unique_ptr<Endpoint>(new Endpoint(options));
  DS_ASSIGN_OR_RETURN(ep->socket_, transport::UdpSocket::Bind(options.port));
  ep->addr_ = ep->socket_.bound_addr();
  if (options.enable_shm_fastpath) {
    Endpoint* raw = ep.get();
    ep->shm_ring_ = std::make_shared<ShmRing>(
        [raw](const transport::SockAddr& from, Buffer message) {
          raw->stats_.shm_messages.fetch_add(1, std::memory_order_relaxed);
          raw->PushInbox(from, std::move(message));
        });
    ShmRegistry::Instance().Register(ep->addr_, ep->shm_ring_);
  }
  ep->receiver_ = Thread([raw = ep.get()] { raw->ReceiverLoop(); });
  return ep;
}

Endpoint::Endpoint(const Options& options)
    : options_(options), epoch_(NextEpoch()), injector_(options.faults) {}

Endpoint::~Endpoint() { Shutdown(); }

void Endpoint::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (receiver_.joinable()) receiver_.join();
    return;
  }
  if (shm_ring_) ShmRegistry::Instance().Unregister(addr_);
  if (receiver_.joinable()) receiver_.join();
  // Last-gasp flush: ship the reorder-held packet and everything still
  // parked in the modeled-network queue before the socket goes away,
  // so no datagram is stranded by shutdown ordering.
  if (injector_.active() || injector_.delayed_pending() > 0) {
    if (auto held = injector_.Flush()) {
      if (held->to.has_value()) {
        (void)socket_.SendTo(*held->to, held->datagram);
      }
    }
    DrainModeledNetwork(TimePoint::max());
  }
  socket_.Close();
  window_cv_.NotifyAll();
  inbox_cv_.NotifyAll();
}

void Endpoint::WireSend(const transport::SockAddr& to, Buffer datagram) {
  if (!injector_.active()) {
    (void)socket_.SendTo(to, datagram);
    return;
  }
  // Each delivery carries its own destination: a released reorder-hold
  // or a modeled-link release may be bound for a different peer than
  // the packet that triggered it.
  for (FaultInjector::Delivery& d : injector_.Filter(to, std::move(datagram))) {
    (void)socket_.SendTo(d.to, d.datagram);
  }
}

void Endpoint::DrainModeledNetwork(TimePoint now) {
  if (injector_.delayed_pending() == 0) return;
  for (FaultInjector::Delivery& d : injector_.TakeDue(now)) {
    (void)socket_.SendTo(d.to, d.datagram);
  }
}

// --- failure detection ---------------------------------------------------

void Endpoint::WatchPeer(const transport::SockAddr& peer) {
  ds::MutexLock lock(send_mu_);
  PeerHealth& h = health_[peer];
  if (h.last_heard == TimePoint{}) h.last_heard = Now();
}

void Endpoint::ForgetPeer(const transport::SockAddr& peer) {
  {
    ds::MutexLock lock(send_mu_);
    auto hit = health_.find(peer);
    if (hit != health_.end()) {
      hit->second.dead = false;
      hit->second.epoch_known = false;
      hit->second.last_heard = Now();
      hit->second.last_probe = TimePoint{};
    }
    auto sit = send_peers_.find(peer);
    if (sit != send_peers_.end()) {
      sit->second.unacked.clear();
      sit->second.next_seq = 0;
    }
  }
  window_cv_.NotifyAll();
}

bool Endpoint::IsPeerDead(const transport::SockAddr& peer) const {
  ds::MutexLock lock(send_mu_);
  auto it = health_.find(peer);
  return it != health_.end() && it->second.dead;
}

void Endpoint::set_peer_down_callback(PeerEventCallback cb) {
  ds::MutexLock lock(callback_mu_);
  on_peer_down_ = std::move(cb);
}

void Endpoint::set_peer_up_callback(PeerEventCallback cb) {
  ds::MutexLock lock(callback_mu_);
  on_peer_up_ = std::move(cb);
}

void Endpoint::DeclarePeerDead(const transport::SockAddr& peer,
                               const char* why) {
  {
    ds::MutexLock lock(send_mu_);
    PeerHealth& h = health_[peer];
    if (h.dead) return;
    h.dead = true;
    // Drop the ARQ state: pending packets to a dead peer are abandoned,
    // and a resurrected incarnation expects sequences from zero.
    auto it = send_peers_.find(peer);
    if (it != send_peers_.end()) {
      it->second.unacked.clear();
      it->second.next_seq = 0;
    }
    stats_.peers_declared_dead.fetch_add(1, std::memory_order_relaxed);
  }
  // Receiver-side state is owned by the receiver thread — which is the
  // only caller of this function.
  recv_peers_.erase(peer);
  window_cv_.NotifyAll();
  DS_LOG(kWarn) << "CLF: peer " << peer.ToString() << " declared dead ("
                << why << ")";
  PeerEventCallback cb;
  {
    ds::MutexLock lock(callback_mu_);
    cb = on_peer_down_;
  }
  if (cb) cb(peer);
}

bool Endpoint::ObservePeer(const transport::SockAddr& from,
                           std::uint32_t epoch) {
  bool resurrected = false;
  bool epoch_reset = false;
  {
    ds::MutexLock lock(send_mu_);
    PeerHealth& h = health_[from];
    if (!h.epoch_known) {
      h.epoch_known = true;
      h.epoch = epoch;
      // A peer condemned before any of its packets were heard (it went
      // silent before the first keepalive exchange) has no incarnation
      // on record to hold against it; the first epoch that does arrive
      // is indistinguishable from a restart, so treat it as one rather
      // than shunning the address forever.
      epoch_reset = h.dead;
    } else if (h.epoch != epoch) {
      h.epoch = epoch;
      epoch_reset = true;
    }
    if (epoch_reset) {
      // A fresh incarnation on the same address: discard every piece of
      // sequence state tied to the old one so the restarted peer is not
      // poisoned by stale numbering.
      stats_.epoch_resets.fetch_add(1, std::memory_order_relaxed);
      auto it = send_peers_.find(from);
      if (it != send_peers_.end()) {
        it->second.unacked.clear();
        it->second.next_seq = 0;
      }
    }
    if (h.dead) {
      if (!epoch_reset) return false;  // same incarnation stays dead
      h.dead = false;
      resurrected = true;
      stats_.peers_resurrected.fetch_add(1, std::memory_order_relaxed);
    }
    h.last_heard = Now();
  }
  if (epoch_reset) {
    recv_peers_.erase(from);  // receiver thread owns this state
    window_cv_.NotifyAll();
  }
  if (resurrected) {
    DS_LOG(kInfo) << "CLF: peer " << from.ToString()
                  << " resurrected with epoch " << epoch;
    PeerEventCallback cb;
    {
      ds::MutexLock lock(callback_mu_);
      cb = on_peer_up_;
    }
    if (cb) cb(from);
  }
  return true;
}

// --- data path -----------------------------------------------------------

Status Endpoint::Send(const transport::SockAddr& to,
                      std::span<const std::uint8_t> message) {
  // A CLF send can stall on the ARQ window for as long as the peer is
  // slow; callers must not enter it holding a lock (PR 2 invariant).
  sync::AssertBlockingAllowed("clf::Endpoint::Send");
  if (stopping_.load()) return CancelledError("endpoint shut down");

  // Shared-memory fast path for in-process peers.
  if (options_.enable_shm_fastpath) {
    if (auto ring = ShmRegistry::Instance().Lookup(to)) {
      ring->Transfer(addr_, message);
      return OkStatus();
    }
  }

  // First fragment payload: u32 total length, then data. Subsequent
  // fragments: raw data. Empty messages still send one fragment.
  Buffer first_prefix;
  PutU32(first_prefix, static_cast<std::uint32_t>(message.size()));

  // One message at a time per peer (fragments must stay contiguous in
  // the sequence space).
  std::shared_ptr<ds::Mutex> message_mu;
  {
    ds::MutexLock lock(send_mu_);
    PeerHealth& h = health_[to];
    if (h.dead) return UnavailableError("peer declared dead");
    if (h.last_heard == TimePoint{}) h.last_heard = Now();
    message_mu = send_peers_[to].message_mu;
  }
  ds::MutexLock message_lock(*message_mu);

  std::size_t offset = 0;
  bool first = true;
  do {
    const std::size_t budget =
        first ? kMaxFragmentPayload - first_prefix.size() : kMaxFragmentPayload;
    const std::size_t take = std::min(budget, message.size() - offset);

    Buffer payload;
    payload.reserve((first ? first_prefix.size() : 0) + take);
    if (first) payload.insert(payload.end(), first_prefix.begin(), first_prefix.end());
    payload.insert(payload.end(), message.begin() + offset,
                   message.begin() + offset + take);
    offset += take;

    std::uint32_t seq;
    Buffer datagram;
    {
      ds::MutexLock lock(send_mu_);
      SendPeer& peer = send_peers_[to];
      PeerHealth& h = health_[to];
      while (!stopping_.load() && !h.dead &&
             peer.unacked.size() >= options_.window_packets) {
        window_cv_.Wait(send_mu_);
      }
      if (stopping_.load()) return CancelledError("endpoint shut down");
      if (h.dead) return UnavailableError("peer declared dead");
      seq = peer.next_seq++;
      datagram = BuildPacket(kTypeData, first ? kFlagFirstFragment : 0, seq,
                             /*ack=*/0, epoch_, payload);
      const TimePoint now = Now();
      peer.unacked[seq] = SendPeer::Unacked{
          datagram, now + options_.initial_rto, options_.initial_rto, 0,
          metrics_registry_.load(std::memory_order_acquire) != nullptr
              ? now
              : TimePoint{}};
    }
    stats_.data_packets_sent.fetch_add(1, std::memory_order_relaxed);
    WireSend(to, std::move(datagram));
    first = false;
  } while (offset < message.size());

  return OkStatus();
}

Status Endpoint::Recv(Buffer& out, transport::SockAddr& from,
                      Deadline deadline) {
  // Blocks until a message arrives; a held lock here is a latent
  // deadlock against whatever the sender needs to make progress.
  sync::AssertBlockingAllowed("clf::Endpoint::Recv");
  ds::MutexLock lock(inbox_mu_);
  for (;;) {
    if (!inbox_.empty()) {
      from = inbox_.front().first;
      out = std::move(inbox_.front().second);
      inbox_.pop_front();
      return OkStatus();
    }
    if (stopping_.load()) return CancelledError("endpoint shut down");
    if (!inbox_cv_.WaitUntil(inbox_mu_, deadline) && inbox_.empty()) {
      return TimeoutError("clf recv");
    }
  }
}

void Endpoint::PushInbox(const transport::SockAddr& from, Buffer message) {
  {
    ds::MutexLock lock(inbox_mu_);
    inbox_.emplace_back(from, std::move(message));
  }
  stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
  inbox_cv_.NotifyOne();
}

void Endpoint::SendAck(const transport::SockAddr& to, std::uint32_t ack) {
  stats_.acks_sent.fetch_add(1, std::memory_order_relaxed);
  WireSend(to, BuildPacket(kTypeAck, 0, /*seq=*/0, ack, epoch_, {}));
}

void Endpoint::HandleAck(const transport::SockAddr& from, std::uint32_t ack) {
  bool opened = false;
  {
    ds::MutexLock lock(send_mu_);
    auto it = send_peers_.find(from);
    if (it == send_peers_.end()) return;
    auto& unacked = it->second.unacked;
    metrics::Registry* registry =
        metrics_registry_.load(std::memory_order_acquire);
    while (!unacked.empty() && unacked.begin()->first < ack) {
      const SendPeer::Unacked& entry = unacked.begin()->second;
      // Karn's rule: only fresh (never retransmitted) packets yield an
      // unambiguous round-trip sample.
      if (registry != nullptr && entry.retransmits == 0 &&
          entry.sent_at != TimePoint{}) {
        metrics::Histogram*& hist = rtt_hist_[from];
        if (hist == nullptr) {
          hist = &registry->GetHistogram("clf.rtt_us." + from.ToString());
        }
        hist->Observe(ToMicros(Now() - entry.sent_at));
      }
      unacked.erase(unacked.begin());
      opened = true;
    }
  }
  if (opened) window_cv_.NotifyAll();
}

void Endpoint::DeliverInOrderFragment(const transport::SockAddr& from,
                                      RecvPeer& peer,
                                      std::span<const std::uint8_t> payload,
                                      bool first_fragment) {
  if (!peer.assembling) {
    if (!first_fragment || payload.size() < 4) {
      DS_LOG(kWarn) << "CLF: mid-message fragment with no message open from "
                    << from.ToString() << "; dropping";
      return;
    }
    peer.message_length = ReadU32(payload.data());
    peer.partial.clear();
    peer.partial.reserve(peer.message_length);
    peer.assembling = true;
    payload = payload.subspan(4);
  } else if (first_fragment) {
    // Cannot happen over the ordered reliable stream; defensive reset.
    DS_LOG(kWarn) << "CLF: unexpected first-fragment mid message";
    peer.assembling = false;
    DeliverInOrderFragment(from, peer, payload, true);
    return;
  }
  peer.partial.insert(peer.partial.end(), payload.begin(), payload.end());
  if (peer.partial.size() >= peer.message_length) {
    peer.assembling = false;
    Buffer message = std::move(peer.partial);
    message.resize(peer.message_length);
    peer.partial = Buffer();
    PushInbox(from, std::move(message));
  }
}

void Endpoint::HandleDatagram(const transport::SockAddr& from,
                              std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kHeaderSize) return;
  if (ReadU16(datagram.data()) != kMagic) return;
  const std::uint8_t type = datagram[2];
  const std::uint8_t flags = datagram[3];
  const std::uint32_t seq = ReadU32(datagram.data() + 4);
  const std::uint32_t ack = ReadU32(datagram.data() + 8);
  const std::uint32_t epoch = ReadU32(datagram.data() + 12);
  auto payload = datagram.subspan(kHeaderSize);

  // Epoch/liveness bookkeeping for every packet type. A peer declared
  // dead stays dead for its incarnation: only a new epoch revives it.
  if (!ObservePeer(from, epoch)) return;

  switch (type) {
    case kTypeAck:
      HandleAck(from, ack);
      return;
    case kTypePing:
      WireSend(from, BuildPacket(kTypePong, 0, 0, 0, epoch_, {}));
      return;
    case kTypePong:
      return;  // liveness already recorded above
    case kTypeData:
      break;
    default:
      return;
  }

  stats_.data_packets_received.fetch_add(1, std::memory_order_relaxed);
  RecvPeer& peer = recv_peers_[from];

  if (seq < peer.expected_seq) {
    // Duplicate of something already delivered; re-ack so the sender
    // stops retransmitting.
    stats_.duplicates_discarded.fetch_add(1, std::memory_order_relaxed);
    SendAck(from, peer.expected_seq);
    return;
  }

  // Stash (idempotently) and drain the in-order prefix.
  Buffer stored;
  stored.push_back(flags);
  stored.insert(stored.end(), payload.begin(), payload.end());
  auto [it, inserted] = peer.out_of_order.emplace(seq, std::move(stored));
  if (!inserted) {
    stats_.duplicates_discarded.fetch_add(1, std::memory_order_relaxed);
  }
  (void)it;

  while (true) {
    auto next = peer.out_of_order.find(peer.expected_seq);
    if (next == peer.out_of_order.end()) break;
    Buffer frag = std::move(next->second);
    peer.out_of_order.erase(next);
    ++peer.expected_seq;
    const bool first_fragment = (frag[0] & kFlagFirstFragment) != 0;
    DeliverInOrderFragment(
        from, peer,
        std::span<const std::uint8_t>(frag.data() + 1, frag.size() - 1),
        first_fragment);
  }
  SendAck(from, peer.expected_seq);
}

void Endpoint::RetransmitScan() {
  std::vector<std::pair<transport::SockAddr, Buffer>> to_send;
  std::vector<transport::SockAddr> to_probe;
  std::vector<transport::SockAddr> expired;  // retransmit budget exhausted
  std::vector<transport::SockAddr> silent;   // peer_timeout exceeded
  const TimePoint now = Now();
  {
    ds::MutexLock lock(send_mu_);
    for (auto& [addr, peer] : send_peers_) {
      auto hit = health_.find(addr);
      if (hit != health_.end() && hit->second.dead) continue;
      for (auto& [seq, entry] : peer.unacked) {
        if (entry.resend_at <= now) {
          if (options_.max_retransmits > 0 &&
              entry.retransmits >= options_.max_retransmits) {
            expired.push_back(addr);
            break;
          }
          ++entry.retransmits;
          entry.rto = std::min(entry.rto * 2, options_.max_rto);
          entry.resend_at = now + entry.rto;
          to_send.emplace_back(addr, entry.datagram);
        }
      }
    }
    if (detection_enabled()) {
      for (auto& [addr, h] : health_) {
        if (h.dead) continue;
        if (h.last_heard == TimePoint{}) {
          h.last_heard = now;
          continue;
        }
        if (now - h.last_heard >= options_.peer_timeout) {
          silent.push_back(addr);
          continue;
        }
        if (now - h.last_heard >= options_.keepalive_interval &&
            (h.last_probe == TimePoint{} ||
             now - h.last_probe >= options_.keepalive_interval)) {
          h.last_probe = now;
          to_probe.push_back(addr);
        }
      }
    }
  }
  for (auto& [addr, datagram] : to_send) {
    stats_.retransmissions.fetch_add(1, std::memory_order_relaxed);
    WireSend(addr, std::move(datagram));
  }
  for (const auto& addr : to_probe) {
    stats_.keepalive_probes_sent.fetch_add(1, std::memory_order_relaxed);
    WireSend(addr, BuildPacket(kTypePing, 0, 0, 0, epoch_, {}));
  }
  for (const auto& addr : expired) {
    DeclarePeerDead(addr, "retransmit budget exhausted");
  }
  for (const auto& addr : silent) {
    DeclarePeerDead(addr, "silent past peer_timeout");
  }
  // Don't let a reorder-held packet rot while the link is idle: held
  // packets remember their destination, so the idle scan can actually
  // deliver them instead of dropping them on the floor.
  if (injector_.active()) {
    if (auto held = injector_.Flush()) {
      if (held->to.has_value()) {
        (void)socket_.SendTo(*held->to, held->datagram);
      }
    }
    // Release modeled-network packets whose (virtual) delivery time has
    // arrived. The receive loop calls RetransmitScan at least every
    // 5ms of real time, which bounds release lag; under virtual time
    // the SimController's advance step paces this instead.
    DrainModeledNetwork(Now());
  }
}

void Endpoint::ReceiverLoop() {
  Buffer datagram;
  transport::SockAddr from;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Status s = socket_.RecvFrom(datagram, from, Deadline::AfterMillis(5));
    if (s.ok()) {
      HandleDatagram(from, datagram);
    } else if (s.code() != StatusCode::kTimeout) {
      if (stopping_.load()) break;
      DS_LOG(kWarn) << "CLF recv error: " << s;
    }
    RetransmitScan();
  }
}

}  // namespace dstampede::clf
