// Deterministic packet-fault injection for CLF tests.
//
// CLF promises reliable, ordered delivery over an unreliable datagram
// layer; the property tests drive it through this injector, which can
// drop, duplicate and reorder outgoing datagrams under a seeded RNG.
//
// On top of the probabilistic faults, the injector implements a
// deterministic partition ("blackhole") mode: every datagram toward a
// chosen peer set is dropped, optionally only inside a time window.
// Crashes and network partitions become reproducible in tests and in
// bench_ablation's failure-detection tables.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/transport/socket.hpp"

namespace dstampede::clf {

class FaultInjector {
 public:
  struct Config {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    double reorder_probability = 0.0;
    // TCP-edge fault: probability that a surrogate kills the device's
    // connection around the next request it services (reconnect churn
    // for stress tests). Consulted via TakeConnectionKill, not Filter.
    double connection_kill_probability = 0.0;
    std::uint64_t seed = 1;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(const Config& config);

  // Given one datagram about to go on the wire, returns the datagrams
  // that should actually be sent now (possibly none, possibly several:
  // duplicates or a previously held-back packet). Thread-safe.
  std::vector<Buffer> Filter(Buffer datagram);

  // Destination-aware variant used by the endpoint: datagrams toward a
  // partitioned peer are blackholed before the probabilistic faults run.
  std::vector<Buffer> Filter(const transport::SockAddr& to, Buffer datagram);

  // Releases any held-back packet (call when idle so reordered packets
  // are not stranded forever).
  std::optional<Buffer> Flush();

  // --- partition / blackhole mode ------------------------------------
  // Drops every datagram toward `peer` until `until` passes (the
  // default window never closes: a hard partition until Heal).
  void Partition(const transport::SockAddr& peer,
                 TimePoint until = TimePoint::max());
  // Convenience: partition for a bounded window from now.
  void PartitionFor(const transport::SockAddr& peer, Duration window);
  void Heal(const transport::SockAddr& peer);
  void HealAll();
  // True while a (non-expired) partition toward `peer` is installed.
  bool IsPartitioned(const transport::SockAddr& peer);

  // --- connection-kill mode (TCP edge) --------------------------------
  // The CLF faults above act on cluster datagrams; this mode acts on
  // the client/surrogate TCP edge. A surrogate consults
  // TakeConnectionKill at two points around each request it services:
  //   kBeforeExecute — drop the link before the op runs (the client
  //     replays an unacked call; it must not be lost);
  //   kAfterExecute  — run the op, then drop the link before the reply
  //     is sent (the client replays an *executed* call; it must not be
  //     applied twice).
  enum class KillPoint : std::uint8_t { kBeforeExecute = 0, kAfterExecute = 1 };

  // Arms `n` deterministic kills at `point` (consumed one per request).
  void ArmConnectionKill(std::size_t n,
                         KillPoint point = KillPoint::kBeforeExecute);
  // Returns true if the surrogate should kill the connection now:
  // either an armed kill for this point is pending, or the seeded RNG
  // fires under connection_kill_probability (probabilistic kills all
  // trigger at `point == kBeforeExecute` consults).
  bool TakeConnectionKill(KillPoint point);

  std::uint64_t connections_killed() const {
    return connections_killed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    ds::MutexLock lock(mu_);
    return dropped_;
  }
  std::uint64_t duplicated() const {
    ds::MutexLock lock(mu_);
    return duplicated_;
  }
  std::uint64_t reordered() const {
    ds::MutexLock lock(mu_);
    return reordered_;
  }
  std::uint64_t blackholed() const {
    ds::MutexLock lock(mu_);
    return blackholed_;
  }
  bool active() const {
    return config_.drop_probability > 0 || config_.duplicate_probability > 0 ||
           config_.reorder_probability > 0 ||
           partition_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  bool Chance(double p) DS_REQUIRES(mu_);
  // Lazily expires a time-windowed partition; caller holds mu_.
  bool IsPartitionedLocked(const transport::SockAddr& peer) DS_REQUIRES(mu_);
  std::vector<Buffer> FilterLocked(Buffer datagram) DS_REQUIRES(mu_);

  Config config_;
  // Leaf lock: taken inside the endpoint's send path with clf.send_mu
  // held; must never wrap a call back into the endpoint.
  mutable ds::Mutex mu_{"fault_injector.mu"};
  std::mt19937_64 rng_ DS_GUARDED_BY(mu_);
  std::uniform_real_distribution<double> unit_ DS_GUARDED_BY(mu_){0.0, 1.0};
  std::optional<Buffer> held_ DS_GUARDED_BY(mu_);
  std::unordered_map<transport::SockAddr, TimePoint> partitions_
      DS_GUARDED_BY(mu_);
  // Mirrors partitions_.size() so active() stays lock-free.
  std::atomic<std::size_t> partition_count_{0};
  std::uint64_t dropped_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t duplicated_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t reordered_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t blackholed_ DS_GUARDED_BY(mu_) = 0;
  std::size_t armed_kills_before_ DS_GUARDED_BY(mu_) = 0;
  std::size_t armed_kills_after_ DS_GUARDED_BY(mu_) = 0;
  // Fast path: lets TakeConnectionKill skip the lock entirely when no
  // kill can possibly fire (the common, fault-free case).
  std::atomic<bool> kills_possible_{false};
  std::atomic<std::uint64_t> connections_killed_{0};
};

}  // namespace dstampede::clf
