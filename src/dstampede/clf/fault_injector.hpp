// Deterministic packet-fault injection and network modeling for CLF.
//
// CLF promises reliable, ordered delivery over an unreliable datagram
// layer; the property tests drive it through this injector, which can
// drop, duplicate and reorder outgoing datagrams under a seeded RNG.
//
// On top of the probabilistic faults, the injector implements a
// deterministic partition ("blackhole") mode: every datagram toward a
// chosen peer set is dropped, optionally only inside a time window.
// Crashes and network partitions become reproducible in tests and in
// bench_ablation's failure-detection tables.
//
// The third layer is a *modeled network*: per-link latency / jitter /
// bandwidth / loss profiles (LinkProfile). A datagram surviving the
// probabilistic faults is assigned a delivery time — serialization
// delay from the link's bandwidth (with per-link back-to-back queuing
// via busy_until), plus base latency, plus seeded-RNG jitter — and
// parked in a delayed-delivery queue keyed on (due time, sequence).
// The endpoint's retransmit scan drains TakeDue(Now()); under an
// installed VirtualClock the due times are virtual, so a simulated
// slow WAN runs at full speed and releases packets deterministically
// in (virtual time, enqueue order). See docs/SIMULATION.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/transport/socket.hpp"

namespace dstampede::clf {

class FaultInjector {
 public:
  struct Config {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    double reorder_probability = 0.0;
    // TCP-edge fault: probability that a surrogate kills the device's
    // connection around the next request it services (reconnect churn
    // for stress tests). Consulted via TakeConnectionKill, not Filter.
    double connection_kill_probability = 0.0;
    std::uint64_t seed = 1;
  };

  // Shape of one directed link (this endpoint -> one peer). All-zero
  // (the default) means "not modeled": packets pass through untimed.
  struct LinkProfile {
    Duration latency = Duration::zero();   // one-way propagation delay
    Duration jitter = Duration::zero();    // uniform [0, jitter) extra
    double loss = 0.0;                     // per-packet loss probability
    std::int64_t bandwidth_bps = 0;        // 0 = infinite (no serialization)

    bool modeled() const {
      return latency != Duration::zero() || jitter != Duration::zero() ||
             loss > 0.0 || bandwidth_bps > 0;
    }
  };

  // A datagram bound for a specific destination. Filter/TakeDue return
  // these so a released reorder-hold or a matured delayed packet keeps
  // its own destination instead of inheriting the caller's.
  struct Delivery {
    transport::SockAddr to;
    Buffer datagram;
  };

  // A reorder-held packet surfaced by Flush(). `to` is empty when the
  // packet came through the destination-less Filter overload.
  struct HeldPacket {
    std::optional<transport::SockAddr> to;
    Buffer datagram;
  };

  // Totals across all links (see also PerLinkCounters).
  struct Counters {
    std::uint64_t dropped = 0;       // probabilistic drops
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t blackholed = 0;    // partition drops
    std::uint64_t link_dropped = 0;  // modeled-link loss
    std::uint64_t delayed = 0;       // parked in the delivery queue
    std::uint64_t delivered = 0;     // released from the delivery queue
  };
  struct LinkCounters {
    std::uint64_t delivered = 0;  // immediate + released-from-queue
    std::uint64_t dropped = 0;    // modeled-link loss only
    std::uint64_t delayed = 0;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(const Config& config);

  // Given one datagram about to go on the wire, returns the datagrams
  // that should actually be sent now (possibly none, possibly several:
  // duplicates or a previously held-back packet). Destination-less:
  // probabilistic faults only, no partition check, no link model.
  // Thread-safe.
  std::vector<Buffer> Filter(Buffer datagram);

  // Destination-aware variant used by the endpoint: datagrams toward a
  // partitioned peer are blackholed before the probabilistic faults
  // run, and the link model may park survivors in the delayed-delivery
  // queue (drain with TakeDue) instead of returning them.
  std::vector<Delivery> Filter(const transport::SockAddr& to, Buffer datagram);

  // Releases any held-back packet (the endpoint's idle/shutdown path
  // calls this so reordered packets are not stranded forever).
  std::optional<HeldPacket> Flush();

  // --- modeled network -------------------------------------------------
  void SetLinkProfile(const transport::SockAddr& peer,
                      const LinkProfile& profile);
  // Profile applied to links with no specific profile.
  void SetDefaultLinkProfile(const LinkProfile& profile);
  void ClearLinkProfiles();

  // Removes and returns every delayed packet due at or before `now`,
  // ordered by (due time, enqueue sequence). Pass TimePoint::max() to
  // drain everything (shutdown).
  std::vector<Delivery> TakeDue(TimePoint now);
  // Due time of the earliest parked packet, if any.
  std::optional<TimePoint> NextDeliveryTime() const;
  std::size_t delayed_pending() const {
    return delayed_count_.load(std::memory_order_relaxed);
  }

  // --- partition / blackhole mode ------------------------------------
  // Drops every datagram toward `peer` until `until` passes (the
  // default window never closes: a hard partition until Heal).
  void Partition(const transport::SockAddr& peer,
                 TimePoint until = TimePoint::max());
  // Convenience: partition for a bounded window from now.
  void PartitionFor(const transport::SockAddr& peer, Duration window);
  void Heal(const transport::SockAddr& peer);
  void HealAll();
  // True while a (non-expired) partition toward `peer` is installed.
  bool IsPartitioned(const transport::SockAddr& peer);

  // --- connection-kill mode (TCP edge) --------------------------------
  // The CLF faults above act on cluster datagrams; this mode acts on
  // the client/surrogate TCP edge. A surrogate consults
  // TakeConnectionKill at two points around each request it services:
  //   kBeforeExecute — drop the link before the op runs (the client
  //     replays an unacked call; it must not be lost);
  //   kAfterExecute  — run the op, then drop the link before the reply
  //     is sent (the client replays an *executed* call; it must not be
  //     applied twice).
  enum class KillPoint : std::uint8_t { kBeforeExecute = 0, kAfterExecute = 1 };

  // Arms `n` deterministic kills at `point` (consumed one per request).
  void ArmConnectionKill(std::size_t n,
                         KillPoint point = KillPoint::kBeforeExecute);
  // Returns true if the surrogate should kill the connection now:
  // either an armed kill for this point is pending, or the seeded RNG
  // fires under connection_kill_probability (probabilistic kills all
  // trigger at `point == kBeforeExecute` consults).
  bool TakeConnectionKill(KillPoint point);

  std::uint64_t connections_killed() const {
    return connections_killed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    ds::MutexLock lock(mu_);
    return counters_.dropped;
  }
  std::uint64_t duplicated() const {
    ds::MutexLock lock(mu_);
    return counters_.duplicated;
  }
  std::uint64_t reordered() const {
    ds::MutexLock lock(mu_);
    return counters_.reordered;
  }
  std::uint64_t blackholed() const {
    ds::MutexLock lock(mu_);
    return counters_.blackholed;
  }
  // Snapshot of the aggregate counters / per-link counters.
  Counters TotalCounters() const;
  std::unordered_map<transport::SockAddr, LinkCounters> PerLinkCounters() const;
  // One-line human-readable counter dump for test-failure diagnostics,
  // e.g. "dropped=3 dup=0 reorder=1 blackholed=12 link_dropped=4
  // delayed=87 delivered=83 pending=4 links=2".
  std::string Summary() const;

  bool active() const {
    return config_.drop_probability > 0 || config_.duplicate_probability > 0 ||
           config_.reorder_probability > 0 ||
           partition_count_.load(std::memory_order_relaxed) > 0 ||
           links_modeled_.load(std::memory_order_relaxed);
  }

 private:
  bool Chance(double p) DS_REQUIRES(mu_);
  // Lazily expires a time-windowed partition; caller holds mu_.
  bool IsPartitionedLocked(const transport::SockAddr& peer) DS_REQUIRES(mu_);
  // Probabilistic drop/duplicate/reorder stage. Emits surviving
  // packets with their own destinations (a released held packet keeps
  // the destination it was captured with, falling back to `to`).
  std::vector<Delivery> FilterLocked(std::optional<transport::SockAddr> to,
                                     Buffer datagram) DS_REQUIRES(mu_);
  // Link-model stage: loss, then delivery-time assignment. Returns the
  // packet if it should ship immediately, nullopt if dropped or parked.
  std::optional<Delivery> ModelLinkLocked(Delivery d) DS_REQUIRES(mu_);
  const LinkProfile* ProfileForLocked(const transport::SockAddr& to) const
      DS_REQUIRES(mu_);

  Config config_;
  // Leaf lock: taken inside the endpoint's send path with clf.send_mu
  // held; must never wrap a call back into the endpoint.
  mutable ds::Mutex mu_{"fault_injector.mu"};
  std::mt19937_64 rng_ DS_GUARDED_BY(mu_);
  std::uniform_real_distribution<double> unit_ DS_GUARDED_BY(mu_){0.0, 1.0};
  std::optional<HeldPacket> held_ DS_GUARDED_BY(mu_);
  std::unordered_map<transport::SockAddr, TimePoint> partitions_
      DS_GUARDED_BY(mu_);
  // Mirrors partitions_.size() so active() stays lock-free.
  std::atomic<std::size_t> partition_count_{0};

  // --- modeled network state ---
  std::unordered_map<transport::SockAddr, LinkProfile> link_profiles_
      DS_GUARDED_BY(mu_);
  std::optional<LinkProfile> default_profile_ DS_GUARDED_BY(mu_);
  // (due, seq) -> packet; seq keeps same-instant deliveries in enqueue
  // order so a seeded run releases packets in a reproducible order.
  std::map<std::pair<TimePoint, std::uint64_t>, Delivery> delayed_
      DS_GUARDED_BY(mu_);
  std::uint64_t delay_seq_ DS_GUARDED_BY(mu_) = 0;
  // Per-link "transmitter busy until": serialization delays queue
  // back-to-back instead of overlapping.
  std::unordered_map<transport::SockAddr, TimePoint> busy_until_
      DS_GUARDED_BY(mu_);
  std::unordered_map<transport::SockAddr, LinkCounters> link_counters_
      DS_GUARDED_BY(mu_);
  // Mirror flags so active()/delayed_pending() stay lock-free.
  std::atomic<bool> links_modeled_{false};
  std::atomic<std::size_t> delayed_count_{0};

  Counters counters_ DS_GUARDED_BY(mu_);
  std::size_t armed_kills_before_ DS_GUARDED_BY(mu_) = 0;
  std::size_t armed_kills_after_ DS_GUARDED_BY(mu_) = 0;
  // Fast path: lets TakeConnectionKill skip the lock entirely when no
  // kill can possibly fire (the common, fault-free case).
  std::atomic<bool> kills_possible_{false};
  std::atomic<std::uint64_t> connections_killed_{0};
};

}  // namespace dstampede::clf
