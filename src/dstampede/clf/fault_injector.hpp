// Deterministic packet-fault injection for CLF tests.
//
// CLF promises reliable, ordered delivery over an unreliable datagram
// layer; the property tests drive it through this injector, which can
// drop, duplicate and reorder outgoing datagrams under a seeded RNG.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <random>
#include <vector>

#include "dstampede/common/bytes.hpp"

namespace dstampede::clf {

class FaultInjector {
 public:
  struct Config {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    double reorder_probability = 0.0;
    std::uint64_t seed = 1;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(const Config& config);

  // Given one datagram about to go on the wire, returns the datagrams
  // that should actually be sent now (possibly none, possibly several:
  // duplicates or a previously held-back packet). Thread-safe.
  std::vector<Buffer> Filter(Buffer datagram);

  // Releases any held-back packet (call when idle so reordered packets
  // are not stranded forever).
  std::optional<Buffer> Flush();

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t reordered() const { return reordered_; }
  bool active() const {
    return config_.drop_probability > 0 || config_.duplicate_probability > 0 ||
           config_.reorder_probability > 0;
  }

 private:
  bool Chance(double p);

  Config config_;
  std::mutex mu_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::optional<Buffer> held_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace dstampede::clf
