#include "dstampede/marshal/xdr.hpp"

#include <cstring>

namespace dstampede::marshal {

void XdrEncoder::Pad() {
  while (out_.size() % 4 != 0) out_.push_back(0);
}

void XdrEncoder::PutU32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void XdrEncoder::PutU64(std::uint64_t v) {
  PutU32(static_cast<std::uint32_t>(v >> 32));
  PutU32(static_cast<std::uint32_t>(v));
}

void XdrEncoder::PutF64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(bits);
}

void XdrEncoder::PutOpaque(std::span<const std::uint8_t> data) {
  PutU32(static_cast<std::uint32_t>(data.size()));
  // Bulk append: the "pointer manipulation" fast path the paper credits
  // the C client with.
  out_.insert(out_.end(), data.begin(), data.end());
  Pad();
}

void XdrEncoder::PutString(std::string_view s) {
  PutOpaque(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Status XdrDecoder::Need(std::size_t n) const {
  if (remaining() < n) return InternalError("XDR underrun");
  return OkStatus();
}

void XdrDecoder::SkipPad() {
  while (pos_ % 4 != 0 && pos_ < data_.size()) ++pos_;
}

Result<std::uint32_t> XdrDecoder::GetU32() {
  DS_RETURN_IF_ERROR(Need(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<std::int32_t> XdrDecoder::GetI32() {
  DS_ASSIGN_OR_RETURN(std::uint32_t v, GetU32());
  return static_cast<std::int32_t>(v);
}

Result<std::uint64_t> XdrDecoder::GetU64() {
  DS_ASSIGN_OR_RETURN(std::uint32_t hi, GetU32());
  DS_ASSIGN_OR_RETURN(std::uint32_t lo, GetU32());
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

Result<std::int64_t> XdrDecoder::GetI64() {
  DS_ASSIGN_OR_RETURN(std::uint64_t v, GetU64());
  return static_cast<std::int64_t>(v);
}

Result<bool> XdrDecoder::GetBool() {
  DS_ASSIGN_OR_RETURN(std::uint32_t v, GetU32());
  return v != 0;
}

Result<double> XdrDecoder::GetF64() {
  DS_ASSIGN_OR_RETURN(std::uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Result<std::span<const std::uint8_t>> XdrDecoder::GetOpaqueView() {
  DS_ASSIGN_OR_RETURN(std::uint32_t n, GetU32());
  DS_RETURN_IF_ERROR(Need(n));
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  SkipPad();
  return view;
}

Result<Buffer> XdrDecoder::GetOpaque() {
  DS_ASSIGN_OR_RETURN(auto view, GetOpaqueView());
  return Buffer(view.begin(), view.end());
}

Result<std::string> XdrDecoder::GetString() {
  DS_ASSIGN_OR_RETURN(auto view, GetOpaqueView());
  return std::string(view.begin(), view.end());
}

}  // namespace dstampede::marshal
