// XDR-style marshalling (RFC 1832 flavour): big-endian, every item
// padded to a 4-byte boundary. This is what the paper's C client
// library uses to talk to the server library (§3.2.1).
//
// The encoder works by pointer manipulation over a contiguous buffer —
// deliberately cheap, to contrast with the Java-style marshaller.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/status.hpp"

namespace dstampede::marshal {

class XdrEncoder {
 public:
  XdrEncoder() = default;
  explicit XdrEncoder(std::size_t reserve) { out_.reserve(reserve); }

  void PutU32(std::uint32_t v);
  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutBool(bool v) { PutU32(v ? 1 : 0); }
  void PutF64(double v);
  // Variable-length opaque: u32 length, bytes, zero padding to 4.
  void PutOpaque(std::span<const std::uint8_t> data);
  void PutString(std::string_view s);

  const Buffer& buffer() const { return out_; }
  Buffer Take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  void Pad();
  Buffer out_;
};

class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint32_t> GetU32();
  Result<std::int32_t> GetI32();
  Result<std::uint64_t> GetU64();
  Result<std::int64_t> GetI64();
  Result<bool> GetBool();
  Result<double> GetF64();
  Result<Buffer> GetOpaque();
  // Zero-copy view of an opaque field (valid while the input lives).
  Result<std::span<const std::uint8_t>> GetOpaqueView();
  Result<std::string> GetString();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(std::size_t n) const;
  void SkipPad();

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dstampede::marshal
