// "Java-style" marshalling: wire-compatible with the XDR codec, but
// implemented the way a 2002 JVM client would — every field becomes a
// heap-allocated boxed object with a virtual writeTo/readFrom, opaque
// payloads are copied byte-at-a-time through those objects, and the
// whole object stream is staged in an intermediate vector before being
// flattened into the output buffer.
//
// This is the substitution for the paper's Java client library
// (§3.2.1, Experiment 3): the paper attributes the Java client's ~3x
// latency to "construction of objects" during marshalling, versus
// "mostly pointer manipulation" in C. Because the octets are identical
// to XdrEncoder's, a Java-style client interoperates with the same
// server; only the CPU cost model differs — exactly the paper's setup.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/status.hpp"

namespace dstampede::marshal {

namespace javaish {

// Base of the boxed-field hierarchy; one heap object per encoded field.
class Field {
 public:
  virtual ~Field() = default;
  virtual void WriteTo(Buffer& out) const = 0;
  virtual std::size_t EncodedSize() const = 0;
};

class BoxedU32 : public Field {
 public:
  explicit BoxedU32(std::uint32_t v) : value_(v) {}
  void WriteTo(Buffer& out) const override;
  std::size_t EncodedSize() const override { return 4; }

 private:
  std::uint32_t value_;
};

class BoxedU64 : public Field {
 public:
  explicit BoxedU64(std::uint64_t v) : value_(v) {}
  void WriteTo(Buffer& out) const override;
  std::size_t EncodedSize() const override { return 8; }

 private:
  std::uint64_t value_;
};

class BoxedF64 : public Field {
 public:
  explicit BoxedF64(double v) : value_(v) {}
  void WriteTo(Buffer& out) const override;
  std::size_t EncodedSize() const override { return 8; }

 private:
  double value_;
};

// Opaque data: the constructor copies the payload into a per-byte
// boxed array (Java's byte[] handed through an object stream), and
// WriteTo copies it again, one byte per virtual-ish step.
class BoxedOpaque : public Field {
 public:
  explicit BoxedOpaque(std::span<const std::uint8_t> data);
  void WriteTo(Buffer& out) const override;
  std::size_t EncodedSize() const override;

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace javaish

// Same interface shape as XdrEncoder; produces identical octets.
class JavaStyleEncoder {
 public:
  void PutU32(std::uint32_t v);
  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutBool(bool v) { PutU32(v ? 1 : 0); }
  void PutF64(double v);
  void PutOpaque(std::span<const std::uint8_t> data);
  void PutString(std::string_view s);

  // Flattens the staged object stream into one contiguous buffer.
  Buffer Take();
  std::size_t size() const;

 private:
  std::vector<std::unique_ptr<javaish::Field>> fields_;
};

// Wire-compatible decoder that reconstructs boxed objects per field
// before handing values back (Java's readObject path).
class JavaStyleDecoder {
 public:
  explicit JavaStyleDecoder(std::span<const std::uint8_t> data)
      : data_(data) {}

  Result<std::uint32_t> GetU32();
  Result<std::int32_t> GetI32();
  Result<std::uint64_t> GetU64();
  Result<std::int64_t> GetI64();
  Result<bool> GetBool();
  Result<double> GetF64();
  Result<Buffer> GetOpaque();
  Result<std::string> GetString();

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(std::size_t n) const;
  void SkipPad();

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dstampede::marshal
