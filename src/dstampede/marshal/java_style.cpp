#include "dstampede/marshal/java_style.hpp"

#include <cstring>

namespace dstampede::marshal {
namespace javaish {

void BoxedU32::WriteTo(Buffer& out) const {
  // Byte-at-a-time, as DataOutputStream.writeInt does.
  out.push_back(static_cast<std::uint8_t>(value_ >> 24));
  out.push_back(static_cast<std::uint8_t>(value_ >> 16));
  out.push_back(static_cast<std::uint8_t>(value_ >> 8));
  out.push_back(static_cast<std::uint8_t>(value_));
}

void BoxedU64::WriteTo(Buffer& out) const {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(value_ >> shift));
  }
}

void BoxedF64::WriteTo(Buffer& out) const {
  std::uint64_t bits;
  std::memcpy(&bits, &value_, sizeof bits);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(bits >> shift));
  }
}

BoxedOpaque::BoxedOpaque(std::span<const std::uint8_t> data) {
  // First copy: payload into the boxed array, element by element (the
  // object-stream staging a JVM client performs).
  bytes_.reserve(data.size());
  for (std::uint8_t b : data) bytes_.push_back(b);
}

std::size_t BoxedOpaque::EncodedSize() const {
  std::size_t n = 4 + bytes_.size();
  while (n % 4 != 0) ++n;
  return n;
}

void BoxedOpaque::WriteTo(Buffer& out) const {
  const auto len = static_cast<std::uint32_t>(bytes_.size());
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  // Second copy: byte at a time into the stream.
  for (std::uint8_t b : bytes_) out.push_back(b);
  while (out.size() % 4 != 0) out.push_back(0);
}

}  // namespace javaish

void JavaStyleEncoder::PutU32(std::uint32_t v) {
  fields_.push_back(std::make_unique<javaish::BoxedU32>(v));
}
void JavaStyleEncoder::PutU64(std::uint64_t v) {
  fields_.push_back(std::make_unique<javaish::BoxedU64>(v));
}
void JavaStyleEncoder::PutF64(double v) {
  fields_.push_back(std::make_unique<javaish::BoxedF64>(v));
}
void JavaStyleEncoder::PutOpaque(std::span<const std::uint8_t> data) {
  fields_.push_back(std::make_unique<javaish::BoxedOpaque>(data));
}
void JavaStyleEncoder::PutString(std::string_view s) {
  PutOpaque(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::size_t JavaStyleEncoder::size() const {
  std::size_t n = 0;
  for (const auto& f : fields_) n += f->EncodedSize();
  return n;
}

Buffer JavaStyleEncoder::Take() {
  Buffer out;
  // A JVM's ByteArrayOutputStream grows geometrically from a small
  // default; we mimic that by not pre-reserving.
  for (const auto& f : fields_) f->WriteTo(out);
  fields_.clear();
  return out;
}

Status JavaStyleDecoder::Need(std::size_t n) const {
  if (remaining() < n) return InternalError("java-style underrun");
  return OkStatus();
}

void JavaStyleDecoder::SkipPad() {
  while (pos_ % 4 != 0 && pos_ < data_.size()) ++pos_;
}

Result<std::uint32_t> JavaStyleDecoder::GetU32() {
  DS_RETURN_IF_ERROR(Need(4));
  // Reconstruct through a boxed object, as readObject would.
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  auto boxed = std::make_unique<javaish::BoxedU32>(v);
  (void)boxed;
  return v;
}

Result<std::int32_t> JavaStyleDecoder::GetI32() {
  DS_ASSIGN_OR_RETURN(std::uint32_t v, GetU32());
  return static_cast<std::int32_t>(v);
}

Result<std::uint64_t> JavaStyleDecoder::GetU64() {
  DS_ASSIGN_OR_RETURN(std::uint32_t hi, GetU32());
  DS_ASSIGN_OR_RETURN(std::uint32_t lo, GetU32());
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

Result<std::int64_t> JavaStyleDecoder::GetI64() {
  DS_ASSIGN_OR_RETURN(std::uint64_t v, GetU64());
  return static_cast<std::int64_t>(v);
}

Result<bool> JavaStyleDecoder::GetBool() {
  DS_ASSIGN_OR_RETURN(std::uint32_t v, GetU32());
  return v != 0;
}

Result<double> JavaStyleDecoder::GetF64() {
  DS_ASSIGN_OR_RETURN(std::uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Result<Buffer> JavaStyleDecoder::GetOpaque() {
  DS_ASSIGN_OR_RETURN(std::uint32_t n, GetU32());
  DS_RETURN_IF_ERROR(Need(n));
  // Copy 1: stream → boxed byte array, element by element.
  std::vector<std::uint8_t> staged;
  staged.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) staged.push_back(data_[pos_ + i]);
  pos_ += n;
  SkipPad();
  // Copy 2: boxed array → caller's buffer.
  Buffer out;
  out.reserve(staged.size());
  for (std::uint8_t b : staged) out.push_back(b);
  return out;
}

Result<std::string> JavaStyleDecoder::GetString() {
  DS_ASSIGN_OR_RETURN(Buffer raw, GetOpaque());
  return std::string(raw.begin(), raw.end());
}

}  // namespace dstampede::marshal
