#include "dstampede/sim/sim.hpp"

#include <cstdio>
#include <cstdlib>

namespace dstampede::sim {

std::uint64_t SimController::SeedFromEnv(std::uint64_t fallback) {
  const char* e = std::getenv("DSTAMPEDE_SIM_SEED");
  if (e == nullptr || e[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(e, &end, 10);
  if (end == e) return fallback;
  return static_cast<std::uint64_t>(v);
}

SimController::SimController(std::uint64_t seed) : seed_(seed), rng_(seed) {
  clock_.Install();
  Record("sim.start seed=" + std::to_string(seed_));
}

SimController::~SimController() { clock_.Uninstall(); }

Duration SimController::UniformDuration(Duration lo, Duration hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>((hi - lo).count());
  return lo + Duration(static_cast<Duration::rep>(rng_() % (span + 1)));
}

std::uint64_t SimController::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  if (hi <= lo) return lo;
  return lo + rng_() % (hi - lo + 1);
}

void SimController::RunFor(Duration d) {
  Record("sim.run_for us=" + std::to_string(ToMicros(d)));
  // Coarse driving: a 50-space cluster registers periodic timers every
  // couple of virtual milliseconds, and RunFor has no completion
  // predicate whose latency could suffer from 10ms of coalescing.
  clock_.AdvanceUntilQuiescent(d, [] { return false; }, Millis(50),
                               Micros(200), Millis(10));
}

bool SimController::RunUntil(const std::function<bool()>& done,
                             Duration horizon) {
  Record("sim.run_until horizon_us=" + std::to_string(ToMicros(horizon)));
  // Mild coalescing: `done` is re-checked every step, so the predicate
  // is detected at worst ~5 virtual ms later than the exact-deadline
  // stepping would — while dense cluster timers cost 10x less wall.
  clock_.AdvanceUntilQuiescent(horizon, done, Millis(50), Micros(200),
                               Millis(5));
  const bool ok = done();
  Record(ok ? "sim.run_until done" : "sim.run_until horizon");
  return ok;
}

void SimController::Record(std::string event) {
  trace_.push_back(std::move(event));
}

std::uint64_t SimController::TraceHash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ull;
  };
  for (const std::string& e : trace_) {
    for (char c : e) mix(static_cast<unsigned char>(c));
    mix('\n');
  }
  return h;
}

std::string SimController::TraceDump() const {
  std::string out;
  for (const std::string& e : trace_) {
    out += e;
    out += '\n';
  }
  return out;
}

}  // namespace dstampede::sim
