// Deterministic simulation controller.
//
// SimController ties the clock seam (common/clock.hpp) and the modeled
// network (clf/fault_injector.hpp) into one reproducible harness: it
// owns the seed, installs a VirtualClock for its lifetime, derives
// every random choice a scenario makes from one seeded RNG, and
// records an event trace whose hash proves that two runs with the same
// seed made byte-for-byte identical decisions.
//
// Determinism contract: the trace records *scenario-driver* events
// only — schedule generation, explicit time advancement, scripted
// faults — all of which happen on the single scenario thread as pure
// functions of the seed. It deliberately does NOT record events from
// runtime worker threads (packet arrivals, retransmissions), whose
// interleaving the OS scheduler owns; the runtime's correctness under
// any such interleaving is exactly what the scenarios assert. Same
// seed => same schedule, same virtual timeline, same fault sequence,
// same trace hash. See docs/SIMULATION.md.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "dstampede/common/clock.hpp"

namespace dstampede::sim {

class SimController {
 public:
  // Seeds from DSTAMPEDE_SIM_SEED when set (the reproduction
  // workflow), otherwise `fallback`.
  static std::uint64_t SeedFromEnv(std::uint64_t fallback);

  // Installs a VirtualClock (starting at real now) for the controller's
  // lifetime. One controller at a time per process.
  explicit SimController(std::uint64_t seed);
  ~SimController();

  SimController(const SimController&) = delete;
  SimController& operator=(const SimController&) = delete;

  std::uint64_t seed() const { return seed_; }
  VirtualClock& clock() { return clock_; }
  TimePoint Now() const { return clock_.Now(); }

  // --- seeded randomness (single scenario thread only) ----------------
  std::mt19937_64& rng() { return rng_; }
  std::uint64_t NextU64() { return rng_(); }
  // Uniform in [0, 1).
  double NextUnit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  }
  bool Chance(double p) { return p > 0.0 && NextUnit() < p; }
  Duration UniformDuration(Duration lo, Duration hi);
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi);  // inclusive

  // --- time advancement ------------------------------------------------
  // Advances virtual time by `d`, stepping deadline-to-deadline so
  // timers fire in order and runtime threads get real time to react.
  // Records one trace event (the advancement, not what the runtime did
  // during it — see the determinism contract above).
  void RunFor(Duration d);
  // Advances until `done` returns true or `horizon` virtual time has
  // elapsed. Returns true iff `done` held before the horizon.
  bool RunUntil(const std::function<bool()>& done, Duration horizon);

  // --- event trace -----------------------------------------------------
  // Appends a scenario-driver event. Only call from the scenario
  // thread with seed-derived (or constant) strings.
  void Record(std::string event);
  const std::vector<std::string>& trace() const { return trace_; }
  // FNV-1a over the concatenated trace (with separators): equal across
  // same-seed runs, distinct across different schedules.
  std::uint64_t TraceHash() const;
  // The full trace, one event per line, for failure diagnostics.
  std::string TraceDump() const;

 private:
  const std::uint64_t seed_;
  std::mt19937_64 rng_;
  VirtualClock clock_;
  std::vector<std::string> trace_;
};

}  // namespace dstampede::sim
