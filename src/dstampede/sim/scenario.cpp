#include "dstampede/sim/scenario.hpp"

#include <algorithm>
#include <cstdio>

namespace dstampede::sim {

std::string FaultEvent::ToString() const {
  const char* name = "?";
  switch (kind) {
    case Kind::kPartition:      name = "partition"; break;
    case Kind::kHeal:           name = "heal"; break;
    case Kind::kDegradeLink:    name = "degrade"; break;
    case Kind::kRestoreLink:    name = "restore"; break;
    case Kind::kKillConnection: name = "kill_conn"; break;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "at_us=%lld %s a=%u b=%u latency_us=%lld loss=%.3f",
                static_cast<long long>(ToMicros(at)), name, space_a, space_b,
                static_cast<long long>(ToMicros(latency)), loss);
  return buf;
}

FaultSchedule GenerateSchedule(std::mt19937_64& rng,
                               const ScheduleParams& params) {
  FaultSchedule schedule;
  if (params.num_spaces < 2 || params.num_events == 0) return schedule;

  auto uniform_offset = [&rng, &params]() {
    const auto span = static_cast<std::uint64_t>(params.horizon.count());
    return Duration(static_cast<Duration::rep>(rng() % (span + 1)));
  };
  auto pick_pair = [&rng, &params](std::uint32_t& a, std::uint32_t& b) {
    a = static_cast<std::uint32_t>(rng() % params.num_spaces);
    b = static_cast<std::uint32_t>(rng() % (params.num_spaces - 1));
    if (b >= a) ++b;  // distinct
  };

  const double total = params.partition_weight + params.degrade_weight +
                       params.kill_weight;
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t i = 0; i < params.num_events; ++i) {
    FaultEvent ev;
    ev.at = uniform_offset();
    const double roll = unit(rng) * (total > 0 ? total : 1.0);
    if (roll < params.partition_weight) {
      ev.kind = FaultEvent::Kind::kPartition;
      pick_pair(ev.space_a, ev.space_b);
      schedule.push_back(ev);
      // Pair every partition with a heal later in the horizon so the
      // schedule itself can't leave the cluster permanently split.
      FaultEvent heal;
      heal.kind = FaultEvent::Kind::kHeal;
      heal.space_a = ev.space_a;
      heal.space_b = ev.space_b;
      const Duration rest = params.horizon - ev.at;
      heal.at = ev.at + Duration(static_cast<Duration::rep>(
                            rng() % (static_cast<std::uint64_t>(rest.count()) +
                                     1)));
      schedule.push_back(heal);
    } else if (roll < params.partition_weight + params.degrade_weight) {
      ev.kind = FaultEvent::Kind::kDegradeLink;
      pick_pair(ev.space_a, ev.space_b);
      // 1..50ms extra latency, 0..20% loss — a credible bad WAN hop.
      ev.latency = Millis(1 + static_cast<std::int64_t>(rng() % 50));
      ev.loss = 0.2 * unit(rng);
      schedule.push_back(ev);
      FaultEvent restore;
      restore.kind = FaultEvent::Kind::kRestoreLink;
      restore.space_a = ev.space_a;
      restore.space_b = ev.space_b;
      const Duration rest = params.horizon - ev.at;
      restore.at =
          ev.at + Duration(static_cast<Duration::rep>(
                      rng() % (static_cast<std::uint64_t>(rest.count()) + 1)));
      schedule.push_back(restore);
    } else {
      ev.kind = FaultEvent::Kind::kKillConnection;
      ev.space_a = static_cast<std::uint32_t>(rng() % params.num_spaces);
      schedule.push_back(ev);
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

std::string ScheduleToString(const FaultSchedule& schedule) {
  std::string out;
  for (const FaultEvent& ev : schedule) {
    out += ev.ToString();
    out += '\n';
  }
  return out;
}

FaultSchedule ShrinkSchedule(
    const FaultSchedule& schedule,
    const std::function<bool(const FaultSchedule&)>& fails) {
  FaultSchedule current = schedule;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t chunk =
        std::max<std::size_t>(1, current.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < current.size(); start += chunk) {
      // Candidate: current minus [start, start+chunk).
      FaultSchedule candidate;
      candidate.reserve(current.size());
      for (std::size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(current[i]);
      }
      if (candidate.size() < current.size() && fails(candidate)) {
        current = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // minimal at single-event granularity
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return current;
}

}  // namespace dstampede::sim
