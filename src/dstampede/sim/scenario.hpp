// Seed-derived fault schedules for the scenario swarm, plus the
// failing-seed shrinker.
//
// A scenario's faults (partitions, heals, connection kills, link
// degradations) are generated up front as a FaultSchedule — a pure
// function of the seed — then applied by advancing virtual time to
// each event's offset. Because the schedule is data, a failing seed
// can be *shrunk*: ddmin-style bisection re-runs the scenario with
// subsets of the schedule and reports the smallest subset that still
// fails, which is usually one or two events instead of dozens.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "dstampede/common/clock.hpp"

namespace dstampede::sim {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kPartition = 0,      // cut space a -> b (directed)
    kHeal = 1,           // restore a -> b
    kDegradeLink = 2,    // set a slow/lossy profile on a -> b
    kRestoreLink = 3,    // clear the profile on a -> b
    kKillConnection = 4  // arm one TCP-edge kill on space a
  };

  Duration at = Duration::zero();  // offset from scenario start
  Kind kind = Kind::kPartition;
  std::uint32_t space_a = 0;
  std::uint32_t space_b = 0;
  // kDegradeLink parameters (ignored otherwise).
  Duration latency = Duration::zero();
  double loss = 0.0;

  std::string ToString() const;
};

using FaultSchedule = std::vector<FaultEvent>;

struct ScheduleParams {
  std::uint32_t num_spaces = 2;
  std::size_t num_events = 8;
  Duration horizon = Millis(2000);  // events land in [0, horizon)
  // Relative likelihood of each kind; kHeal events are paired with a
  // preceding partition on the same link when possible.
  double partition_weight = 0.5;
  double degrade_weight = 0.3;
  double kill_weight = 0.2;
};

// Deterministic: same rng state + params => same schedule. Events come
// back sorted by offset. Partitions are eventually healed (a matching
// kHeal is appended within the horizon) so schedules don't strand the
// cluster by construction; a *cascade* still happens while windows
// overlap.
FaultSchedule GenerateSchedule(std::mt19937_64& rng,
                               const ScheduleParams& params);

// One event per line, for trace recording and failure diagnostics.
std::string ScheduleToString(const FaultSchedule& schedule);

// ddmin-style shrink: returns a minimal (not necessarily unique)
// subsequence of `schedule` for which `fails` still returns true.
// `fails(schedule)` must re-run the scenario from scratch with the
// given schedule. Call only when the full schedule is known to fail;
// returns the input unchanged if no smaller subset reproduces.
FaultSchedule ShrinkSchedule(
    const FaultSchedule& schedule,
    const std::function<bool(const FaultSchedule&)>& fails);

}  // namespace dstampede::sim
