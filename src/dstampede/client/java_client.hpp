// The Java client library personality (paper §3.2.1).
//
// Same wire protocol and API as CClient, but all marshalling and
// unmarshalling runs through the object-stream codec: boxed objects per
// field, byte-at-a-time double copies of payloads, no pre-sizing — the
// cost model of a 2002 JVM client library (see DESIGN.md substitution
// table and Experiment 3).
#pragma once

#include "dstampede/client/client.hpp"

namespace dstampede::client {

using JavaStyleClient = BasicClient<JavaCodec>;

}  // namespace dstampede::client
