// Member definitions for BasicClient<Codec>. Included by client.cpp
// and java_client.cpp, which explicitly instantiate the C and Java
// personalities (client code includes client.hpp only).
#pragma once

#include <algorithm>
#include <thread>

#include "dstampede/client/client.hpp"

namespace dstampede::client {

template <typename Codec>
Result<std::unique_ptr<BasicClient<Codec>>> BasicClient<Codec>::Join(
    const Options& options) {
  auto client = std::unique_ptr<BasicClient>(new BasicClient());
  client->options_ = options;
  {
    ds::MutexLock lock(client->mu_);
    DS_ASSIGN_OR_RETURN(client->conn_,
                        transport::TcpConnection::Connect(options.server));
  }

  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, static_cast<core::Op>(ClientOp::kHello),
                            client->NextId());
  HelloReq hello;
  hello.client_kind = Codec::kKind;
  hello.name = options.name;
  hello.preferred_as = options.preferred_as;
  hello.Encode(enc);

  DS_ASSIGN_OR_RETURN(
      ParsedReply parsed,
      client->CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) return parsed.status;
  DS_ASSIGN_OR_RETURN(std::uint32_t host, dec.GetU32());
  DS_ASSIGN_OR_RETURN(client->session_id_, dec.GetU64());
  client->host_as_ = static_cast<AsId>(host);
  DS_ASSIGN_OR_RETURN(auto notices, DecodeNoticeTrailerT(dec));
  client->DispatchNotices(notices);
  if (options.reconnect.enabled) {
    // Best effort: prime the failover-target cache. The session works
    // fine without it (the join address is always retried first).
    (void)client->RefreshListenerCache();
  }
  return client;
}

template <typename Codec>
BasicClient<Codec>::~BasicClient() {
  // Best effort clean leave; a vanished client parks its surrogate.
  (void)Leave();
}

template <typename Codec>
Result<Buffer> BasicClient<Codec>::Call(Buffer request, Deadline deadline) {
  std::vector<core::GcNotice> deferred;
  Result<Buffer> reply = [&]() -> Result<Buffer> {
    ds::MutexLock lock(mu_);
    return CallLocked(std::move(request), deadline, deferred);
  }();
  // Notices from Resume replies run only now, with mu_ released, so a
  // handler that re-enters the client cannot deadlock.
  DispatchNotices(deferred);
  return reply;
}

template <typename Codec>
Result<Buffer> BasicClient<Codec>::CallLocked(
    Buffer request, Deadline deadline, std::vector<core::GcNotice>& deferred) {
  const Deadline wait =
      deadline.infinite()
          ? deadline
          : Deadline::After(deadline.remaining() + Millis(5000));
  if (left_) return ConnectionClosedError("client left the computation");
  ++calls_made_;

  // Peek the request's op and per-call ticket. Both codecs emit
  // byte-identical octets, so the XDR decoder reads either personality.
  marshal::XdrDecoder peek(request);
  auto hdr = core::DecodeRequestHeader(peek);
  const std::uint64_t call_id = hdr.ok() ? hdr->request_id : 0;
  const bool session_op =
      hdr.ok() && static_cast<std::uint32_t>(hdr->op) >=
                      static_cast<std::uint32_t>(ClientOp::kHello);
  // Hello/Bye/Resume are never replayed: retrying a teardown (or a
  // handshake) through a reconnect would deadlock or fork the session.
  const bool can_retry = options_.reconnect.enabled && hdr.ok() && !session_op;

  if (options_.trace_calls && hdr.ok() && !session_op &&
      !hdr->trace.sampled()) {
    // Splice a trace context into the already-encoded frame: rebuild
    // the 12-byte [op][request_id] header with kTraceFlag set, insert
    // the context, keep the op fields verbatim. Both codecs emit
    // byte-identical octets, so an XDR splice serves either
    // personality.
    trace::TraceContext ctx = trace::CurrentContext();
    if (!ctx.sampled()) {
      ctx = trace::TraceContext{trace::NewId(), trace::NewId(),
                                trace::TraceContext::kSampled};
    }
    marshal::XdrEncoder spliced;
    spliced.PutU32(static_cast<std::uint32_t>(hdr->op) | core::kTraceFlag);
    spliced.PutU64(hdr->request_id);
    spliced.PutU64(ctx.trace_id);
    spliced.PutU64(ctx.span_id);
    spliced.PutU32(ctx.flags);
    Buffer traced = spliced.Take();
    traced.insert(traced.end(), request.begin() + 12, request.end());
    request = std::move(traced);
    last_trace_id_ = ctx.trace_id;
  }

  for (std::uint32_t attempt = 0;; ++attempt) {
    if (attempt > 0) ++replays_;
    Status s = conn_.SendFrame(request);
    Buffer reply;
    if (s.ok()) {
      for (;;) {
        s = conn_.RecvFrame(reply, wait);
        if (!s.ok()) break;
        marshal::XdrDecoder rpeek(reply);
        auto rhdr = core::DecodeRequestHeader(rpeek);
        if (!rhdr.ok()) {
          // Framing desync — unsafe to keep using this connection.
          s = ConnectionClosedError("malformed reply frame");
          break;
        }
        // A reply to an earlier ticket can arrive if a previous call
        // timed out client-side but executed server-side; skip it.
        if (call_id != 0 && rhdr->request_id != call_id) continue;
        break;
      }
    }
    if (s.ok()) {
      last_acked_id_ = call_id;
      return reply;
    }
    // Retry only when the transport is gone; a kTimeout from a live
    // surrogate (e.g. a blocking Get that ran out of time) must surface
    // as-is — replaying it could block for another full deadline.
    const bool transport_lost = s.code() == StatusCode::kConnectionClosed ||
                                s.code() == StatusCode::kUnavailable ||
                                s.code() == StatusCode::kInternal;
    if (!can_retry || !transport_lost) return s;
    DS_RETURN_IF_ERROR(ReconnectLocked(deferred));
  }
}

template <typename Codec>
Status BasicClient<Codec>::ReconnectLocked(
    std::vector<core::GcNotice>& deferred) {
  conn_.Close();
  const ReconnectPolicy& policy = options_.reconnect;
  const Deadline give_up = Deadline::After(policy.give_up_after);
  // The shared ReconnectBackoff helper *is* the production schedule
  // (the sim's reconnect-storm scenario instantiates it directly);
  // seeding it from jitter_rng_ keeps this client's nap sequence
  // deterministic per session.
  ReconnectBackoff backoff(policy, jitter_rng_());
  Status last = UnavailableError("no reconnect candidates");
  for (;;) {
    for (const auto& addr : ReconnectCandidatesLocked()) {
      Status s = TryResumeLocked(addr, deferred);
      if (s.ok()) {
        ++reconnects_;
        // Re-resolve the failover targets through the surviving name
        // service: whatever killed the old connection (host death, a
        // migrated listener) has likely also changed the advertised
        // set, and the copy cached at Join would go stale forever.
        (void)RefreshListenerCacheLocked(deferred);
        return OkStatus();
      }
      if (s.code() == StatusCode::kNotFound) {
        // The cluster says this session no longer exists (reaped or
        // left); no listener can bring it back, so stop trying.
        left_ = true;
        return ConnectionClosedError("session lost: " + s.message());
      }
      last = s;
    }
    if (give_up.expired()) {
      return UnavailableError("reconnect gave up: " + last.message());
    }
    dstampede::SleepFor(backoff.NextNap());
  }
}

template <typename Codec>
Status BasicClient<Codec>::TryResumeLocked(
    const transport::SockAddr& addr, std::vector<core::GcNotice>& deferred) {
  auto connected =
      transport::TcpConnection::Connect(addr, Deadline::AfterMillis(1000));
  if (!connected.ok()) return connected.status();

  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, static_cast<core::Op>(ClientOp::kResume),
                            NextId());
  ResumeReq req;
  req.client_kind = Codec::kKind;
  req.session_id = session_id_;
  req.last_acked_ticket = last_acked_id_;
  req.preferred_as = options_.preferred_as;
  req.Encode(enc);
  DS_RETURN_IF_ERROR(connected->SendFrame(enc.Take()));
  Buffer reply;
  DS_RETURN_IF_ERROR(connected->RecvFrame(reply, Deadline::AfterMillis(2000)));

  typename Codec::Decoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeaderT(dec));
  if (!hdr.status.ok()) return hdr.status;
  DS_ASSIGN_OR_RETURN(ResumeResp resp, DecodeResumeRespT(dec));
  auto notices = DecodeNoticeTrailerT(dec);

  conn_ = std::move(connected).value();
  host_as_ = static_cast<AsId>(resp.host_as);
  // Deferred to Call's post-unlock dispatch: a handler may re-enter the
  // client, which would deadlock on the non-recursive mu_ held here.
  if (notices.ok()) {
    deferred.insert(deferred.end(), notices->begin(), notices->end());
  }
  return OkStatus();
}

template <typename Codec>
std::vector<transport::SockAddr>
BasicClient<Codec>::ReconnectCandidatesLocked() const {
  std::vector<transport::SockAddr> out;
  auto add = [&out](const transport::SockAddr& addr) {
    if (addr.port == 0) return;
    for (const auto& seen : out) {
      if (seen == addr) return;
    }
    out.push_back(addr);
  };
  add(options_.server);
  for (const auto& addr : options_.alternate_servers) add(addr);
  for (const auto& addr : listener_cache_) add(addr);
  return out;
}

template <typename Codec>
Status BasicClient<Codec>::RefreshListenerCache() {
  std::vector<core::GcNotice> deferred;
  Status s = [&] {
    ds::MutexLock lock(mu_);
    return RefreshListenerCacheLocked(deferred);
  }();
  DispatchNotices(deferred);
  return s;
}

template <typename Codec>
Status BasicClient<Codec>::RefreshListenerCacheLocked(
    std::vector<core::GcNotice>& deferred) {
  typename Codec::Encoder enc;
  // Request id 0 = untracked read: this refresh may run between a
  // resume and the replay of the in-flight call, and a real ticket
  // would evict the surrogate's cached reply that the replay needs.
  core::EncodeRequestHeader(enc, core::Op::kNsList, 0);
  core::NsLookupReq req;
  req.name = "sys/listener/";
  req.Encode(enc);
  DS_RETURN_IF_ERROR(conn_.SendFrame(enc.Take()));
  Buffer reply;
  DS_RETURN_IF_ERROR(conn_.RecvFrame(reply, Deadline::AfterMillis(2000)));
  typename Codec::Decoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeaderT(dec));
  if (!hdr.status.ok()) return hdr.status;
  DS_ASSIGN_OR_RETURN(std::uint32_t count, dec.GetU32());
  std::vector<transport::SockAddr> fresh;
  fresh.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DS_ASSIGN_OR_RETURN(core::NsEntry entry, DecodeNsEntryT(dec));
    // The listener advertises its full address in the entry's meta;
    // entries without one (foreign registrations under the prefix)
    // fall back to loopback plus the port carried in id_bits.
    auto addr = transport::SockAddr::FromString(entry.meta);
    if (addr.ok() && addr->ip_host_order != 0 && addr->port != 0) {
      fresh.push_back(*addr);
    } else {
      fresh.push_back(transport::SockAddr::Loopback(
          static_cast<std::uint16_t>(entry.id_bits)));
    }
  }
  auto notices = DecodeNoticeTrailerT(dec);
  if (notices.ok()) {
    deferred.insert(deferred.end(), notices->begin(), notices->end());
  }
  listener_cache_ = std::move(fresh);
  return OkStatus();
}

template <typename Codec>
Result<typename BasicClient<Codec>::ParsedReply>
BasicClient<Codec>::CallAndParse(Buffer request, Deadline deadline) {
  DS_ASSIGN_OR_RETURN(Buffer frame, Call(std::move(request), deadline));
  typename Codec::Decoder dec(frame);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeaderT(dec));
  ParsedReply parsed;
  parsed.status = hdr.status;
  parsed.payload_offset = frame.size() - dec.remaining();
  parsed.frame = std::move(frame);
  return parsed;
}

template <typename Codec>
void BasicClient<Codec>::DispatchNotices(
    const std::vector<core::GcNotice>& notices) {
  if (notices.empty()) return;
  std::vector<std::pair<GcNoticeHandler, core::GcNotice>> to_run;
  {
    ds::MutexLock lock(handlers_mu_);
    notices_received_ += notices.size();
    for (const auto& notice : notices) {
      auto it = gc_handlers_.find(notice.container_bits);
      if (it != gc_handlers_.end()) to_run.emplace_back(it->second, notice);
    }
  }
  for (auto& [handler, notice] : to_run) handler(notice);
}

namespace internal {
// Parses the gc-notice trailer and hands the notices back; every reply
// parse must end with this so no reclamation information is dropped.
template <typename Dec>
Result<std::vector<core::GcNotice>> TakeTrailer(Dec& dec) {
  return DecodeNoticeTrailerT(dec);
}
}  // namespace internal

#define DS_CLIENT_FINISH(dec)                                  \
  do {                                                         \
    auto ds_trailer_ = internal::TakeTrailer(dec);             \
    if (ds_trailer_.ok()) DispatchNotices(*ds_trailer_);       \
  } while (false)

template <typename Codec>
Result<ChannelId> BasicClient<Codec>::CreateChannel(
    const core::ChannelAttr& attr) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kCreateChannel, NextId());
  core::CreateReq req;
  req.capacity = attr.capacity_items;
  req.debug_name = attr.debug_name;
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) {
    DS_CLIENT_FINISH(dec);
    return parsed.status;
  }
  DS_ASSIGN_OR_RETURN(std::uint64_t bits, dec.GetU64());
  DS_CLIENT_FINISH(dec);
  return ChannelId::FromBits(bits);
}

template <typename Codec>
Result<QueueId> BasicClient<Codec>::CreateQueue(const core::QueueAttr& attr) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kCreateQueue, NextId());
  core::CreateReq req;
  req.capacity = attr.capacity_items;
  req.debug_name = attr.debug_name;
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) {
    DS_CLIENT_FINISH(dec);
    return parsed.status;
  }
  DS_ASSIGN_OR_RETURN(std::uint64_t bits, dec.GetU64());
  DS_CLIENT_FINISH(dec);
  return QueueId::FromBits(bits);
}

template <typename Codec>
Result<core::Connection> BasicClient<Codec>::Connect(ChannelId ch,
                                                     core::ConnMode mode,
                                                     std::string label) {
  if (label.empty()) label = "device-session-" + std::to_string(session_id_);
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kAttach, NextId());
  core::AttachReq req;
  req.container_bits = ch.bits();
  req.is_queue = false;
  req.mode = mode;
  req.label = std::move(label);
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) {
    DS_CLIENT_FINISH(dec);
    return parsed.status;
  }
  DS_ASSIGN_OR_RETURN(std::uint32_t slot, dec.GetU32());
  DS_CLIENT_FINISH(dec);
  return core::Connection(ch.bits(), false, mode, ch.owner(), slot);
}

template <typename Codec>
Result<core::Connection> BasicClient<Codec>::Connect(QueueId q,
                                                     core::ConnMode mode,
                                                     std::string label) {
  if (label.empty()) label = "device-session-" + std::to_string(session_id_);
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kAttach, NextId());
  core::AttachReq req;
  req.container_bits = q.bits();
  req.is_queue = true;
  req.mode = mode;
  req.label = std::move(label);
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) {
    DS_CLIENT_FINISH(dec);
    return parsed.status;
  }
  DS_ASSIGN_OR_RETURN(std::uint32_t slot, dec.GetU32());
  DS_CLIENT_FINISH(dec);
  return core::Connection(q.bits(), true, mode, q.owner(), slot);
}

template <typename Codec>
Status BasicClient<Codec>::Disconnect(const core::Connection& conn) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kDetach, NextId());
  core::DetachReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = conn.is_queue();
  req.slot = conn.slot();
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  DS_CLIENT_FINISH(dec);
  return parsed.status;
}

template <typename Codec>
Status BasicClient<Codec>::Put(const core::Connection& conn, Timestamp ts,
                               Buffer payload, Deadline deadline) {
  if (!CanOutput(conn.mode())) {
    return PermissionDeniedError("connection is input-only");
  }
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kPut, NextId());
  core::PutReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = conn.is_queue();
  req.mode = conn.mode();
  req.slot = conn.slot();
  req.ts = ts;
  req.deadline_ms = core::EncodeDeadline(deadline);
  req.payload = std::move(payload);
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), deadline));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  DS_CLIENT_FINISH(dec);
  return parsed.status;
}

template <typename Codec>
Result<core::ItemView> BasicClient<Codec>::Get(const core::Connection& conn,
                                               core::GetSpec spec,
                                               Deadline deadline) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kGet, NextId());
  core::GetReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = conn.is_queue();
  req.mode = conn.mode();
  req.slot = conn.slot();
  req.spec = spec;
  req.deadline_ms = core::EncodeDeadline(deadline);
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), deadline));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) {
    DS_CLIENT_FINISH(dec);
    return parsed.status;
  }
  core::ItemView view;
  DS_ASSIGN_OR_RETURN(view.timestamp, dec.GetI64());
  DS_ASSIGN_OR_RETURN(Buffer payload, dec.GetOpaque());
  view.payload = SharedBuffer(std::move(payload));
  DS_CLIENT_FINISH(dec);
  return view;
}

template <typename Codec>
Result<core::ItemView> BasicClient<Codec>::Get(const core::Connection& conn,
                                               Deadline deadline) {
  return Get(conn, core::GetSpec::Oldest(), deadline);
}

template <typename Codec>
Status BasicClient<Codec>::Consume(const core::Connection& conn, Timestamp ts) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kConsume, NextId());
  core::ConsumeReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = conn.is_queue();
  req.mode = conn.mode();
  req.slot = conn.slot();
  req.ts = ts;
  req.until = false;
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  DS_CLIENT_FINISH(dec);
  return parsed.status;
}

template <typename Codec>
Status BasicClient<Codec>::ConsumeUntil(const core::Connection& conn,
                                        Timestamp ts) {
  if (conn.is_queue()) {
    return InvalidArgumentError("consume-until is channel-only");
  }
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kConsume, NextId());
  core::ConsumeReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = false;
  req.mode = conn.mode();
  req.slot = conn.slot();
  req.ts = ts;
  req.until = true;
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  DS_CLIENT_FINISH(dec);
  return parsed.status;
}

template <typename Codec>
Status BasicClient<Codec>::SetFilter(const core::Connection& conn,
                                     const core::ItemFilter& filter) {
  if (conn.is_queue()) return InvalidArgumentError("filters apply to channels");
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kSetFilter, NextId());
  core::SetFilterReq req;
  req.container_bits = conn.container_bits();
  req.slot = conn.slot();
  req.filter = filter;
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  DS_CLIENT_FINISH(dec);
  return parsed.status;
}

template <typename Codec>
Status BasicClient<Codec>::NsRegister(const core::NsEntry& entry) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kNsRegister, NextId());
  core::EncodeNsEntry(enc, entry);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  DS_CLIENT_FINISH(dec);
  return parsed.status;
}

template <typename Codec>
Status BasicClient<Codec>::NsUnregister(const std::string& name) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kNsUnregister, NextId());
  core::NsLookupReq req;
  req.name = name;
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  DS_CLIENT_FINISH(dec);
  return parsed.status;
}

template <typename Codec>
Result<core::NsEntry> BasicClient<Codec>::NsLookup(const std::string& name,
                                                   Deadline deadline) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kNsLookup, NextId());
  core::NsLookupReq req;
  req.name = name;
  req.deadline_ms = core::EncodeDeadline(deadline);
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed, CallAndParse(enc.Take(), deadline));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) {
    DS_CLIENT_FINISH(dec);
    return parsed.status;
  }
  DS_ASSIGN_OR_RETURN(core::NsEntry entry, DecodeNsEntryT(dec));
  DS_CLIENT_FINISH(dec);
  return entry;
}

template <typename Codec>
Result<std::vector<core::NsEntry>> BasicClient<Codec>::NsList(
    const std::string& prefix) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kNsList, NextId());
  core::NsLookupReq req;
  req.name = prefix;
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) {
    DS_CLIENT_FINISH(dec);
    return parsed.status;
  }
  DS_ASSIGN_OR_RETURN(std::uint32_t count, dec.GetU32());
  std::vector<core::NsEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DS_ASSIGN_OR_RETURN(core::NsEntry entry, DecodeNsEntryT(dec));
    out.push_back(std::move(entry));
  }
  DS_CLIENT_FINISH(dec);
  return out;
}

template <typename Codec>
Result<std::string> BasicClient<Codec>::MetricsSnapshot(AsId target) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, core::Op::kMetrics, NextId());
  core::MetricsReq req;
  req.target_as = AsIndex(target);
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  if (!parsed.status.ok()) {
    DS_CLIENT_FINISH(dec);
    return parsed.status;
  }
  DS_ASSIGN_OR_RETURN(std::string snapshot, dec.GetString());
  DS_CLIENT_FINISH(dec);
  return snapshot;
}

template <typename Codec>
Status BasicClient<Codec>::SetGcHandler(std::uint64_t container_bits,
                                        bool is_queue,
                                        GcNoticeHandler handler) {
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(
      enc, static_cast<core::Op>(ClientOp::kSetGcInterest), NextId());
  SetGcInterestReq req;
  req.container_bits = container_bits;
  req.is_queue = is_queue;
  req.enable = handler != nullptr;
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(ParsedReply parsed,
                      CallAndParse(enc.Take(), Deadline::AfterMillis(10000)));
  typename Codec::Decoder dec(std::span<const std::uint8_t>(parsed.frame)
                                  .subspan(parsed.payload_offset));
  DS_CLIENT_FINISH(dec);
  if (parsed.status.ok()) {
    ds::MutexLock lock(handlers_mu_);
    if (handler) {
      gc_handlers_[container_bits] = std::move(handler);
    } else {
      gc_handlers_.erase(container_bits);
    }
  }
  return parsed.status;
}

template <typename Codec>
Status BasicClient<Codec>::Leave() {
  {
    ds::MutexLock lock(mu_);
    if (left_ || !conn_.valid()) return OkStatus();
  }
  typename Codec::Encoder enc;
  core::EncodeRequestHeader(enc, static_cast<core::Op>(ClientOp::kBye),
                            NextId());
  auto parsed = CallAndParse(enc.Take(), Deadline::AfterMillis(5000));
  ds::MutexLock lock(mu_);
  left_ = true;
  conn_.Close();
  return parsed.ok() ? parsed->status : parsed.status();
}

#undef DS_CLIENT_FINISH

}  // namespace dstampede::client
