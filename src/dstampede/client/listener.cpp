#include "dstampede/client/listener.hpp"

#include "dstampede/client/protocol.hpp"
#include "dstampede/common/logging.hpp"

namespace dstampede::client {

Result<std::unique_ptr<Listener>> Listener::Start(core::Runtime& runtime,
                                                  const Options& options) {
  auto listener = std::unique_ptr<Listener>(new Listener(runtime));
  listener->options_ = options;
  DS_ASSIGN_OR_RETURN(listener->listener_,
                      transport::TcpListener::Bind(options.port));
  listener->accept_thread_ =
      std::thread([raw = listener.get()] { raw->AcceptLoop(); });
  if (options.reap_parked_after > Duration::zero()) {
    listener->janitor_thread_ =
        std::thread([raw = listener.get()] { raw->JanitorLoop(); });
  }
  return listener;
}

Listener::~Listener() { Shutdown(); }

void Listener::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_.Accept(Deadline::AfterMillis(100));
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      break;  // listener socket closed
    }
    Handshake(std::move(conn).value());
  }
}

void Listener::Handshake(transport::TcpConnection conn) {
  // Read the Hello to learn which address space the device wants; the
  // surrogate must be bound before it can answer anything else.
  Buffer frame;
  if (!conn.RecvFrame(frame, Deadline::AfterMillis(5000)).ok()) return;

  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok() || static_cast<ClientOp>(hdr->op) != ClientOp::kHello) {
    DS_LOG(kWarn) << "join without hello; dropping device";
    return;
  }
  auto hello = HelloReq::Decode(dec);
  if (!hello.ok()) return;

  std::unique_ptr<Surrogate> surrogate;
  Surrogate* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t as_index;
    if (hello->preferred_as >= 0 &&
        static_cast<std::size_t>(hello->preferred_as) < runtime_.size()) {
      as_index = static_cast<std::size_t>(hello->preferred_as);
    } else {
      as_index = next_as_++ % runtime_.size();
    }
    surrogate = std::make_unique<Surrogate>(next_session_++,
                                            runtime_.as(as_index),
                                            std::move(conn));
    raw = surrogate.get();
    surrogates_.push_back(std::move(surrogate));
  }
  if (!raw->ServiceHello(frame).ok()) {
    raw->Stop();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  threads_.emplace_back([raw] { raw->Run(); });
}

std::size_t Listener::surrogates_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return surrogates_.size();
}

std::size_t Listener::surrogates_in(Surrogate::State state) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& surrogate : surrogates_) {
    if (surrogate->state() == state) ++n;
  }
  return n;
}

std::size_t Listener::ReapParked() {
  std::vector<Surrogate*> parked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& surrogate : surrogates_) {
      if (surrogate->state() == Surrogate::State::kParked) {
        parked.push_back(surrogate.get());
      }
    }
  }
  std::size_t reaped = 0;
  for (Surrogate* surrogate : parked) {
    if (surrogate->Reap().ok()) ++reaped;
  }
  return reaped;
}

void Listener::JanitorLoop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(Millis(10));
    std::vector<Surrogate*> expired;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const TimePoint cutoff = Now() - options_.reap_parked_after;
      for (auto& surrogate : surrogates_) {
        if (surrogate->state() == Surrogate::State::kParked &&
            surrogate->parked_since() <= cutoff) {
          expired.push_back(surrogate.get());
        }
      }
    }
    for (Surrogate* surrogate : expired) {
      (void)surrogate->Reap();
    }
  }
}

void Listener::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (janitor_thread_.joinable()) janitor_thread_.join();
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& surrogate : surrogates_) surrogate->Stop();
    to_join.swap(threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
}

}  // namespace dstampede::client
