#include "dstampede/client/listener.hpp"

#include "dstampede/client/protocol.hpp"
#include "dstampede/common/logging.hpp"
#include "dstampede/common/metrics.hpp"

namespace dstampede::client {

namespace {
constexpr std::size_t kNoLiveAs = static_cast<std::size_t>(-1);

void ReplyStatusAndClose(transport::TcpConnection& conn,
                         std::uint64_t request_id, const Status& status) {
  marshal::XdrEncoder enc;
  core::EncodeResponseHeader(enc, request_id, status);
  (void)conn.SendFrame(enc.Take());
  conn.Close();
}
}  // namespace

Result<std::unique_ptr<Listener>> Listener::Start(core::Runtime& runtime,
                                                  const Options& options) {
  auto listener = std::unique_ptr<Listener>(new Listener(runtime));
  listener->options_ = options;
  DS_ASSIGN_OR_RETURN(listener->listener_,
                      transport::TcpListener::Bind(options.port));
  const std::uint16_t bound_port = listener->listener_.bound_addr().port;
  // Session ids carry the bound port in their upper bits so sessions
  // stay unique across every listener of the application (a session
  // migrating between listeners keeps its id).
  {
    ds::MutexLock lock(listener->mu_);
    listener->next_session_ =
        (static_cast<std::uint64_t>(bound_port) << 32) | 1u;
  }
  // Advertise this listener in the name server so reconnecting clients
  // can discover failover targets. The full advertised address travels
  // in the meta field (id_bits carries the port alone and would force
  // clients to assume loopback). Ownership is preset to the name
  // server's own AS so the advertisement survives other spaces dying.
  listener->ns_name_ = "sys/listener/" + std::to_string(bound_port);
  {
    core::NsEntry entry;
    entry.name = listener->ns_name_;
    entry.kind = core::NsEntry::Kind::kOther;
    entry.id_bits = bound_port;
    entry.meta = listener->listener_.bound_addr().ToString();
    entry.owner_as = runtime.as(0).name_server_as();
    Status s = runtime.as(0).NsRegister(entry);
    if (!s.ok()) {
      DS_LOG(kWarn) << "listener advertisement failed: " << s;
      listener->ns_name_.clear();
    }
  }
  // Session health is visible through the AS-0 sys/metrics snapshot
  // alongside the space's own instruments.
  {
    metrics::Registry& reg = runtime.as(0).metrics_registry();
    Listener* raw = listener.get();
    listener->provider_tokens_ = {
        reg.AddProvider("listener.sessions_total",
                        [raw] {
                          return static_cast<std::int64_t>(
                              raw->surrogates_total());
                        }),
        reg.AddProvider("listener.sessions_parked",
                        [raw] {
                          return static_cast<std::int64_t>(
                              raw->surrogates_in(Surrogate::State::kParked));
                        }),
        reg.AddProvider("listener.sessions_resumed",
                        [raw] {
                          return static_cast<std::int64_t>(
                              raw->sessions_resumed());
                        }),
        reg.AddProvider("listener.sessions_migrated",
                        [raw] {
                          return static_cast<std::int64_t>(
                              raw->sessions_migrated());
                        }),
        reg.AddProvider("listener.run_threads",
                        [raw] {
                          return static_cast<std::int64_t>(raw->run_threads());
                        }),
    };
  }
  listener->accept_thread_ =
      Thread("listener", [raw = listener.get()] { raw->AcceptLoop(); });
  // The janitor always runs: it joins exited surrogate Run threads.
  // Reaping of long-parked surrogates stays opt-in via the option.
  listener->janitor_thread_ =
      Thread("listener.janitor", [raw = listener.get()] { raw->JanitorLoop(); });
  return listener;
}

Listener::~Listener() { Shutdown(); }

void Listener::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_.Accept(Deadline::AfterMillis(100));
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      break;  // listener socket closed
    }
    Handshake(std::move(conn).value());
  }
}

std::size_t Listener::PickLiveAs(std::int32_t preferred) {
  if (preferred >= 0 &&
      static_cast<std::size_t>(preferred) < runtime_.size() &&
      !runtime_.as(static_cast<std::size_t>(preferred)).stopped()) {
    return static_cast<std::size_t>(preferred);
  }
  for (std::size_t tried = 0; tried < runtime_.size(); ++tried) {
    const std::size_t i = next_as_++ % runtime_.size();
    if (!runtime_.as(i).stopped()) return i;
  }
  return kNoLiveAs;
}

void Listener::Handshake(transport::TcpConnection conn) {
  // Read the first frame to learn whether this is a fresh join (Hello)
  // or a session resumption (Resume); either way the surrogate must be
  // bound before it can answer anything else.
  Buffer frame;
  if (!conn.RecvFrame(frame, Deadline::AfterMillis(5000)).ok()) return;

  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok()) return;

  if (static_cast<ClientOp>(hdr->op) == ClientOp::kResume) {
    auto resume = ResumeReq::Decode(dec);
    if (!resume.ok()) return;
    HandleResume(std::move(conn), frame, resume->session_id,
                 resume->preferred_as);
    return;
  }

  if (static_cast<ClientOp>(hdr->op) != ClientOp::kHello) {
    DS_LOG(kWarn) << "join without hello; dropping device";
    return;
  }
  auto hello = HelloReq::Decode(dec);
  if (!hello.ok()) return;

  std::unique_ptr<Surrogate> surrogate;
  Surrogate* raw = nullptr;
  {
    ds::MutexLock lock(mu_);
    const std::size_t as_index = PickLiveAs(hello->preferred_as);
    if (as_index == kNoLiveAs) {
      ReplyStatusAndClose(conn, hdr->request_id,
                          UnavailableError("no live address space"));
      return;
    }
    surrogate = std::make_unique<Surrogate>(
        next_session_++, runtime_.as(as_index), std::move(conn),
        options_.edge_faults, options_.durable_sessions);
    raw = surrogate.get();
    surrogates_.push_back(std::move(surrogate));
  }
  if (!raw->ServiceHello(frame).ok()) {
    raw->Stop();
    return;
  }
  SpawnRun(raw);
}

void Listener::HandleResume(transport::TcpConnection conn,
                            const Buffer& frame, std::uint64_t session_id,
                            std::int32_t preferred_as) {
  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok()) return;

  // Fast path: the session's surrogate is here and its host is alive —
  // adopt the fresh connection in place (slots unchanged). Superseded
  // and departed surrogates (kReaped/kLeft) are tombstones that stay in
  // surrogates_ for the stats; matching one of them instead of the live
  // incarnation would re-migrate the session and supersede (then reap)
  // its actually-live surrogate, losing the registry record and the
  // cached-reply dedup.
  Surrogate* existing = nullptr;
  {
    ds::MutexLock lock(mu_);
    for (auto& s : surrogates_) {
      if (s->session_id() != session_id) continue;
      const Surrogate::State state = s->state();
      if (state == Surrogate::State::kReaped ||
          state == Surrogate::State::kLeft) {
        continue;
      }
      existing = s.get();
      break;
    }
  }
  if (existing && !existing->host_stopped()) {
    // The old Run thread may not have noticed the drop yet; nudge it
    // and wait for it to park.
    if (existing->state() == Surrogate::State::kActive) existing->Stop();
    const Deadline park_wait = Deadline::After(options_.resume_park_wait);
    while (existing->state() == Surrogate::State::kActive &&
           !park_wait.expired() && !stopping_.load()) {
      dstampede::SleepFor(Millis(2));
    }
    if (existing->state() == Surrogate::State::kParked &&
        existing->Adopt(std::move(conn)).ok()) {
      if (!existing->ServiceResume(frame).ok()) {
        existing->Stop();
        return;
      }
      sessions_resumed_.fetch_add(1, std::memory_order_relaxed);
      SpawnRun(existing);
      return;
    }
    if (existing->state() == Surrogate::State::kLeft ||
        existing->state() == Surrogate::State::kReaped) {
      ReplyStatusAndClose(conn, hdr->request_id,
                          NotFoundError("session ended"));
      return;
    }
    // Could not adopt (still active / raced); drop the connection and
    // let the client's backoff retry.
    return;
  }

  // Failover path: the original host died (or the session came from
  // another listener). Rehydrate from the session registry onto a live
  // address space.
  std::unique_ptr<Surrogate> surrogate;
  Surrogate* raw = nullptr;
  std::size_t as_index;
  {
    ds::MutexLock lock(mu_);
    as_index = PickLiveAs(preferred_as);
  }
  if (as_index == kNoLiveAs) {
    ReplyStatusAndClose(conn, hdr->request_id,
                        UnavailableError("no live address space"));
    return;
  }
  core::AddressSpace& live_as = runtime_.as(as_index);
  auto record = live_as.SessionGet(session_id);
  if (!record.ok()) {
    // kNotFound tells the client the session is unrecoverable; any
    // other failure (e.g. the name server is unreachable right now)
    // closes the link so the client's backoff retries.
    if (record.status().code() == StatusCode::kNotFound) {
      ReplyStatusAndClose(conn, hdr->request_id, record.status());
    }
    return;
  }
  // `existing` (if any) is the live predecessor this migration replaces
  // — never a tombstone, thanks to the scan above.
  if (existing) existing->MarkSuperseded();

  surrogate = std::make_unique<Surrogate>(session_id, live_as, std::move(conn),
                                          options_.edge_faults,
                                          options_.durable_sessions);
  raw = surrogate.get();
  if (!raw->Rehydrate(*record).ok() || !raw->ServiceResume(frame).ok()) {
    raw->Stop();
    return;  // surrogate is dropped; registry record remains for retry
  }
  sessions_migrated_.fetch_add(1, std::memory_order_relaxed);
  {
    ds::MutexLock lock(mu_);
    surrogates_.push_back(std::move(surrogate));
  }
  SpawnRun(raw);
}

void Listener::SpawnRun(Surrogate* surrogate) {
  auto done = std::make_shared<std::atomic<bool>>(false);
  Thread thread([surrogate, done] {
    surrogate->Run();
    done->store(true);
  });
  ds::MutexLock lock(mu_);
  threads_.push_back(RunThread{std::move(thread), std::move(done)});
}

std::size_t Listener::ReapFinishedThreads() {
  std::vector<Thread> finished;
  {
    ds::MutexLock lock(mu_);
    for (auto it = threads_.begin(); it != threads_.end();) {
      if (it->done->load()) {
        finished.push_back(std::move(it->thread));
        it = threads_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // The done flag is set as Run() returns, so these joins are at most a
  // thread-exit away from immediate.
  for (auto& t : finished) t.join();
  return finished.size();
}

std::size_t Listener::run_threads() const {
  ds::MutexLock lock(mu_);
  return threads_.size();
}

std::size_t Listener::surrogates_total() const {
  ds::MutexLock lock(mu_);
  return surrogates_.size();
}

std::size_t Listener::surrogates_in(Surrogate::State state) const {
  ds::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& surrogate : surrogates_) {
    if (surrogate->state() == state) ++n;
  }
  return n;
}

std::size_t Listener::ReapParked() {
  std::vector<Surrogate*> parked;
  {
    ds::MutexLock lock(mu_);
    for (auto& surrogate : surrogates_) {
      if (surrogate->state() == Surrogate::State::kParked) {
        parked.push_back(surrogate.get());
      }
    }
  }
  std::size_t reaped = 0;
  for (Surrogate* surrogate : parked) {
    if (surrogate->Reap().ok()) ++reaped;
  }
  return reaped;
}

void Listener::JanitorLoop() {
  while (!stopping_.load()) {
    {
      // Interruptible pacing: Shutdown() notifies so the janitor exits
      // promptly even when this deadline sits on a frozen VirtualClock.
      ds::MutexLock lock(janitor_mu_);
      if (stopping_.load()) break;
      (void)janitor_cv_.WaitUntil(janitor_mu_, Deadline::AfterMillis(10));
    }
    if (stopping_.load()) break;
    ReapFinishedThreads();
    if (options_.reap_parked_after <= Duration::zero()) continue;
    std::vector<Surrogate*> expired;
    {
      ds::MutexLock lock(mu_);
      const TimePoint cutoff = Now() - options_.reap_parked_after;
      for (auto& surrogate : surrogates_) {
        if (surrogate->state() == Surrogate::State::kParked &&
            surrogate->parked_since() <= cutoff) {
          expired.push_back(surrogate.get());
        }
      }
    }
    for (Surrogate* surrogate : expired) {
      (void)surrogate->Reap();
    }
  }
}

void Listener::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  {
    ds::MutexLock lock(janitor_mu_);
    janitor_cv_.NotifyAll();
  }
  for (std::uint64_t token : provider_tokens_) {
    runtime_.as(0).metrics_registry().RemoveProvider(token);
  }
  provider_tokens_.clear();
  if (!ns_name_.empty() && !runtime_.as(0).stopped()) {
    (void)runtime_.as(0).NsUnregister(ns_name_);
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (janitor_thread_.joinable()) janitor_thread_.join();
  std::vector<RunThread> to_join;
  {
    ds::MutexLock lock(mu_);
    for (auto& surrogate : surrogates_) surrogate->Stop();
    to_join.swap(threads_);
  }
  for (auto& t : to_join) {
    if (t.thread.joinable()) t.thread.join();
  }
}

}  // namespace dstampede::client
