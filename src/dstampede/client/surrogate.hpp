// Surrogate thread (paper §3.2.2, Fig 4): created on the cluster when
// an end device joins; all subsequent D-Stampede calls from that device
// are fielded and carried out by this surrogate against the cluster's
// address spaces. It also participates in garbage collection on the
// device's behalf: a GC-service sink collects reclamation notices for
// containers the device registered interest in, and the surrogate
// forwards them piggybacked on the next response (§3.2.4).
//
// Failure model mirrors the paper's stated limitation (§3.3): if the
// device vanishes without a clean Bye, the surrogate is left parked —
// its connection slots remain attached and its state is retained.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "dstampede/core/address_space.hpp"
#include "dstampede/transport/tcp.hpp"

namespace dstampede::client {

class Surrogate {
 public:
  enum class State { kActive, kLeft, kParked, kReaped };

  Surrogate(std::uint64_t session_id, core::AddressSpace& host,
            transport::TcpConnection conn);
  ~Surrogate();

  Surrogate(const Surrogate&) = delete;
  Surrogate& operator=(const Surrogate&) = delete;

  // Replies to the already-received Hello frame (the Listener reads it
  // to learn the device's preferred address space before binding).
  Status ServiceHello(std::span<const std::uint8_t> frame);

  // Services the device until Bye, connection loss, or Stop(). Runs on
  // the thread the Listener dedicates to this surrogate.
  void Run();
  void Stop() { stopping_.store(true); }

  State state() const { return state_.load(); }
  std::uint64_t session_id() const { return session_id_; }
  const std::string& client_name() const { return client_name_; }
  std::uint64_t calls_serviced() const { return calls_serviced_.load(); }
  std::uint64_t notices_forwarded() const { return notices_forwarded_.load(); }
  // Valid once parked: when the device was last heard from.
  TimePoint parked_since() const { return parked_since_; }

  // Failure-handling extension (the paper's §6 future work): the
  // surrogate tracks every connection its device attached and every
  // name it registered; Reap() releases them all — detaching the
  // connections (which un-blocks GC: items the dead device was holding
  // become reclaimable) and unregistering the names. Only legal on a
  // parked surrogate; transitions it to kReaped.
  Status Reap();

  std::size_t tracked_attachments() const;

 private:
  // Executes one request frame; returns the response frame. Sets bye
  // when the device asked to leave.
  Buffer HandleFrame(std::span<const std::uint8_t> frame, bool& bye);
  Buffer HandleHello(std::span<const std::uint8_t> frame);
  void AppendNoticeTrailer(Buffer& reply);
  // Inspects a successful STM request/reply pair to maintain the
  // device's session state for Reap().
  void TrackSessionState(std::span<const std::uint8_t> request,
                         std::span<const std::uint8_t> reply);
  void Park();

  struct Attachment {
    std::uint64_t container_bits;
    bool is_queue;
    std::uint32_t slot;
  };

  std::uint64_t session_id_;
  core::AddressSpace& host_;
  transport::TcpConnection conn_;
  std::string client_name_ = "?";

  std::atomic<State> state_{State::kActive};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> calls_serviced_{0};
  std::atomic<std::uint64_t> notices_forwarded_{0};

  // GC interest set and pending notices, fed by the GC-service sink.
  std::mutex gc_mu_;
  std::unordered_set<std::uint64_t> gc_interest_;
  std::deque<core::GcNotice> gc_pending_;
  std::uint64_t gc_sink_token_ = 0;

  // Session state for the failure-handling extension.
  mutable std::mutex session_mu_;
  std::vector<Attachment> attachments_;
  std::vector<std::string> registered_names_;
  TimePoint parked_since_{};

  static constexpr std::size_t kMaxPendingNotices = 65536;
};

}  // namespace dstampede::client
