// Surrogate thread (paper §3.2.2, Fig 4): created on the cluster when
// an end device joins; all subsequent D-Stampede calls from that device
// are fielded and carried out by this surrogate against the cluster's
// address spaces. It also participates in garbage collection on the
// device's behalf: a GC-service sink collects reclamation notices for
// containers the device registered interest in, and the surrogate
// forwards them piggybacked on the next response (§3.2.4).
//
// Threading: the surrogate owns a dedicated session thread per device,
// so its container calls use the classic blocking Get/Put API — that
// parks the *surrogate's* thread (one per device by design), not a
// shared dispatcher worker. Under the hood those wrappers ride the
// same two-phase waiter machinery as suspended remote requests
// (SyncWaiter over GetAsync/PutAsync), so lifecycle cancellation —
// container close, owner shutdown, peer death — unwinds a blocked
// surrogate with the same statuses, and the reply cache sees an
// ordinary Status/ItemView result either way.
//
// Failure model: if the device vanishes without a clean Bye, the
// surrogate is left parked — its connection slots remain attached and
// its state is retained (the paper's §3.3 behaviour). On top of that,
// the session-resilience extension makes parked sessions resumable:
// the surrogate mirrors its session state (attachments, registered
// names, GC interests, last executed per-call ticket) into the name
// server's session registry, caches the last reply for idempotent
// replay, and can be re-bound to a fresh TCP connection (Adopt) or
// rebuilt from the registry on another address space (Rehydrate) when
// its original host died.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "dstampede/clf/fault_injector.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/client/protocol.hpp"
#include "dstampede/core/address_space.hpp"
#include "dstampede/transport/tcp.hpp"

namespace dstampede::client {

class Surrogate {
 public:
  enum class State { kActive, kLeft, kParked, kReaped };

  // `edge_faults` (optional) injects TCP-edge connection kills around
  // serviced requests; `durable` mirrors session state into the name
  // server so the session survives surrogate/host loss.
  Surrogate(std::uint64_t session_id, core::AddressSpace& host,
            transport::TcpConnection conn,
            clf::FaultInjector* edge_faults = nullptr, bool durable = true);
  ~Surrogate();

  Surrogate(const Surrogate&) = delete;
  Surrogate& operator=(const Surrogate&) = delete;

  // Replies to the already-received Hello frame (the Listener reads it
  // to learn the device's preferred address space before binding).
  Status ServiceHello(std::span<const std::uint8_t> frame);

  // Services the device until Bye, connection loss, or Stop(). Runs on
  // the thread the Listener dedicates to this surrogate.
  void Run();
  void Stop() { stopping_.store(true); }

  State state() const { return state_.load(); }
  std::uint64_t session_id() const { return session_id_; }
  const std::string& client_name() const { return client_name_; }
  std::uint64_t calls_serviced() const { return calls_serviced_.load(); }
  std::uint64_t notices_forwarded() const { return notices_forwarded_.load(); }
  // Valid once parked: when the device was last heard from.
  TimePoint parked_since() const { return parked_since_; }
  bool host_stopped() const { return host_.stopped(); }

  // --- session resumption ------------------------------------------------
  // Re-binds a parked surrogate to a fresh connection from its device
  // (same host AS; all slots still valid). Fails unless parked.
  Status Adopt(transport::TcpConnection conn);
  // Rebuilds session state from the registry record on THIS surrogate's
  // (live) host: re-attaches every recorded connection, restoring GC
  // interests and registered names. Old-slot -> new-slot remaps are
  // kept so replayed and future device calls are translated.
  Status Rehydrate(const core::SessionRecord& record);
  // Answers the already-received Resume frame (remaps + last ticket).
  Status ServiceResume(std::span<const std::uint8_t> frame);
  // Marks a surrogate that lost its session to a migrated successor:
  // terminal kReaped without detaching anything (its host is dead) and
  // without dropping the registry record (the successor owns it now).
  void MarkSuperseded();

  // Failure-handling extension (the paper's §6 future work): the
  // surrogate tracks every connection its device attached and every
  // name it registered; Reap() releases them all — detaching the
  // connections (which un-blocks GC: items the dead device was holding
  // become reclaimable) and unregistering the names. Only legal on a
  // parked surrogate; transitions it to kReaped.
  Status Reap();

  std::size_t tracked_attachments() const;
  std::uint64_t last_executed_ticket() const;

 private:
  // Executes one request frame; returns the response frame. Sets bye
  // when the device asked to leave, kill_conn when the fault injector
  // asks for the connection to be dropped instead of replying.
  Buffer HandleFrame(std::span<const std::uint8_t> frame, bool& bye,
                     bool& kill_conn);
  Buffer HandleHello(std::span<const std::uint8_t> frame);
  void AppendNoticeTrailer(Buffer& reply);
  // Inspects a successful STM request/reply pair to maintain the
  // device's session state for Reap() and the session registry.
  void TrackSessionState(std::span<const std::uint8_t> request,
                         std::span<const std::uint8_t> reply);
  // Rewrites slots in a device request through the post-migration
  // remap table (identity when the table is empty).
  Buffer TranslateSlots(std::span<const std::uint8_t> frame);
  // Mirrors the full session record / the ticket high-water mark into
  // the name server's session registry (no-ops when not durable).
  void MirrorSession();
  void MirrorTicket(std::uint64_t ticket, core::Op op,
                    std::uint64_t container_bits);
  core::SessionRecord SnapshotRecord();
  void Park();

  struct Attachment {
    std::uint64_t container_bits;
    bool is_queue;
    // The slot on the *current* host. After a migration this differs
    // from device_slot, the number the device's Connection handle
    // carries (allocated by the original attach and never re-issued —
    // the device cannot learn new slots, so every frame it sends is
    // keyed by device_slot). The mirrored session record stores
    // device_slot: a record written by an intermediate migration must
    // still remap the device's frames, not the intermediate host's.
    std::uint32_t slot;
    std::uint32_t device_slot;
    std::uint8_t mode;
    std::string label;
  };

  std::uint64_t session_id_;
  core::AddressSpace& host_;
  transport::TcpConnection conn_;
  clf::FaultInjector* edge_faults_ = nullptr;
  bool durable_ = true;
  std::string client_name_ = "?";
  std::uint32_t client_kind_ = 0;

  std::atomic<State> state_{State::kActive};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> calls_serviced_{0};
  std::atomic<std::uint64_t> notices_forwarded_{0};

  // Host-registry instruments (stable addresses, cached at construction).
  metrics::Counter* m_replay_hits_ = nullptr;
  metrics::Counter* m_calls_ = nullptr;
  metrics::Counter* m_redo_journaled_ = nullptr;
  metrics::Counter* m_redo_replayed_ = nullptr;

  // GC interest set (bits -> is_queue) and pending notices, fed by the
  // GC-service sink. Leaf lock: taken inside the GC sink callback, so
  // it must never be held while calling into the host address space.
  ds::Mutex gc_mu_{"surrogate.gc_mu"};
  std::unordered_map<std::uint64_t, bool> gc_interest_ DS_GUARDED_BY(gc_mu_);
  std::deque<core::GcNotice> gc_pending_ DS_GUARDED_BY(gc_mu_);
  std::uint64_t gc_sink_token_ = 0;  // set in ctor, read in dtor only

  // Session state for the failure-handling extension. Never held while
  // calling into the host (ExecuteWireRequest/Session*/Connect) and
  // never nested with gc_mu_.
  mutable ds::Mutex session_mu_{"surrogate.session_mu"};
  std::vector<Attachment> attachments_ DS_GUARDED_BY(session_mu_);
  std::vector<std::string> registered_names_ DS_GUARDED_BY(session_mu_);
  // Per-call ticket machinery: highest executed device request id, and
  // the cached (pre-trailer) reply of the most recent STM call so a
  // replay after a dropped connection is answered without re-running.
  std::uint64_t last_executed_ticket_ DS_GUARDED_BY(session_mu_) = 0;
  std::uint64_t cached_reply_ticket_ DS_GUARDED_BY(session_mu_) = 0;
  Buffer cached_reply_ DS_GUARDED_BY(session_mu_);
  // Exactly-once redo log for destructive reads: the last remote-queue
  // Get reply, journaled into the session registry *before* it is sent
  // to the device (see SessionRecord::redo_ticket). Survives host
  // death, unlike cached_reply_.
  std::uint64_t redo_ticket_ DS_GUARDED_BY(session_mu_) = 0;
  Buffer redo_payload_ DS_GUARDED_BY(session_mu_);
  // Post-migration slot translation (old surrogate's slot -> ours).
  std::vector<SlotRemap> slot_remaps_ DS_GUARDED_BY(session_mu_);
  TimePoint parked_since_{};

  static constexpr std::size_t kMaxPendingNotices = 65536;
};

}  // namespace dstampede::client
