#include "dstampede/client/client_impl.hpp"

namespace dstampede::client {

// The C client library personality (paper §3.2.1): XDR marshalling.
template class BasicClient<CCodec>;

}  // namespace dstampede::client
