// End-device client library (paper §3.2.1).
//
// BasicClient<Codec> exports the full D-Stampede API to an end device
// "in a manner analogous to exporting a procedure call using an RPC
// interface": every call is marshalled, sent over TCP to the device's
// surrogate on the cluster, and the reply unmarshalled. The codec
// parameter selects the language personality:
//
//   CClient        — XDR codec, pointer-manipulation marshalling (the
//                    paper's C client library);
//   JavaStyleClient— object-stream codec with per-field boxing and
//                    byte-at-a-time copies (the paper's Java client;
//                    see java_client.hpp and DESIGN.md substitutions).
//
// Both personalities emit identical octets and can take part in the
// same application against the same cluster (§3.2.3's heterogeneity).
//
// Threading: one BasicClient is one session with one surrogate; calls
// are serialized on the session, matching the paper's one-surrogate-
// per-device design. Run concurrent activities (camera producer and
// display consumer) as separate sessions — §4 models them as separate
// end devices anyway.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "dstampede/client/protocol.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/core/address_space.hpp"
#include "dstampede/marshal/java_style.hpp"
#include "dstampede/marshal/xdr.hpp"
#include "dstampede/transport/tcp.hpp"

namespace dstampede::client {

struct CCodec {
  using Encoder = marshal::XdrEncoder;
  using Decoder = marshal::XdrDecoder;
  static constexpr std::uint32_t kKind = kClientKindC;
};

struct JavaCodec {
  using Encoder = marshal::JavaStyleEncoder;
  using Decoder = marshal::JavaStyleDecoder;
  static constexpr std::uint32_t kKind = kClientKindJava;
};

// Transparent-reconnect policy (session resilience). On a transport
// failure mid-call the client reconnects with exponential backoff and
// jitter, re-binds its session via a Resume handshake (to the same
// listener, an alternate, or one discovered through the name
// server), and idempotently replays the in-flight call by its
// per-call ticket. Hello and Bye are never retried.
struct ReconnectPolicy {
  bool enabled = true;
  Duration initial_backoff = Millis(10);
  Duration max_backoff = Millis(250);
  double jitter = 0.5;  // backoff is scaled by [1, 1+jitter)
  // Total budget per failed call before the error surfaces.
  Duration give_up_after = Millis(3000);
};

// The production backoff schedule, factored out of the reconnect loop
// so the simulated reconnect-storm scenario can run a thousand modeled
// devices through the exact code path real clients use. Each call to
// NextNap() yields the nap before the next reconnect round: the
// current backoff scaled by seeded jitter in [1, 1+policy.jitter),
// then doubled toward max_backoff.
class ReconnectBackoff {
 public:
  ReconnectBackoff(const ReconnectPolicy& policy, std::uint64_t seed)
      : policy_(policy), rng_(seed), next_(policy.initial_backoff) {}

  Duration NextNap() {
    std::uniform_real_distribution<double> jitter(
        1.0, 1.0 + std::max(0.0, policy_.jitter));
    const auto nap =
        std::chrono::duration_cast<Duration>(next_ * jitter(rng_));
    next_ = std::min(next_ * 2, policy_.max_backoff);
    return nap;
  }

 private:
  ReconnectPolicy policy_;
  std::mt19937_64 rng_;
  Duration next_;
};

template <typename Codec>
class BasicClient {
 public:
  using GcNoticeHandler = std::function<void(const core::GcNotice&)>;

  // Kept as a nested alias: call sites say BasicClient<C>::ReconnectPolicy.
  using ReconnectPolicy = client::ReconnectPolicy;

  struct Options {
    transport::SockAddr server;       // the cluster listener
    std::string name = "end-device";
    std::int32_t preferred_as = -1;   // -1: listener picks
    ReconnectPolicy reconnect;
    // Extra listeners to try on reconnect (besides `server` and any
    // `sys/listener/` advertisements cached from the name server).
    std::vector<transport::SockAddr> alternate_servers;
    // Stamps every STM call with a sampled trace context (a fresh root
    // per call unless the calling thread already carries one). Off by
    // default: an untraced frame is byte-identical to the pre-trace
    // wire format. Session ops (Hello/Resume/Bye) are never stamped.
    bool trace_calls = false;
  };

  // Joins the computation: connects, sends Hello, learns the host AS.
  static Result<std::unique_ptr<BasicClient>> Join(const Options& options);

  ~BasicClient();
  BasicClient(const BasicClient&) = delete;
  BasicClient& operator=(const BasicClient&) = delete;

  AsId host_as() const { return host_as_; }
  std::uint64_t session_id() const { return session_id_; }

  // --- containers (created in the host AS, §4 step 2) --------------------
  Result<ChannelId> CreateChannel(const core::ChannelAttr& attr = {});
  Result<QueueId> CreateQueue(const core::QueueAttr& attr = {});

  // --- plumbing ----------------------------------------------------------
  Result<core::Connection> Connect(ChannelId ch, core::ConnMode mode,
                                   std::string label = {});
  Result<core::Connection> Connect(QueueId q, core::ConnMode mode,
                                   std::string label = {});
  Status Disconnect(const core::Connection& conn);

  // --- I/O ------------------------------------------------------------------
  Status Put(const core::Connection& conn, Timestamp ts, Buffer payload,
             Deadline deadline = Deadline::Infinite());
  Result<core::ItemView> Get(const core::Connection& conn, core::GetSpec spec,
                             Deadline deadline = Deadline::Infinite());
  Result<core::ItemView> Get(const core::Connection& conn,
                             Deadline deadline = Deadline::Infinite());
  Status Consume(const core::Connection& conn, Timestamp ts);
  Status ConsumeUntil(const core::Connection& conn, Timestamp ts);

  // Selective-attention filter on a channel input connection (§6
  // future work): e.g. a preview display that only wants every 5th
  // frame sets {.stride = 5} and never holds the rest back from GC.
  Status SetFilter(const core::Connection& conn,
                   const core::ItemFilter& filter);

  // --- introspection ------------------------------------------------------
  // Fetches the sys/metrics JSON snapshot of `target` (any address
  // space of the cluster; the request is forwarded over CLF when the
  // target is not the session's host).
  Result<std::string> MetricsSnapshot(AsId target);
  // Trace id stamped on the most recent traced call (0 when
  // trace_calls is off). Tests correlate this with server-side spans.
  std::uint64_t last_trace_id() const {
    ds::MutexLock lock(mu_);
    return last_trace_id_;
  }

  // --- name server ------------------------------------------------------------
  Status NsRegister(const core::NsEntry& entry);
  Status NsUnregister(const std::string& name);
  Result<core::NsEntry> NsLookup(const std::string& name,
                                 Deadline deadline = Deadline::Poll());
  Result<std::vector<core::NsEntry>> NsList(const std::string& prefix = "");

  // --- GC handler (§3.2.4) ------------------------------------------------
  // Registers interest in a container's reclamations; the handler runs
  // on this client when notices arrive piggybacked on later calls.
  Status SetGcHandler(std::uint64_t container_bits, bool is_queue,
                      GcNoticeHandler handler);

  // Clean departure (Bye). After this every call fails.
  Status Leave();

  std::uint64_t gc_notices_received() const {
    ds::MutexLock lock(handlers_mu_);
    return notices_received_;
  }
  std::uint64_t calls_made() const {
    ds::MutexLock lock(mu_);
    return calls_made_;
  }
  // Session-resilience counters: successful Resume handshakes, and
  // calls that were re-sent after a reconnect.
  std::uint64_t reconnects() const {
    ds::MutexLock lock(mu_);
    return reconnects_;
  }
  std::uint64_t replays() const {
    ds::MutexLock lock(mu_);
    return replays_;
  }

  // Re-reads `sys/listener/` advertisements from the name server so a
  // later reconnect can fail over to listeners started since Join.
  // Called automatically on Join when reconnect is enabled, and after
  // every successful Resume (the topology that killed the old
  // connection has likely also changed the listener set).
  Status RefreshListenerCache();

 private:
  BasicClient() = default;

  // Sends one encoded request, receives the reply frame, dispatches the
  // gc-notice trailer. Returns the reply for the caller to decode.
  // Transparently reconnects and replays per ReconnectPolicy.
  Result<Buffer> Call(Buffer request, Deadline deadline) DS_EXCLUDES(mu_);
  // Call's body, run under mu_. GC notices that arrive on Resume
  // replies during a reconnect are appended to `deferred` instead of
  // dispatched: a user handler may call back into the client, so it
  // must only run once Call has released mu_ (as on the normal path).
  Result<Buffer> CallLocked(Buffer request, Deadline deadline,
                            std::vector<core::GcNotice>& deferred)
      DS_REQUIRES(mu_);
  // Re-establishes the session after a transport failure. Holds mu_.
  Status ReconnectLocked(std::vector<core::GcNotice>& deferred)
      DS_REQUIRES(mu_);
  Status TryResumeLocked(const transport::SockAddr& addr,
                         std::vector<core::GcNotice>& deferred)
      DS_REQUIRES(mu_);
  std::vector<transport::SockAddr> ReconnectCandidatesLocked() const
      DS_REQUIRES(mu_);
  // RefreshListenerCache's body: one NsList round trip on the current
  // connection, no reconnect machinery (it runs *inside* the reconnect
  // loop). Notices from the reply's trailer land in `deferred`.
  Status RefreshListenerCacheLocked(std::vector<core::GcNotice>& deferred)
      DS_REQUIRES(mu_);
  std::uint64_t NextId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void DispatchNotices(const std::vector<core::GcNotice>& notices);

  // Decodes the standard reply envelope; on success returns a decoder
  // positioned at the op payload. Trailer handling included.
  struct ParsedReply {
    Buffer frame;
    std::size_t payload_offset = 0;
    Status status;
  };
  Result<ParsedReply> CallAndParse(Buffer request, Deadline deadline);

  // Serializes the session: held across the socket round trip (and the
  // reconnect/backoff loop) by design, hence blocking-allowed. Never
  // held while running a user GC handler.
  mutable ds::Mutex mu_{"client.mu", ds::Mutex::kBlockingAllowed};
  Options options_;  // immutable after Join
  transport::TcpConnection conn_ DS_GUARDED_BY(mu_);
  // host_as_/session_id_ are set during Join (single-threaded) and on
  // resume under mu_; the plain reads in the accessors match the
  // documented calls-are-serialized threading model.
  AsId host_as_ = kInvalidAsId;
  std::uint64_t session_id_ = 0;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::uint64_t last_acked_id_ DS_GUARDED_BY(mu_) = 0;
  bool left_ DS_GUARDED_BY(mu_) = false;
  std::uint64_t reconnects_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t replays_ DS_GUARDED_BY(mu_) = 0;
  std::vector<transport::SockAddr> listener_cache_ DS_GUARDED_BY(mu_);
  std::mt19937_64 jitter_rng_ DS_GUARDED_BY(mu_){0x5D5742DEu};
  std::uint64_t calls_made_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t last_trace_id_ DS_GUARDED_BY(mu_) = 0;

  // Leaf lock: guards the handler table and the notice counter; never
  // held while a handler runs.
  mutable ds::Mutex handlers_mu_{"client.handlers_mu"};
  std::unordered_map<std::uint64_t, GcNoticeHandler> gc_handlers_
      DS_GUARDED_BY(handlers_mu_);
  std::uint64_t notices_received_ DS_GUARDED_BY(handlers_mu_) = 0;
};

using CClient = BasicClient<CCodec>;

extern template class BasicClient<CCodec>;
extern template class BasicClient<JavaCodec>;

}  // namespace dstampede::client
