#include "dstampede/client/protocol.hpp"

// All protocol helpers are templated and live in the header; this
// translation unit anchors the module.
namespace dstampede::client {}
