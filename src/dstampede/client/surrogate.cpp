#include "dstampede/client/surrogate.hpp"

#include <algorithm>

#include "dstampede/common/logging.hpp"

namespace dstampede::client {

namespace {

bool IsStmOp(core::Op op) {
  return static_cast<std::uint32_t>(op) < 100;
}

// Ops whose effects must not run twice. Their replies carry no payload,
// so an already-executed replay can be answered with a synthesized OK.
bool IsIdempotentSynthOp(core::Op op) {
  switch (op) {
    case core::Op::kPut:
    case core::Op::kConsume:
    case core::Op::kDetach:
    case core::Op::kSetFilter:
    case core::Op::kNsRegister:
    case core::Op::kNsUnregister:
      return true;
    default:
      return false;
  }
}

Buffer EncodeStatusOnly(std::uint64_t request_id, const Status& status) {
  marshal::XdrEncoder enc;
  core::EncodeResponseHeader(enc, request_id, status);
  return enc.Take();
}

}  // namespace

Surrogate::Surrogate(std::uint64_t session_id, core::AddressSpace& host,
                     transport::TcpConnection conn,
                     clf::FaultInjector* edge_faults, bool durable)
    : session_id_(session_id),
      host_(host),
      conn_(std::move(conn)),
      edge_faults_(edge_faults),
      durable_(durable) {
  m_replay_hits_ = &host_.metrics_registry().GetCounter(
      "surrogate.replay_cache_hits");
  m_calls_ = &host_.metrics_registry().GetCounter("surrogate.calls");
  m_redo_journaled_ =
      &host_.metrics_registry().GetCounter("surrogate.redo_journaled");
  m_redo_replayed_ =
      &host_.metrics_registry().GetCounter("surrogate.redo_replayed");
  gc_sink_token_ = host_.gc().AddSink(
      [this](const std::vector<core::GcNotice>& batch) {
        ds::MutexLock lock(gc_mu_);
        for (const auto& notice : batch) {
          if (gc_interest_.count(notice.container_bits) == 0) continue;
          if (gc_pending_.size() >= kMaxPendingNotices) gc_pending_.pop_front();
          gc_pending_.push_back(notice);
        }
      });
}

Surrogate::~Surrogate() { host_.gc().RemoveSink(gc_sink_token_); }

void Surrogate::AppendNoticeTrailer(Buffer& reply) {
  std::vector<core::GcNotice> drained;
  {
    ds::MutexLock lock(gc_mu_);
    drained.assign(gc_pending_.begin(), gc_pending_.end());
    gc_pending_.clear();
  }
  marshal::XdrEncoder enc;
  EncodeNoticeTrailer(enc, drained);
  const Buffer trailer = enc.Take();
  reply.insert(reply.end(), trailer.begin(), trailer.end());
  notices_forwarded_.fetch_add(drained.size(), std::memory_order_relaxed);
}

Buffer Surrogate::HandleHello(std::span<const std::uint8_t> frame) {
  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok()) return Buffer();
  auto req = HelloReq::Decode(dec);
  marshal::XdrEncoder enc;
  if (!req.ok()) {
    core::EncodeResponseHeader(enc, hdr->request_id, req.status());
    return enc.Take();
  }
  client_name_ = req->name;
  client_kind_ = req->client_kind;
  core::EncodeResponseHeader(enc, hdr->request_id, OkStatus());
  enc.PutU32(AsIndex(host_.id()));
  enc.PutU64(session_id_);
  return enc.Take();
}

Buffer Surrogate::TranslateSlots(std::span<const std::uint8_t> frame) {
  Buffer out(frame.begin(), frame.end());
  {
    ds::MutexLock lock(session_mu_);
    if (slot_remaps_.empty()) return out;
  }
  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok()) return out;

  auto remap = [this](std::uint64_t bits, bool is_queue,
                      std::uint32_t slot) -> std::uint32_t {
    ds::MutexLock lock(session_mu_);
    for (const SlotRemap& r : slot_remaps_) {
      if (r.container_bits == bits && r.is_queue == is_queue &&
          r.old_slot == slot) {
        return r.new_slot;
      }
    }
    return slot;
  };

  marshal::XdrEncoder enc;
  switch (hdr->op) {
    case core::Op::kDetach: {
      auto req = core::DetachReq::Decode(dec);
      if (!req.ok()) return out;
      req->slot = remap(req->container_bits, req->is_queue, req->slot);
      core::EncodeRequestHeader(enc, hdr->op, hdr->request_id);
      req->Encode(enc);
      return enc.Take();
    }
    case core::Op::kPut: {
      auto req = core::PutReq::Decode(dec);
      if (!req.ok()) return out;
      req->slot = remap(req->container_bits, req->is_queue, req->slot);
      core::EncodeRequestHeader(enc, hdr->op, hdr->request_id);
      req->Encode(enc);
      return enc.Take();
    }
    case core::Op::kGet: {
      auto req = core::GetReq::Decode(dec);
      if (!req.ok()) return out;
      req->slot = remap(req->container_bits, req->is_queue, req->slot);
      core::EncodeRequestHeader(enc, hdr->op, hdr->request_id);
      req->Encode(enc);
      return enc.Take();
    }
    case core::Op::kConsume: {
      auto req = core::ConsumeReq::Decode(dec);
      if (!req.ok()) return out;
      req->slot = remap(req->container_bits, req->is_queue, req->slot);
      core::EncodeRequestHeader(enc, hdr->op, hdr->request_id);
      req->Encode(enc);
      return enc.Take();
    }
    case core::Op::kSetFilter: {
      auto req = core::SetFilterReq::Decode(dec);
      if (!req.ok()) return out;
      req->slot = remap(req->container_bits, /*is_queue=*/false, req->slot);
      core::EncodeRequestHeader(enc, hdr->op, hdr->request_id);
      req->Encode(enc);
      return enc.Take();
    }
    default:
      return out;  // no slot field
  }
}

Buffer Surrogate::HandleFrame(std::span<const std::uint8_t> frame, bool& bye,
                              bool& kill_conn) {
  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok()) return Buffer();

  switch (static_cast<ClientOp>(hdr->op)) {
    case ClientOp::kHello:
      return HandleHello(frame);
    case ClientOp::kBye: {
      bye = true;
      marshal::XdrEncoder enc;
      core::EncodeResponseHeader(enc, hdr->request_id, OkStatus());
      return enc.Take();
    }
    case ClientOp::kSetGcInterest: {
      auto req = SetGcInterestReq::Decode(dec);
      marshal::XdrEncoder enc;
      if (!req.ok()) {
        core::EncodeResponseHeader(enc, hdr->request_id, req.status());
        return enc.Take();
      }
      {
        ds::MutexLock lock(gc_mu_);
        if (req->enable) {
          gc_interest_[req->container_bits] = req->is_queue;
        } else {
          gc_interest_.erase(req->container_bits);
        }
      }
      {
        ds::MutexLock lock(session_mu_);
        if (hdr->request_id > last_executed_ticket_) {
          last_executed_ticket_ = hdr->request_id;
        }
      }
      MirrorSession();
      core::EncodeResponseHeader(enc, hdr->request_id, OkStatus());
      return enc.Take();
    }
    case ClientOp::kResume: {
      // A Resume mid-stream (the listener normally services it during
      // the handshake): answer it in place.
      marshal::XdrEncoder enc;
      core::EncodeResponseHeader(enc, hdr->request_id, OkStatus());
      ResumeResp resp;
      resp.host_as = AsIndex(host_.id());
      resp.session_id = session_id_;
      {
        ds::MutexLock lock(session_mu_);
        resp.last_executed_ticket = last_executed_ticket_;
        resp.remaps = slot_remaps_;
      }
      EncodeResumeResp(enc, resp);
      return enc.Take();
    }
    default:
      break;
  }

  // An STM op: carry it out against the cluster on the device's
  // behalf. The executor routes to any owning address space.
  const core::Op op = hdr->op;
  const std::uint64_t ticket = hdr->request_id;

  // Replay dedup: a call the device re-sends after a dropped
  // connection must not run twice.
  {
    ds::MutexLock lock(session_mu_);
    if (ticket == cached_reply_ticket_ && !cached_reply_.empty()) {
      m_replay_hits_->Add();
      // Destructive-read replay answered from the journal instead of
      // dequeuing a second item.
      if (ticket == redo_ticket_) m_redo_replayed_->Add();
      return cached_reply_;  // resend the very reply that was lost
    }
    if (ticket == redo_ticket_ && !redo_payload_.empty()) {
      // The reply cache has moved on (e.g. the client's post-resume
      // listener-cache refresh ran before this replay arrived), but a
      // destructive read's reply outlives the cache in the redo
      // journal. Answer from it rather than dequeuing a second item.
      m_replay_hits_->Add();
      m_redo_replayed_->Add();
      return redo_payload_;
    }
    if (ticket <= last_executed_ticket_ && IsIdempotentSynthOp(op)) {
      // Executed before a failover; the original reply died with the
      // old surrogate but the effect is durable. Ack it.
      m_replay_hits_->Add();
      return EncodeStatusOnly(ticket, OkStatus());
    }
  }
  m_calls_->Add();

  if (edge_faults_ && IsStmOp(op) &&
      edge_faults_->TakeConnectionKill(
          clf::FaultInjector::KillPoint::kBeforeExecute)) {
    kill_conn = true;  // drop the link before the op runs
    return Buffer();
  }

  // Tracing: adopt the device's wire span as "client.call" (the client
  // call as observed cluster-side) and execute under a child
  // "surrogate.dispatch" span. Both install themselves as the thread's
  // current context, so the re-encoded frame (TranslateSlots) and every
  // RPC the execution fans out carry the context onward. No-ops when
  // the frame carried no sampled context.
  trace::ScopedSpan client_call(&host_.span_sink(), "client.call", hdr->trace,
                                /*adopt_span_id=*/true);
  Buffer effective;
  Buffer reply;
  {
    trace::ScopedSpan dispatch(&host_.span_sink(), "surrogate.dispatch");
    effective = TranslateSlots(frame);
    reply = host_.ExecuteWireRequest(effective);
  }

  // A stopping host answers everything kCancelled; park instead so the
  // device sees a dead link and fails over to a live address space.
  // Exception: if the op demonstrably executed (an OK reply raced the
  // shutdown), deliver the ack — discarding it would make the device
  // replay an op whose remote effect is already durable.
  if (host_.stopped()) {
    marshal::XdrDecoder reply_dec(reply);
    auto reply_hdr = core::DecodeResponseHeader(reply_dec);
    if (!reply_hdr.ok() || !reply_hdr->status.ok()) {
      kill_conn = true;
      return Buffer();
    }
  }

  TrackSessionState(effective, reply);
  // Exactly-once destructive reads: a successful Get on a *remote*
  // queue dequeued an item whose only copy is now this reply. Journal
  // the reply into the (replicated) session registry before it is sent,
  // so if both the reply and this host die, the rehydrated surrogate
  // answers the device's replay from the journal instead of dequeuing
  // a second item. Host-owned queues die with the host, so they skip
  // the journal like MirrorTicket skips the high-water mark.
  bool journal_redo = false;
  core::ConsumeReq journal_commit;  // the dequeue to commit, iff journal_redo
  if (durable_ && op == core::Op::kGet) {
    marshal::XdrDecoder body(effective);
    (void)core::DecodeRequestHeader(body);
    auto get_req = core::GetReq::Decode(body);
    marshal::XdrDecoder reply_dec(reply);
    auto reply_hdr = core::DecodeResponseHeader(reply_dec);
    journal_redo =
        get_req.ok() && get_req->is_queue &&
        QueueId::FromBits(get_req->container_bits).owner() != host_.id() &&
        reply_hdr.ok() && reply_hdr->status.ok();
    if (journal_redo) {
      auto ts = reply_dec.GetI64();
      if (ts.ok()) {
        journal_commit.container_bits = get_req->container_bits;
        journal_commit.is_queue = true;
        journal_commit.mode = get_req->mode;
        journal_commit.slot = get_req->slot;
        journal_commit.ts = *ts;
      } else {
        journal_redo = false;
      }
    }
  }
  {
    ds::MutexLock lock(session_mu_);
    if (ticket > last_executed_ticket_) last_executed_ticket_ = ticket;
    // Ticket 0 marks an untracked read (the client's post-resume
    // listener-cache refresh): it must not evict the cached reply the
    // still-unreplayed in-flight call is about to be answered from.
    if (ticket != 0) {
      cached_reply_ticket_ = ticket;
      cached_reply_ = reply;  // pre-trailer; trailer is appended per send
    }
    if (journal_redo) {
      redo_ticket_ = ticket;
      redo_payload_ = reply;
    }
  }
  if (journal_redo) {
    // Full-record mirror carries the redo journal; must complete before
    // the reply leaves (a failed mirror degrades to at-most-once-per-
    // live-surrogate, logged by MirrorSession).
    MirrorSession();
    m_redo_journaled_->Add();
    // A journaled read is consumed on delivery: once the reply is
    // answerable from the journal, the item's only copy is the journal,
    // so the owner's in-flight entry must not survive — otherwise the
    // owner's host-death recovery would requeue it (Detach returns
    // unconsumed in-flight items to the queue head) and the next Get
    // would deliver it a second time. Commit the dequeue now; if the
    // commit fails the item may be redelivered after a host death
    // (at-least-once, logged), which beats silently losing it.
    marshal::XdrEncoder cenc(64);
    core::EncodeRequestHeader(cenc, core::Op::kConsume, 0);
    journal_commit.Encode(cenc);
    Buffer commit_frame = cenc.Take();
    Buffer commit_reply = host_.ExecuteWireRequest(commit_frame);
    marshal::XdrDecoder cdec(commit_reply);
    auto chdr = core::DecodeResponseHeader(cdec);
    if (!chdr.ok() || !chdr->status.ok()) {
      DS_LOG(kWarn) << "surrogate " << session_id_
                    << ": journaled-read dequeue commit failed: "
                    << (chdr.ok() ? chdr->status : chdr.status());
    }
  } else {
    MirrorTicket(ticket, op, [&] {
      marshal::XdrDecoder body(effective);
      (void)core::DecodeRequestHeader(body);
      auto bits = body.GetU64();
      return bits.ok() ? *bits : 0;
    }());
  }

  if (edge_faults_ && IsStmOp(op) &&
      edge_faults_->TakeConnectionKill(
          clf::FaultInjector::KillPoint::kAfterExecute)) {
    kill_conn = true;  // executed, but the reply never reaches the device
    return Buffer();
  }
  return reply;
}

void Surrogate::TrackSessionState(std::span<const std::uint8_t> request,
                                  std::span<const std::uint8_t> reply) {
  marshal::XdrDecoder req_dec(request);
  auto req_hdr = core::DecodeRequestHeader(req_dec);
  if (!req_hdr.ok()) return;
  if (req_hdr->op != core::Op::kAttach && req_hdr->op != core::Op::kDetach &&
      req_hdr->op != core::Op::kNsRegister &&
      req_hdr->op != core::Op::kNsUnregister) {
    return;
  }
  marshal::XdrDecoder reply_dec(reply);
  auto reply_hdr = core::DecodeResponseHeader(reply_dec);
  if (!reply_hdr.ok() || !reply_hdr->status.ok()) return;

  {
    ds::MutexLock lock(session_mu_);
    switch (req_hdr->op) {
      case core::Op::kAttach: {
        auto req = core::AttachReq::Decode(req_dec);
        auto slot = reply_dec.GetU32();
        if (req.ok() && slot.ok()) {
          attachments_.push_back(Attachment{
              req->container_bits, req->is_queue, *slot, *slot,
              static_cast<std::uint8_t>(req->mode), req->label});
        }
        break;
      }
      case core::Op::kDetach: {
        auto req = core::DetachReq::Decode(req_dec);
        if (req.ok()) {
          std::erase_if(attachments_, [&](const Attachment& a) {
            return a.container_bits == req->container_bits &&
                   a.is_queue == req->is_queue && a.slot == req->slot;
          });
        }
        break;
      }
      case core::Op::kNsRegister: {
        auto entry = core::DecodeNsEntry(req_dec);
        if (entry.ok()) registered_names_.push_back(entry->name);
        break;
      }
      case core::Op::kNsUnregister: {
        auto req = core::NsLookupReq::Decode(req_dec);
        if (req.ok()) std::erase(registered_names_, req->name);
        break;
      }
      default:
        break;
    }
  }
  MirrorSession();
}

core::SessionRecord Surrogate::SnapshotRecord() {
  core::SessionRecord record;
  record.session_id = session_id_;
  record.client_kind = client_kind_;
  record.client_name = client_name_;
  record.host_as = host_.id();
  {
    ds::MutexLock lock(session_mu_);
    record.last_executed_ticket = last_executed_ticket_;
    record.redo_ticket = redo_ticket_;
    record.redo_payload = redo_payload_;
    record.attachments.reserve(attachments_.size());
    for (const Attachment& a : attachments_) {
      record.attachments.push_back(core::SessionAttachment{
          a.container_bits, a.is_queue, a.mode, a.device_slot, a.label});
    }
    record.registered_names = registered_names_;
  }
  {
    ds::MutexLock lock(gc_mu_);
    record.gc_interests.reserve(gc_interest_.size());
    for (const auto& [bits, is_queue] : gc_interest_) {
      record.gc_interests.push_back(core::SessionGcInterest{bits, is_queue});
    }
  }
  return record;
}

void Surrogate::MirrorSession() {
  if (!durable_ || host_.stopped()) return;
  Status s = host_.SessionPut(SnapshotRecord());
  if (!s.ok()) {
    DS_LOG(kWarn) << "surrogate " << session_id_
                  << ": session mirror failed: " << s;
  }
}

void Surrogate::MirrorTicket(std::uint64_t ticket, core::Op op,
                             std::uint64_t container_bits) {
  if (!durable_ || host_.stopped()) return;
  // Only mutations whose effects outlive this host need the durable
  // high-water mark: ops on containers owned by a *peer* address space
  // (they already pay a CLF round trip) and name-server mutations. An
  // op on a host-owned container dies with the host anyway, so skipping
  // the mirror there keeps the single-AS fast path free of extra RPCs.
  // Attach/Detach/NsRegister/NsUnregister mirror the full record via
  // TrackSessionState instead.
  const bool ns_op = op == core::Op::kNsRegister ||
                     op == core::Op::kNsUnregister;
  const bool data_op = op == core::Op::kPut || op == core::Op::kConsume ||
                       op == core::Op::kSetFilter;
  if (!ns_op && !data_op) return;
  const AsId target =
      ns_op ? host_.name_server_as()
            : ChannelId::FromBits(container_bits).owner();
  if (target == host_.id()) return;
  Status s = host_.SessionTick(session_id_, ticket);
  if (!s.ok()) {
    DS_LOG(kWarn) << "surrogate " << session_id_
                  << ": ticket mirror failed: " << s;
  }
}

Status Surrogate::Adopt(transport::TcpConnection conn) {
  State expected = State::kParked;
  if (!state_.compare_exchange_strong(expected, State::kActive)) {
    return FailedPreconditionError("only parked surrogates can adopt");
  }
  stopping_.store(false);
  conn_ = std::move(conn);
  return OkStatus();
}

Status Surrogate::Rehydrate(const core::SessionRecord& record) {
  client_name_ = record.client_name;
  client_kind_ = record.client_kind;
  {
    ds::MutexLock lock(gc_mu_);
    for (const auto& g : record.gc_interests) {
      gc_interest_[g.container_bits] = g.is_queue;
    }
  }

  std::vector<Attachment> restored;
  std::vector<SlotRemap> remaps;
  for (const auto& a : record.attachments) {
    const auto mode = a.mode >= 1 && a.mode <= 3
                          ? static_cast<core::ConnMode>(a.mode)
                          : core::ConnMode::kInputOutput;
    Result<core::Connection> conn =
        a.is_queue
            ? host_.Connect(QueueId::FromBits(a.container_bits), mode, a.label)
            : host_.Connect(ChannelId::FromBits(a.container_bits), mode,
                            a.label);
    SlotRemap remap;
    remap.container_bits = a.container_bits;
    remap.is_queue = a.is_queue;
    remap.old_slot = a.slot;
    if (conn.ok()) {
      remap.new_slot = conn->slot();
      // a.slot is the device-visible slot (what the record mirrors);
      // keep it so a further migration still remaps the device's frames.
      restored.push_back(Attachment{a.container_bits, a.is_queue, conn->slot(),
                                    a.slot, a.mode, a.label});
    } else {
      // Container gone (owned by the dead address space, or already
      // reclaimed): the device's handle is now dangling; calls on it
      // will fail with the owner's error.
      remap.new_slot = 0;
      DS_LOG(kWarn) << "surrogate " << session_id_
                    << ": could not restore attachment to container "
                    << a.container_bits << ": " << conn.status();
    }
    remaps.push_back(remap);
  }

  {
    ds::MutexLock lock(session_mu_);
    attachments_ = std::move(restored);
    registered_names_ = record.registered_names;
    if (record.last_executed_ticket > last_executed_ticket_) {
      last_executed_ticket_ = record.last_executed_ticket;
    }
    slot_remaps_ = std::move(remaps);
    // Restore the destructive-read journal into the replay cache: the
    // old host died, so the device will replay its last Get — answer it
    // with the journaled reply, never by re-executing the dequeue.
    if (record.redo_ticket != 0 && !record.redo_payload.empty()) {
      redo_ticket_ = record.redo_ticket;
      redo_payload_ = record.redo_payload;
      cached_reply_ticket_ = record.redo_ticket;
      cached_reply_ = record.redo_payload;
    }
  }
  // The record now lives on this host: update host_as and slots.
  MirrorSession();
  return OkStatus();
}

Status Surrogate::ServiceResume(std::span<const std::uint8_t> frame) {
  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok()) return InternalError("bad resume frame");
  marshal::XdrEncoder enc;
  core::EncodeResponseHeader(enc, hdr->request_id, OkStatus());
  ResumeResp resp;
  resp.host_as = AsIndex(host_.id());
  resp.session_id = session_id_;
  {
    ds::MutexLock lock(session_mu_);
    resp.last_executed_ticket = last_executed_ticket_;
    resp.remaps = slot_remaps_;
  }
  EncodeResumeResp(enc, resp);
  Buffer reply = enc.Take();
  AppendNoticeTrailer(reply);
  calls_serviced_.fetch_add(1, std::memory_order_relaxed);
  return conn_.SendFrame(reply);
}

void Surrogate::MarkSuperseded() {
  Stop();
  State s = state_.load();
  while (s != State::kReaped && s != State::kLeft &&
         !state_.compare_exchange_weak(s, State::kReaped)) {
  }
  // conn_ is left to the Run thread (if still active, Stop() makes it
  // exit and close within its receive timeout).
}

Status Surrogate::Reap() {
  State expected = State::kParked;
  if (!state_.compare_exchange_strong(expected, State::kReaped)) {
    return FailedPreconditionError("only parked surrogates can be reaped");
  }
  std::vector<Attachment> attachments;
  std::vector<std::string> names;
  {
    ds::MutexLock lock(session_mu_);
    attachments.swap(attachments_);
    names.swap(registered_names_);
  }
  // A reap on a dead host releases nothing (the host's containers died
  // with it) and must keep the registry record so the session can still
  // be migrated; a reap on a live host is terminal.
  if (host_.stopped()) return OkStatus();
  for (const Attachment& a : attachments) {
    const core::Connection conn(
        a.container_bits, a.is_queue, core::ConnMode::kInputOutput,
        ChannelId::FromBits(a.container_bits).owner(), a.slot);
    Status s = host_.Disconnect(conn);
    if (!s.ok()) {
      DS_LOG(kWarn) << "reap: detach failed: " << s;
    }
  }
  for (const std::string& name : names) {
    (void)host_.NsUnregister(name);
  }
  if (durable_) (void)host_.SessionDrop(session_id_);
  return OkStatus();
}

std::size_t Surrogate::tracked_attachments() const {
  ds::MutexLock lock(session_mu_);
  return attachments_.size();
}

std::uint64_t Surrogate::last_executed_ticket() const {
  ds::MutexLock lock(session_mu_);
  return last_executed_ticket_;
}

void Surrogate::Park() {
  // Close before publishing kParked: once the state is visible, the
  // listener may Adopt() a fresh connection into conn_, and this (the
  // old Run thread) must no longer touch it.
  conn_.Close();
  parked_since_ = Now();
  State expected = State::kActive;
  state_.compare_exchange_strong(expected, State::kParked);
}

Status Surrogate::ServiceHello(std::span<const std::uint8_t> frame) {
  Buffer reply = HandleHello(frame);
  if (reply.empty()) return InternalError("bad hello frame");
  AppendNoticeTrailer(reply);
  calls_serviced_.fetch_add(1, std::memory_order_relaxed);
  MirrorSession();
  return conn_.SendFrame(reply);
}

void Surrogate::Run() {
  SetThreadLogContext("sur/" + std::to_string(session_id_));
  Buffer frame;
  bool bye = false;
  while (!stopping_.load() && !bye) {
    if (host_.stopped()) {
      // The host AS is going down: close the link so the device fails
      // over to a surrogate on a live address space.
      DS_LOG(kInfo) << "surrogate " << session_id_
                    << " parked: host address space stopping";
      Park();
      return;
    }
    Status s = conn_.RecvFrame(frame, Deadline::AfterMillis(100));
    if (!s.ok()) {
      if (s.code() == StatusCode::kTimeout) continue;
      // Device vanished without a clean leave: park (paper §3.3).
      DS_LOG(kInfo) << "surrogate " << session_id_ << " parked: " << s;
      Park();
      return;
    }
    bool kill_conn = false;
    Buffer reply = HandleFrame(frame, bye, kill_conn);
    if (kill_conn || reply.empty()) {
      Park();
      return;
    }
    AppendNoticeTrailer(reply);
    calls_serviced_.fetch_add(1, std::memory_order_relaxed);
    if (!conn_.SendFrame(reply).ok()) {
      Park();
      return;
    }
  }
  if (bye) {
    state_.store(State::kLeft);
    conn_.Close();
    if (durable_ && !host_.stopped()) (void)host_.SessionDrop(session_id_);
  } else {
    Park();
  }
}

}  // namespace dstampede::client
