#include "dstampede/client/surrogate.hpp"

#include "dstampede/client/protocol.hpp"
#include "dstampede/common/logging.hpp"

namespace dstampede::client {

Surrogate::Surrogate(std::uint64_t session_id, core::AddressSpace& host,
                     transport::TcpConnection conn)
    : session_id_(session_id), host_(host), conn_(std::move(conn)) {
  gc_sink_token_ = host_.gc().AddSink(
      [this](const std::vector<core::GcNotice>& batch) {
        std::lock_guard<std::mutex> lock(gc_mu_);
        for (const auto& notice : batch) {
          if (gc_interest_.count(notice.container_bits) == 0) continue;
          if (gc_pending_.size() >= kMaxPendingNotices) gc_pending_.pop_front();
          gc_pending_.push_back(notice);
        }
      });
}

Surrogate::~Surrogate() { host_.gc().RemoveSink(gc_sink_token_); }

void Surrogate::AppendNoticeTrailer(Buffer& reply) {
  std::vector<core::GcNotice> drained;
  {
    std::lock_guard<std::mutex> lock(gc_mu_);
    drained.assign(gc_pending_.begin(), gc_pending_.end());
    gc_pending_.clear();
  }
  marshal::XdrEncoder enc;
  EncodeNoticeTrailer(enc, drained);
  const Buffer trailer = enc.Take();
  reply.insert(reply.end(), trailer.begin(), trailer.end());
  notices_forwarded_.fetch_add(drained.size(), std::memory_order_relaxed);
}

Buffer Surrogate::HandleHello(std::span<const std::uint8_t> frame) {
  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok()) return Buffer();
  auto req = HelloReq::Decode(dec);
  marshal::XdrEncoder enc;
  if (!req.ok()) {
    core::EncodeResponseHeader(enc, hdr->request_id, req.status());
    return enc.Take();
  }
  client_name_ = req->name;
  core::EncodeResponseHeader(enc, hdr->request_id, OkStatus());
  enc.PutU32(AsIndex(host_.id()));
  enc.PutU64(session_id_);
  return enc.Take();
}

Buffer Surrogate::HandleFrame(std::span<const std::uint8_t> frame, bool& bye) {
  marshal::XdrDecoder dec(frame);
  auto hdr = core::DecodeRequestHeader(dec);
  if (!hdr.ok()) return Buffer();

  switch (static_cast<ClientOp>(hdr->op)) {
    case ClientOp::kHello:
      return HandleHello(frame);
    case ClientOp::kBye: {
      bye = true;
      marshal::XdrEncoder enc;
      core::EncodeResponseHeader(enc, hdr->request_id, OkStatus());
      return enc.Take();
    }
    case ClientOp::kSetGcInterest: {
      auto req = SetGcInterestReq::Decode(dec);
      marshal::XdrEncoder enc;
      if (!req.ok()) {
        core::EncodeResponseHeader(enc, hdr->request_id, req.status());
        return enc.Take();
      }
      {
        std::lock_guard<std::mutex> lock(gc_mu_);
        if (req->enable) {
          gc_interest_.insert(req->container_bits);
        } else {
          gc_interest_.erase(req->container_bits);
        }
      }
      core::EncodeResponseHeader(enc, hdr->request_id, OkStatus());
      return enc.Take();
    }
    default: {
      // An STM op: carry it out against the cluster on the device's
      // behalf. The executor routes to any owning address space.
      Buffer reply = host_.ExecuteWireRequest(frame);
      TrackSessionState(frame, reply);
      return reply;
    }
  }
}

void Surrogate::TrackSessionState(std::span<const std::uint8_t> request,
                                  std::span<const std::uint8_t> reply) {
  marshal::XdrDecoder req_dec(request);
  auto req_hdr = core::DecodeRequestHeader(req_dec);
  if (!req_hdr.ok()) return;
  if (req_hdr->op != core::Op::kAttach && req_hdr->op != core::Op::kDetach &&
      req_hdr->op != core::Op::kNsRegister &&
      req_hdr->op != core::Op::kNsUnregister) {
    return;
  }
  marshal::XdrDecoder reply_dec(reply);
  auto reply_hdr = core::DecodeResponseHeader(reply_dec);
  if (!reply_hdr.ok() || !reply_hdr->status.ok()) return;

  std::lock_guard<std::mutex> lock(session_mu_);
  switch (req_hdr->op) {
    case core::Op::kAttach: {
      auto req = core::AttachReq::Decode(req_dec);
      auto slot = reply_dec.GetU32();
      if (req.ok() && slot.ok()) {
        attachments_.push_back(
            Attachment{req->container_bits, req->is_queue, *slot});
      }
      break;
    }
    case core::Op::kDetach: {
      auto req = core::DetachReq::Decode(req_dec);
      if (req.ok()) {
        std::erase_if(attachments_, [&](const Attachment& a) {
          return a.container_bits == req->container_bits &&
                 a.is_queue == req->is_queue && a.slot == req->slot;
        });
      }
      break;
    }
    case core::Op::kNsRegister: {
      auto entry = core::DecodeNsEntry(req_dec);
      if (entry.ok()) registered_names_.push_back(entry->name);
      break;
    }
    case core::Op::kNsUnregister: {
      auto req = core::NsLookupReq::Decode(req_dec);
      if (req.ok()) std::erase(registered_names_, req->name);
      break;
    }
    default:
      break;
  }
}

Status Surrogate::Reap() {
  State expected = State::kParked;
  if (!state_.compare_exchange_strong(expected, State::kReaped)) {
    return FailedPreconditionError("only parked surrogates can be reaped");
  }
  std::vector<Attachment> attachments;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    attachments.swap(attachments_);
    names.swap(registered_names_);
  }
  for (const Attachment& a : attachments) {
    const core::Connection conn(
        a.container_bits, a.is_queue, core::ConnMode::kInputOutput,
        ChannelId::FromBits(a.container_bits).owner(), a.slot);
    Status s = host_.Disconnect(conn);
    if (!s.ok()) {
      DS_LOG(kWarn) << "reap: detach failed: " << s;
    }
  }
  for (const std::string& name : names) {
    (void)host_.NsUnregister(name);
  }
  return OkStatus();
}

std::size_t Surrogate::tracked_attachments() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return attachments_.size();
}

void Surrogate::Park() {
  parked_since_ = Now();
  state_.store(State::kParked);
  conn_.Close();
}

Status Surrogate::ServiceHello(std::span<const std::uint8_t> frame) {
  Buffer reply = HandleHello(frame);
  if (reply.empty()) return InternalError("bad hello frame");
  AppendNoticeTrailer(reply);
  calls_serviced_.fetch_add(1, std::memory_order_relaxed);
  return conn_.SendFrame(reply);
}

void Surrogate::Run() {
  Buffer frame;
  bool bye = false;
  while (!stopping_.load() && !bye) {
    Status s = conn_.RecvFrame(frame, Deadline::AfterMillis(100));
    if (!s.ok()) {
      if (s.code() == StatusCode::kTimeout) continue;
      // Device vanished without a clean leave: park (paper §3.3).
      DS_LOG(kInfo) << "surrogate " << session_id_ << " parked: " << s;
      Park();
      return;
    }
    Buffer reply = HandleFrame(frame, bye);
    if (reply.empty()) {
      Park();
      return;
    }
    AppendNoticeTrailer(reply);
    calls_serviced_.fetch_add(1, std::memory_order_relaxed);
    if (!conn_.SendFrame(reply).ok()) {
      Park();
      return;
    }
  }
  if (bye) {
    state_.store(State::kLeft);
    conn_.Close();
  } else {
    Park();
  }
}

}  // namespace dstampede::client
