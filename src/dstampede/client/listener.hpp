// Listener (paper §3.2.2): the cluster-side thread that listens for
// new end devices joining a D-Stampede computation. Upon a join it
// creates a surrogate bound to one of the cluster's live address
// spaces (the device may request a specific one; otherwise
// round-robin) and dedicates a thread to it. Surrogates whose device
// vanished stay parked and countable — the paper's documented failure
// behaviour.
//
// Session-resilience extension: the listener also accepts Resume
// handshakes. A device reconnecting after a dropped link is re-bound
// to its parked surrogate in place; a device whose surrogate's host
// address space died has its session rehydrated from the name
// server's session registry onto a live address space instead of
// being lost. The listener advertises itself in the name server
// (`sys/listener/<port>`) so clients can discover failover targets.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "dstampede/client/surrogate.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/thread.hpp"
#include "dstampede/core/runtime.hpp"
#include "dstampede/transport/tcp.hpp"

namespace dstampede::client {

class Listener {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0: pick a free port
    // Failure-handling extension (§6 future work): when non-zero, a
    // background janitor reaps surrogates that have been parked longer
    // than this — detaching the dead device's connections (releasing
    // its GC holds) and unregistering its names. Zero preserves the
    // paper's documented behaviour: parked surrogates linger forever.
    Duration reap_parked_after = Duration::zero();
    // Injects TCP-edge connection kills into every surrogate this
    // listener creates (reconnect stress tests). Not owned; must
    // outlive the listener.
    clf::FaultInjector* edge_faults = nullptr;
    // Mirror session state into the name server's session registry so
    // sessions survive connection drops and host-AS death.
    bool durable_sessions = true;
    // How long a Resume waits for the session's old surrogate to
    // finish parking before giving up on in-place adoption.
    Duration resume_park_wait = Millis(2000);
  };

  static Result<std::unique_ptr<Listener>> Start(core::Runtime& runtime,
                                                 const Options& options);
  static Result<std::unique_ptr<Listener>> Start(core::Runtime& runtime) {
    return Start(runtime, Options{});
  }
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  const transport::SockAddr& addr() const { return listener_.bound_addr(); }

  std::size_t surrogates_total() const;
  std::size_t surrogates_in(Surrogate::State state) const;
  std::uint64_t sessions_resumed() const { return sessions_resumed_.load(); }
  std::uint64_t sessions_migrated() const { return sessions_migrated_.load(); }
  // Surrogate Run threads not yet joined by the janitor (tests assert
  // reconnect churn does not accumulate exited threads).
  std::size_t run_threads() const;

  // Reaps every currently-parked surrogate immediately (regardless of
  // reap_parked_after); returns how many were reaped.
  std::size_t ReapParked();

  // Stops accepting, asks every surrogate to stop, joins threads.
  void Shutdown();

 private:
  explicit Listener(core::Runtime& runtime) : runtime_(runtime) {}
  void AcceptLoop();
  void Handshake(transport::TcpConnection conn);
  void HandleResume(transport::TcpConnection conn, const Buffer& frame,
                    std::uint64_t session_id, std::int32_t preferred_as);
  void JanitorLoop();
  // Picks a live (not stopped) address space; honours `preferred` when
  // it names a live one. Returns npos when the whole cluster is down.
  std::size_t PickLiveAs(std::int32_t preferred) DS_REQUIRES(mu_);
  // Dedicates a thread to one surrogate activation (join, resume or
  // migration). The thread is tracked with a done flag so the janitor
  // can join and drop it once Run() returns.
  void SpawnRun(Surrogate* surrogate);
  // Joins every Run thread whose surrogate finished; returns how many.
  std::size_t ReapFinishedThreads();

  // One Run thread per surrogate activation. A surrogate that resumes
  // or migrates gets a fresh activation, so under reconnect churn the
  // janitor must reap exited threads instead of accumulating them.
  struct RunThread {
    Thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  core::Runtime& runtime_;
  Options options_;
  transport::TcpListener listener_;
  std::string ns_name_;  // sys/listener/<port> advertisement

  // Protects the surrogate/thread registries and the join cursors.
  // Never held while calling into a surrogate or an address space.
  mutable ds::Mutex mu_{"listener.mu"};
  std::vector<std::unique_ptr<Surrogate>> surrogates_ DS_GUARDED_BY(mu_);
  std::vector<RunThread> threads_ DS_GUARDED_BY(mu_);
  std::uint64_t next_session_ DS_GUARDED_BY(mu_) = 1;
  std::size_t next_as_ DS_GUARDED_BY(mu_) = 0;  // round-robin cursor

  std::atomic<std::uint64_t> sessions_resumed_{0};
  std::atomic<std::uint64_t> sessions_migrated_{0};
  // Pull-provider registrations in AS 0's metrics registry (written in
  // Start before any thread exists, cleared once in Shutdown).
  std::vector<std::uint64_t> provider_tokens_;
  std::atomic<bool> stopping_{false};
  // Janitor pacing: WaitUntil instead of raw sleeps so Shutdown() can
  // interrupt the nap and virtual time drives the reap cadence.
  ds::Mutex janitor_mu_{"listener.janitor_mu"};
  ds::CondVar janitor_cv_;
  Thread accept_thread_;
  Thread janitor_thread_;
};

}  // namespace dstampede::client
