// Listener (paper §3.2.2): the cluster-side thread that listens for
// new end devices joining a D-Stampede computation. Upon a join it
// creates a surrogate bound to one of the cluster's address spaces
// (the device may request a specific one; otherwise round-robin) and
// dedicates a thread to it. Surrogates whose device vanished stay
// parked and countable — the paper's documented failure behaviour.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dstampede/client/surrogate.hpp"
#include "dstampede/core/runtime.hpp"
#include "dstampede/transport/tcp.hpp"

namespace dstampede::client {

class Listener {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0: pick a free port
    // Failure-handling extension (§6 future work): when non-zero, a
    // background janitor reaps surrogates that have been parked longer
    // than this — detaching the dead device's connections (releasing
    // its GC holds) and unregistering its names. Zero preserves the
    // paper's documented behaviour: parked surrogates linger forever.
    Duration reap_parked_after = Duration::zero();
  };

  static Result<std::unique_ptr<Listener>> Start(core::Runtime& runtime,
                                                 const Options& options);
  static Result<std::unique_ptr<Listener>> Start(core::Runtime& runtime) {
    return Start(runtime, Options{});
  }
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  const transport::SockAddr& addr() const { return listener_.bound_addr(); }

  std::size_t surrogates_total() const;
  std::size_t surrogates_in(Surrogate::State state) const;

  // Reaps every currently-parked surrogate immediately (regardless of
  // reap_parked_after); returns how many were reaped.
  std::size_t ReapParked();

  // Stops accepting, asks every surrogate to stop, joins threads.
  void Shutdown();

 private:
  explicit Listener(core::Runtime& runtime) : runtime_(runtime) {}
  void AcceptLoop();
  void Handshake(transport::TcpConnection conn);
  void JanitorLoop();

  core::Runtime& runtime_;
  Options options_;
  transport::TcpListener listener_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Surrogate>> surrogates_;
  std::vector<std::thread> threads_;
  std::uint64_t next_session_ = 1;
  std::size_t next_as_ = 0;  // round-robin cursor

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread janitor_thread_;
};

}  // namespace dstampede::client
