#include "dstampede/client/java_client.hpp"

#include "dstampede/client/client_impl.hpp"

namespace dstampede::client {

template class BasicClient<JavaCodec>;

}  // namespace dstampede::client
