// Client-plane protocol (§3.2.1): end devices exchange framed messages
// with their surrogate over TCP. STM operations reuse the core wire
// format verbatim (core/wire.hpp); this header adds the session ops
// (hello/bye), the GC-interest op, and the gc-notice trailer that the
// surrogate piggybacks on every response — the paper's "communicates it
// to the end device at an opportune time (e.g. when the next D-Stampede
// API call comes from the end device)" (§3.2.4).
//
// Decode helpers here are templated on the decoder so the C client
// (XdrDecoder, pointer manipulation) and the Java-style client
// (JavaStyleDecoder, object reconstruction) parse the same octets with
// their respective cost models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dstampede/common/status.hpp"
#include "dstampede/core/wire.hpp"

namespace dstampede::client {

// Values disjoint from core::Op so one dispatch switch serves both.
enum class ClientOp : std::uint32_t {
  kHello = 200,
  kBye = 201,
  kSetGcInterest = 202,
  // Session resumption: re-binds an existing session after a dropped
  // connection, on the original surrogate if it is parked and alive,
  // or rehydrated from the name server's session registry on another
  // address space if the original host died.
  kResume = 203,
};

inline constexpr std::uint32_t kClientKindC = 0;
inline constexpr std::uint32_t kClientKindJava = 1;

struct HelloReq {
  std::uint32_t client_kind = kClientKindC;
  std::string name;
  // Preferred host address space (for controlled experiments); -1
  // lets the listener pick (round-robin over the cluster).
  std::int32_t preferred_as = -1;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU32(client_kind);
    enc.PutString(name);
    enc.PutI32(preferred_as);
  }
  static Result<HelloReq> Decode(marshal::XdrDecoder& dec) {
    HelloReq req;
    DS_ASSIGN_OR_RETURN(req.client_kind, dec.GetU32());
    DS_ASSIGN_OR_RETURN(req.name, dec.GetString());
    DS_ASSIGN_OR_RETURN(req.preferred_as, dec.GetI32());
    return req;
  }
};

struct HelloResp {
  std::uint32_t host_as = 0;
  std::uint64_t session_id = 0;
};

struct ResumeReq {
  std::uint32_t client_kind = kClientKindC;
  std::uint64_t session_id = 0;
  // Highest ticket whose reply the client has fully received. The
  // surrogate uses it to dedup the replay of the in-flight call.
  std::uint64_t last_acked_ticket = 0;
  std::int32_t preferred_as = -1;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU32(client_kind);
    enc.PutU64(session_id);
    enc.PutU64(last_acked_ticket);
    enc.PutI32(preferred_as);
  }
  static Result<ResumeReq> Decode(marshal::XdrDecoder& dec) {
    ResumeReq req;
    DS_ASSIGN_OR_RETURN(req.client_kind, dec.GetU32());
    DS_ASSIGN_OR_RETURN(req.session_id, dec.GetU64());
    DS_ASSIGN_OR_RETURN(req.last_acked_ticket, dec.GetU64());
    DS_ASSIGN_OR_RETURN(req.preferred_as, dec.GetI32());
    return req;
  }
};

// One attachment whose surrogate-side slot changed across failover
// (the rehydrated surrogate re-attached and got fresh slots). new_slot
// == 0 means the attachment could not be restored (e.g. its container
// was owned by the dead address space).
struct SlotRemap {
  std::uint64_t container_bits = 0;
  bool is_queue = false;
  std::uint32_t old_slot = 0;
  std::uint32_t new_slot = 0;
};

struct ResumeResp {
  std::uint32_t host_as = 0;
  std::uint64_t session_id = 0;
  std::uint64_t last_executed_ticket = 0;
  std::vector<SlotRemap> remaps;
};

template <class Enc>
void EncodeResumeResp(Enc& enc, const ResumeResp& resp) {
  enc.PutU32(resp.host_as);
  enc.PutU64(resp.session_id);
  enc.PutU64(resp.last_executed_ticket);
  enc.PutU32(static_cast<std::uint32_t>(resp.remaps.size()));
  for (const auto& r : resp.remaps) {
    enc.PutU64(r.container_bits);
    enc.PutBool(r.is_queue);
    enc.PutU32(r.old_slot);
    enc.PutU32(r.new_slot);
  }
}

template <class Dec>
Result<ResumeResp> DecodeResumeRespT(Dec& dec) {
  ResumeResp resp;
  DS_ASSIGN_OR_RETURN(resp.host_as, dec.GetU32());
  DS_ASSIGN_OR_RETURN(resp.session_id, dec.GetU64());
  DS_ASSIGN_OR_RETURN(resp.last_executed_ticket, dec.GetU64());
  DS_ASSIGN_OR_RETURN(std::uint32_t count, dec.GetU32());
  resp.remaps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SlotRemap r;
    DS_ASSIGN_OR_RETURN(r.container_bits, dec.GetU64());
    DS_ASSIGN_OR_RETURN(r.is_queue, dec.GetBool());
    DS_ASSIGN_OR_RETURN(r.old_slot, dec.GetU32());
    DS_ASSIGN_OR_RETURN(r.new_slot, dec.GetU32());
    resp.remaps.push_back(r);
  }
  return resp;
}

struct SetGcInterestReq {
  std::uint64_t container_bits = 0;
  bool is_queue = false;
  bool enable = true;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(container_bits);
    enc.PutBool(is_queue);
    enc.PutBool(enable);
  }
  static Result<SetGcInterestReq> Decode(marshal::XdrDecoder& dec) {
    SetGcInterestReq req;
    DS_ASSIGN_OR_RETURN(req.container_bits, dec.GetU64());
    DS_ASSIGN_OR_RETURN(req.is_queue, dec.GetBool());
    DS_ASSIGN_OR_RETURN(req.enable, dec.GetBool());
    return req;
  }
};

// --- templated decode mirrors of core/wire.hpp for the client side ----

template <class Dec>
Result<core::ResponseHeader> DecodeResponseHeaderT(Dec& dec) {
  DS_ASSIGN_OR_RETURN(std::uint32_t op, dec.GetU32());
  if (static_cast<core::Op>(op) != core::Op::kReply) {
    return InternalError("expected reply frame");
  }
  core::ResponseHeader hdr;
  DS_ASSIGN_OR_RETURN(hdr.request_id, dec.GetU64());
  DS_ASSIGN_OR_RETURN(std::uint32_t code, dec.GetU32());
  DS_ASSIGN_OR_RETURN(std::string message, dec.GetString());
  hdr.status = Status(static_cast<StatusCode>(code), std::move(message));
  return hdr;
}

template <class Dec>
Result<core::GcNotice> DecodeGcNoticeT(Dec& dec) {
  core::GcNotice notice;
  DS_ASSIGN_OR_RETURN(notice.container_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(notice.is_queue, dec.GetBool());
  DS_ASSIGN_OR_RETURN(notice.timestamp, dec.GetI64());
  DS_ASSIGN_OR_RETURN(std::uint64_t size, dec.GetU64());
  notice.payload_size = size;
  return notice;
}

template <class Dec>
Result<core::NsEntry> DecodeNsEntryT(Dec& dec) {
  core::NsEntry entry;
  DS_ASSIGN_OR_RETURN(entry.name, dec.GetString());
  DS_ASSIGN_OR_RETURN(std::uint32_t kind, dec.GetU32());
  if (kind > 2) return InternalError("bad NsEntry kind");
  entry.kind = static_cast<core::NsEntry::Kind>(kind);
  DS_ASSIGN_OR_RETURN(entry.id_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(entry.meta, dec.GetString());
  DS_ASSIGN_OR_RETURN(std::uint32_t owner, dec.GetU32());
  entry.owner_as = static_cast<AsId>(owner);
  return entry;
}

// The notice trailer is the LAST section of every response frame.
template <class Enc>
void EncodeNoticeTrailer(Enc& enc, const std::vector<core::GcNotice>& notices) {
  enc.PutU32(static_cast<std::uint32_t>(notices.size()));
  for (const auto& notice : notices) core::EncodeGcNotice(enc, notice);
}

template <class Dec>
Result<std::vector<core::GcNotice>> DecodeNoticeTrailerT(Dec& dec) {
  DS_ASSIGN_OR_RETURN(std::uint32_t count, dec.GetU32());
  std::vector<core::GcNotice> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DS_ASSIGN_OR_RETURN(core::GcNotice notice, DecodeGcNoticeT(dec));
    out.push_back(notice);
  }
  return out;
}

}  // namespace dstampede::client
