#include "dstampede/common/clock.hpp"

#include <cassert>
#include <thread>
#include <vector>

namespace dstampede {

namespace clock_internal {

std::atomic<VirtualClock*> g_virtual{nullptr};

void WallSleep(Duration d) {
  // Reaching a wall-clock sleep while a VirtualClock is installed
  // means a call site bypassed the seam (or cached a decision across
  // an Install): the simulated run would silently wait in real time.
  assert(InstalledVirtualClock() == nullptr &&
         "wall-clock sleep while a VirtualClock is installed");
  std::this_thread::sleep_for(d);
}

void WallSleepUntil(TimePoint until) {
  assert(InstalledVirtualClock() == nullptr &&
         "wall-clock sleep while a VirtualClock is installed");
  std::this_thread::sleep_until(until);
}

}  // namespace clock_internal

VirtualClock::VirtualClock(TimePoint start)
    : now_ticks_(start.time_since_epoch().count()) {}

VirtualClock::~VirtualClock() {
  if (installed()) Uninstall();
}

void VirtualClock::Install() {
  VirtualClock* expected = nullptr;
  const bool won = clock_internal::g_virtual.compare_exchange_strong(
      expected, this, std::memory_order_acq_rel);
  assert(won && "another VirtualClock is already installed");
  (void)won;
  installed_.store(true, std::memory_order_release);
}

void VirtualClock::Uninstall() {
  VirtualClock* expected = this;
  clock_internal::g_virtual.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel);
  installed_.store(false, std::memory_order_release);
  // Wake every virtual sleeper and timed wait: with the clock gone
  // they fall back to real-time behaviour instead of waiting for an
  // Advance that will never come.
  std::vector<std::condition_variable*> to_wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, cv] : timed_waits_) to_wake.push_back(cv);
  }
  sleep_cv_.notify_all();
  for (auto* cv : to_wake) cv->notify_all();
}

void VirtualClock::AdvanceTo(TimePoint t) {
  std::vector<std::condition_variable*> to_wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::int64_t ticks = now_ticks_.load(std::memory_order_relaxed);
    const std::int64_t target = t.time_since_epoch().count();
    if (target > ticks) {
      now_ticks_.store(target, std::memory_order_release);
      ticks = target;
    }
    // Every due timed wait gets (re-)notified — including entries that
    // were already due, so a waiter whose notify raced its own sleep
    // is rescued by the controller's next step.
    const TimePoint now{Duration(ticks)};
    for (const auto& [key, cv] : timed_waits_) {
      if (key.first > now) break;
      to_wake.push_back(cv);
    }
  }
  sleep_cv_.notify_all();
  for (auto* cv : to_wake) cv->notify_all();
}

void VirtualClock::SleepUntil(TimePoint until) {
  std::unique_lock<std::mutex> lock(mu_);
  while (installed_.load(std::memory_order_acquire) && Now() < until) {
    auto it = sleep_targets_.insert(until);
    sleep_cv_.wait(lock);
    sleep_targets_.erase(it);
  }
}

VirtualClock::WaitToken VirtualClock::RegisterTimedWait(
    TimePoint when, std::condition_variable* cv) {
  std::lock_guard<std::mutex> lock(mu_);
  const WaitToken token = next_token_++;
  timed_waits_.emplace(std::make_pair(when, token), cv);
  return token;
}

void VirtualClock::UnregisterTimedWait(WaitToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = timed_waits_.begin(); it != timed_waits_.end(); ++it) {
    if (it->first.second == token) {
      timed_waits_.erase(it);
      return;
    }
  }
}

std::optional<TimePoint> VirtualClock::NextEventTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<TimePoint> next;
  if (!timed_waits_.empty()) next = timed_waits_.begin()->first.first;
  if (!sleep_targets_.empty()) {
    const TimePoint s = *sleep_targets_.begin();
    if (!next || s < *next) next = s;
  }
  return next;
}

std::size_t VirtualClock::pending_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timed_waits_.size() + sleep_targets_.size();
}

Duration VirtualClock::AdvanceUntilQuiescent(
    Duration horizon, const std::function<bool()>& done, Duration max_step,
    Duration real_grace, Duration min_step) {
  const TimePoint start = Now();
  const TimePoint limit = start + horizon;
  while (Now() < limit) {
    if (done && done()) break;
    const std::optional<TimePoint> next = NextEventTime();
    TimePoint target;
    if (next.has_value()) {
      // Clamp into (now, now+max_step] so one huge timer far beyond
      // the horizon doesn't swallow the whole budget in one leap, and
      // already-due entries re-notify without moving time. min_step
      // (when nonzero) widens each step to cover a window of dense
      // deadlines under a single grace period.
      target = std::min({std::max(*next, Now() + min_step), Now() + max_step,
                         limit});
    } else if (done) {
      // Nothing registered but the caller still waits on progress that
      // real threads (socket receivers, dispatchers) must make: tick
      // time forward in quanta so their virtual deadlines keep
      // maturing.
      target = std::min(Now() + max_step, limit);
    } else {
      break;  // nothing pending, nothing awaited: quiescent
    }
    AdvanceTo(target);
    // Let the woken threads run far enough to act (send, complete,
    // register their next wait) before picking the next step.
    std::this_thread::sleep_for(real_grace);
  }
  return Now() - start;
}

}  // namespace dstampede
