#include "dstampede/common/status.hpp"

namespace dstampede {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kConnectionClosed: return "CONNECTION_CLOSED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kGarbageCollected: return "GARBAGE_COLLECTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dstampede
