// Byte buffers and bounds-checked big-endian readers/writers.
//
// Buffer is the unit of payload that flows through channels, queues and
// the transports. It is a move-friendly owning byte vector with cheap
// shared snapshots (SharedBuffer) so one item stored in a channel can
// be handed to many consumers without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dstampede/common/status.hpp"

namespace dstampede {

using Buffer = std::vector<std::uint8_t>;

// Immutable, reference-counted payload. Channels store these; gets in
// the same process alias the same bytes.
class SharedBuffer {
 public:
  SharedBuffer() = default;
  explicit SharedBuffer(Buffer data)
      : rep_(std::make_shared<const Buffer>(std::move(data))) {}

  static SharedBuffer FromString(std::string_view s) {
    return SharedBuffer(Buffer(s.begin(), s.end()));
  }

  bool empty() const { return !rep_ || rep_->empty(); }
  std::size_t size() const { return rep_ ? rep_->size() : 0; }
  const std::uint8_t* data() const { return rep_ ? rep_->data() : nullptr; }
  std::span<const std::uint8_t> span() const {
    return rep_ ? std::span<const std::uint8_t>(*rep_)
                : std::span<const std::uint8_t>();
  }
  Buffer ToVector() const { return rep_ ? *rep_ : Buffer{}; }
  std::string ToString() const {
    return rep_ ? std::string(rep_->begin(), rep_->end()) : std::string();
  }

 private:
  std::shared_ptr<const Buffer> rep_;
};

// Appends big-endian primitives to a Buffer. Never fails: it grows.
class ByteWriter {
 public:
  explicit ByteWriter(Buffer& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(v); }
  void U16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void U32(std::uint32_t v) {
    U16(static_cast<std::uint16_t>(v >> 16));
    U16(static_cast<std::uint16_t>(v));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v >> 32));
    U32(static_cast<std::uint32_t>(v));
  }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  // Length-prefixed byte string.
  void Blob(std::span<const std::uint8_t> data) {
    U32(static_cast<std::uint32_t>(data.size()));
    Bytes(data);
  }
  void Str(std::string_view s) {
    Blob(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  std::size_t size() const { return out_.size(); }

 private:
  Buffer& out_;
};

// Bounds-checked reader over a byte span; every accessor returns a
// Result so truncated/corrupt frames surface as errors, never UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Result<std::uint8_t> U8() {
    if (remaining() < 1) return Truncated();
    return data_[pos_++];
  }
  Result<std::uint16_t> U16() {
    if (remaining() < 2) return Truncated();
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> U32() {
    if (remaining() < 4) return Truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> U64() {
    if (remaining() < 8) return Truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }
  Result<std::int32_t> I32() {
    DS_ASSIGN_OR_RETURN(std::uint32_t v, U32());
    return static_cast<std::int32_t>(v);
  }
  Result<std::int64_t> I64() {
    DS_ASSIGN_OR_RETURN(std::uint64_t v, U64());
    return static_cast<std::int64_t>(v);
  }
  Result<double> F64() {
    DS_ASSIGN_OR_RETURN(std::uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  Result<std::span<const std::uint8_t>> Bytes(std::size_t n) {
    if (remaining() < n) return Truncated();
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  Result<Buffer> Blob() {
    DS_ASSIGN_OR_RETURN(std::uint32_t n, U32());
    DS_ASSIGN_OR_RETURN(auto bytes, Bytes(n));
    return Buffer(bytes.begin(), bytes.end());
  }
  Result<std::string> Str() {
    DS_ASSIGN_OR_RETURN(std::uint32_t n, U32());
    DS_ASSIGN_OR_RETURN(auto bytes, Bytes(n));
    return std::string(bytes.begin(), bytes.end());
  }

 private:
  static Status Truncated() { return InternalError("truncated frame"); }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Deterministic pattern fill used by tests and the virtual camera.
void FillPattern(Buffer& buf, std::uint64_t seed);
// Validates a FillPattern buffer; returns false on any corruption.
bool CheckPattern(std::span<const std::uint8_t> buf, std::uint64_t seed);

}  // namespace dstampede
