// Continuation-waiter primitives: the building blocks of event-driven
// blocking on the dispatch path.
//
// The space-time-memory API is blocking by definition — a get waits for
// its item, a put waits out back-pressure (paper §3.1) — but *how* a
// wait is implemented is an implementation choice with a liveness
// consequence. Parking a dispatcher worker per blocked remote call
// makes pool width a hard bound on the number of simultaneously blocked
// clients (the bench_ablation B cliff). Instead, the containers stage a
// blocked request as a registered continuation waiter — the same move
// tuple-space implementations make when they keep pending-match records
// for blocked in/rd requests — and the worker returns to the pool
// immediately. The thread whose put/consume/reclaim/close resolves the
// wait runs the continuation; deadline expiry and lifecycle events
// (peer death, container close, shutdown) complete it with the right
// error status instead.
//
// This header provides the pieces shared by every waiter site:
//
//  - DeferredReply: a once-only reply slot for a suspended request.
//    Whichever completer gets there first (item arrival, timeout, peer
//    death, shutdown) sends the reply; everyone else finds it claimed.
//  - TimerWheel: a shared deadline thread that turns "deadline expired
//    while parked" into a callback, so no thread has to sleep per
//    waiter just to enforce its deadline.
//  - SyncWaiter<T>: the inverse adapter — a stack-allocated completion
//    target that turns the two-phase async API back into the blocking
//    call the public STM API (and the surrogate threads serving end
//    devices) still expose.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/sync.hpp"

namespace dstampede {

// Origin tag a waiter carries when it was registered on behalf of a
// peer address space (AsIndex of the requester), so peer death can
// cancel exactly that peer's waiters. Waiters registered by local
// threads carry kNoWaiterOrigin (== AsIndex(kInvalidAsId)).
inline constexpr std::uint32_t kNoWaiterOrigin = 0xffffffffu;

// A once-only reply slot for a request suspended into a waiter. The
// dispatcher worker that suspends the request creates one; the
// completing thread — item arrival, deadline expiry, peer death,
// container close — encodes the reply and calls Complete(). Exactly
// one completer wins; the rest are no-ops, so racing completion paths
// need no further coordination.
class DeferredReply {
 public:
  using Sender = std::function<void(Buffer)>;

  DeferredReply(std::uint64_t request_id, Sender sender)
      : request_id_(request_id), sender_(std::move(sender)) {}

  DeferredReply(const DeferredReply&) = delete;
  DeferredReply& operator=(const DeferredReply&) = delete;

  // Sends `reply` through the sender iff this is the first completion.
  // Returns whether this call won the claim.
  bool Complete(Buffer reply) {
    if (completed_.exchange(true, std::memory_order_acq_rel)) return false;
    sender_(std::move(reply));
    return true;
  }

  bool completed() const { return completed_.load(std::memory_order_acquire); }
  std::uint64_t request_id() const { return request_id_; }

 private:
  const std::uint64_t request_id_;
  std::atomic<bool> completed_{false};
  Sender sender_;
};

// Deadline service for parked waiters: one background thread per
// address space fires scheduled callbacks at their deadlines, so a
// thousand parked waiters with deadlines cost one sleeping thread, not
// a thousand. Implemented as a deadline-ordered map rather than a
// cascading bucket wheel: waiter populations here are hundreds, and
// the ordered map keeps cancellation (the overwhelmingly common case —
// most waiters complete long before their deadline) a cheap erase.
//
// Callbacks run on the wheel thread with no wheel lock held, so they
// may freely take container locks (CancelWaiter). They must not block
// indefinitely — every other timer waits behind them.
class TimerWheel {
 public:
  using TimerId = std::uint64_t;

  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Schedules `fn` to run at `deadline` (immediately, but still on the
  // wheel thread, if it already passed). An infinite deadline is never
  // scheduled: returns 0, a TimerId no other entry uses. Safe to call
  // while holding a container lock (the wheel lock is a leaf).
  TimerId Schedule(Deadline deadline, std::function<void()> fn);

  // Removes a pending entry. Returns false when the entry already
  // fired, was cancelled, or never existed (id 0).
  bool Cancel(TimerId id);

  // Stops the thread; pending entries are dropped without firing. Any
  // callback mid-flight finishes first (the destructor joins).
  // Idempotent.
  void Shutdown();

  std::size_t pending() const;

 private:
  void Loop();

  mutable ds::Mutex mu_{"timer_wheel.mu"};
  ds::CondVar cv_;
  // Ordered by (deadline, id): the front entry is always the next due.
  std::map<std::pair<TimePoint, TimerId>, std::function<void()>> entries_
      DS_GUARDED_BY(mu_);
  std::unordered_map<TimerId, TimePoint> index_ DS_GUARDED_BY(mu_);
  TimerId next_id_ DS_GUARDED_BY(mu_) = 1;
  bool stopping_ DS_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

// Turns the two-phase async container API back into a blocking call:
// the caller registers a completion that writes here, then parks its
// own thread — which is fine, because it is the *caller's* thread (an
// application thread or a surrogate's dedicated session thread), not a
// shared dispatcher worker.
//
// Stack allocation is safe because every registered waiter is
// completed exactly once (by progress, deadline, cancellation, or
// close) before its record is dropped; the wrapper does not return
// until that completion ran.
template <typename T>
class SyncWaiter {
 public:
  SyncWaiter() = default;
  SyncWaiter(const SyncWaiter&) = delete;
  SyncWaiter& operator=(const SyncWaiter&) = delete;

  void Complete(T value) {
    ds::MutexLock lock(mu_);
    result_.emplace(std::move(value));
    cv_.NotifyAll();
  }

  // Waits for Complete() up to `deadline`; true iff it ran.
  bool AwaitUntil(Deadline deadline) {
    ds::MutexLock lock(mu_);
    while (!result_.has_value()) {
      if (!cv_.WaitUntil(mu_, deadline)) return result_.has_value();
    }
    return true;
  }

  // Waits for Complete() without a deadline and yields the result.
  // Only call after arranging that completion is inevitable (e.g. a
  // successful CancelWaiter runs it inline).
  T TakeResult() {
    ds::MutexLock lock(mu_);
    while (!result_.has_value()) cv_.Wait(mu_);
    T out = std::move(*result_);
    return out;
  }

 private:
  ds::Mutex mu_{"sync_waiter.mu"};
  ds::CondVar cv_;
  std::optional<T> result_ DS_GUARDED_BY(mu_);
};

}  // namespace dstampede
