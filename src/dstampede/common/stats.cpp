#include "dstampede/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace dstampede {

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0.0;
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

std::int64_t LatencyRecorder::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

std::int64_t LatencyRecorder::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::int64_t LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::vector<std::int64_t> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string LatencyRecorder::Summary() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << Mean() << "us min=" << Min()
     << "us p50=" << Median() << "us p99=" << Percentile(99)
     << "us max=" << Max() << "us";
  return os.str();
}

double RateMeter::ElapsedSeconds() const {
  return std::chrono::duration<double>(Now() - start_).count();
}

double RateMeter::Rate() const {
  const double secs = ElapsedSeconds();
  return secs > 0 ? static_cast<double>(events_) / secs : 0.0;
}

}  // namespace dstampede
