#include "dstampede/common/logging.hpp"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "dstampede/common/clock.hpp"

namespace dstampede {
namespace {

// Fixed-size TLS buffers: no allocation on the logging path, trivially
// destructible (safe to touch during thread teardown).
struct ThreadLogState {
  char name[32] = {0};
  std::uint64_t trace_id = 0;
};
thread_local ThreadLogState t_log_state;

}  // namespace

void SetThreadLogContext(std::string_view name) {
  const std::size_t n = std::min(name.size(), sizeof(t_log_state.name) - 1);
  std::memcpy(t_log_state.name, name.data(), n);
  t_log_state.name[n] = '\0';
}

void SetThreadLogTraceId(std::uint64_t trace_id) {
  t_log_state.trace_id = trace_id;
}

std::string_view ThreadLogContextName() { return t_log_state.name; }

namespace {

std::mutex& WriteMutex() {
  static std::mutex m;
  return m;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

// Strip the path down to the basename for compact lines.
std::string_view Basename(std::string_view path) {
  auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, std::string_view file, int line,
                   std::string_view message) {
  // Through the clock seam, so simulated runs log virtual timestamps
  // that line up with the trace they produce.
  const auto now = ToMicros(Now().time_since_epoch());
  std::string_view base = Basename(file);
  // Per-thread context prefix: "[AS0] " / "[AS0 trace=1f..] ".
  char ctx[64] = {0};
  if (t_log_state.name[0] != '\0' || t_log_state.trace_id != 0) {
    if (t_log_state.trace_id != 0) {
      std::snprintf(ctx, sizeof(ctx), "[%s%strace=%016llx] ",
                    t_log_state.name, t_log_state.name[0] ? " " : "",
                    static_cast<unsigned long long>(t_log_state.trace_id));
    } else {
      std::snprintf(ctx, sizeof(ctx), "[%s] ", t_log_state.name);
    }
  }
  std::lock_guard<std::mutex> lock(WriteMutex());
  std::fprintf(stderr, "%s %lld.%06lld %s%.*s:%d] %.*s\n", LevelTag(level),
               static_cast<long long>(now / 1000000),
               static_cast<long long>(now % 1000000), ctx,
               static_cast<int>(base.size()), base.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace dstampede
