// Status and Result<T>: the error model used across the whole library.
//
// D-Stampede is a runtime system: most failures (peer gone, timeout,
// unknown channel, timestamp already present) are expected conditions
// the application reacts to, not programming errors. We therefore
// return Status / Result<T> everywhere and reserve exceptions for
// nothing at all on hot paths.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dstampede {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something nonsensical
  kNotFound,          // channel/queue/name/timestamp does not exist
  kAlreadyExists,     // duplicate timestamp in a channel, duplicate name
  kFailedPrecondition,// call not legal in the current state
  kPermissionDenied,  // wrong connection mode (input vs output)
  kTimeout,           // deadline expired on a blocking call
  kUnavailable,       // transport or peer unavailable (retryable)
  kConnectionClosed,  // peer cleanly went away
  kResourceExhausted, // buffers/window full
  kGarbageCollected,  // requested timestamp was already reclaimed
  kCancelled,         // runtime shutting down
  kInternal,          // bug or protocol violation
};

std::string_view StatusCodeName(StatusCode code);

// A cheap value type: code + optional message. Ok carries no allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(StatusCode code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "code: message" or just "code".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

inline Status OkStatus() { return Status::Ok(); }

#define DS_DEFINE_STATUS_FACTORY(Name, Code)            \
  inline Status Name(std::string msg = {}) {            \
    return Status(StatusCode::Code, std::move(msg));    \
  }
DS_DEFINE_STATUS_FACTORY(InvalidArgumentError, kInvalidArgument)
DS_DEFINE_STATUS_FACTORY(NotFoundError, kNotFound)
DS_DEFINE_STATUS_FACTORY(AlreadyExistsError, kAlreadyExists)
DS_DEFINE_STATUS_FACTORY(FailedPreconditionError, kFailedPrecondition)
DS_DEFINE_STATUS_FACTORY(PermissionDeniedError, kPermissionDenied)
DS_DEFINE_STATUS_FACTORY(TimeoutError, kTimeout)
DS_DEFINE_STATUS_FACTORY(UnavailableError, kUnavailable)
DS_DEFINE_STATUS_FACTORY(ConnectionClosedError, kConnectionClosed)
DS_DEFINE_STATUS_FACTORY(ResourceExhaustedError, kResourceExhausted)
DS_DEFINE_STATUS_FACTORY(GarbageCollectedError, kGarbageCollected)
DS_DEFINE_STATUS_FACTORY(CancelledError, kCancelled)
DS_DEFINE_STATUS_FACTORY(InternalError, kInternal)
#undef DS_DEFINE_STATUS_FACTORY

// Result<T> = T or Status. Modeled after std::expected (not in
// libstdc++ 12), with just the operations this codebase needs.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {}     // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkSingleton = Status::Ok();
    if (ok()) return kOkSingleton;
    return std::get<Status>(rep_);
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

// Propagate a non-ok Status from an expression.
#define DS_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::dstampede::Status ds_status_ = (expr);      \
    if (!ds_status_.ok()) return ds_status_;      \
  } while (false)

// Evaluate a Result<T> expression; bind the value or return its status.
#define DS_ASSIGN_OR_RETURN(lhs, expr)            \
  DS_ASSIGN_OR_RETURN_IMPL_(                      \
      DS_STATUS_CONCAT_(ds_result_, __LINE__), lhs, expr)
#define DS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()
#define DS_STATUS_CONCAT_(a, b) DS_STATUS_CONCAT_IMPL_(a, b)
#define DS_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace dstampede
