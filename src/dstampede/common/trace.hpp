// Cross-address-space request tracing.
//
// A TraceContext (trace id + span id + flags) rides the existing wire
// protocols as an optional header field (see core/wire.hpp: the high
// bit of the op word marks its presence, so untraced peers
// interoperate unchanged). The context is carried per-thread: the
// dispatcher installs the incoming context before executing a request,
// every outgoing EncodeRequestHeader re-emits the current context, and
// spans opened along the way parent onto the context's span id — so a
// client call fans out into a tree: client.call -> surrogate.dispatch
// -> owner.serve / owner.parked, across processes and suspensions.
//
// Spans land in a per-address-space SpanSink ring buffer, exported
// through the sys/metrics snapshot. Everything here is no-op cheap
// when the current context is unsampled (a TLS read and a branch).
//
// Locking: "trace.span_sink.mu" is leaf-level — Record/Snapshot only;
// no user code, no blocking, no other lock is ever taken under it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/sync.hpp"

namespace dstampede::trace {

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint32_t flags = 0;

  static constexpr std::uint32_t kSampled = 1u;
  bool sampled() const { return trace_id != 0 && (flags & kSampled) != 0; }
};

// The calling thread's ambient context (empty/unsampled by default).
TraceContext CurrentContext();
// Installs `ctx` (also mirrors the trace id into the log prefix, see
// logging.hpp). Pass {} to clear.
void SetCurrentContext(const TraceContext& ctx);

// Fresh nonzero id (thread-local splitmix64, collision-free enough
// for ring-buffer lifetimes).
std::uint64_t NewId();

// RAII: install a context for the current scope, restore on exit.
class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& ctx) : prev_(CurrentContext()) {
    SetCurrentContext(ctx);
  }
  ~ScopedContext() { SetCurrentContext(prev_); }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext prev_;
};

// One completed (or still-active) span.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;
  TimePoint start{};
  Duration duration{};  // zero while active
};

// Bounded per-address-space span store: a ring of completed spans plus
// the set of currently active ones. All methods are safe from any
// thread.
class SpanSink {
 public:
  explicit SpanSink(std::size_t capacity = 2048) : capacity_(capacity) {}
  SpanSink(const SpanSink&) = delete;
  SpanSink& operator=(const SpanSink&) = delete;

  void Record(Span span) DS_EXCLUDES(mu_);
  void BeginActive(const Span& span) DS_EXCLUDES(mu_);
  void EndActive(std::uint64_t span_id) DS_EXCLUDES(mu_);

  std::vector<Span> Snapshot() const DS_EXCLUDES(mu_);
  std::vector<Span> ActiveSnapshot() const DS_EXCLUDES(mu_);
  std::uint64_t dropped() const DS_EXCLUDES(mu_);

  // Appends completed + active spans as a JSON array to `out`.
  void WriteJson(std::string& out) const DS_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable ds::Mutex mu_{"trace.span_sink.mu"};
  std::deque<Span> spans_ DS_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, Span> active_ DS_GUARDED_BY(mu_);
  std::uint64_t dropped_ DS_GUARDED_BY(mu_) = 0;
};

// RAII span: opens a child of the calling thread's current context
// (or adopts an explicit context as the span's own identity, for the
// first server-side span of a wire request), installs itself as the
// current context, and records into `sink` on destruction. Inactive —
// zero work beyond the TLS read — when the context is unsampled or
// `sink` is null.
class ScopedSpan {
 public:
  // Child of the current thread context.
  ScopedSpan(SpanSink* sink, const char* name)
      : ScopedSpan(sink, name, CurrentContext(), /*adopt_span_id=*/false) {}
  // `adopt_span_id` true: this span IS ctx.span_id (the wire span the
  // remote sender created); false: a fresh child of ctx.span_id.
  ScopedSpan(SpanSink* sink, const char* name, const TraceContext& ctx,
             bool adopt_span_id);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return sink_ != nullptr; }
  std::uint64_t span_id() const { return span_.span_id; }

 private:
  SpanSink* sink_ = nullptr;  // null: inactive
  Span span_;
  TraceContext prev_;
};

// A span whose end is decoupled from scope: started when a request is
// suspended into a waiter, finished (possibly on another thread) when
// the continuation fires. Movable; Finish() is idempotent.
class PendingSpan {
 public:
  PendingSpan() = default;
  // Child of `ctx` (no-op when unsampled or sink null).
  PendingSpan(SpanSink* sink, const char* name, const TraceContext& ctx);
  PendingSpan(PendingSpan&& other) noexcept { *this = std::move(other); }
  PendingSpan& operator=(PendingSpan&& other) noexcept;
  ~PendingSpan() { Finish(); }
  PendingSpan(const PendingSpan&) = delete;
  PendingSpan& operator=(const PendingSpan&) = delete;

  void Finish();
  bool active() const { return sink_ != nullptr; }

 private:
  SpanSink* sink_ = nullptr;
  Span span_;
};

}  // namespace dstampede::trace
