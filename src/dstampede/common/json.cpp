#include "dstampede/common/json.hpp"

#include <cctype>
#include <cstdlib>

namespace dstampede::json {

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const Value* Value::FindPath(const std::string& path) const {
  const Value* cur = this;
  std::size_t pos = 0;
  while (cur != nullptr && pos < path.size()) {
    const std::size_t dot = path.find('.', pos);
    const std::string key =
        path.substr(pos, dot == std::string::npos ? std::string::npos
                                                  : dot - pos);
    cur = cur->Find(key);
    if (dot == std::string::npos) break;
    pos = dot + 1;
  }
  return cur;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    DS_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing garbage");
    return v;
  }

 private:
  Status Err(const char* what) const {
    return InvalidArgumentError(std::string("json: ") + what + " at offset " +
                                std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
      case 'f': return ParseBool();
      case 'n': return ParseNull();
      default: return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Value v;
    v.kind_ = Value::Kind::kObject;
    SkipWs();
    if (Consume('}')) return v;
    for (;;) {
      SkipWs();
      DS_ASSIGN_OR_RETURN(Value key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      DS_ASSIGN_OR_RETURN(Value member, ParseValue());
      v.object_.emplace(key.string_, std::move(member));
      SkipWs();
      if (Consume('}')) return v;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Value v;
    v.kind_ = Value::Kind::kArray;
    SkipWs();
    if (Consume(']')) return v;
    for (;;) {
      DS_ASSIGN_OR_RETURN(Value element, ParseValue());
      v.array_.push_back(std::move(element));
      SkipWs();
      if (Consume(']')) return v;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<Value> ParseString() {
    if (!Consume('"')) return Err("expected string");
    Value v;
    v.kind_ = Value::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string_.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string_.push_back('"'); break;
        case '\\': v.string_.push_back('\\'); break;
        case '/': v.string_.push_back('/'); break;
        case 'b': v.string_.push_back('\b'); break;
        case 'f': v.string_.push_back('\f'); break;
        case 'n': v.string_.push_back('\n'); break;
        case 'r': v.string_.push_back('\r'); break;
        case 't': v.string_.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Latin-1 subset is enough for our ASCII producers.
          v.string_.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Result<Value> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      Value v;
      v.kind_ = Value::Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      Value v;
      v.kind_ = Value::Kind::kBool;
      v.bool_ = false;
      return v;
    }
    return Err("bad literal");
  }

  Result<Value> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Value();
    }
    return Err("bad literal");
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      any = true;
      ++pos_;
    }
    if (!any) return Err("expected value");
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                            nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace dstampede::json
