// Runtime lock-order deadlock detection behind ds::Mutex.
//
// Model: a directed graph over lock *nodes*. A named mutex maps to a
// node shared by every mutex with that name (a lock class); an unnamed
// mutex maps to a per-instance node. Whenever a thread acquires B
// while holding A (top of its held stack) we insert edge A→B — but
// first we search for a path B→…→A. Finding one means some earlier
// acquisition established the opposite order: a potential deadlock,
// reported with both stacks and aborted *before* this thread blocks on
// B, so the report is produced instead of the hang.
//
// The graph only grows (edges are never removed, even when mutexes are
// destroyed), which is what makes the check a discipline check rather
// than a liveness heuristic: an order violation is reported even if
// the two threads never actually race. Name-aggregation keeps the
// graph small and catches ABBA across instances of one lock class; the
// cost is that two same-named mutexes must never be nested (nesting
// within a class has no defined order, so we treat it as unordered and
// record no edge).
//
// Everything here is off unless DSTAMPEDE_DEADLOCK_DETECT is set; the
// fast path is one relaxed atomic load per lock()/unlock().
#include "dstampede/common/sync.hpp"

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dstampede::sync {
namespace {

constexpr int kMaxFrames = 32;

struct Backtrace {
  void* frames[kMaxFrames];
  int depth = 0;

  void Capture() { depth = ::backtrace(frames, kMaxFrames); }
  void Dump() const {
    if (depth > 0) ::backtrace_symbols_fd(frames, depth, STDERR_FILENO);
  }
};

struct HeldLock {
  const Mutex* mu;
  std::uintptr_t node;
  Backtrace acquired_at;
};

struct EdgeInfo {
  Backtrace acquired_at;  // the acquisition that first created from→to
};

struct Graph {
  std::mutex mu;
  // node → (successor node → first acquisition that created the edge)
  std::unordered_map<std::uintptr_t, std::unordered_map<std::uintptr_t, EdgeInfo>>
      edges;
  std::unordered_map<std::uintptr_t, const char*> names;
  std::size_t edge_count = 0;
};

Graph& graph() {
  static Graph* g = new Graph;  // leaked: outlives static-dtor order issues
  return *g;
}

// -1: not yet read from the environment.
std::atomic<int> g_enabled{-1};

thread_local std::vector<HeldLock> t_held;

const char* NodeName(const Graph& g, std::uintptr_t node) {
  auto it = g.names.find(node);
  return it != g.names.end() ? it->second : "<unnamed>";
}

// DFS: is `to` reachable from `from`? Caller holds g.mu. On success
// `path` holds the nodes from `from` to `to` inclusive.
bool PathExists(const Graph& g, std::uintptr_t from, std::uintptr_t to,
                std::vector<std::uintptr_t>& path,
                std::unordered_set<std::uintptr_t>& visited) {
  path.push_back(from);
  if (from == to) return true;
  visited.insert(from);
  auto it = g.edges.find(from);
  if (it != g.edges.end()) {
    for (const auto& [next, info] : it->second) {
      if (visited.count(next) != 0) continue;
      if (PathExists(g, next, to, path, visited)) return true;
    }
  }
  path.pop_back();
  return false;
}

[[noreturn]] void DieCycle(Graph& g, const HeldLock& held, const Mutex* about,
                           const std::vector<std::uintptr_t>& path) {
  std::fprintf(stderr,
               "\n[dstampede] deadlock detector: lock-order cycle detected\n"
               "  this thread is acquiring \"%s\" while holding \"%s\",\n"
               "  but an earlier acquisition ordered them the other way:\n   ",
               about->name(), held.mu->name());
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::fprintf(stderr, "%s\"%s\"", i == 0 ? " " : " -> ",
                 NodeName(g, path[i]));
  }
  std::fprintf(stderr, " -> (this acquisition) \"%s\"\n", about->name());
  std::fprintf(stderr, "  --- current acquisition stack ---\n");
  Backtrace now;
  now.Capture();
  now.Dump();
  std::fprintf(stderr, "  --- stack holding \"%s\" ---\n", held.mu->name());
  held.acquired_at.Dump();
  // The earlier, conflicting order: the first edge on the reverse path.
  if (path.size() >= 2) {
    auto it = g.edges.find(path[0]);
    if (it != g.edges.end()) {
      auto jt = it->second.find(path[1]);
      if (jt != it->second.end()) {
        std::fprintf(stderr,
                     "  --- earlier acquisition that ordered \"%s\" before "
                     "\"%s\" ---\n",
                     NodeName(g, path[0]), NodeName(g, path[1]));
        jt->second.acquired_at.Dump();
      }
    }
  }
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void DieReentrant(const HeldLock& held) {
  std::fprintf(stderr,
               "\n[dstampede] deadlock detector: re-entrant acquisition of "
               "ds::Mutex \"%s\"\n"
               "  this thread already holds this mutex; locking it again "
               "would self-deadlock\n"
               "  (classic instance: a callback dispatched while the lock "
               "is held calls back in).\n"
               "  --- current acquisition stack ---\n",
               held.mu->name());
  Backtrace now;
  now.Capture();
  now.Dump();
  std::fprintf(stderr, "  --- original acquisition stack ---\n");
  held.acquired_at.Dump();
  std::fflush(stderr);
  std::abort();
}

std::uintptr_t HashName(const char* name) {
  // FNV-1a; low bit set so name nodes can never collide with pointer
  // nodes (pointers are at least 2-aligned).
  std::uintptr_t h = 1469598103934665603ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ull;
  }
  return h | 1u;
}

}  // namespace

bool DeadlockDetectionEnabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("DSTAMPEDE_DEADLOCK_DETECT");
    v = (e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0) ? 1 : 0;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void SetDeadlockDetectionForTesting(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::size_t LockOrderEdgeCountForTesting() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.edge_count;
}

void AssertBlockingAllowed(const char* what) {
  if (!DeadlockDetectionEnabled()) return;
  for (const HeldLock& held : t_held) {
    if (held.mu->blocking_allowed()) continue;
    std::fprintf(stderr,
                 "\n[dstampede] deadlock detector: blocking operation \"%s\" "
                 "while holding ds::Mutex \"%s\"\n"
                 "  a lock not marked kBlockingAllowed may not be held "
                 "across indefinite waits\n"
                 "  --- current stack ---\n",
                 what, held.mu->name());
    Backtrace now;
    now.Capture();
    now.Dump();
    std::fprintf(stderr, "  --- stack that acquired \"%s\" ---\n",
                 held.mu->name());
    held.acquired_at.Dump();
    std::fflush(stderr);
    std::abort();
  }
}

std::uintptr_t Mutex::node_id() const {
  return name_ != nullptr ? HashName(name_)
                          : reinterpret_cast<std::uintptr_t>(this);
}

// Friend of Mutex; wraps the detector callbacks used by Mutex/CondVar.
struct Detector {
  // Runs the order checks *before* blocking on `m` so a genuine
  // inversion is reported rather than deadlocking first.
  static void BeforeLock(const Mutex* m) {
    if (!DeadlockDetectionEnabled()) return;
    for (const HeldLock& held : t_held) {
      if (held.mu == m) DieReentrant(held);
    }
    if (t_held.empty()) return;
    const HeldLock& top = t_held.back();
    const std::uintptr_t from = top.node;
    const std::uintptr_t to = m->node_id();
    if (from == to) return;  // same lock class: unordered, no edge
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    auto& out = g.edges[from];
    if (out.find(to) != out.end()) return;  // edge already known
    std::vector<std::uintptr_t> path;
    std::unordered_set<std::uintptr_t> visited;
    if (PathExists(g, to, from, path, visited)) {
      g.names.emplace(to, m->name());
      g.names.emplace(from, top.mu->name());
      DieCycle(g, top, m, path);
    }
    EdgeInfo info;
    info.acquired_at.Capture();
    out.emplace(to, std::move(info));
    g.names.emplace(from, top.mu->name());
    g.names.emplace(to, m->name());
    ++g.edge_count;
  }

  static void AfterLock(const Mutex* m) {
    if (!DeadlockDetectionEnabled()) return;
    HeldLock held{m, m->node_id(), {}};
    held.acquired_at.Capture();
    t_held.push_back(held);
  }

  static void OnUnlock(const Mutex* m) {
    if (!DeadlockDetectionEnabled()) return;
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
      if (it->mu == m) {
        t_held.erase(std::next(it).base());
        return;
      }
    }
  }

  static bool Held(const Mutex* m) {
    for (const HeldLock& held : t_held) {
      if (held.mu == m) return true;
    }
    return false;
  }
};

void Mutex::lock() {
  Detector::BeforeLock(this);
  mu_.lock();
  Detector::AfterLock(this);
}

void Mutex::unlock() {
  Detector::OnUnlock(this);
  mu_.unlock();
}

bool Mutex::try_lock() {
  // try_lock cannot deadlock (it fails instead of blocking), so no
  // order edge is recorded; the held stack still tracks it.
  if (!mu_.try_lock()) return false;
  Detector::AfterLock(this);
  return true;
}

void Mutex::AssertHeld() const {
  if (!DeadlockDetectionEnabled()) return;
  if (Detector::Held(this)) return;
  std::fprintf(stderr,
               "\n[dstampede] deadlock detector: AssertHeld failed for "
               "ds::Mutex \"%s\" — lock not held by this thread\n",
               name());
  Backtrace now;
  now.Capture();
  now.Dump();
  std::fflush(stderr);
  std::abort();
}

void CondVar::Wait(Mutex& mu) {
  // The wait releases mu; mirror that in the detector's held set so
  // concurrent order checks on this thread stay accurate.
  Detector::OnUnlock(&mu);
  std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
  cv_.wait(ul);
  ul.release();
  Detector::AfterLock(&mu);
}

bool CondVar::WaitUntil(Mutex& mu, Deadline deadline) {
  if (deadline.infinite()) {
    Wait(mu);
    return true;
  }
  VirtualClock* vc = InstalledVirtualClock();
  Detector::OnUnlock(&mu);
  std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
  bool notified;
  if (vc == nullptr) {
    notified =
        cv_.wait_until(ul, deadline.when()) == std::cv_status::no_timeout;
  } else {
    notified = WaitUntilVirtual(ul, deadline, vc);
  }
  ul.release();
  Detector::AfterLock(&mu);
  return notified;
}

bool CondVar::WaitUntilVirtual(std::unique_lock<std::mutex>& ul,
                               Deadline deadline, VirtualClock* vc) {
  // Virtual-time timed wait: the deadline matures when the installed
  // VirtualClock is advanced past it, not when the wall clock gets
  // there. Each pass registers with the clock's timed-wait registry
  // (AdvanceTo past `when` notify_all()s our cv), then waits a short
  // *real* slice as belt-and-braces against the register/notify race —
  // a notification sent between our registry insert and the wait_for
  // is re-sent by the controller's next Advance, and the slice bounds
  // the damage of any missed wakeup to 2ms of wall time.
  const TimePoint when = deadline.when();
  // Snapshot under the caller's mutex: any notify bumped after this
  // (even one landing in the unprotected gap between two slices, where
  // cv_ has no formal waiter to receive it) is detected below instead
  // of being lost against a frozen virtual deadline.
  const std::uint64_t entry_gen = gen_.load(std::memory_order_acquire);
  for (;;) {
    if (vc->Now() >= when) return false;  // timed out (in virtual time)
    const VirtualClock::WaitToken token =
        vc->RegisterTimedWait(when, &cv_);
    const std::cv_status st = cv_.wait_for(ul, std::chrono::milliseconds(2));
    vc->UnregisterTimedWait(token);
    if (vc->Now() >= when) return false;
    if (st == std::cv_status::no_timeout) return true;  // maybe-notified
    if (gen_.load(std::memory_order_acquire) != entry_gen) {
      return true;  // notified between slices; the caller rechecks
    }
    if (!vc->installed()) {
      // Clock torn down mid-wait: finish on real time so callers see
      // ordinary timeout behaviour instead of spinning forever.
      return cv_.wait_until(ul, when) == std::cv_status::no_timeout;
    }
  }
}

}  // namespace dstampede::sync
