#include "dstampede/common/bytes.hpp"

namespace dstampede {
namespace {
// splitmix64: small, fast, good-enough generator for test patterns.
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void FillPattern(Buffer& buf, std::uint64_t seed) {
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (i % 8 == 0) state = seed + SplitMix64(state);
    buf[i] = static_cast<std::uint8_t>(state >> ((i % 8) * 8));
  }
}

bool CheckPattern(std::span<const std::uint8_t> buf, std::uint64_t seed) {
  Buffer expect(buf.size());
  FillPattern(expect, seed);
  return std::memcmp(expect.data(), buf.data(), buf.size()) == 0;
}

}  // namespace dstampede
