// Minimal JSON value + recursive-descent parser, used by the
// introspection consumers (tools/dsctl, telemetry tests) to validate
// and walk sys/metrics snapshots. Writing is done with plain string
// appends at the producer sites (metrics.cpp, trace.cpp,
// address_space.cpp) — this header is the read side.
//
// Supports the full JSON grammar except \uXXXX escapes beyond latin-1
// (sufficient: every producer in this repo emits ASCII).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dstampede/common/status.hpp"

namespace dstampede::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  std::int64_t AsInt() const { return static_cast<std::int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::map<std::string, Value>& AsObject() const { return object_; }

  // Object member lookup; null when absent or not an object.
  const Value* Find(const std::string& key) const;
  // Dotted-path convenience: Find("registry.counters").
  const Value* FindPath(const std::string& path) const;

  static Value MakeNull() { return Value(); }

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

// Parses one JSON document (trailing whitespace allowed, trailing
// garbage is an error).
Result<Value> Parse(std::string_view text);

}  // namespace dstampede::json
