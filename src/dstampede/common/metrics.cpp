#include "dstampede/common/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>

namespace dstampede::metrics {

void Histogram::Observe(std::int64_t sample) {
  if (sample < 0) sample = 0;
  const std::uint64_t v = static_cast<std::uint64_t>(sample);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  // First observer seeds min/max; racy CAS loops keep them tight.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(sample, std::memory_order_relaxed);
    max_.store(sample, std::memory_order_relaxed);
  }
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

std::size_t Histogram::BucketIndex(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const std::size_t octave = static_cast<std::size_t>(std::bit_width(v)) - 1;
  const std::size_t sub =
      static_cast<std::size_t>(v >> (octave - kSubBits)) & (kSubBuckets - 1);
  const std::size_t index = (octave - 3) * kSubBuckets + sub;
  return std::min(index, kBuckets - 1);
}

std::int64_t Histogram::BucketValue(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t octave = index / kSubBuckets + 3;
  const std::size_t sub = index % kSubBuckets;
  const std::uint64_t low = (kSubBuckets + sub) << (octave - kSubBits);
  const std::uint64_t width = std::uint64_t{1} << (octave - kSubBits);
  return static_cast<std::int64_t>(low + width / 2);
}

std::int64_t Histogram::Mean() const {
  const std::uint64_t n = Count();
  if (n == 0) return 0;
  return Sum() / static_cast<std::int64_t>(n);
}

std::int64_t Histogram::Min() const {
  return Count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::Max() const {
  return Count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::Percentile(double p) const {
  const std::uint64_t n = Count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample (1-based), matching LatencyRecorder's
  // nearest-rank percentile.
  std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 *
                                                  static_cast<double>(n - 1)) +
                       1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Clamp the bucket midpoint into the observed range so p0/p100
      // agree with Min/Max despite bucket rounding.
      return std::clamp(BucketValue(i), Min(), Max());
    }
  }
  return Max();
}

std::string Histogram::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%" PRIu64 " mean=%" PRId64 " min=%" PRId64 " p50=%" PRId64
                " p99=%" PRId64 " max=%" PRId64,
                Count(), Mean(), Min(), Percentile(50), Percentile(99), Max());
  return buf;
}

Counter& Registry::GetCounter(const std::string& name) {
  ds::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  ds::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  ds::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t Registry::AddProvider(const std::string& name, Provider fn) {
  ds::MutexLock lock(mu_);
  const std::uint64_t token = next_provider_token_++;
  providers_.emplace(token, ProviderEntry{name, std::move(fn)});
  return token;
}

void Registry::RemoveProvider(std::uint64_t token) {
  ds::MutexLock lock(mu_);
  providers_.erase(token);
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

void Registry::WriteJson(std::string& out) const {
  // Snapshot the instrument pointers under the (leaf) mutex, then
  // format and run providers outside it.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<ProviderEntry> providers;
  {
    ds::MutexLock lock(mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
    for (const auto& [token, entry] : providers_) providers.push_back(entry);
  }

  out += "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out.push_back(',');
    AppendEscaped(out, counters[i].first);
    out.push_back(':');
    AppendU64(out, counters[i].second->Value());
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) out.push_back(',');
    AppendEscaped(out, gauges[i].first);
    out.push_back(':');
    AppendI64(out, gauges[i].second->Value());
  }
  out += "},\"providers\":{";
  for (std::size_t i = 0; i < providers.size(); ++i) {
    if (i) out.push_back(',');
    AppendEscaped(out, providers[i].name);
    out.push_back(':');
    AppendI64(out, providers[i].fn ? providers[i].fn() : 0);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i) out.push_back(',');
    const Histogram& h = *histograms[i].second;
    AppendEscaped(out, histograms[i].first);
    out += ":{\"count\":";
    AppendU64(out, h.Count());
    out += ",\"sum\":";
    AppendI64(out, h.Sum());
    out += ",\"mean\":";
    AppendI64(out, h.Mean());
    out += ",\"min\":";
    AppendI64(out, h.Min());
    out += ",\"p50\":";
    AppendI64(out, h.Percentile(50));
    out += ",\"p99\":";
    AppendI64(out, h.Percentile(99));
    out += ",\"max\":";
    AppendI64(out, h.Max());
    out += "}";
  }
  out += "}}";
}

}  // namespace dstampede::metrics
