// Minimal leveled logger. Thread-safe, writes to stderr, off by default
// above kWarn so benchmarks stay quiet. DS_LOG(kDebug) << ... incurs no
// formatting cost when the level is disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string_view>

namespace dstampede {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Per-thread log context: every line the thread writes is prefixed
// with "[name]" (the owning address space / surrogate, set once per
// worker thread) and, when a sampled trace context is installed,
// "trace=<id>". Interleaved multi-space test logs stay attributable.
// Both are no-ops on threads that never set them.
void SetThreadLogContext(std::string_view name);
void SetThreadLogTraceId(std::uint64_t trace_id);  // 0 clears
// The calling thread's installed context name ("" if none). The view
// stays valid until the thread's next SetThreadLogContext.
std::string_view ThreadLogContextName();

class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  // Writes one already-formatted line; serialized internally.
  void Write(LogLevel level, std::string_view file, int line,
             std::string_view message);

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
};

namespace internal {
// Accumulates a log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Instance().Write(level_, file_, line_, os_.str()); }
  std::ostream& stream() { return os_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};
}  // namespace internal

#define DS_LOG(severity)                                                    \
  if (!::dstampede::Logger::Instance().Enabled(::dstampede::LogLevel::severity)) \
    ;                                                                       \
  else                                                                      \
    ::dstampede::internal::LogMessage(::dstampede::LogLevel::severity,      \
                                      __FILE__, __LINE__)                   \
        .stream()

}  // namespace dstampede
