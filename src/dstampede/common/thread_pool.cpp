#include "dstampede/common/thread_pool.hpp"

namespace dstampede {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Another caller already initiated shutdown; workers may still be
      // joining, so fall through only if we own unjoined threads.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace dstampede
