#include "dstampede/common/thread_pool.hpp"

#include "dstampede/common/logging.hpp"

namespace dstampede {

ThreadPool::ThreadPool(std::size_t num_threads, std::string name)
    : name_(std::move(name)) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      if (!name_.empty()) SetThreadLogContext(name_);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    ds::MutexLock lock(mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

void ThreadPool::Shutdown() {
  {
    ds::MutexLock lock(mu_);
    // If another caller already initiated shutdown, workers may still
    // be joining; fall through — join() below is idempotent per thread.
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      ds::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace dstampede
