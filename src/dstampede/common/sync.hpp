// Concurrency-correctness layer: annotated mutex/condvar wrappers.
//
// Space-time memory is served by dozens of cooperating threads (channel
// waiters, GC sweeps, CLF receive loops, surrogate service loops), and
// the locking discipline between them is part of the system's
// correctness contract. This header makes that contract checkable twice
// over:
//
//  1. Statically. ds::Mutex / ds::MutexLock / ds::CondVar carry Clang
//     Thread Safety Analysis attributes, so a Clang build with
//     -Werror=thread-safety proves that every DS_GUARDED_BY field is
//     only touched under its lock and every DS_REQUIRES method is only
//     called with the lock held. The macros compile to nothing on
//     other compilers (GCC builds are unaffected).
//
//  2. Dynamically. With DSTAMPEDE_DEADLOCK_DETECT=1 in the
//     environment (or SetDeadlockDetectionForTesting(true)), every
//     acquisition feeds a per-process lock-order graph. The first
//     acquisition whose order is inconsistent with an earlier one —
//     i.e. the first edge that closes a cycle — aborts the process
//     with both offending stacks, before the program can actually
//     deadlock. Re-entrant acquisition of the same ds::Mutex (the
//     PR 2 GC-notice-handler-under-the-call-lock bug class) aborts
//     likewise, and AssertBlockingAllowed() turns "blocked on the
//     network while holding a lock" into an immediate abort instead
//     of a stall.
//
// Conventions (see docs/CONCURRENCY.md for the lock hierarchy):
//  - Name every long-lived mutex ("module.field"). Mutexes sharing a
//    name share one node in the lock-order graph, so an ABBA pattern
//    across *instances* of the same lock class is still caught. The
//    flip side: two same-named mutexes must never be held at once.
//  - A mutex that is legitimately held across blocking I/O (the
//    client's call-serialization lock) is constructed with
//    Mutex::kBlockingAllowed and is exempt from AssertBlockingAllowed.
//  - Condition waits are explicit loops over CondVar::Wait/WaitUntil;
//    predicate lambdas are avoided because Clang analyses lambda
//    bodies without the enclosing capability context.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "dstampede/common/clock.hpp"

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DS_THREAD_ANNOTATION
#define DS_THREAD_ANNOTATION(x)
#endif

#define DS_CAPABILITY(x) DS_THREAD_ANNOTATION(capability(x))
#define DS_SCOPED_CAPABILITY DS_THREAD_ANNOTATION(scoped_lockable)
#define DS_GUARDED_BY(x) DS_THREAD_ANNOTATION(guarded_by(x))
#define DS_PT_GUARDED_BY(x) DS_THREAD_ANNOTATION(pt_guarded_by(x))
#define DS_REQUIRES(...) DS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DS_EXCLUDES(...) DS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define DS_ACQUIRE(...) DS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DS_RELEASE(...) DS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DS_TRY_ACQUIRE(...) \
  DS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define DS_ASSERT_CAPABILITY(x) DS_THREAD_ANNOTATION(assert_capability(x))
#define DS_RETURN_CAPABILITY(x) DS_THREAD_ANNOTATION(lock_returned(x))
#define DS_NO_THREAD_SAFETY_ANALYSIS \
  DS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dstampede::sync {

class CondVar;

// std::mutex with a thread-safety capability and an optional hook into
// the runtime lock-order detector. Construction is cheap whether or
// not detection is enabled; the enabled check is one relaxed atomic
// load per acquisition.
class DS_CAPABILITY("mutex") Mutex {
 public:
  // Tag for mutexes that are by design held across blocking operations
  // (socket I/O, condition waits in callees). Everything else aborts
  // under AssertBlockingAllowed() when detection is on.
  static constexpr bool kBlockingAllowed = true;

  Mutex() = default;
  // `name` must outlive the mutex (string literals in practice).
  // Same-named mutexes share a lock-order node; see header comment.
  explicit Mutex(const char* name, bool blocking_allowed = false)
      : name_(name), blocking_allowed_(blocking_allowed) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DS_ACQUIRE();
  void unlock() DS_RELEASE();
  bool try_lock() DS_TRY_ACQUIRE(true);

  // Runtime-checked when detection is on; statically tells Clang the
  // capability is held (for code reached only with the lock held).
  void AssertHeld() const DS_ASSERT_CAPABILITY(this);

  const char* name() const { return name_ != nullptr ? name_ : "<unnamed>"; }
  bool blocking_allowed() const { return blocking_allowed_; }

 private:
  friend class CondVar;
  friend struct Detector;

  std::uintptr_t node_id() const;

  std::mutex mu_;
  const char* name_ = nullptr;
  bool blocking_allowed_ = false;
};

// RAII scoped acquisition. Supports early release (for the
// unlock-before-notify idiom) but not re-acquisition; take a new
// MutexLock instead.
class DS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DS_ACQUIRE(mu) : mu_(&mu) { mu.lock(); }
  ~MutexLock() DS_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Releases before scope exit; the destructor then does nothing.
  void Unlock() DS_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

 private:
  Mutex* mu_;
};

// Condition variable bound to a ds::Mutex at each wait site. Waits
// keep the lock-order detector's held-set accurate (the mutex really
// is released while waiting).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) DS_REQUIRES(mu);
  // Returns false iff the deadline expired before a notification.
  // Deadline::Infinite() never times out; callers loop on their
  // predicate as usual.
  bool WaitUntil(Mutex& mu, Deadline deadline) DS_REQUIRES(mu);

  // The generation bump latches the notification for sliced virtual
  // waits: a notify that lands while a WaitUntilVirtual waiter is
  // between two wait_for slices (not formally waiting on cv_) would
  // otherwise be lost, and with the virtual deadline frozen the waiter
  // would re-arm slices forever.
  void NotifyOne() {
    gen_.fetch_add(1, std::memory_order_release);
    cv_.notify_one();
  }
  void NotifyAll() {
    gen_.fetch_add(1, std::memory_order_release);
    cv_.notify_all();
  }

 private:
  // Timed wait against an installed VirtualClock: registers with the
  // clock's timed-wait registry and re-checks virtual now in short
  // real-time slices. `ul` holds the waiter's mutex on entry and exit.
  bool WaitUntilVirtual(std::unique_lock<std::mutex>& ul, Deadline deadline,
                        VirtualClock* vc);

  std::condition_variable cv_;
  std::atomic<std::uint64_t> gen_{0};
};

// --- runtime deadlock detection -------------------------------------------

// True when DSTAMPEDE_DEADLOCK_DETECT is set in the environment (any
// value but "" or "0") or testing forced it on.
bool DeadlockDetectionEnabled();

// Overrides the environment for the current process. Death tests call
// this *inside* the EXPECT_DEATH statement so it applies in the child
// regardless of death-test style.
void SetDeadlockDetectionForTesting(bool enabled);

// Call before an operation that may block indefinitely on something
// other than a ds::Mutex (socket reads, CLF request round-trips).
// Aborts if this thread holds any ds::Mutex not constructed with
// kBlockingAllowed — the invariant whose violation produced the PR 2
// Resume-reply deadlock. `what` names the operation in the report.
void AssertBlockingAllowed(const char* what);

// Number of distinct lock-order edges recorded so far (testing aid).
std::size_t LockOrderEdgeCountForTesting();

}  // namespace dstampede::sync

// Short spelling used throughout the tree: ds::Mutex, ds::MutexLock,
// ds::CondVar.
namespace ds = dstampede::sync;
