#include "dstampede/common/trace.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <random>

#include "dstampede/common/logging.hpp"

namespace dstampede::trace {

namespace {
thread_local TraceContext t_context;
}  // namespace

TraceContext CurrentContext() { return t_context; }

void SetCurrentContext(const TraceContext& ctx) {
  t_context = ctx;
  SetThreadLogTraceId(ctx.sampled() ? ctx.trace_id : 0);
}

std::uint64_t NewId() {
  // Process-unique base: without it every process walks the same id
  // sequence and two clients tracing concurrently collide trace ids.
  static const std::uint64_t base = [] {
    std::random_device rd;
    std::uint64_t b = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    // Wall clock on purpose: this is entropy for cross-process id
    // uniqueness, not timing — virtual time would make two simulated
    // processes walk identical id sequences.
    return b ^ static_cast<std::uint64_t>(
                   // NOLINTNEXTLINE(dstampede-raw-clock): uniqueness entropy, not timing
                   std::chrono::system_clock::now().time_since_epoch().count());
  }();
  static std::atomic<std::uint64_t> seed{0x9E3779B97F4A7C15ull};
  thread_local std::uint64_t state =
      base ^ seed.fetch_add(0xBF58476D1CE4E5B9ull, std::memory_order_relaxed);
  // splitmix64: cheap, well-distributed, never 0 in practice — but
  // guard anyway since 0 means "no trace".
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

void SpanSink::Record(Span span) {
  ds::MutexLock lock(mu_);
  if (spans_.size() >= capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(std::move(span));
}

void SpanSink::BeginActive(const Span& span) {
  ds::MutexLock lock(mu_);
  active_.emplace(span.span_id, span);
}

void SpanSink::EndActive(std::uint64_t span_id) {
  ds::MutexLock lock(mu_);
  active_.erase(span_id);
}

std::vector<Span> SpanSink::Snapshot() const {
  ds::MutexLock lock(mu_);
  return std::vector<Span>(spans_.begin(), spans_.end());
}

std::vector<Span> SpanSink::ActiveSnapshot() const {
  ds::MutexLock lock(mu_);
  std::vector<Span> out;
  out.reserve(active_.size());
  for (const auto& [id, span] : active_) out.push_back(span);
  return out;
}

std::uint64_t SpanSink::dropped() const {
  ds::MutexLock lock(mu_);
  return dropped_;
}

namespace {

void AppendSpan(std::string& out, const Span& span, bool is_active) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"trace_id\":\"%016" PRIx64 "\",\"span_id\":\"%016" PRIx64
                "\",\"parent_span_id\":\"%016" PRIx64
                "\",\"name\":\"%s\",\"duration_us\":%" PRId64
                ",\"active\":%s}",
                span.trace_id, span.span_id, span.parent_span_id,
                span.name.c_str(), ToMicros(span.duration),
                is_active ? "true" : "false");
  out += buf;
}

}  // namespace

void SpanSink::WriteJson(std::string& out) const {
  const std::vector<Span> done = Snapshot();
  const std::vector<Span> active = ActiveSnapshot();
  out.push_back('[');
  bool first = true;
  for (const Span& span : done) {
    if (!first) out.push_back(',');
    first = false;
    AppendSpan(out, span, /*is_active=*/false);
  }
  for (const Span& span : active) {
    if (!first) out.push_back(',');
    first = false;
    AppendSpan(out, span, /*is_active=*/true);
  }
  out.push_back(']');
}

ScopedSpan::ScopedSpan(SpanSink* sink, const char* name,
                       const TraceContext& ctx, bool adopt_span_id) {
  if (sink == nullptr || !ctx.sampled()) return;
  sink_ = sink;
  span_.trace_id = ctx.trace_id;
  span_.name = name;
  span_.start = Now();
  if (adopt_span_id) {
    span_.span_id = ctx.span_id;
    span_.parent_span_id = 0;
  } else {
    span_.span_id = NewId();
    span_.parent_span_id = ctx.span_id;
  }
  prev_ = CurrentContext();
  SetCurrentContext(TraceContext{ctx.trace_id, span_.span_id, ctx.flags});
  sink_->BeginActive(span_);
}

ScopedSpan::~ScopedSpan() {
  if (sink_ == nullptr) return;
  span_.duration = Now() - span_.start;
  sink_->EndActive(span_.span_id);
  sink_->Record(std::move(span_));
  SetCurrentContext(prev_);
}

PendingSpan::PendingSpan(SpanSink* sink, const char* name,
                         const TraceContext& ctx) {
  if (sink == nullptr || !ctx.sampled()) return;
  sink_ = sink;
  span_.trace_id = ctx.trace_id;
  span_.span_id = NewId();
  span_.parent_span_id = ctx.span_id;
  span_.name = name;
  span_.start = Now();
  sink_->BeginActive(span_);
}

PendingSpan& PendingSpan::operator=(PendingSpan&& other) noexcept {
  if (this != &other) {
    Finish();
    sink_ = other.sink_;
    span_ = std::move(other.span_);
    other.sink_ = nullptr;
  }
  return *this;
}

void PendingSpan::Finish() {
  if (sink_ == nullptr) return;
  span_.duration = Now() - span_.start;
  sink_->EndActive(span_.span_id);
  sink_->Record(std::move(span_));
  sink_ = nullptr;
}

}  // namespace dstampede::trace
