// Time helpers: one steady clock for all latency math, plus Deadline,
// the unit every blocking runtime call accepts — and the clock *seam*
// that makes the whole runtime simulable.
//
// Every piece of time-dependent machinery in the tree (Deadline math,
// TimerWheel, CLF retransmission/keepalive timers, reconnect backoff,
// GC cadence) reads time through dstampede::Now() and sleeps through
// dstampede::SleepFor()/ds::CondVar::WaitUntil(). By default those hit
// std::chrono::steady_clock and real waits. When a VirtualClock is
// installed (sim::SimController does this), the same call sites read
// settable virtual time instead, virtual sleeps block until the
// controller advances the clock, and timed condition waits are woken
// by Advance — so a simulated minute of timeouts runs in milliseconds
// of wall time, deterministically. See docs/SIMULATION.md.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>

namespace dstampede {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;
using Duration = SteadyClock::duration;

inline std::int64_t ToMicros(Duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

inline Duration Micros(std::int64_t us) {
  return std::chrono::microseconds(us);
}
inline Duration Millis(std::int64_t ms) {
  return std::chrono::milliseconds(ms);
}

// A settable clock for deterministic simulation. At most one instance
// is installed process-wide at a time; while installed, Now() reads it
// and SleepFor()/CondVar::WaitUntil() block on *virtual* time, woken
// by AdvanceTo/AdvanceBy. Virtual time starts at the real time of
// construction by default, so TimePoints remain comparable across
// install/uninstall boundaries (a deadline computed under one clock is
// at worst promptly expired under the other, never decades away).
//
// Thread-safety: all methods are thread-safe. The internal mutex is a
// leaf (a plain std::mutex, invisible to the deadlock detector): no
// callback ever runs under it, and notifications of woken waiters
// happen after it is released.
class VirtualClock {
 public:
  using WaitToken = std::uint64_t;

  VirtualClock() : VirtualClock(SteadyClock::now()) {}
  explicit VirtualClock(TimePoint start);
  // Uninstalls (waking every virtual sleeper) if still installed.
  ~VirtualClock();

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  // Makes this the process clock / restores the real clock. Install
  // before constructing the runtime objects that should run under
  // virtual time: threads already blocked in a *real* timed wait keep
  // their real deadline. Installing while another VirtualClock is
  // installed is a programming error (asserted).
  void Install();
  void Uninstall();
  bool installed() const {
    return installed_.load(std::memory_order_acquire);
  }

  TimePoint Now() const {
    return TimePoint(Duration(now_ticks_.load(std::memory_order_acquire)));
  }

  // Moves virtual time forward (monotone; a target in the past is a
  // no-op apart from re-notifying due waiters). Wakes every virtual
  // sleeper and every registered timed wait whose deadline has passed.
  void AdvanceTo(TimePoint t);
  void AdvanceBy(Duration d) { AdvanceTo(Now() + d); }

  // Virtual sleep: blocks the caller until virtual time reaches the
  // target or the clock is uninstalled (teardown never hangs on a
  // stopped controller).
  void SleepUntil(TimePoint until);
  void SleepFor(Duration d) { SleepUntil(Now() + d); }

  // --- timed-wait registry (used by ds::CondVar::WaitUntil) ---------
  // Registers a condition wait with deadline `when`; AdvanceTo past
  // `when` notify_all()s `cv`. The waiter unregisters after waking.
  WaitToken RegisterTimedWait(TimePoint when, std::condition_variable* cv);
  void UnregisterTimedWait(WaitToken token);

  // Earliest pending virtual wake-up (sleep target or registered timed
  // wait), including already-due entries whose owners have not yet run.
  std::optional<TimePoint> NextEventTime() const;
  // Pending timed waits + virtual sleepers (diagnostics/tests).
  std::size_t pending_waits() const;

  // Advance-until-quiescent controller: steps virtual time from one
  // pending deadline to the next, giving the woken threads `real_grace`
  // of wall time to react after each step, until
  //   - `done` (if provided) returns true, or
  //   - nothing is pending and no `done` was provided (quiescent), or
  //   - `horizon` of virtual time has been consumed.
  // When `done` is provided and nothing is registered, time still moves
  // in `max_step` quanta so progress that depends on wall-clock polling
  // loops (socket receivers) is not starved. A nonzero `min_step`
  // coalesces dense deadlines: each step covers at least that much
  // virtual time, firing every deadline inside the window under one
  // grace period instead of paying `real_grace` per deadline — a large
  // simulated cluster registers periodic timers every couple of virtual
  // milliseconds, and stepping each one individually makes an idle
  // virtual minute cost wall-clock seconds. Returns the virtual time
  // actually advanced.
  Duration AdvanceUntilQuiescent(Duration horizon,
                                 const std::function<bool()>& done = {},
                                 Duration max_step = Millis(50),
                                 Duration real_grace = Micros(200),
                                 Duration min_step = Duration::zero());

 private:
  std::atomic<std::int64_t> now_ticks_;
  std::atomic<bool> installed_{false};

  mutable std::mutex mu_;
  std::condition_variable sleep_cv_;
  // (deadline, token) -> cv, ordered so the due prefix is cheap.
  std::map<std::pair<TimePoint, WaitToken>, std::condition_variable*>
      timed_waits_;
  std::multiset<TimePoint> sleep_targets_;
  WaitToken next_token_ = 1;
};

namespace clock_internal {
extern std::atomic<VirtualClock*> g_virtual;
// Real std::this_thread sleeps. Debug-assert that no VirtualClock is
// installed: reaching a wall-clock sleep while simulating means some
// call site bypassed the seam.
void WallSleep(Duration d);
void WallSleepUntil(TimePoint until);
}  // namespace clock_internal

// The installed VirtualClock, or nullptr when running on real time.
inline VirtualClock* InstalledVirtualClock() {
  return clock_internal::g_virtual.load(std::memory_order_acquire);
}

inline TimePoint Now() {
  if (VirtualClock* vc = InstalledVirtualClock()) return vc->Now();
  return SteadyClock::now();
}

// The sleep every runtime loop must use instead of raw
// std::this_thread::sleep_for: virtual when a VirtualClock is
// installed, wall-clock otherwise.
inline void SleepFor(Duration d) {
  if (VirtualClock* vc = InstalledVirtualClock()) {
    vc->SleepFor(d);
    return;
  }
  clock_internal::WallSleep(d);
}

// Absolute-deadline companion to SleepFor (used by the soft-real-time
// tick loop): virtual when a VirtualClock is installed.
inline void SleepUntil(TimePoint until) {
  if (VirtualClock* vc = InstalledVirtualClock()) {
    vc->SleepUntil(until);
    return;
  }
  clock_internal::WallSleepUntil(until);
}

// A point in time after which a blocking call gives up with kTimeout.
// Deadline::Infinite() never expires; Deadline::Poll() expires now.
class Deadline {
 public:
  static Deadline Infinite() { return Deadline(TimePoint::max()); }
  static Deadline Poll() { return Deadline(TimePoint::min()); }
  static Deadline After(Duration d) { return Deadline(Now() + d); }
  static Deadline AfterMillis(std::int64_t ms) { return After(Millis(ms)); }
  // An absolute deadline; used by timer plumbing that stores TimePoints.
  static Deadline At(TimePoint when) { return Deadline(when); }

  bool expired() const { return when_ != TimePoint::max() && Now() >= when_; }
  bool infinite() const { return when_ == TimePoint::max(); }
  TimePoint when() const { return when_; }
  // Remaining time, clamped at zero.
  Duration remaining() const {
    if (infinite()) return Duration::max();
    auto now = Now();
    return when_ > now ? when_ - now : Duration::zero();
  }

 private:
  explicit Deadline(TimePoint when) : when_(when) {}
  TimePoint when_;
};

}  // namespace dstampede
