// Time helpers: one steady clock for all latency math, plus Deadline,
// the unit every blocking runtime call accepts.
#pragma once

#include <chrono>
#include <cstdint>

namespace dstampede {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;
using Duration = SteadyClock::duration;

inline TimePoint Now() { return SteadyClock::now(); }

inline std::int64_t ToMicros(Duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

inline Duration Micros(std::int64_t us) {
  return std::chrono::microseconds(us);
}
inline Duration Millis(std::int64_t ms) {
  return std::chrono::milliseconds(ms);
}

// A point in time after which a blocking call gives up with kTimeout.
// Deadline::Infinite() never expires; Deadline::Poll() expires now.
class Deadline {
 public:
  static Deadline Infinite() { return Deadline(TimePoint::max()); }
  static Deadline Poll() { return Deadline(TimePoint::min()); }
  static Deadline After(Duration d) { return Deadline(Now() + d); }
  static Deadline AfterMillis(std::int64_t ms) { return After(Millis(ms)); }
  // An absolute deadline; used by timer plumbing that stores TimePoints.
  static Deadline At(TimePoint when) { return Deadline(when); }

  bool expired() const { return when_ != TimePoint::max() && Now() >= when_; }
  bool infinite() const { return when_ == TimePoint::max(); }
  TimePoint when() const { return when_; }
  // Remaining time, clamped at zero.
  Duration remaining() const {
    if (infinite()) return Duration::max();
    auto now = Now();
    return when_ > now ? when_ - now : Duration::zero();
  }

 private:
  explicit Deadline(TimePoint when) : when_(when) {}
  TimePoint when_;
};

}  // namespace dstampede
