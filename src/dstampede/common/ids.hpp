// Strongly-typed identifiers used across the runtime.
//
// Channels and queues are "system-wide unique names" (paper §3.1): the
// id embeds the owning address-space so any node can route an operation
// to the owner without a directory lookup.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace dstampede {

// Timestamps index items in channels/queues. They are application
// defined (e.g. frame numbers) and have no intrinsic tie to real time.
using Timestamp = std::int64_t;
inline constexpr Timestamp kInvalidTimestamp = INT64_MIN;

// Identifies one address space (one runtime endpoint). The cluster's
// address spaces and each end-device surrogate all get distinct ids.
enum class AsId : std::uint32_t {};
inline constexpr AsId kInvalidAsId = static_cast<AsId>(0xffffffffu);
inline std::uint32_t AsIndex(AsId id) { return static_cast<std::uint32_t>(id); }
inline std::ostream& operator<<(std::ostream& os, AsId id) {
  return os << "AS" << AsIndex(id);
}

namespace internal {
// Generic 64-bit handle: owner address space in the top 32 bits, local
// slot in the bottom 32.
template <typename Tag>
class Handle {
 public:
  Handle() = default;
  Handle(AsId owner, std::uint32_t slot)
      : bits_((static_cast<std::uint64_t>(AsIndex(owner)) << 32) | slot) {}
  static Handle FromBits(std::uint64_t bits) {
    Handle h;
    h.bits_ = bits;
    return h;
  }

  AsId owner() const { return static_cast<AsId>(bits_ >> 32); }
  std::uint32_t slot() const { return static_cast<std::uint32_t>(bits_); }
  std::uint64_t bits() const { return bits_; }
  bool valid() const { return bits_ != kInvalidBits; }

  friend bool operator==(Handle a, Handle b) { return a.bits_ == b.bits_; }
  friend bool operator<(Handle a, Handle b) { return a.bits_ < b.bits_; }

 private:
  static constexpr std::uint64_t kInvalidBits = ~0ULL;
  std::uint64_t bits_ = kInvalidBits;
};
}  // namespace internal

struct ChannelTag {};
struct QueueTag {};
struct ConnectionTag {};
struct ThreadTag {};

using ChannelId = internal::Handle<ChannelTag>;
using QueueId = internal::Handle<QueueTag>;
// A connection is a (thread, channel-or-queue, mode) binding; the id is
// issued by the container's owner address space.
using ConnectionId = internal::Handle<ConnectionTag>;
using ThreadId = internal::Handle<ThreadTag>;

template <typename Tag>
std::ostream& operator<<(std::ostream& os, internal::Handle<Tag> h) {
  return os << AsIndex(h.owner()) << ":" << h.slot();
}

}  // namespace dstampede

namespace std {
template <typename Tag>
struct hash<dstampede::internal::Handle<Tag>> {
  size_t operator()(dstampede::internal::Handle<Tag> h) const noexcept {
    return std::hash<uint64_t>{}(h.bits());
  }
};
}  // namespace std
