// Fixed-size worker pool used by each address space's dispatcher.
//
// STM requests arriving from remote address spaces may block (a GET can
// wait for a timestamp to be produced), so the dispatcher hands each
// request to a pool worker instead of servicing it on the receive loop.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "dstampede/common/sync.hpp"

namespace dstampede {

class ThreadPool {
 public:
  // `name`, when set, becomes each worker's per-thread log context
  // (see logging.hpp), so dispatcher log lines carry their address
  // space.
  explicit ThreadPool(std::size_t num_threads, std::string name = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues work; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  // Stops accepting work, drains the queue, joins workers. Idempotent.
  void Shutdown();

  std::size_t size() const { return workers_.size(); }
  // Tasks queued but not yet picked up (dispatcher queue depth).
  std::size_t pending() const {
    ds::MutexLock lock(mu_);
    return queue_.size();
  }

 private:
  void WorkerLoop();

  mutable ds::Mutex mu_{"thread_pool.mu"};
  ds::CondVar cv_;
  std::deque<std::function<void()>> queue_ DS_GUARDED_BY(mu_);
  bool stopping_ DS_GUARDED_BY(mu_) = false;
  std::string name_;
  std::vector<std::thread> workers_;
};

// Counts in-flight operations so shutdown can wait for them to drain.
class WaitGroup {
 public:
  void Add(int n = 1) {
    ds::MutexLock lock(mu_);
    count_ += n;
  }
  void Done() {
    ds::MutexLock lock(mu_);
    if (--count_ == 0) cv_.NotifyAll();
  }
  void Wait() {
    ds::MutexLock lock(mu_);
    while (count_ != 0) cv_.Wait(mu_);
  }

 private:
  ds::Mutex mu_{"wait_group.mu"};
  ds::CondVar cv_;
  int count_ DS_GUARDED_BY(mu_) = 0;
};

}  // namespace dstampede
