// Fixed-size worker pool used by each address space's dispatcher.
//
// STM requests arriving from remote address spaces may block (a GET can
// wait for a timestamp to be produced), so the dispatcher hands each
// request to a pool worker instead of servicing it on the receive loop.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dstampede {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues work; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  // Stops accepting work, drains the queue, joins workers. Idempotent.
  void Shutdown();

  std::size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Counts in-flight operations so shutdown can wait for them to drain.
class WaitGroup {
 public:
  void Add(int n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

}  // namespace dstampede
