// Runtime metrics: thread-safe counters, gauges and log-scale
// histograms, grouped per address space in a MetricsRegistry.
//
// Design rules (docs/OBSERVABILITY.md):
//   * Hot-path instruments never allocate and never take a lock:
//     Counter is a sharded array of cache-line-sized atomic cells,
//     Gauge a single atomic, Histogram a fixed array of atomic
//     buckets (first 16 values exact, then 16 log sub-buckets per
//     octave, ~3% relative error).
//   * The registry mutex ("metrics.registry_mu") is leaf-level: it is
//     only held while looking up / creating an instrument by name or
//     while copying the instrument list for a snapshot. No user code
//     runs under it and no blocking is allowed under it.
//   * Instruments are owned by the registry and have stable addresses
//     for the registry's lifetime — callers cache the returned
//     pointers/references at wiring time and hit only atomics
//     afterwards.
//   * Providers are pull-style gauges (std::function<std::int64_t()>)
//     evaluated at snapshot time, outside the registry mutex. They
//     may take their own (leaf-safe) locks but must not block.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dstampede/common/sync.hpp"

namespace dstampede::metrics {

// Monotonic event count. Add() is wait-free: each thread lands on one
// of kShards cache-line-aligned cells, so 8 contending threads do not
// serialize on one line. Value() sums the cells (racy-read exact for
// quiesced counters, monotone under load).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n = 1) {
    cells_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  // A per-thread id assigned once; threads spread across the cells and
  // keep hitting the same one (cache-friendly). Inline so Add() is a
  // TLS read + one relaxed RMW, no call.
  static std::size_t ShardIndex() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shard;
  }
  Cell cells_[kShards];
};

// Point-in-time signed value (queue depth, live sessions, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(std::int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-footprint log-scale histogram of non-negative integer samples
// (latencies in microseconds, lags, sizes). Observe() is lock-free and
// allocation-free; negative samples clamp to 0. Values 0..15 are
// recorded exactly; above that each power-of-two octave is split into
// 16 sub-buckets, so the reported quantiles carry at most ~3% bucket
// error. All read-side statistics are safe on an empty histogram
// (they return 0).
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(std::int64_t sample);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t Mean() const;
  std::int64_t Min() const;
  std::int64_t Max() const;
  // p in [0,100]; returns the representative value of the bucket that
  // holds the p-th percentile sample (bucket midpoint above 15).
  std::int64_t Percentile(double p) const;
  // "n=... mean=... min=... p50=... p99=... max=..." (unitless).
  std::string Summary() const;

 private:
  static constexpr std::size_t kSubBuckets = 16;  // per octave
  static constexpr std::size_t kSubBits = 4;
  // Buckets 0..15 exact; then (octave-3)*16 + sub for bit_width-1 >= 4.
  // 63 octaves is enough for any int64 sample.
  static constexpr std::size_t kBuckets = 16 + (63 - 3) * kSubBuckets;

  static std::size_t BucketIndex(std::uint64_t v);
  static std::int64_t BucketValue(std::size_t index);

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};  // valid when count_ > 0
  std::atomic<std::int64_t> max_{0};
};

// Named instruments for one address space. Lookup-or-create is
// mutex-protected; the returned references stay valid until the
// registry is destroyed (node-based storage).
class Registry {
 public:
  using Provider = std::function<std::int64_t()>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(const std::string& name) DS_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) DS_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) DS_EXCLUDES(mu_);

  // Registers a pull-style gauge; `fn` runs at snapshot time, outside
  // the registry mutex. Returns a token for RemoveProvider. Providers
  // must not block (they may take leaf locks).
  std::uint64_t AddProvider(const std::string& name, Provider fn)
      DS_EXCLUDES(mu_);
  void RemoveProvider(std::uint64_t token) DS_EXCLUDES(mu_);

  // Appends the registry as a JSON object (counters, gauges,
  // histograms with summary stats, providers) to `out`.
  void WriteJson(std::string& out) const DS_EXCLUDES(mu_);

 private:
  struct ProviderEntry {
    std::string name;
    Provider fn;
  };

  mutable ds::Mutex mu_{"metrics.registry_mu"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DS_GUARDED_BY(mu_);
  std::map<std::uint64_t, ProviderEntry> providers_ DS_GUARDED_BY(mu_);
  std::uint64_t next_provider_token_ DS_GUARDED_BY(mu_) = 1;
};

}  // namespace dstampede::metrics
