#include "dstampede/common/waiter.hpp"

#include <vector>

namespace dstampede {

TimerWheel::TimerWheel() {
  thread_ = std::thread([this] { Loop(); });
}

TimerWheel::~TimerWheel() { Shutdown(); }

TimerWheel::TimerId TimerWheel::Schedule(Deadline deadline,
                                         std::function<void()> fn) {
  if (deadline.infinite()) return 0;
  const TimePoint when = deadline.when();
  TimerId id = 0;
  {
    ds::MutexLock lock(mu_);
    if (stopping_) return 0;
    id = next_id_++;
    entries_.emplace(std::make_pair(when, id), std::move(fn));
    index_.emplace(id, when);
  }
  // Only the wheel thread waits on cv_; wake it to re-evaluate the
  // front entry (the new one may be due sooner than what it sleeps on).
  cv_.NotifyOne();
  return id;
}

bool TimerWheel::Cancel(TimerId id) {
  if (id == 0) return false;
  std::function<void()> dropped;
  {
    ds::MutexLock lock(mu_);
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    auto entry = entries_.find(std::make_pair(it->second, id));
    if (entry != entries_.end()) {
      dropped = std::move(entry->second);
      entries_.erase(entry);
    }
    index_.erase(it);
  }
  // `dropped` (and whatever its captures own) is destroyed here,
  // outside the wheel lock.
  return true;
}

void TimerWheel::Shutdown() {
  decltype(entries_) dropped;
  {
    ds::MutexLock lock(mu_);
    stopping_ = true;
    dropped.swap(entries_);
    index_.clear();
  }
  cv_.NotifyOne();
  if (thread_.joinable()) thread_.join();
}

std::size_t TimerWheel::pending() const {
  ds::MutexLock lock(mu_);
  return entries_.size();
}

void TimerWheel::Loop() {
  for (;;) {
    std::vector<std::function<void()>> fire;
    {
      ds::MutexLock lock(mu_);
      for (;;) {
        if (stopping_) return;
        if (entries_.empty()) {
          cv_.Wait(mu_);
          continue;
        }
        const TimePoint due = entries_.begin()->first.first;
        if (Now() >= due) break;
        // Woken early by Schedule/Shutdown: re-evaluate the front.
        cv_.WaitUntil(mu_, Deadline::At(due));
      }
      const TimePoint now = Now();
      while (!entries_.empty() && entries_.begin()->first.first <= now) {
        fire.push_back(std::move(entries_.begin()->second));
        index_.erase(entries_.begin()->first.second);
        entries_.erase(entries_.begin());
      }
    }
    // Callbacks run with no wheel lock held; they may take container
    // locks (CancelWaiter) or send replies.
    for (auto& fn : fire) fn();
  }
}

}  // namespace dstampede
