// Measurement helpers shared by tests and the benchmark harnesses:
// latency samples with percentiles, and sustained-rate meters (the
// frames/sec metric of §5.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dstampede/common/clock.hpp"

namespace dstampede {

// Collects latency samples (microseconds) and reports summary stats.
// Not thread-safe; one recorder per measuring thread.
class LatencyRecorder {
 public:
  void Add(std::int64_t micros) { samples_.push_back(micros); }
  void AddDuration(Duration d) { Add(ToMicros(d)); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  std::int64_t Min() const;
  std::int64_t Max() const;
  // p in [0,100]; nearest-rank on a sorted copy.
  std::int64_t Percentile(double p) const;
  std::int64_t Median() const { return Percentile(50); }

  // "n=..., mean=...us p50=...us p99=...us" for harness output.
  std::string Summary() const;

  void Clear() { samples_.clear(); }

 private:
  std::vector<std::int64_t> samples_;
};

// Measures a sustained event rate over a wall-clock window, e.g. the
// frames/sec seen by a display thread.
class RateMeter {
 public:
  void Start() { start_ = Now(); events_ = 0; }
  void Tick() { ++events_; }
  void TickN(std::uint64_t n) { events_ += n; }
  std::uint64_t events() const { return events_; }
  double ElapsedSeconds() const;
  // Events per second since Start(); zero if no time elapsed.
  double Rate() const;

 private:
  TimePoint start_ = Now();
  std::uint64_t events_ = 0;
};

// Scoped stopwatch: records into a LatencyRecorder on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyRecorder& recorder)
      : recorder_(recorder), start_(Now()) {}
  ~ScopedTimer() { recorder_.AddDuration(Now() - start_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyRecorder& recorder_;
  TimePoint start_;
};

}  // namespace dstampede
