// ds::Thread: the one sanctioned way to spawn a thread outside common/.
//
// A thin wrapper over std::thread that exists for the same reason
// ds::Mutex does: every thread the runtime creates should pass through
// one seam. Concretely the wrapper buys three things today:
//
//  1. Log attribution. The child inherits the spawner's per-thread log
//     context (logging.hpp), or installs an explicit name, so a
//     receiver loop spawned by "AS3" logs as "[AS3 recv]" instead of
//     anonymously. Before this wrapper, every spawn site had to
//     remember to call SetThreadLogContext itself — most didn't.
//  2. A future instrumentation point (thread registry, per-thread
//     metrics, sim-aware scheduling) that does not require touching
//     every spawn site again.
//  3. A static enforcement anchor: dslint's dstampede-raw-sync-
//     primitive check (docs/STATIC_ANALYSIS.md) flags raw std::thread
//     outside common/, so new code cannot silently bypass the seam.
//
// The API is the subset of std::thread the tree actually uses:
// default-construct, construct-with-callable, move, joinable, join.
// detach() is deliberately absent — every thread in the runtime is
// joined by an owner; a detached thread outliving its state is a bug
// class we opt out of wholesale.
#pragma once

#include <string>
#include <thread>
#include <utility>

#include "dstampede/common/logging.hpp"

namespace dstampede {

class Thread {
 public:
  Thread() = default;

  // Spawns `fn` with the spawner's log context propagated into the
  // child (no-op if the spawner never set one).
  template <typename F>
  explicit Thread(F fn) : Thread(std::string(), std::move(fn)) {}

  // Spawns `fn` logging as `name`; "" inherits the spawner's context.
  // The capture initializers run on the spawning thread, so the
  // inherited name is read before the child exists.
  template <typename F>
  Thread(std::string name, F fn)
      : impl_([name = name.empty() ? std::string(ThreadLogContextName())
                                   : std::move(name),
               fn = std::move(fn)]() mutable {
          if (!name.empty()) SetThreadLogContext(name);
          fn();
        }) {}

  Thread(Thread&&) = default;
  Thread& operator=(Thread&&) = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  bool joinable() const { return impl_.joinable(); }
  void join() { impl_.join(); }

 private:
  std::thread impl_;
};

}  // namespace dstampede
