// Garbage collection service (paper §3.1, §3.2.2): one per address
// space, running "concurrent with application execution". It
// periodically sweeps every local channel (reclaiming items all input
// connections have consumed) and drains queue consume notices, then
// fans the resulting GcNotices out to registered sinks. Surrogate
// threads register a sink per end device and forward the notices at an
// opportune time (§3.2.4) so the device can free user-space buffers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/thread.hpp"
#include "dstampede/core/channel.hpp"
#include "dstampede/core/queue.hpp"

namespace dstampede::core {

class GcService {
 public:
  // Sink: receives every notice batch produced by a sweep.
  using NoticeSink = std::function<void(const std::vector<GcNotice>&)>;

  explicit GcService(Duration interval) : interval_(interval) {}
  ~GcService() { Stop(); }

  GcService(const GcService&) = delete;
  GcService& operator=(const GcService&) = delete;

  void RegisterChannel(std::uint64_t bits, std::shared_ptr<LocalChannel> ch);
  void UnregisterChannel(std::uint64_t bits);
  void RegisterQueue(std::uint64_t bits, std::shared_ptr<LocalQueue> q);
  void UnregisterQueue(std::uint64_t bits);

  // Returns a token for RemoveSink.
  std::uint64_t AddSink(NoticeSink sink);
  void RemoveSink(std::uint64_t token);

  void Start();
  void Stop();

  // One synchronous sweep over everything; returns all notices (also
  // delivered to sinks). Used by tests and by Stop() for a final drain.
  std::vector<GcNotice> SweepOnce();

  std::uint64_t sweeps() const { return sweeps_.load(); }
  std::uint64_t notices_total() const { return notices_total_.load(); }

 private:
  void Loop();

  Duration interval_;
  // Never held while calling into a container's Sweep or a sink: both
  // may call back into this service (see SweepOnce).
  ds::Mutex mu_{"gc_service.mu"};
  std::unordered_map<std::uint64_t, std::shared_ptr<LocalChannel>> channels_
      DS_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::shared_ptr<LocalQueue>> queues_
      DS_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, NoticeSink> sinks_ DS_GUARDED_BY(mu_);
  std::uint64_t next_sink_token_ DS_GUARDED_BY(mu_) = 1;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> notices_total_{0};
  // Pacing for Loop(): WaitUntil instead of sliced sleeping, so Stop()
  // can interrupt the interval and virtual time drives the cadence.
  ds::Mutex stop_mu_{"gc_service.stop_mu"};
  ds::CondVar stop_cv_;
  Thread thread_;
};

}  // namespace dstampede::core
