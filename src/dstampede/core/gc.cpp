#include "dstampede/core/gc.hpp"

namespace dstampede::core {

void GcService::RegisterChannel(std::uint64_t bits,
                                std::shared_ptr<LocalChannel> ch) {
  ds::MutexLock lock(mu_);
  channels_[bits] = std::move(ch);
}

void GcService::UnregisterChannel(std::uint64_t bits) {
  ds::MutexLock lock(mu_);
  channels_.erase(bits);
}

void GcService::RegisterQueue(std::uint64_t bits,
                              std::shared_ptr<LocalQueue> q) {
  ds::MutexLock lock(mu_);
  queues_[bits] = std::move(q);
}

void GcService::UnregisterQueue(std::uint64_t bits) {
  ds::MutexLock lock(mu_);
  queues_.erase(bits);
}

std::uint64_t GcService::AddSink(NoticeSink sink) {
  ds::MutexLock lock(mu_);
  const std::uint64_t token = next_sink_token_++;
  sinks_[token] = std::move(sink);
  return token;
}

void GcService::RemoveSink(std::uint64_t token) {
  ds::MutexLock lock(mu_);
  sinks_.erase(token);
}

std::vector<GcNotice> GcService::SweepOnce() {
  // Copy the registries so sweeping (which takes per-container locks
  // and runs user GC handlers) happens outside the service lock.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<LocalChannel>>> chans;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<LocalQueue>>> queues;
  {
    ds::MutexLock lock(mu_);
    chans.assign(channels_.begin(), channels_.end());
    queues.assign(queues_.begin(), queues_.end());
  }

  std::vector<GcNotice> all;
  for (auto& [bits, ch] : chans) {
    auto notices = ch->Sweep(bits);
    all.insert(all.end(), notices.begin(), notices.end());
  }
  for (auto& [bits, q] : queues) {
    auto notices = q->Sweep(bits);
    all.insert(all.end(), notices.begin(), notices.end());
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);

  if (!all.empty()) {
    notices_total_.fetch_add(all.size(), std::memory_order_relaxed);
    std::vector<NoticeSink> sink_copies;
    {
      ds::MutexLock lock(mu_);
      sink_copies.reserve(sinks_.size());
      for (auto& [token, sink] : sinks_) sink_copies.push_back(sink);
    }
    for (auto& sink : sink_copies) sink(all);
  }
  return all;
}

void GcService::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = Thread([this] { Loop(); });
}

void GcService::Stop() {
  if (!running_.exchange(false)) return;
  {
    ds::MutexLock lock(stop_mu_);
    stop_cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
  // Final drain so nothing reclaimable is left unreported.
  (void)SweepOnce();
}

void GcService::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    (void)SweepOnce();
    // Notify-able wait instead of sliced sleeping: Stop() is prompt
    // even when the interval's deadline lives on a frozen VirtualClock.
    ds::MutexLock lock(stop_mu_);
    if (!running_.load(std::memory_order_relaxed)) break;
    (void)stop_cv_.WaitUntil(stop_mu_, Deadline::After(interval_));
  }
}

}  // namespace dstampede::core
