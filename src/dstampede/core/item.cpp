#include "dstampede/core/item.hpp"

// ItemView and friends are plain value types; this translation unit
// exists to anchor the module and keep vtable-free types header-only.
namespace dstampede::core {}
