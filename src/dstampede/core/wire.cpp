#include "dstampede/core/wire.hpp"

namespace dstampede::core {

std::int64_t EncodeDeadline(Deadline deadline) {
  if (deadline.infinite()) return kDeadlineInfinite;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline.remaining())
                      .count();
  return ms < 0 ? 0 : ms;
}

Deadline DecodeDeadline(std::int64_t wire_ms) {
  if (wire_ms == kDeadlineInfinite) return Deadline::Infinite();
  if (wire_ms <= 0) return Deadline::Poll();
  return Deadline::AfterMillis(wire_ms);
}

Buffer EncodeStatusReply(std::uint64_t request_id, const Status& status) {
  marshal::XdrEncoder enc;
  EncodeResponseHeader(enc, request_id, status);
  return enc.Take();
}

Buffer EncodeItemReply(std::uint64_t request_id, const ItemView& item) {
  marshal::XdrEncoder enc(item.payload.size() + 64);
  EncodeResponseHeader(enc, request_id, OkStatus());
  enc.PutI64(item.timestamp);
  enc.PutOpaque(item.payload.span());
  return enc.Take();
}

Result<RequestHeader> DecodeRequestHeader(marshal::XdrDecoder& dec) {
  RequestHeader hdr;
  DS_ASSIGN_OR_RETURN(std::uint32_t op, dec.GetU32());
  hdr.op = static_cast<Op>(op & ~kTraceFlag);
  DS_ASSIGN_OR_RETURN(hdr.request_id, dec.GetU64());
  if (op & kTraceFlag) {
    DS_ASSIGN_OR_RETURN(hdr.trace.trace_id, dec.GetU64());
    DS_ASSIGN_OR_RETURN(hdr.trace.span_id, dec.GetU64());
    DS_ASSIGN_OR_RETURN(hdr.trace.flags, dec.GetU32());
  }
  return hdr;
}

Result<CreateReq> CreateReq::Decode(marshal::XdrDecoder& dec) {
  CreateReq req;
  DS_ASSIGN_OR_RETURN(req.capacity, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.debug_name, dec.GetString());
  return req;
}

Result<AttachReq> AttachReq::Decode(marshal::XdrDecoder& dec) {
  AttachReq req;
  DS_ASSIGN_OR_RETURN(req.container_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.is_queue, dec.GetBool());
  DS_ASSIGN_OR_RETURN(std::uint32_t mode, dec.GetU32());
  if (mode < 1 || mode > 3) return InternalError("bad ConnMode");
  req.mode = static_cast<ConnMode>(mode);
  DS_ASSIGN_OR_RETURN(req.label, dec.GetString());
  return req;
}

Result<DetachReq> DetachReq::Decode(marshal::XdrDecoder& dec) {
  DetachReq req;
  DS_ASSIGN_OR_RETURN(req.container_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.is_queue, dec.GetBool());
  DS_ASSIGN_OR_RETURN(req.slot, dec.GetU32());
  return req;
}

namespace {
Result<ConnMode> DecodeConnMode(marshal::XdrDecoder& dec) {
  DS_ASSIGN_OR_RETURN(std::uint32_t mode, dec.GetU32());
  if (mode < 1 || mode > 3) return InternalError("bad ConnMode");
  return static_cast<ConnMode>(mode);
}
}  // namespace

Result<PutReq> PutReq::Decode(marshal::XdrDecoder& dec) {
  PutReq req;
  DS_ASSIGN_OR_RETURN(req.container_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.is_queue, dec.GetBool());
  DS_ASSIGN_OR_RETURN(req.mode, DecodeConnMode(dec));
  DS_ASSIGN_OR_RETURN(req.slot, dec.GetU32());
  DS_ASSIGN_OR_RETURN(req.ts, dec.GetI64());
  DS_ASSIGN_OR_RETURN(req.deadline_ms, dec.GetI64());
  DS_ASSIGN_OR_RETURN(req.payload, dec.GetOpaque());
  return req;
}

Result<GetReq> GetReq::Decode(marshal::XdrDecoder& dec) {
  GetReq req;
  DS_ASSIGN_OR_RETURN(req.container_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.is_queue, dec.GetBool());
  DS_ASSIGN_OR_RETURN(req.mode, DecodeConnMode(dec));
  DS_ASSIGN_OR_RETURN(req.slot, dec.GetU32());
  DS_ASSIGN_OR_RETURN(std::uint32_t kind, dec.GetU32());
  if (kind > 3) return InternalError("bad GetSpec kind");
  req.spec.kind = static_cast<GetSpec::Kind>(kind);
  DS_ASSIGN_OR_RETURN(req.spec.ts, dec.GetI64());
  DS_ASSIGN_OR_RETURN(req.deadline_ms, dec.GetI64());
  return req;
}

Result<ConsumeReq> ConsumeReq::Decode(marshal::XdrDecoder& dec) {
  ConsumeReq req;
  DS_ASSIGN_OR_RETURN(req.container_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.is_queue, dec.GetBool());
  DS_ASSIGN_OR_RETURN(req.mode, DecodeConnMode(dec));
  DS_ASSIGN_OR_RETURN(req.slot, dec.GetU32());
  DS_ASSIGN_OR_RETURN(req.ts, dec.GetI64());
  DS_ASSIGN_OR_RETURN(req.until, dec.GetBool());
  return req;
}

Result<SetFilterReq> SetFilterReq::Decode(marshal::XdrDecoder& dec) {
  SetFilterReq req;
  DS_ASSIGN_OR_RETURN(req.container_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.slot, dec.GetU32());
  DS_ASSIGN_OR_RETURN(req.filter.stride, dec.GetI64());
  DS_ASSIGN_OR_RETURN(req.filter.phase, dec.GetI64());
  DS_ASSIGN_OR_RETURN(req.filter.ts_min, dec.GetI64());
  DS_ASSIGN_OR_RETURN(req.filter.ts_max, dec.GetI64());
  DS_ASSIGN_OR_RETURN(req.filter.min_bytes, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.filter.max_bytes, dec.GetU64());
  return req;
}

Result<NsEntry> DecodeNsEntry(marshal::XdrDecoder& dec) {
  NsEntry entry;
  DS_ASSIGN_OR_RETURN(entry.name, dec.GetString());
  DS_ASSIGN_OR_RETURN(std::uint32_t kind, dec.GetU32());
  if (kind > 2) return InternalError("bad NsEntry kind");
  entry.kind = static_cast<NsEntry::Kind>(kind);
  DS_ASSIGN_OR_RETURN(entry.id_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(entry.meta, dec.GetString());
  DS_ASSIGN_OR_RETURN(std::uint32_t owner, dec.GetU32());
  entry.owner_as = static_cast<AsId>(owner);
  return entry;
}

Result<SessionRecord> DecodeSessionRecord(marshal::XdrDecoder& dec) {
  SessionRecord rec;
  DS_ASSIGN_OR_RETURN(rec.session_id, dec.GetU64());
  DS_ASSIGN_OR_RETURN(rec.client_kind, dec.GetU32());
  DS_ASSIGN_OR_RETURN(rec.client_name, dec.GetString());
  DS_ASSIGN_OR_RETURN(std::uint32_t host, dec.GetU32());
  rec.host_as = static_cast<AsId>(host);
  DS_ASSIGN_OR_RETURN(rec.last_executed_ticket, dec.GetU64());
  DS_ASSIGN_OR_RETURN(std::uint32_t n_attach, dec.GetU32());
  if (n_attach > 1u << 20) return InternalError("bad attachment count");
  rec.attachments.reserve(n_attach);
  for (std::uint32_t i = 0; i < n_attach; ++i) {
    SessionAttachment a;
    DS_ASSIGN_OR_RETURN(a.container_bits, dec.GetU64());
    DS_ASSIGN_OR_RETURN(a.is_queue, dec.GetBool());
    DS_ASSIGN_OR_RETURN(std::uint32_t mode, dec.GetU32());
    a.mode = static_cast<std::uint8_t>(mode);
    DS_ASSIGN_OR_RETURN(a.slot, dec.GetU32());
    DS_ASSIGN_OR_RETURN(a.label, dec.GetString());
    rec.attachments.push_back(std::move(a));
  }
  DS_ASSIGN_OR_RETURN(std::uint32_t n_gc, dec.GetU32());
  if (n_gc > 1u << 20) return InternalError("bad gc-interest count");
  rec.gc_interests.reserve(n_gc);
  for (std::uint32_t i = 0; i < n_gc; ++i) {
    SessionGcInterest g;
    DS_ASSIGN_OR_RETURN(g.container_bits, dec.GetU64());
    DS_ASSIGN_OR_RETURN(g.is_queue, dec.GetBool());
    rec.gc_interests.push_back(g);
  }
  DS_ASSIGN_OR_RETURN(std::uint32_t n_names, dec.GetU32());
  if (n_names > 1u << 20) return InternalError("bad name count");
  rec.registered_names.reserve(n_names);
  for (std::uint32_t i = 0; i < n_names; ++i) {
    DS_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    rec.registered_names.push_back(std::move(name));
  }
  DS_ASSIGN_OR_RETURN(rec.redo_ticket, dec.GetU64());
  DS_ASSIGN_OR_RETURN(rec.redo_payload, dec.GetOpaque());
  return rec;
}

Result<SessionIdReq> SessionIdReq::Decode(marshal::XdrDecoder& dec) {
  SessionIdReq req;
  DS_ASSIGN_OR_RETURN(req.session_id, dec.GetU64());
  return req;
}

Result<SessionTickReq> SessionTickReq::Decode(marshal::XdrDecoder& dec) {
  SessionTickReq req;
  DS_ASSIGN_OR_RETURN(req.session_id, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.ticket, dec.GetU64());
  return req;
}

Result<MetricsReq> MetricsReq::Decode(marshal::XdrDecoder& dec) {
  MetricsReq req;
  DS_ASSIGN_OR_RETURN(req.target_as, dec.GetU32());
  return req;
}

Result<NsLookupReq> NsLookupReq::Decode(marshal::XdrDecoder& dec) {
  NsLookupReq req;
  DS_ASSIGN_OR_RETURN(req.name, dec.GetString());
  DS_ASSIGN_OR_RETURN(req.deadline_ms, dec.GetI64());
  return req;
}

Buffer EncodeNsMutation(const NsMutation& m) {
  marshal::XdrEncoder enc;
  enc.PutU32(static_cast<std::uint32_t>(m.kind));
  switch (m.kind) {
    case NsMutation::Kind::kRegister:
      EncodeNsEntry(enc, m.entry);
      break;
    case NsMutation::Kind::kUnregister:
      enc.PutString(m.name);
      break;
    case NsMutation::Kind::kPurgeOwner:
      enc.PutU32(AsIndex(m.owner));
      break;
    case NsMutation::Kind::kPutSession:
      EncodeSessionRecord(enc, m.session);
      break;
    case NsMutation::Kind::kDropSession:
      enc.PutU64(m.session_id);
      break;
    case NsMutation::Kind::kTickSession:
      enc.PutU64(m.session_id);
      enc.PutU64(m.ticket);
      break;
  }
  return enc.Take();
}

Result<NsMutation> DecodeNsMutation(const Buffer& bytes) {
  marshal::XdrDecoder dec(bytes);
  NsMutation m;
  DS_ASSIGN_OR_RETURN(std::uint32_t kind, dec.GetU32());
  if (kind < 1 || kind > 6) return InternalError("bad NsMutation kind");
  m.kind = static_cast<NsMutation::Kind>(kind);
  switch (m.kind) {
    case NsMutation::Kind::kRegister: {
      DS_ASSIGN_OR_RETURN(m.entry, DecodeNsEntry(dec));
      break;
    }
    case NsMutation::Kind::kUnregister: {
      DS_ASSIGN_OR_RETURN(m.name, dec.GetString());
      break;
    }
    case NsMutation::Kind::kPurgeOwner: {
      DS_ASSIGN_OR_RETURN(std::uint32_t owner, dec.GetU32());
      m.owner = static_cast<AsId>(owner);
      break;
    }
    case NsMutation::Kind::kPutSession: {
      DS_ASSIGN_OR_RETURN(m.session, DecodeSessionRecord(dec));
      break;
    }
    case NsMutation::Kind::kDropSession: {
      DS_ASSIGN_OR_RETURN(m.session_id, dec.GetU64());
      break;
    }
    case NsMutation::Kind::kTickSession: {
      DS_ASSIGN_OR_RETURN(m.session_id, dec.GetU64());
      DS_ASSIGN_OR_RETURN(m.ticket, dec.GetU64());
      break;
    }
  }
  return m;
}

Result<RepAppendReq> RepAppendReq::Decode(marshal::XdrDecoder& dec) {
  RepAppendReq req;
  DS_ASSIGN_OR_RETURN(req.term, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.leader_as, dec.GetU32());
  DS_ASSIGN_OR_RETURN(req.leader_last_index, dec.GetU64());
  DS_ASSIGN_OR_RETURN(req.first_index, dec.GetU64());
  DS_ASSIGN_OR_RETURN(std::uint32_t count, dec.GetU32());
  if (count > 1u << 20) return InternalError("bad entry count");
  req.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DS_ASSIGN_OR_RETURN(Buffer entry, dec.GetOpaque());
    req.entries.push_back(std::move(entry));
  }
  return req;
}

Result<RepAppendAck> RepAppendAck::Decode(marshal::XdrDecoder& dec) {
  RepAppendAck ack;
  DS_ASSIGN_OR_RETURN(ack.term, dec.GetU64());
  DS_ASSIGN_OR_RETURN(ack.applied_index, dec.GetU64());
  return ack;
}

Result<RepFetchReq> RepFetchReq::Decode(marshal::XdrDecoder& dec) {
  RepFetchReq req;
  DS_ASSIGN_OR_RETURN(req.from_index, dec.GetU64());
  return req;
}

Result<RepFetchResp> RepFetchResp::Decode(marshal::XdrDecoder& dec) {
  RepFetchResp resp;
  DS_ASSIGN_OR_RETURN(resp.term, dec.GetU64());
  DS_ASSIGN_OR_RETURN(resp.applied_index, dec.GetU64());
  DS_ASSIGN_OR_RETURN(resp.first_index, dec.GetU64());
  DS_ASSIGN_OR_RETURN(std::uint32_t count, dec.GetU32());
  if (count > 1u << 20) return InternalError("bad entry count");
  resp.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DS_ASSIGN_OR_RETURN(Buffer entry, dec.GetOpaque());
    resp.entries.push_back(std::move(entry));
  }
  return resp;
}

Result<ResponseHeader> DecodeResponseHeader(marshal::XdrDecoder& dec) {
  DS_ASSIGN_OR_RETURN(std::uint32_t op, dec.GetU32());
  if (static_cast<Op>(op) != Op::kReply) {
    return InternalError("expected reply frame");
  }
  ResponseHeader hdr;
  DS_ASSIGN_OR_RETURN(hdr.request_id, dec.GetU64());
  DS_ASSIGN_OR_RETURN(std::uint32_t code, dec.GetU32());
  DS_ASSIGN_OR_RETURN(std::string message, dec.GetString());
  hdr.status = Status(static_cast<StatusCode>(code), std::move(message));
  return hdr;
}

Result<GcNotice> DecodeGcNotice(marshal::XdrDecoder& dec) {
  GcNotice notice;
  DS_ASSIGN_OR_RETURN(notice.container_bits, dec.GetU64());
  DS_ASSIGN_OR_RETURN(notice.is_queue, dec.GetBool());
  DS_ASSIGN_OR_RETURN(notice.timestamp, dec.GetI64());
  DS_ASSIGN_OR_RETURN(std::uint64_t size, dec.GetU64());
  notice.payload_size = size;
  return notice;
}

}  // namespace dstampede::core
