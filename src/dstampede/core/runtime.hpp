// Runtime: bootstraps the cluster ("body" of the Octopus).
//
// Mirrors the server-program startup of §4: it creates k address
// spaces, wires the full CLF peer mesh between them, and designates
// address space 0 to host the name server. Address spaces can also be
// added dynamically (a joining component, §2's dynamic start/stop).
//
// In the paper each address space is a process on a cluster node; here
// each is an in-process runtime endpoint with its own CLF port, so the
// identical wire protocol runs between them (DESIGN.md, substitutions).
#pragma once

#include <memory>
#include <vector>

#include "dstampede/core/address_space.hpp"

namespace dstampede::core {

class Runtime {
 public:
  struct Options {
    std::size_t num_address_spaces = 1;
    std::size_t dispatcher_threads = 8;
    bool shm_fastpath = false;
    Duration gc_interval = Millis(20);
    clf::FaultInjector::Config faults;
    // Multi-cluster support (Federation): the base of this cluster's
    // AsId range, and whether its first AS hosts the name server. A
    // standalone cluster keeps the defaults.
    std::uint32_t first_as_id = 0;
    bool host_name_server = true;
    AsId name_server_as = kInvalidAsId;  // invalid: this cluster's AS 0
    // Control-plane HA: the first `ns_replicas` spaces each host a
    // NameServer replica behind the leader-lease replication log
    // (core/replog.hpp); 1 keeps the paper's single name server in
    // AS 0. Clamped to the cluster size. Only meaningful when this
    // cluster hosts the name server.
    std::size_t ns_replicas = 1;
    Duration ns_lease = Millis(1200);
    Duration ns_heartbeat = Millis(300);
    // Federation: explicit replica list of a *remote* name-server
    // cluster. When set, every space of this cluster routes its
    // name-service calls across this list (and hosts no replica of its
    // own); overrides the locally-derived list.
    std::vector<AsId> ns_replica_ids;
    // Control-plane RPC deadline for every address space (see
    // AddressSpace::Options::internal_rpc_deadline).
    Duration internal_rpc_deadline = Millis(10000);
    // Cluster failure detection; all-zero keeps the paper's fail-free
    // model. See AddressSpace::Options.
    std::size_t clf_max_retransmits = 0;
    Duration peer_keepalive_interval = Duration::zero();
    Duration peer_timeout = Duration::zero();
  };

  static Result<std::unique_ptr<Runtime>> Create(const Options& options);
  ~Runtime() { Shutdown(); }

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  std::size_t size() const { return spaces_.size(); }
  AddressSpace& as(std::size_t i) { return *spaces_.at(i); }

  // Dynamically adds one more address space, wired to all existing
  // ones (and they to it). Returns the new space.
  Result<AddressSpace*> AddAddressSpace();

  // Stops every address space. Idempotent.
  void Shutdown();

 private:
  Runtime() = default;

  Options options_;
  std::vector<std::unique_ptr<AddressSpace>> spaces_;
};

}  // namespace dstampede::core
