// Wire protocol for space-time-memory operations.
//
// One op set serves both planes of the system (Fig 4): address spaces
// inside the cluster exchange these messages over CLF, and end-device
// client libraries exchange them with their surrogate over TCP. The
// encoders are templated so the C client (XdrEncoder) and the
// Java-style client (JavaStyleEncoder) emit byte-identical requests;
// the server always decodes with XdrDecoder.
//
// Framing: requests are  [u32 op][u64 request_id][op fields...];
// responses are          [u32 kReply][u64 request_id][u32 status]
//                        [string status_msg][op result fields...].
//
// Trace context (optional, telemetry layer): a request whose op word
// has the high bit (kTraceFlag) set carries
//   [u64 trace_id][u64 span_id][u32 trace_flags]
// between request_id and the op fields. Untraced peers never set the
// bit, so both directions of old/new interop decode unchanged;
// responses never carry trace fields. EncodeRequestHeader injects the
// calling thread's current trace context automatically, which is how
// the context propagates across every AS->AS hop (including requests
// re-issued on behalf of a suspended DeferredReply).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/trace.hpp"
#include "dstampede/core/item.hpp"
#include "dstampede/marshal/xdr.hpp"

namespace dstampede::core {

enum class Op : std::uint32_t {
  kCreateChannel = 1,
  kCreateQueue = 2,
  kAttach = 3,
  kDetach = 4,
  kPut = 5,
  kGet = 6,
  kConsume = 7,
  kNsRegister = 8,
  kNsLookup = 9,
  kNsUnregister = 10,
  kNsList = 11,
  kSetFilter = 12,
  // End-device session registry (client resilience layer): surrogates
  // mirror their session state into the name server so any listener
  // can rehydrate a session after a connection drop or host death.
  kSessionPut = 13,
  kSessionGet = 14,
  kSessionDrop = 15,
  kSessionTick = 16,
  // Introspection: returns the target address space's sys/metrics
  // JSON snapshot (registry + spans + per-container space-time state).
  kMetrics = 17,
  // Control-plane replication (core/replog.hpp): leader -> follower
  // log append / heartbeat, and follower/candidate -> peer catch-up
  // fetch. Replica-internal; never issued by clients.
  kRepAppend = 18,
  kRepFetch = 19,
  kReply = 100,
};

// High bit of the wire op word: this request carries a trace context.
inline constexpr std::uint32_t kTraceFlag = 0x80000000u;

// Deadline on the wire: milliseconds the callee may block.
// kDeadlineInfinite = block forever; 0 = poll.
inline constexpr std::int64_t kDeadlineInfinite = -1;

std::int64_t EncodeDeadline(Deadline deadline);
Deadline DecodeDeadline(std::int64_t wire_ms);

struct RequestHeader {
  Op op = Op::kReply;
  std::uint64_t request_id = 0;
  // Unsampled/empty unless the frame carried kTraceFlag.
  trace::TraceContext trace;
};

template <class Enc>
void EncodeRequestHeader(Enc& enc, Op op, std::uint64_t request_id) {
  const trace::TraceContext ctx = trace::CurrentContext();
  if (ctx.sampled()) {
    enc.PutU32(static_cast<std::uint32_t>(op) | kTraceFlag);
    enc.PutU64(request_id);
    enc.PutU64(ctx.trace_id);
    enc.PutU64(ctx.span_id);
    enc.PutU32(ctx.flags);
  } else {
    enc.PutU32(static_cast<std::uint32_t>(op));
    enc.PutU64(request_id);
  }
}
Result<RequestHeader> DecodeRequestHeader(marshal::XdrDecoder& dec);

// ---- per-op request bodies -------------------------------------------

struct CreateReq {  // kCreateChannel / kCreateQueue
  std::uint64_t capacity = 0;
  std::string debug_name;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(capacity);
    enc.PutString(debug_name);
  }
  static Result<CreateReq> Decode(marshal::XdrDecoder& dec);
};

struct AttachReq {  // kAttach
  std::uint64_t container_bits = 0;
  bool is_queue = false;
  ConnMode mode = ConnMode::kInput;
  std::string label;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(container_bits);
    enc.PutBool(is_queue);
    enc.PutU32(static_cast<std::uint32_t>(mode));
    enc.PutString(label);
  }
  static Result<AttachReq> Decode(marshal::XdrDecoder& dec);
};

struct DetachReq {  // kDetach
  std::uint64_t container_bits = 0;
  bool is_queue = false;
  std::uint32_t slot = 0;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(container_bits);
    enc.PutBool(is_queue);
    enc.PutU32(slot);
  }
  static Result<DetachReq> Decode(marshal::XdrDecoder& dec);
};

struct PutReq {  // kPut
  std::uint64_t container_bits = 0;
  bool is_queue = false;
  ConnMode mode = ConnMode::kOutput;  // of the issuing connection
  std::uint32_t slot = 0;
  Timestamp ts = 0;
  std::int64_t deadline_ms = kDeadlineInfinite;
  Buffer payload;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(container_bits);
    enc.PutBool(is_queue);
    enc.PutU32(static_cast<std::uint32_t>(mode));
    enc.PutU32(slot);
    enc.PutI64(ts);
    enc.PutI64(deadline_ms);
    enc.PutOpaque(payload);
  }
  static Result<PutReq> Decode(marshal::XdrDecoder& dec);
};

struct GetReq {  // kGet
  std::uint64_t container_bits = 0;
  bool is_queue = false;
  ConnMode mode = ConnMode::kInput;
  std::uint32_t slot = 0;
  GetSpec spec;
  std::int64_t deadline_ms = kDeadlineInfinite;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(container_bits);
    enc.PutBool(is_queue);
    enc.PutU32(static_cast<std::uint32_t>(mode));
    enc.PutU32(slot);
    enc.PutU32(static_cast<std::uint32_t>(spec.kind));
    enc.PutI64(spec.ts);
    enc.PutI64(deadline_ms);
  }
  static Result<GetReq> Decode(marshal::XdrDecoder& dec);
};

struct ConsumeReq {  // kConsume
  std::uint64_t container_bits = 0;
  bool is_queue = false;
  ConnMode mode = ConnMode::kInput;
  std::uint32_t slot = 0;
  Timestamp ts = 0;
  bool until = false;  // ConsumeUntil instead of Consume

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(container_bits);
    enc.PutBool(is_queue);
    enc.PutU32(static_cast<std::uint32_t>(mode));
    enc.PutU32(slot);
    enc.PutI64(ts);
    enc.PutBool(until);
  }
  static Result<ConsumeReq> Decode(marshal::XdrDecoder& dec);
};

struct SetFilterReq {  // kSetFilter (channels only)
  std::uint64_t container_bits = 0;
  std::uint32_t slot = 0;
  ItemFilter filter;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(container_bits);
    enc.PutU32(slot);
    enc.PutI64(filter.stride);
    enc.PutI64(filter.phase);
    enc.PutI64(filter.ts_min);
    enc.PutI64(filter.ts_max);
    enc.PutU64(filter.min_bytes);
    enc.PutU64(filter.max_bytes);
  }
  static Result<SetFilterReq> Decode(marshal::XdrDecoder& dec);
};

template <class Enc>
void EncodeNsEntry(Enc& enc, const NsEntry& entry) {
  enc.PutString(entry.name);
  enc.PutU32(static_cast<std::uint32_t>(entry.kind));
  enc.PutU64(entry.id_bits);
  enc.PutString(entry.meta);
  enc.PutU32(AsIndex(entry.owner_as));
}
Result<NsEntry> DecodeNsEntry(marshal::XdrDecoder& dec);

// SessionRecord codec, used both in kSessionPut requests and in
// kSessionGet / client-Resume replies.
template <class Enc>
void EncodeSessionRecord(Enc& enc, const SessionRecord& rec) {
  enc.PutU64(rec.session_id);
  enc.PutU32(rec.client_kind);
  enc.PutString(rec.client_name);
  enc.PutU32(AsIndex(rec.host_as));
  enc.PutU64(rec.last_executed_ticket);
  enc.PutU32(static_cast<std::uint32_t>(rec.attachments.size()));
  for (const auto& a : rec.attachments) {
    enc.PutU64(a.container_bits);
    enc.PutBool(a.is_queue);
    enc.PutU32(a.mode);
    enc.PutU32(a.slot);
    enc.PutString(a.label);
  }
  enc.PutU32(static_cast<std::uint32_t>(rec.gc_interests.size()));
  for (const auto& g : rec.gc_interests) {
    enc.PutU64(g.container_bits);
    enc.PutBool(g.is_queue);
  }
  enc.PutU32(static_cast<std::uint32_t>(rec.registered_names.size()));
  for (const auto& n : rec.registered_names) enc.PutString(n);
  enc.PutU64(rec.redo_ticket);
  enc.PutOpaque(rec.redo_payload);
}
Result<SessionRecord> DecodeSessionRecord(marshal::XdrDecoder& dec);

struct SessionIdReq {  // kSessionGet / kSessionDrop
  std::uint64_t session_id = 0;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(session_id);
  }
  static Result<SessionIdReq> Decode(marshal::XdrDecoder& dec);
};

struct SessionTickReq {  // kSessionTick
  std::uint64_t session_id = 0;
  std::uint64_t ticket = 0;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(session_id);
    enc.PutU64(ticket);
  }
  static Result<SessionTickReq> Decode(marshal::XdrDecoder& dec);
};

struct MetricsReq {  // kMetrics
  // Address space whose snapshot is wanted; the receiving space
  // forwards when it is not the target (same pattern as the NS ops,
  // so a TCP client can introspect any space through its surrogate).
  std::uint32_t target_as = 0;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU32(target_as);
  }
  static Result<MetricsReq> Decode(marshal::XdrDecoder& dec);
};

struct NsLookupReq {  // kNsLookup (also kNsUnregister: name only)
  std::string name;
  std::int64_t deadline_ms = 0;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutString(name);
    enc.PutI64(deadline_ms);
  }
  static Result<NsLookupReq> Decode(marshal::XdrDecoder& dec);
};

// ---- control-plane replication (core/replog.hpp) ----------------------

// One replicated name-server / session-registry state-machine op. The
// leader encodes the mutation, appends it to the replication log, and
// every replica (leader included) applies the identical bytes through
// NameServer::Apply — one code path for local and replicated writes.
struct NsMutation {
  enum class Kind : std::uint32_t {
    kRegister = 1,
    kUnregister = 2,
    kPurgeOwner = 3,
    kPutSession = 4,
    kDropSession = 5,
    kTickSession = 6,
  };
  Kind kind = Kind::kRegister;
  NsEntry entry;                   // kRegister
  std::string name;                // kUnregister
  AsId owner = kInvalidAsId;       // kPurgeOwner
  SessionRecord session;           // kPutSession
  std::uint64_t session_id = 0;    // kDropSession / kTickSession
  std::uint64_t ticket = 0;        // kTickSession
};
Buffer EncodeNsMutation(const NsMutation& m);
Result<NsMutation> DecodeNsMutation(const Buffer& bytes);

struct RepAppendReq {  // kRepAppend (no entries = leader heartbeat)
  std::uint64_t term = 0;
  std::uint32_t leader_as = 0;
  // Leader's last appended index; a follower that is behind reports
  // its own applied index in the ack and catches up via kRepFetch.
  std::uint64_t leader_last_index = 0;
  // Index of entries[0]; entries are consecutive.
  std::uint64_t first_index = 0;
  std::vector<Buffer> entries;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(term);
    enc.PutU32(leader_as);
    enc.PutU64(leader_last_index);
    enc.PutU64(first_index);
    enc.PutU32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) enc.PutOpaque(e);
  }
  static Result<RepAppendReq> Decode(marshal::XdrDecoder& dec);
};

// kRepAppend ack body (after the status header): the follower's term
// and applied index, so the leader tracks replica lag and steps down
// on a stale term.
struct RepAppendAck {
  std::uint64_t term = 0;
  std::uint64_t applied_index = 0;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(term);
    enc.PutU64(applied_index);
  }
  static Result<RepAppendAck> Decode(marshal::XdrDecoder& dec);
};

struct RepFetchReq {  // kRepFetch: send me your log from this index on
  std::uint64_t from_index = 0;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(from_index);
  }
  static Result<RepFetchReq> Decode(marshal::XdrDecoder& dec);
};

// kRepFetch reply body: the replica's term/applied index and every log
// entry it holds in [from_index, applied_index].
struct RepFetchResp {
  std::uint64_t term = 0;
  std::uint64_t applied_index = 0;
  std::uint64_t first_index = 0;  // index of entries[0]
  std::vector<Buffer> entries;

  template <class Enc>
  void Encode(Enc& enc) const {
    enc.PutU64(term);
    enc.PutU64(applied_index);
    enc.PutU64(first_index);
    enc.PutU32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) enc.PutOpaque(e);
  }
  static Result<RepFetchResp> Decode(marshal::XdrDecoder& dec);
};

// ---- responses --------------------------------------------------------

template <class Enc>
void EncodeResponseHeader(Enc& enc, std::uint64_t request_id,
                          const Status& status) {
  // Raw puts, NOT EncodeRequestHeader: responses never carry a trace
  // context (a deferred completion may run on a thread whose ambient
  // context is sampled, and DecodeResponseHeader requires a bare
  // kReply op word).
  enc.PutU32(static_cast<std::uint32_t>(Op::kReply));
  enc.PutU64(request_id);
  enc.PutU32(static_cast<std::uint32_t>(status.code()));
  enc.PutString(status.message());
}

struct ResponseHeader {
  std::uint64_t request_id = 0;
  Status status;
};
// Expects the decoder positioned at the op field.
Result<ResponseHeader> DecodeResponseHeader(marshal::XdrDecoder& dec);

// Fully-encoded replies, shared by the synchronous dispatch path and
// the deferred-completion path (which encodes on whatever thread
// resolved the waiter — putter, GC sweeper, timer wheel, shutdown).
Buffer EncodeStatusReply(std::uint64_t request_id, const Status& status);
// Successful kGet reply: status header + timestamp + payload.
Buffer EncodeItemReply(std::uint64_t request_id, const ItemView& item);

// GcNotice encoding, used for surrogate -> end device forwarding.
template <class Enc>
void EncodeGcNotice(Enc& enc, const GcNotice& notice) {
  enc.PutU64(notice.container_bits);
  enc.PutBool(notice.is_queue);
  enc.PutI64(notice.timestamp);
  enc.PutU64(notice.payload_size);
}
Result<GcNotice> DecodeGcNotice(marshal::XdrDecoder& dec);

}  // namespace dstampede::core
