// Typed items via serialization handler functions (paper §3.1): "if an
// item (which may be a complex user-defined data structure) has to be
// transported across address spaces ..., the user can define
// serialization and de-serialization handlers that D-Stampede will
// invoke as necessary".
//
// Here the handler pair is a codec type the user supplies:
//
//   struct MyCodec {
//     static Buffer Serialize(const MyType& value);
//     static Result<MyType> Deserialize(std::span<const std::uint8_t>);
//   };
//
//   PutTyped<MyCodec>(runtime_or_client, conn, ts, value);
//   auto item = GetTyped<MyCodec>(runtime_or_client, conn, spec);
//
// The helpers are generic over the runtime handle (AddressSpace,
// CClient, JavaStyleClient) — the same handlers work from the cluster
// and from any end-device personality, preserving the paper's "uniform
// set of API calls".
#pragma once

#include <concepts>
#include <span>
#include <utility>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/core/item.hpp"

namespace dstampede::core {

// What a serialization-handler pair must look like.
template <typename C>
concept ItemCodec = requires(std::span<const std::uint8_t> bytes) {
  { C::Deserialize(bytes) };
  requires requires(const decltype(C::Deserialize(bytes).value())& v) {
    { C::Serialize(v) } -> std::convertible_to<Buffer>;
  };
};

template <typename C>
using CodecValue =
    std::remove_cvref_t<decltype(C::Deserialize(
                                     std::span<const std::uint8_t>{})
                                     .value())>;

// A typed get result: timestamp plus the deserialized value.
template <typename T>
struct TypedItem {
  Timestamp timestamp;
  T value;
};

// rt is anything exposing Put(conn, ts, Buffer, Deadline): an
// AddressSpace or a client-library session.
template <typename Codec, typename Rt, typename Conn>
Status PutTyped(Rt& rt, const Conn& conn, Timestamp ts,
                const CodecValue<Codec>& value,
                Deadline deadline = Deadline::Infinite()) {
  return rt.Put(conn, ts, Codec::Serialize(value), deadline);
}

template <typename Codec, typename Rt, typename Conn>
Result<TypedItem<CodecValue<Codec>>> GetTyped(
    Rt& rt, const Conn& conn, GetSpec spec,
    Deadline deadline = Deadline::Infinite()) {
  auto item = rt.Get(conn, spec, deadline);
  if (!item.ok()) return item.status();
  auto value = Codec::Deserialize(item->payload.span());
  if (!value.ok()) return value.status();
  return TypedItem<CodecValue<Codec>>{item->timestamp,
                                      std::move(value).value()};
}

}  // namespace dstampede::core
