#include "dstampede/core/channel.hpp"

#include <algorithm>

namespace dstampede::core {

void LocalChannel::ConnState::Compact() {
  // Fold contiguous consumed timestamps into the watermark. Only exact
  // contiguity can be folded: a gap may later be filled by a put.
  while (!consumed.empty() &&
         watermark != kInvalidTimestamp &&
         *consumed.begin() == watermark + 1) {
    watermark = *consumed.begin();
    consumed.erase(consumed.begin());
  }
}

std::uint32_t LocalChannel::Attach(ConnMode mode, std::string label) {
  ds::MutexLock lock(mu_);
  const std::uint32_t slot = next_slot_++;
  ConnState state;
  state.mode = mode;
  state.label = std::move(label);
  conns_.emplace(slot, std::move(state));
  return slot;
}

Status LocalChannel::Detach(std::uint32_t slot) {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    conns_.erase(it);
    // Items only the departed connection was holding up become garbage.
    ReclaimLocked(wakeups);
    // Reclaim can admit back-pressured puts; gets parked on the now
    // dead slot complete with kNotFound.
    EvaluateWaitersLocked(wakeups);
  }
  Finish(std::move(wakeups));
  return OkStatus();
}

bool LocalChannel::IsGarbageLocked(Timestamp ts, std::size_t bytes) const {
  bool any_input = false;
  for (const auto& [slot, conn] : conns_) {
    if (!CanInput(conn.mode)) continue;
    any_input = true;
    if (conn.Wants(ts, bytes)) return false;
  }
  // With no input connection attached nothing is garbage: a consumer
  // may join later (dynamic start/stop), so items are retained.
  return any_input;
}

void LocalChannel::Close() {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    closed_ = true;
    // Every parked waiter now resolves terminally (kCancelled).
    EvaluateWaitersLocked(wakeups);
  }
  Finish(std::move(wakeups));
}

std::optional<Status> LocalChannel::TryPutLocked(Timestamp ts,
                                                 SharedBuffer& payload,
                                                 Wakeups& out) {
  if (closed_) return CancelledError("channel closed");
  if (max_reclaimed_ != kInvalidTimestamp && ts <= max_reclaimed_) {
    return GarbageCollectedError("timestamp below reclaim horizon");
  }
  if (items_.count(ts) > 0) {
    return AlreadyExistsError("timestamp already in channel");
  }
  if (attr_.capacity_items != 0 && items_.size() >= attr_.capacity_items) {
    return std::nullopt;  // back-pressure: park
  }
  const std::size_t bytes = payload.size();
  items_.emplace(ts, std::move(payload));
  ++total_puts_;
  if (frontier_ == kInvalidTimestamp || ts > frontier_) frontier_ = ts;
  if (metrics_.puts != nullptr) metrics_.puts->Add();
  if (metrics_.reclaim_lag_us != nullptr) put_times_[ts] = Now();
  // An item can be born garbage: every attached input has already
  // consumed past it (or filters it out). Reclaim it on the spot so
  // its GC handler fires promptly instead of on the next sweep.
  if (IsGarbageLocked(ts, bytes)) ReclaimLocked(out);
  return OkStatus();
}

Status LocalChannel::Put(Timestamp ts, SharedBuffer payload,
                         Deadline deadline) {
  SyncWaiter<Status> sync;
  const std::uint64_t id = PutAsync(
      ts, std::move(payload), deadline,
      [&sync](Status st) { sync.Complete(std::move(st)); }, kNoWaiterOrigin,
      /*use_timer=*/false);
  if (!sync.AwaitUntil(deadline) && id != 0) {
    // Deadline passed while parked. If we win the cancellation race
    // this completes the waiter with kTimeout inline; if a real
    // completer beat us, TakeResult() returns its result instead.
    CancelWaiter(id, TimeoutError("channel at capacity"));
  }
  return sync.TakeResult();
}

std::uint64_t LocalChannel::PutAsync(Timestamp ts, SharedBuffer payload,
                                     Deadline deadline, PutCompletion done,
                                     std::uint32_t origin, bool use_timer) {
  if (ts == kInvalidTimestamp) {
    done(InvalidArgumentError("bad timestamp"));
    return 0;
  }
  Wakeups wakeups;
  std::optional<Status> inline_result;
  std::uint64_t id = 0;
  {
    ds::MutexLock lock(mu_);
    inline_result = TryPutLocked(ts, payload, wakeups);
    if (inline_result.has_value()) {
      // The new item (or the reclaim it triggered) may resolve parked
      // waiters.
      if (inline_result->ok()) EvaluateWaitersLocked(wakeups);
    } else if (deadline.expired()) {
      inline_result = TimeoutError("channel at capacity");
    } else {
      id = next_waiter_id_++;
      PutWaiter waiter{ts, std::move(payload), std::move(done), origin, 0};
      if (use_timer && wheel_ != nullptr) {
        waiter.timer = wheel_->Schedule(deadline, [this, id] {
          CancelWaiter(id, TimeoutError("channel at capacity"));
        });
      }
      put_waiters_.emplace(id, std::move(waiter));
    }
  }
  Finish(std::move(wakeups));
  if (inline_result.has_value()) done(std::move(*inline_result));
  return id;
}

Result<ItemView> LocalChannel::SelectLocked(const ConnState& conn,
                                            GetSpec spec) const {
  switch (spec.kind) {
    case GetSpec::Kind::kExact: {
      auto it = items_.find(spec.ts);
      if (it == items_.end()) return NotFoundError("ts not present");
      if (!conn.filter.Matches(it->first, it->second.size())) {
        // Present but size-filtered: invisible to this connection.
        return NotFoundError("item filtered out");
      }
      return ItemView{it->first, it->second};
    }
    case GetSpec::Kind::kOldest: {
      for (const auto& [ts, payload] : items_) {
        if (conn.Wants(ts, payload.size())) return ItemView{ts, payload};
      }
      return NotFoundError("no unconsumed item");
    }
    case GetSpec::Kind::kNewest: {
      for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
        if (conn.Wants(it->first, it->second.size())) {
          return ItemView{it->first, it->second};
        }
      }
      return NotFoundError("no unconsumed item");
    }
    case GetSpec::Kind::kNextAfter: {
      for (auto it = items_.upper_bound(spec.ts); it != items_.end(); ++it) {
        if (conn.Wants(it->first, it->second.size())) {
          return ItemView{it->first, it->second};
        }
      }
      return NotFoundError("no item after ts");
    }
  }
  return InternalError("bad GetSpec");
}

Status LocalChannel::CheckGetPreconditionsLocked(const ConnState& conn,
                                                 GetSpec spec) const {
  if (!CanInput(conn.mode)) {
    return PermissionDeniedError("connection is output-only");
  }
  if (spec.kind == GetSpec::Kind::kExact) {
    if (!conn.filter.MatchesTs(spec.ts)) {
      return InvalidArgumentError("timestamp excluded by connection filter");
    }
    if (conn.HasConsumed(spec.ts)) {
      return GarbageCollectedError("timestamp consumed by this connection");
    }
    if (items_.count(spec.ts) == 0 && max_reclaimed_ != kInvalidTimestamp &&
        spec.ts <= max_reclaimed_) {
      return GarbageCollectedError("timestamp below reclaim horizon");
    }
  }
  return OkStatus();
}

std::optional<Result<ItemView>> LocalChannel::TryGetLocked(std::uint32_t slot,
                                                           GetSpec spec) const {
  if (closed_) return Result<ItemView>(CancelledError("channel closed"));
  auto conn_it = conns_.find(slot);
  if (conn_it == conns_.end()) {
    return Result<ItemView>(NotFoundError("connection"));
  }
  const ConnState& conn = conn_it->second;
  Status pre = CheckGetPreconditionsLocked(conn, spec);
  if (!pre.ok()) return Result<ItemView>(std::move(pre));
  Result<ItemView> found = SelectLocked(conn, spec);
  if (found.ok()) return found;
  // No eligible item yet; a put (or reclaim that turns the wait into
  // an error) re-evaluates.
  return std::nullopt;
}

Result<ItemView> LocalChannel::Get(std::uint32_t slot, GetSpec spec,
                                   Deadline deadline) {
  SyncWaiter<Result<ItemView>> sync;
  const std::uint64_t id = GetAsync(
      slot, spec, deadline,
      [&sync](Result<ItemView> item) { sync.Complete(std::move(item)); },
      kNoWaiterOrigin, /*use_timer=*/false);
  if (!sync.AwaitUntil(deadline) && id != 0) {
    CancelWaiter(id, TimeoutError("channel get"));
  }
  return sync.TakeResult();
}

std::uint64_t LocalChannel::GetAsync(std::uint32_t slot, GetSpec spec,
                                     Deadline deadline, GetCompletion done,
                                     std::uint32_t origin, bool use_timer) {
  std::optional<Result<ItemView>> inline_result;
  std::uint64_t id = 0;
  {
    ds::MutexLock lock(mu_);
    inline_result = TryGetLocked(slot, spec);
    if (!inline_result.has_value() && deadline.expired()) {
      inline_result = Result<ItemView>(TimeoutError("channel get"));
    }
    if (metrics_.gets != nullptr && inline_result.has_value() &&
        inline_result->ok()) {
      metrics_.gets->Add();
    }
    if (!inline_result.has_value()) {
      id = next_waiter_id_++;
      GetWaiter waiter{slot, spec, std::move(done), origin, 0};
      if (use_timer && wheel_ != nullptr) {
        waiter.timer = wheel_->Schedule(deadline, [this, id] {
          CancelWaiter(id, TimeoutError("channel get"));
        });
      }
      get_waiters_.emplace(id, std::move(waiter));
    }
  }
  if (inline_result.has_value()) done(std::move(*inline_result));
  return id;
}

bool LocalChannel::CancelWaiter(std::uint64_t waiter_id,
                                const Status& status) {
  std::function<void()> completion;
  TimerWheel::TimerId timer = 0;
  {
    ds::MutexLock lock(mu_);
    if (auto it = get_waiters_.find(waiter_id); it != get_waiters_.end()) {
      timer = it->second.timer;
      completion = [done = std::move(it->second.done), st = status]() mutable {
        done(Result<ItemView>(std::move(st)));
      };
      get_waiters_.erase(it);
    } else if (auto pit = put_waiters_.find(waiter_id);
               pit != put_waiters_.end()) {
      timer = pit->second.timer;
      completion = [done = std::move(pit->second.done),
                    st = status]() mutable { done(std::move(st)); };
      put_waiters_.erase(pit);
    } else {
      return false;  // already completed (or never existed)
    }
  }
  if (timer != 0 && wheel_ != nullptr) wheel_->Cancel(timer);
  completion();
  return true;
}

std::size_t LocalChannel::CancelWaitersOf(std::uint32_t origin,
                                          const Status& status) {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    for (auto it = get_waiters_.begin(); it != get_waiters_.end();) {
      if (it->second.origin != origin) {
        ++it;
        continue;
      }
      if (it->second.timer != 0) wakeups.timers.push_back(it->second.timer);
      wakeups.completions.push_back(
          [done = std::move(it->second.done), st = status]() mutable {
            done(Result<ItemView>(std::move(st)));
          });
      it = get_waiters_.erase(it);
    }
    for (auto it = put_waiters_.begin(); it != put_waiters_.end();) {
      if (it->second.origin != origin) {
        ++it;
        continue;
      }
      if (it->second.timer != 0) wakeups.timers.push_back(it->second.timer);
      wakeups.completions.push_back(
          [done = std::move(it->second.done), st = status]() mutable {
            done(std::move(st));
          });
      it = put_waiters_.erase(it);
    }
  }
  const std::size_t cancelled = wakeups.completions.size();
  Finish(std::move(wakeups));
  return cancelled;
}

void LocalChannel::EvaluateWaitersLocked(Wakeups& out) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Parked puts first: admission is what can satisfy parked gets,
    // and the reclaim an admission triggers can admit further puts
    // (hence the fixpoint loop).
    for (auto it = put_waiters_.begin(); it != put_waiters_.end();) {
      auto tried = TryPutLocked(it->second.ts, it->second.payload, out);
      if (!tried.has_value()) {
        ++it;
        continue;
      }
      if (it->second.timer != 0) out.timers.push_back(it->second.timer);
      out.completions.push_back(
          [done = std::move(it->second.done),
           st = std::move(*tried)]() mutable { done(std::move(st)); });
      it = put_waiters_.erase(it);
      progress = true;
    }
    for (auto it = get_waiters_.begin(); it != get_waiters_.end();) {
      auto tried = TryGetLocked(it->second.slot, it->second.spec);
      if (!tried.has_value()) {
        ++it;
        continue;
      }
      if (tried->ok() && metrics_.gets != nullptr) metrics_.gets->Add();
      if (it->second.timer != 0) out.timers.push_back(it->second.timer);
      out.completions.push_back(
          [done = std::move(it->second.done),
           item = std::move(*tried)]() mutable { done(std::move(item)); });
      it = get_waiters_.erase(it);
      progress = true;
    }
  }
}

Status LocalChannel::SetFilter(std::uint32_t slot, const ItemFilter& filter) {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    if (!CanInput(it->second.mode)) {
      return PermissionDeniedError("filters apply to input connections");
    }
    if (filter.stride < 1) return InvalidArgumentError("stride must be >= 1");
    if (filter.stride > 1 && (filter.phase < 0 || filter.phase >= filter.stride)) {
      return InvalidArgumentError("phase must be in [0, stride)");
    }
    it->second.filter = filter;
    // Narrowing the filter can drop this connection's claim on items
    // it previously held up.
    ReclaimLocked(wakeups);
    EvaluateWaitersLocked(wakeups);
  }
  Finish(std::move(wakeups));
  return OkStatus();
}

Status LocalChannel::Consume(std::uint32_t slot, Timestamp ts) {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    ConnState& conn = it->second;
    if (!CanInput(conn.mode)) {
      return PermissionDeniedError("connection is output-only");
    }
    conn.consumed.insert(ts);
    conn.Compact();
    auto item_it = items_.find(ts);
    if (item_it != items_.end() &&
        IsGarbageLocked(ts, item_it->second.size())) {
      ReclaimLocked(wakeups);
      EvaluateWaitersLocked(wakeups);
    }
  }
  Finish(std::move(wakeups));
  return OkStatus();
}

Status LocalChannel::ConsumeUntil(std::uint32_t slot, Timestamp ts) {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    ConnState& conn = it->second;
    if (!CanInput(conn.mode)) {
      return PermissionDeniedError("connection is output-only");
    }
    if (conn.watermark == kInvalidTimestamp || ts > conn.watermark) {
      conn.watermark = ts;
      // Drop now-covered sparse entries.
      conn.consumed.erase(conn.consumed.begin(),
                          conn.consumed.upper_bound(ts));
      conn.Compact();
    }
    ReclaimLocked(wakeups);
    EvaluateWaitersLocked(wakeups);
  }
  Finish(std::move(wakeups));
  return OkStatus();
}

void LocalChannel::set_gc_handler(GcHandler handler) {
  ds::MutexLock lock(mu_);
  gc_handler_ = std::move(handler);
}

void LocalChannel::ReclaimLocked(Wakeups& out) {
  for (auto it = items_.begin(); it != items_.end();) {
    if (IsGarbageLocked(it->first, it->second.size())) {
      pending_notices_.push_back(GcNotice{/*container_bits=*/0,
                                          /*is_queue=*/false, it->first,
                                          it->second.size()});
      out.freed.emplace_back(it->first, std::move(it->second));
      max_reclaimed_ = std::max(max_reclaimed_, it->first);
      ++total_reclaimed_;
      if (metrics_.reclaimed != nullptr) metrics_.reclaimed->Add();
      if (metrics_.reclaim_lag_us != nullptr) {
        auto born = put_times_.find(it->first);
        if (born != put_times_.end()) {
          // Histogram::Observe is lock-free; safe under mu_.
          metrics_.reclaim_lag_us->Observe(ToMicros(Now() - born->second));
          put_times_.erase(born);
        }
      }
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
  if (!out.freed.empty() && !out.handler) out.handler = gc_handler_;
}

void LocalChannel::Finish(Wakeups wakeups) {
  for (TimerWheel::TimerId timer : wakeups.timers) {
    if (wheel_ != nullptr) wheel_->Cancel(timer);
  }
  if (wakeups.handler) {
    for (auto& [ts, payload] : wakeups.freed) wakeups.handler(ts, payload);
  }
  for (auto& completion : wakeups.completions) completion();
}

std::vector<GcNotice> LocalChannel::Sweep(std::uint64_t channel_bits) {
  Wakeups wakeups;
  std::vector<GcNotice> notices;
  {
    ds::MutexLock lock(mu_);
    ReclaimLocked(wakeups);
    notices = std::move(pending_notices_);
    pending_notices_.clear();
    EvaluateWaitersLocked(wakeups);
  }
  for (auto& notice : notices) notice.container_bits = channel_bits;
  Finish(std::move(wakeups));
  return notices;
}

std::size_t LocalChannel::live_items() const {
  ds::MutexLock lock(mu_);
  return items_.size();
}

std::size_t LocalChannel::input_connections() const {
  ds::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [slot, conn] : conns_) {
    if (CanInput(conn.mode)) ++n;
  }
  return n;
}

Timestamp LocalChannel::newest_timestamp() const {
  ds::MutexLock lock(mu_);
  return items_.empty() ? kInvalidTimestamp : items_.rbegin()->first;
}

std::size_t LocalChannel::parked_get_waiters() const {
  ds::MutexLock lock(mu_);
  return get_waiters_.size();
}

std::size_t LocalChannel::parked_put_waiters() const {
  ds::MutexLock lock(mu_);
  return put_waiters_.size();
}

}  // namespace dstampede::core
