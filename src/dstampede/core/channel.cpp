#include "dstampede/core/channel.hpp"

#include <algorithm>

namespace dstampede::core {

void LocalChannel::ConnState::Compact() {
  // Fold contiguous consumed timestamps into the watermark. Only exact
  // contiguity can be folded: a gap may later be filled by a put.
  while (!consumed.empty() &&
         watermark != kInvalidTimestamp &&
         *consumed.begin() == watermark + 1) {
    watermark = *consumed.begin();
    consumed.erase(consumed.begin());
  }
}

std::uint32_t LocalChannel::Attach(ConnMode mode, std::string label) {
  ds::MutexLock lock(mu_);
  const std::uint32_t slot = next_slot_++;
  ConnState state;
  state.mode = mode;
  state.label = std::move(label);
  conns_.emplace(slot, std::move(state));
  return slot;
}

Status LocalChannel::Detach(std::uint32_t slot) {
  std::vector<std::pair<Timestamp, SharedBuffer>> freed;
  GcHandler handler;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    conns_.erase(it);
    // Items only the departed connection was holding up become garbage.
    ReclaimLocked(freed);
    handler = gc_handler_;
  }
  FinishReclaim(std::move(freed), std::move(handler));
  return OkStatus();
}

bool LocalChannel::IsGarbageLocked(Timestamp ts, std::size_t bytes) const {
  bool any_input = false;
  for (const auto& [slot, conn] : conns_) {
    if (!CanInput(conn.mode)) continue;
    any_input = true;
    if (conn.Wants(ts, bytes)) return false;
  }
  // With no input connection attached nothing is garbage: a consumer
  // may join later (dynamic start/stop), so items are retained.
  return any_input;
}

void LocalChannel::Close() {
  {
    ds::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

Status LocalChannel::Put(Timestamp ts, SharedBuffer payload,
                         Deadline deadline) {
  std::vector<std::pair<Timestamp, SharedBuffer>> freed;
  GcHandler handler;
  {
    ds::MutexLock lock(mu_);
    if (ts == kInvalidTimestamp) return InvalidArgumentError("bad timestamp");
    for (;;) {
      if (closed_) return CancelledError("channel closed");
      if (max_reclaimed_ != kInvalidTimestamp && ts <= max_reclaimed_) {
        return GarbageCollectedError("timestamp below reclaim horizon");
      }
      if (items_.count(ts) > 0) {
        return AlreadyExistsError("timestamp already in channel");
      }
      if (attr_.capacity_items == 0 || items_.size() < attr_.capacity_items) {
        break;
      }
      if (!cv_.WaitUntil(mu_, deadline) && attr_.capacity_items != 0 &&
          items_.size() >= attr_.capacity_items) {
        return TimeoutError("channel at capacity");
      }
    }
    const std::size_t bytes = payload.size();
    items_.emplace(ts, std::move(payload));
    ++total_puts_;
    // An item can be born garbage: every attached input has already
    // consumed past it (or filters it out). Reclaim it on the spot so
    // its GC handler fires promptly instead of on the next sweep.
    if (IsGarbageLocked(ts, bytes)) {
      ReclaimLocked(freed);
      handler = gc_handler_;
    }
  }
  FinishReclaim(std::move(freed), std::move(handler));
  return OkStatus();
}

Result<ItemView> LocalChannel::SelectLocked(const ConnState& conn,
                                            GetSpec spec) const {
  switch (spec.kind) {
    case GetSpec::Kind::kExact: {
      auto it = items_.find(spec.ts);
      if (it == items_.end()) return NotFoundError("ts not present");
      if (!conn.filter.Matches(it->first, it->second.size())) {
        // Present but size-filtered: invisible to this connection.
        return NotFoundError("item filtered out");
      }
      return ItemView{it->first, it->second};
    }
    case GetSpec::Kind::kOldest: {
      for (const auto& [ts, payload] : items_) {
        if (conn.Wants(ts, payload.size())) return ItemView{ts, payload};
      }
      return NotFoundError("no unconsumed item");
    }
    case GetSpec::Kind::kNewest: {
      for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
        if (conn.Wants(it->first, it->second.size())) {
          return ItemView{it->first, it->second};
        }
      }
      return NotFoundError("no unconsumed item");
    }
    case GetSpec::Kind::kNextAfter: {
      for (auto it = items_.upper_bound(spec.ts); it != items_.end(); ++it) {
        if (conn.Wants(it->first, it->second.size())) {
          return ItemView{it->first, it->second};
        }
      }
      return NotFoundError("no item after ts");
    }
  }
  return InternalError("bad GetSpec");
}

Status LocalChannel::CheckGetPreconditionsLocked(const ConnState& conn,
                                                 GetSpec spec) const {
  if (!CanInput(conn.mode)) {
    return PermissionDeniedError("connection is output-only");
  }
  if (spec.kind == GetSpec::Kind::kExact) {
    if (!conn.filter.MatchesTs(spec.ts)) {
      return InvalidArgumentError("timestamp excluded by connection filter");
    }
    if (conn.HasConsumed(spec.ts)) {
      return GarbageCollectedError("timestamp consumed by this connection");
    }
    if (items_.count(spec.ts) == 0 && max_reclaimed_ != kInvalidTimestamp &&
        spec.ts <= max_reclaimed_) {
      return GarbageCollectedError("timestamp below reclaim horizon");
    }
  }
  return OkStatus();
}

Result<ItemView> LocalChannel::Get(std::uint32_t slot, GetSpec spec,
                                   Deadline deadline) {
  ds::MutexLock lock(mu_);
  for (;;) {
    if (closed_) return CancelledError("channel closed");
    auto conn_it = conns_.find(slot);
    if (conn_it == conns_.end()) return NotFoundError("connection");
    const ConnState& conn = conn_it->second;
    DS_RETURN_IF_ERROR(CheckGetPreconditionsLocked(conn, spec));
    Result<ItemView> found = SelectLocked(conn, spec);
    if (found.ok()) return found;
    // Not available yet: wait for a put (or reclaim that turns the
    // wait into an error).
    if (!cv_.WaitUntil(mu_, deadline)) return TimeoutError("channel get");
  }
}

Status LocalChannel::SetFilter(std::uint32_t slot, const ItemFilter& filter) {
  std::vector<std::pair<Timestamp, SharedBuffer>> freed;
  GcHandler handler;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    if (!CanInput(it->second.mode)) {
      return PermissionDeniedError("filters apply to input connections");
    }
    if (filter.stride < 1) return InvalidArgumentError("stride must be >= 1");
    if (filter.stride > 1 && (filter.phase < 0 || filter.phase >= filter.stride)) {
      return InvalidArgumentError("phase must be in [0, stride)");
    }
    it->second.filter = filter;
    // Narrowing the filter can drop this connection's claim on items
    // it previously held up.
    ReclaimLocked(freed);
    handler = gc_handler_;
  }
  FinishReclaim(std::move(freed), std::move(handler));
  return OkStatus();
}

Status LocalChannel::Consume(std::uint32_t slot, Timestamp ts) {
  std::vector<std::pair<Timestamp, SharedBuffer>> freed;
  GcHandler handler;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    ConnState& conn = it->second;
    if (!CanInput(conn.mode)) {
      return PermissionDeniedError("connection is output-only");
    }
    conn.consumed.insert(ts);
    conn.Compact();
    auto item_it = items_.find(ts);
    if (item_it != items_.end() &&
        IsGarbageLocked(ts, item_it->second.size())) {
      ReclaimLocked(freed);
      handler = gc_handler_;
    }
  }
  FinishReclaim(std::move(freed), std::move(handler));
  return OkStatus();
}

Status LocalChannel::ConsumeUntil(std::uint32_t slot, Timestamp ts) {
  std::vector<std::pair<Timestamp, SharedBuffer>> freed;
  GcHandler handler;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    ConnState& conn = it->second;
    if (!CanInput(conn.mode)) {
      return PermissionDeniedError("connection is output-only");
    }
    if (conn.watermark == kInvalidTimestamp || ts > conn.watermark) {
      conn.watermark = ts;
      // Drop now-covered sparse entries.
      conn.consumed.erase(conn.consumed.begin(),
                          conn.consumed.upper_bound(ts));
      conn.Compact();
    }
    ReclaimLocked(freed);
    handler = gc_handler_;
  }
  FinishReclaim(std::move(freed), std::move(handler));
  return OkStatus();
}

void LocalChannel::set_gc_handler(GcHandler handler) {
  ds::MutexLock lock(mu_);
  gc_handler_ = std::move(handler);
}

void LocalChannel::ReclaimLocked(
    std::vector<std::pair<Timestamp, SharedBuffer>>& freed) {
  for (auto it = items_.begin(); it != items_.end();) {
    if (IsGarbageLocked(it->first, it->second.size())) {
      pending_notices_.push_back(GcNotice{/*container_bits=*/0,
                                          /*is_queue=*/false, it->first,
                                          it->second.size()});
      freed.emplace_back(it->first, std::move(it->second));
      max_reclaimed_ = std::max(max_reclaimed_, it->first);
      ++total_reclaimed_;
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
}

void LocalChannel::FinishReclaim(
    std::vector<std::pair<Timestamp, SharedBuffer>> freed, GcHandler handler) {
  cv_.NotifyAll();
  if (handler) {
    for (auto& [ts, payload] : freed) handler(ts, payload);
  }
}

std::vector<GcNotice> LocalChannel::Sweep(std::uint64_t channel_bits) {
  std::vector<std::pair<Timestamp, SharedBuffer>> freed;
  std::vector<GcNotice> notices;
  GcHandler handler_copy;
  {
    ds::MutexLock lock(mu_);
    ReclaimLocked(freed);
    notices = std::move(pending_notices_);
    pending_notices_.clear();
    handler_copy = gc_handler_;
  }
  for (auto& notice : notices) notice.container_bits = channel_bits;
  FinishReclaim(std::move(freed), std::move(handler_copy));
  return notices;
}

std::size_t LocalChannel::live_items() const {
  ds::MutexLock lock(mu_);
  return items_.size();
}

std::size_t LocalChannel::input_connections() const {
  ds::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [slot, conn] : conns_) {
    if (CanInput(conn.mode)) ++n;
  }
  return n;
}

Timestamp LocalChannel::newest_timestamp() const {
  ds::MutexLock lock(mu_);
  return items_.empty() ? kInvalidTimestamp : items_.rbegin()->first;
}

}  // namespace dstampede::core
