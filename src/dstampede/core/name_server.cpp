#include "dstampede/core/name_server.hpp"

namespace dstampede::core {

Status NameServer::Register(const NsEntry& entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry.name.empty()) return InvalidArgumentError("empty name");
    auto [it, inserted] = entries_.emplace(entry.name, entry);
    (void)it;
    if (!inserted) return AlreadyExistsError("name registered: " + entry.name);
  }
  cv_.notify_all();
  return OkStatus();
}

Status NameServer::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(name) == 0) return NotFoundError("name: " + name);
  return OkStatus();
}

Result<NsEntry> NameServer::Lookup(const std::string& name,
                                   Deadline deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(name);
    if (it != entries_.end()) return it->second;
    if (deadline.infinite()) {
      cv_.wait(lock);
    } else {
      if (deadline.expired()) return NotFoundError("name: " + name);
      cv_.wait_until(lock, deadline.when());
    }
  }
}

std::vector<NsEntry> NameServer::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NsEntry> out;
  for (const auto& [name, entry] : entries_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(entry);
  }
  return out;
}

std::size_t NameServer::PurgeOwner(AsId owner) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t purged = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner_as == owner) {
      it = entries_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

std::size_t NameServer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace dstampede::core
