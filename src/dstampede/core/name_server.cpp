#include "dstampede/core/name_server.hpp"

#include <algorithm>

namespace dstampede::core {

Status NameServer::Register(const NsEntry& entry) {
  {
    ds::MutexLock lock(mu_);
    if (entry.name.empty()) return InvalidArgumentError("empty name");
    auto [it, inserted] = entries_.emplace(entry.name, entry);
    (void)it;
    if (!inserted) return AlreadyExistsError("name registered: " + entry.name);
  }
  cv_.NotifyAll();
  return OkStatus();
}

Status NameServer::Unregister(const std::string& name) {
  ds::MutexLock lock(mu_);
  if (entries_.erase(name) == 0) return NotFoundError("name: " + name);
  return OkStatus();
}

Result<NsEntry> NameServer::Lookup(const std::string& name,
                                   Deadline deadline) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  ds::MutexLock lock(mu_);
  for (;;) {
    auto it = entries_.find(name);
    if (it != entries_.end()) return it->second;
    if (!deadline.infinite() && deadline.expired()) {
      return NotFoundError("name: " + name);
    }
    cv_.WaitUntil(mu_, deadline);
  }
}

std::vector<NsEntry> NameServer::List(const std::string& prefix) const {
  ds::MutexLock lock(mu_);
  std::vector<NsEntry> out;
  for (const auto& [name, entry] : entries_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(entry);
  }
  return out;
}

std::size_t NameServer::PurgeOwner(AsId owner) {
  ds::MutexLock lock(mu_);
  std::size_t purged = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner_as == owner) {
      it = entries_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  purged_.fetch_add(purged, std::memory_order_relaxed);
  return purged;
}

std::size_t NameServer::size() const {
  ds::MutexLock lock(mu_);
  return entries_.size();
}

Status NameServer::PutSession(const SessionRecord& record) {
  if (record.session_id == 0) return InvalidArgumentError("session id 0");
  ds::MutexLock lock(mu_);
  auto [it, inserted] = sessions_.emplace(record.session_id, record);
  if (!inserted) {
    // Upsert, but never let a stale mirror rewind the ticket high-water
    // mark — the dedup guarantee depends on it being monotone.
    std::uint64_t ticket =
        std::max(it->second.last_executed_ticket, record.last_executed_ticket);
    it->second = record;
    it->second.last_executed_ticket = ticket;
  }
  return OkStatus();
}

Result<SessionRecord> NameServer::GetSession(std::uint64_t session_id) const {
  ds::MutexLock lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end())
    return NotFoundError("session: " + std::to_string(session_id));
  return it->second;
}

Status NameServer::DropSession(std::uint64_t session_id) {
  ds::MutexLock lock(mu_);
  if (sessions_.erase(session_id) == 0)
    return NotFoundError("session: " + std::to_string(session_id));
  return OkStatus();
}

Status NameServer::TickSession(std::uint64_t session_id,
                               std::uint64_t ticket) {
  ds::MutexLock lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end())
    return NotFoundError("session: " + std::to_string(session_id));
  if (ticket > it->second.last_executed_ticket)
    it->second.last_executed_ticket = ticket;
  return OkStatus();
}

std::size_t NameServer::session_count() const {
  ds::MutexLock lock(mu_);
  return sessions_.size();
}

Status NameServer::Apply(const NsMutation& m) {
  switch (m.kind) {
    case NsMutation::Kind::kRegister:
      return Register(m.entry);
    case NsMutation::Kind::kUnregister:
      return Unregister(m.name);
    case NsMutation::Kind::kPurgeOwner:
      PurgeOwner(m.owner);
      return OkStatus();
    case NsMutation::Kind::kPutSession:
      return PutSession(m.session);
    case NsMutation::Kind::kDropSession:
      return DropSession(m.session_id);
    case NsMutation::Kind::kTickSession:
      return TickSession(m.session_id, m.ticket);
  }
  return InternalError("bad NsMutation kind");
}

}  // namespace dstampede::core
