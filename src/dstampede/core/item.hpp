// Core value types of space-time memory: items, get specifications,
// connection modes, container attributes, name-server entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/metrics.hpp"

namespace dstampede::core {

// Registry instruments an address space hands to every container it
// creates (set_metrics). All pointers are stable for the container's
// lifetime; null pointers (standalone containers in tests/benches)
// skip instrumentation entirely — including the clock read that feeds
// the reclaim-lag histogram, so uninstrumented hot paths pay nothing.
struct StmMetrics {
  metrics::Counter* puts = nullptr;
  metrics::Counter* gets = nullptr;
  metrics::Counter* reclaimed = nullptr;
  metrics::Histogram* reclaim_lag_us = nullptr;  // put -> reclaim, microseconds
};

// What a get() returns: the timestamp the item was put with and a
// shared, immutable view of its payload.
struct ItemView {
  Timestamp timestamp = kInvalidTimestamp;
  SharedBuffer payload;
};

// A thread connects to a channel/queue for input and/or output
// (paper §3.1). The mode is checked on every operation.
enum class ConnMode : std::uint8_t {
  kInput = 1,
  kOutput = 2,
  kInputOutput = 3,
};
inline bool CanInput(ConnMode m) {
  return m == ConnMode::kInput || m == ConnMode::kInputOutput;
}
inline bool CanOutput(ConnMode m) {
  return m == ConnMode::kOutput || m == ConnMode::kInputOutput;
}

// How a get() selects an item. Channels allow random access by
// timestamp; the extra selectors express the common stream idioms.
struct GetSpec {
  enum class Kind : std::uint8_t {
    kExact = 0,     // the item with exactly this timestamp (waits for it)
    kOldest = 1,    // lowest-timestamp item this connection hasn't consumed
    kNewest = 2,    // highest-timestamp item this connection hasn't consumed
    kNextAfter = 3, // lowest timestamp strictly greater than ts
  };
  Kind kind = Kind::kExact;
  Timestamp ts = 0;

  static GetSpec Exact(Timestamp t) { return {Kind::kExact, t}; }
  static GetSpec Oldest() { return {Kind::kOldest, 0}; }
  static GetSpec Newest() { return {Kind::kNewest, 0}; }
  static GetSpec NextAfter(Timestamp t) { return {Kind::kNextAfter, t}; }
};

// User-defined filtering on an input connection — the "selective
// attention" extension the paper lists as future work (§6). A filtered
// connection only sees items matching the filter; everything else is
// invisible to its gets AND carries no GC claim from this connection
// (an item the connection can never see must not be kept alive for it).
//
// The filter is declarative so it can cross the wire to a container's
// owner address space (code cannot).
struct ItemFilter {
  // Timestamp must satisfy ts % stride == phase (stride >= 1).
  Timestamp stride = 1;
  Timestamp phase = 0;
  // Inclusive timestamp window.
  Timestamp ts_min = INT64_MIN;
  Timestamp ts_max = INT64_MAX;
  // Payload size bounds (bytes, inclusive).
  std::uint64_t min_bytes = 0;
  std::uint64_t max_bytes = UINT64_MAX;

  // Timestamp-only predicate: decidable before an item exists, used to
  // reject exact gets for timestamps the filter can never show.
  bool MatchesTs(Timestamp ts) const {
    if (stride > 1) {
      Timestamp mod = ts % stride;
      if (mod < 0) mod += stride;
      if (mod != phase) return false;
    }
    return ts >= ts_min && ts <= ts_max;
  }

  bool Matches(Timestamp ts, std::size_t payload_bytes) const {
    return MatchesTs(ts) && payload_bytes >= min_bytes &&
           payload_bytes <= max_bytes;
  }

  bool IsPassAll() const {
    return stride <= 1 && ts_min == INT64_MIN && ts_max == INT64_MAX &&
           min_bytes == 0 && max_bytes == UINT64_MAX;
  }
};

struct ChannelAttr {
  // 0 = unbounded. Otherwise puts block while the channel holds this
  // many live (unreclaimed) items — back-pressure for pipelines.
  std::size_t capacity_items = 0;
  std::string debug_name;
};

struct QueueAttr {
  std::size_t capacity_items = 0;  // 0 = unbounded
  std::string debug_name;
};

// What the name server stores (paper §3.1: "names of channels and
// queues, as well as their intended use").
struct NsEntry {
  enum class Kind : std::uint8_t { kChannel = 0, kQueue = 1, kOther = 2 };
  std::string name;
  Kind kind = Kind::kOther;
  std::uint64_t id_bits = 0;  // ChannelId/QueueId bits
  std::string meta;           // free-form "intended use" description
  // Which address space registered the entry. Stamped by the runtime on
  // registration when the caller leaves it invalid (clients do); the
  // failure-recovery path purges every entry owned by a dead space.
  AsId owner_as = kInvalidAsId;
};

// Durable, replayable record of an end-device session, mirrored by the
// surrogate into the name server's session registry so that *any*
// listener in the cluster can rehydrate the session after a dropped
// connection or the death of the surrogate's host address space
// (paper §3.2: tentacles "are naturally mobile and may need dynamic
// reconfiguration").
struct SessionAttachment {
  std::uint64_t container_bits = 0;  // channel or queue id bits
  bool is_queue = false;
  std::uint8_t mode = 0;   // ConnMode bits as sent on the wire
  std::uint32_t slot = 0;  // surrogate-local slot the client holds
  std::string label;       // debug aid
};

struct SessionGcInterest {
  std::uint64_t container_bits = 0;
  bool is_queue = false;
};

struct SessionRecord {
  std::uint64_t session_id = 0;
  std::uint32_t client_kind = 0;  // ClientKind bits from the Hello
  std::string client_name;
  AsId host_as = kInvalidAsId;  // AS currently hosting the surrogate
  // Highest per-call ticket (client request id) whose effects are
  // durably applied. A replayed ticket <= this is acked, not re-run.
  std::uint64_t last_executed_ticket = 0;
  std::vector<SessionAttachment> attachments;
  std::vector<SessionGcInterest> gc_interests;
  std::vector<std::string> registered_names;
  // Exactly-once redo log for destructive reads: the pre-trailer reply
  // bytes of the last remote queue Get, journaled *before* the reply
  // is sent to the device. If both the reply and the surrogate's host
  // die, the rehydrated surrogate answers the client's replay of
  // `redo_ticket` from this payload instead of dequeuing a second
  // item. Empty payload (ticket 0) = nothing journaled.
  std::uint64_t redo_ticket = 0;
  Buffer redo_payload;
};

// Reclamation notice produced by the garbage collector and delivered
// to GC handlers (and forwarded to end devices by their surrogates).
struct GcNotice {
  std::uint64_t container_bits = 0;  // channel or queue id bits
  bool is_queue = false;
  Timestamp timestamp = kInvalidTimestamp;
  std::size_t payload_size = 0;
};

}  // namespace dstampede::core
