#include "dstampede/core/federation.hpp"

#include <algorithm>

namespace dstampede::core {

Result<std::unique_ptr<Federation>> Federation::Create(
    const Options& options) {
  if (options.clusters.empty()) {
    return InvalidArgumentError("federation needs at least one cluster");
  }
  for (const ClusterSpec& spec : options.clusters) {
    if (spec.num_address_spaces == 0 ||
        spec.num_address_spaces > options.as_id_stride) {
      return InvalidArgumentError("cluster size must fit the AsId stride");
    }
  }

  auto fed = std::unique_ptr<Federation>(new Federation());
  fed->options_ = options;
  const AsId global_ns = static_cast<AsId>(0);  // cluster 0, first AS

  // The NameServer replica set lives in cluster 0 (clamped to its
  // size); every other cluster gets the list verbatim so its spaces
  // fail over across it.
  const std::size_t replica_count =
      std::min(std::max<std::size_t>(options.ns_replicas, 1),
               options.clusters.front().num_address_spaces);
  for (std::size_t r = 0; r < replica_count; ++r) {
    fed->ns_replica_ids_.push_back(
        static_cast<AsId>(static_cast<std::uint32_t>(r)));
  }

  for (std::size_t i = 0; i < options.clusters.size(); ++i) {
    const ClusterSpec& spec = options.clusters[i];
    Runtime::Options rt_opts;
    rt_opts.num_address_spaces = spec.num_address_spaces;
    rt_opts.dispatcher_threads = spec.dispatcher_threads;
    rt_opts.gc_interval = spec.gc_interval;
    rt_opts.shm_fastpath = spec.shm_fastpath;
    rt_opts.first_as_id =
        static_cast<std::uint32_t>(i) * options.as_id_stride;
    rt_opts.host_name_server = (i == 0);
    rt_opts.name_server_as = global_ns;
    if (i == 0) {
      rt_opts.ns_replicas = replica_count;
      rt_opts.ns_lease = options.ns_lease;
      rt_opts.ns_heartbeat = options.ns_heartbeat;
    } else if (replica_count > 1) {
      rt_opts.ns_replica_ids = fed->ns_replica_ids_;
    }
    rt_opts.clf_max_retransmits = options.clf_max_retransmits;
    rt_opts.peer_keepalive_interval = options.peer_keepalive_interval;
    rt_opts.peer_timeout = options.peer_timeout;
    rt_opts.internal_rpc_deadline = options.internal_rpc_deadline;
    DS_ASSIGN_OR_RETURN(auto runtime, Runtime::Create(rt_opts));
    fed->clusters_.push_back(std::move(runtime));
  }
  fed->down_.resize(fed->clusters_.size());

  // Cross-cluster mesh: every AS of every cluster learns every AS of
  // every other cluster (intra-cluster wiring was done by Runtime).
  for (std::size_t a = 0; a < fed->clusters_.size(); ++a) {
    for (std::size_t b = a + 1; b < fed->clusters_.size(); ++b) {
      Runtime& ra = *fed->clusters_[a];
      Runtime& rb = *fed->clusters_[b];
      for (std::size_t i = 0; i < ra.size(); ++i) {
        for (std::size_t j = 0; j < rb.size(); ++j) {
          ra.as(i).AddPeer(rb.as(j).id(), rb.as(j).clf_addr());
          rb.as(j).AddPeer(ra.as(i).id(), ra.as(i).clf_addr());
        }
      }
    }
  }

  // Edge fast-fail: every address space reports dead peers to the
  // federation so whole-cluster outages are visible (IsClusterDown),
  // and revived peers (fresh CLF incarnations) so a recovered cluster
  // is not shunned forever. The raw pointer is safe: the federation
  // owns the runtimes, and Shutdown() stops their failure detectors
  // before members die.
  Federation* raw = fed.get();
  for (auto& cluster : fed->clusters_) {
    for (std::size_t i = 0; i < cluster->size(); ++i) {
      cluster->as(i).AddPeerDownObserver(
          [raw](AsId dead) { raw->NotePeerDown(dead); });
      cluster->as(i).AddPeerUpObserver(
          [raw](AsId alive) { raw->NotePeerUp(alive); });
    }
  }
  return fed;
}

void Federation::NotePeerDown(AsId dead) {
  const std::uint32_t index = AsIndex(dead);
  const std::size_t cluster = index / options_.as_id_stride;
  ds::MutexLock lock(down_mu_);
  if (cluster >= down_.size()) return;
  down_[cluster].insert(index % options_.as_id_stride);
}

void Federation::NotePeerUp(AsId alive) {
  const std::uint32_t index = AsIndex(alive);
  const std::size_t cluster = index / options_.as_id_stride;
  ds::MutexLock lock(down_mu_);
  if (cluster >= down_.size()) return;
  down_[cluster].erase(index % options_.as_id_stride);
}

bool Federation::IsClusterDown(std::size_t i) const {
  if (i >= clusters_.size()) return false;
  ds::MutexLock lock(down_mu_);
  return down_[i].size() >= clusters_[i]->size();
}

std::size_t Federation::DeadSpacesIn(std::size_t i) const {
  if (i >= clusters_.size()) return 0;
  ds::MutexLock lock(down_mu_);
  return down_[i].size();
}

bool Federation::IsNameServiceDown() const {
  if (clusters_.empty()) return true;
  ds::MutexLock lock(down_mu_);
  if (ns_replica_ids_.size() <= 1) {
    return down_[0].count(0) != 0;  // single NS: AS 0 of cluster 0
  }
  std::size_t dead = 0;
  for (AsId replica : ns_replica_ids_) {
    if (down_[0].count(AsIndex(replica) % options_.as_id_stride) != 0) {
      ++dead;
    }
  }
  // A majority must survive to elect a leader or renew the lease.
  const std::size_t quorum = ns_replica_ids_.size() / 2 + 1;
  return ns_replica_ids_.size() - dead < quorum;
}

Result<AddressSpace*> Federation::AddAddressSpace(std::size_t i) {
  if (i >= clusters_.size()) return InvalidArgumentError("no such cluster");
  DS_ASSIGN_OR_RETURN(AddressSpace * space, clusters_[i]->AddAddressSpace());
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    if (c == i) continue;  // Runtime wired its own cluster already
    Runtime& other = *clusters_[c];
    for (std::size_t j = 0; j < other.size(); ++j) {
      other.as(j).AddPeer(space->id(), space->clf_addr());
      space->AddPeer(other.as(j).id(), other.as(j).clf_addr());
    }
  }
  space->AddPeerDownObserver([this](AsId dead) { NotePeerDown(dead); });
  space->AddPeerUpObserver([this](AsId alive) { NotePeerUp(alive); });
  return space;
}

void Federation::Shutdown() {
  for (auto& cluster : clusters_) {
    if (cluster) cluster->Shutdown();
  }
}

}  // namespace dstampede::core
