// LocalChannel: the owner-side implementation of a D-Stampede channel.
//
// A channel is a system-wide container of time-sequenced items with
// random access by timestamp (paper §3.1). This class implements the
// storage, blocking get semantics, per-connection consume state and
// the reclamation rule; AddressSpace layers location transparency and
// the wire protocol on top.
//
// Reclamation rule (the heart of the paper's automatic distributed GC):
// an item is garbage once *every currently attached input connection*
// has consumed it — either individually or via a consume-until
// watermark. Reclaimed items are handed to the channel's GC handler.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/core/item.hpp"

namespace dstampede::core {

// Invoked (outside the channel lock) for every reclaimed item. This is
// the paper's user-defined GC handler (§3.1): applications free any
// user-space state associated with the item here.
using GcHandler = std::function<void(Timestamp, const SharedBuffer&)>;

class LocalChannel {
 public:
  explicit LocalChannel(ChannelAttr attr) : attr_(std::move(attr)) {}

  const ChannelAttr& attr() const { return attr_; }

  // --- connections ---------------------------------------------------
  // Returns the connection slot used for all subsequent calls.
  // `label` identifies the connector in stats/debugging (thread name,
  // surrogate id, remote AS).
  std::uint32_t Attach(ConnMode mode, std::string label);
  // Detaching recomputes garbage: items only the detached connection
  // was holding up become reclaimable.
  Status Detach(std::uint32_t slot);

  // --- I/O -------------------------------------------------------------
  // Fails with kAlreadyExists for a duplicate live timestamp and
  // kGarbageCollected for a timestamp at or below the reclaim horizon.
  // Blocks (up to deadline) while the channel is at capacity.
  Status Put(Timestamp ts, SharedBuffer payload, Deadline deadline);

  // Blocking get according to spec. kExact waits for the timestamp to
  // be produced; the selectors wait for any eligible item.
  Result<ItemView> Get(std::uint32_t slot, GetSpec spec, Deadline deadline);

  // Installs a declarative filter on an input connection ("selective
  // attention", §6 future work): the connection's gets only see
  // matching items, and non-matching items carry no GC claim from it.
  Status SetFilter(std::uint32_t slot, const ItemFilter& filter);

  // Marks one timestamp consumed by this connection.
  Status Consume(std::uint32_t slot, Timestamp ts);
  // Marks every timestamp <= ts consumed by this connection ("selective
  // attention": the connection declares it will never look back).
  Status ConsumeUntil(std::uint32_t slot, Timestamp ts);

  // --- garbage collection ---------------------------------------------
  void set_gc_handler(GcHandler handler);
  // Consume/ConsumeUntil/Detach reclaim newly-garbage items inline (so
  // back-pressured producers unblock immediately); Sweep additionally
  // re-scans everything and drains the accumulated notices for the GC
  // service to fan out. Handlers have already run for drained notices.
  std::vector<GcNotice> Sweep(std::uint64_t channel_bits);

  // Wakes every blocked waiter with kCancelled and fails subsequent
  // blocking calls; used when the owning address space shuts down.
  void Close();

  // --- introspection ---------------------------------------------------
  std::size_t live_items() const;
  std::size_t input_connections() const;
  Timestamp newest_timestamp() const;  // kInvalidTimestamp when empty
  std::uint64_t total_puts() const {
    ds::MutexLock lock(mu_);
    return total_puts_;
  }
  std::uint64_t total_reclaimed() const {
    ds::MutexLock lock(mu_);
    return total_reclaimed_;
  }

 private:
  struct ConnState {
    ConnMode mode;
    std::string label;
    ItemFilter filter;
    // Everything <= watermark is consumed; `consumed` holds sparse
    // timestamps above the watermark (compacted as it advances).
    Timestamp watermark = kInvalidTimestamp;
    std::set<Timestamp> consumed;

    bool HasConsumed(Timestamp ts) const {
      return (watermark != kInvalidTimestamp && ts <= watermark) ||
             consumed.count(ts) > 0;
    }
    // Whether this connection still wants the item: it must pass the
    // filter and not be consumed. Drives both get visibility and the
    // GC claim (one rule, so the two can never diverge).
    bool Wants(Timestamp ts, std::size_t bytes) const {
      return filter.Matches(ts, bytes) && !HasConsumed(ts);
    }
    void Compact();
  };

  bool IsGarbageLocked(Timestamp ts, std::size_t bytes) const
      DS_REQUIRES(mu_);
  Result<ItemView> SelectLocked(const ConnState& conn, GetSpec spec) const
      DS_REQUIRES(mu_);
  // True when a Get(spec) could never be satisfied without new puts.
  Status CheckGetPreconditionsLocked(const ConnState& conn, GetSpec spec) const
      DS_REQUIRES(mu_);
  // Removes garbage items (all of them, or only those <= up_to when
  // bounded), queues notices, collects freed payloads for the handler.
  void ReclaimLocked(std::vector<std::pair<Timestamp, SharedBuffer>>& freed)
      DS_REQUIRES(mu_);
  // Post-mutation tail shared by Consume/ConsumeUntil/Detach: runs the
  // GC handler outside the lock (a handler may call back into the
  // channel) and wakes waiters.
  void FinishReclaim(std::vector<std::pair<Timestamp, SharedBuffer>> freed,
                     GcHandler handler) DS_EXCLUDES(mu_);

  ChannelAttr attr_;
  mutable ds::Mutex mu_{"channel.mu"};
  ds::CondVar cv_;  // signalled on put/consume/reclaim/detach

  bool closed_ DS_GUARDED_BY(mu_) = false;
  std::map<Timestamp, SharedBuffer> items_ DS_GUARDED_BY(mu_);
  std::map<std::uint32_t, ConnState> conns_ DS_GUARDED_BY(mu_);
  std::uint32_t next_slot_ DS_GUARDED_BY(mu_) = 1;
  Timestamp max_reclaimed_ DS_GUARDED_BY(mu_) = kInvalidTimestamp;

  GcHandler gc_handler_ DS_GUARDED_BY(mu_);
  // Drained by Sweep.
  std::vector<GcNotice> pending_notices_ DS_GUARDED_BY(mu_);
  std::uint64_t total_puts_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t total_reclaimed_ DS_GUARDED_BY(mu_) = 0;
};

}  // namespace dstampede::core
