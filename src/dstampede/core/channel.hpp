// LocalChannel: the owner-side implementation of a D-Stampede channel.
//
// A channel is a system-wide container of time-sequenced items with
// random access by timestamp (paper §3.1). This class implements the
// storage, blocking get semantics, per-connection consume state and
// the reclamation rule; AddressSpace layers location transparency and
// the wire protocol on top.
//
// Blocking is event-driven: every would-block operation is expressed
// through the two-phase async API (try, else register a continuation
// waiter), and every state change re-evaluates the parked waiters and
// completes the ones it satisfied — outside the channel lock, on the
// thread that made the progress. The classic blocking Get/Put are thin
// wrappers that park the *caller's* thread on a SyncWaiter; no shared
// dispatcher thread ever parks inside the channel.
//
// Reclamation rule (the heart of the paper's automatic distributed GC):
// an item is garbage once *every currently attached input connection*
// has consumed it — either individually or via a consume-until
// watermark. Reclaimed items are handed to the channel's GC handler.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/waiter.hpp"
#include "dstampede/core/item.hpp"

namespace dstampede::core {

// Invoked (outside the channel lock) for every reclaimed item. This is
// the paper's user-defined GC handler (§3.1): applications free any
// user-space state associated with the item here.
using GcHandler = std::function<void(Timestamp, const SharedBuffer&)>;

// Continuations for the two-phase async container API. They run
// exactly once, with no container lock held, on whichever thread
// resolved the wait: the inline caller, a putter/consumer, the GC
// sweeper, the timer wheel, or a lifecycle path (close, peer death).
using GetCompletion = std::function<void(Result<ItemView>)>;
using PutCompletion = std::function<void(Status)>;

class LocalChannel {
 public:
  // `wheel` (optional, must outlive the channel) enforces deadlines of
  // parked async waiters. Without one, finite-deadline async waiters
  // only resolve through progress or an explicit CancelWaiter — the
  // sync wrappers are unaffected (they enforce their own deadline).
  explicit LocalChannel(ChannelAttr attr, TimerWheel* wheel = nullptr)
      : attr_(std::move(attr)), wheel_(wheel) {}

  const ChannelAttr& attr() const { return attr_; }

  // --- connections ---------------------------------------------------
  // Returns the connection slot used for all subsequent calls.
  // `label` identifies the connector in stats/debugging (thread name,
  // surrogate id, remote AS).
  std::uint32_t Attach(ConnMode mode, std::string label);
  // Detaching recomputes garbage: items only the detached connection
  // was holding up become reclaimable.
  Status Detach(std::uint32_t slot);

  // --- I/O -------------------------------------------------------------
  // Fails with kAlreadyExists for a duplicate live timestamp and
  // kGarbageCollected for a timestamp at or below the reclaim horizon.
  // Blocks (up to deadline) while the channel is at capacity.
  Status Put(Timestamp ts, SharedBuffer payload, Deadline deadline);

  // Blocking get according to spec. kExact waits for the timestamp to
  // be produced; the selectors wait for any eligible item.
  Result<ItemView> Get(std::uint32_t slot, GetSpec spec, Deadline deadline);

  // --- two-phase (try-else-register) API -------------------------------
  // Phase one runs under the lock: if the operation can complete (or
  // terminally fail) right now, `done` runs inline on this thread and
  // 0 is returned. Otherwise a waiter is registered and its id (> 0)
  // returned; `done` later runs exactly once on the completing thread.
  // `origin` tags the waiter for CancelWaitersOf (peer death).
  // `use_timer=false` skips the wheel for callers that enforce the
  // deadline themselves (the sync wrappers).
  std::uint64_t GetAsync(std::uint32_t slot, GetSpec spec, Deadline deadline,
                         GetCompletion done,
                         std::uint32_t origin = kNoWaiterOrigin,
                         bool use_timer = true);
  std::uint64_t PutAsync(Timestamp ts, SharedBuffer payload, Deadline deadline,
                         PutCompletion done,
                         std::uint32_t origin = kNoWaiterOrigin,
                         bool use_timer = true);
  // Completes a parked waiter with `status` (inline, on this thread).
  // Returns false when the waiter already completed — the caller lost
  // the race and the genuine completion stands.
  bool CancelWaiter(std::uint64_t waiter_id, const Status& status);
  // Completes every parked waiter tagged with `origin`; returns how
  // many. Used when the peer the reply would go to is dead.
  std::size_t CancelWaitersOf(std::uint32_t origin, const Status& status);

  // Installs a declarative filter on an input connection ("selective
  // attention", §6 future work): the connection's gets only see
  // matching items, and non-matching items carry no GC claim from it.
  Status SetFilter(std::uint32_t slot, const ItemFilter& filter);

  // Marks one timestamp consumed by this connection.
  Status Consume(std::uint32_t slot, Timestamp ts);
  // Marks every timestamp <= ts consumed by this connection ("selective
  // attention": the connection declares it will never look back).
  Status ConsumeUntil(std::uint32_t slot, Timestamp ts);

  // --- garbage collection ---------------------------------------------
  void set_gc_handler(GcHandler handler);
  // Consume/ConsumeUntil/Detach reclaim newly-garbage items inline (so
  // back-pressured producers unblock immediately); Sweep additionally
  // re-scans everything and drains the accumulated notices for the GC
  // service to fan out. Handlers have already run for drained notices.
  std::vector<GcNotice> Sweep(std::uint64_t channel_bits);

  // Completes every parked waiter with kCancelled and fails subsequent
  // blocking calls; used when the owning address space shuts down.
  void Close();

  // --- introspection ---------------------------------------------------
  std::size_t live_items() const;
  std::size_t input_connections() const;
  Timestamp newest_timestamp() const;  // kInvalidTimestamp when empty
  // Highest timestamp ever put, surviving GC reclamation (the
  // space-time frontier); kInvalidTimestamp before the first put.
  Timestamp timestamp_frontier() const {
    ds::MutexLock lock(mu_);
    return frontier_;
  }
  std::size_t parked_get_waiters() const;
  std::size_t parked_put_waiters() const;
  std::uint64_t total_puts() const {
    ds::MutexLock lock(mu_);
    return total_puts_;
  }
  std::uint64_t total_reclaimed() const {
    ds::MutexLock lock(mu_);
    return total_reclaimed_;
  }

  // Wires registry instruments (owner AS calls this once, before the
  // container is published). Also turns on reclaim-lag measurement:
  // puts stamp a birth time, reclaims observe the lag.
  void set_metrics(const StmMetrics& m) {
    ds::MutexLock lock(mu_);
    metrics_ = m;
  }

 private:
  struct ConnState {
    ConnMode mode;
    std::string label;
    ItemFilter filter;
    // Everything <= watermark is consumed; `consumed` holds sparse
    // timestamps above the watermark (compacted as it advances).
    Timestamp watermark = kInvalidTimestamp;
    std::set<Timestamp> consumed;

    bool HasConsumed(Timestamp ts) const {
      return (watermark != kInvalidTimestamp && ts <= watermark) ||
             consumed.count(ts) > 0;
    }
    // Whether this connection still wants the item: it must pass the
    // filter and not be consumed. Drives both get visibility and the
    // GC claim (one rule, so the two can never diverge).
    bool Wants(Timestamp ts, std::size_t bytes) const {
      return filter.Matches(ts, bytes) && !HasConsumed(ts);
    }
    void Compact();
  };

  // A blocked get staged as data instead of a parked thread (the
  // tuple-space pending-match-record move). Owned by get_waiters_;
  // completion-by-removal under mu_ is what makes delivery
  // exactly-once even with racing completers.
  struct GetWaiter {
    std::uint32_t slot;
    GetSpec spec;
    GetCompletion done;
    std::uint32_t origin;
    TimerWheel::TimerId timer = 0;
  };
  // A back-pressured put: the payload waits in the record, not in a
  // blocked thread's stack frame.
  struct PutWaiter {
    Timestamp ts;
    SharedBuffer payload;
    PutCompletion done;
    std::uint32_t origin;
    TimerWheel::TimerId timer = 0;
  };

  // Work discovered under mu_ that must run only after it is released:
  // reclaimed payloads for the GC handler, waiter completions, and
  // timer cancellations for waiters that completed early.
  struct Wakeups {
    std::vector<std::pair<Timestamp, SharedBuffer>> freed;
    GcHandler handler;
    std::vector<std::function<void()>> completions;
    std::vector<TimerWheel::TimerId> timers;
  };

  bool IsGarbageLocked(Timestamp ts, std::size_t bytes) const
      DS_REQUIRES(mu_);
  Result<ItemView> SelectLocked(const ConnState& conn, GetSpec spec) const
      DS_REQUIRES(mu_);
  // True when a Get(spec) could never be satisfied without new puts.
  Status CheckGetPreconditionsLocked(const ConnState& conn, GetSpec spec) const
      DS_REQUIRES(mu_);
  // Phase-one attempts. nullopt means "would block: park"; a value is
  // the operation's final result (success or terminal error).
  std::optional<Result<ItemView>> TryGetLocked(std::uint32_t slot,
                                               GetSpec spec) const
      DS_REQUIRES(mu_);
  std::optional<Status> TryPutLocked(Timestamp ts, SharedBuffer& payload,
                                     Wakeups& out) DS_REQUIRES(mu_);
  // Re-runs phase one for every parked waiter, to fixpoint: an admitted
  // put can satisfy parked gets, and the reclaim it triggers can admit
  // further puts. Completed waiters move into `out`.
  void EvaluateWaitersLocked(Wakeups& out) DS_REQUIRES(mu_);
  // Removes garbage items, queues notices, collects freed payloads
  // (and the handler to run on them) into `out`.
  void ReclaimLocked(Wakeups& out) DS_REQUIRES(mu_);
  // Post-mutation tail shared by every path: cancels obsolete timers,
  // runs the GC handler, then the waiter completions — all outside the
  // lock (handlers and completions may call back into the channel).
  void Finish(Wakeups wakeups) DS_EXCLUDES(mu_);

  ChannelAttr attr_;
  TimerWheel* const wheel_;
  mutable ds::Mutex mu_{"channel.mu"};

  bool closed_ DS_GUARDED_BY(mu_) = false;
  std::map<Timestamp, SharedBuffer> items_ DS_GUARDED_BY(mu_);
  std::map<std::uint32_t, ConnState> conns_ DS_GUARDED_BY(mu_);
  std::uint32_t next_slot_ DS_GUARDED_BY(mu_) = 1;
  Timestamp max_reclaimed_ DS_GUARDED_BY(mu_) = kInvalidTimestamp;

  // Waiter id order is registration order: the maps double as FIFO
  // queues, so back-pressured puts are admitted first-come-first-served.
  std::map<std::uint64_t, GetWaiter> get_waiters_ DS_GUARDED_BY(mu_);
  std::map<std::uint64_t, PutWaiter> put_waiters_ DS_GUARDED_BY(mu_);
  std::uint64_t next_waiter_id_ DS_GUARDED_BY(mu_) = 1;

  GcHandler gc_handler_ DS_GUARDED_BY(mu_);
  // Drained by Sweep.
  std::vector<GcNotice> pending_notices_ DS_GUARDED_BY(mu_);
  std::uint64_t total_puts_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t total_reclaimed_ DS_GUARDED_BY(mu_) = 0;

  // Observability (see StmMetrics). put_times_ shadows items_ with each
  // item's birth time; only maintained when metrics_.reclaim_lag_us is
  // wired, so uninstrumented channels skip the clock read per put.
  StmMetrics metrics_ DS_GUARDED_BY(mu_);
  std::map<Timestamp, TimePoint> put_times_ DS_GUARDED_BY(mu_);
  Timestamp frontier_ DS_GUARDED_BY(mu_) = kInvalidTimestamp;
};

}  // namespace dstampede::core
