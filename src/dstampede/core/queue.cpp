#include "dstampede/core/queue.hpp"

#include <algorithm>

namespace dstampede::core {

std::uint32_t LocalQueue::Attach(ConnMode mode, std::string label) {
  ds::MutexLock lock(mu_);
  const std::uint32_t slot = next_slot_++;
  conns_.emplace(slot, ConnState{mode, std::move(label), {}});
  return slot;
}

Status LocalQueue::Detach(std::uint32_t slot) {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    // Return unconsumed in-flight items to the queue head, in original
    // put order, so a departing worker loses no data.
    auto& in_flight = it->second.in_flight;
    std::sort(in_flight.begin(), in_flight.end(),
              [](const Entry& a, const Entry& b) { return a.order > b.order; });
    for (auto& entry : in_flight) {
      items_.push_front(std::move(entry));
    }
    conns_.erase(it);
    // Returned items can feed parked gets; gets parked on the departed
    // slot complete with kNotFound.
    EvaluateWaitersLocked(wakeups);
  }
  Finish(std::move(wakeups));
  return OkStatus();
}

void LocalQueue::Close() {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    closed_ = true;
    EvaluateWaitersLocked(wakeups);
  }
  Finish(std::move(wakeups));
}

std::optional<Status> LocalQueue::TryPutLocked(Timestamp ts,
                                               SharedBuffer& payload) {
  if (closed_) return CancelledError("queue closed");
  if (attr_.capacity_items != 0 && items_.size() >= attr_.capacity_items) {
    return std::nullopt;  // back-pressure: park
  }
  Entry entry{ts, std::move(payload), next_order_++};
  if (metrics_.reclaim_lag_us != nullptr) entry.put_at = Now();
  items_.push_back(std::move(entry));
  ++total_puts_;
  if (metrics_.puts != nullptr) metrics_.puts->Add();
  return OkStatus();
}

Status LocalQueue::Put(Timestamp ts, SharedBuffer payload, Deadline deadline) {
  SyncWaiter<Status> sync;
  const std::uint64_t id = PutAsync(
      ts, std::move(payload), deadline,
      [&sync](Status st) { sync.Complete(std::move(st)); }, kNoWaiterOrigin,
      /*use_timer=*/false);
  if (!sync.AwaitUntil(deadline) && id != 0) {
    CancelWaiter(id, TimeoutError("queue at capacity"));
  }
  return sync.TakeResult();
}

std::uint64_t LocalQueue::PutAsync(Timestamp ts, SharedBuffer payload,
                                   Deadline deadline, PutCompletion done,
                                   std::uint32_t origin, bool use_timer) {
  if (ts == kInvalidTimestamp) {
    done(InvalidArgumentError("bad timestamp"));
    return 0;
  }
  Wakeups wakeups;
  std::optional<Status> inline_result;
  std::uint64_t id = 0;
  {
    ds::MutexLock lock(mu_);
    inline_result = TryPutLocked(ts, payload);
    if (inline_result.has_value()) {
      // The new item can feed parked gets (whose pops can in turn
      // admit parked puts).
      if (inline_result->ok()) EvaluateWaitersLocked(wakeups);
    } else if (deadline.expired()) {
      inline_result = TimeoutError("queue at capacity");
    } else {
      id = next_waiter_id_++;
      PutWaiter waiter{ts, std::move(payload), std::move(done), origin, 0};
      if (use_timer && wheel_ != nullptr) {
        waiter.timer = wheel_->Schedule(deadline, [this, id] {
          CancelWaiter(id, TimeoutError("queue at capacity"));
        });
      }
      put_waiters_.emplace(id, std::move(waiter));
    }
  }
  Finish(std::move(wakeups));
  if (inline_result.has_value()) done(std::move(*inline_result));
  return id;
}

std::optional<Result<ItemView>> LocalQueue::TryGetLocked(std::uint32_t slot) {
  if (closed_) return Result<ItemView>(CancelledError("queue closed"));
  auto it = conns_.find(slot);
  if (it == conns_.end()) return Result<ItemView>(NotFoundError("connection"));
  if (!CanInput(it->second.mode)) {
    return Result<ItemView>(PermissionDeniedError("connection is output-only"));
  }
  if (items_.empty()) return std::nullopt;  // nothing to pop: park
  Entry entry = std::move(items_.front());
  items_.pop_front();
  ItemView view{entry.ts, entry.payload};
  it->second.in_flight.push_back(std::move(entry));
  if (metrics_.gets != nullptr) metrics_.gets->Add();
  return Result<ItemView>(std::move(view));
}

Result<ItemView> LocalQueue::Get(std::uint32_t slot, Deadline deadline) {
  SyncWaiter<Result<ItemView>> sync;
  const std::uint64_t id = GetAsync(
      slot, deadline,
      [&sync](Result<ItemView> item) { sync.Complete(std::move(item)); },
      kNoWaiterOrigin, /*use_timer=*/false);
  if (!sync.AwaitUntil(deadline) && id != 0) {
    CancelWaiter(id, TimeoutError("queue get"));
  }
  return sync.TakeResult();
}

std::uint64_t LocalQueue::GetAsync(std::uint32_t slot, Deadline deadline,
                                   GetCompletion done, std::uint32_t origin,
                                   bool use_timer) {
  Wakeups wakeups;
  std::optional<Result<ItemView>> inline_result;
  std::uint64_t id = 0;
  {
    ds::MutexLock lock(mu_);
    inline_result = TryGetLocked(slot);
    if (inline_result.has_value()) {
      // The pop freed capacity: a put may have been waiting on it.
      if (inline_result->ok()) EvaluateWaitersLocked(wakeups);
    } else if (deadline.expired()) {
      inline_result = Result<ItemView>(TimeoutError("queue get"));
    } else {
      id = next_waiter_id_++;
      GetWaiter waiter{slot, std::move(done), origin, 0};
      if (use_timer && wheel_ != nullptr) {
        waiter.timer = wheel_->Schedule(deadline, [this, id] {
          CancelWaiter(id, TimeoutError("queue get"));
        });
      }
      get_waiters_.emplace(id, std::move(waiter));
    }
  }
  Finish(std::move(wakeups));
  if (inline_result.has_value()) done(std::move(*inline_result));
  return id;
}

bool LocalQueue::CancelWaiter(std::uint64_t waiter_id, const Status& status) {
  std::function<void()> completion;
  TimerWheel::TimerId timer = 0;
  {
    ds::MutexLock lock(mu_);
    if (auto it = get_waiters_.find(waiter_id); it != get_waiters_.end()) {
      timer = it->second.timer;
      completion = [done = std::move(it->second.done), st = status]() mutable {
        done(Result<ItemView>(std::move(st)));
      };
      get_waiters_.erase(it);
    } else if (auto pit = put_waiters_.find(waiter_id);
               pit != put_waiters_.end()) {
      timer = pit->second.timer;
      completion = [done = std::move(pit->second.done),
                    st = status]() mutable { done(std::move(st)); };
      put_waiters_.erase(pit);
    } else {
      return false;  // already completed (or never existed)
    }
  }
  if (timer != 0 && wheel_ != nullptr) wheel_->Cancel(timer);
  completion();
  return true;
}

std::size_t LocalQueue::CancelWaitersOf(std::uint32_t origin,
                                        const Status& status) {
  Wakeups wakeups;
  {
    ds::MutexLock lock(mu_);
    for (auto it = get_waiters_.begin(); it != get_waiters_.end();) {
      if (it->second.origin != origin) {
        ++it;
        continue;
      }
      if (it->second.timer != 0) wakeups.timers.push_back(it->second.timer);
      wakeups.completions.push_back(
          [done = std::move(it->second.done), st = status]() mutable {
            done(Result<ItemView>(std::move(st)));
          });
      it = get_waiters_.erase(it);
    }
    for (auto it = put_waiters_.begin(); it != put_waiters_.end();) {
      if (it->second.origin != origin) {
        ++it;
        continue;
      }
      if (it->second.timer != 0) wakeups.timers.push_back(it->second.timer);
      wakeups.completions.push_back(
          [done = std::move(it->second.done), st = status]() mutable {
            done(std::move(st));
          });
      it = put_waiters_.erase(it);
    }
  }
  const std::size_t cancelled = wakeups.completions.size();
  Finish(std::move(wakeups));
  return cancelled;
}

void LocalQueue::EvaluateWaitersLocked(Wakeups& out) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = put_waiters_.begin(); it != put_waiters_.end();) {
      auto tried = TryPutLocked(it->second.ts, it->second.payload);
      if (!tried.has_value()) {
        ++it;
        continue;
      }
      if (it->second.timer != 0) out.timers.push_back(it->second.timer);
      out.completions.push_back(
          [done = std::move(it->second.done),
           st = std::move(*tried)]() mutable { done(std::move(st)); });
      it = put_waiters_.erase(it);
      progress = true;
    }
    for (auto it = get_waiters_.begin(); it != get_waiters_.end();) {
      auto tried = TryGetLocked(it->second.slot);
      if (!tried.has_value()) {
        ++it;
        continue;
      }
      if (it->second.timer != 0) out.timers.push_back(it->second.timer);
      out.completions.push_back(
          [done = std::move(it->second.done),
           item = std::move(*tried)]() mutable { done(std::move(item)); });
      it = get_waiters_.erase(it);
      progress = true;
    }
  }
}

void LocalQueue::Finish(Wakeups wakeups) {
  for (TimerWheel::TimerId timer : wakeups.timers) {
    if (wheel_ != nullptr) wheel_->Cancel(timer);
  }
  for (auto& completion : wakeups.completions) completion();
}

Status LocalQueue::Consume(std::uint32_t slot, Timestamp ts) {
  GcHandler handler_copy;
  Timestamp freed_ts = kInvalidTimestamp;
  SharedBuffer freed_payload;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    auto& in_flight = it->second.in_flight;
    auto entry_it =
        std::find_if(in_flight.begin(), in_flight.end(),
                     [&](const Entry& e) { return e.ts == ts; });
    if (entry_it == in_flight.end()) {
      return NotFoundError("no in-flight item with this timestamp");
    }
    freed_ts = entry_it->ts;
    freed_payload = entry_it->payload;
    pending_notices_.push_back(
        GcNotice{0, /*is_queue=*/true, freed_ts, freed_payload.size()});
    if (metrics_.reclaimed != nullptr) metrics_.reclaimed->Add();
    if (metrics_.reclaim_lag_us != nullptr &&
        entry_it->put_at != TimePoint{}) {
      metrics_.reclaim_lag_us->Observe(ToMicros(Now() - entry_it->put_at));
    }
    in_flight.erase(entry_it);
    ++total_consumed_;
    handler_copy = gc_handler_;
  }
  if (handler_copy) handler_copy(freed_ts, freed_payload);
  return OkStatus();
}

void LocalQueue::set_gc_handler(GcHandler handler) {
  ds::MutexLock lock(mu_);
  gc_handler_ = std::move(handler);
}

std::vector<GcNotice> LocalQueue::Sweep(std::uint64_t queue_bits) {
  ds::MutexLock lock(mu_);
  std::vector<GcNotice> out = std::move(pending_notices_);
  pending_notices_.clear();
  for (auto& notice : out) notice.container_bits = queue_bits;
  return out;
}

std::size_t LocalQueue::queued_items() const {
  ds::MutexLock lock(mu_);
  return items_.size();
}

std::size_t LocalQueue::in_flight_items() const {
  ds::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [slot, conn] : conns_) n += conn.in_flight.size();
  return n;
}

std::size_t LocalQueue::parked_get_waiters() const {
  ds::MutexLock lock(mu_);
  return get_waiters_.size();
}

std::size_t LocalQueue::parked_put_waiters() const {
  ds::MutexLock lock(mu_);
  return put_waiters_.size();
}

}  // namespace dstampede::core
