#include "dstampede/core/queue.hpp"

#include <algorithm>

namespace dstampede::core {

std::uint32_t LocalQueue::Attach(ConnMode mode, std::string label) {
  ds::MutexLock lock(mu_);
  const std::uint32_t slot = next_slot_++;
  conns_.emplace(slot, ConnState{mode, std::move(label), {}});
  return slot;
}

Status LocalQueue::Detach(std::uint32_t slot) {
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    // Return unconsumed in-flight items to the queue head, in original
    // put order, so a departing worker loses no data.
    auto& in_flight = it->second.in_flight;
    std::sort(in_flight.begin(), in_flight.end(),
              [](const Entry& a, const Entry& b) { return a.order > b.order; });
    for (auto& entry : in_flight) {
      items_.push_front(std::move(entry));
    }
    conns_.erase(it);
  }
  cv_.NotifyAll();
  return OkStatus();
}

void LocalQueue::Close() {
  {
    ds::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

Status LocalQueue::Put(Timestamp ts, SharedBuffer payload, Deadline deadline) {
  ds::MutexLock lock(mu_);
  if (ts == kInvalidTimestamp) return InvalidArgumentError("bad timestamp");
  if (closed_) return CancelledError("queue closed");
  while (attr_.capacity_items != 0 && items_.size() >= attr_.capacity_items) {
    if (closed_) return CancelledError("queue closed");
    if (!cv_.WaitUntil(mu_, deadline)) return TimeoutError("queue at capacity");
  }
  items_.push_back(Entry{ts, std::move(payload), next_order_++});
  ++total_puts_;
  lock.Unlock();
  cv_.NotifyAll();
  return OkStatus();
}

Result<ItemView> LocalQueue::Get(std::uint32_t slot, Deadline deadline) {
  ds::MutexLock lock(mu_);
  for (;;) {
    if (closed_) return CancelledError("queue closed");
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    if (!CanInput(it->second.mode)) {
      return PermissionDeniedError("connection is output-only");
    }
    if (!items_.empty()) {
      Entry entry = std::move(items_.front());
      items_.pop_front();
      ItemView view{entry.ts, entry.payload};
      it->second.in_flight.push_back(std::move(entry));
      lock.Unlock();
      cv_.NotifyAll();  // a put may be waiting on capacity
      return view;
    }
    if (!cv_.WaitUntil(mu_, deadline)) return TimeoutError("queue get");
  }
}

Status LocalQueue::Consume(std::uint32_t slot, Timestamp ts) {
  GcHandler handler_copy;
  Timestamp freed_ts = kInvalidTimestamp;
  SharedBuffer freed_payload;
  {
    ds::MutexLock lock(mu_);
    auto it = conns_.find(slot);
    if (it == conns_.end()) return NotFoundError("connection");
    auto& in_flight = it->second.in_flight;
    auto entry_it =
        std::find_if(in_flight.begin(), in_flight.end(),
                     [&](const Entry& e) { return e.ts == ts; });
    if (entry_it == in_flight.end()) {
      return NotFoundError("no in-flight item with this timestamp");
    }
    freed_ts = entry_it->ts;
    freed_payload = entry_it->payload;
    pending_notices_.push_back(
        GcNotice{0, /*is_queue=*/true, freed_ts, freed_payload.size()});
    in_flight.erase(entry_it);
    ++total_consumed_;
    handler_copy = gc_handler_;
  }
  if (handler_copy) handler_copy(freed_ts, freed_payload);
  return OkStatus();
}

void LocalQueue::set_gc_handler(GcHandler handler) {
  ds::MutexLock lock(mu_);
  gc_handler_ = std::move(handler);
}

std::vector<GcNotice> LocalQueue::Sweep(std::uint64_t queue_bits) {
  ds::MutexLock lock(mu_);
  std::vector<GcNotice> out = std::move(pending_notices_);
  pending_notices_.clear();
  for (auto& notice : out) notice.container_bits = queue_bits;
  return out;
}

std::size_t LocalQueue::queued_items() const {
  ds::MutexLock lock(mu_);
  return items_.size();
}

std::size_t LocalQueue::in_flight_items() const {
  ds::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [slot, conn] : conns_) n += conn.in_flight.size();
  return n;
}

}  // namespace dstampede::core
