#include "dstampede/core/address_space.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "dstampede/common/logging.hpp"

namespace dstampede::core {

namespace {

// "0123456789abcdef" for sampled contexts, "-" otherwise; used when a
// request is dropped so the warn line still names its trace.
std::string TraceTag(const trace::TraceContext& ctx) {
  if (!ctx.sampled()) return "-";
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, ctx.trace_id);
  return buf;
}

}  // namespace

Result<std::unique_ptr<AddressSpace>> AddressSpace::Create(
    const Options& options) {
  auto as = std::unique_ptr<AddressSpace>(new AddressSpace(options));
  as->wheel_ = std::make_unique<TimerWheel>();
  clf::Endpoint::Options ep_opts;
  ep_opts.port = options.clf_port;
  ep_opts.enable_shm_fastpath = options.shm_fastpath;
  ep_opts.faults = options.faults;
  ep_opts.max_retransmits = options.clf_max_retransmits;
  ep_opts.keepalive_interval = options.peer_keepalive_interval;
  ep_opts.peer_timeout = options.peer_timeout;
  DS_ASSIGN_OR_RETURN(as->endpoint_, clf::Endpoint::Create(ep_opts));
  as->endpoint_->set_peer_down_callback(
      [raw = as.get()](const transport::SockAddr& addr) {
        raw->OnPeerDown(addr);
      });
  as->endpoint_->set_peer_up_callback(
      [raw = as.get()](const transport::SockAddr& addr) {
        raw->OnPeerUp(addr);
      });
  as->dispatcher_ = std::make_unique<ThreadPool>(
      options.dispatcher_threads,
      "AS" + std::to_string(AsIndex(options.id)));
  as->gc_ = std::make_unique<GcService>(options.gc_interval);
  const bool is_ns_replica =
      std::find(options.ns_replicas.begin(), options.ns_replicas.end(),
                options.id) != options.ns_replicas.end();
  if (options.host_name_server || is_ns_replica) {
    as->name_server_ = std::make_unique<NameServer>();
  }
  if (!options.ns_replicas.empty()) {
    as->ns_as_ = options.ns_replicas.front();
  } else if (options.host_name_server) {
    as->ns_as_ = options.id;
  }
  if (is_ns_replica && options.ns_replicas.size() > 1) {
    RepLog::Options ro;
    ro.self = options.id;
    ro.replicas = options.ns_replicas;
    std::sort(ro.replicas.begin(), ro.replicas.end());
    ro.lease = options.ns_lease;
    ro.heartbeat = options.ns_heartbeat;
    ro.rpc_deadline = std::max<Duration>(options.ns_heartbeat * 2, Millis(50));
    AddressSpace* raw = as.get();
    as->replog_ = std::make_unique<RepLog>(
        ro,
        /*apply=*/
        [raw](const Buffer& entry) {
          auto m = DecodeNsMutation(entry);
          if (!m.ok()) {
            DS_LOG(kWarn) << "undecodable replicated ns mutation: "
                          << m.status().message();
            return;
          }
          // Re-applied entries may report their usual app error
          // (duplicate register, tick of a dropped session); state
          // still converges, so only the appender cares.
          (void)raw->name_server_->Apply(*m);
        },
        /*send=*/
        [raw](AsId target, Op op,
              const std::function<void(marshal::XdrEncoder&)>& body,
              Deadline deadline) -> Result<Buffer> {
          marshal::XdrEncoder enc;
          EncodeRequestHeader(enc, op, raw->next_request_id_.fetch_add(1));
          body(enc);
          return raw->Call(target, enc.Take(), deadline);
        },
        /*peer_dead=*/[raw](AsId peer) { return raw->IsPeerDown(peer); });
    as->replog_->set_on_became_leader([raw] { raw->OnBecameNsLeader(); });
  }
  as->InitObservability();
  as->gc_->Start();
  as->receiver_ = Thread([raw = as.get()] { raw->ReceiveLoop(); });
  if (as->replog_) as->replog_->Start();
  return as;
}

void AddressSpace::InitObservability() {
  // Hot-path instruments, cached once: registry addresses are stable
  // for the registry's lifetime, so the fast paths hit only atomics.
  m_dispatch_requests_ = &registry_.GetCounter("dispatch.requests");
  m_dispatch_deferred_ = &registry_.GetCounter("dispatch.deferred");
  m_dropped_or_expired_ = &registry_.GetCounter("dispatch.dropped_or_expired");
  stm_metrics_.puts = &registry_.GetCounter("stm.puts");
  stm_metrics_.gets = &registry_.GetCounter("stm.gets");
  stm_metrics_.reclaimed = &registry_.GetCounter("stm.reclaimed_items");
  stm_metrics_.reclaim_lag_us = &registry_.GetHistogram("stm.reclaim_lag_us");
  endpoint_->set_metrics_registry(&registry_);  // per-peer RTT histograms

  // Pull providers, evaluated at snapshot time. They read atomics or
  // take only leaf locks (containers_mu_ -> container mu is the same
  // order Shutdown uses), and this object outlives the registry's
  // users, so the raw captures are safe.
  registry_.AddProvider("dispatcher.queue_depth",
                        [this] { return static_cast<std::int64_t>(
                                     dispatcher_->pending()); });
  registry_.AddProvider("containers.channels", [this] {
    ds::MutexLock lock(containers_mu_);
    return static_cast<std::int64_t>(channels_.size());
  });
  registry_.AddProvider("containers.queues", [this] {
    ds::MutexLock lock(containers_mu_);
    return static_cast<std::int64_t>(queues_.size());
  });
  registry_.AddProvider("containers.parked_waiters", [this] {
    std::vector<std::shared_ptr<LocalChannel>> channels;
    std::vector<std::shared_ptr<LocalQueue>> queues;
    {
      ds::MutexLock lock(containers_mu_);
      for (auto& [slot, ch] : channels_) channels.push_back(ch);
      for (auto& [slot, q] : queues_) queues.push_back(q);
    }
    std::int64_t parked = 0;
    for (auto& ch : channels) {
      parked += static_cast<std::int64_t>(ch->parked_get_waiters() +
                                          ch->parked_put_waiters());
    }
    for (auto& q : queues) {
      parked += static_cast<std::int64_t>(q->parked_get_waiters() +
                                          q->parked_put_waiters());
    }
    return parked;
  });

  // CLF transport mirror: expose the endpoint's atomics through the
  // registry so one snapshot covers every layer.
  const clf::EndpointStats* clf_stats = &endpoint_->stats();
  registry_.AddProvider("clf.data_packets_sent", [clf_stats] {
    return static_cast<std::int64_t>(
        clf_stats->data_packets_sent.load(std::memory_order_relaxed));
  });
  registry_.AddProvider("clf.data_packets_received", [clf_stats] {
    return static_cast<std::int64_t>(
        clf_stats->data_packets_received.load(std::memory_order_relaxed));
  });
  registry_.AddProvider("clf.retransmissions", [clf_stats] {
    return static_cast<std::int64_t>(
        clf_stats->retransmissions.load(std::memory_order_relaxed));
  });
  registry_.AddProvider("clf.duplicates_discarded", [clf_stats] {
    return static_cast<std::int64_t>(
        clf_stats->duplicates_discarded.load(std::memory_order_relaxed));
  });
  registry_.AddProvider("clf.messages_delivered", [clf_stats] {
    return static_cast<std::int64_t>(
        clf_stats->messages_delivered.load(std::memory_order_relaxed));
  });
  registry_.AddProvider("clf.keepalive_probes_sent", [clf_stats] {
    return static_cast<std::int64_t>(
        clf_stats->keepalive_probes_sent.load(std::memory_order_relaxed));
  });
  registry_.AddProvider("clf.peers_declared_dead", [clf_stats] {
    return static_cast<std::int64_t>(
        clf_stats->peers_declared_dead.load(std::memory_order_relaxed));
  });

  // Fault-injector counters: zero in production, load-bearing in
  // simulation — a scenario that asserts on behaviour under loss wants
  // to see how much loss the modeled network actually injected.
  clf::FaultInjector* faults = &endpoint_->fault_injector();
  registry_.AddProvider("clf.fault.dropped", [faults] {
    return static_cast<std::int64_t>(faults->TotalCounters().dropped);
  });
  registry_.AddProvider("clf.fault.blackholed", [faults] {
    return static_cast<std::int64_t>(faults->TotalCounters().blackholed);
  });
  registry_.AddProvider("clf.fault.link_dropped", [faults] {
    return static_cast<std::int64_t>(faults->TotalCounters().link_dropped);
  });
  registry_.AddProvider("clf.fault.delayed", [faults] {
    return static_cast<std::int64_t>(faults->TotalCounters().delayed);
  });
  registry_.AddProvider("clf.fault.delivered", [faults] {
    return static_cast<std::int64_t>(faults->TotalCounters().delivered);
  });
  registry_.AddProvider("clf.fault.delayed_pending", [faults] {
    return static_cast<std::int64_t>(faults->delayed_pending());
  });

  if (name_server_) {
    NameServer* ns = name_server_.get();
    registry_.AddProvider("ns.entries", [ns] {
      return static_cast<std::int64_t>(ns->size());
    });
    registry_.AddProvider("ns.sessions", [ns] {
      return static_cast<std::int64_t>(ns->session_count());
    });
    registry_.AddProvider("ns.lookups", [ns] {
      return static_cast<std::int64_t>(ns->total_lookups());
    });
    registry_.AddProvider("ns.purged_entries", [ns] {
      return static_cast<std::int64_t>(ns->total_purged());
    });
  }
  if (replog_) {
    RepLog* rl = replog_.get();
    registry_.AddProvider("ns.leader_changes", [rl] {
      return static_cast<std::int64_t>(rl->leader_changes());
    });
    registry_.AddProvider("ns.log_appends", [rl] {
      return static_cast<std::int64_t>(rl->log_appends());
    });
    registry_.AddProvider("ns.replica_lag", [rl] {
      return static_cast<std::int64_t>(rl->replica_lag());
    });
    registry_.AddProvider("ns.replog.is_leader",
                          [rl] { return rl->IsLeader() ? 1 : 0; });
    registry_.AddProvider("ns.replog.term", [rl] {
      return static_cast<std::int64_t>(rl->term());
    });
  }
}

AddressSpace::AddressSpace(const Options& options) : options_(options) {}

AddressSpace::~AddressSpace() {
  Shutdown();
  JoinThreads();
}

void AddressSpace::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;

  // Complete every parked waiter (kCancelled) first, so suspended
  // remote requests flush their replies while the endpoint is still
  // up and local blocked callers unwind. Close runs outside
  // containers_mu_ because it fires completions, which send over CLF.
  std::vector<std::shared_ptr<LocalChannel>> channels;
  std::vector<std::shared_ptr<LocalQueue>> queues;
  {
    ds::MutexLock lock(containers_mu_);
    channels.reserve(channels_.size());
    for (auto& [slot, ch] : channels_) channels.push_back(ch);
    queues.reserve(queues_.size());
    for (auto& [slot, q] : queues_) queues.push_back(q);
  }
  for (auto& ch : channels) ch->Close();
  for (auto& q : queues) q->Close();
  // Join the timer wheel before tearing down what its callbacks touch
  // (containers, endpoint). New waiters cannot register: the containers
  // are closed.
  if (wheel_) wheel_->Shutdown();
  gc_->Stop();
  dispatcher_->Shutdown();
  endpoint_->Shutdown();
  if (receiver_.joinable()) receiver_.join();

  // Fail calls still waiting for replies.
  std::vector<std::shared_ptr<PendingCall>> orphans;
  {
    ds::MutexLock lock(calls_mu_);
    for (auto& [id, call] : calls_) orphans.push_back(call);
    calls_.clear();
  }
  for (auto& call : orphans) {
    ds::MutexLock lock(call->mu);
    call->done = true;
    call->status = CancelledError("address space shut down");
    call->cv.NotifyAll();
  }
  // After the orphan sweep so a ticker blocked in Call wakes promptly
  // instead of riding out its RPC deadline.
  if (replog_) replog_->Stop();
}

// --- topology -------------------------------------------------------------

void AddressSpace::AddPeer(AsId peer, const transport::SockAddr& addr) {
  {
    ds::MutexLock lock(peers_mu_);
    peers_[AsIndex(peer)] = addr;
    peer_by_addr_[addr] = peer;
    dead_peers_.erase(AsIndex(peer));  // re-adding re-admits
  }
  // Start liveness monitoring before any traffic flows (no-op unless
  // failure detection is configured).
  endpoint_->WatchPeer(addr);
}

bool AddressSpace::IsPeerDown(AsId peer) const {
  ds::MutexLock lock(peers_mu_);
  return dead_peers_.count(AsIndex(peer)) != 0;
}

void AddressSpace::OnPeerDown(const transport::SockAddr& addr) {
  AsId dead = kInvalidAsId;
  {
    ds::MutexLock lock(peers_mu_);
    auto it = peer_by_addr_.find(addr);
    if (it == peer_by_addr_.end()) return;  // not a known peer AS
    dead = it->second;
    dead_peers_.insert(AsIndex(dead));
  }
  DS_LOG(kWarn) << "AS" << AsIndex(options_.id) << ": peer AS"
                << AsIndex(dead) << " (" << addr.ToString()
                << ") declared dead; running recovery";

  // 1. Fail calls already waiting on a reply from the dead peer — the
  // reply is never coming.
  std::vector<std::shared_ptr<PendingCall>> doomed;
  {
    ds::MutexLock lock(calls_mu_);
    for (auto it = calls_.begin(); it != calls_.end();) {
      if (it->second->target == dead) {
        doomed.push_back(it->second);
        it = calls_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& call : doomed) {
    ds::MutexLock lock(call->mu);
    call->done = true;
    call->status = UnavailableError("peer address space declared dead");
    call->cv.NotifyAll();
  }

  // 2. Complete the dead space's parked waiters with kUnavailable —
  // their replies are undeliverable, and the records would otherwise
  // pin payloads and timers until their deadlines expire (or forever,
  // for infinite-deadline waits).
  {
    std::vector<std::shared_ptr<LocalChannel>> channels;
    std::vector<std::shared_ptr<LocalQueue>> queues;
    {
      ds::MutexLock lock(containers_mu_);
      channels.reserve(channels_.size());
      for (auto& [slot, ch] : channels_) channels.push_back(ch);
      queues.reserve(queues_.size());
      for (auto& [slot, q] : queues_) queues.push_back(q);
    }
    const Status gone = UnavailableError("peer address space declared dead");
    std::size_t cancelled = 0;
    for (auto& ch : channels) cancelled += ch->CancelWaitersOf(AsIndex(dead), gone);
    for (auto& q : queues) cancelled += q->CancelWaitersOf(AsIndex(dead), gone);
    if (cancelled != 0) {
      DS_LOG(kInfo) << "completed " << cancelled
                    << " parked waiters of dead AS" << AsIndex(dead);
    }
  }

  // 3. Detach the dead space's connections to our containers so the
  // items it alone was holding become garbage (analogue of the
  // surrogate's Reap for a vanished end device, §3.2.4).
  std::vector<RemoteAttach> attachments;
  {
    ds::MutexLock lock(remote_attach_mu_);
    auto it = remote_attachments_.find(AsIndex(dead));
    if (it != remote_attachments_.end()) {
      attachments = std::move(it->second);
      remote_attachments_.erase(it);
    }
  }
  for (const auto& att : attachments) {
    Status detached = OkStatus();
    if (att.is_queue) {
      auto q = FindQueue(att.container_bits);
      if (q) detached = q->Detach(att.slot);
    } else {
      auto ch = FindChannel(att.container_bits);
      if (ch) detached = ch->Detach(att.slot);
    }
    if (!detached.ok()) {
      DS_LOG(kWarn) << "recovery detach failed: " << detached.message();
    }
  }

  // 4. If we host the name server, the dead space's names must not
  // satisfy later lookups. (Session records are NOT purged: a session
  // hosted on the dead space is exactly what a listener needs to
  // migrate that session to a live space.) Replicated deployments feed
  // the liveness signal to the replication log (election input) and
  // let the leader drive the purge through the log, so every replica
  // converges on the same post-recovery state; the purge runs on the
  // dispatcher pool because appending blocks on replica RPCs and this
  // callback runs on the CLF receiver thread.
  if (replog_) {
    replog_->OnPeerDown(dead);
    (void)dispatcher_->Submit([this, dead] {
      if (!replog_->IsLeader()) return;  // the leader's own signal purges
      NsMutation purge;
      purge.kind = NsMutation::Kind::kPurgeOwner;
      purge.owner = dead;
      Status s = replog_->Append(EncodeNsMutation(purge));
      if (!s.ok()) {
        DS_LOG(kWarn) << "replicated purge of AS" << AsIndex(dead)
                      << " names failed: " << s.message();
      }
    });
  } else if (name_server_) {
    const std::size_t purged = name_server_->PurgeOwner(dead);
    if (purged != 0) {
      DS_LOG(kInfo) << "purged " << purged << " name-server entries of AS"
                    << AsIndex(dead);
    }
  }

  // 5. Tell higher layers (listeners, federation) so they can react
  // without polling IsPeerDown.
  std::vector<std::function<void(AsId)>> observers;
  {
    ds::MutexLock lock(peer_observers_mu_);
    observers = peer_down_observers_;
  }
  for (auto& observer : observers) observer(dead);
}

void AddressSpace::AddPeerDownObserver(std::function<void(AsId)> observer) {
  ds::MutexLock lock(peer_observers_mu_);
  peer_down_observers_.push_back(std::move(observer));
}

void AddressSpace::AddPeerUpObserver(std::function<void(AsId)> observer) {
  ds::MutexLock lock(peer_observers_mu_);
  peer_up_observers_.push_back(std::move(observer));
}

void AddressSpace::OnPeerUp(const transport::SockAddr& addr) {
  AsId peer = kInvalidAsId;
  {
    ds::MutexLock lock(peers_mu_);
    auto it = peer_by_addr_.find(addr);
    if (it == peer_by_addr_.end()) return;
    peer = it->second;
    if (dead_peers_.erase(AsIndex(peer)) == 0) return;  // was never down
  }
  DS_LOG(kInfo) << "AS" << AsIndex(options_.id) << ": peer AS"
                << AsIndex(peer) << " resurrected with a new incarnation";
  std::vector<std::function<void(AsId)>> observers;
  {
    ds::MutexLock lock(peer_observers_mu_);
    observers = peer_up_observers_;
  }
  for (auto& observer : observers) observer(peer);
}

void AddressSpace::SetNameServerAs(AsId ns) { ns_as_ = ns; }

Result<transport::SockAddr> AddressSpace::PeerAddr(AsId peer) const {
  ds::MutexLock lock(peers_mu_);
  auto it = peers_.find(AsIndex(peer));
  if (it == peers_.end()) {
    return NotFoundError("unknown peer address space");
  }
  return it->second;
}

// --- RPC plumbing ----------------------------------------------------------

Result<Buffer> AddressSpace::Call(AsId target, Buffer request,
                                  Deadline deadline) {
  // A Call blocks on the CLF round-trip; entering it with any ds::Mutex
  // held is the invariant violation behind the PR 2 Resume-reply
  // deadlock, so fail loudly under the runtime detector.
  sync::AssertBlockingAllowed("AddressSpace::Call");
  if (stopping_.load()) return CancelledError("address space shut down");
  stats_.remote_calls.fetch_add(1, std::memory_order_relaxed);
  DS_ASSIGN_OR_RETURN(transport::SockAddr addr, PeerAddr(target));
  if (IsPeerDown(target)) {
    return UnavailableError("peer address space declared dead");
  }

  // The request id sits after the 4-byte op field.
  marshal::XdrDecoder peek(request);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeRequestHeader(peek));

  auto pending = std::make_shared<PendingCall>();
  pending->target = target;
  {
    ds::MutexLock lock(calls_mu_);
    calls_[hdr.request_id] = pending;
  }
  Status sent = endpoint_->Send(addr, request);
  if (!sent.ok()) {
    ds::MutexLock lock(calls_mu_);
    calls_.erase(hdr.request_id);
    return sent;
  }

  // The callee may legitimately block right up to the wire deadline;
  // allow transport slack on top before declaring the call lost.
  Deadline wait = deadline.infinite()
                      ? deadline
                      : Deadline::After(deadline.remaining() + Millis(5000));
  ds::MutexLock lock(pending->mu);
  while (!pending->done) {
    if (!pending->cv.WaitUntil(pending->mu, wait) && !pending->done) {
      lock.Unlock();
      ds::MutexLock erase_lock(calls_mu_);
      calls_.erase(hdr.request_id);
      return TimeoutError("rpc call");
    }
  }
  if (!pending->status.ok()) return pending->status;
  return std::move(pending->response);
}

void AddressSpace::ReceiveLoop() {
  SetThreadLogContext("AS" + std::to_string(AsIndex(options_.id)) + ".rx");
  Buffer message;
  transport::SockAddr from;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Status s = endpoint_->Recv(message, from, Deadline::AfterMillis(50));
    if (!s.ok()) {
      if (s.code() == StatusCode::kTimeout) continue;
      break;  // endpoint shut down
    }
    marshal::XdrDecoder peek(message);
    auto hdr = DecodeRequestHeader(peek);
    if (!hdr.ok()) {
      DS_LOG(kWarn) << "undecodable frame from " << from.ToString();
      continue;
    }
    if (hdr->op == Op::kReply) {
      std::shared_ptr<PendingCall> call;
      {
        ds::MutexLock lock(calls_mu_);
        auto it = calls_.find(hdr->request_id);
        if (it != calls_.end()) {
          call = it->second;
          calls_.erase(it);
        }
      }
      if (call) {
        ds::MutexLock lock(call->mu);
        call->done = true;
        call->response = std::move(message);
        call->cv.NotifyAll();
      }
      message = Buffer();
      continue;
    }
    // A request: service it on the pool, since it may block.
    DispatchRequest(from, std::move(message));
    message = Buffer();
  }
}

void AddressSpace::DispatchRequest(transport::SockAddr from, Buffer message) {
  // Attribute the request to the sending address space (for attachment
  // bookkeeping); requests from unknown addresses stay anonymous.
  AsId origin = kInvalidAsId;
  {
    ds::MutexLock lock(peers_mu_);
    auto it = peer_by_addr_.find(from);
    if (it != peer_by_addr_.end()) origin = it->second;
  }
  // Peek the request id (and trace context) before the message is
  // moved, so a refusal can still be addressed to the caller instead of
  // leaving it to time out — and attributed to its trace.
  std::uint64_t request_id = 0;
  bool have_id = false;
  trace::TraceContext tctx;
  {
    marshal::XdrDecoder peek(message);
    if (auto hdr = DecodeRequestHeader(peek); hdr.ok()) {
      request_id = hdr->request_id;
      have_id = true;
      tctx = hdr->trace;
    }
  }
  m_dispatch_requests_->Add();
  auto task = [this, from, origin, request_id, have_id, tctx,
               msg = std::move(message)]() {
    // The caller's context rides the whole execution of this request:
    // spans opened below parent onto it and every outgoing
    // EncodeRequestHeader re-emits it (trace propagation).
    trace::ScopedContext tracing(tctx);
    if (stopping_.load()) {
      m_dropped_or_expired_->Add();
      DS_LOG(kWarn) << "dropping request " << request_id
                    << " (address space shutting down), trace="
                    << TraceTag(tctx);
      if (have_id) {
        (void)endpoint_->Send(
            from, EncodeStatusReply(
                      request_id,
                      UnavailableError("address space shutting down")));
      }
      return;
    }
    // Blocking container ops suspend into a waiter instead of parking
    // this worker; everything else is served synchronously.
    if (ServeDeferred(msg, origin, from)) return;
    Buffer reply = ProcessRequest(msg, origin);
    if (!reply.empty()) {
      (void)endpoint_->Send(from, reply);
    }
  };
  if (!dispatcher_->Submit(std::move(task))) {
    m_dropped_or_expired_->Add();
    DS_LOG(kWarn) << "dispatcher rejected request " << request_id
                  << " (shutting down), trace=" << TraceTag(tctx);
    if (have_id) {
      (void)endpoint_->Send(
          from, EncodeStatusReply(
                    request_id, UnavailableError("dispatcher shutting down")));
    }
  }
}

namespace {

// Container ids embed their owner AS (ids.hpp); channels and queues
// share the handle layout so either tag works for extraction.
AsId OwnerOf(std::uint64_t container_bits) {
  return ChannelId::FromBits(container_bits).owner();
}

}  // namespace

bool AddressSpace::ServeDeferred(std::span<const std::uint8_t> message,
                                 AsId origin, const transport::SockAddr& from) {
  marshal::XdrDecoder dec(message);
  auto hdr = DecodeRequestHeader(dec);
  if (!hdr.ok()) return false;
  if (hdr->op != Op::kGet && hdr->op != Op::kPut) return false;
  const std::uint64_t id = hdr->request_id;

  // Tag remote waiters with the caller's AS index so OnPeerDown can
  // cancel them; anonymous callers (end devices via a surrogate that is
  // not a registered peer) share the no-origin sentinel and are only
  // completed by deadline, container close, or shutdown.
  const std::uint32_t origin_tag =
      origin == kInvalidAsId ? kNoWaiterOrigin : AsIndex(origin);
  // Reply exactly once from whichever thread resolves the waiter
  // (putter, consumer, timer wheel, peer-death, close, shutdown).
  auto reply = std::make_shared<DeferredReply>(
      id, [this, from](Buffer encoded) {
        if (!encoded.empty()) (void)endpoint_->Send(from, encoded);
      });

  if (hdr->op == Op::kGet) {
    auto req = GetReq::Decode(dec);
    if (!req.ok()) return false;  // sync path emits the decode error
    if (OwnerOf(req->container_bits) != options_.id) return false;
    stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    m_dispatch_deferred_->Add();
    // The suspension itself is a span: it starts here (request arrives,
    // try phase may park it) and ends — possibly on the producer's or
    // the timer wheel's thread — when the continuation fires. Shared
    // because GetCompletion is a copyable std::function.
    auto parked = std::make_shared<trace::PendingSpan>(
        &span_sink_, "owner.parked", hdr->trace);
    auto done = [this, id, reply, parked,
                 tctx = hdr->trace](Result<ItemView> item) {
      parked->Finish();
      if (!item.ok()) {
        if (item.status().code() == StatusCode::kTimeout) {
          m_dropped_or_expired_->Add();
          DS_LOG(kWarn) << "parked get " << id
                        << " expired at deadline, trace=" << TraceTag(tctx);
        }
        (void)reply->Complete(EncodeStatusReply(id, item.status()));
        return;
      }
      stats_.bytes_got.fetch_add(item->payload.size(),
                                 std::memory_order_relaxed);
      (void)reply->Complete(EncodeItemReply(id, *item));
    };
    const Deadline deadline = DecodeDeadline(req->deadline_ms);
    if (req->is_queue) {
      auto q = FindQueue(req->container_bits);
      if (!q) {
        (void)reply->Complete(EncodeStatusReply(id, NotFoundError("queue")));
        return true;
      }
      q->GetAsync(req->slot, deadline, std::move(done), origin_tag);
    } else {
      auto ch = FindChannel(req->container_bits);
      if (!ch) {
        (void)reply->Complete(EncodeStatusReply(id, NotFoundError("channel")));
        return true;
      }
      ch->GetAsync(req->slot, req->spec, deadline, std::move(done),
                   origin_tag);
    }
    return true;
  }

  auto req = PutReq::Decode(dec);
  if (!req.ok()) return false;
  if (OwnerOf(req->container_bits) != options_.id) return false;
  stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_put.fetch_add(req->payload.size(), std::memory_order_relaxed);
  m_dispatch_deferred_->Add();
  if (!CanOutput(req->mode)) {
    (void)reply->Complete(EncodeStatusReply(
        id, PermissionDeniedError("connection is input-only")));
    return true;
  }
  auto parked = std::make_shared<trace::PendingSpan>(
      &span_sink_, "owner.parked", hdr->trace);
  auto done = [this, id, reply, parked, tctx = hdr->trace](Status st) {
    parked->Finish();
    if (st.code() == StatusCode::kTimeout) {
      m_dropped_or_expired_->Add();
      DS_LOG(kWarn) << "parked put " << id
                    << " expired at deadline, trace=" << TraceTag(tctx);
    }
    (void)reply->Complete(EncodeStatusReply(id, st));
  };
  const Deadline deadline = DecodeDeadline(req->deadline_ms);
  if (req->is_queue) {
    auto q = FindQueue(req->container_bits);
    if (!q) {
      (void)reply->Complete(EncodeStatusReply(id, NotFoundError("queue")));
      return true;
    }
    q->PutAsync(req->ts, SharedBuffer(std::move(req->payload)), deadline,
                std::move(done), origin_tag);
  } else {
    auto ch = FindChannel(req->container_bits);
    if (!ch) {
      (void)reply->Complete(EncodeStatusReply(id, NotFoundError("channel")));
      return true;
    }
    ch->PutAsync(req->ts, SharedBuffer(std::move(req->payload)), deadline,
                 std::move(done), origin_tag);
  }
  return true;
}

Buffer AddressSpace::ProcessRequest(std::span<const std::uint8_t> message,
                                    AsId origin) {
  marshal::XdrDecoder dec(message);
  auto hdr = DecodeRequestHeader(dec);
  if (!hdr.ok()) return Buffer();  // cannot even address a reply
  stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = hdr->request_id;

  switch (hdr->op) {
    case Op::kCreateChannel: {
      auto req = CreateReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      ChannelAttr attr;
      attr.capacity_items = static_cast<std::size_t>(req->capacity);
      attr.debug_name = req->debug_name;
      auto created = CreateChannel(attr);
      if (!created.ok()) return EncodeStatusReply(id, created.status());
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, OkStatus());
      enc.PutU64(created->bits());
      return enc.Take();
    }
    case Op::kCreateQueue: {
      auto req = CreateReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      QueueAttr attr;
      attr.capacity_items = static_cast<std::size_t>(req->capacity);
      attr.debug_name = req->debug_name;
      auto created = CreateQueue(attr);
      if (!created.ok()) return EncodeStatusReply(id, created.status());
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, OkStatus());
      enc.PutU64(created->bits());
      return enc.Take();
    }
    case Op::kAttach: {
      auto req = AttachReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      Result<Connection> conn =
          req->is_queue
              ? Connect(QueueId::FromBits(req->container_bits), req->mode,
                        req->label)
              : Connect(ChannelId::FromBits(req->container_bits), req->mode,
                        req->label);
      if (!conn.ok()) return EncodeStatusReply(id, conn.status());
      // Remember which peer holds the slot so its connections can be
      // detached (and its items reclaimed) if it dies.
      if (origin != kInvalidAsId && conn->owner() == options_.id) {
        ds::MutexLock lock(remote_attach_mu_);
        remote_attachments_[AsIndex(origin)].push_back(
            {req->container_bits, req->is_queue, conn->slot()});
      }
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, OkStatus());
      enc.PutU32(conn->slot());
      return enc.Take();
    }
    case Op::kDetach: {
      auto req = DetachReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      const Connection conn(req->container_bits, req->is_queue,
                            ConnMode::kInputOutput,
                            OwnerOf(req->container_bits), req->slot);
      Status status = Disconnect(conn);
      if (status.ok() && origin != kInvalidAsId) {
        ds::MutexLock lock(remote_attach_mu_);
        auto it = remote_attachments_.find(AsIndex(origin));
        if (it != remote_attachments_.end()) {
          auto& atts = it->second;
          for (auto att = atts.begin(); att != atts.end(); ++att) {
            if (att->container_bits == req->container_bits &&
                att->is_queue == req->is_queue && att->slot == req->slot) {
              atts.erase(att);
              break;
            }
          }
        }
      }
      return EncodeStatusReply(id, status);
    }
    case Op::kPut: {
      auto req = PutReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      // Rebuild the caller's connection and run through the public,
      // location-transparent API: surrogates route client calls to
      // containers owned by any address space this way.
      const Connection conn(req->container_bits, req->is_queue, req->mode,
                            OwnerOf(req->container_bits), req->slot);
      Status status = Put(conn, req->ts, std::move(req->payload),
                          DecodeDeadline(req->deadline_ms));
      return EncodeStatusReply(id, status);
    }
    case Op::kGet: {
      auto req = GetReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      const Connection conn(req->container_bits, req->is_queue, req->mode,
                            OwnerOf(req->container_bits), req->slot);
      Result<ItemView> item =
          req->is_queue ? Get(conn, DecodeDeadline(req->deadline_ms))
                        : Get(conn, req->spec, DecodeDeadline(req->deadline_ms));
      if (!item.ok()) return EncodeStatusReply(id, item.status());
      return EncodeItemReply(id, *item);
    }
    case Op::kConsume: {
      auto req = ConsumeReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      const Connection conn(req->container_bits, req->is_queue, req->mode,
                            OwnerOf(req->container_bits), req->slot);
      Status status = req->until ? ConsumeUntil(conn, req->ts)
                                 : Consume(conn, req->ts);
      return EncodeStatusReply(id, status);
    }
    case Op::kSetFilter: {
      auto req = SetFilterReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      const Connection conn(req->container_bits, /*is_queue=*/false,
                            ConnMode::kInput, OwnerOf(req->container_bits),
                            req->slot);
      return EncodeStatusReply(id, SetFilter(conn, req->filter));
    }
    // Name-server ops. A request from a peer AS (origin known) was
    // routed here by that peer's failover wrapper, so a replica serves
    // it or answers with a "leader=<id>" redirect — never forwards
    // onward (no replica-to-replica chains). A request with no origin
    // came from an end device via a surrogate on this AS: the public
    // wrapper routes it, retries and all.
    case Op::kNsRegister: {
      auto entry = DecodeNsEntry(dec);
      if (!entry.ok()) return EncodeStatusReply(id, entry.status());
      if (replog_ && origin != kInvalidAsId) {
        NsMutation m;
        m.kind = NsMutation::Kind::kRegister;
        m.entry = *entry;
        if (m.entry.owner_as == kInvalidAsId) m.entry.owner_as = options_.id;
        return EncodeStatusReply(id, ServeNsMutation(m));
      }
      return EncodeStatusReply(id, NsRegister(*entry));
    }
    case Op::kNsUnregister: {
      auto req = NsLookupReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      if (replog_ && origin != kInvalidAsId) {
        NsMutation m;
        m.kind = NsMutation::Kind::kUnregister;
        m.name = req->name;
        return EncodeStatusReply(id, ServeNsMutation(m));
      }
      return EncodeStatusReply(id, NsUnregister(req->name));
    }
    case Op::kNsLookup: {
      auto req = NsLookupReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      if (replog_ && origin != kInvalidAsId && !replog_->LeaseFresh()) {
        return EncodeStatusReply(id, StaleNsError());
      }
      auto entry = NsLookup(req->name, DecodeDeadline(req->deadline_ms));
      if (!entry.ok()) return EncodeStatusReply(id, entry.status());
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, OkStatus());
      EncodeNsEntry(enc, *entry);
      return enc.Take();
    }
    case Op::kNsList: {
      auto req = NsLookupReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      if (replog_ && origin != kInvalidAsId && !replog_->LeaseFresh()) {
        return EncodeStatusReply(id, StaleNsError());
      }
      auto entries = NsList(req->name);
      if (!entries.ok()) return EncodeStatusReply(id, entries.status());
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, OkStatus());
      enc.PutU32(static_cast<std::uint32_t>(entries->size()));
      for (const auto& entry : *entries) EncodeNsEntry(enc, entry);
      return enc.Take();
    }
    case Op::kSessionPut: {
      auto rec = DecodeSessionRecord(dec);
      if (!rec.ok()) return EncodeStatusReply(id, rec.status());
      if (replog_ && origin != kInvalidAsId) {
        NsMutation m;
        m.kind = NsMutation::Kind::kPutSession;
        m.session = *rec;
        return EncodeStatusReply(id, ServeNsMutation(m));
      }
      return EncodeStatusReply(id, SessionPut(*rec));
    }
    case Op::kSessionGet: {
      auto req = SessionIdReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      if (replog_ && origin != kInvalidAsId && !replog_->LeaseFresh()) {
        return EncodeStatusReply(id, StaleNsError());
      }
      auto rec = SessionGet(req->session_id);
      if (!rec.ok()) return EncodeStatusReply(id, rec.status());
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, OkStatus());
      EncodeSessionRecord(enc, *rec);
      return enc.Take();
    }
    case Op::kSessionDrop: {
      auto req = SessionIdReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      if (replog_ && origin != kInvalidAsId) {
        NsMutation m;
        m.kind = NsMutation::Kind::kDropSession;
        m.session_id = req->session_id;
        return EncodeStatusReply(id, ServeNsMutation(m));
      }
      return EncodeStatusReply(id, SessionDrop(req->session_id));
    }
    case Op::kSessionTick: {
      auto req = SessionTickReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      if (replog_ && origin != kInvalidAsId) {
        NsMutation m;
        m.kind = NsMutation::Kind::kTickSession;
        m.session_id = req->session_id;
        m.ticket = req->ticket;
        return EncodeStatusReply(id, ServeNsMutation(m));
      }
      return EncodeStatusReply(id, SessionTick(req->session_id, req->ticket));
    }
    // Control-plane replication (replica-internal; see core/replog.hpp).
    case Op::kRepAppend: {
      auto req = RepAppendReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      if (!replog_) {
        return EncodeStatusReply(id,
                                 FailedPreconditionError("not an ns replica"));
      }
      RepAppendAck ack;
      const Status st = replog_->HandleAppend(*req, ack);
      // The ack body rides along even on rejection: it carries this
      // replica's term, which is how a deposed leader learns to step
      // down.
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, st);
      ack.Encode(enc);
      return enc.Take();
    }
    case Op::kRepFetch: {
      auto req = RepFetchReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      if (!replog_) {
        return EncodeStatusReply(id,
                                 FailedPreconditionError("not an ns replica"));
      }
      const RepFetchResp resp = replog_->HandleFetch(*req);
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, OkStatus());
      resp.Encode(enc);
      return enc.Take();
    }
    case Op::kMetrics: {
      auto req = MetricsReq::Decode(dec);
      if (!req.ok()) return EncodeStatusReply(id, req.status());
      // Serve locally or forward to the target space (same pattern as
      // the NS ops), so a surrogate can introspect any space for its
      // end device and dsctl can fan out from one peer.
      auto snapshot = MetricsSnapshot(static_cast<AsId>(req->target_as));
      if (!snapshot.ok()) return EncodeStatusReply(id, snapshot.status());
      marshal::XdrEncoder enc;
      EncodeResponseHeader(enc, id, OkStatus());
      enc.PutString(*snapshot);
      return enc.Take();
    }
    case Op::kReply:
      break;
  }
  return EncodeStatusReply(id, InternalError("unknown op"));
}

// --- containers --------------------------------------------------------------

Result<ChannelId> AddressSpace::CreateChannel(const ChannelAttr& attr) {
  if (stopping_.load()) return CancelledError("address space shut down");
  std::uint32_t slot;
  std::shared_ptr<LocalChannel> ch;
  {
    ds::MutexLock lock(containers_mu_);
    slot = next_container_slot_++;
    ch = std::make_shared<LocalChannel>(attr, wheel_.get());
    ch->set_metrics(stm_metrics_);
    channels_[slot] = ch;
  }
  const ChannelId cid(options_.id, slot);
  gc_->RegisterChannel(cid.bits(), ch);
  return cid;
}

Result<QueueId> AddressSpace::CreateQueue(const QueueAttr& attr) {
  if (stopping_.load()) return CancelledError("address space shut down");
  std::uint32_t slot;
  std::shared_ptr<LocalQueue> q;
  {
    ds::MutexLock lock(containers_mu_);
    slot = next_container_slot_++;
    q = std::make_shared<LocalQueue>(attr, wheel_.get());
    q->set_metrics(stm_metrics_);
    queues_[slot] = q;
  }
  const QueueId qid(options_.id, slot);
  gc_->RegisterQueue(qid.bits(), q);
  return qid;
}

namespace {
template <typename Attr>
CreateReq MakeCreateReq(const Attr& attr) {
  CreateReq req;
  req.capacity = attr.capacity_items;
  req.debug_name = attr.debug_name;
  return req;
}
}  // namespace

Result<ChannelId> AddressSpace::CreateChannelOn(AsId owner,
                                                const ChannelAttr& attr) {
  if (owner == options_.id) return CreateChannel(attr);
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kCreateChannel, next_request_id_.fetch_add(1));
  MakeCreateReq(attr).Encode(enc);
  DS_ASSIGN_OR_RETURN(Buffer reply,
                      Call(owner, enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  DS_ASSIGN_OR_RETURN(std::uint64_t bits, dec.GetU64());
  return ChannelId::FromBits(bits);
}

Result<QueueId> AddressSpace::CreateQueueOn(AsId owner, const QueueAttr& attr) {
  if (owner == options_.id) return CreateQueue(attr);
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kCreateQueue, next_request_id_.fetch_add(1));
  MakeCreateReq(attr).Encode(enc);
  DS_ASSIGN_OR_RETURN(Buffer reply,
                      Call(owner, enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  DS_ASSIGN_OR_RETURN(std::uint64_t bits, dec.GetU64());
  return QueueId::FromBits(bits);
}

std::shared_ptr<LocalChannel> AddressSpace::FindChannel(std::uint64_t bits) {
  const ChannelId cid = ChannelId::FromBits(bits);
  if (cid.owner() != options_.id) return nullptr;
  ds::MutexLock lock(containers_mu_);
  auto it = channels_.find(cid.slot());
  return it == channels_.end() ? nullptr : it->second;
}

std::shared_ptr<LocalQueue> AddressSpace::FindQueue(std::uint64_t bits) {
  const QueueId qid = QueueId::FromBits(bits);
  if (qid.owner() != options_.id) return nullptr;
  ds::MutexLock lock(containers_mu_);
  auto it = queues_.find(qid.slot());
  return it == queues_.end() ? nullptr : it->second;
}

// --- plumbing ----------------------------------------------------------------

Result<Connection> AddressSpace::Connect(ChannelId ch, ConnMode mode,
                                         std::string label) {
  stats_.attaches.fetch_add(1, std::memory_order_relaxed);
  if (label.empty()) label = "thread@AS" + std::to_string(AsIndex(options_.id));
  if (ch.owner() == options_.id) {
    auto channel = FindChannel(ch.bits());
    if (!channel) return NotFoundError("channel");
    return Connection(ch.bits(), false, mode, ch.owner(),
                      channel->Attach(mode, std::move(label)));
  }
  AttachReq req;
  req.container_bits = ch.bits();
  req.is_queue = false;
  req.mode = mode;
  req.label = label;
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kAttach, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(Buffer reply,
                      Call(ch.owner(), enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  DS_ASSIGN_OR_RETURN(std::uint32_t slot, dec.GetU32());
  return Connection(ch.bits(), false, mode, ch.owner(), slot);
}

Result<Connection> AddressSpace::Connect(QueueId q, ConnMode mode,
                                         std::string label) {
  stats_.attaches.fetch_add(1, std::memory_order_relaxed);
  if (label.empty()) label = "thread@AS" + std::to_string(AsIndex(options_.id));
  if (q.owner() == options_.id) {
    auto queue = FindQueue(q.bits());
    if (!queue) return NotFoundError("queue");
    return Connection(q.bits(), true, mode, q.owner(),
                      queue->Attach(mode, std::move(label)));
  }
  AttachReq req;
  req.container_bits = q.bits();
  req.is_queue = true;
  req.mode = mode;
  req.label = label;
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kAttach, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(Buffer reply,
                      Call(q.owner(), enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  DS_ASSIGN_OR_RETURN(std::uint32_t slot, dec.GetU32());
  return Connection(q.bits(), true, mode, q.owner(), slot);
}

Status AddressSpace::Disconnect(const Connection& conn) {
  if (!conn.valid()) return InvalidArgumentError("invalid connection");
  stats_.detaches.fetch_add(1, std::memory_order_relaxed);
  if (conn.owner() == options_.id) {
    if (conn.is_queue()) {
      auto q = FindQueue(conn.container_bits());
      return q ? q->Detach(conn.slot()) : NotFoundError("queue");
    }
    auto ch = FindChannel(conn.container_bits());
    return ch ? ch->Detach(conn.slot()) : NotFoundError("channel");
  }
  DetachReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = conn.is_queue();
  req.slot = conn.slot();
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kDetach, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(
      Buffer reply,
      Call(conn.owner(), enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  return hdr.status;
}

// --- I/O ------------------------------------------------------------------------

Status AddressSpace::Put(const Connection& conn, Timestamp ts, Buffer payload,
                         Deadline deadline) {
  if (!conn.valid()) return InvalidArgumentError("invalid connection");
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_put.fetch_add(payload.size(), std::memory_order_relaxed);
  if (!CanOutput(conn.mode())) {
    return PermissionDeniedError("connection is input-only");
  }
  if (conn.owner() == options_.id) {
    // The owner serving the op is a span of its own; for a blocking
    // put (channel at capacity) its duration is the block time.
    // Inactive (a TLS read) when the calling context is unsampled.
    trace::ScopedSpan serve(&span_sink_, "owner.serve");
    SharedBuffer shared(std::move(payload));
    if (conn.is_queue()) {
      auto q = FindQueue(conn.container_bits());
      return q ? q->Put(ts, std::move(shared), deadline)
               : NotFoundError("queue");
    }
    auto ch = FindChannel(conn.container_bits());
    return ch ? ch->Put(ts, std::move(shared), deadline)
              : NotFoundError("channel");
  }
  PutReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = conn.is_queue();
  req.mode = conn.mode();
  req.slot = conn.slot();
  req.ts = ts;
  req.deadline_ms = EncodeDeadline(deadline);
  req.payload = std::move(payload);
  marshal::XdrEncoder enc(req.payload.size() + 96);
  EncodeRequestHeader(enc, Op::kPut, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(Buffer reply, Call(conn.owner(), enc.Take(), deadline));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  return hdr.status;
}

Result<ItemView> AddressSpace::Get(const Connection& conn, GetSpec spec,
                                   Deadline deadline) {
  if (!conn.valid()) return InvalidArgumentError("invalid connection");
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  if (conn.owner() == options_.id) {
    // Owner-side serving span; for a blocking get the duration is the
    // time parked waiting for the producer.
    trace::ScopedSpan serve(&span_sink_, "owner.serve");
    Result<ItemView> item = InternalError("unset");
    if (conn.is_queue()) {
      auto q = FindQueue(conn.container_bits());
      if (!q) return NotFoundError("queue");
      item = q->Get(conn.slot(), deadline);
    } else {
      auto ch = FindChannel(conn.container_bits());
      if (!ch) return NotFoundError("channel");
      item = ch->Get(conn.slot(), spec, deadline);
    }
    if (item.ok()) {
      stats_.bytes_got.fetch_add(item->payload.size(),
                                 std::memory_order_relaxed);
    }
    return item;
  }
  GetReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = conn.is_queue();
  req.mode = conn.mode();
  req.slot = conn.slot();
  req.spec = spec;
  req.deadline_ms = EncodeDeadline(deadline);
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kGet, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(Buffer reply, Call(conn.owner(), enc.Take(), deadline));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  ItemView view;
  DS_ASSIGN_OR_RETURN(view.timestamp, dec.GetI64());
  DS_ASSIGN_OR_RETURN(Buffer payload, dec.GetOpaque());
  view.payload = SharedBuffer(std::move(payload));
  stats_.bytes_got.fetch_add(view.payload.size(), std::memory_order_relaxed);
  return view;
}

Result<ItemView> AddressSpace::Get(const Connection& conn, Deadline deadline) {
  return Get(conn, GetSpec::Oldest(), deadline);
}

Status AddressSpace::Consume(const Connection& conn, Timestamp ts) {
  if (!conn.valid()) return InvalidArgumentError("invalid connection");
  stats_.consumes.fetch_add(1, std::memory_order_relaxed);
  if (conn.owner() == options_.id) {
    if (conn.is_queue()) {
      auto q = FindQueue(conn.container_bits());
      return q ? q->Consume(conn.slot(), ts) : NotFoundError("queue");
    }
    auto ch = FindChannel(conn.container_bits());
    return ch ? ch->Consume(conn.slot(), ts) : NotFoundError("channel");
  }
  ConsumeReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = conn.is_queue();
  req.mode = conn.mode();
  req.slot = conn.slot();
  req.ts = ts;
  req.until = false;
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kConsume, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(
      Buffer reply,
      Call(conn.owner(), enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  return hdr.status;
}

Status AddressSpace::ConsumeUntil(const Connection& conn, Timestamp ts) {
  if (!conn.valid()) return InvalidArgumentError("invalid connection");
  stats_.consumes.fetch_add(1, std::memory_order_relaxed);
  if (conn.is_queue()) {
    return InvalidArgumentError("consume-until is channel-only");
  }
  if (conn.owner() == options_.id) {
    auto ch = FindChannel(conn.container_bits());
    return ch ? ch->ConsumeUntil(conn.slot(), ts) : NotFoundError("channel");
  }
  ConsumeReq req;
  req.container_bits = conn.container_bits();
  req.is_queue = false;
  req.mode = conn.mode();
  req.slot = conn.slot();
  req.ts = ts;
  req.until = true;
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kConsume, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(
      Buffer reply,
      Call(conn.owner(), enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  return hdr.status;
}

Status AddressSpace::SetFilter(const Connection& conn,
                               const ItemFilter& filter) {
  if (!conn.valid()) return InvalidArgumentError("invalid connection");
  if (conn.is_queue()) {
    return InvalidArgumentError("filters apply to channels");
  }
  if (conn.owner() == options_.id) {
    auto ch = FindChannel(conn.container_bits());
    return ch ? ch->SetFilter(conn.slot(), filter) : NotFoundError("channel");
  }
  SetFilterReq req;
  req.container_bits = conn.container_bits();
  req.slot = conn.slot();
  req.filter = filter;
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kSetFilter, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(
      Buffer reply,
      Call(conn.owner(), enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  return hdr.status;
}

// --- handler functions -----------------------------------------------------------

Status AddressSpace::SetChannelGcHandler(ChannelId ch, GcHandler handler) {
  auto channel = FindChannel(ch.bits());
  if (!channel) {
    return FailedPreconditionError(
        "GC handlers install at the owner address space");
  }
  channel->set_gc_handler(std::move(handler));
  return OkStatus();
}

Status AddressSpace::SetQueueGcHandler(QueueId q, GcHandler handler) {
  auto queue = FindQueue(q.bits());
  if (!queue) {
    return FailedPreconditionError(
        "GC handlers install at the owner address space");
  }
  queue->set_gc_handler(std::move(handler));
  return OkStatus();
}

// --- name server ------------------------------------------------------------------

namespace {

// A follower's routing redirect (as opposed to a definitive
// kUnavailable like "replication lost quorum", which must surface).
bool IsNsRedirect(const Status& s) {
  return s.code() == StatusCode::kUnavailable &&
         s.message().rfind("not leader", 0) == 0;
}

Op MutationOp(NsMutation::Kind kind) {
  switch (kind) {
    case NsMutation::Kind::kRegister: return Op::kNsRegister;
    case NsMutation::Kind::kUnregister: return Op::kNsUnregister;
    case NsMutation::Kind::kPutSession: return Op::kSessionPut;
    case NsMutation::Kind::kDropSession: return Op::kSessionDrop;
    case NsMutation::Kind::kTickSession: return Op::kSessionTick;
    case NsMutation::Kind::kPurgeOwner: break;  // log-only, never routed
  }
  return Op::kReply;
}

void EncodeMutationBody(marshal::XdrEncoder& enc, const NsMutation& m) {
  switch (m.kind) {
    case NsMutation::Kind::kRegister:
      EncodeNsEntry(enc, m.entry);
      return;
    case NsMutation::Kind::kUnregister: {
      NsLookupReq req;
      req.name = m.name;
      req.Encode(enc);
      return;
    }
    case NsMutation::Kind::kPutSession:
      EncodeSessionRecord(enc, m.session);
      return;
    case NsMutation::Kind::kDropSession: {
      SessionIdReq req;
      req.session_id = m.session_id;
      req.Encode(enc);
      return;
    }
    case NsMutation::Kind::kTickSession: {
      SessionTickReq req;
      req.session_id = m.session_id;
      req.ticket = m.ticket;
      req.Encode(enc);
      return;
    }
    case NsMutation::Kind::kPurgeOwner:
      return;
  }
}

}  // namespace

std::vector<AsId> AddressSpace::NsTargets() const {
  if (!options_.ns_replicas.empty()) return options_.ns_replicas;
  if (ns_as_ != kInvalidAsId) return {ns_as_};
  return {};
}

void AddressSpace::NoteNsLeader(AsId leader) {
  ds::MutexLock lock(ns_route_mu_);
  ns_leader_hint_ = leader;
}

Status AddressSpace::StaleNsError() const {
  const AsId leader = replog_->leader();
  return UnavailableError(
      "ns lease stale; leader=" +
      (leader == kInvalidAsId ? std::string("none")
                              : std::to_string(AsIndex(leader))));
}

Status AddressSpace::ServeNsMutation(const NsMutation& m) {
  if (!replog_) {
    return name_server_ ? name_server_->Apply(m)
                        : FailedPreconditionError("not an ns replica");
  }
  return replog_->Append(EncodeNsMutation(m));
}

Result<Buffer> AddressSpace::CallNsService(
    const std::function<Buffer(std::uint64_t request_id)>& make_request,
    Deadline deadline) {
  std::vector<AsId> targets = NsTargets();
  if (targets.empty()) {
    return FailedPreconditionError("no name-server address space set");
  }
  // The last replica that answered definitively (usually the leader)
  // goes first; the rest keep replica order for deterministic rotation.
  {
    ds::MutexLock lock(ns_route_mu_);
    auto it = std::find(targets.begin(), targets.end(), ns_leader_hint_);
    if (it != targets.end()) std::rotate(targets.begin(), it, it + 1);
  }
  Status last = UnavailableError("name service unavailable");
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    for (AsId target : targets) {
      if (target == options_.id) continue;  // local paths already failed
      if (IsPeerDown(target)) {
        last = UnavailableError("ns replica declared dead");
        continue;
      }
      auto reply =
          Call(target, make_request(next_request_id_.fetch_add(1)), deadline);
      if (!reply.ok()) {
        last = reply.status();
        continue;  // transport failure: rotate
      }
      marshal::XdrDecoder dec(*reply);
      auto hdr = DecodeResponseHeader(dec);
      if (!hdr.ok()) {
        last = hdr.status();
        continue;
      }
      if (hdr->status.code() == StatusCode::kUnavailable) {
        // Redirect ("not leader"), stale lease, or lost quorum: note
        // any leader hint for future calls and keep rotating.
        last = hdr->status;
        const AsId hint = RepLog::LeaderHintFromMessage(hdr->status.message());
        if (hint != kInvalidAsId) NoteNsLeader(hint);
        continue;
      }
      // Definitive answer — ok or an application error (kNotFound,
      // kAlreadyExists, ...) that retrying elsewhere would not change.
      NoteNsLeader(target);
      return reply;
    }
    if (!deadline.infinite() && deadline.expired()) break;
    if (round + 1 < kRounds) SleepFor(Millis(100));  // let an election settle
  }
  return last;
}

Status AddressSpace::MutateNs(const NsMutation& m) {
  if (replog_) {
    Status s = replog_->Append(EncodeNsMutation(m));
    if (!IsNsRedirect(s)) return s;
    // This replica is a follower: fall through and route to the leader.
  } else if (name_server_) {
    return name_server_->Apply(m);
  }
  auto reply = CallNsService(
      [&m](std::uint64_t request_id) {
        marshal::XdrEncoder enc;
        EncodeRequestHeader(enc, MutationOp(m.kind), request_id);
        EncodeMutationBody(enc, m);
        return enc.Take();
      },
      InternalDeadline());
  if (!reply.ok()) return reply.status();
  marshal::XdrDecoder dec(*reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  return hdr.status;
}

Status AddressSpace::NsRegister(const NsEntry& entry) {
  stats_.ns_ops.fetch_add(1, std::memory_order_relaxed);
  // Stamp ownership before the entry crosses the wire: recovery purges
  // a dead space's names by this field. Entries arriving with ownership
  // already set (forwarded registrations) keep it; entries from end
  // devices get their host AS, since the host is what can die.
  NsMutation m;
  m.kind = NsMutation::Kind::kRegister;
  m.entry = entry;
  if (m.entry.owner_as == kInvalidAsId) m.entry.owner_as = options_.id;
  return MutateNs(m);
}

Status AddressSpace::NsUnregister(const std::string& name) {
  stats_.ns_ops.fetch_add(1, std::memory_order_relaxed);
  NsMutation m;
  m.kind = NsMutation::Kind::kUnregister;
  m.name = name;
  return MutateNs(m);
}

Result<NsEntry> AddressSpace::NsLookup(const std::string& name,
                                       Deadline deadline) {
  stats_.ns_ops.fetch_add(1, std::memory_order_relaxed);
  // Reads are served from the local replica while its lease view is
  // fresh — this is the payoff of replication: lookups keep working on
  // any survivor without a round trip.
  if (name_server_ && (!replog_ || replog_->LeaseFresh())) {
    return name_server_->Lookup(name, deadline);
  }
  NsLookupReq req;
  req.name = name;
  req.deadline_ms = EncodeDeadline(deadline);
  auto reply = CallNsService(
      [&req](std::uint64_t request_id) {
        marshal::XdrEncoder enc;
        EncodeRequestHeader(enc, Op::kNsLookup, request_id);
        req.Encode(enc);
        return enc.Take();
      },
      deadline);
  if (!reply.ok()) {
    if (name_server_) {
      // Degraded read: every peer replica is unreachable (we may be
      // the only survivor). A possibly-stale local answer beats total
      // refusal; docs/FAILURES.md spells out the trade.
      DS_LOG(kWarn) << "AS" << AsIndex(options_.id) << ": ns failover lost ("
                    << reply.status().message()
                    << "); serving stale local replica";
      return name_server_->Lookup(name, deadline);
    }
    return reply.status();
  }
  marshal::XdrDecoder dec(*reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  return DecodeNsEntry(dec);
}

Result<std::vector<NsEntry>> AddressSpace::NsList(const std::string& prefix) {
  stats_.ns_ops.fetch_add(1, std::memory_order_relaxed);
  if (name_server_ && (!replog_ || replog_->LeaseFresh())) {
    return name_server_->List(prefix);
  }
  NsLookupReq req;
  req.name = prefix;
  auto reply = CallNsService(
      [&req](std::uint64_t request_id) {
        marshal::XdrEncoder enc;
        EncodeRequestHeader(enc, Op::kNsList, request_id);
        req.Encode(enc);
        return enc.Take();
      },
      InternalDeadline());
  if (!reply.ok()) {
    if (name_server_) return name_server_->List(prefix);  // degraded read
    return reply.status();
  }
  marshal::XdrDecoder dec(*reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  DS_ASSIGN_OR_RETURN(std::uint32_t count, dec.GetU32());
  std::vector<NsEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DS_ASSIGN_OR_RETURN(NsEntry entry, DecodeNsEntry(dec));
    out.push_back(std::move(entry));
  }
  return out;
}

void AddressSpace::OnBecameNsLeader() {
  std::vector<AsId> dead;
  {
    ds::MutexLock lock(peers_mu_);
    dead.reserve(dead_peers_.size());
    for (std::uint32_t idx : dead_peers_) dead.push_back(static_cast<AsId>(idx));
  }
  for (AsId peer : dead) {
    NsMutation purge;
    purge.kind = NsMutation::Kind::kPurgeOwner;
    purge.owner = peer;
    Status s = replog_->Append(EncodeNsMutation(purge));
    if (!s.ok()) {
      DS_LOG(kWarn) << "post-election purge of AS" << AsIndex(peer)
                    << " names failed: " << s.message();
    }
  }
}

// --- end-device session registry -----------------------------------------------

Status AddressSpace::SessionPut(const SessionRecord& record) {
  stats_.ns_ops.fetch_add(1, std::memory_order_relaxed);
  NsMutation m;
  m.kind = NsMutation::Kind::kPutSession;
  m.session = record;
  return MutateNs(m);
}

Result<SessionRecord> AddressSpace::SessionGet(std::uint64_t session_id) {
  stats_.ns_ops.fetch_add(1, std::memory_order_relaxed);
  if (name_server_ && (!replog_ || replog_->LeaseFresh())) {
    return name_server_->GetSession(session_id);
  }
  SessionIdReq req;
  req.session_id = session_id;
  auto reply = CallNsService(
      [&req](std::uint64_t request_id) {
        marshal::XdrEncoder enc;
        EncodeRequestHeader(enc, Op::kSessionGet, request_id);
        req.Encode(enc);
        return enc.Take();
      },
      InternalDeadline());
  if (!reply.ok()) {
    if (name_server_) return name_server_->GetSession(session_id);  // degraded
    return reply.status();
  }
  marshal::XdrDecoder dec(*reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  return DecodeSessionRecord(dec);
}

Status AddressSpace::SessionDrop(std::uint64_t session_id) {
  stats_.ns_ops.fetch_add(1, std::memory_order_relaxed);
  NsMutation m;
  m.kind = NsMutation::Kind::kDropSession;
  m.session_id = session_id;
  return MutateNs(m);
}

Status AddressSpace::SessionTick(std::uint64_t session_id,
                                 std::uint64_t ticket) {
  stats_.ns_ops.fetch_add(1, std::memory_order_relaxed);
  NsMutation m;
  m.kind = NsMutation::Kind::kTickSession;
  m.session_id = session_id;
  m.ticket = ticket;
  return MutateNs(m);
}

// --- observability ---------------------------------------------------------------

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string AddressSpace::MetricsJson() {
  // Snapshot container pointers under containers_mu_, then query each
  // container outside it (each query takes only the container's own
  // leaf lock).
  std::vector<std::pair<std::uint32_t, std::shared_ptr<LocalChannel>>> channels;
  std::vector<std::pair<std::uint32_t, std::shared_ptr<LocalQueue>>> queues;
  {
    ds::MutexLock lock(containers_mu_);
    channels.assign(channels_.begin(), channels_.end());
    queues.assign(queues_.begin(), queues_.end());
  }

  std::string out;
  out += "{\"as\":" + std::to_string(AsIndex(options_.id));
  out += ",\"registry\":";
  registry_.WriteJson(out);
  out += ",\"spans\":";
  span_sink_.WriteJson(out);
  out += ",\"channels\":[";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto& [slot, ch] = channels[i];
    if (i != 0) out += ',';
    out += "{\"id\":" + std::to_string(ChannelId(options_.id, slot).bits());
    out += ",\"name\":";
    AppendJsonString(out, ch->attr().debug_name);
    out += ",\"live_items\":" + std::to_string(ch->live_items());
    const Timestamp frontier = ch->timestamp_frontier();
    out += ",\"frontier\":" +
           std::to_string(frontier == kInvalidTimestamp ? -1 : frontier);
    out += ",\"parked_gets\":" + std::to_string(ch->parked_get_waiters());
    out += ",\"parked_puts\":" + std::to_string(ch->parked_put_waiters());
    out += ",\"total_puts\":" + std::to_string(ch->total_puts());
    out += ",\"reclaimed\":" + std::to_string(ch->total_reclaimed());
    out += '}';
  }
  out += "],\"queues\":[";
  for (std::size_t i = 0; i < queues.size(); ++i) {
    const auto& [slot, q] = queues[i];
    if (i != 0) out += ',';
    out += "{\"id\":" + std::to_string(QueueId(options_.id, slot).bits());
    out += ",\"name\":";
    AppendJsonString(out, q->attr().debug_name);
    out += ",\"queued_items\":" + std::to_string(q->queued_items());
    out += ",\"in_flight\":" + std::to_string(q->in_flight_items());
    out += ",\"parked_gets\":" + std::to_string(q->parked_get_waiters());
    out += ",\"parked_puts\":" + std::to_string(q->parked_put_waiters());
    out += ",\"total_puts\":" + std::to_string(q->total_puts());
    out += ",\"reclaimed\":" + std::to_string(q->total_consumed());
    out += '}';
  }
  out += "]}";
  return out;
}

Result<std::string> AddressSpace::MetricsSnapshot(AsId target) {
  if (target == options_.id) return MetricsJson();
  MetricsReq req;
  req.target_as = AsIndex(target);
  marshal::XdrEncoder enc;
  EncodeRequestHeader(enc, Op::kMetrics, next_request_id_.fetch_add(1));
  req.Encode(enc);
  DS_ASSIGN_OR_RETURN(Buffer reply,
                      Call(target, enc.Take(), InternalDeadline()));
  marshal::XdrDecoder dec(reply);
  DS_ASSIGN_OR_RETURN(auto hdr, DecodeResponseHeader(dec));
  if (!hdr.status.ok()) return hdr.status;
  return dec.GetString();
}

Status AddressSpace::AdvertiseMetrics() {
  NsEntry entry;
  entry.name = "sys/metrics/" + std::to_string(AsIndex(options_.id));
  entry.kind = NsEntry::Kind::kOther;
  entry.id_bits = AsIndex(options_.id);
  entry.meta = "sys/metrics snapshot endpoint; clf=" +
               endpoint_->addr().ToString();
  entry.owner_as = options_.id;
  return NsRegister(entry);
}

Status AddressSpace::AdvertiseNsReplica() {
  if (!name_server_) return OkStatus();
  NsEntry entry;
  entry.name = "sys/ns/" + std::to_string(AsIndex(options_.id));
  entry.kind = NsEntry::Kind::kOther;
  entry.id_bits = AsIndex(options_.id);
  entry.meta = "name-server replica; clf=" + endpoint_->addr().ToString();
  entry.owner_as = options_.id;
  return NsRegister(entry);
}

// --- threads -----------------------------------------------------------------------

ThreadId AddressSpace::Spawn(std::string name, std::function<void()> body) {
  ds::MutexLock lock(threads_mu_);
  const std::uint32_t slot = next_thread_slot_++;
  // The advisory name becomes the thread's log prefix; "" inherits
  // this address space's context.
  threads_.emplace_back(Thread(std::move(name), std::move(body)));
  return ThreadId(options_.id, slot);
}

void AddressSpace::JoinThreads() {
  for (;;) {
    std::vector<Thread> batch;
    {
      ds::MutexLock lock(threads_mu_);
      if (threads_.empty()) return;
      batch.swap(threads_);
    }
    for (auto& t : batch) {
      if (t.joinable()) t.join();
    }
  }
}

std::size_t AddressSpace::live_threads() const {
  ds::MutexLock lock(threads_mu_);
  return threads_.size();
}

}  // namespace dstampede::core
