// Leader-lease replication log for the control plane (name server +
// session registry). Three address spaces each hold a full NameServer
// replica; every mutation is a log entry appended by the current
// leader and applied in index order on every replica through
// NameServer::Apply, so all replicas converge on the same state.
//
// The protocol is deliberately small — no external deps, no persistent
// storage (a restarted replica is a new member that catches up):
//
//  - Roles. The configured replica list is sorted; the first replica
//    not known dead is the rightful leader. Elections are therefore
//    deterministic: when a follower's lease on the current leader
//    expires (no heartbeat within `lease`, typically because CLF
//    declared the leader dead — `OnPeerDown`), it computes the first
//    live replica; if that is itself, it bumps the term, catches up
//    from the surviving replicas (kRepFetch), and starts
//    heartbeating. Term numbers fence stale leaders: a deposed leader
//    whose append reaches a replica with a higher term is rejected
//    and steps down.
//
//  - Appends. The leader serializes appends (one pipeline at a time),
//    applies locally, then pushes the entry to every live replica
//    (kRepAppend) and requires a majority of acks before reporting
//    success. A follower that acks behind the leader's last index is
//    caught up with a backlog push in the same round. Followers apply
//    entries strictly in index order; CLF's exactly-once-in-order
//    delivery keeps the common path gap-free.
//
//  - Leases. A majority-acked round (append or heartbeat) renews the
//    leader's lease; a leader that cannot reach a majority for
//    `lease` steps down, which bounds split-brain: a minority-side
//    leader stops serving before the majority side elects. Reads are
//    served locally on any replica but only while its lease view is
//    fresh (leader: unexpired lease; follower: heard the leader
//    within `lease`) — `LeaseFresh()` is the freshness check the
//    AddressSpace read path consults before answering from the local
//    replica.
//
// Known limitations (docs/FAILURES.md): entries a deposed leader
// applied locally but never got quorum for are not rolled back (the
// next election supersedes them silently), and the in-memory log is
// unbounded — both acceptable for a control plane whose mutation rate
// is session/registration churn, not data traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/thread.hpp"
#include "dstampede/core/wire.hpp"
#include "dstampede/marshal/xdr.hpp"

namespace dstampede::core {

class RepLog {
 public:
  struct Options {
    AsId self = kInvalidAsId;
    // Sorted ascending; replicas[0] is the bootstrap leader. Must
    // contain `self`.
    std::vector<AsId> replicas;
    // Leader validity window. A follower that has not heard a
    // heartbeat for this long starts an election; a leader that has
    // not majority-acked a round for this long steps down.
    Duration lease = Millis(1200);
    // Leader heartbeat cadence (also the follower election-check
    // cadence). Must be well under `lease`.
    Duration heartbeat = Millis(300);
    // Per-replica deadline for one append/fetch RPC.
    Duration rpc_deadline = Millis(600);
  };

  // Applies one committed log entry (an encoded NsMutation) to the
  // local state machine. Called in strict index order, possibly from
  // the ticker thread, a dispatcher thread, or an appender.
  using ApplyFn = std::function<void(const Buffer& entry)>;
  // Sends one framed replication request to a peer replica and returns
  // the raw response frame. The callee owns request-id assignment and
  // transport (AddressSpace::Call underneath).
  using SendFn = std::function<Result<Buffer>(
      AsId target, Op op, const std::function<void(marshal::XdrEncoder&)>& body,
      Deadline deadline)>;
  // True when CLF has declared the replica dead (election input).
  using PeerDeadFn = std::function<bool(AsId)>;

  RepLog(Options options, ApplyFn apply, SendFn send, PeerDeadFn peer_dead);
  ~RepLog();

  RepLog(const RepLog&) = delete;
  RepLog& operator=(const RepLog&) = delete;

  // Starts the ticker (heartbeats when leader, election checks when
  // follower). The bootstrap leader asserts its first lease on the
  // first tick.
  void Start();
  void Stop();

  // Invoked (off-lock, ticker thread) after this replica wins an
  // election — the address space re-drives dead-peer purges through
  // the new leader's log.
  void set_on_became_leader(std::function<void()> fn) {
    on_became_leader_ = std::move(fn);
  }

  // --- write path ------------------------------------------------------
  // Leader: appends, applies locally, replicates, and requires a
  // majority of acks. Followers return kUnavailable with a
  // "leader=<id>" hint (see LeaderHintFromMessage).
  Status Append(Buffer entry);

  // --- read-path freshness --------------------------------------------
  bool IsLeader() const;
  AsId leader() const;
  std::uint64_t term() const;
  // True while this replica may answer reads from its local state:
  // the leader inside its lease, or a follower that heard the leader
  // within the lease window.
  bool LeaseFresh() const;

  // --- wire handlers (AddressSpace dispatch) ---------------------------
  // Returns the ack to send (also when rejecting a stale term — the
  // status carries the rejection, the ack carries our term).
  Status HandleAppend(const RepAppendReq& req, RepAppendAck& ack);
  RepFetchResp HandleFetch(const RepFetchReq& req) const;

  // --- liveness inputs -------------------------------------------------
  void OnPeerDown(AsId peer);

  // --- observability ---------------------------------------------------
  std::uint64_t leader_changes() const {
    return leader_changes_.load(std::memory_order_relaxed);
  }
  std::uint64_t log_appends() const {
    return log_appends_.load(std::memory_order_relaxed);
  }
  std::uint64_t last_index() const;
  // Leader: entries the slowest contacted replica still misses.
  // Follower: entries this replica knows the leader has that it has
  // not applied yet. 0 when in sync.
  std::uint64_t replica_lag() const;

  // Extracts the numeric id from a "not leader; leader=<id>" hint;
  // kInvalidAsId when absent.
  static AsId LeaderHintFromMessage(const std::string& message);

 private:
  struct LogEntry {
    std::uint64_t term = 0;
    Buffer payload;
  };

  std::size_t QuorumLocked() const DS_REQUIRES(mu_);
  Status NotLeaderLocked() const DS_REQUIRES(mu_);
  // Applies `entry` at applied_+1 and advances. Caller guarantees
  // index order.
  void ApplyLocked(std::uint64_t entry_term, Buffer payload)
      DS_REQUIRES(mu_);
  // One replication round: pushes `fresh` (possibly empty = heartbeat)
  // plus any per-follower backlog, collects acks, renews or drops the
  // lease. Returns true when a majority (self included) acked.
  bool ReplicateRound();
  void TickerMain();
  void MaybeElect();
  void BecomeLeader();

  const Options options_;
  const ApplyFn apply_;
  const SendFn send_;
  const PeerDeadFn peer_dead_;
  std::function<void()> on_became_leader_;

  // Serializes append pipelines end-to-end (assign -> apply ->
  // replicate -> ack count); held across blocking replica RPCs by
  // design.
  ds::Mutex append_mu_{"replog.append_mu", ds::Mutex::kBlockingAllowed};

  mutable ds::Mutex mu_{"replog.mu"};
  std::uint64_t term_ DS_GUARDED_BY(mu_) = 1;
  AsId leader_ DS_GUARDED_BY(mu_) = kInvalidAsId;
  std::vector<LogEntry> log_ DS_GUARDED_BY(mu_);  // log_[i] = index i+1
  std::uint64_t applied_ DS_GUARDED_BY(mu_) = 0;
  TimePoint lease_until_ DS_GUARDED_BY(mu_){};          // leader lease
  TimePoint last_leader_contact_ DS_GUARDED_BY(mu_){};  // follower lease
  std::uint64_t leader_last_index_ DS_GUARDED_BY(mu_) = 0;
  // Leader's view of each follower's applied index.
  std::map<AsId, std::uint64_t> follower_applied_ DS_GUARDED_BY(mu_);
  // Replicas ever successfully contacted (quorum denominator grows as
  // the cluster bootstraps; never shrinks — a dead member still counts
  // against the majority).
  std::set<AsId> contacted_ DS_GUARDED_BY(mu_);
  std::set<AsId> down_ DS_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> leader_changes_{0};
  std::atomic<std::uint64_t> log_appends_{0};

  ds::Mutex tick_mu_{"replog.tick_mu"};
  ds::CondVar tick_cv_;
  bool stopping_ DS_GUARDED_BY(tick_mu_) = false;
  bool tick_now_ DS_GUARDED_BY(tick_mu_) = false;
  Thread ticker_;
};

}  // namespace dstampede::core
