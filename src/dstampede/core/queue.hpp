// LocalQueue: the owner-side implementation of a D-Stampede queue.
//
// Queues provide FIFO access to time-sequenced items and exist to
// exploit data parallelism (paper §3.1, Fig 3): a splitter puts
// frame-fragments sharing one timestamp; multiple worker threads get
// items, each item going to exactly one worker.
//
// Like channels, blocking is event-driven: a get that finds the queue
// empty (or a put that hits capacity) registers a continuation waiter
// instead of parking the calling thread, and the put/get/detach that
// resolves it runs the continuation. Get waiters are served in
// registration order, so delivery stays FIFO across blocked getters.
//
// An item a worker has taken stays accounted to that worker's
// connection until the worker consumes it; consuming fires the GC
// handler. Detaching a connection with unconsumed in-flight items
// returns them to the front of the queue so no data is silently lost
// when a worker leaves (dynamic start/stop).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/waiter.hpp"
#include "dstampede/core/channel.hpp"  // GcHandler, Get/PutCompletion
#include "dstampede/core/item.hpp"

namespace dstampede::core {

class LocalQueue {
 public:
  // `wheel` (optional, must outlive the queue) enforces deadlines of
  // parked async waiters; see LocalChannel.
  explicit LocalQueue(QueueAttr attr, TimerWheel* wheel = nullptr)
      : attr_(std::move(attr)), wheel_(wheel) {}

  const QueueAttr& attr() const { return attr_; }

  std::uint32_t Attach(ConnMode mode, std::string label);
  Status Detach(std::uint32_t slot);

  // FIFO put. Unlike channels, duplicate timestamps are legal: all
  // fragments of one frame share the frame's timestamp.
  Status Put(Timestamp ts, SharedBuffer payload, Deadline deadline);

  // Pops the head item; each item is delivered to exactly one getter.
  Result<ItemView> Get(std::uint32_t slot, Deadline deadline);

  // --- two-phase (try-else-register) API -------------------------------
  // Same contract as LocalChannel: `done` runs inline (return 0) when
  // the op resolves now, otherwise exactly once from the completing
  // thread (waiter id > 0 returned). Because a queue get is
  // destructive, exactly-once matters doubly here: the popped item is
  // delivered to the one continuation that owned the waiter record.
  std::uint64_t GetAsync(std::uint32_t slot, Deadline deadline,
                         GetCompletion done,
                         std::uint32_t origin = kNoWaiterOrigin,
                         bool use_timer = true);
  std::uint64_t PutAsync(Timestamp ts, SharedBuffer payload, Deadline deadline,
                         PutCompletion done,
                         std::uint32_t origin = kNoWaiterOrigin,
                         bool use_timer = true);
  bool CancelWaiter(std::uint64_t waiter_id, const Status& status);
  std::size_t CancelWaitersOf(std::uint32_t origin, const Status& status);

  // Acknowledges an in-flight item previously got by this connection;
  // the GC handler fires for it. Consumes the oldest in-flight item
  // with this timestamp (fragments share timestamps).
  Status Consume(std::uint32_t slot, Timestamp ts);

  void set_gc_handler(GcHandler handler);
  // Queue items are reclaimed by consume, not by sweeping; Sweep only
  // reports (and clears) accumulated notices for the GC service.
  std::vector<GcNotice> Sweep(std::uint64_t queue_bits);

  // Completes every parked waiter with kCancelled and fails subsequent
  // blocking calls; used when the owning address space shuts down.
  void Close();

  std::size_t queued_items() const;
  std::size_t in_flight_items() const;
  std::size_t parked_get_waiters() const;
  std::size_t parked_put_waiters() const;
  std::uint64_t total_puts() const {
    ds::MutexLock lock(mu_);
    return total_puts_;
  }
  std::uint64_t total_consumed() const {
    ds::MutexLock lock(mu_);
    return total_consumed_;
  }

  // Wires registry instruments (owner AS calls this once, before the
  // container is published). Also turns on reclaim-lag measurement:
  // puts stamp a birth time, consumes observe put->consume lag.
  void set_metrics(const StmMetrics& m) {
    ds::MutexLock lock(mu_);
    metrics_ = m;
  }

 private:
  struct Entry {
    Timestamp ts;
    SharedBuffer payload;
    std::uint64_t order;  // put order, for returning in-flight items
    // Birth time for the reclaim-lag histogram. Only stamped when the
    // queue is instrumented (default-constructed otherwise), so
    // uninstrumented queues skip the clock read per put.
    TimePoint put_at{};
  };
  struct ConnState {
    ConnMode mode;
    std::string label;
    std::vector<Entry> in_flight;
  };
  struct GetWaiter {
    std::uint32_t slot;
    GetCompletion done;
    std::uint32_t origin;
    TimerWheel::TimerId timer = 0;
  };
  struct PutWaiter {
    Timestamp ts;
    SharedBuffer payload;
    PutCompletion done;
    std::uint32_t origin;
    TimerWheel::TimerId timer = 0;
  };
  // Deferred work collected under mu_, run by Finish() after release.
  struct Wakeups {
    std::vector<std::function<void()>> completions;
    std::vector<TimerWheel::TimerId> timers;
  };

  // Phase-one attempts; nullopt = would block (park).
  std::optional<Result<ItemView>> TryGetLocked(std::uint32_t slot)
      DS_REQUIRES(mu_);
  std::optional<Status> TryPutLocked(Timestamp ts, SharedBuffer& payload)
      DS_REQUIRES(mu_);
  // Re-runs phase one for parked waiters to fixpoint: an admitted put
  // feeds parked gets, and a completed get frees capacity for parked
  // puts. Get waiters are scanned in id (registration) order: FIFO.
  void EvaluateWaitersLocked(Wakeups& out) DS_REQUIRES(mu_);
  void Finish(Wakeups wakeups) DS_EXCLUDES(mu_);

  QueueAttr attr_;
  TimerWheel* const wheel_;
  mutable ds::Mutex mu_{"queue.mu"};

  bool closed_ DS_GUARDED_BY(mu_) = false;
  std::deque<Entry> items_ DS_GUARDED_BY(mu_);
  std::map<std::uint32_t, ConnState> conns_ DS_GUARDED_BY(mu_);
  std::uint32_t next_slot_ DS_GUARDED_BY(mu_) = 1;
  std::uint64_t next_order_ DS_GUARDED_BY(mu_) = 0;

  std::map<std::uint64_t, GetWaiter> get_waiters_ DS_GUARDED_BY(mu_);
  std::map<std::uint64_t, PutWaiter> put_waiters_ DS_GUARDED_BY(mu_);
  std::uint64_t next_waiter_id_ DS_GUARDED_BY(mu_) = 1;

  GcHandler gc_handler_ DS_GUARDED_BY(mu_);
  std::vector<GcNotice> pending_notices_ DS_GUARDED_BY(mu_);
  std::uint64_t total_puts_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t total_consumed_ DS_GUARDED_BY(mu_) = 0;

  // Observability (see StmMetrics). Null instruments = uninstrumented.
  StmMetrics metrics_ DS_GUARDED_BY(mu_);
};

}  // namespace dstampede::core
