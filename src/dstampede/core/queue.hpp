// LocalQueue: the owner-side implementation of a D-Stampede queue.
//
// Queues provide FIFO access to time-sequenced items and exist to
// exploit data parallelism (paper §3.1, Fig 3): a splitter puts
// frame-fragments sharing one timestamp; multiple worker threads get
// items, each item going to exactly one worker.
//
// An item a worker has taken stays accounted to that worker's
// connection until the worker consumes it; consuming fires the GC
// handler. Detaching a connection with unconsumed in-flight items
// returns them to the front of the queue so no data is silently lost
// when a worker leaves (dynamic start/stop).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/core/channel.hpp"  // GcHandler
#include "dstampede/core/item.hpp"

namespace dstampede::core {

class LocalQueue {
 public:
  explicit LocalQueue(QueueAttr attr) : attr_(std::move(attr)) {}

  const QueueAttr& attr() const { return attr_; }

  std::uint32_t Attach(ConnMode mode, std::string label);
  Status Detach(std::uint32_t slot);

  // FIFO put. Unlike channels, duplicate timestamps are legal: all
  // fragments of one frame share the frame's timestamp.
  Status Put(Timestamp ts, SharedBuffer payload, Deadline deadline);

  // Pops the head item; each item is delivered to exactly one getter.
  Result<ItemView> Get(std::uint32_t slot, Deadline deadline);

  // Acknowledges an in-flight item previously got by this connection;
  // the GC handler fires for it. Consumes the oldest in-flight item
  // with this timestamp (fragments share timestamps).
  Status Consume(std::uint32_t slot, Timestamp ts);

  void set_gc_handler(GcHandler handler);
  // Queue items are reclaimed by consume, not by sweeping; Sweep only
  // reports (and clears) accumulated notices for the GC service.
  std::vector<GcNotice> Sweep(std::uint64_t queue_bits);

  // Wakes every blocked waiter with kCancelled and fails subsequent
  // blocking calls; used when the owning address space shuts down.
  void Close();

  std::size_t queued_items() const;
  std::size_t in_flight_items() const;
  std::uint64_t total_puts() const { return total_puts_; }
  std::uint64_t total_consumed() const { return total_consumed_; }

 private:
  struct Entry {
    Timestamp ts;
    SharedBuffer payload;
    std::uint64_t order;  // put order, for returning in-flight items
  };
  struct ConnState {
    ConnMode mode;
    std::string label;
    std::vector<Entry> in_flight;
  };

  QueueAttr attr_;
  mutable std::mutex mu_;
  std::condition_variable cv_;

  bool closed_ = false;
  std::deque<Entry> items_;
  std::map<std::uint32_t, ConnState> conns_;
  std::uint32_t next_slot_ = 1;
  std::uint64_t next_order_ = 0;

  GcHandler gc_handler_;
  std::vector<GcNotice> pending_notices_;
  std::uint64_t total_puts_ = 0;
  std::uint64_t total_consumed_ = 0;
};

}  // namespace dstampede::core
