// LocalQueue: the owner-side implementation of a D-Stampede queue.
//
// Queues provide FIFO access to time-sequenced items and exist to
// exploit data parallelism (paper §3.1, Fig 3): a splitter puts
// frame-fragments sharing one timestamp; multiple worker threads get
// items, each item going to exactly one worker.
//
// An item a worker has taken stays accounted to that worker's
// connection until the worker consumes it; consuming fires the GC
// handler. Detaching a connection with unconsumed in-flight items
// returns them to the front of the queue so no data is silently lost
// when a worker leaves (dynamic start/stop).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/core/channel.hpp"  // GcHandler
#include "dstampede/core/item.hpp"

namespace dstampede::core {

class LocalQueue {
 public:
  explicit LocalQueue(QueueAttr attr) : attr_(std::move(attr)) {}

  const QueueAttr& attr() const { return attr_; }

  std::uint32_t Attach(ConnMode mode, std::string label);
  Status Detach(std::uint32_t slot);

  // FIFO put. Unlike channels, duplicate timestamps are legal: all
  // fragments of one frame share the frame's timestamp.
  Status Put(Timestamp ts, SharedBuffer payload, Deadline deadline);

  // Pops the head item; each item is delivered to exactly one getter.
  Result<ItemView> Get(std::uint32_t slot, Deadline deadline);

  // Acknowledges an in-flight item previously got by this connection;
  // the GC handler fires for it. Consumes the oldest in-flight item
  // with this timestamp (fragments share timestamps).
  Status Consume(std::uint32_t slot, Timestamp ts);

  void set_gc_handler(GcHandler handler);
  // Queue items are reclaimed by consume, not by sweeping; Sweep only
  // reports (and clears) accumulated notices for the GC service.
  std::vector<GcNotice> Sweep(std::uint64_t queue_bits);

  // Wakes every blocked waiter with kCancelled and fails subsequent
  // blocking calls; used when the owning address space shuts down.
  void Close();

  std::size_t queued_items() const;
  std::size_t in_flight_items() const;
  std::uint64_t total_puts() const {
    ds::MutexLock lock(mu_);
    return total_puts_;
  }
  std::uint64_t total_consumed() const {
    ds::MutexLock lock(mu_);
    return total_consumed_;
  }

 private:
  struct Entry {
    Timestamp ts;
    SharedBuffer payload;
    std::uint64_t order;  // put order, for returning in-flight items
  };
  struct ConnState {
    ConnMode mode;
    std::string label;
    std::vector<Entry> in_flight;
  };

  QueueAttr attr_;
  mutable ds::Mutex mu_{"queue.mu"};
  ds::CondVar cv_;

  bool closed_ DS_GUARDED_BY(mu_) = false;
  std::deque<Entry> items_ DS_GUARDED_BY(mu_);
  std::map<std::uint32_t, ConnState> conns_ DS_GUARDED_BY(mu_);
  std::uint32_t next_slot_ DS_GUARDED_BY(mu_) = 1;
  std::uint64_t next_order_ DS_GUARDED_BY(mu_) = 0;

  GcHandler gc_handler_ DS_GUARDED_BY(mu_);
  std::vector<GcNotice> pending_notices_ DS_GUARDED_BY(mu_);
  std::uint64_t total_puts_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t total_consumed_ DS_GUARDED_BY(mu_) = 0;
};

}  // namespace dstampede::core
