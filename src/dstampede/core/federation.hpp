// Federation: one D-Stampede application spanning multiple clusters.
//
// The paper's current system supports "only one cluster involved in an
// application" (§3.3) and names multi-cluster support as the first item
// of future work (§6): "extend the D-Stampede system to support
// multiple heterogeneous clusters connected to a plethora of end
// devices participating in the same D-Stampede application". This class
// implements that extension:
//
//   * every cluster gets a disjoint AsId range, so container ids stay
//     system-wide unique across the federation;
//   * all address spaces of all clusters are wired into one CLF mesh —
//     a channel created in cluster B is reachable from a thread (or an
//     end device's surrogate) in cluster A with the same calls;
//   * cluster 0's first address space hosts the one name server, which
//     every address space (and thus every end device) resolves against;
//   * clusters may be heterogeneous: each has its own size, dispatcher
//     width and GC cadence, and each can run its own Listener for the
//     end devices near it.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "dstampede/common/sync.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::core {

class Federation {
 public:
  // Per-cluster knobs ("heterogeneous clusters").
  struct ClusterSpec {
    std::size_t num_address_spaces = 1;
    std::size_t dispatcher_threads = 8;
    Duration gc_interval = Millis(20);
    bool shm_fastpath = false;
  };

  struct Options {
    std::vector<ClusterSpec> clusters;
    // AsId range reserved per cluster; cluster i uses
    // [i*stride, (i+1)*stride). Plenty for any realistic cluster.
    std::uint32_t as_id_stride = 4096;
    // Failure detection across the federation mesh (must be symmetric,
    // so these are federation-wide rather than per-cluster). All-zero
    // keeps the fail-free model; see Runtime::Options.
    std::size_t clf_max_retransmits = 0;
    Duration peer_keepalive_interval = Duration::zero();
    Duration peer_timeout = Duration::zero();
    Duration internal_rpc_deadline = Millis(10000);
    // Control-plane HA: number of NameServer replicas hosted by the
    // first `ns_replicas` spaces of cluster 0 (clamped to its size).
    // 1 keeps the paper's single name server. Every other cluster's
    // spaces route name-service calls across the replica set.
    std::size_t ns_replicas = 1;
    Duration ns_lease = Millis(1200);
    Duration ns_heartbeat = Millis(300);
  };

  static Result<std::unique_ptr<Federation>> Create(const Options& options);
  ~Federation() { Shutdown(); }

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  std::size_t size() const { return clusters_.size(); }
  Runtime& cluster(std::size_t i) { return *clusters_.at(i); }

  // Adds an address space to cluster `i`, wired to the entire
  // federation (all clusters learn it; it learns everyone).
  Result<AddressSpace*> AddAddressSpace(std::size_t i);

  // Edge fast-fail: true once CLF failure detection has declared every
  // address space of cluster `i` dead. Federated lookups and data calls
  // against a dead cluster already fail kUnavailable immediately (the
  // sender's peer table short-circuits them); this accessor lets
  // gateways and listeners skip a dead cluster without issuing a call.
  // A space that comes back with a fresh CLF incarnation is un-counted,
  // so a recovered cluster is reported live again. Requires failure
  // detection to be enabled in Options.
  // Note: cluster-down is a data-plane notion (every space dead). The
  // control plane has its own, replication-aware availability check
  // below — with a replicated name server, losing the bootstrap NS
  // space no longer means losing the name service.
  bool IsClusterDown(std::size_t i) const;
  // How many address spaces of cluster `i` are currently declared dead.
  std::size_t DeadSpacesIn(std::size_t i) const;
  // Control-plane availability, consulting the replicated view: true
  // once a majority of the name-server replica set is dead (the
  // survivors can no longer elect or renew a lease). Unreplicated:
  // true once the single NS space is dead.
  bool IsNameServiceDown() const;
  // The federation's name-server replica set (cluster 0).
  const std::vector<AsId>& ns_replica_ids() const { return ns_replica_ids_; }

  void Shutdown();

 private:
  Federation() = default;
  void NotePeerDown(AsId dead);
  void NotePeerUp(AsId alive);

  Options options_;
  std::vector<std::unique_ptr<Runtime>> clusters_;
  // Cluster 0's NameServer replica spaces ({AS 0} when unreplicated).
  std::vector<AsId> ns_replica_ids_;

  // Dead-peer bookkeeping, fed by every address space's PeerDown and
  // PeerUp observers (cluster index -> set of dead AS indices within
  // it; a revived incarnation is erased again).
  mutable ds::Mutex down_mu_{"federation.down_mu"};
  std::vector<std::set<std::uint32_t>> down_ DS_GUARDED_BY(down_mu_);
};

}  // namespace dstampede::core
