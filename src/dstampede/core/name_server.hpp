// Name server (paper §3.1): application threads register channels,
// queues and their intended use under string names; any thread that
// starts up anywhere in the Octopus can look them up to join the
// computation. This is the local registry object; it lives in one
// address space and is reached remotely through the STM wire protocol
// (and through the client protocol from end devices).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/core/item.hpp"
#include "dstampede/core/wire.hpp"

namespace dstampede::core {

class NameServer {
 public:
  // Registers name -> entry. A duplicate name is an error: names are
  // the application's rendezvous points.
  Status Register(const NsEntry& entry);

  Status Unregister(const std::string& name);

  // Blocking lookup: waits until the name appears (dynamic start/stop —
  // a display thread can wait for the mixer's output channel to be
  // registered) or the deadline expires.
  Result<NsEntry> Lookup(const std::string& name,
                         Deadline deadline = Deadline::Poll());

  // Snapshot of all entries whose name begins with `prefix`.
  std::vector<NsEntry> List(const std::string& prefix = "") const;

  // Drops every entry registered by `owner` (failure recovery: a dead
  // address space's names must not satisfy later lookups). Returns how
  // many entries were removed.
  std::size_t PurgeOwner(AsId owner);

  std::size_t size() const;

  // --- End-device session registry (client resilience layer) ---
  //
  // Sessions live in a registry separate from named entries on
  // purpose: PurgeOwner destroys a dead space's *names*, but a
  // session record hosted on a dead space is exactly what a listener
  // needs to migrate the session to a live space. Records are
  // upserted (surrogates mirror after every state change).
  Status PutSession(const SessionRecord& record);
  Result<SessionRecord> GetSession(std::uint64_t session_id) const;
  Status DropSession(std::uint64_t session_id);
  // Advances last_executed_ticket monotonically (never rewinds).
  Status TickSession(std::uint64_t session_id, std::uint64_t ticket);
  std::size_t session_count() const;

  // --- replication (core/replog.hpp) -----------------------------------
  //
  // Applies one replicated mutation. Every replica — leader included —
  // routes log entries through here, so the local and replicated write
  // paths share one state machine. Every Apply is deterministic and
  // commutes into the same final state on every replica that applies
  // the same log prefix; mutations that target missing state
  // (re-applied Unregister, TickSession for a dropped session) return
  // their usual error to the *caller* but leave all replicas
  // identical.
  Status Apply(const NsMutation& m);

  // --- observability ---------------------------------------------------
  std::uint64_t total_lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_purged() const {
    return purged_.load(std::memory_order_relaxed);
  }

 private:
  mutable ds::Mutex mu_{"name_server.mu"};
  ds::CondVar cv_;  // signalled on Register (Lookup blocks on it)
  std::map<std::string, NsEntry> entries_ DS_GUARDED_BY(mu_);
  std::map<std::uint64_t, SessionRecord> sessions_ DS_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> purged_{0};  // entries dropped by PurgeOwner
};

}  // namespace dstampede::core
