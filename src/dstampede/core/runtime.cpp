#include "dstampede/core/runtime.hpp"

#include <algorithm>

#include "dstampede/common/logging.hpp"

namespace dstampede::core {

Result<std::unique_ptr<Runtime>> Runtime::Create(const Options& options) {
  if (options.num_address_spaces == 0) {
    return InvalidArgumentError("need at least one address space");
  }
  auto rt = std::unique_ptr<Runtime>(new Runtime());
  rt->options_ = options;
  for (std::size_t i = 0; i < options.num_address_spaces; ++i) {
    DS_ASSIGN_OR_RETURN(AddressSpace * unused, rt->AddAddressSpace());
    (void)unused;
  }
  return rt;
}

Result<AddressSpace*> Runtime::AddAddressSpace() {
  AddressSpace::Options as_opts;
  as_opts.id = static_cast<AsId>(options_.first_as_id +
                                 static_cast<std::uint32_t>(spaces_.size()));
  as_opts.dispatcher_threads = options_.dispatcher_threads;
  as_opts.shm_fastpath = options_.shm_fastpath;
  as_opts.gc_interval = options_.gc_interval;
  as_opts.host_name_server = spaces_.empty() && options_.host_name_server;
  // Every space — replica or not — carries the replica list so its
  // name-service calls route to the leader and fail over on replica
  // death. Spaces added dynamically later use the same (fixed) list.
  const std::size_t replica_count =
      options_.host_name_server
          ? std::min(std::max<std::size_t>(options_.ns_replicas, 1),
                     std::max<std::size_t>(options_.num_address_spaces, 1))
          : 0;
  if (!options_.ns_replica_ids.empty()) {
    // Federation secondary: the replicas live in another cluster.
    as_opts.ns_replicas = options_.ns_replica_ids;
  } else if (replica_count > 1) {
    for (std::size_t i = 0; i < replica_count; ++i) {
      as_opts.ns_replicas.push_back(
          static_cast<AsId>(options_.first_as_id +
                            static_cast<std::uint32_t>(i)));
    }
    as_opts.ns_lease = options_.ns_lease;
    as_opts.ns_heartbeat = options_.ns_heartbeat;
  }
  as_opts.faults = options_.faults;
  as_opts.internal_rpc_deadline = options_.internal_rpc_deadline;
  as_opts.clf_max_retransmits = options_.clf_max_retransmits;
  as_opts.peer_keepalive_interval = options_.peer_keepalive_interval;
  as_opts.peer_timeout = options_.peer_timeout;
  DS_ASSIGN_OR_RETURN(auto space, AddressSpace::Create(as_opts));

  // Full mesh: everyone learns the newcomer; the newcomer learns everyone.
  for (auto& existing : spaces_) {
    existing->AddPeer(space->id(), space->clf_addr());
    space->AddPeer(existing->id(), existing->clf_addr());
  }
  const AsId ns = options_.name_server_as == kInvalidAsId
                      ? static_cast<AsId>(options_.first_as_id)
                      : options_.name_server_as;
  space->SetNameServerAs(ns);
  // Advertise the sys/metrics endpoint so tools (dsctl) can discover
  // every space through the name server. Only when this cluster hosts
  // its own NS: a federation-secondary cluster may not be able to
  // reach its NS yet, and a blocking registration here would stall
  // cluster bring-up.
  if (options_.host_name_server) {
    Status advertised = space->AdvertiseMetrics();
    if (!advertised.ok()) {
      DS_LOG(kWarn) << "sys/metrics advertisement failed: "
                    << advertised.message();
    }
    // Replica spaces also advertise sys/ns/<id>, which is how clients
    // and listeners discover the replica set for failover (each ad is
    // owned by its replica, so a dead replica's ad is purged and the
    // advertised set tracks the live membership).
    if (space->local_name_server() != nullptr) {
      advertised = space->AdvertiseNsReplica();
      if (!advertised.ok()) {
        DS_LOG(kWarn) << "sys/ns advertisement failed: "
                      << advertised.message();
      }
    }
  }
  spaces_.push_back(std::move(space));
  return spaces_.back().get();
}

void Runtime::Shutdown() {
  for (auto& space : spaces_) {
    if (space) space->Shutdown();
  }
}

}  // namespace dstampede::core
