#include "dstampede/core/replog.hpp"

#include <algorithm>
#include <utility>

#include "dstampede/common/logging.hpp"

namespace dstampede::core {

RepLog::RepLog(Options options, ApplyFn apply, SendFn send,
               PeerDeadFn peer_dead)
    : options_(std::move(options)),
      apply_(std::move(apply)),
      send_(std::move(send)),
      peer_dead_(std::move(peer_dead)) {
  ds::MutexLock lock(mu_);
  leader_ = options_.replicas.empty() ? options_.self : options_.replicas[0];
  contacted_.insert(options_.self);
  // Everyone starts agreeing on the bootstrap leader; followers give
  // it one full lease before contesting, the leader asserts its first
  // lease optimistically (renewed or dropped by the first round).
  last_leader_contact_ = Now();
  if (leader_ == options_.self) lease_until_ = Now() + options_.lease;
}

RepLog::~RepLog() { Stop(); }

void RepLog::Start() {
  ds::MutexLock lock(tick_mu_);
  if (ticker_.joinable() || stopping_) return;
  ticker_ = Thread([this] { TickerMain(); });
}

void RepLog::Stop() {
  {
    ds::MutexLock lock(tick_mu_);
    if (stopping_) {
      if (!ticker_.joinable()) return;
    }
    stopping_ = true;
  }
  tick_cv_.NotifyAll();
  if (ticker_.joinable()) ticker_.join();
}

std::size_t RepLog::QuorumLocked() const {
  return contacted_.size() / 2 + 1;
}

Status RepLog::NotLeaderLocked() const {
  if (leader_ == kInvalidAsId || leader_ == options_.self) {
    return UnavailableError("not leader; leader=none");
  }
  return UnavailableError("not leader; leader=" +
                          std::to_string(AsIndex(leader_)));
}

void RepLog::ApplyLocked(std::uint64_t entry_term, Buffer payload) {
  log_.push_back(LogEntry{entry_term, payload});
  applied_ = log_.size();
  log_appends_.fetch_add(1, std::memory_order_relaxed);
  apply_(payload);
}

bool RepLog::ReplicateRound() {
  struct Push {
    AsId target = kInvalidAsId;
    RepAppendReq req;
  };
  std::vector<Push> pushes;
  {
    ds::MutexLock lock(mu_);
    if (leader_ != options_.self) return false;
    for (AsId replica : options_.replicas) {
      if (replica == options_.self || down_.count(replica) != 0) continue;
      Push push;
      push.target = replica;
      push.req.term = term_;
      push.req.leader_as = AsIndex(options_.self);
      push.req.leader_last_index = applied_;
      // Push this follower's backlog (bounded per round; the next
      // round continues). An uncontacted follower starts from 0 and
      // dedups on its side by index.
      auto it = follower_applied_.find(replica);
      const std::uint64_t start = it != follower_applied_.end() ? it->second : 0;
      push.req.first_index = start + 1;
      const std::uint64_t limit = std::min<std::uint64_t>(applied_, start + 256);
      for (std::uint64_t idx = start + 1; idx <= limit; ++idx) {
        push.req.entries.push_back(log_[idx - 1].payload);
      }
      pushes.push_back(std::move(push));
    }
  }

  std::size_t acks = 1;  // self
  for (auto& push : pushes) {
    auto response = send_(
        push.target, Op::kRepAppend,
        [&push](marshal::XdrEncoder& enc) { push.req.Encode(enc); },
        Deadline::After(options_.rpc_deadline));
    if (!response.ok()) continue;
    marshal::XdrDecoder dec(*response);
    auto header = DecodeResponseHeader(dec);
    if (!header.ok()) continue;
    auto ack = RepAppendAck::Decode(dec);
    if (ack.ok() && ack->term > push.req.term) {
      // A newer leader exists somewhere: step down immediately.
      ds::MutexLock lock(mu_);
      if (ack->term > term_) {
        term_ = ack->term;
        leader_ = kInvalidAsId;
        lease_until_ = TimePoint::min();
        leader_changes_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    if (!header->status.ok()) continue;
    ++acks;
    ds::MutexLock lock(mu_);
    contacted_.insert(push.target);
    if (ack.ok()) follower_applied_[push.target] = ack->applied_index;
  }

  ds::MutexLock lock(mu_);
  if (leader_ != options_.self) return false;
  if (acks >= QuorumLocked()) {
    lease_until_ = Now() + options_.lease;
    last_leader_contact_ = Now();
    return true;
  }
  if (Now() >= lease_until_) {
    // Could not reach a majority for a whole lease: a majority-side
    // election may have superseded us. Stop serving.
    DS_LOG(kWarn) << "replog AS" << AsIndex(options_.self)
                  << ": lease lost at term " << term_ << ", stepping down";
    leader_ = kInvalidAsId;
    leader_changes_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

void RepLog::TickerMain() {
  for (;;) {
    {
      ds::MutexLock lock(tick_mu_);
      if (!stopping_ && !tick_now_) {
        tick_cv_.WaitUntil(tick_mu_, Deadline::After(options_.heartbeat));
      }
      if (stopping_) return;
      tick_now_ = false;
    }
    bool leading;
    {
      ds::MutexLock lock(mu_);
      leading = leader_ == options_.self;
    }
    if (leading) {
      ds::MutexLock pipeline(append_mu_);
      ReplicateRound();
    } else {
      MaybeElect();
    }
  }
}

void RepLog::MaybeElect() {
  {
    ds::MutexLock lock(mu_);
    if (leader_ == options_.self) return;
    if (Now() < last_leader_contact_ + options_.lease) return;
    // Refresh liveness from CLF (a peer may have been declared dead
    // without traffic through OnPeerDown yet).
    for (AsId replica : options_.replicas) {
      if (replica != options_.self && peer_dead_(replica)) {
        down_.insert(replica);
      }
    }
    // Deterministic rule: the first live replica is the rightful
    // leader. If that is someone else (possibly the current leader,
    // merely slow), wait for its heartbeat rather than duel.
    AsId candidate = kInvalidAsId;
    for (AsId replica : options_.replicas) {
      if (down_.count(replica) == 0) {
        candidate = replica;
        break;
      }
    }
    if (candidate != options_.self) return;
    // Don't claim a term we cannot defend: a minority partition
    // would churn terms without ever renewing a lease. The bar is a
    // majority of the *configured* replica set — the contacted-set
    // quorum (QuorumLocked) is a bootstrap affordance for the seed
    // leader and would read as 1 on a replica that never led.
    std::size_t live = 0;
    for (AsId replica : options_.replicas) {
      if (down_.count(replica) == 0) ++live;
    }
    if (live < options_.replicas.size() / 2 + 1) return;
  }
  BecomeLeader();
}

void RepLog::BecomeLeader() {
  {
    ds::MutexLock pipeline(append_mu_);
    std::vector<AsId> peers;
    std::uint64_t from_index;
    {
      ds::MutexLock lock(mu_);
      if (leader_ == options_.self) return;
      from_index = applied_ + 1;
      for (AsId replica : options_.replicas) {
        if (replica != options_.self && down_.count(replica) == 0) {
          peers.push_back(replica);
        }
      }
    }

    // Catch up from every surviving replica before serving: the old
    // leader may have replicated entries we never saw.
    for (AsId peer : peers) {
      RepFetchReq fetch;
      fetch.from_index = from_index;
      auto response =
          send_(peer, Op::kRepFetch,
                [&fetch](marshal::XdrEncoder& enc) { fetch.Encode(enc); },
                Deadline::After(options_.rpc_deadline));
      if (!response.ok()) continue;
      marshal::XdrDecoder dec(*response);
      auto header = DecodeResponseHeader(dec);
      if (!header.ok() || !header->status.ok()) continue;
      auto resp = RepFetchResp::Decode(dec);
      if (!resp.ok()) continue;
      ds::MutexLock lock(mu_);
      if (resp->term > term_) term_ = resp->term;
      for (std::size_t i = 0; i < resp->entries.size(); ++i) {
        const std::uint64_t idx = resp->first_index + i;
        if (idx == applied_ + 1) {
          ApplyLocked(term_, std::move(resp->entries[i]));
        }
      }
      contacted_.insert(peer);
      from_index = applied_ + 1;
    }

    {
      ds::MutexLock lock(mu_);
      ++term_;
      leader_ = options_.self;
      // First lease comes from the announcement round below.
      lease_until_ = TimePoint::min();
      leader_changes_.fetch_add(1, std::memory_order_relaxed);
      DS_LOG(kInfo) << "replog AS" << AsIndex(options_.self)
                    << ": elected leader at term " << term_;
    }
    ReplicateRound();
  }
  // Outside the pipeline lock: the callback re-drives purges through
  // Append, which takes it again.
  if (on_became_leader_) on_became_leader_();
}

Status RepLog::Append(Buffer entry) {
  ds::MutexLock pipeline(append_mu_);
  {
    ds::MutexLock lock(mu_);
    if (leader_ != options_.self) return NotLeaderLocked();
    ApplyLocked(term_, std::move(entry));
  }
  if (ReplicateRound()) return OkStatus();
  {
    ds::MutexLock lock(mu_);
    // The lease may still be fresh (one slow follower, quorum of a
    // larger round pending); the entry is applied locally and the
    // next round pushes the backlog.
    if (leader_ == options_.self && Now() < lease_until_) return OkStatus();
  }
  return UnavailableError("ns replication lost quorum");
}

bool RepLog::IsLeader() const {
  ds::MutexLock lock(mu_);
  return leader_ == options_.self;
}

AsId RepLog::leader() const {
  ds::MutexLock lock(mu_);
  return leader_;
}

std::uint64_t RepLog::term() const {
  ds::MutexLock lock(mu_);
  return term_;
}

bool RepLog::LeaseFresh() const {
  ds::MutexLock lock(mu_);
  if (leader_ == options_.self) return Now() < lease_until_;
  if (leader_ == kInvalidAsId) return false;
  return Now() < last_leader_contact_ + options_.lease;
}

Status RepLog::HandleAppend(const RepAppendReq& req, RepAppendAck& ack) {
  const AsId req_leader = static_cast<AsId>(req.leader_as);
  ds::MutexLock lock(mu_);
  ack.term = term_;
  ack.applied_index = applied_;
  if (req.term < term_) {
    return FailedPreconditionError("stale term");
  }
  if (req.term == term_ && leader_ != kInvalidAsId && leader_ != req_leader) {
    // Same-term conflict (should not happen under deterministic
    // election); keep the incumbent.
    return FailedPreconditionError("conflicting leader");
  }
  if (term_ != req.term || leader_ != req_leader) {
    if (leader_ != req_leader) {
      leader_changes_.fetch_add(1, std::memory_order_relaxed);
    }
    term_ = req.term;
    leader_ = req_leader;
  }
  last_leader_contact_ = Now();
  leader_last_index_ = req.leader_last_index;
  contacted_.insert(req_leader);
  for (std::size_t i = 0; i < req.entries.size(); ++i) {
    const std::uint64_t idx = req.first_index + i;
    if (idx <= applied_) continue;  // duplicate (re-push after an ack loss)
    if (idx != applied_ + 1) break;  // gap; the ack triggers a backlog push
    ApplyLocked(req.term, req.entries[i]);
  }
  ack.term = term_;
  ack.applied_index = applied_;
  return OkStatus();
}

RepFetchResp RepLog::HandleFetch(const RepFetchReq& req) const {
  ds::MutexLock lock(mu_);
  RepFetchResp resp;
  resp.term = term_;
  resp.applied_index = applied_;
  const std::uint64_t from = std::max<std::uint64_t>(req.from_index, 1);
  resp.first_index = from;
  for (std::uint64_t idx = from; idx <= applied_; ++idx) {
    resp.entries.push_back(log_[idx - 1].payload);
  }
  return resp;
}

void RepLog::OnPeerDown(AsId peer) {
  bool poke = false;
  {
    ds::MutexLock lock(mu_);
    bool member = false;
    for (AsId replica : options_.replicas) member = member || replica == peer;
    if (!member) return;
    down_.insert(peer);
    if (peer == leader_) {
      // Expire the follower lease so the next tick elects instead of
      // waiting out a leader that can never speak again (CLF death is
      // permanent per epoch).
      last_leader_contact_ = TimePoint::min();
      poke = true;
    }
  }
  if (poke) {
    {
      ds::MutexLock lock(tick_mu_);
      tick_now_ = true;
    }
    tick_cv_.NotifyAll();
  }
}

std::uint64_t RepLog::last_index() const {
  ds::MutexLock lock(mu_);
  return applied_;
}

std::uint64_t RepLog::replica_lag() const {
  ds::MutexLock lock(mu_);
  if (leader_ == options_.self) {
    std::uint64_t lag = 0;
    for (AsId replica : contacted_) {
      if (replica == options_.self || down_.count(replica) != 0) continue;
      auto it = follower_applied_.find(replica);
      const std::uint64_t got = it != follower_applied_.end() ? it->second : 0;
      lag = std::max(lag, applied_ - std::min(applied_, got));
    }
    return lag;
  }
  return leader_last_index_ - std::min(leader_last_index_, applied_);
}

AsId RepLog::LeaderHintFromMessage(const std::string& message) {
  const auto pos = message.find("leader=");
  if (pos == std::string::npos) return kInvalidAsId;
  const char* p = message.c_str() + pos + 7;
  if (*p < '0' || *p > '9') return kInvalidAsId;
  std::uint64_t value = 0;
  while (*p >= '0' && *p <= '9') value = value * 10 + (*p++ - '0');
  if (value >= 0xffffffffu) return kInvalidAsId;
  return static_cast<AsId>(static_cast<std::uint32_t>(value));
}

}  // namespace dstampede::core
