#include "dstampede/core/rt_sync.hpp"

#include "dstampede/common/clock.hpp"

namespace dstampede::core {

RtSync::RtSync(Duration tick, Duration tolerance, SlipHandler on_slip)
    : tick_(tick), tolerance_(tolerance), on_slip_(std::move(on_slip)) {
  Start();
}

void RtSync::Start() { next_tick_ = Now() + tick_; }

Status RtSync::Synchronize() {
  ++ticks_;
  const TimePoint now = Now();
  if (now <= next_tick_) {
    SleepUntil(next_tick_);
    next_tick_ += tick_;
    return OkStatus();
  }
  if (now <= next_tick_ + tolerance_) {
    // Within tolerance: no wait, keep the schedule.
    next_tick_ += tick_;
    return OkStatus();
  }
  ++slips_;
  const std::int64_t slip = ToMicros(now - (next_tick_ + tolerance_));
  if (on_slip_) on_slip_(slip);
  // Re-anchor: the slipped time is not made up (soft real time).
  next_tick_ = now + tick_;
  return TimeoutError("real-time slip");
}

}  // namespace dstampede::core
