// Real-time synchrony (paper §3.1, borrowed from Beehive): a thread
// declares real-time "ticks" plus a tolerance and a slippage handler.
// Each Synchronize() waits until the next tick if the thread is early;
// if it is late by more than the tolerance the handler runs and the
// schedule re-anchors so one hiccup does not cascade.
//
// Example (the paper's): a camera paces itself to 30 frames/second,
// using absolute frame numbers as timestamps:
//
//   RtSync pace(Millis(33), Millis(5), [&](auto slip) { drop_frame(); });
//   pace.Start();
//   for (Timestamp frame = 0;; ++frame) {
//     grab(frame); put(channel, frame, image);
//     (void)pace.Synchronize();
//   }
#pragma once

#include <cstdint>
#include <functional>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/status.hpp"

namespace dstampede::core {

class RtSync {
 public:
  // Called with how far past tolerance the thread was (microseconds).
  using SlipHandler = std::function<void(std::int64_t slip_micros)>;

  RtSync(Duration tick, Duration tolerance, SlipHandler on_slip = nullptr);

  // (Re)anchors the tick schedule at now.
  void Start();

  // Blocks until the next tick boundary if early. If later than
  // tick+tolerance, invokes the slippage handler, re-anchors, and
  // returns kTimeout so callers can branch on the slip.
  Status Synchronize();

  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t slips() const { return slips_; }

 private:
  Duration tick_;
  Duration tolerance_;
  SlipHandler on_slip_;
  TimePoint next_tick_;
  std::uint64_t ticks_ = 0;
  std::uint64_t slips_ = 0;
};

}  // namespace dstampede::core
