// AddressSpace: one D-Stampede runtime endpoint.
//
// The paper's computation model (Fig 2) is a dynamic graph of threads
// and channels spread over address spaces; this class is one such
// address space. It owns the channels and queues created in it, runs a
// CLF endpoint plus a dispatcher pool that services STM requests from
// peer address spaces, hosts (optionally) the name server, runs the GC
// service, and exposes the location-transparent STM API: the same
// Connect/Put/Get/Consume calls work whether the container lives here
// or in a peer — exactly the paper's "uniform set of API calls".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dstampede/clf/endpoint.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/metrics.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/thread.hpp"
#include "dstampede/common/thread_pool.hpp"
#include "dstampede/common/trace.hpp"
#include "dstampede/common/waiter.hpp"
#include "dstampede/core/channel.hpp"
#include "dstampede/core/gc.hpp"
#include "dstampede/core/item.hpp"
#include "dstampede/core/name_server.hpp"
#include "dstampede/core/queue.hpp"
#include "dstampede/core/replog.hpp"
#include "dstampede/core/wire.hpp"

namespace dstampede::core {

// Operation counters for one address space. All relaxed atomics: these
// are monitoring data, not synchronization.
struct AsStats {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> consumes{0};
  std::atomic<std::uint64_t> attaches{0};
  std::atomic<std::uint64_t> detaches{0};
  std::atomic<std::uint64_t> ns_ops{0};
  std::atomic<std::uint64_t> remote_calls{0};      // RPCs sent to peers
  std::atomic<std::uint64_t> requests_served{0};   // requests executed here
  std::atomic<std::uint64_t> bytes_put{0};
  std::atomic<std::uint64_t> bytes_got{0};
};

// A thread's binding to a channel or queue, in input and/or output
// mode. Value type; cheap to copy between the threads of one program
// but semantically owned by the connector (disconnect once).
class Connection {
 public:
  Connection() = default;

  bool valid() const { return slot_ != 0; }
  std::uint64_t container_bits() const { return container_bits_; }
  bool is_queue() const { return is_queue_; }
  ConnMode mode() const { return mode_; }
  AsId owner() const { return owner_; }
  std::uint32_t slot() const { return slot_; }

  // Normally obtained from AddressSpace::Connect or the client library;
  // public so those runtimes (and tests) can materialize handles that
  // crossed the wire.
  Connection(std::uint64_t bits, bool is_queue, ConnMode mode, AsId owner,
             std::uint32_t slot)
      : container_bits_(bits), is_queue_(is_queue), mode_(mode), owner_(owner),
        slot_(slot) {}

 private:
  std::uint64_t container_bits_ = 0;
  bool is_queue_ = false;
  ConnMode mode_ = ConnMode::kInput;
  AsId owner_ = kInvalidAsId;
  std::uint32_t slot_ = 0;
};

class AddressSpace {
 public:
  struct Options {
    AsId id = static_cast<AsId>(0);
    std::uint16_t clf_port = 0;       // 0: pick a free port
    std::size_t dispatcher_threads = 8;
    bool shm_fastpath = false;        // CLF fast path for in-process peers
    Duration gc_interval = Millis(20);
    bool host_name_server = false;    // exactly one AS per application
    clf::FaultInjector::Config faults;
    // Deadline for the runtime's own control-plane RPCs (create-on,
    // attach, detach, consume, ns ops). Data-plane Put/Get keep the
    // caller's deadline.
    Duration internal_rpc_deadline = Millis(10000);
    // --- cluster failure detection (all-zero: paper model, peers are
    // trusted to live forever; see docs "Failure model") --------------
    std::size_t clf_max_retransmits = 0;           // 0 = retransmit forever
    Duration peer_keepalive_interval = Duration::zero();
    Duration peer_timeout = Duration::zero();
    // --- control-plane replication (core/replog.hpp) ------------------
    // When this list names more than one space and contains `id`, this
    // AS hosts a NameServer replica wired into the leader-lease
    // replication log (host_name_server is then redundant). Every AS —
    // replica or not — uses the list to route mutations to the leader
    // and to fail reads over to a surviving replica; it must be
    // identical (and sorted) on every space of the application.
    std::vector<AsId> ns_replicas;
    Duration ns_lease = Millis(1200);
    Duration ns_heartbeat = Millis(300);
  };

  static Result<std::unique_ptr<AddressSpace>> Create(const Options& options);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  AsId id() const { return options_.id; }
  const transport::SockAddr& clf_addr() const { return endpoint_->addr(); }

  // --- topology ---------------------------------------------------------
  // Tells this AS how to reach a peer (Runtime wires the full mesh; a
  // dynamically joining AS is added to everyone).
  void AddPeer(AsId peer, const transport::SockAddr& addr);
  // Which AS hosts the name server (may be this one).
  void SetNameServerAs(AsId ns);

  // --- containers ---------------------------------------------------------
  Result<ChannelId> CreateChannel(const ChannelAttr& attr = {});
  Result<QueueId> CreateQueue(const QueueAttr& attr = {});
  // Creates the container in a peer address space (the videoconf server
  // program creates the mixer channel in N_M, §4).
  Result<ChannelId> CreateChannelOn(AsId owner, const ChannelAttr& attr = {});
  Result<QueueId> CreateQueueOn(AsId owner, const QueueAttr& attr = {});

  // --- plumbing -------------------------------------------------------
  Result<Connection> Connect(ChannelId ch, ConnMode mode,
                             std::string label = {});
  Result<Connection> Connect(QueueId q, ConnMode mode, std::string label = {});
  Status Disconnect(const Connection& conn);

  // --- I/O --------------------------------------------------------------
  Status Put(const Connection& conn, Timestamp ts, Buffer payload,
             Deadline deadline = Deadline::Infinite());
  Result<ItemView> Get(const Connection& conn, GetSpec spec,
                       Deadline deadline = Deadline::Infinite());
  // Queue get (FIFO). Also works on channels as Get(Oldest).
  Result<ItemView> Get(const Connection& conn,
                       Deadline deadline = Deadline::Infinite());
  Status Consume(const Connection& conn, Timestamp ts);
  Status ConsumeUntil(const Connection& conn, Timestamp ts);

  // Selective-attention filter on a channel input connection (§6
  // future work, implemented): the connection only sees matching
  // items and holds no GC claim on the rest.
  Status SetFilter(const Connection& conn, const ItemFilter& filter);

  // --- handler functions (owner-side) -----------------------------------
  Status SetChannelGcHandler(ChannelId ch, GcHandler handler);
  Status SetQueueGcHandler(QueueId q, GcHandler handler);

  // --- name server --------------------------------------------------------
  Status NsRegister(const NsEntry& entry);
  Status NsUnregister(const std::string& name);
  Result<NsEntry> NsLookup(const std::string& name,
                           Deadline deadline = Deadline::Poll());
  Result<std::vector<NsEntry>> NsList(const std::string& prefix = "");

  // --- end-device session registry (client resilience layer) -----------
  // Like the Ns* calls: local when this AS hosts the name server,
  // forwarded over CLF otherwise. Surrogates mirror their session state
  // through these so any listener can rehydrate a session whose TCP
  // link dropped or whose host AS died.
  Status SessionPut(const SessionRecord& record);
  Result<SessionRecord> SessionGet(std::uint64_t session_id);
  Status SessionDrop(std::uint64_t session_id);
  Status SessionTick(std::uint64_t session_id, std::uint64_t ticket);

  // --- threads -----------------------------------------------------------
  // POSIX-like D-Stampede threads (§3.1). The runtime tracks them so
  // JoinThreads() can wait for the computation to finish.
  ThreadId Spawn(std::string name, std::function<void()> body);
  void JoinThreads();
  std::size_t live_threads() const;

  // --- failure visibility -----------------------------------------------
  // True once the CLF layer declared this peer dead (and it has not
  // come back with a fresh incarnation).
  bool IsPeerDown(AsId peer) const;
  // Registers a callback fired (from the CLF receiver thread, outside
  // internal locks) whenever a peer AS is declared dead. Listeners use
  // this to migrate parked surrogate sessions off dead hosts; the
  // Federation uses it for cluster-level fast-fail. Observers cannot be
  // removed — keep captured state alive as long as this AS.
  void AddPeerDownObserver(std::function<void(AsId)> observer);
  // Counterpart fired when a dead peer comes back with a fresh
  // incarnation (CLF epoch reset): the Federation un-counts it from its
  // cluster-down bookkeeping. Same threading and lifetime rules as
  // AddPeerDownObserver.
  void AddPeerUpObserver(std::function<void(AsId)> observer);
  // True once Shutdown() began: the surrogate layer parks its devices
  // instead of letting a dying AS answer them with kCancelled.
  bool stopped() const { return stopping_.load(); }
  // Which AS hosts the name server (kInvalidAsId if unset).
  AsId name_server_as() const { return ns_as_; }
  // The CLF endpoint's outgoing fault injector; tests and the ablation
  // bench install deterministic partitions through it.
  clf::FaultInjector& fault_injector() { return endpoint_->fault_injector(); }
  clf::Endpoint& clf_endpoint() { return *endpoint_; }

  // --- observability ------------------------------------------------------
  // This space's metrics registry and span sink (see
  // docs/OBSERVABILITY.md). Instruments live as long as the AS.
  metrics::Registry& metrics_registry() { return registry_; }
  trace::SpanSink& span_sink() { return span_sink_; }
  // JSON snapshot of this space: registry + recorded/active spans +
  // per-container space-time state (occupancy, frontier, parked
  // waiters, GC counters).
  std::string MetricsJson();
  // Snapshot of `target` — local, or fetched over CLF when the target
  // is a peer (the sys/metrics RPC, forwarded like the NS ops).
  Result<std::string> MetricsSnapshot(AsId target);
  // Registers "sys/metrics/<id>" with the name server so tools (dsctl)
  // can discover every space in the cluster.
  Status AdvertiseMetrics();
  // Registers "sys/ns/<id>": this AS hosts a name-server replica.
  // Clients and listeners list the sys/ns/ prefix to learn the replica
  // set for failover; the ad is owned by this AS, so it disappears
  // from the set when this replica dies. No-op when this AS hosts no
  // replica.
  Status AdvertiseNsReplica();

  // --- services ------------------------------------------------------------
  GcService& gc() { return *gc_; }
  // Null unless this AS hosts the name server.
  NameServer* local_name_server() { return name_server_.get(); }
  // Null unless this AS hosts a NameServer replica in a replicated
  // (ns_replicas.size() > 1) deployment.
  RepLog* replication() { return replog_.get(); }
  const clf::EndpointStats& transport_stats() const {
    return endpoint_->stats();
  }
  const AsStats& stats() const { return stats_; }

  // Owner-side lookup, used by surrogates and tests.
  std::shared_ptr<LocalChannel> FindChannel(std::uint64_t bits);
  std::shared_ptr<LocalQueue> FindQueue(std::uint64_t bits);

  // Stops the dispatcher, closes containers (waking blocked waiters),
  // fails in-flight calls. Idempotent. Does not join Spawn()ed threads;
  // call JoinThreads() for that.
  void Shutdown();

 private:
  explicit AddressSpace(const Options& options);

  // Caches hot-path instruments and registers pull providers; runs once
  // during Create, after the endpoint/dispatcher/name server exist.
  void InitObservability();

  struct PendingCall {
    // One node for every in-flight call: a thread completing call A
    // while holding call B's mu would be an ordering bug worth hearing
    // about, and the shared name keeps the detector graph bounded.
    ds::Mutex mu{"as.pending_call.mu"};
    ds::CondVar cv;
    bool done DS_GUARDED_BY(mu) = false;
    Status status DS_GUARDED_BY(mu);    // transport-level failure
    Buffer response DS_GUARDED_BY(mu);  // encoded reply when status.ok()
    AsId target = kInvalidAsId;  // immutable after Call registers it
  };

  // A peer thread's attachment to one of our containers, remembered so
  // the slot can be detached if the peer dies (cluster-side analogue of
  // the surrogate's Reap).
  struct RemoteAttach {
    std::uint64_t container_bits = 0;
    bool is_queue = false;
    std::uint32_t slot = 0;
  };

  // Sends an encoded request to a peer AS and waits for the reply.
  Result<Buffer> Call(AsId target, Buffer request, Deadline deadline);
  Result<transport::SockAddr> PeerAddr(AsId peer) const;
  Deadline InternalDeadline() const {
    return Deadline::After(options_.internal_rpc_deadline);
  }

  void ReceiveLoop();
  void DispatchRequest(transport::SockAddr from, Buffer message);
  // Decodes and executes one request; returns the encoded reply.
  // `origin` is the requesting peer AS when known (CLF dispatch);
  // kInvalidAsId for surrogate-driven client requests.
  Buffer ProcessRequest(std::span<const std::uint8_t> message,
                        AsId origin = kInvalidAsId);
  // Serves kGet/kPut against locally-owned containers through the
  // two-phase waiter API: the try phase runs on the dispatcher worker,
  // and when the op would block, a continuation waiter (carrying a
  // once-only DeferredReply) is registered and the worker returns to
  // the pool — the thread that later resolves the wait (putter,
  // consumer, GC sweep, timer wheel, peer death, close) encodes and
  // sends the reply. Returns false when the request is not one of
  // those ops (or targets a container owned elsewhere): the caller
  // falls back to the synchronous ProcessRequest path.
  bool ServeDeferred(std::span<const std::uint8_t> message, AsId origin,
                     const transport::SockAddr& from);

  // Fired by the CLF endpoint (its receiver thread) on peer death /
  // resurrection; translates transport addresses to AS ids and runs
  // the recovery sequence.
  void OnPeerDown(const transport::SockAddr& addr);
  void OnPeerUp(const transport::SockAddr& addr);

  // --- replicated name-service plumbing --------------------------------
  // Local-first mutation entry point behind the public Ns*/Session*
  // wrappers: leader appends to the log, everyone else routes to the
  // leader with hint-guided failover.
  Status MutateNs(const NsMutation& m);
  // Serving side for mutations arriving over CLF at a replica: append
  // if leader, else answer with the "not leader; leader=<id>" redirect
  // (the calling wrapper retries — no forwarding chains between
  // replicas).
  Status ServeNsMutation(const NsMutation& m);
  // kUnavailable carrying this replica's current leader hint, returned
  // for reads while the local lease view is stale.
  Status StaleNsError() const;
  // One bounded failover loop: tries the last known leader first, then
  // rotates through the replica set, following "leader=<id>" hints and
  // pausing between rounds so an election can settle. Returns the raw
  // reply frame of the first definitive answer.
  Result<Buffer> CallNsService(
      const std::function<Buffer(std::uint64_t request_id)>& make_request,
      Deadline deadline);
  // Replica set when replicated, else the single ns_as_ (may be empty).
  std::vector<AsId> NsTargets() const;
  void NoteNsLeader(AsId leader);
  // Election callback: the new leader re-drives PurgeOwner for every
  // peer already known dead, so purges the old leader issued (or died
  // before issuing) are not lost.
  void OnBecameNsLeader();

  // Typed op executors (shared by the CLF dispatcher and, via public
  // wrappers, the client surrogates).
 public:
  // Executes an STM op encoded per wire.hpp against this AS's local
  // containers/name server. Used by surrogate threads, which field
  // client calls "on behalf of the end device" (§3.2.2). The request
  // span must start at the op field.
  Buffer ExecuteWireRequest(std::span<const std::uint8_t> message) {
    return ProcessRequest(message);
  }

 private:
  Options options_;
  AsStats stats_;
  // Observability state is declared before (so destroyed after) every
  // component that caches instrument pointers into it: containers,
  // endpoint, dispatcher, surrogates via metrics_registry().
  metrics::Registry registry_;
  trace::SpanSink span_sink_;
  // Cached hot-path instruments (stable addresses inside registry_).
  metrics::Counter* m_dispatch_requests_ = nullptr;
  metrics::Counter* m_dispatch_deferred_ = nullptr;
  metrics::Counter* m_dropped_or_expired_ = nullptr;
  StmMetrics stm_metrics_;
  std::unique_ptr<clf::Endpoint> endpoint_;
  // Deadline service for parked container waiters. Declared before the
  // container maps so it outlives every channel/queue holding a raw
  // pointer to it; Shutdown() joins its thread before the endpoint is
  // torn down so late timer callbacks cannot touch a dead endpoint.
  std::unique_ptr<TimerWheel> wheel_;
  std::unique_ptr<ThreadPool> dispatcher_;
  std::unique_ptr<GcService> gc_;
  std::unique_ptr<NameServer> name_server_;
  // Replication log over name_server_ (null unless this AS is one of
  // options_.ns_replicas in a multi-replica deployment). Declared
  // after name_server_ so the apply callback's target outlives it.
  std::unique_ptr<RepLog> replog_;
  // Route preference: last replica that answered a name-service call
  // definitively (usually the leader). Leaf lock.
  mutable ds::Mutex ns_route_mu_{"as.ns_route_mu"};
  AsId ns_leader_hint_ DS_GUARDED_BY(ns_route_mu_) = kInvalidAsId;

  mutable ds::Mutex peers_mu_{"as.peers_mu"};
  std::unordered_map<std::uint32_t, transport::SockAddr> peers_
      DS_GUARDED_BY(peers_mu_);
  std::unordered_map<transport::SockAddr, AsId> peer_by_addr_
      DS_GUARDED_BY(peers_mu_);
  std::unordered_set<std::uint32_t> dead_peers_ DS_GUARDED_BY(peers_mu_);
  // Set during single-threaded setup (Create/Runtime wiring), read-only
  // afterwards; deliberately unguarded.
  AsId ns_as_ = kInvalidAsId;

  // Leaf lock: held only to copy the observer list, never while firing.
  ds::Mutex peer_observers_mu_{"as.peer_observers_mu"};
  std::vector<std::function<void(AsId)>> peer_down_observers_
      DS_GUARDED_BY(peer_observers_mu_);
  std::vector<std::function<void(AsId)>> peer_up_observers_
      DS_GUARDED_BY(peer_observers_mu_);

  ds::Mutex remote_attach_mu_{"as.remote_attach_mu"};
  std::unordered_map<std::uint32_t, std::vector<RemoteAttach>>
      remote_attachments_ DS_GUARDED_BY(remote_attach_mu_);

  // May be held while taking a container's own lock (Shutdown closes
  // every container under it); never while calling into CLF.
  ds::Mutex containers_mu_{"as.containers_mu"};
  std::unordered_map<std::uint32_t, std::shared_ptr<LocalChannel>> channels_
      DS_GUARDED_BY(containers_mu_);
  std::unordered_map<std::uint32_t, std::shared_ptr<LocalQueue>> queues_
      DS_GUARDED_BY(containers_mu_);
  std::uint32_t next_container_slot_ DS_GUARDED_BY(containers_mu_) = 1;

  // Never held while locking a PendingCall's mu (both Call and the
  // receive/recovery paths release one before taking the other).
  ds::Mutex calls_mu_{"as.calls_mu"};
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingCall>> calls_
      DS_GUARDED_BY(calls_mu_);
  std::atomic<std::uint64_t> next_request_id_{1};

  mutable ds::Mutex threads_mu_{"as.threads_mu"};
  std::vector<Thread> threads_ DS_GUARDED_BY(threads_mu_);
  std::uint32_t next_thread_slot_ DS_GUARDED_BY(threads_mu_) = 1;

  std::atomic<bool> stopping_{false};
  Thread receiver_;
};

}  // namespace dstampede::core
