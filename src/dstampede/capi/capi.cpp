// Implementation of the flat C API (dstampede.h) over the C++ runtime.
#include "dstampede/capi/dstampede.h"

#include <cstring>

#include "dstampede/core/rt_sync.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

struct spd_runtime {
  std::unique_ptr<core::Runtime> runtime;
};

struct spd_rt_sync {
  std::unique_ptr<core::RtSync> sync;
};

namespace {

spd_status ToC(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return SPD_OK;
    case StatusCode::kInvalidArgument: return SPD_ERR_INVALID_ARGUMENT;
    case StatusCode::kNotFound: return SPD_ERR_NOT_FOUND;
    case StatusCode::kAlreadyExists: return SPD_ERR_ALREADY_EXISTS;
    case StatusCode::kFailedPrecondition: return SPD_ERR_FAILED_PRECONDITION;
    case StatusCode::kPermissionDenied: return SPD_ERR_PERMISSION_DENIED;
    case StatusCode::kTimeout: return SPD_ERR_TIMEOUT;
    case StatusCode::kUnavailable: return SPD_ERR_UNAVAILABLE;
    case StatusCode::kConnectionClosed: return SPD_ERR_CONNECTION_CLOSED;
    case StatusCode::kResourceExhausted: return SPD_ERR_RESOURCE_EXHAUSTED;
    case StatusCode::kGarbageCollected: return SPD_ERR_GARBAGE_COLLECTED;
    case StatusCode::kCancelled: return SPD_ERR_CANCELLED;
    case StatusCode::kInternal: return SPD_ERR_INTERNAL;
  }
  return SPD_ERR_INTERNAL;
}

Deadline ToDeadline(int64_t timeout_ms) {
  if (timeout_ms < 0) return Deadline::Infinite();
  if (timeout_ms == 0) return Deadline::Poll();
  return Deadline::AfterMillis(timeout_ms);
}

core::AddressSpace* AsOf(spd_runtime* rt, int as_index) {
  if (rt == nullptr || rt->runtime == nullptr) return nullptr;
  if (as_index < 0 ||
      static_cast<std::size_t>(as_index) >= rt->runtime->size()) {
    return nullptr;
  }
  return &rt->runtime->as(static_cast<std::size_t>(as_index));
}

bool ValidConn(const spd_conn* conn) {
  return conn != nullptr && conn->slot != 0 && conn->mode >= 1 &&
         conn->mode <= 3;
}

core::Connection ToConnection(const spd_conn& conn) {
  return core::Connection(conn.container_bits, conn.is_queue != 0,
                          static_cast<core::ConnMode>(conn.mode),
                          ChannelId::FromBits(conn.container_bits).owner(),
                          conn.slot);
}

spd_status CopyOut(const SharedBuffer& payload, void* buf, size_t buf_len,
                   size_t* item_len) {
  if (item_len != nullptr) *item_len = payload.size();
  if (payload.size() > buf_len) return SPD_ERR_BUFFER_TOO_SMALL;
  if (payload.size() > 0 && buf != nullptr) {
    std::memcpy(buf, payload.data(), payload.size());
  }
  return SPD_OK;
}

}  // namespace

extern "C" {

spd_status spd_runtime_create(int num_address_spaces, spd_runtime** out) {
  if (out == nullptr || num_address_spaces <= 0) {
    return SPD_ERR_INVALID_ARGUMENT;
  }
  core::Runtime::Options options;
  options.num_address_spaces = static_cast<std::size_t>(num_address_spaces);
  auto runtime = core::Runtime::Create(options);
  if (!runtime.ok()) return ToC(runtime.status());
  *out = new spd_runtime{std::move(runtime).value()};
  return SPD_OK;
}

void spd_runtime_destroy(spd_runtime* rt) {
  if (rt == nullptr) return;
  rt->runtime->Shutdown();
  delete rt;
}

int spd_runtime_size(const spd_runtime* rt) {
  return rt == nullptr ? 0 : static_cast<int>(rt->runtime->size());
}

spd_status spd_chan_create(spd_runtime* rt, int as_index, size_t capacity,
                           uint64_t* chan_out) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || chan_out == nullptr) return SPD_ERR_INVALID_ARGUMENT;
  core::ChannelAttr attr;
  attr.capacity_items = capacity;
  auto created = as->CreateChannel(attr);
  if (!created.ok()) return ToC(created.status());
  *chan_out = created->bits();
  return SPD_OK;
}

spd_status spd_queue_create(spd_runtime* rt, int as_index, size_t capacity,
                            uint64_t* queue_out) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || queue_out == nullptr) return SPD_ERR_INVALID_ARGUMENT;
  core::QueueAttr attr;
  attr.capacity_items = capacity;
  auto created = as->CreateQueue(attr);
  if (!created.ok()) return ToC(created.status());
  *queue_out = created->bits();
  return SPD_OK;
}

spd_status spd_chan_connect(spd_runtime* rt, int as_index, uint64_t chan,
                            int mode, spd_conn* conn_out) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || conn_out == nullptr || mode < 1 || mode > 3) {
    return SPD_ERR_INVALID_ARGUMENT;
  }
  auto conn = as->Connect(ChannelId::FromBits(chan),
                          static_cast<core::ConnMode>(mode), "c-api");
  if (!conn.ok()) return ToC(conn.status());
  *conn_out = spd_conn{chan, 0, static_cast<uint32_t>(mode), conn->slot()};
  return SPD_OK;
}

spd_status spd_queue_connect(spd_runtime* rt, int as_index, uint64_t queue,
                             int mode, spd_conn* conn_out) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || conn_out == nullptr || mode < 1 || mode > 3) {
    return SPD_ERR_INVALID_ARGUMENT;
  }
  auto conn = as->Connect(QueueId::FromBits(queue),
                          static_cast<core::ConnMode>(mode), "c-api");
  if (!conn.ok()) return ToC(conn.status());
  *conn_out = spd_conn{queue, 1, static_cast<uint32_t>(mode), conn->slot()};
  return SPD_OK;
}

spd_status spd_disconnect(spd_runtime* rt, int as_index,
                          const spd_conn* conn) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || !ValidConn(conn)) return SPD_ERR_INVALID_ARGUMENT;
  return ToC(as->Disconnect(ToConnection(*conn)));
}

spd_status spd_put_item(spd_runtime* rt, int as_index, const spd_conn* conn,
                        spd_timestamp ts, const void* data, size_t len,
                        int64_t timeout_ms) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || !ValidConn(conn) || (data == nullptr && len > 0)) {
    return SPD_ERR_INVALID_ARGUMENT;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  return ToC(as->Put(ToConnection(*conn), ts, Buffer(bytes, bytes + len),
                     ToDeadline(timeout_ms)));
}

spd_status spd_get_item(spd_runtime* rt, int as_index, const spd_conn* conn,
                        spd_timestamp ts, void* buf, size_t buf_len,
                        size_t* item_len, int64_t timeout_ms) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || !ValidConn(conn)) return SPD_ERR_INVALID_ARGUMENT;
  auto item = as->Get(ToConnection(*conn), core::GetSpec::Exact(ts),
                      ToDeadline(timeout_ms));
  if (!item.ok()) return ToC(item.status());
  return CopyOut(item->payload, buf, buf_len, item_len);
}

spd_status spd_get_next(spd_runtime* rt, int as_index, const spd_conn* conn,
                        spd_timestamp* ts_out, void* buf, size_t buf_len,
                        size_t* item_len, int64_t timeout_ms) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || !ValidConn(conn)) return SPD_ERR_INVALID_ARGUMENT;
  auto item = as->Get(ToConnection(*conn), ToDeadline(timeout_ms));
  if (!item.ok()) return ToC(item.status());
  if (ts_out != nullptr) *ts_out = item->timestamp;
  return CopyOut(item->payload, buf, buf_len, item_len);
}

spd_status spd_consume_item(spd_runtime* rt, int as_index,
                            const spd_conn* conn, spd_timestamp ts) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || !ValidConn(conn)) return SPD_ERR_INVALID_ARGUMENT;
  return ToC(as->Consume(ToConnection(*conn), ts));
}

spd_status spd_consume_until(spd_runtime* rt, int as_index,
                             const spd_conn* conn, spd_timestamp ts) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || !ValidConn(conn)) return SPD_ERR_INVALID_ARGUMENT;
  return ToC(as->ConsumeUntil(ToConnection(*conn), ts));
}

spd_status spd_ns_register(spd_runtime* rt, int as_index, const char* name,
                           uint64_t id_bits, int is_queue, const char* meta) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || name == nullptr) return SPD_ERR_INVALID_ARGUMENT;
  core::NsEntry entry;
  entry.name = name;
  entry.kind =
      is_queue ? core::NsEntry::Kind::kQueue : core::NsEntry::Kind::kChannel;
  entry.id_bits = id_bits;
  entry.meta = meta == nullptr ? "" : meta;
  return ToC(as->NsRegister(entry));
}

spd_status spd_ns_lookup(spd_runtime* rt, int as_index, const char* name,
                         int64_t timeout_ms, uint64_t* id_bits_out,
                         int* is_queue_out) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || name == nullptr) return SPD_ERR_INVALID_ARGUMENT;
  auto entry = as->NsLookup(name, ToDeadline(timeout_ms));
  if (!entry.ok()) return ToC(entry.status());
  if (id_bits_out != nullptr) *id_bits_out = entry->id_bits;
  if (is_queue_out != nullptr) {
    *is_queue_out = entry->kind == core::NsEntry::Kind::kQueue ? 1 : 0;
  }
  return SPD_OK;
}

spd_status spd_ns_unregister(spd_runtime* rt, int as_index, const char* name) {
  core::AddressSpace* as = AsOf(rt, as_index);
  if (as == nullptr || name == nullptr) return SPD_ERR_INVALID_ARGUMENT;
  return ToC(as->NsUnregister(name));
}

spd_rt_sync* spd_rt_sync_create(int64_t tick_us, int64_t tolerance_us) {
  if (tick_us <= 0 || tolerance_us < 0) return nullptr;
  auto* wrapper = new spd_rt_sync;
  wrapper->sync = std::make_unique<core::RtSync>(Micros(tick_us),
                                                 Micros(tolerance_us));
  return wrapper;
}

void spd_rt_sync_destroy(spd_rt_sync* sync) { delete sync; }

spd_status spd_rt_sync_wait(spd_rt_sync* sync) {
  if (sync == nullptr) return SPD_ERR_INVALID_ARGUMENT;
  return ToC(sync->sync->Synchronize());
}

uint64_t spd_rt_sync_slips(const spd_rt_sync* sync) {
  return sync == nullptr ? 0 : sync->sync->slips();
}

const char* spd_status_name(spd_status status) {
  switch (status) {
    case SPD_OK: return "SPD_OK";
    case SPD_ERR_INVALID_ARGUMENT: return "SPD_ERR_INVALID_ARGUMENT";
    case SPD_ERR_NOT_FOUND: return "SPD_ERR_NOT_FOUND";
    case SPD_ERR_ALREADY_EXISTS: return "SPD_ERR_ALREADY_EXISTS";
    case SPD_ERR_FAILED_PRECONDITION: return "SPD_ERR_FAILED_PRECONDITION";
    case SPD_ERR_PERMISSION_DENIED: return "SPD_ERR_PERMISSION_DENIED";
    case SPD_ERR_TIMEOUT: return "SPD_ERR_TIMEOUT";
    case SPD_ERR_UNAVAILABLE: return "SPD_ERR_UNAVAILABLE";
    case SPD_ERR_CONNECTION_CLOSED: return "SPD_ERR_CONNECTION_CLOSED";
    case SPD_ERR_RESOURCE_EXHAUSTED: return "SPD_ERR_RESOURCE_EXHAUSTED";
    case SPD_ERR_GARBAGE_COLLECTED: return "SPD_ERR_GARBAGE_COLLECTED";
    case SPD_ERR_CANCELLED: return "SPD_ERR_CANCELLED";
    case SPD_ERR_INTERNAL: return "SPD_ERR_INTERNAL";
    case SPD_ERR_BUFFER_TOO_SMALL: return "SPD_ERR_BUFFER_TOO_SMALL";
  }
  return "SPD_ERR_UNKNOWN";
}

}  // extern "C"
