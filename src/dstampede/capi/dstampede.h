/* dstampede.h — flat C API over the D-Stampede runtime.
 *
 * The original system was delivered to application programmers as a C
 * library (the paper's api.h); this header is that interface for the
 * reproduction. It exposes the cluster-side programming model: create
 * a runtime of address spaces, create channels/queues, connect, put /
 * get / consume timestamped items, use the name server, and pace with
 * real-time synchrony. All calls are usable from plain C (see
 * examples/c_quickstart.c).
 *
 * Conventions:
 *   - every function returns SPD_OK (0) or a negative spd_status code;
 *   - timeouts are milliseconds; SPD_WAIT_FOREVER blocks, 0 polls;
 *   - payloads are caller-owned byte ranges, copied on put; gets copy
 *     into a caller buffer and report the item's size.
 */
#ifndef DSTAMPEDE_CAPI_H_
#define DSTAMPEDE_CAPI_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct spd_runtime spd_runtime; /* opaque */

typedef int64_t spd_timestamp;
#define SPD_WAIT_FOREVER (-1)

/* Status codes (mirror dstampede::StatusCode, negated). */
typedef enum {
  SPD_OK = 0,
  SPD_ERR_INVALID_ARGUMENT = -1,
  SPD_ERR_NOT_FOUND = -2,
  SPD_ERR_ALREADY_EXISTS = -3,
  SPD_ERR_FAILED_PRECONDITION = -4,
  SPD_ERR_PERMISSION_DENIED = -5,
  SPD_ERR_TIMEOUT = -6,
  SPD_ERR_UNAVAILABLE = -7,
  SPD_ERR_CONNECTION_CLOSED = -8,
  SPD_ERR_RESOURCE_EXHAUSTED = -9,
  SPD_ERR_GARBAGE_COLLECTED = -10,
  SPD_ERR_CANCELLED = -11,
  SPD_ERR_INTERNAL = -12,
  SPD_ERR_BUFFER_TOO_SMALL = -13
} spd_status;

/* Connection modes. */
#define SPD_INPUT 1
#define SPD_OUTPUT 2
#define SPD_INOUT 3

/* A connection handle (value type, as in the C++ API). */
typedef struct {
  uint64_t container_bits;
  int is_queue;
  uint32_t mode;
  uint32_t slot;
} spd_conn;

/* --- runtime ----------------------------------------------------------- */

/* Creates a cluster of `num_address_spaces` address spaces (AS 0 hosts
 * the name server). */
spd_status spd_runtime_create(int num_address_spaces, spd_runtime** out);
void spd_runtime_destroy(spd_runtime* rt);
int spd_runtime_size(const spd_runtime* rt);

/* --- channels & queues --------------------------------------------------- */

/* capacity 0 = unbounded. The returned id is system-wide unique. */
spd_status spd_chan_create(spd_runtime* rt, int as_index, size_t capacity,
                           uint64_t* chan_out);
spd_status spd_queue_create(spd_runtime* rt, int as_index, size_t capacity,
                            uint64_t* queue_out);

spd_status spd_chan_connect(spd_runtime* rt, int as_index, uint64_t chan,
                            int mode, spd_conn* conn_out);
spd_status spd_queue_connect(spd_runtime* rt, int as_index, uint64_t queue,
                             int mode, spd_conn* conn_out);
spd_status spd_disconnect(spd_runtime* rt, int as_index, const spd_conn* conn);

/* --- I/O -------------------------------------------------------------------- */

spd_status spd_put_item(spd_runtime* rt, int as_index, const spd_conn* conn,
                        spd_timestamp ts, const void* data, size_t len,
                        int64_t timeout_ms);

/* Exact-timestamp get (channels): blocks until the item is produced.
 * Copies at most buf_len bytes; *item_len gets the full item size
 * (SPD_ERR_BUFFER_TOO_SMALL if it did not fit; *item_len still set). */
spd_status spd_get_item(spd_runtime* rt, int as_index, const spd_conn* conn,
                        spd_timestamp ts, void* buf, size_t buf_len,
                        size_t* item_len, int64_t timeout_ms);

/* FIFO get (queues) / oldest-unconsumed get (channels). *ts_out gets
 * the delivered item's timestamp. */
spd_status spd_get_next(spd_runtime* rt, int as_index, const spd_conn* conn,
                        spd_timestamp* ts_out, void* buf, size_t buf_len,
                        size_t* item_len, int64_t timeout_ms);

spd_status spd_consume_item(spd_runtime* rt, int as_index,
                            const spd_conn* conn, spd_timestamp ts);
spd_status spd_consume_until(spd_runtime* rt, int as_index,
                             const spd_conn* conn, spd_timestamp ts);

/* --- name server ------------------------------------------------------------- */

spd_status spd_ns_register(spd_runtime* rt, int as_index, const char* name,
                           uint64_t id_bits, int is_queue, const char* meta);
spd_status spd_ns_lookup(spd_runtime* rt, int as_index, const char* name,
                         int64_t timeout_ms, uint64_t* id_bits_out,
                         int* is_queue_out);
spd_status spd_ns_unregister(spd_runtime* rt, int as_index, const char* name);

/* --- real-time synchrony ------------------------------------------------------ */

typedef struct spd_rt_sync spd_rt_sync; /* opaque */

/* Tick period and tolerance in microseconds. */
spd_rt_sync* spd_rt_sync_create(int64_t tick_us, int64_t tolerance_us);
void spd_rt_sync_destroy(spd_rt_sync* sync);
/* SPD_OK on schedule; SPD_ERR_TIMEOUT after a slip (schedule
 * re-anchored, as in the paper's Beehive-style synchrony). */
spd_status spd_rt_sync_wait(spd_rt_sync* sync);
uint64_t spd_rt_sync_slips(const spd_rt_sync* sync);

/* Human-readable name of a status code. */
const char* spd_status_name(spd_status status);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DSTAMPEDE_CAPI_H_ */
