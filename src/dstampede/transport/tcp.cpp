#include "dstampede/transport/tcp.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dstampede::transport {
namespace {

sockaddr_in ToSockaddr(const SockAddr& addr) {
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(addr.ip_host_order);
  sin.sin_port = htons(addr.port);
  return sin;
}

SockAddr FromSockaddr(const sockaddr_in& sin) {
  return SockAddr{ntohl(sin.sin_addr.s_addr), ntohs(sin.sin_port)};
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Result<TcpConnection> TcpConnection::Connect(const SockAddr& addr,
                                             Deadline deadline) {
  (void)deadline;  // connect on loopback completes immediately or fails
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  sockaddr_in sin = ToSockaddr(addr);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sin), sizeof sin) != 0) {
    return ErrnoStatus("connect");
  }
  SetNoDelay(fd.get());
  return TcpConnection(std::move(fd));
}

Status TcpConnection::SendAll(std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return OkStatus();
}

Status TcpConnection::RecvSome(std::uint8_t* dst, std::size_t n,
                               std::size_t& got, Deadline deadline) {
  DS_RETURN_IF_ERROR(WaitReadable(fd_.get(), deadline));
  ssize_t r = ::recv(fd_.get(), dst, n, 0);
  if (r < 0) {
    if (errno == EINTR) {
      got = 0;
      return OkStatus();
    }
    return ErrnoStatus("recv");
  }
  if (r == 0) return ConnectionClosedError("peer closed");
  got = static_cast<std::size_t>(r);
  return OkStatus();
}

Status TcpConnection::RecvExact(std::span<std::uint8_t> data,
                                Deadline deadline) {
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t got = 0;
    DS_RETURN_IF_ERROR(
        RecvSome(data.data() + off, data.size() - off, got, deadline));
    off += got;
  }
  return OkStatus();
}

Status TcpConnection::SendFrame(std::span<const std::uint8_t> payload) {
  std::uint8_t header[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<std::uint8_t>(len >> 24);
  header[1] = static_cast<std::uint8_t>(len >> 16);
  header[2] = static_cast<std::uint8_t>(len >> 8);
  header[3] = static_cast<std::uint8_t>(len);
  // One writev-style send to avoid Nagle interactions on tiny frames.
  Buffer frame;
  frame.reserve(4 + payload.size());
  frame.insert(frame.end(), header, header + 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return SendAll(frame);
}

Status TcpConnection::RecvFrame(Buffer& out, Deadline deadline) {
  std::uint8_t header[4];
  DS_RETURN_IF_ERROR(RecvExact(std::span<std::uint8_t>(header, 4), deadline));
  const std::uint32_t len = (static_cast<std::uint32_t>(header[0]) << 24) |
                            (static_cast<std::uint32_t>(header[1]) << 16) |
                            (static_cast<std::uint32_t>(header[2]) << 8) |
                            header[3];
  constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound
  if (len > kMaxFrame) return InternalError("oversized frame");
  out.resize(len);
  return RecvExact(std::span<std::uint8_t>(out.data(), len), deadline);
}

Result<TcpListener> TcpListener::Bind(std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sin = ToSockaddr(SockAddr::Loopback(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sin), sizeof sin) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), 64) != 0) return ErrnoStatus("listen");
  socklen_t len = sizeof sin;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&sin), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.bound_ = FromSockaddr(sin);
  return listener;
}

Result<TcpConnection> TcpListener::Accept(Deadline deadline) {
  DS_RETURN_IF_ERROR(WaitReadable(fd_.get(), deadline));
  sockaddr_in sin{};
  socklen_t len = sizeof sin;
  int fd = ::accept(fd_.get(), reinterpret_cast<sockaddr*>(&sin), &len);
  if (fd < 0) return ErrnoStatus("accept");
  SetNoDelay(fd);
  return TcpConnection(FdHandle(fd));
}

}  // namespace dstampede::transport
