// UDP datagram endpoint. CLF builds its reliable packet transport on
// top of this (§3.2.2), and the raw path is the "UDP producer-
// consumer" baseline in Experiment 1.
#pragma once

#include <cstdint>
#include <span>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/transport/socket.hpp"

namespace dstampede::transport {

// The paper restricts Experiment 1 payloads to <= 60000 bytes because
// "UDP does not allow messages greater than 64 KB"; CLF fragments
// larger messages into datagrams below this bound.
inline constexpr std::size_t kMaxUdpDatagram = 65000;

class UdpSocket {
 public:
  UdpSocket() = default;

  // Binds to loopback. port==0 picks a free port.
  static Result<UdpSocket> Bind(std::uint16_t port = 0);

  const SockAddr& bound_addr() const { return bound_; }
  bool valid() const { return fd_.valid(); }
  void Close() { fd_.Reset(); }

  Status SendTo(const SockAddr& to, std::span<const std::uint8_t> data);

  // Receives one datagram into out (resized to the datagram length).
  // Fills from with the sender address.
  Status RecvFrom(Buffer& out, SockAddr& from,
                  Deadline deadline = Deadline::Infinite());

  int fd() const { return fd_.get(); }

 private:
  FdHandle fd_;
  SockAddr bound_;
};

}  // namespace dstampede::transport
