#include "dstampede/transport/udp.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dstampede::transport {

Result<UdpSocket> UdpSocket::Bind(std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  // Generous buffers: CLF bursts fragments of large frames.
  int bufsz = 4 << 20;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &bufsz, sizeof bufsz);
  ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &bufsz, sizeof bufsz);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(0x7f000001u);
  sin.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sin), sizeof sin) != 0) {
    return ErrnoStatus("bind");
  }
  socklen_t len = sizeof sin;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&sin), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  UdpSocket sock;
  sock.fd_ = std::move(fd);
  sock.bound_ = SockAddr{ntohl(sin.sin_addr.s_addr), ntohs(sin.sin_port)};
  return sock;
}

Status UdpSocket::SendTo(const SockAddr& to,
                         std::span<const std::uint8_t> data) {
  if (data.size() > kMaxUdpDatagram) {
    return InvalidArgumentError("datagram exceeds UDP limit");
  }
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(to.ip_host_order);
  sin.sin_port = htons(to.port);
  for (;;) {
    ssize_t n = ::sendto(fd_.get(), data.data(), data.size(), 0,
                         reinterpret_cast<sockaddr*>(&sin), sizeof sin);
    if (n >= 0) return OkStatus();
    if (errno == EINTR) continue;
    if (errno == ENOBUFS || errno == EAGAIN) {
      // Loopback send buffer momentarily full: drop, CLF retransmits.
      return OkStatus();
    }
    return ErrnoStatus("sendto");
  }
}

Status UdpSocket::RecvFrom(Buffer& out, SockAddr& from, Deadline deadline) {
  DS_RETURN_IF_ERROR(WaitReadable(fd_.get(), deadline));
  out.resize(kMaxUdpDatagram);
  sockaddr_in sin{};
  socklen_t len = sizeof sin;
  ssize_t n = ::recvfrom(fd_.get(), out.data(), out.size(), 0,
                         reinterpret_cast<sockaddr*>(&sin), &len);
  if (n < 0) {
    if (errno == EINTR) return TimeoutError("interrupted");
    return ErrnoStatus("recvfrom");
  }
  out.resize(static_cast<std::size_t>(n));
  from = SockAddr{ntohl(sin.sin_addr.s_addr), ntohs(sin.sin_port)};
  return OkStatus();
}

}  // namespace dstampede::transport
