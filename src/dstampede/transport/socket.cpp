#include "dstampede/transport/socket.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>

namespace dstampede::transport {

std::string SockAddr::ToString() const {
  std::ostringstream os;
  os << ((ip_host_order >> 24) & 0xff) << '.' << ((ip_host_order >> 16) & 0xff)
     << '.' << ((ip_host_order >> 8) & 0xff) << '.' << (ip_host_order & 0xff)
     << ':' << port;
  return os.str();
}

Result<SockAddr> SockAddr::FromString(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0, port = 0;
  char trailing = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u:%u%c", &a, &b, &c, &d, &port,
                  &trailing) != 5 ||
      a > 255 || b > 255 || c > 255 || d > 255 || port > 65535) {
    return InvalidArgumentError("not an a.b.c.d:port address: " + s);
  }
  return SockAddr{(a << 24) | (b << 16) | (c << 8) | d,
                  static_cast<std::uint16_t>(port)};
}

void FdHandle::Reset() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

Status WaitReadable(int fd, Deadline deadline) {
  // Under an installed VirtualClock a frozen deadline.remaining() never
  // shrinks, so retrying "spurious" poll timeouts would spin forever and
  // the CLF receiver / accept loops would never observe their stop
  // flags. The wire is real even when time is virtual: bound the wait
  // by the entry-time remaining as a *real* budget (virtual expiry is
  // still honoured each round when the scenario thread advances time).
  const bool virt = InstalledVirtualClock() != nullptr;
  TimePoint real_give_up = TimePoint::max();
  if (virt && !deadline.infinite()) {
    const Duration rem = deadline.remaining();
    real_give_up = (rem >= Duration::max() - Millis(1))
                       ? TimePoint::max()
                       : SteadyClock::now() + rem;
  }
  for (;;) {
    int timeout_ms = -1;
    if (!deadline.infinite()) {
      const Duration rem = virt ? std::min(deadline.remaining(),
                                           real_give_up - SteadyClock::now())
                                : deadline.remaining();
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(rem).count());
      if (timeout_ms <= 0) {
        // poll(0) still reports data that is already queued.
        timeout_ms = 0;
      }
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return OkStatus();
    if (rc == 0) {
      if (deadline.expired() || timeout_ms == 0) return TimeoutError("poll");
      if (virt && SteadyClock::now() >= real_give_up) {
        return TimeoutError("poll");
      }
      continue;  // spurious zero before the deadline; retry
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("poll");
  }
}

Status ErrnoStatus(const char* op) {
  std::string msg = std::string(op) + ": " + std::strerror(errno);
  switch (errno) {
    case ECONNREFUSED:
    case ENETUNREACH:
    case EHOSTUNREACH:
      return UnavailableError(std::move(msg));
    case ECONNRESET:
    case EPIPE:
      return ConnectionClosedError(std::move(msg));
    case EAGAIN:
      return TimeoutError(std::move(msg));
    default:
      return InternalError(std::move(msg));
  }
}

}  // namespace dstampede::transport
