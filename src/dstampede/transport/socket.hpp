// RAII wrappers over POSIX sockets plus the address type used by every
// transport in the tree. Loopback IPv4 only: the reproduction runs the
// whole Octopus on one machine (see DESIGN.md substitutions).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "dstampede/common/clock.hpp"
#include "dstampede/common/status.hpp"

namespace dstampede::transport {

// IPv4 host:port. Value type, usable as a map key.
struct SockAddr {
  std::uint32_t ip_host_order = 0;  // e.g. 127.0.0.1 = 0x7f000001
  std::uint16_t port = 0;

  static SockAddr Loopback(std::uint16_t port) {
    return SockAddr{0x7f000001u, port};
  }

  std::string ToString() const;
  // Parses the ToString() format, "a.b.c.d:port".
  static Result<SockAddr> FromString(const std::string& s);

  friend bool operator==(const SockAddr& a, const SockAddr& b) {
    return a.ip_host_order == b.ip_host_order && a.port == b.port;
  }
  friend bool operator<(const SockAddr& a, const SockAddr& b) {
    return std::pair(a.ip_host_order, a.port) <
           std::pair(b.ip_host_order, b.port);
  }
};

// Owns a file descriptor; closes on destruction. The descriptor is
// held atomically because Close()/Reset() is the documented way to
// wake another thread blocked in accept/recv on the same handle
// (shutdown paths do this deliberately); the waker and the blocked
// reader must not race on the int itself.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { Reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_.store(other.fd_.exchange(-1));
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const { return fd_.load(std::memory_order_relaxed); }
  bool valid() const { return get() >= 0; }
  void Reset();

 private:
  std::atomic<int> fd_{-1};
};

// Waits until fd is readable or the deadline passes.
// Returns kOk (readable), kTimeout, or kInternal on poll failure.
Status WaitReadable(int fd, Deadline deadline);

// errno → Status with a context prefix.
Status ErrnoStatus(const char* op);

}  // namespace dstampede::transport

namespace std {
template <>
struct hash<dstampede::transport::SockAddr> {
  size_t operator()(const dstampede::transport::SockAddr& a) const noexcept {
    return std::hash<uint64_t>{}(
        (static_cast<uint64_t>(a.ip_host_order) << 16) | a.port);
  }
};
}  // namespace std
