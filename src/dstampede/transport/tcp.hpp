// TCP transport: stream connections with 4-byte length framing, plus
// raw send/recv for the paper's baseline measurements. The client
// libraries use this to reach the cluster listener (§3.2.1), and the
// raw path is the "TCP/IP producer-consumer" baseline in Experiments
// 1–3.
#pragma once

#include <cstdint>
#include <span>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/transport/socket.hpp"

namespace dstampede::transport {

class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(FdHandle fd) : fd_(std::move(fd)) {}

  // Connects to addr; TCP_NODELAY is set (interactive traffic).
  static Result<TcpConnection> Connect(const SockAddr& addr,
                                       Deadline deadline = Deadline::Infinite());

  bool valid() const { return fd_.valid(); }
  void Close() { fd_.Reset(); }

  // Framed messages: u32 big-endian length, then payload.
  Status SendFrame(std::span<const std::uint8_t> payload);
  // Receives one frame into out (replacing its contents).
  Status RecvFrame(Buffer& out, Deadline deadline = Deadline::Infinite());

  // Raw stream I/O for baseline benchmarks.
  Status SendAll(std::span<const std::uint8_t> data);
  Status RecvExact(std::span<std::uint8_t> data,
                   Deadline deadline = Deadline::Infinite());

  int fd() const { return fd_.get(); }

 private:
  Status RecvSome(std::uint8_t* dst, std::size_t n, std::size_t& got,
                  Deadline deadline);
  FdHandle fd_;
};

class TcpListener {
 public:
  // Binds to loopback. port==0 picks a free port; bound_addr() tells
  // which.
  static Result<TcpListener> Bind(std::uint16_t port = 0);

  Result<TcpConnection> Accept(Deadline deadline = Deadline::Infinite());

  const SockAddr& bound_addr() const { return bound_; }
  bool valid() const { return fd_.valid(); }
  void Close() { fd_.Reset(); }

 private:
  FdHandle fd_;
  SockAddr bound_;
};

}  // namespace dstampede::transport
