// The video-conferencing application of §4 and §5.2, on D-Stampede.
//
// Structure (Fig 5): each participant has two end devices — a camera
// whose producer thread puts timestamped frames into its own channel
// C_j (created in the address space its client session landed on), and
// a display whose thread gets the composite stream from channel C_0.
// A mixer in address space N_M gets corresponding-timestamp frames
// from every C_j, composites them, and puts the result into C_0.
//
// Two mixer variants reproduce the paper's second and third app
// versions: single-threaded (one thread does all gets, the composite,
// and the put) and multi-threaded (one thread per participant blends
// its tile; a barrier hands the finished composite to the put).
// Sustained frames/sec at the slowest display is the reported metric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::app {

struct VideoConfConfig {
  std::size_t num_clients = 2;
  std::size_t image_bytes = 74 * 1024;
  bool multithreaded_mixer = false;
  std::size_t mixer_as = 0;          // runtime index of N_M
  std::size_t channel_capacity = 16; // per-channel live-item bound
  Timestamp num_frames = 120;        // frames produced per participant
  Timestamp warmup_frames = 20;      // excluded from the rate
  // 0 = producers free-run (the paper's max-rate stress); otherwise
  // cameras pace themselves with real-time synchrony at this fps.
  double producer_fps = 0.0;
  // Validate every frame's content end to end (tests); benches keep it
  // off to measure transport, as the paper's absorbing display does.
  bool validate_frames = false;
};

struct VideoConfReport {
  std::vector<double> display_fps;  // per participant
  double min_display_fps = 0.0;     // the paper's reported number
  Timestamp frames_completed = 0;
  std::uint64_t producer_slips = 0; // real-time synchrony slippages
};

class VideoConfApp {
 public:
  // Runs one complete conference on the given cluster: server-side
  // setup, K producer sessions, K display sessions, mixer thread(s).
  // Blocks until num_frames flowed end to end everywhere.
  static Result<VideoConfReport> Run(core::Runtime& runtime,
                                     client::Listener& listener,
                                     const VideoConfConfig& config);
};

}  // namespace dstampede::app
