// The task-and-data parallelism harness of Fig 3: a splitter thread
// partitions each frame into fragments that all carry the frame's
// timestamp and drops them into a D-Stampede queue; a pool of tracker
// threads analyzes fragments in parallel (each queue item goes to
// exactly one tracker); a joiner stitches the per-fragment results for
// each timestamp back together through a result queue.
//
// "Analysis" here is a checksum scan over the fragment — a stand-in
// with a real data dependency so corruption anywhere in the pipeline
// is caught at the joiner.
#pragma once

#include <cstdint>
#include <vector>

#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/core/runtime.hpp"

namespace dstampede::app {

struct TrackerConfig {
  std::size_t fragments_per_frame = 4;
  std::size_t num_workers = 4;
  Timestamp num_frames = 16;
  std::size_t frame_bytes = 64 * 1024;
  std::size_t work_queue_as = 0;    // runtime index owning the work queue
  std::size_t result_queue_as = 0;  // runtime index owning the result queue
  std::size_t queue_capacity = 64;
};

struct TrackerReport {
  Timestamp frames_joined = 0;
  std::uint64_t fragments_processed = 0;
  // How the queue load-shared fragments across trackers.
  std::vector<std::uint64_t> per_worker_fragments;
};

class SplitJoinPipeline {
 public:
  static Result<TrackerReport> Run(core::Runtime& runtime,
                                   const TrackerConfig& config);
};

// FNV-1a over a byte span; the "tracker analysis".
std::uint64_t AnalyzeFragment(std::span<const std::uint8_t> data);

}  // namespace dstampede::app
