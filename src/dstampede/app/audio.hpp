// Audio streaming and mixing.
//
// The paper's application domain is audio as well as video: "speech is
// a sequence of audio samples", "stereo audio combines data from two
// or more microphones" (§2), and its acknowledgments cite an "audio and
// video meeting application" built on D-Stampede. This module supplies
// the audio half of that application class:
//
//   * ToneSource — a deterministic microphone: each participant emits
//     16-bit PCM chunks of a participant-specific waveform, so any
//     stage can recompute the exact samples a (participant, chunk)
//     pair must contain;
//   * AudioMixer — sums the participants' chunks sample-wise with
//     saturation, the standard conference-bridge mix;
//   * InspectChunk / ExpectedSample — validation hooks used by tests
//     and the AV-meeting example to check the mix bit-exactly.
//
// Chunks are timestamped by chunk number, exactly like video frames by
// frame number, which is what makes audio/video temporal correlation
// (TemporalCorrelator) work across the two media.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"

namespace dstampede::app {

struct AudioFormat {
  std::uint32_t sample_rate = 16000;     // Hz
  std::uint32_t samples_per_chunk = 320; // 20 ms at 16 kHz

  double chunk_seconds() const {
    return static_cast<double>(samples_per_chunk) / sample_rate;
  }
};

inline constexpr std::size_t kAudioHeaderBytes = 16;

struct AudioChunkInfo {
  std::uint32_t participant = 0;
  Timestamp chunk_no = 0;
  std::size_t samples = 0;
};

// One participant's deterministic microphone.
class ToneSource {
 public:
  ToneSource(std::uint32_t participant, AudioFormat format);

  // Chunk layout: [u32 magic][u32 participant][i64 chunk no][i16 PCM...].
  Buffer Chunk(Timestamp chunk_no) const;

  // The exact sample this participant produces at absolute sample
  // index `n` (chunk_no * samples_per_chunk + offset).
  std::int16_t SampleAt(std::uint64_t n) const;

  std::uint32_t participant() const { return participant_; }
  const AudioFormat& format() const { return format_; }

 private:
  std::uint32_t participant_;
  AudioFormat format_;
};

// Parses and validates one chunk against the source that made it.
Result<AudioChunkInfo> InspectChunk(std::span<const std::uint8_t> chunk);

// Reads sample `i` out of an encoded chunk.
Result<std::int16_t> ChunkSample(std::span<const std::uint8_t> chunk,
                                 std::size_t i);

// Conference-bridge mixer: output sample = saturated sum of the
// corresponding input samples.
class AudioMixer {
 public:
  explicit AudioMixer(AudioFormat format) : format_(format) {}

  // All chunks must agree on participant-distinct headers, the same
  // chunk number, and the format's sample count. The mixed chunk keeps
  // the chunk number and gets participant id 0xFFFF ("the bridge").
  Result<Buffer> Mix(std::span<const Buffer> chunks) const;

  static std::int16_t Saturate(std::int32_t sum) {
    if (sum > INT16_MAX) return INT16_MAX;
    if (sum < INT16_MIN) return INT16_MIN;
    return static_cast<std::int16_t>(sum);
  }

 private:
  AudioFormat format_;
};

inline constexpr std::uint32_t kMixedParticipant = 0xFFFF;

}  // namespace dstampede::app
