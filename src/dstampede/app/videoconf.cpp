#include "dstampede/app/videoconf.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>

#include "dstampede/app/image.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/common/logging.hpp"
#include "dstampede/common/stats.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/thread.hpp"
#include "dstampede/core/rt_sync.hpp"

namespace dstampede::app {
namespace {

// Unique name-server prefix per run so repeated runs on one cluster
// don't collide.
std::string FreshPrefix() {
  static std::atomic<std::uint64_t> counter{0};
  return "videoconf/" + std::to_string(counter.fetch_add(1));
}

// Collects the first failure from any participant thread.
class FailBox {
 public:
  void Set(const Status& status) {
    if (status.ok()) return;
    ds::MutexLock lock(mu_);
    if (first_.ok()) first_ = status;
    failed_.store(true);
  }
  bool failed() const { return failed_.load(std::memory_order_relaxed); }
  Status first() const {
    ds::MutexLock lock(mu_);
    return first_;
  }

 private:
  mutable ds::Mutex mu_{"app.failbox.mu"};
  Status first_ DS_GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
};

Deadline OpDeadline() { return Deadline::AfterMillis(60000); }

}  // namespace

Result<VideoConfReport> VideoConfApp::Run(core::Runtime& runtime,
                                          client::Listener& listener,
                                          const VideoConfConfig& config) {
  if (config.num_clients == 0 || config.num_frames <= config.warmup_frames) {
    return InvalidArgumentError("bad videoconf config");
  }
  const std::size_t k = config.num_clients;
  const std::string prefix = FreshPrefix();
  core::AddressSpace& mixer_as = runtime.as(config.mixer_as);

  // Server-side setup (§4): composite output channel C0 in N_M.
  core::ChannelAttr c0_attr;
  c0_attr.capacity_items = config.channel_capacity;
  c0_attr.debug_name = prefix + "/out";
  DS_ASSIGN_OR_RETURN(ChannelId c0, mixer_as.CreateChannel(c0_attr));
  DS_RETURN_IF_ERROR(mixer_as.NsRegister(core::NsEntry{
      prefix + "/out", core::NsEntry::Kind::kChannel, c0.bits(),
      "composite video stream"}));

  FailBox fail;
  VideoConfReport report;
  report.display_fps.assign(k, 0.0);
  std::atomic<std::uint64_t> producer_slips{0};
  std::vector<Thread> threads;

  // --- producers: one camera end device per participant -------------------
  for (std::size_t j = 0; j < k; ++j) {
    threads.emplace_back([&, j] {
      client::CClient::Options opts;
      opts.server = listener.addr();
      opts.name = prefix + "/camera/" + std::to_string(j);
      // Spread camera channels over the cluster's address spaces, as
      // §4 has channels C_j created in N_1..N_k.
      opts.preferred_as =
          static_cast<std::int32_t>(j % runtime.size());
      auto client = client::CClient::Join(opts);
      if (!client.ok()) return fail.Set(client.status());

      core::ChannelAttr attr;
      attr.capacity_items = config.channel_capacity;
      attr.debug_name = prefix + "/in/" + std::to_string(j);
      auto cj = (*client)->CreateChannel(attr);
      if (!cj.ok()) return fail.Set(cj.status());
      Status reg = (*client)->NsRegister(core::NsEntry{
          attr.debug_name, core::NsEntry::Kind::kChannel, cj->bits(),
          "camera stream"});
      if (!reg.ok()) return fail.Set(reg);

      auto conn = (*client)->Connect(*cj, core::ConnMode::kOutput);
      if (!conn.ok()) return fail.Set(conn.status());

      VirtualCamera camera(static_cast<std::uint32_t>(j), config.image_bytes);
      std::unique_ptr<core::RtSync> pace;
      if (config.producer_fps > 0) {
        pace = std::make_unique<core::RtSync>(
            std::chrono::duration_cast<Duration>(
                std::chrono::duration<double>(1.0 / config.producer_fps)),
            Millis(5), [&](std::int64_t) {
              producer_slips.fetch_add(1, std::memory_order_relaxed);
            });
      }
      for (Timestamp ts = 0; ts < config.num_frames && !fail.failed(); ++ts) {
        Status s = (*client)->Put(*conn, ts, camera.Grab(ts), OpDeadline());
        if (!s.ok()) return fail.Set(s);
        if (pace) (void)pace->Synchronize();
      }
      (void)(*client)->Disconnect(*conn);
      (void)(*client)->Leave();
    });
  }

  // --- displays: one display end device per participant ---------------------
  for (std::size_t j = 0; j < k; ++j) {
    threads.emplace_back([&, j] {
      client::CClient::Options opts;
      opts.server = listener.addr();
      opts.name = prefix + "/display/" + std::to_string(j);
      auto client = client::CClient::Join(opts);
      if (!client.ok()) return fail.Set(client.status());

      auto entry = (*client)->NsLookup(prefix + "/out", OpDeadline());
      if (!entry.ok()) return fail.Set(entry.status());
      auto conn = (*client)->Connect(ChannelId::FromBits(entry->id_bits),
                                     core::ConnMode::kInput);
      if (!conn.ok()) return fail.Set(conn.status());

      Compositor comp(k, config.image_bytes);
      RateMeter meter;
      for (Timestamp ts = 0; ts < config.num_frames && !fail.failed(); ++ts) {
        if (ts == config.warmup_frames) meter.Start();
        auto item =
            (*client)->Get(*conn, core::GetSpec::Exact(ts), OpDeadline());
        if (!item.ok()) return fail.Set(item.status());
        if (config.validate_frames) {
          for (std::size_t tile = 0; tile < k; ++tile) {
            Status v = comp.ValidateTile(item->payload.span(), tile,
                                         static_cast<std::uint32_t>(tile), ts);
            if (!v.ok()) return fail.Set(v);
          }
        }
        Status c = (*client)->Consume(*conn, ts);
        if (!c.ok()) return fail.Set(c);
        if (ts >= config.warmup_frames) meter.Tick();
      }
      report.display_fps[j] = meter.Rate();
      (void)(*client)->Disconnect(*conn);
      (void)(*client)->Leave();
    });
  }

  // --- the mixer in N_M ------------------------------------------------------
  auto connect_inputs =
      [&]() -> Result<std::vector<core::Connection>> {
    std::vector<core::Connection> conns;
    for (std::size_t j = 0; j < k; ++j) {
      DS_ASSIGN_OR_RETURN(
          core::NsEntry entry,
          mixer_as.NsLookup(prefix + "/in/" + std::to_string(j), OpDeadline()));
      DS_ASSIGN_OR_RETURN(core::Connection conn,
                          mixer_as.Connect(ChannelId::FromBits(entry.id_bits),
                                           core::ConnMode::kInput, "mixer"));
      conns.push_back(conn);
    }
    return conns;
  };

  // Composites reclaim as soon as every *attached* display consumed
  // them, so the mixer must not start publishing until all K displays
  // are connected to C0 — else a fast display races a slow joiner past
  // the reclaim horizon.
  auto wait_for_displays = [&]() -> Status {
    auto c0_local = mixer_as.FindChannel(c0.bits());
    if (!c0_local) return InternalError("C0 vanished");
    const Deadline deadline = OpDeadline();
    while (c0_local->input_connections() < k) {
      if (fail.failed()) return CancelledError("run failed");
      if (deadline.expired()) return TimeoutError("displays never connected");
      dstampede::SleepFor(Millis(1));
    }
    return OkStatus();
  };

  if (!config.multithreaded_mixer) {
    threads.emplace_back([&] {
      auto conns = connect_inputs();
      if (!conns.ok()) return fail.Set(conns.status());
      auto out = mixer_as.Connect(c0, core::ConnMode::kOutput, "mixer-out");
      if (!out.ok()) return fail.Set(out.status());
      Status ready = wait_for_displays();
      if (!ready.ok()) return fail.Set(ready);
      Compositor comp(k, config.image_bytes);
      for (Timestamp ts = 0; ts < config.num_frames && !fail.failed(); ++ts) {
        Buffer composite = comp.MakeComposite();
        for (std::size_t j = 0; j < k; ++j) {
          auto item = mixer_as.Get((*conns)[j], core::GetSpec::Exact(ts),
                                   OpDeadline());
          if (!item.ok()) return fail.Set(item.status());
          Status b = comp.Blend(composite, j, item->payload.span());
          if (!b.ok()) return fail.Set(b);
          Status c = mixer_as.Consume((*conns)[j], ts);
          if (!c.ok()) return fail.Set(c);
        }
        Status p = mixer_as.Put(*out, ts, std::move(composite), OpDeadline());
        if (!p.ok()) return fail.Set(p);
      }
      for (auto& conn : *conns) (void)mixer_as.Disconnect(conn);
      (void)mixer_as.Disconnect(*out);
    });
  } else {
    // Multi-threaded mixer: one thread per participant; a barrier's
    // completion step publishes each finished composite.
    threads.emplace_back([&] {
      auto conns = connect_inputs();
      if (!conns.ok()) return fail.Set(conns.status());
      auto out = mixer_as.Connect(c0, core::ConnMode::kOutput, "mixer-out");
      if (!out.ok()) return fail.Set(out.status());
      Status ready = wait_for_displays();
      if (!ready.ok()) return fail.Set(ready);
      Compositor comp(k, config.image_bytes);

      Buffer composite = comp.MakeComposite();
      Timestamp publish_ts = 0;
      auto publish = [&]() noexcept {
        Status p =
            mixer_as.Put(*out, publish_ts, std::move(composite), OpDeadline());
        if (!p.ok()) fail.Set(p);
        ++publish_ts;
        composite = comp.MakeComposite();
      };
      std::barrier bar(static_cast<std::ptrdiff_t>(k), publish);

      std::vector<Thread> blenders;
      for (std::size_t j = 0; j < k; ++j) {
        blenders.emplace_back([&, j] {
          for (Timestamp ts = 0; ts < config.num_frames; ++ts) {
            if (fail.failed()) {
              bar.arrive_and_drop();
              return;
            }
            auto item = mixer_as.Get((*conns)[j], core::GetSpec::Exact(ts),
                                     OpDeadline());
            if (!item.ok()) {
              fail.Set(item.status());
              bar.arrive_and_drop();
              return;
            }
            Status b = comp.Blend(composite, j, item->payload.span());
            if (!b.ok()) {
              fail.Set(b);
              bar.arrive_and_drop();
              return;
            }
            Status c = mixer_as.Consume((*conns)[j], ts);
            if (!c.ok()) {
              fail.Set(c);
              bar.arrive_and_drop();
              return;
            }
            bar.arrive_and_wait();
          }
        });
      }
      for (auto& blender : blenders) blender.join();
      for (auto& conn : *conns) (void)mixer_as.Disconnect(conn);
      (void)mixer_as.Disconnect(*out);
    });
  }

  for (auto& thread : threads) thread.join();

  if (fail.failed()) return fail.first();
  report.min_display_fps = report.display_fps.empty() ? 0.0
                                                      : *std::min_element(
                                                            report.display_fps
                                                                .begin(),
                                                            report.display_fps
                                                                .end());
  report.frames_completed = config.num_frames;
  report.producer_slips = producer_slips.load();
  return report;
}

}  // namespace dstampede::app
