#include "dstampede/app/correlator.hpp"

#include <algorithm>

namespace dstampede::app {

Result<CorrelatedTuple> TemporalCorrelator::NextTuple(Deadline deadline) {
  if (inputs_.empty()) return InvalidArgumentError("no inputs");

  Timestamp candidate = cursor_;
  for (;;) {
    // Round: every input reports its first item at/after `candidate`.
    CorrelatedTuple tuple;
    tuple.items.reserve(inputs_.size());
    Timestamp max_seen = candidate;
    bool aligned = true;
    for (const core::Connection& input : inputs_) {
      DS_ASSIGN_OR_RETURN(
          core::ItemView item,
          as_.Get(input, core::GetSpec::NextAfter(candidate - 1), deadline));
      if (item.timestamp != candidate) aligned = false;
      max_seen = std::max(max_seen, item.timestamp);
      tuple.items.push_back(std::move(item));
    }
    if (aligned) {
      tuple.timestamp = candidate;
      // Release the tuple and everything older on every stream.
      for (const core::Connection& input : inputs_) {
        DS_RETURN_IF_ERROR(as_.ConsumeUntil(input, candidate));
      }
      cursor_ = candidate + 1;
      return tuple;
    }
    // At least one stream has nothing at `candidate`: everything below
    // the maximum seen can never correlate. Account the gap and retry.
    skipped_ += static_cast<std::uint64_t>(max_seen - candidate);
    candidate = max_seen;
  }
}

}  // namespace dstampede::app
